
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codec.cpp" "src/core/CMakeFiles/sdb_core.dir/codec.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/codec.cpp.o.d"
  "/root/repo/src/core/dbscan.cpp" "src/core/CMakeFiles/sdb_core.dir/dbscan.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/dbscan.cpp.o.d"
  "/root/repo/src/core/dbscan_seq.cpp" "src/core/CMakeFiles/sdb_core.dir/dbscan_seq.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/dbscan_seq.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/sdb_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/local_dbscan.cpp" "src/core/CMakeFiles/sdb_core.dir/local_dbscan.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/local_dbscan.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/sdb_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/mr_dbscan.cpp" "src/core/CMakeFiles/sdb_core.dir/mr_dbscan.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/mr_dbscan.cpp.o.d"
  "/root/repo/src/core/partial_cluster.cpp" "src/core/CMakeFiles/sdb_core.dir/partial_cluster.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/partial_cluster.cpp.o.d"
  "/root/repo/src/core/partitioners.cpp" "src/core/CMakeFiles/sdb_core.dir/partitioners.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/partitioners.cpp.o.d"
  "/root/repo/src/core/pds_dbscan.cpp" "src/core/CMakeFiles/sdb_core.dir/pds_dbscan.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/pds_dbscan.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "src/core/CMakeFiles/sdb_core.dir/quality.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/quality.cpp.o.d"
  "/root/repo/src/core/spark_dbscan.cpp" "src/core/CMakeFiles/sdb_core.dir/spark_dbscan.cpp.o" "gcc" "src/core/CMakeFiles/sdb_core.dir/spark_dbscan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/spatial/CMakeFiles/sdb_spatial.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/minispark/CMakeFiles/sdb_minispark.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mapreduce/CMakeFiles/sdb_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/synth/CMakeFiles/sdb_synth.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/sdb_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
