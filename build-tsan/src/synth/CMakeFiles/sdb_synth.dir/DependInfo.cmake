
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/generators.cpp" "src/synth/CMakeFiles/sdb_synth.dir/generators.cpp.o" "gcc" "src/synth/CMakeFiles/sdb_synth.dir/generators.cpp.o.d"
  "/root/repo/src/synth/io.cpp" "src/synth/CMakeFiles/sdb_synth.dir/io.cpp.o" "gcc" "src/synth/CMakeFiles/sdb_synth.dir/io.cpp.o.d"
  "/root/repo/src/synth/presets.cpp" "src/synth/CMakeFiles/sdb_synth.dir/presets.cpp.o" "gcc" "src/synth/CMakeFiles/sdb_synth.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
