
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/brute_force.cpp" "src/spatial/CMakeFiles/sdb_spatial.dir/brute_force.cpp.o" "gcc" "src/spatial/CMakeFiles/sdb_spatial.dir/brute_force.cpp.o.d"
  "/root/repo/src/spatial/grid_index.cpp" "src/spatial/CMakeFiles/sdb_spatial.dir/grid_index.cpp.o" "gcc" "src/spatial/CMakeFiles/sdb_spatial.dir/grid_index.cpp.o.d"
  "/root/repo/src/spatial/kd_tree.cpp" "src/spatial/CMakeFiles/sdb_spatial.dir/kd_tree.cpp.o" "gcc" "src/spatial/CMakeFiles/sdb_spatial.dir/kd_tree.cpp.o.d"
  "/root/repo/src/spatial/r_tree.cpp" "src/spatial/CMakeFiles/sdb_spatial.dir/r_tree.cpp.o" "gcc" "src/spatial/CMakeFiles/sdb_spatial.dir/r_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
