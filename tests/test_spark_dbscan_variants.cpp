// End-to-end variants of the Spark pipeline: partitioner choices, the
// paper-faithful strategy pair, and pruning on realistic data.
#include <gtest/gtest.h>

#include "core/dbscan_seq.hpp"
#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "synth/presets.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

minispark::ClusterConfig cluster(u32 executors) {
  minispark::ClusterConfig cfg;
  cfg.executors = executors;
  cfg.straggler.fraction = 0.0;
  return cfg;
}

class SparkDbscanPartitioners : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(SparkDbscanPartitioners, EquivalentToSequential) {
  Rng rng(3);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 900;
  gcfg.dim = 2;
  gcfg.clusters = 5;
  gcfg.sigma = 0.5;
  gcfg.noise_fraction = 0.1;
  gcfg.box_side = 60.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const DbscanParams params{1.0, 5};
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, params);

  minispark::SparkContext ctx(cluster(6));
  SparkDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = 6;
  cfg.partitioner = GetParam();
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);
  const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                    seq.clustering, report.clustering);
  EXPECT_TRUE(eq.equivalent)
      << partitioner_name(GetParam()) << ": " << eq.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparkDbscanPartitioners,
                         ::testing::Values(PartitionerKind::kBlock,
                                           PartitionerKind::kRandom,
                                           PartitionerKind::kGrid,
                                           PartitionerKind::kKdSplit),
                         [](const auto& info) {
                           std::string n = partitioner_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

class SparkDbscanIndexes : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SparkDbscanIndexes, IndexChoiceDoesNotChangeClustering) {
  Rng rng(19);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 500;
  gcfg.dim = 3;
  gcfg.clusters = 3;
  gcfg.sigma = 0.5;
  gcfg.box_side = 50.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const DbscanParams params{1.2, 5};
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, params);

  minispark::SparkContext ctx(cluster(4));
  SparkDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = 4;
  cfg.index = GetParam();
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);
  const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                    seq.clustering, report.clustering);
  EXPECT_TRUE(eq.equivalent)
      << index_kind_name(GetParam()) << ": " << eq.detail;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparkDbscanIndexes,
                         ::testing::Values(IndexKind::kKdTree,
                                           IndexKind::kRTree,
                                           IndexKind::kBruteForce),
                         [](const auto& info) {
                           std::string n = index_kind_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(SparkDbscanVariants, PaperModeProducesSaneClustering) {
  // The paper's own strategies (one seed per partition + single-pass merge)
  // on Table I-style data: not guaranteed sequential-equivalent, but the
  // cluster count must be close and the Rand index high.
  const auto spec = *synth::find_preset("c10k");
  const PointSet ps = synth::generate(spec, 42, 0.3);
  const DbscanParams params{spec.eps, spec.minpts};
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, params);

  minispark::SparkContext ctx(cluster(8));
  SparkDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = 8;
  cfg.seed_strategy = SeedStrategy::kOnePerPartition;
  cfg.merge_strategy = MergeStrategy::kPaperSinglePass;
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);

  EXPECT_GT(rand_index(seq.clustering, report.clustering), 0.99);
  EXPECT_NEAR(static_cast<double>(report.clustering.num_clusters),
              static_cast<double>(seq.clustering.num_clusters),
              0.3 * static_cast<double>(seq.clustering.num_clusters) + 2.0);
}

TEST(SparkDbscanVariants, PaperRegimeTenDimensional) {
  // The exact paper regime (d=10, eps=25, minpts=5) through the whole
  // pipeline with the sound strategies must match sequential DBSCAN.
  const auto spec = *synth::find_preset("r10k");
  const PointSet ps = synth::generate(spec, 42, 0.25);
  const DbscanParams params{spec.eps, spec.minpts};
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, params);

  minispark::SparkContext ctx(cluster(8));
  SparkDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = 8;
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);
  const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                    seq.clustering, report.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.detail;
}

TEST(SparkDbscanVariants, SmallClusterFilterTurnsTinyClustersToNoise) {
  Rng rng(17);
  synth::UniformConfig ucfg;
  ucfg.n = 1200;
  ucfg.dim = 2;
  ucfg.box_side = 30.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);

  auto run = [&](u64 min_size) {
    minispark::SparkContext ctx(cluster(8));
    SparkDbscanConfig cfg;
    cfg.params = {1.0, 4};
    cfg.partitions = 8;
    cfg.min_partial_cluster_size = min_size;
    SparkDbscan dbscan(ctx, cfg);
    return dbscan.run(ps);
  };
  const auto unfiltered = run(0);
  const auto filtered = run(5);
  EXPECT_GT(filtered.merge_stats.filtered_partial_clusters, 0u);
  EXPECT_GE(filtered.clustering.noise_count(),
            unfiltered.clustering.noise_count());
  EXPECT_LE(filtered.clustering.num_clusters,
            unfiltered.clustering.num_clusters);
}

TEST(SparkDbscanVariants, MorePartitionsThanPoints) {
  PointSet ps(2);
  for (int i = 0; i < 6; ++i) {
    const double p[2] = {static_cast<double>(i) * 0.1, 0.0};
    ps.add(p);
  }
  minispark::SparkContext ctx(cluster(16));
  SparkDbscanConfig cfg;
  cfg.params = {0.5, 3};
  cfg.partitions = 16;  // mostly empty partitions
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);
  EXPECT_EQ(report.clustering.num_clusters, 1u);
  EXPECT_EQ(report.clustering.noise_count(), 0u);
}

}  // namespace
}  // namespace sdb::dbscan
