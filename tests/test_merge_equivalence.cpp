// Equivalence battery for the parallel edge-based merge (DESIGN.md §13).
//
// The contract under test: for MergeStrategy::kUnionFind the merge output —
// labels, num_clusters, and every deterministic MergeStats field — is
// BYTE-IDENTICAL for any merge_threads value and any arrival permutation of
// the partial results. The sequential single-thread path is the oracle; the
// parallel pipeline must reproduce it exactly, not just up to relabeling.
//
// Fixtures come from three sources: a randomized generator sweeping
// partitions x chain depth x core/border mixes x duplicate seeds x the
// small-cluster filter; the real local_dbscan pipeline on gaussian data; and
// the two documented Algorithm-4 soundness-gap fixtures as regressions.
#include <gtest/gtest.h>

#include <vector>

#include "core/codec.hpp"
#include "core/local_dbscan.hpp"
#include "core/merge.hpp"
#include "core/partitioners.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/varint.hpp"

namespace sdb::dbscan {
namespace {

LocalClusterResult make_local(PartitionId partition,
                              std::vector<PartialCluster> clusters,
                              std::vector<PointId> cores,
                              std::vector<PointId> noise = {}) {
  LocalClusterResult r;
  r.partition = partition;
  r.clusters = std::move(clusters);
  r.core_points = std::move(cores);
  r.noise = std::move(noise);
  return r;
}

PartialCluster make_pc(PartitionId part, u32 idx, std::vector<PointId> members,
                       std::vector<PointId> seeds) {
  PartialCluster pc;
  pc.partition = part;
  pc.uid = PartialCluster::make_uid(part, idx);
  pc.members = std::move(members);
  pc.seeds = std::move(seeds);
  return pc;
}

/// Knobs for the randomized fixture generator. Points are laid out in
/// per-partition blocks; each block ends in a small pool of unclaimed
/// (local-noise) ids so seeds can hit the border-adoption path.
struct FixtureConfig {
  u32 partitions = 4;
  u32 clusters_per_partition = 3;
  u32 max_cluster_size = 5;     ///< member count drawn from [1, max]
  double core_fraction = 0.6;   ///< chance a member is core
  u32 seeds_per_cluster = 4;
  double dup_seed_chance = 0.0;   ///< chance a seed repeats the previous one
  double noise_seed_chance = 0.2; ///< chance a seed hits an unclaimed id
  bool chain = false;  ///< add a forced P-deep merge chain across partitions
};

constexpr u32 kNoisePool = 6;

std::vector<LocalClusterResult> make_fixture(const FixtureConfig& cfg,
                                             Rng& rng, u64* num_points) {
  const u32 block =
      cfg.clusters_per_partition * cfg.max_cluster_size + kNoisePool;
  *num_points = static_cast<u64>(cfg.partitions) * block;
  std::vector<LocalClusterResult> locals;

  // Pass 1: members + core flags (so pass 2 can aim seeds at known ids).
  for (u32 p = 0; p < cfg.partitions; ++p) {
    LocalClusterResult local;
    local.partition = static_cast<PartitionId>(p);
    const PointId base = static_cast<PointId>(p) * block;
    for (u32 c = 0; c < cfg.clusters_per_partition; ++c) {
      const u32 size =
          1 + static_cast<u32>(rng.uniform_index(cfg.max_cluster_size));
      PartialCluster pc;
      pc.partition = local.partition;
      pc.uid = PartialCluster::make_uid(local.partition, c);
      for (u32 k = 0; k < size; ++k) {
        const PointId id = base + c * cfg.max_cluster_size + k;
        pc.members.push_back(id);
        if (rng.chance(cfg.core_fraction)) local.core_points.push_back(id);
      }
      local.clusters.push_back(std::move(pc));
    }
    for (u32 k = 0; k < kNoisePool; ++k) {
      local.noise.push_back(base + block - kNoisePool + k);
    }
    locals.push_back(std::move(local));
  }

  // Pass 2: seeds. Each cluster aims seeds at random foreign partitions —
  // at members (core or border, whatever pass 1 rolled) or at the unclaimed
  // noise pool — with optional duplicates and an optional forced chain
  // cluster(p, 0) -> member of cluster(p+1, 0) so every sweep cell contains
  // a merge chain as deep as the partition count.
  for (u32 p = 0; p < cfg.partitions; ++p) {
    for (u32 c = 0; c < cfg.clusters_per_partition; ++c) {
      auto& pc = locals[p].clusters[c];
      for (u32 s = 0; s < cfg.seeds_per_cluster; ++s) {
        if (!pc.seeds.empty() && rng.chance(cfg.dup_seed_chance)) {
          pc.seeds.push_back(pc.seeds.back());
          continue;
        }
        u32 q = static_cast<u32>(rng.uniform_index(cfg.partitions - 1));
        if (q >= p) ++q;  // any partition but our own
        const PointId q_base = static_cast<PointId>(q) * block;
        if (rng.chance(cfg.noise_seed_chance)) {
          pc.seeds.push_back(q_base + block - kNoisePool +
                             static_cast<PointId>(
                                 rng.uniform_index(kNoisePool)));
        } else {
          const auto& target = locals[q].clusters[static_cast<size_t>(
              rng.uniform_index(cfg.clusters_per_partition))];
          pc.seeds.push_back(target.members[static_cast<size_t>(
              rng.uniform_index(target.members.size()))]);
        }
      }
      if (cfg.chain && c == 0) {
        const u32 q = (p + 1) % cfg.partitions;
        pc.seeds.push_back(locals[q].clusters[0].members.front());
      }
    }
  }
  return locals;
}

MergeResult run_merge(const std::vector<LocalClusterResult>& locals,
                      u64 num_points, unsigned threads,
                      u64 min_size = 0) {
  MergeOptions opt;
  opt.strategy = MergeStrategy::kUnionFind;
  opt.merge_threads = threads;
  opt.min_partial_cluster_size = min_size;
  return merge_partial_clusters(locals, num_points, opt);
}

/// Assert the full deterministic contract: labels and every
/// schedule-independent stat byte-identical between two merge results.
void expect_identical(const MergeResult& a, const MergeResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.clustering.labels, b.clustering.labels) << what;
  EXPECT_EQ(a.clustering.num_clusters, b.clustering.num_clusters) << what;
  EXPECT_EQ(a.stats.partial_clusters, b.stats.partial_clusters) << what;
  EXPECT_EQ(a.stats.filtered_partial_clusters,
            b.stats.filtered_partial_clusters)
      << what;
  EXPECT_EQ(a.stats.seeds_examined, b.stats.seeds_examined) << what;
  EXPECT_EQ(a.stats.edges_emitted, b.stats.edges_emitted) << what;
  EXPECT_EQ(a.stats.merges, b.stats.merges) << what;
  EXPECT_EQ(a.stats.border_claims, b.stats.border_claims) << what;
}

TEST(MergeEquivalence, FuzzParallelMatchesSequentialByteForByte) {
  u64 cells = 0;
  for (const u32 partitions : {2u, 3u, 6u, 9u}) {
    for (const bool chain : {false, true}) {
      for (const double core_fraction : {0.35, 1.0}) {
        for (const double dup : {0.0, 0.4}) {
          for (const u64 min_size : {u64{0}, u64{2}}) {
            for (u64 seed = 1; seed <= 3; ++seed) {
              FixtureConfig cfg;
              cfg.partitions = partitions;
              cfg.chain = chain;
              cfg.core_fraction = core_fraction;
              cfg.dup_seed_chance = dup;
              Rng rng(seed * 1000 + partitions * 10 + (chain ? 1 : 0));
              u64 n = 0;
              const auto locals = make_fixture(cfg, rng, &n);
              const auto baseline = run_merge(locals, n, 1, min_size);
              ++cells;
              for (const unsigned threads : {2u, 3u, 4u, 0u}) {
                const auto par = run_merge(locals, n, threads, min_size);
                expect_identical(
                    baseline, par,
                    "threads=" + std::to_string(threads) + " partitions=" +
                        std::to_string(partitions) + " seed=" +
                        std::to_string(seed) + " min=" +
                        std::to_string(min_size));
              }
              // Arrival permutations through the PARALLEL path: the
              // uid-canonical sort plus slot-addressed edge gather must wash
              // out the input order entirely.
              std::vector<LocalClusterResult> shuffled = locals;
              for (u64 perm = 1; perm <= 3; ++perm) {
                Rng perm_rng(seed * 100 + perm);
                perm_rng.shuffle(shuffled);
                const auto par = run_merge(shuffled, n, 3, min_size);
                expect_identical(baseline, par,
                                 "perm=" + std::to_string(perm));
              }
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(cells, 4u * 2 * 2 * 2 * 2 * 3);
}

TEST(MergeEquivalence, RealPipelineParallelMatchesSequential) {
  Rng data_rng(321);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 600;
  gcfg.dim = 2;
  gcfg.clusters = 4;
  gcfg.sigma = 0.4;
  gcfg.noise_fraction = 0.08;
  gcfg.box_side = 35.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, data_rng);
  const DbscanParams params{0.8, 5};
  const KdTree tree(ps);

  constexpr u32 kPartitions = 6;
  const Partitioning partitioning =
      make_partitioning(PartitionerKind::kBlock, ps, kPartitions, 77);
  LocalDbscanConfig local_cfg;
  local_cfg.params = params;
  local_cfg.seed_strategy = SeedStrategy::kAllForeign;
  std::vector<LocalClusterResult> locals;
  for (u32 p = 0; p < kPartitions; ++p) {
    locals.push_back(local_dbscan(ps, tree, partitioning,
                                  static_cast<PartitionId>(p), local_cfg));
    // local_dbscan maintains the flat wire view, so the parallel gather
    // takes the zero-copy seed_edges path on this fixture.
    EXPECT_TRUE(seed_edges_consistent(locals.back()));
  }

  const auto baseline = run_merge(locals, ps.size(), 1);
  EXPECT_GT(baseline.clustering.num_clusters, 0u);
  EXPECT_GT(baseline.stats.merges, 0u);
  for (const unsigned threads : {2u, 4u, 0u}) {
    expect_identical(baseline, run_merge(locals, ps.size(), threads),
                     "threads=" + std::to_string(threads));
  }
  // And through each codec's v2 wire round-trip.
  for (const Codec codec : {Codec::kRaw, Codec::kCompact}) {
    std::vector<LocalClusterResult> decoded;
    for (const auto& local : locals) {
      decoded.push_back(decode(encode(local, codec), codec));
      EXPECT_TRUE(seed_edges_consistent(decoded.back()));
    }
    expect_identical(run_merge(decoded, ps.size(), 1),
                     run_merge(decoded, ps.size(), 4),
                     std::string("codec=") + codec_name(codec));
  }
}

TEST(MergeEquivalence, AlgorithmFourGapFixturesUnderParallelMerge) {
  // Regression pins for the two documented Algorithm-4 soundness gaps
  // (test_merge.cpp documents the paper side): the union-find strategy must
  // keep fixing both at every thread count.
  for (const unsigned threads : {1u, 2u, 4u}) {
    // Gap 1: absorbed cluster's seeds. A -> B -> C chain must close.
    {
      auto a = make_local(0, {make_pc(0, 0, {0, 1}, {10})}, {0, 1});
      auto b = make_local(1, {make_pc(1, 0, {10, 11}, {20})}, {10, 11});
      auto c = make_local(2, {make_pc(2, 0, {20, 21}, {})}, {20, 21});
      const auto merged = run_merge({a, b, c}, 30, threads);
      EXPECT_EQ(merged.clustering.num_clusters, 1u) << threads;
      EXPECT_EQ(merged.clustering.labels[0], merged.clustering.labels[21]);
    }
    // Gap 2: a non-core border seed must NOT fuse clusters.
    {
      auto a = make_local(0, {make_pc(0, 0, {0, 1}, {10})}, {0, 1});
      auto b = make_local(1, {make_pc(1, 0, {10, 11, 12}, {})}, {11, 12});
      const auto merged = run_merge({a, b}, 20, threads);
      EXPECT_EQ(merged.clustering.num_clusters, 2u) << threads;
      EXPECT_EQ(merged.clustering.labels[10], merged.clustering.labels[11]);
    }
  }
}

TEST(MergeEquivalence, BorderClaimPriorityMatchesSequential) {
  // Two clusters claim the same unclaimed foreign point; the lower-uid
  // cluster's claim must win at every thread count (first claim in
  // uid-canonical edge order).
  auto a = make_local(0, {make_pc(0, 0, {0, 1}, {20})}, {0, 1});
  auto b = make_local(1, {make_pc(1, 0, {10, 11}, {20})}, {10, 11});
  auto c = make_local(2, {}, {}, {20});
  for (const unsigned threads : {1u, 2u, 4u}) {
    const auto merged = run_merge({a, b, c}, 30, threads);
    EXPECT_EQ(merged.clustering.labels[20], merged.clustering.labels[0])
        << threads;
    EXPECT_EQ(merged.stats.border_claims, 1u) << threads;
  }
}

TEST(MergeEquivalence, CountersDeterministicAcrossThreadCounts) {
  // The parallel path charges a flat deterministic cost model from the
  // driver thread: merge_ops must be exactly equal for every thread count
  // > 1 (the sequential path keeps its own path-length-dependent model, so
  // it is not expected to match the parallel number).
  FixtureConfig cfg;
  cfg.partitions = 6;
  cfg.chain = true;
  Rng rng(99);
  u64 n = 0;
  const auto locals = make_fixture(cfg, rng, &n);
  const auto two = run_merge(locals, n, 2);
  EXPECT_GT(two.counters.merge_ops, 0u);
  for (const unsigned threads : {3u, 4u, 8u}) {
    const auto par = run_merge(locals, n, threads);
    EXPECT_EQ(par.counters.merge_ops, two.counters.merge_ops) << threads;
    EXPECT_EQ(par.stats.rounds, two.stats.rounds) << threads;
    expect_identical(two, par, "threads=" + std::to_string(threads));
  }
}

TEST(MergeEquivalence, LegacyV1BlobsMergeIdenticallyToV2) {
  // Hand-author v1 wire bytes (the pre-seed-edge layouts) for a fixture,
  // decode them through both codecs' legacy paths, and check the merge
  // output matches the v2 round-trip byte-for-byte — old checkpoints keep
  // replaying into identical clusterings after the wire bump.
  FixtureConfig cfg;
  cfg.partitions = 4;
  cfg.dup_seed_chance = 0.3;
  Rng rng(7);
  u64 n = 0;
  auto locals = make_fixture(cfg, rng, &n);
  // The compact codec sorts id lists (set semantics); pre-sort the fixture
  // so v1/v2/raw all describe the same logical result.
  for (auto& local : locals) {
    std::sort(local.core_points.begin(), local.core_points.end());
    std::sort(local.noise.begin(), local.noise.end());
    for (auto& pc : local.clusters) {
      std::sort(pc.members.begin(), pc.members.end());
      std::sort(pc.seeds.begin(), pc.seeds.end());
      pc.seeds.erase(std::unique(pc.seeds.begin(), pc.seeds.end()),
                     pc.seeds.end());
    }
  }

  std::vector<LocalClusterResult> raw_v1, compact_v1;
  for (const auto& local : locals) {
    {
      BinaryWriter w;  // raw v1: partition first (always >= 0), nested seeds
      w.write_i64(local.partition);
      w.write_u64(local.clusters.size());
      for (const auto& pc : local.clusters) serialize(pc, w);
      w.write_i64_vec(local.core_points);
      w.write_i64_vec(local.noise);
      const auto& buf = w.buffer();
      raw_v1.push_back(decode(std::string(buf.data(), buf.size()),
                              Codec::kRaw));
    }
    {
      std::vector<char> out;  // compact v1: partition varint first
      put_varint(out, static_cast<u64>(local.partition));
      put_varint(out, local.clusters.size());
      for (const auto& pc : local.clusters) {
        put_varint(out, pc.uid);
        put_id_list(out, pc.members);
        put_id_list(out, pc.seeds);
      }
      put_id_list(out, local.core_points);
      put_id_list(out, local.noise);
      compact_v1.push_back(decode(std::string(out.data(), out.size()),
                                  Codec::kCompact));
    }
  }
  for (const auto& decoded : {raw_v1, compact_v1}) {
    for (const auto& local : decoded) {
      EXPECT_TRUE(seed_edges_consistent(local));  // synthesized on decode
    }
  }

  std::vector<LocalClusterResult> raw_v2, compact_v2;
  for (const auto& local : locals) {
    raw_v2.push_back(decode(encode(local, Codec::kRaw), Codec::kRaw));
    compact_v2.push_back(
        decode(encode(local, Codec::kCompact), Codec::kCompact));
  }

  const auto oracle = run_merge(raw_v2, n, 1);
  for (const unsigned threads : {1u, 4u}) {
    expect_identical(oracle, run_merge(raw_v1, n, threads), "raw v1");
    expect_identical(oracle, run_merge(compact_v1, n, threads),
                     "compact v1");
    expect_identical(oracle, run_merge(compact_v2, n, threads),
                     "compact v2");
  }
}

TEST(MergeEquivalence, EdgeStatsAccounting) {
  // edges_emitted counts exactly the surviving clusters' seeds; rounds is a
  // pure function of that count (fixed chunking), not of the thread count.
  auto a = make_local(0, {make_pc(0, 0, {0, 1}, {10, 11}),
                          make_pc(0, 1, {2}, {10})},
                      {0, 1, 2});
  auto b = make_local(1, {make_pc(1, 0, {10, 11}, {0})}, {10, 11});
  const auto all = run_merge({a, b}, 20, 4);
  EXPECT_EQ(all.stats.edges_emitted, 4u);
  EXPECT_EQ(all.stats.seeds_examined, 4u);
  EXPECT_EQ(all.stats.rounds, 1u);
  // The filter drops cluster (0,1) and with it its seed edge.
  const auto filtered = run_merge({a, b}, 20, 4, 2);
  EXPECT_EQ(filtered.stats.edges_emitted, 3u);
  EXPECT_EQ(filtered.stats.filtered_partial_clusters, 1u);
  // Sequential kUnionFind reports the same edge count.
  EXPECT_EQ(run_merge({a, b}, 20, 1).stats.edges_emitted, 4u);
}

}  // namespace
}  // namespace sdb::dbscan
