#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace sdb {
namespace {

Flags make_flags() {
  Flags f;
  f.add_i64("cores", 8, "cores");
  f.add_f64("eps", 25.0, "epsilon");
  f.add_bool("full", false, "full scale");
  f.add_string("dataset", "c10k", "dataset");
  return f;
}

TEST(Flags, Defaults) {
  Flags f = make_flags();
  const char* argv[] = {"prog"};
  f.parse(1, const_cast<char**>(argv));
  EXPECT_EQ(f.i64_flag("cores"), 8);
  EXPECT_DOUBLE_EQ(f.f64("eps"), 25.0);
  EXPECT_FALSE(f.boolean("full"));
  EXPECT_EQ(f.string("dataset"), "c10k");
}

TEST(Flags, EqualsForm) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--cores=32", "--eps=1.5", "--full=true",
                        "--dataset=r1m"};
  f.parse(5, const_cast<char**>(argv));
  EXPECT_EQ(f.i64_flag("cores"), 32);
  EXPECT_DOUBLE_EQ(f.f64("eps"), 1.5);
  EXPECT_TRUE(f.boolean("full"));
  EXPECT_EQ(f.string("dataset"), "r1m");
}

TEST(Flags, SpaceForm) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--cores", "16", "--dataset", "r100k"};
  f.parse(5, const_cast<char**>(argv));
  EXPECT_EQ(f.i64_flag("cores"), 16);
  EXPECT_EQ(f.string("dataset"), "r100k");
}

TEST(Flags, BareBooleanMeansTrue) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--full", "--cores", "2"};
  f.parse(4, const_cast<char**>(argv));
  EXPECT_TRUE(f.boolean("full"));
  EXPECT_EQ(f.i64_flag("cores"), 2);
}

TEST(Flags, Positional) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "input.txt", "--cores=4", "out.txt"};
  f.parse(4, const_cast<char**>(argv));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "out.txt");
}

TEST(Flags, NegativeNumbers) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--cores=-3", "--eps=-0.5"};
  f.parse(3, const_cast<char**>(argv));
  EXPECT_EQ(f.i64_flag("cores"), -3);
  EXPECT_DOUBLE_EQ(f.f64("eps"), -0.5);
}

TEST(Flags, UsageListsAllFlags) {
  Flags f = make_flags();
  const std::string usage = f.usage("prog");
  EXPECT_NE(usage.find("--cores"), std::string::npos);
  EXPECT_NE(usage.find("--eps"), std::string::npos);
  EXPECT_NE(usage.find("--full"), std::string::npos);
  EXPECT_NE(usage.find("--dataset"), std::string::npos);
}

TEST(FlagsDeath, UnknownFlagAborts) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_DEATH(f.parse(2, const_cast<char**>(argv)), "unknown flag");
}

TEST(FlagsDeath, BadValueAborts) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--cores=abc"};
  EXPECT_DEATH(f.parse(2, const_cast<char**>(argv)), "bad value");
}

}  // namespace
}  // namespace sdb
