#include "spatial/union_find.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sdb {
namespace {

TEST(UnionFind, InitiallyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
  EXPECT_FALSE(uf.same(0, 1));
}

TEST(UnionFind, UniteAndFind) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already united
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_TRUE(uf.same(1, 2));
  EXPECT_FALSE(uf.same(1, 4));
  EXPECT_EQ(uf.set_count(), 3u);  // {0,1,2,3}, {4}, {5}
}

TEST(UnionFind, TransitiveChain) {
  UnionFind uf(100);
  for (size_t i = 0; i + 1 < 100; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_TRUE(uf.same(0, 99));
}

TEST(UnionFind, RandomAgainstNaive) {
  // Property: agrees with a naive label-propagation implementation.
  const size_t n = 200;
  Rng rng(77);
  UnionFind uf(n);
  std::vector<size_t> naive(n);
  for (size_t i = 0; i < n; ++i) naive[i] = i;
  auto naive_root = [&](size_t x) {
    while (naive[x] != x) x = naive[x];
    return x;
  };
  for (int op = 0; op < 500; ++op) {
    const size_t a = rng.uniform_index(n);
    const size_t b = rng.uniform_index(n);
    uf.unite(a, b);
    naive[naive_root(a)] = naive_root(b);
    const size_t c = rng.uniform_index(n);
    const size_t d = rng.uniform_index(n);
    EXPECT_EQ(uf.same(c, d), naive_root(c) == naive_root(d));
  }
}

TEST(UnionFind, CountsMergeOps) {
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    UnionFind uf(10);
    uf.unite(0, 1);
    uf.unite(1, 2);
  }
  EXPECT_GT(wc.merge_ops, 0u);
}

}  // namespace
}  // namespace sdb
