// WAL-shipping replication unit suite: batch wire framing, the relay →
// transport → applier pipeline, snapshot catch-up, term fencing,
// epoch-bounded staleness routing, failover promotion, and durable follower
// restart. The seeded chaos grid lives in test_replica_chaos.cpp; this file
// pins each mechanism down in isolation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "fault/fault_plan.hpp"
#include "replica/applier.hpp"
#include "replica/relay.hpp"
#include "replica/replica_set.hpp"
#include "replica/sharded_cluster.hpp"
#include "replica/wal_ship.hpp"
#include "serve/model_registry.hpp"

namespace sdb::replica {
namespace {

namespace fs = std::filesystem;

serve::ModelRegistry::Config replicated_config(
    serve::RegistryRole role, u64 publish_every = 0) {
  serve::ModelRegistry::Config cfg;
  cfg.params = dbscan::DbscanParams{0.2, 2};
  cfg.publish_every = publish_every;
  cfg.replicated = true;
  cfg.role = role;
  return cfg;
}

ReplicaSet::Options set_options(size_t replicas = 3) {
  ReplicaSet::Options opts;
  opts.replicas = replicas;
  opts.registry = replicated_config(serve::RegistryRole::kPrimary);
  opts.registry.role = serve::RegistryRole::kPrimary;  // overridden per node
  return opts;
}

/// Content digest of a model — FNV-1a over its serialized bytes (epoch is
/// NOT serialized, so equal digests mean equal content).
u64 model_digest(const serve::ClusterModel& model) {
  const std::vector<char> bytes = model.save();
  u64 h = 1469598103934665603ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void insert_grid(ReplicaSet& set, int n, double offset = 0.0) {
  for (int i = 0; i < n; ++i) {
    const double coords[2] = {offset + 0.1 * i, 0.5};
    ASSERT_TRUE(set.insert(coords).has_value());
  }
}

TEST(WalShip, BatchRoundTripsAllRecordTypes) {
  WalBatch batch;
  batch.term = 3;
  batch.generation = 2;
  batch.start_seq = 41;
  batch.committed_epoch = 9;
  serve::WalRecord ins;
  ins.type = serve::WalRecordType::kInsert;
  ins.coords = {1.5, -2.25, 3.0};
  serve::WalRecord rem;
  rem.type = serve::WalRecordType::kRemove;
  rem.point_id = 17;
  serve::WalRecord pub;
  pub.type = serve::WalRecordType::kPublish;
  pub.epoch = 8;
  batch.records = {ins, rem, pub};

  WalBatch decoded;
  ASSERT_TRUE(decode_batch(encode_batch(batch), &decoded));
  EXPECT_EQ(decoded.term, 3u);
  EXPECT_EQ(decoded.generation, 2u);
  EXPECT_EQ(decoded.start_seq, 41u);
  EXPECT_EQ(decoded.committed_epoch, 9u);
  ASSERT_EQ(decoded.records.size(), 3u);
  EXPECT_EQ(decoded.records[0].coords, ins.coords);
  EXPECT_EQ(decoded.records[1].point_id, 17);
  EXPECT_EQ(decoded.records[2].epoch, 8u);
}

TEST(WalShip, EveryFlippedByteIsRejected) {
  WalBatch batch;
  batch.term = 1;
  serve::WalRecord ins;
  ins.type = serve::WalRecordType::kInsert;
  ins.coords = {0.5, 0.5};
  batch.records = {ins};
  const std::vector<char> frame = encode_batch(batch);
  // Flip each payload byte in turn (skip the outer length word: a wrong
  // length is rejected by the size check, also exercised at offset 0).
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<char> bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    WalBatch decoded;
    EXPECT_FALSE(decode_batch(bad, &decoded)) << "flip at byte " << i;
  }
  std::vector<char> truncated(frame.begin(), frame.end() - 1);
  WalBatch decoded;
  EXPECT_FALSE(decode_batch(truncated, &decoded));
}

TEST(Replication, FollowersConvergeToPrimaryContent) {
  ReplicaSet set(set_options(3), 2);
  insert_grid(set, 12);
  const std::optional<u64> e = set.publish();
  ASSERT_TRUE(e.has_value());
  set.pump();

  const auto primary = set.node_registry(set.primary_index());
  for (size_t i = 0; i < set.replicas(); ++i) {
    const auto reg = set.node_registry(i);
    ASSERT_NE(reg, nullptr);
    EXPECT_EQ(reg->epoch(), *e) << "node " << i;
    EXPECT_EQ(model_digest(*reg->model()), model_digest(*primary->model()))
        << "node " << i;
  }
  // With one applied follower the epoch is committed.
  EXPECT_EQ(set.committed_epoch(), *e);
  EXPECT_EQ(set.committed_model()->epoch(), *e);
}

#ifdef SDB_FAULT_INJECTION
TEST(Replication, CommitWaitsForFollowerAck) {
  // Drop every shipped frame: publishes stay pending, the committed epoch
  // (and the models served from the primary) stay at the construction
  // epoch even though the primary has advanced.
  ReplicaSet set(set_options(3), 2);
  const u64 base = set.committed_epoch();
  fault::ScopedFaultPlan plan("seed=7;replica.ship.drop:p=1");
  insert_grid(set, 6);
  ASSERT_TRUE(set.publish().has_value());
  set.pump();
  set.pump();
  EXPECT_EQ(set.committed_epoch(), base);
  // Primary-targeted reads serve the committed (old) model, not the
  // pending one.
  const double q[2] = {0.2, 0.5};
  const ReplicaSet::ClassifyResult r = set.classify(q, set.primary_index());
  EXPECT_EQ(r.epoch, base);
}

TEST(Replication, DroppedFramesHealViaRetransmit) {
  ReplicaSet set(set_options(2), 2);
  {
    // Deterministically drop the first 3 frames; the relay re-ships from
    // the follower's unadvanced cursor on the next pump.
    fault::ScopedFaultPlan plan("seed=7;replica.ship.drop:budget=3");
    insert_grid(set, 8);
    ASSERT_TRUE(set.publish().has_value());
    for (int i = 0; i < 6; ++i) set.pump();
  }
  const auto primary = set.node_registry(set.primary_index());
  const auto follower = set.node_registry(1);
  EXPECT_EQ(follower->epoch(), primary->epoch());
  EXPECT_GT(set.transport_stats(1).dropped, 0u);
}

TEST(Replication, DuplicatesAndReordersAreAbsorbed) {
  ReplicaSet set(set_options(2), 2);
  {
    fault::ScopedFaultPlan plan(
        "seed=11;replica.ship.duplicate:p=0.5;replica.ship.reorder:p=0.5");
    for (int round = 0; round < 10; ++round) {
      insert_grid(set, 3, 0.01 * round);
      ASSERT_TRUE(set.publish().has_value());
      set.pump();
    }
    for (int i = 0; i < 4; ++i) set.pump();
  }
  const auto primary = set.node_registry(set.primary_index());
  const auto follower = set.node_registry(1);
  EXPECT_EQ(follower->epoch(), primary->epoch());
  EXPECT_EQ(model_digest(*follower->model()), model_digest(*primary->model()));
  const Applier::Stats stats = set.applier_stats(1);
  EXPECT_GT(stats.duplicates_skipped + stats.gaps, 0u);
}
#endif  // SDB_FAULT_INJECTION

TEST(Replication, LaggingFollowerCatchesUpViaSnapshotHandshake) {
  // Raw-component test: compaction on the primary discards the records a
  // never-pumped follower needs, so the relay must fall back to the
  // snapshot handshake (generation mismatch at the applier's cursor).
  const std::string dir =
      (fs::temp_directory_path() / ("sdb_repl_snap_p" + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  auto cfg_p = replicated_config(serve::RegistryRole::kPrimary);
  cfg_p.wal_dir = dir;
  auto primary = std::make_shared<serve::ModelRegistry>(cfg_p, 2);
  for (int i = 0; i < 10; ++i) {
    const double coords[2] = {0.1 * i, 0.5};
    primary->insert(coords);
  }
  primary->publish();
  const u64 compacted = primary->compact();  // rotates to generation 1
  ASSERT_EQ(primary->wal()->generation(), 1u);

  auto follower = std::make_shared<serve::ModelRegistry>(
      replicated_config(serve::RegistryRole::kFollower), 2);
  Applier applier(follower);
  ShipTransport transport;
  Relay relay(primary, /*term=*/1, /*batch_records=*/4, /*pipeline=*/2);
  // First pump: cursor (0, 0) vs generation 1 -> snapshot installed.
  relay.pump(applier, transport);
  EXPECT_EQ(applier.stats().snapshots_installed, 1u);
  EXPECT_EQ(follower->epoch(), compacted);
  EXPECT_EQ(model_digest(*follower->model()), model_digest(*primary->model()));

  // Post-compaction mutations ship as normal records from (1, 0).
  const double extra[2] = {5.0, 5.0};
  primary->insert(extra);
  primary->publish();
  relay.pump(applier, transport);
  while (auto frame = transport.receive()) applier.offer(*frame);
  EXPECT_EQ(follower->epoch(), primary->epoch());
  EXPECT_EQ(model_digest(*follower->model()), model_digest(*primary->model()));
  fs::remove_all(dir);
}

TEST(Replication, StaleTermsAreFenced) {
  auto follower = std::make_shared<serve::ModelRegistry>(
      replicated_config(serve::RegistryRole::kFollower), 2);
  Applier applier(follower);

  serve::WalRecord pub;
  pub.type = serve::WalRecordType::kPublish;
  pub.epoch = 1;
  WalBatch term2;
  term2.term = 2;
  term2.records = {pub};
  EXPECT_TRUE(applier.offer(encode_batch(term2)));  // adopts term 2
  EXPECT_EQ(applier.term(), 2u);

  WalBatch stale;
  stale.term = 1;
  stale.start_seq = 1;
  serve::WalRecord ins;
  ins.type = serve::WalRecordType::kInsert;
  ins.coords = {9.0, 9.0};
  stale.records = {ins};
  EXPECT_FALSE(applier.offer(encode_batch(stale)));  // deposed primary
  EXPECT_EQ(applier.stats().fenced, 1u);
  EXPECT_EQ(follower->active_points(), 0u);
}

#ifdef SDB_FAULT_INJECTION
TEST(Replication, StalenessBoundRedirectsLaggingFollowerReads) {
  // ack_replicas=0 commits on publish (primary-only durability), so the
  // committed watermark advances while a fully-partitioned follower stays
  // at the construction epoch — its reads must redirect once the lag
  // exceeds the bound.
  ReplicaSet::Options opts = set_options(2);
  opts.ack_replicas = 0;
  opts.staleness_bound = 2;
  ReplicaSet set(opts, 2);
  fault::ScopedFaultPlan plan("seed=3;replica.ship.drop:p=1");
  for (int round = 0; round < 4; ++round) {
    insert_grid(set, 2, 0.01 * round);
    ASSERT_TRUE(set.publish().has_value());
    set.pump();
  }
  const u64 committed = set.committed_epoch();
  const auto follower = set.node_registry(1);
  ASSERT_GT(committed, follower->epoch() + opts.staleness_bound);

  const double q[2] = {0.0, 0.5};
  const ReplicaSet::ClassifyResult r = set.classify(q, 1);
  EXPECT_TRUE(r.redirected);
  EXPECT_EQ(r.epoch, committed);  // served from the committed model
  EXPECT_GE(set.stale_redirects(), 1u);
}
#endif  // SDB_FAULT_INJECTION

TEST(Replication, FailoverPromotesFollowerAndResumesWrites) {
  ReplicaSet::Options opts = set_options(3);
  opts.heartbeat_timeout = 2;
  ReplicaSet set(opts, 2);
  insert_grid(set, 10);
  const std::optional<u64> e = set.publish();
  ASSERT_TRUE(e.has_value());
  set.pump();
  ASSERT_EQ(set.committed_epoch(), *e);
  const u64 digest_before = model_digest(*set.committed_model());

  set.kill_primary();
  EXPECT_FALSE(set.has_live_primary());
  // Reads stay available throughout the failover window.
  const double q[2] = {0.5, 0.5};
  EXPECT_EQ(set.classify(q, 0).epoch, *e);
  // Writes are refused until promotion.
  const double coords[2] = {2.0, 2.0};
  EXPECT_FALSE(set.insert(coords).has_value());

  for (u64 t = 0; t <= opts.heartbeat_timeout + 1; ++t) set.tick();
  EXPECT_TRUE(set.has_live_primary());
  EXPECT_NE(set.primary_index(), 0u);
  EXPECT_EQ(set.failovers(), 1u);
  EXPECT_EQ(set.term(), 2u);
  // Nothing committed was lost across the failover.
  EXPECT_GE(set.committed_epoch(), *e);
  EXPECT_EQ(model_digest(*set.committed_model()), digest_before);

  // The new primary accepts writes and replicates to the survivor.
  ASSERT_TRUE(set.insert(coords).has_value());
  const std::optional<u64> e2 = set.publish();
  ASSERT_TRUE(e2.has_value());
  EXPECT_GT(*e2, *e);
  set.pump();
  EXPECT_EQ(set.committed_epoch(), *e2);
  for (size_t i = 0; i < set.replicas(); ++i) {
    if (!set.alive(i)) continue;
    EXPECT_EQ(set.node_registry(i)->epoch(), *e2) << "node " << i;
  }
}

TEST(Replication, DurableFollowerRestartsAtItsStreamCursor) {
  // A follower process restart: its durable WAL holds the applied stream
  // prefix, so a fresh registry + applier resume at exactly the right
  // (generation, seq) without a snapshot handshake.
  const std::string dir =
      (fs::temp_directory_path() / ("sdb_repl_restart_p" + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  auto primary = std::make_shared<serve::ModelRegistry>(
      replicated_config(serve::RegistryRole::kPrimary), 2);
  auto follower_cfg = replicated_config(serve::RegistryRole::kFollower);
  follower_cfg.wal_dir = dir;

  Relay relay(primary, /*term=*/1, /*batch_records=*/8, /*pipeline=*/2);
  u64 cursor_at_shutdown = 0;
  {
    auto follower = std::make_shared<serve::ModelRegistry>(follower_cfg, 2);
    Applier applier(follower);
    ShipTransport transport;
    for (int i = 0; i < 6; ++i) {
      const double coords[2] = {0.1 * i, 0.5};
      primary->insert(coords);
    }
    primary->publish();
    relay.pump(applier, transport);
    while (auto frame = transport.receive()) applier.offer(*frame);
    EXPECT_EQ(follower->epoch(), primary->epoch());
    cursor_at_shutdown = applier.cursor().next_seq;
  }
  // More primary traffic while the follower is down.
  const double extra[2] = {7.0, 7.0};
  primary->insert(extra);
  primary->publish();
  {
    auto follower = std::make_shared<serve::ModelRegistry>(follower_cfg, 2);
    Applier applier(follower);
    EXPECT_EQ(applier.cursor().next_seq, cursor_at_shutdown);
    ShipTransport transport;
    relay.pump(applier, transport);
    while (auto frame = transport.receive()) applier.offer(*frame);
    EXPECT_EQ(applier.stats().snapshots_installed, 0u);
    EXPECT_EQ(follower->epoch(), primary->epoch());
    EXPECT_EQ(model_digest(*follower->model()),
              model_digest(*primary->model()));
  }
  fs::remove_all(dir);
}

TEST(ShardedCluster, RoutesDeterministicallyAndServesAllShards) {
  ShardedCluster::Options opts;
  opts.shards = 3;
  opts.replica = set_options(2);
  ShardedCluster cluster(opts, 2);

  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({0.37 * i, 1.0 - 0.11 * i});
  }
  std::vector<size_t> shard_of;
  for (const auto& p : points) {
    shard_of.push_back(cluster.shard_for(p));
    const auto r = cluster.insert(p);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->shard, shard_of.back());
  }
  // Routing is stable: a second router built the same way agrees.
  ShardedCluster router(opts, 2);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(router.shard_for(points[i]), shard_of[i]);
  }
  cluster.publish_all();
  cluster.pump_all();
  for (size_t s = 0; s < cluster.shards(); ++s) {
    EXPECT_GT(cluster.shard(s).committed_epoch(), 1u) << "shard " << s;
  }
  // Classify routes to the same shard the insert went to; with replication
  // caught up no read redirects.
  for (const auto& p : points) {
    const auto r = cluster.classify(p, 1);
    EXPECT_FALSE(r.redirected);
  }
}

// TSan entry point (sanitize label): hammer the lock-free routed-read path
// from reader threads while the driver thread inserts, publishes, pumps,
// kills the primary, and promotes a follower. Readers must always get a
// model (never a null deref, never a torn epoch).
TEST(Replication, ConcurrentReadsSurviveFailover) {
  ReplicaSet::Options opts = set_options(3);
  opts.heartbeat_timeout = 1;
  ReplicaSet set(opts, 2);
  insert_grid(set, 8);
  ASSERT_TRUE(set.publish().has_value());
  set.pump();

  std::atomic<bool> stop{false};
  std::atomic<u64> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&set, &stop, &reads, t] {
      const double q[2] = {0.1 * t, 0.5};
      u64 last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const ReplicaSet::ClassifyResult r =
            set.classify(q, static_cast<size_t>(t));
        // Epochs a reader observes never go backwards past the committed
        // floor it has already seen from the same replica preference.
        if (r.redirected) EXPECT_GE(r.epoch + 1, last_epoch);
        last_epoch = r.epoch;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int round = 0; round < 30; ++round) {
    const double coords[2] = {0.05 * round, 0.25};
    (void)set.insert(coords);
    if (round % 3 == 0) (void)set.publish();
    set.pump();
    set.tick();
    if (round == 15) set.kill_primary();
  }
  // On a loaded single-core host the driver loop can finish before any
  // reader thread is first scheduled; wait for one read before stopping.
  while (reads.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(set.failovers(), 1u);
  EXPECT_TRUE(set.has_live_primary());
}

}  // namespace
}  // namespace sdb::replica
