#include "minispark/spark_context.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace sdb::minispark {
namespace {

ClusterConfig quiet_config(u32 executors) {
  ClusterConfig cfg;
  cfg.executors = executors;
  cfg.straggler.fraction = 0.0;
  return cfg;
}

TEST(SparkContext, CollectRoundTrip) {
  SparkContext ctx(quiet_config(4));
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = ctx.parallelize(data, 7);
  EXPECT_EQ(ctx.collect(*rdd), data);
}

TEST(SparkContext, CountAcrossPartitions) {
  SparkContext ctx(quiet_config(2));
  auto rdd = ctx.parallelize(std::vector<int>(1234, 1), 5);
  EXPECT_EQ(ctx.count(*rdd), 1234u);
}

TEST(SparkContext, DefaultParallelismIsTotalCores) {
  ClusterConfig cfg = quiet_config(4);
  cfg.cores_per_executor = 2;
  SparkContext ctx(cfg);
  EXPECT_EQ(ctx.default_parallelism(), 8u);
  auto rdd = ctx.parallelize(std::vector<int>(100, 1));
  EXPECT_EQ(rdd->num_partitions(), 8u);
}

TEST(SparkContext, TransformPipelineThroughActions) {
  SparkContext ctx(quiet_config(2));
  std::vector<int> data(50);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = ctx.parallelize(data, 4);
  auto result = rdd->map([](const int& x) { return x * x; })
                    ->filter([](const int& x) { return x % 2 == 0; });
  const auto collected = ctx.collect(*result);
  u64 count = 0;
  for (const int x : data) {
    if ((x * x) % 2 == 0) ++count;
  }
  EXPECT_EQ(collected.size(), count);
}

TEST(SparkContext, ForeachPartitionSeesEveryPartitionOnce) {
  SparkContext ctx(quiet_config(3));
  auto rdd = ctx.parallelize(std::vector<int>(30, 7), 6);
  std::mutex mutex;
  std::vector<u32> seen;
  ctx.foreach_partition(*rdd, [&](u32 p, std::vector<int>&& data) {
    const std::scoped_lock lock(mutex);
    seen.push_back(p);
    EXPECT_EQ(data.size(), 5u);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<u32>{0, 1, 2, 3, 4, 5}));
}

TEST(SparkContext, JobMetricsRecorded) {
  SparkContext ctx(quiet_config(4));
  auto rdd = ctx.parallelize(std::vector<int>(100, 1), 8);
  ctx.count(*rdd);
  const JobMetrics& job = ctx.last_job();
  EXPECT_EQ(job.num_tasks, 8u);
  EXPECT_EQ(job.tasks.size(), 8u);
  EXPECT_GT(job.sim_executor_makespan_s, 0.0);
  EXPECT_GE(job.sim_executor_total_s, job.sim_executor_makespan_s);
  EXPECT_GT(job.sim_driver_s, 0.0);
  EXPECT_EQ(ctx.jobs().size(), 1u);
}

TEST(SparkContext, MakespanShrinksWithMoreCores) {
  // Same tasks, more simulated cores -> smaller simulated makespan. This is
  // the mechanism behind every speedup figure.
  auto run = [](u32 executors) {
    SparkContext ctx(quiet_config(executors));
    auto rdd = ctx.generate<int>(
        [](u32) {
          // Some counted work per task.
          WorkCounters* active = counters::active();
          (void)active;
          counters::distance_evals(200000);
          return std::vector<int>{1};
        },
        16, "work");
    ctx.count(*rdd);
    return ctx.last_job().sim_executor_makespan_s;
  };
  const double t1 = run(1);
  const double t8 = run(8);
  EXPECT_GT(t1, t8 * 4);  // near-linear for 16 equal tasks
}

TEST(SparkContext, BroadcastChargedOnceToNextJob) {
  SparkContext ctx(quiet_config(4));
  auto b = ctx.broadcast(std::string("payload"), 1'000'000);
  EXPECT_EQ(b.value(), "payload");
  auto rdd = ctx.parallelize(std::vector<int>(10, 1), 2);
  ctx.count(*rdd);
  EXPECT_EQ(ctx.last_job().broadcast_bytes, 1'000'000u);
  ctx.count(*rdd);
  EXPECT_EQ(ctx.last_job().broadcast_bytes, 0u);  // shipped already
}

TEST(SparkContext, ListScheduleMakespanLaws) {
  // One core: makespan == sum. Many cores: makespan == max.
  const std::vector<double> d = {3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(list_schedule_makespan(d, 1), 14.0);
  EXPECT_DOUBLE_EQ(list_schedule_makespan(d, 100), 5.0);
  // FIFO onto 2 cores: ends at 3+4+5? Greedy earliest-free: c0:3, c1:1,
  // then 4 -> c1 (free at 1, ends 5), 1 -> c0 (free 3, ends 4), 5 -> c0
  // (free 4, ends 9). Makespan 9.
  EXPECT_DOUBLE_EQ(list_schedule_makespan(d, 2), 9.0);
  EXPECT_DOUBLE_EQ(list_schedule_makespan({}, 4), 0.0);
}

TEST(SparkContext, StragglerInflatesSomeTasks) {
  ClusterConfig cfg = quiet_config(4);
  cfg.straggler.fraction = 0.5;
  cfg.straggler.max_extra = 1.0;
  cfg.seed = 7;
  SparkContext ctx(cfg);
  auto rdd = ctx.generate<int>(
      [](u32) {
        counters::distance_evals(100000);
        return std::vector<int>{1};
      },
      32, "work");
  ctx.count(*rdd);
  u32 straggled = 0;
  for (const auto& t : ctx.last_job().tasks) straggled += t.straggled ? 1 : 0;
  EXPECT_GT(straggled, 4u);
  EXPECT_LT(straggled, 28u);
}

TEST(SparkContext, TaskExceptionPropagates) {
  SparkContext ctx(quiet_config(2));
  auto rdd = ctx.generate<int>(
      [](u32 p) -> std::vector<int> {
        if (p == 1) throw std::runtime_error("task failure");
        return {1};
      },
      2, "boom");
  EXPECT_THROW(ctx.count(*rdd), std::runtime_error);
}

}  // namespace
}  // namespace sdb::minispark
