// The paper's correctness claim, as a property sweep: "all parallel
// executions generate the same result as the serial execution."
//
// For every combination of (dataset shape, partition count, partitioner),
// the partitioned pipeline with complete seeds + union-find merge must be
// structurally equivalent to sequential DBSCAN.
#include <gtest/gtest.h>

#include "core/dbscan_seq.hpp"
#include "core/local_dbscan.hpp"
#include "core/merge.hpp"
#include "core/quality.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

enum class Shape { kBlobs, kUniform, kMoons, kRings };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kBlobs: return "blobs";
    case Shape::kUniform: return "uniform";
    case Shape::kMoons: return "moons";
    case Shape::kRings: return "rings";
  }
  return "?";
}

PointSet make_shape(Shape shape, u64 seed) {
  Rng rng(seed);
  switch (shape) {
    case Shape::kBlobs: {
      synth::GaussianMixtureConfig cfg;
      cfg.n = 700;
      cfg.dim = 2;
      cfg.clusters = 4;
      cfg.sigma = 0.4;
      cfg.noise_fraction = 0.08;
      cfg.box_side = 40.0;
      return synth::gaussian_clusters(cfg, rng);
    }
    case Shape::kUniform: {
      synth::UniformConfig cfg;
      cfg.n = 700;
      cfg.dim = 2;
      cfg.box_side = 25.0;
      return synth::uniform_points(cfg, rng);
    }
    case Shape::kMoons:
      return synth::two_moons(350, 0.04, rng);
    case Shape::kRings:
      return synth::rings(250, 2, 0.03, 60, rng);
  }
  return PointSet(2);
}

DbscanParams shape_params(Shape shape) {
  switch (shape) {
    case Shape::kBlobs: return {0.8, 5};
    case Shape::kUniform: return {0.9, 4};
    case Shape::kMoons: return {0.12, 5};
    case Shape::kRings: return {0.2, 5};
  }
  return {1.0, 5};
}

class ParallelEqualsSequential
    : public ::testing::TestWithParam<
          std::tuple<Shape, u32, PartitionerKind>> {};

TEST_P(ParallelEqualsSequential, StructuralEquivalence) {
  const auto [shape, partitions, partitioner] = GetParam();
  const PointSet ps = make_shape(shape, 1000 + static_cast<u64>(shape));
  const DbscanParams params = shape_params(shape);
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, params);

  const Partitioning partitioning =
      make_partitioning(partitioner, ps, partitions, 77);
  LocalDbscanConfig local_cfg;
  local_cfg.params = params;
  local_cfg.seed_strategy = SeedStrategy::kAllForeign;
  std::vector<LocalClusterResult> locals;
  for (u32 p = 0; p < partitions; ++p) {
    locals.push_back(local_dbscan(ps, tree, partitioning,
                                  static_cast<PartitionId>(p), local_cfg));
  }
  MergeOptions merge_options;
  merge_options.strategy = MergeStrategy::kUnionFind;
  const auto merged = merge_partial_clusters(locals, ps.size(), merge_options);

  const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                    seq.clustering, merged.clustering);
  EXPECT_TRUE(eq.equivalent)
      << shape_name(shape) << " partitions=" << partitions << " partitioner="
      << partitioner_name(partitioner) << " :: core=" << eq.core_mismatches
      << " noise=" << eq.noise_mismatches
      << " border=" << eq.border_violations << " " << eq.detail;
  // Cluster counts must agree exactly (they are label-invariant).
  EXPECT_EQ(merged.clustering.num_clusters, seq.clustering.num_clusters);
  EXPECT_EQ(merged.clustering.noise_count(), seq.clustering.noise_count());
  // Rand index of structurally-equivalent clusterings is ~1 (border
  // ambiguity can move a handful of points).
  EXPECT_GT(rand_index(seq.clustering, merged.clustering), 0.999);
}

std::string sweep_case_name(
    const ::testing::TestParamInfo<std::tuple<Shape, u32, PartitionerKind>>&
        info) {
  std::string name = shape_name(std::get<0>(info.param));
  name += "_p" + std::to_string(std::get<1>(info.param)) + "_";
  name += partitioner_name(std::get<2>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEqualsSequential,
    ::testing::Combine(
        ::testing::Values(Shape::kBlobs, Shape::kUniform, Shape::kMoons,
                          Shape::kRings),
        ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u),
        ::testing::Values(PartitionerKind::kBlock, PartitionerKind::kRandom,
                          PartitionerKind::kKdSplit)),
    sweep_case_name);

TEST(ParallelEqualsSequentialHighDim, TenDimensionalPaperRegime) {
  // The paper's actual regime: d=10, eps=25, minpts=5.
  Rng rng(4242);
  synth::GaussianMixtureConfig cfg;
  cfg.n = 900;
  cfg.dim = 10;
  cfg.clusters = 6;
  cfg.sigma = 5.0;
  cfg.noise_fraction = 0.05;
  cfg.center_separation_sigmas = 25.0;
  cfg.box_side = 1200.0;
  const PointSet ps = synth::gaussian_clusters(cfg, rng);
  const DbscanParams params{25.0, 5};
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, params);

  for (const u32 partitions : {2u, 7u}) {
    const Partitioning partitioning =
        make_partitioning(PartitionerKind::kBlock, ps, partitions);
    LocalDbscanConfig local_cfg;
    local_cfg.params = params;
    std::vector<LocalClusterResult> locals;
    for (u32 p = 0; p < partitions; ++p) {
      locals.push_back(local_dbscan(ps, tree, partitioning,
                                    static_cast<PartitionId>(p), local_cfg));
    }
    const auto merged = merge_partial_clusters(locals, ps.size(), {});
    const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                      seq.clustering, merged.clustering);
    EXPECT_TRUE(eq.equivalent) << "partitions=" << partitions << " "
                               << eq.detail;
  }
}

}  // namespace
}  // namespace sdb::dbscan
