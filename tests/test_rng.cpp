#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sdb {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(10.0, 20.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 20.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const u64 k = rng.uniform_index(10);
    ASSERT_LT(k, 10u);
    ++hits[static_cast<size_t>(k)];
  }
  // Every bucket should be hit a plausible number of times.
  for (const int h : hits) {
    EXPECT_GT(h, 700);
    EXPECT_LT(h, 1300);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, DeriveSeedStreamsIndependent) {
  const u64 s1 = derive_seed(42, "alpha");
  const u64 s2 = derive_seed(42, "beta");
  const u64 s3 = derive_seed(43, "alpha");
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_EQ(s1, derive_seed(42, "alpha"));
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), w.begin()));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.03);  // mean = 1/rate
}

TEST(Rng, ForkDeterministic) {
  Rng a(21);
  Rng b(21);
  Rng fa = a.fork("x");
  Rng fb = b.fork("x");
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
  }
}

}  // namespace
}  // namespace sdb
