// Streaming chaos-equivalence grid: seeded fault plans over the three
// stream fault sites (stream.queue.stall / stream.batch.drop /
// stream.publish.delay) x ingest scenarios, asserting that once the plan
// lifts every faulted run CONVERGES to the fault-free run's clustering
// digest with ZERO lost acknowledged writes.
//
// Two digests, two claims:
//   * state digest — the acked op stream, replayed micro-epoch by
//     micro-epoch through a control IncrementalDbscan, must reproduce the
//     registry's data plane bit-exactly (no acknowledged write lost,
//     duplicated, or reordered, whatever the plan did);
//   * convergence digest — an order-invariant structural digest (sorted
//     live coordinates with their deterministic core/member flags plus the
//     cluster count) that faulted runs must share with the fault-free
//     baseline of the same scenario. Border-point *assignment* is DBSCAN's
//     usual ambiguity, so the digest covers the deterministic structure,
//     not the ambiguous labels.
//
// The driver resubmits ops NACKed by stream.batch.drop (the at-least-once
// contract: a drop is visible, an ack is forever) and retries shed submits
// with backpressure sleeps, so every logical op of the scenario eventually
// applies exactly once. Every cell logs its FaultPlan spec for repro.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.hpp"
#include "stream/ingest_pipeline.hpp"
#include "util/rng.hpp"

namespace sdb::stream {
namespace {

using dbscan::IncrementalDbscan;
using BatchOp = IncrementalDbscan::BatchOp;

struct LogicalOp {
  bool is_insert = true;
  std::vector<double> coords;  ///< insert payload
  size_t target = 0;           ///< remove: logical index of the doomed insert
};

/// Deterministic scenario schedule in three phases (removes only target
/// inserts from already-settled phases): [0, p0) inserts, [p0, p1) mixed
/// under faults, [p1, end) mixed after the plan lifts.
struct Schedule {
  std::vector<LogicalOp> ops;
  size_t p0 = 0;
  size_t p1 = 0;
};

std::vector<double> scenario_point(Rng& rng, bool hot_cell, size_t index) {
  if (hot_cell && rng.chance(0.8)) {
    // One eps-cell absorbs most of the firehose: maximal re-cluster churn.
    return {2.0 + rng.uniform(0.0, 0.2), 2.0 + rng.uniform(0.0, 0.2)};
  }
  // Drifting hotspot plus background.
  const double drift = static_cast<double>(index) * 0.002;
  if (rng.chance(0.7)) {
    return {1.0 + drift + rng.normal(0.0, 0.25),
            1.0 + drift * 0.5 + rng.normal(0.0, 0.25)};
  }
  return {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
}

Schedule make_schedule(u64 seed, bool hot_cell) {
  Schedule s;
  Rng rng(seed);
  std::vector<size_t> removable;  // applied-phase inserts not yet targeted
  const auto add_insert = [&](std::vector<size_t>* pool) {
    LogicalOp op;
    op.coords = scenario_point(rng, hot_cell, s.ops.size());
    if (pool != nullptr) pool->push_back(s.ops.size());
    s.ops.push_back(std::move(op));
  };
  std::vector<size_t> phase_inserts;
  for (int i = 0; i < 250; ++i) add_insert(&phase_inserts);
  s.p0 = s.ops.size();
  removable = phase_inserts;
  std::vector<size_t> p1_inserts;
  for (int i = 0; i < 150; ++i) {
    if (!removable.empty() && rng.chance(0.4)) {
      LogicalOp op;
      op.is_insert = false;
      const size_t pick = rng.uniform_index(removable.size());
      op.target = removable[pick];
      removable.erase(removable.begin() + static_cast<i64>(pick));
      s.ops.push_back(std::move(op));
    } else {
      add_insert(&p1_inserts);
    }
  }
  s.p1 = s.ops.size();
  removable.insert(removable.end(), p1_inserts.begin(), p1_inserts.end());
  for (int i = 0; i < 100; ++i) {
    if (!removable.empty() && rng.chance(0.3)) {
      LogicalOp op;
      op.is_insert = false;
      const size_t pick = rng.uniform_index(removable.size());
      op.target = removable[pick];
      removable.erase(removable.begin() + static_cast<i64>(pick));
      s.ops.push_back(std::move(op));
    } else {
      add_insert(nullptr);
    }
  }
  return s;
}

/// Order-invariant structural digest: sorted live coordinates with their
/// deterministic core/member flags, plus the cluster count. Border labels
/// (DBSCAN's ambiguity) are deliberately excluded.
u64 convergence_digest(const IncrementalDbscan& inc) {
  struct Row {
    std::vector<double> coords;
    bool core = false;
    bool member = false;
  };
  const dbscan::Clustering snap = inc.clustering();
  std::vector<Row> rows;
  rows.reserve(inc.active_size());
  for (PointId id = 0; id < static_cast<PointId>(inc.size()); ++id) {
    if (inc.is_removed(id)) continue;
    Row row;
    const auto c = inc.coords_of(id);
    row.coords.assign(c.begin(), c.end());
    row.core = inc.is_core(id);
    row.member = snap.labels[static_cast<size_t>(id)] != kNoise;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.coords < b.coords; });
  u64 h = 14695981039346656037ull;
  const auto mix = [&h](u64 v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(snap.num_clusters);
  mix(rows.size());
  for (const Row& row : rows) {
    for (const double c : row.coords) {
      u64 bits = 0;
      std::memcpy(&bits, &c, sizeof(bits));
      mix(bits);
    }
    mix(row.core ? 1u : 0u);
    mix(row.member ? 2u : 0u);
  }
  return h;
}

/// Submits a schedule through a pipeline, resubmitting dropped micro-epochs
/// and retrying shed submits, and records the ack stream for replay.
class ChaosDriver {
 public:
  explicit ChaosDriver(const Schedule& schedule)
      : schedule_(schedule),
        applied_(schedule.ops.size(), 0),
        id_of_(schedule.ops.size(), -1) {}

  IngestPipeline::Config attach(IngestPipeline::Config cfg) {
    cfg.on_ack = [this](const Ack& ack) { on_ack(ack); };
    return cfg;
  }
  /// Acks cannot fire before the first submit, so binding the pipeline
  /// after its construction (which needs the hook from attach()) is safe.
  void bind(IngestPipeline& pipeline) { pipeline_ = &pipeline; }

  /// Submit logical ops [from, to), then block until every op in [0, to)
  /// has applied exactly once (resubmitting drops as they surface).
  void run_phase(size_t from, size_t to) {
    for (size_t logical = from; logical < to; ++logical) {
      submit_logical(logical);
    }
    settle(to);
  }

  [[nodiscard]] std::vector<Ack> acks() {
    const std::scoped_lock lock(mu_);
    return acks_;
  }
  [[nodiscard]] std::vector<int> applied_counts() {
    const std::scoped_lock lock(mu_);
    return applied_;
  }

 private:
  void on_ack(const Ack& ack) {
    const std::scoped_lock lock(mu_);
    acks_.push_back(ack);
    const auto it = logical_of_ticket_.find(ack.ticket);
    if (it == logical_of_ticket_.end()) {
      unmatched_.push_back(ack);  // mapping races the batcher; see below
    } else {
      handle_locked(ack, it->second);
    }
    cv_.notify_all();
  }

  void handle_locked(const Ack& ack, size_t logical) {
    if (ack.dropped) {
      retry_.push_back(logical);
      return;
    }
    if (ack.applied) {
      ++applied_[logical];
      if (schedule_.ops[logical].is_insert) id_of_[logical] = ack.id;
    } else {
      ++invalid_[logical];
    }
  }

  void submit_logical(size_t logical) {
    const LogicalOp& op = schedule_.ops[logical];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
      SubmitResult result;
      if (op.is_insert) {
        result = pipeline_->submit_insert(op.coords);
      } else {
        PointId id = -1;
        {
          const std::scoped_lock lock(mu_);
          id = id_of_[op.target];
        }
        ASSERT_GE(id, 0) << "remove scheduled before its insert settled";
        result = pipeline_->submit_remove(id);
      }
      if (result.accepted) {
        const std::scoped_lock lock(mu_);
        logical_of_ticket_[result.ticket] = logical;
        // Drain any ack that beat the mapping (batcher can ack a ticket
        // before this thread records it).
        for (auto it = unmatched_.begin(); it != unmatched_.end();) {
          if (it->ticket == result.ticket) {
            handle_locked(*it, logical);
            it = unmatched_.erase(it);
          } else {
            ++it;
          }
        }
        return;
      }
      // Shed: honor the backpressure hint (scaled down to keep tests fast).
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "shed retries did not converge";
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  void settle(size_t prefix) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
      size_t next_retry = SIZE_MAX;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!retry_.empty()) {
          next_retry = retry_.front();
          retry_.pop_front();
        } else {
          bool done = true;
          for (size_t l = 0; l < prefix; ++l) {
            if (applied_[l] != 1) {
              done = false;
              break;
            }
          }
          if (done) return;
          cv_.wait_for(lock, std::chrono::milliseconds(1));
        }
      }
      if (next_retry != SIZE_MAX) submit_logical(next_retry);
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "settle did not converge";
    }
  }

  IngestPipeline* pipeline_ = nullptr;
  const Schedule& schedule_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Ack> acks_;
  std::vector<int> applied_;
  std::unordered_map<size_t, int> invalid_;
  std::vector<PointId> id_of_;
  std::unordered_map<u64, size_t> logical_of_ticket_;
  std::vector<Ack> unmatched_;
  std::deque<size_t> retry_;
};

struct RunResult {
  u64 convergence = 0;
  StreamMetrics metrics;
};

constexpr double kEps = 0.35;
constexpr i64 kMinPts = 4;

RunResult run_scenario(const std::string& plan_spec, u64 scenario_seed,
                       bool hot_cell) {
  SCOPED_TRACE("fault plan: " +
               (plan_spec.empty() ? std::string("<none>") : plan_spec));
  RunResult result;
  const Schedule schedule = make_schedule(scenario_seed, hot_cell);

  serve::ModelRegistry::Config rcfg;
  rcfg.params = dbscan::DbscanParams{kEps, kMinPts};
  rcfg.rebuild_threshold = 32;
  rcfg.publish_every = 0;
  serve::ModelRegistry registry(rcfg, 2);

  IngestPipeline::Config cfg;
  cfg.queue_capacity = 128;
  cfg.batch_max = 8;
  cfg.batch_deadline_us = 300;
  cfg.lag_capacity = 64;  // publish skips drive the lag watermark visibly
  cfg.stall_micros = 300;
  cfg.retry_after_ms = 0.2;

  ChaosDriver driver(schedule);
  IngestPipeline pipeline(registry, driver.attach(cfg));
  driver.bind(pipeline);

  {
    std::optional<fault::ScopedFaultPlan> chaos;
    if (!plan_spec.empty()) chaos.emplace(plan_spec);
    driver.run_phase(0, schedule.p0);
    driver.run_phase(schedule.p0, schedule.p1);
    // Quiesce the batcher before the plan lifts at scope exit: the plan
    // must outlive every in-flight SDB_INJECT (ScopedFaultPlan installs a
    // raw pointer), and the batcher only stops injecting once it parks
    // (empty queue, zero lag, healthy rung). Everything NACKed under the
    // plan has already been resubmitted and settled by run_phase.
    pipeline.drain();
  }
  driver.run_phase(schedule.p1, schedule.ops.size());
  pipeline.drain();
  pipeline.stop();
  result.metrics = pipeline.metrics();

  // Every logical op applied exactly once (at-least-once submission,
  // exactly-once application).
  for (const int count : driver.applied_counts()) EXPECT_EQ(count, 1);

  // Zero lost acknowledged writes: replay the acked micro-epochs through a
  // control instance; it must reproduce the registry's state bit-exactly.
  IncrementalDbscan::Config inc_cfg;
  inc_cfg.params = rcfg.params;
  inc_cfg.rebuild_threshold = 48;  // digest is rebuild-timing independent
  IncrementalDbscan control(inc_cfg, 2);
  std::vector<BatchOp> epoch_ops;
  u64 epoch_seq = 0;
  const auto flush = [&] {
    if (!epoch_ops.empty()) {
      control.apply_batch(epoch_ops);
      epoch_ops.clear();
    }
  };
  for (const Ack& ack : driver.acks()) {
    if (!ack.applied) continue;  // drops/invalids never reached the state
    if (ack.batch_seq != epoch_seq) {
      flush();
      epoch_seq = ack.batch_seq;
    }
    epoch_ops.push_back(ack.op);
  }
  flush();
  EXPECT_EQ(control.digest(), registry.state_digest())
      << "acked op replay diverged from the registry data plane";
  EXPECT_EQ(control.active_size(), registry.active_points());
  // The drain-time publish exposed the final state to readers.
  EXPECT_EQ(registry.model()->summary().total_points, control.size());

  result.convergence = convergence_digest(control);
  return result;
}

struct PlanCell {
  const char* name;
  const char* spec;  ///< seed substituted per cell
};

constexpr PlanCell kPlans[] = {
    {"stall", "seed=%SEED%;stream.queue.stall:p=0.6"},
    {"drop", "seed=%SEED%;stream.batch.drop:p=0.25,budget=12"},
    {"pubdelay", "seed=%SEED%;stream.publish.delay:p=0.5,budget=25"},
    {"all",
     "seed=%SEED%;stream.queue.stall:p=0.4;stream.batch.drop:p=0.15,budget=8;"
     "stream.publish.delay:p=0.4,budget=15"},
};

std::string cell_spec(const PlanCell& cell, u64 seed) {
  std::string spec = cell.spec;
  const std::string token = "%SEED%";
  spec.replace(spec.find(token), token.size(), std::to_string(seed));
  return spec;
}

class StreamChaosGrid : public ::testing::TestWithParam<bool> {};

TEST_P(StreamChaosGrid, FaultedRunsConvergeToFaultFreeDigest) {
  const bool hot_cell = GetParam();
  const u64 scenario_seed = hot_cell ? 71 : 43;
  const RunResult baseline = run_scenario("", scenario_seed, hot_cell);
  ASSERT_NE(baseline.convergence, 0u);
  EXPECT_EQ(baseline.metrics.dropped_batches, 0u);
  EXPECT_EQ(baseline.metrics.stalls, 0u);

  for (const PlanCell& cell : kPlans) {
    for (const u64 plan_seed : {1ull, 2ull}) {
      const std::string spec = cell_spec(cell, plan_seed);
      SCOPED_TRACE(std::string(cell.name) + " seed " +
                   std::to_string(plan_seed));
      const RunResult faulted = run_scenario(spec, scenario_seed, hot_cell);
      // Convergence: identical structural clustering once the plan lifts.
      EXPECT_EQ(faulted.convergence, baseline.convergence) << spec;
      // The plan actually bit (per-site evidence in the metrics).
      const StreamMetrics& m = faulted.metrics;
      if (std::strstr(cell.spec, "queue.stall") != nullptr) {
        EXPECT_GT(m.stalls, 0u) << spec;
      }
      if (std::strstr(cell.spec, "batch.drop") != nullptr) {
        EXPECT_GT(m.dropped_batches, 0u) << spec;
        // Drops forced resubmission: more submits accepted than logical ops.
        EXPECT_GT(m.accepted, baseline.metrics.accepted) << spec;
      }
      if (std::strstr(cell.spec, "publish.delay") != nullptr) {
        EXPECT_GT(m.publish_skips, 0u) << spec;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, StreamChaosGrid,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("HotCell")
                                             : std::string("Drifting");
                         });

// The ladder engages under chaos and recovers once the plan lifts: a
// combined plan must leave behind nonzero transition counters and an
// end-state of healthy (counters are the "every transition is a counter +
// structured event" contract under real faults, not synthetic overload).
TEST(StreamChaos, LadderEngagesAndRecoversUnderCombinedPlan) {
  const Schedule schedule = make_schedule(99, /*hot_cell=*/true);
  serve::ModelRegistry::Config rcfg;
  rcfg.params = dbscan::DbscanParams{kEps, kMinPts};
  rcfg.publish_every = 0;
  serve::ModelRegistry registry(rcfg, 2);

  IngestPipeline::Config cfg;
  cfg.queue_capacity = 48;
  cfg.batch_max = 4;
  cfg.batch_deadline_us = 200;
  cfg.lag_capacity = 32;
  cfg.stall_micros = 2000;
  cfg.retry_after_ms = 0.2;
  ChaosDriver driver(schedule);
  IngestPipeline pipeline(registry, driver.attach(cfg));
  driver.bind(pipeline);

  {
    fault::ScopedFaultPlan chaos(
        "seed=4;stream.queue.stall:p=0.8;"
        "stream.publish.delay:p=0.6,budget=40");
    driver.run_phase(0, schedule.p0);
    driver.run_phase(schedule.p0, schedule.p1);
    pipeline.drain();  // quiesce injection before the plan lifts (see above)
  }
  driver.run_phase(schedule.p1, schedule.ops.size());
  pipeline.drain();
  const StreamMetrics m = pipeline.metrics();
  EXPECT_EQ(m.rung, LadderRung::kHealthy);  // recovered after the plan lifted
  EXPECT_GT(m.transitions_up, 0u);
  EXPECT_EQ(m.transitions_up, m.transitions_down);  // every rung exited
  EXPECT_GT(m.rung_entries[static_cast<size_t>(LadderRung::kPressured)], 0u);
  EXPECT_GT(m.stalls, 0u);
  EXPECT_EQ(m.lag, 0u);
  const auto events = pipeline.transitions();
  EXPECT_EQ(events.size(), m.transitions_up + m.transitions_down);
  pipeline.stop();
}

}  // namespace
}  // namespace sdb::stream
