#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include "core/partial_cluster.hpp"
#include "util/counters.hpp"

#include <cstdio>
#include <filesystem>

namespace sdb {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  BinaryWriter w;
  w.write_u8(200);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x123456789abcdef0ull);
  w.write_i64(-42);
  w.write_f64(3.14159);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 200u);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x123456789abcdef0ull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, StringRoundTrip) {
  BinaryWriter w;
  w.write_string("");
  w.write_string("hello world");
  w.write_string(std::string("bin\0ary", 7));
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), std::string("bin\0ary", 7));
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, VectorRoundTrip) {
  BinaryWriter w;
  w.write_i64_vec({1, -2, 3});
  w.write_f64_vec({});
  w.write_f64_vec({0.5, -1.5});
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_i64_vec(), (std::vector<i64>{1, -2, 3}));
  EXPECT_TRUE(r.read_f64_vec().empty());
  EXPECT_EQ(r.read_f64_vec(), (std::vector<double>{0.5, -1.5}));
}

TEST(Serialize, RemainingAndPosition) {
  BinaryWriter w;
  w.write_u64(1);
  w.write_u64(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 16u);
  r.read_u64();
  EXPECT_EQ(r.position(), 8u);
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(SerializeDeath, TruncatedInputAborts) {
  BinaryWriter w;
  w.write_u32(7);
  BinaryReader r(w.buffer());
  EXPECT_DEATH(r.read_u64(), "truncated");
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdb_serialize_test.bin")
          .string();
  const std::vector<char> data = {'a', 'b', '\0', 'c'};
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  std::filesystem::remove(path);
}

TEST(Serialize, FileIoCharactersCounted) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdb_serialize_count.bin")
          .string();
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    write_file(path, std::vector<char>(100, 'x'));
    (void)read_file(path);
  }
  EXPECT_EQ(wc.bytes_written, 100u);
  EXPECT_EQ(wc.bytes_read, 100u);
  std::filesystem::remove(path);
}

TEST(Serialize, EmptyFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdb_serialize_empty.bin")
          .string();
  write_file(path, {});
  EXPECT_TRUE(read_file(path).empty());
  std::filesystem::remove(path);
}

// --- partial-cluster wire format (what the job checkpoint persists) --------
// A checkpointed record is replayed byte-for-byte into the merge on resume,
// so the round trip must be exact for every shape a partition can produce.

void expect_equal(const dbscan::PartialCluster& a,
                  const dbscan::PartialCluster& b) {
  EXPECT_EQ(a.uid, b.uid);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(PartialClusterSerialize, SeedsAtPartitionBoundariesRoundTrip) {
  dbscan::PartialCluster pc;
  pc.partition = 2;
  pc.uid = dbscan::PartialCluster::make_uid(2, 7);
  pc.members = {10, 11, 12};
  // SEEDs reference points OWNED BY OTHER PARTITIONS — including ids at the
  // boundary of the id space (first point, last point).
  pc.seeds = {0, 9, 13, 999'999'999};
  BinaryWriter w;
  serialize(pc, w);
  BinaryReader r(w.buffer());
  expect_equal(dbscan::deserialize_partial_cluster(r), pc);
  EXPECT_TRUE(r.at_end());
}

TEST(PartialClusterSerialize, EmptyClusterRoundTrips) {
  dbscan::PartialCluster pc;
  pc.partition = 0;
  pc.uid = dbscan::PartialCluster::make_uid(0, 0);
  BinaryWriter w;
  serialize(pc, w);
  BinaryReader r(w.buffer());
  expect_equal(dbscan::deserialize_partial_cluster(r), pc);
}

TEST(PartialClusterSerialize, MaxUidRoundTrips) {
  // make_uid packs (partition << 32) | local index; saturate both halves.
  dbscan::PartialCluster pc;
  pc.partition = static_cast<PartitionId>(0x7fffffff);
  pc.uid = dbscan::PartialCluster::make_uid(pc.partition, 0xffffffffu);
  pc.members = {1};
  BinaryWriter w;
  serialize(pc, w);
  BinaryReader r(w.buffer());
  const dbscan::PartialCluster back = dbscan::deserialize_partial_cluster(r);
  expect_equal(back, pc);
  EXPECT_EQ(back.uid >> 32, 0x7fffffffu);
  EXPECT_EQ(back.uid & 0xffffffffu, 0xffffffffu);
}

TEST(PartialClusterSerialize, AllNoiseLocalResultRoundTrips) {
  // A partition that found nothing: no clusters, every local point noise.
  dbscan::LocalClusterResult result;
  result.partition = 3;
  result.noise = {30, 31, 32, 33};
  const dbscan::LocalClusterResult back =
      dbscan::local_result_from_bytes(dbscan::to_bytes(result));
  EXPECT_EQ(back.partition, result.partition);
  EXPECT_TRUE(back.clusters.empty());
  EXPECT_TRUE(back.core_points.empty());
  EXPECT_EQ(back.noise, result.noise);
}

TEST(PartialClusterSerialize, FullLocalResultRoundTrips) {
  dbscan::LocalClusterResult result;
  result.partition = 1;
  for (u32 i = 0; i < 3; ++i) {
    dbscan::PartialCluster pc;
    pc.partition = 1;
    pc.uid = dbscan::PartialCluster::make_uid(1, i);
    pc.members = {static_cast<PointId>(i * 10), static_cast<PointId>(i * 10 + 1)};
    pc.seeds = {static_cast<PointId>(100 + i)};
    result.clusters.push_back(std::move(pc));
  }
  result.core_points = {10, 11, 20, 21};
  result.noise = {5};
  const dbscan::LocalClusterResult back =
      dbscan::local_result_from_bytes(dbscan::to_bytes(result));
  EXPECT_EQ(back.partition, result.partition);
  ASSERT_EQ(back.clusters.size(), 3u);
  for (size_t i = 0; i < 3; ++i) expect_equal(back.clusters[i], result.clusters[i]);
  EXPECT_EQ(back.core_points, result.core_points);
  EXPECT_EQ(back.noise, result.noise);
}

}  // namespace
}  // namespace sdb
