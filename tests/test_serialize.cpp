#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include "util/counters.hpp"

#include <cstdio>
#include <filesystem>

namespace sdb {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  BinaryWriter w;
  w.write_u8(200);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x123456789abcdef0ull);
  w.write_i64(-42);
  w.write_f64(3.14159);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 200u);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x123456789abcdef0ull);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, StringRoundTrip) {
  BinaryWriter w;
  w.write_string("");
  w.write_string("hello world");
  w.write_string(std::string("bin\0ary", 7));
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), std::string("bin\0ary", 7));
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, VectorRoundTrip) {
  BinaryWriter w;
  w.write_i64_vec({1, -2, 3});
  w.write_f64_vec({});
  w.write_f64_vec({0.5, -1.5});
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.read_i64_vec(), (std::vector<i64>{1, -2, 3}));
  EXPECT_TRUE(r.read_f64_vec().empty());
  EXPECT_EQ(r.read_f64_vec(), (std::vector<double>{0.5, -1.5}));
}

TEST(Serialize, RemainingAndPosition) {
  BinaryWriter w;
  w.write_u64(1);
  w.write_u64(2);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 16u);
  r.read_u64();
  EXPECT_EQ(r.position(), 8u);
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(SerializeDeath, TruncatedInputAborts) {
  BinaryWriter w;
  w.write_u32(7);
  BinaryReader r(w.buffer());
  EXPECT_DEATH(r.read_u64(), "truncated");
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdb_serialize_test.bin")
          .string();
  const std::vector<char> data = {'a', 'b', '\0', 'c'};
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  std::filesystem::remove(path);
}

TEST(Serialize, FileIoCharactersCounted) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdb_serialize_count.bin")
          .string();
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    write_file(path, std::vector<char>(100, 'x'));
    (void)read_file(path);
  }
  EXPECT_EQ(wc.bytes_written, 100u);
  EXPECT_EQ(wc.bytes_read, 100u);
  std::filesystem::remove(path);
}

TEST(Serialize, EmptyFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdb_serialize_empty.bin")
          .string();
  write_file(path, {});
  EXPECT_TRUE(read_file(path).empty());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sdb
