#include "core/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dbscan_seq.hpp"
#include "core/local_dbscan.hpp"
#include "core/merge.hpp"
#include "core/spark_dbscan.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

LocalClusterResult sample_result() {
  LocalClusterResult r;
  r.partition = 2;
  PartialCluster a;
  a.uid = PartialCluster::make_uid(2, 0);
  a.partition = 2;
  a.members = {200, 201, 205, 210, 260};
  a.seeds = {10, 900};
  PartialCluster b;
  b.uid = PartialCluster::make_uid(2, 1);
  b.partition = 2;
  b.members = {300};
  r.clusters = {a, b};
  r.core_points = {200, 201, 300};
  r.noise = {250, 251};
  return r;
}

std::vector<i64> sorted(std::vector<i64> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class CodecRoundTrip : public ::testing::TestWithParam<Codec> {};

TEST_P(CodecRoundTrip, PreservesContentAsSets) {
  const auto r = sample_result();
  const LocalClusterResult back = decode(encode(r, GetParam()), GetParam());
  EXPECT_EQ(back.partition, r.partition);
  ASSERT_EQ(back.clusters.size(), r.clusters.size());
  for (size_t i = 0; i < r.clusters.size(); ++i) {
    EXPECT_EQ(back.clusters[i].uid, r.clusters[i].uid);
    EXPECT_EQ(sorted(back.clusters[i].members), sorted(r.clusters[i].members));
    EXPECT_EQ(sorted(back.clusters[i].seeds), sorted(r.clusters[i].seeds));
  }
  EXPECT_EQ(sorted(back.core_points), sorted(r.core_points));
  EXPECT_EQ(sorted(back.noise), sorted(r.noise));
}

TEST_P(CodecRoundTrip, EmptyResult) {
  LocalClusterResult r;
  r.partition = 0;
  const LocalClusterResult back = decode(encode(r, GetParam()), GetParam());
  EXPECT_TRUE(back.clusters.empty());
  EXPECT_TRUE(back.core_points.empty());
  EXPECT_TRUE(back.noise.empty());
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecRoundTrip,
                         ::testing::Values(Codec::kRaw, Codec::kCompact),
                         [](const auto& info) {
                           return std::string(codec_name(info.param));
                         });

TEST(Codec, CompactIsSubstantiallySmallerOnRealOutput) {
  // Encode an actual kernel output: block partitions make member ids dense,
  // which is the compact codec's design case.
  Rng rng(3);
  synth::UniformConfig cfg;
  cfg.n = 2000;
  cfg.dim = 2;
  cfg.box_side = 25.0;
  const PointSet ps = synth::uniform_points(cfg, rng);
  const KdTree tree(ps);
  const auto part = make_partitioning(PartitionerKind::kBlock, ps, 4);
  LocalDbscanConfig lcfg;
  lcfg.params = {1.0, 4};
  const auto local = local_dbscan(ps, tree, part, 1, lcfg);

  const size_t raw = encode(local, Codec::kRaw).size();
  const size_t compact = encode(local, Codec::kCompact).size();
  EXPECT_LT(compact * 3, raw) << "raw=" << raw << " compact=" << compact;
  // And it must still merge to the same clustering.
  const auto direct = merge_partial_clusters({local}, ps.size(), {});
  const auto via_codec = merge_partial_clusters(
      {decode(encode(local, Codec::kCompact), Codec::kCompact)}, ps.size(),
      {});
  EXPECT_EQ(direct.clustering.num_clusters, via_codec.clustering.num_clusters);
  EXPECT_EQ(direct.clustering.noise_count(), via_codec.clustering.noise_count());
}

TEST(Codec, ChargesCodecBytes) {
  WorkCounters wc;
  const auto r = sample_result();
  {
    ScopedCounters scope(&wc);
    const std::string bytes = encode(r, Codec::kCompact);
    decode(bytes, Codec::kCompact);
  }
  EXPECT_GT(wc.codec_bytes, 0u);
}

TEST(Codec, CompactTrailingGarbageAborts) {
  std::string bytes = encode(sample_result(), Codec::kCompact);
  bytes += '\0';
  EXPECT_DEATH(decode(bytes, Codec::kCompact), "trailing");
}

TEST(Codec, SparkPipelineEquivalentUnderBothCodecs) {
  Rng rng(5);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 600;
  gcfg.dim = 2;
  gcfg.clusters = 3;
  gcfg.sigma = 0.5;
  gcfg.box_side = 50.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);

  auto run = [&](Codec codec) {
    minispark::ClusterConfig cluster;
    cluster.executors = 4;
    cluster.straggler.fraction = 0.0;
    minispark::SparkContext ctx(cluster);
    SparkDbscanConfig cfg;
    cfg.params = {1.0, 5};
    cfg.partitions = 4;
    cfg.codec = codec;
    SparkDbscan dbscan(ctx, cfg);
    return dbscan.run(ps);
  };
  const auto raw = run(Codec::kRaw);
  const auto compact = run(Codec::kCompact);
  EXPECT_EQ(raw.clustering.num_clusters, compact.clustering.num_clusters);
  EXPECT_EQ(raw.clustering.noise_count(), compact.clustering.noise_count());
  EXPECT_LT(compact.accumulator_bytes, raw.accumulator_bytes);
}

}  // namespace
}  // namespace sdb::dbscan
