// The simulated cluster clock: cost model arithmetic and its scaling laws.
#include <gtest/gtest.h>

#include "minispark/cost_model.hpp"
#include "minispark/metrics.hpp"

namespace sdb::minispark {
namespace {

TEST(CostModel, ComputeSecondsLinearInOps) {
  CostModel cm;
  WorkCounters a;
  a.distance_evals = 1'000'000;
  WorkCounters b = a;
  b.distance_evals = 2'000'000;
  EXPECT_NEAR(cm.compute_seconds(b), 2.0 * cm.compute_seconds(a), 1e-12);
}

TEST(CostModel, AllOpKindsPriced) {
  CostModel cm;
  WorkCounters wc;
  EXPECT_DOUBLE_EQ(cm.compute_seconds(wc), 0.0);
  wc.distance_evals = 1;
  const double d1 = cm.compute_seconds(wc);
  EXPECT_GT(d1, 0.0);
  wc.tree_nodes = 1;
  wc.hash_ops = 1;
  wc.queue_ops = 1;
  wc.points_processed = 1;
  wc.seed_ops = 1;
  wc.merge_ops = 1;
  EXPECT_GT(cm.compute_seconds(wc), d1);
}

TEST(CostModel, DiskBytesPricedAtBandwidth) {
  CostModel cm;
  WorkCounters wc;
  wc.bytes_read = static_cast<u64>(cm.disk_read_bps);  // 1 second worth
  EXPECT_NEAR(cm.compute_seconds(wc), 1.0, 1e-9);
  WorkCounters ww;
  ww.bytes_written = static_cast<u64>(cm.disk_write_bps);
  EXPECT_NEAR(cm.compute_seconds(ww), 1.0, 1e-9);
}

TEST(CostModel, NetworkBytesIncludeLatency) {
  CostModel cm;
  WorkCounters wc;
  wc.net_bytes = static_cast<u64>(cm.net_bps);
  EXPECT_NEAR(cm.compute_seconds(wc), 1.0 + cm.net_latency_s, 1e-9);
}

TEST(CostModel, BroadcastGrowsSublinearlyWithExecutors) {
  CostModel cm;
  const u64 bytes = 100'000'000;
  const double t2 = cm.broadcast_seconds(bytes, 2);
  const double t512 = cm.broadcast_seconds(bytes, 512);
  EXPECT_GT(t512, t2);
  // Torrent-style: 256x the executors costs far less than 256x the time.
  EXPECT_LT(t512, t2 * 16);
}

TEST(CostModel, TransferLinearInBytes) {
  CostModel cm;
  const double t1 = cm.transfer_seconds(1'000'000);
  const double t2 = cm.transfer_seconds(2'000'000);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(t2 - t1, 1e6 / cm.net_bps, 1e-12);
}

TEST(ListSchedule, EqualTasksPerfectSpeedup) {
  const std::vector<double> tasks(64, 1.0);
  for (const u32 cores : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    EXPECT_DOUBLE_EQ(list_schedule_makespan(tasks, cores),
                     64.0 / cores);
  }
}

TEST(ListSchedule, ImbalanceLimitsSpeedup) {
  // One long task bounds the makespan no matter how many cores.
  std::vector<double> tasks(15, 1.0);
  tasks.push_back(10.0);
  EXPECT_DOUBLE_EQ(list_schedule_makespan(tasks, 1000), 10.0);
}

TEST(ListSchedule, MoreCoresNeverSlower) {
  const std::vector<double> tasks = {5, 3, 8, 1, 1, 9, 2, 4};
  double prev = list_schedule_makespan(tasks, 1);
  for (u32 c = 2; c <= 16; ++c) {
    const double now = list_schedule_makespan(tasks, c);
    EXPECT_LE(now, prev + 1e-12);
    prev = now;
  }
}

TEST(ListSchedule, SingleCoreIsSum) {
  const std::vector<double> tasks = {0.5, 1.5, 2.0};
  EXPECT_DOUBLE_EQ(list_schedule_makespan(tasks, 1), 4.0);
}

TEST(ListSchedule, FullScheduleLaws) {
  const std::vector<double> d = {3, 1, 4, 1, 5};
  const auto schedule = list_schedule(d, 2);
  ASSERT_EQ(schedule.size(), 5u);
  // Tasks appear once, in submission order.
  for (u32 t = 0; t < 5; ++t) EXPECT_EQ(schedule[t].task, t);
  // No overlap on any core.
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].end_s, schedule[i].start_s);
    EXPECT_LT(schedule[i].core, 2u);
    for (size_t j = i + 1; j < schedule.size(); ++j) {
      if (schedule[i].core != schedule[j].core) continue;
      const bool disjoint = schedule[i].end_s <= schedule[j].start_s ||
                            schedule[j].end_s <= schedule[i].start_s;
      EXPECT_TRUE(disjoint) << "tasks " << i << "," << j << " overlap";
    }
  }
  // Schedule end agrees with the makespan function.
  double end = 0.0;
  for (const auto& t : schedule) end = std::max(end, t.end_s);
  EXPECT_DOUBLE_EQ(end, list_schedule_makespan(d, 2));
}

TEST(ListSchedule, WorkConservingNoIdleBeforeLastStart) {
  // Greedy list scheduling never leaves a core idle while tasks wait.
  const std::vector<double> d = {2, 2, 2, 2, 2, 2, 2};
  const auto schedule = list_schedule(d, 3);
  for (const auto& t : schedule) {
    // With equal durations on 3 cores, task t starts at floor(t/3)*2.
    EXPECT_DOUBLE_EQ(t.start_s, static_cast<double>(t.task / 3) * 2.0);
  }
}

TEST(Gantt, RendersOneRowPerCore) {
  const std::vector<double> d = {1, 1, 2};
  const auto schedule = list_schedule(d, 2);
  const std::string gantt = render_gantt(schedule, 2, 40);
  EXPECT_EQ(std::count(gantt.begin(), gantt.end(), '\n'), 2);
  EXPECT_NE(gantt.find("core   0 |"), std::string::npos);
  EXPECT_NE(gantt.find('0'), std::string::npos);
  EXPECT_NE(gantt.find('2'), std::string::npos);
}

TEST(Gantt, EmptyScheduleEmptyChart) {
  EXPECT_TRUE(render_gantt({}, 4, 40).empty());
}

TEST(StragglerModel, DefaultsSane) {
  StragglerModel s;
  EXPECT_GE(s.fraction, 0.0);
  EXPECT_LE(s.fraction, 1.0);
  EXPECT_GE(s.max_extra, 0.0);
}

}  // namespace
}  // namespace sdb::minispark
