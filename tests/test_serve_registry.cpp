// ModelRegistry + QueryEngine concurrency and behavior.
//
// The registry test is the RCU torture loop: N reader threads classify
// against whatever snapshot is current while one writer inserts/removes and
// publishes epochs. Every reader answer must be consistent with SOME
// published snapshot — guaranteed here by re-asking the exact snapshot the
// reader held (immutability means the recomputation must reproduce the
// recorded answer even long after newer epochs replaced it). Run this
// binary under TSan (cmake -DSDB_SANITIZE=thread, ctest -L sanitize) to
// machine-check the read path for data races.
#include "serve/model_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "fault/fault_plan.hpp"
#include "serve/query_engine.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::serve {
namespace {

ModelRegistry::Config small_config(double eps = 0.08, i64 minpts = 4,
                                   u64 publish_every = 16) {
  ModelRegistry::Config cfg;
  cfg.params = dbscan::DbscanParams{eps, minpts};
  cfg.publish_every = publish_every;
  return cfg;
}

TEST(ServeRegistry, StartsWithEmptySnapshot) {
  ModelRegistry registry(small_config(), 2);
  const auto model = registry.model();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->summary().total_points, 0u);
  EXPECT_EQ(registry.epoch(), 1u);  // the construction-time publish
  const std::vector<double> q{0.1, 0.2};
  EXPECT_EQ(model->classify(q), kNoise);
}

TEST(ServeRegistry, EpochCadencePublishes) {
  ModelRegistry registry(small_config(0.08, 4, /*publish_every=*/8), 2);
  const u64 start = registry.epoch();
  Rng rng(5);
  for (int i = 0; i < 17; ++i) {
    const std::vector<double> p{rng.uniform(), rng.uniform()};
    registry.insert(p);
  }
  // 17 mutations at cadence 8 -> exactly 2 automatic publishes.
  EXPECT_EQ(registry.epoch(), start + 2);
  const u64 manual = registry.publish();
  EXPECT_EQ(manual, start + 3);
  EXPECT_EQ(registry.model()->epoch(), manual);
  EXPECT_EQ(registry.model()->summary().total_points, 17u);
}

TEST(ServeRegistry, EpochSemanticsAtCadenceBoundaries) {
  // Table-driven boundary sweep: for each cadence c, drive exactly 0, c-1,
  // c and c+1 mutations and pin down (a) how many automatic publishes
  // happened, (b) that the published snapshot contains exactly the first
  // floor(m/c)*c mutations — no torn snapshot exposing a partial epoch —
  // and (c) that staleness is bounded by one epoch (< c mutations).
  for (const u64 cadence : {u64{1}, u64{4}, u64{8}, u64{64}}) {
    for (const u64 offset : {u64{0}, cadence - 1, cadence, cadence + 1}) {
      const u64 mutations = offset;
      ModelRegistry registry(small_config(0.08, 4, cadence), 2);
      const u64 start = registry.epoch();  // construction-time publish
      Rng rng(100 + cadence);
      for (u64 i = 0; i < mutations; ++i) {
        const std::vector<double> p{rng.uniform(), rng.uniform()};
        registry.insert(p);
      }
      const u64 expected_publishes = mutations / cadence;
      EXPECT_EQ(registry.epoch(), start + expected_publishes)
          << "cadence=" << cadence << " mutations=" << mutations;
      const auto snapshot = registry.model();
      // The snapshot a reader grabs is the one the epoch counter names.
      EXPECT_EQ(snapshot->epoch(), registry.epoch());
      // No torn epoch: the snapshot holds exactly the mutations of its
      // epoch boundary, never a prefix of an unpublished batch.
      EXPECT_EQ(snapshot->summary().total_points,
                expected_publishes * cadence)
          << "cadence=" << cadence << " mutations=" << mutations;
      // Staleness beyond one epoch is impossible by construction.
      EXPECT_LT(mutations - snapshot->summary().total_points, cadence);
      // Catching up manually publishes the remainder.
      registry.publish();
      EXPECT_EQ(registry.model()->summary().total_points, mutations);
    }
  }
}

TEST(ServeRegistry, BootstrapMatchesIncrementalSemantics) {
  Rng rng(11);
  const PointSet points = synth::blobs_2d(400, 3, 0.05, 40, rng);
  ModelRegistry registry(small_config(0.05, 5, 0), 2);
  registry.bootstrap(points);
  const auto model = registry.model();
  EXPECT_EQ(model->summary().total_points, points.size());
  EXPECT_GT(model->summary().num_clusters, 0u);
  EXPECT_GT(model->core_count(), 0u);
}

TEST(ServeRegistry, RemoveInvalidIdsRejected) {
  ModelRegistry registry(small_config(), 2);
  EXPECT_FALSE(registry.try_remove(-1));
  EXPECT_FALSE(registry.try_remove(0));
  const std::vector<double> p{0.0, 0.0};
  const PointId id = registry.insert(p);
  EXPECT_TRUE(registry.try_remove(id));
  EXPECT_FALSE(registry.try_remove(id));  // already removed
}

// The satellite-task test: N readers, one mutating/publishing writer.
TEST(ServeRegistry, ConcurrentReadersSeeConsistentSnapshots) {
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 2000;
  constexpr int kWriterMutations = 600;

  ModelRegistry registry(small_config(0.08, 4, /*publish_every=*/25), 2);
  // Seed enough structure that classify answers are non-trivial.
  {
    Rng rng(23);
    const PointSet seed_points = synth::blobs_2d(300, 3, 0.05, 30, rng);
    registry.bootstrap(seed_points);
  }

  struct Observation {
    std::shared_ptr<const ClusterModel> model;
    std::vector<double> query;
    ClusterId answer;
  };

  std::atomic<bool> writer_done{false};
  std::vector<std::vector<Observation>> observations(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + static_cast<u64>(r));
      auto& obs = observations[static_cast<size_t>(r)];
      obs.reserve(kQueriesPerReader);
      u64 last_epoch = 0;
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const std::shared_ptr<const ClusterModel> model = registry.model();
        ASSERT_NE(model, nullptr);
        // Epochs can only move forward for any single reader.
        ASSERT_GE(model->epoch(), last_epoch);
        last_epoch = model->epoch();
        std::vector<double> query{rng.uniform(), rng.uniform()};
        const ClusterId answer = model->classify(query);
        // The answer must be valid for THIS snapshot.
        ASSERT_TRUE(answer == kNoise ||
                    (answer >= 0 &&
                     static_cast<u64>(answer) < model->num_clusters()));
        if (q % 16 == 0) {  // keep memory bounded; sample observations
          obs.push_back({model, std::move(query), answer});
        }
      }
    });
  }

  std::thread writer([&] {
    Rng rng(999);
    std::vector<PointId> live;
    for (int m = 0; m < kWriterMutations; ++m) {
      if (!live.empty() && rng.chance(0.25)) {
        const size_t pick = rng.uniform_index(live.size());
        registry.try_remove(live[pick]);
        live.erase(live.begin() + static_cast<long>(pick));
      } else {
        const std::vector<double> p{rng.uniform(), rng.uniform()};
        live.push_back(registry.insert(p));
      }
    }
    writer_done.store(true);
  });

  for (auto& t : readers) t.join();
  writer.join();

  // Replay: every recorded answer must be reproducible against the exact
  // snapshot that produced it (torn/mutated snapshots would diverge).
  u64 replayed = 0;
  for (const auto& reader_obs : observations) {
    for (const Observation& o : reader_obs) {
      ASSERT_EQ(o.model->classify(o.query), o.answer);
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 0u);
  EXPECT_TRUE(writer_done.load());
  EXPECT_GT(registry.publishes(), 1u);
}

// --- QueryEngine ---

struct EngineFixture {
  ModelRegistry registry;
  EngineFixture() : registry(small_config(0.05, 5, 0), 2) {
    Rng rng(7);
    const PointSet points = synth::blobs_2d(500, 4, 0.05, 50, rng);
    registry.bootstrap(points);
  }
};

TEST(ServeEngine, ClassifyLookupInsertRemoveRoundTrip) {
  EngineFixture fx;
  QueryEngine::Config cfg;
  cfg.threads = 2;
  QueryEngine engine(fx.registry, cfg);

  // Synchronous execute covers all four verbs.
  Request classify;
  classify.type = RequestType::kClassify;
  classify.point = {0.5, 0.5};
  const Reply c = engine.execute(classify);
  EXPECT_EQ(c.status, ReplyStatus::kOk);

  Request lookup;
  lookup.type = RequestType::kLookup;
  lookup.id = 0;
  const Reply l = engine.execute(lookup);
  EXPECT_EQ(l.status, ReplyStatus::kOk);
  EXPECT_EQ(l.label, fx.registry.model()->label_of(0));

  Request insert;
  insert.type = RequestType::kInsert;
  insert.point = {0.25, 0.25};
  const Reply i = engine.execute(insert);
  EXPECT_EQ(i.status, ReplyStatus::kOk);
  EXPECT_GE(i.id, 0);

  Request remove;
  remove.type = RequestType::kRemove;
  remove.id = i.id;
  EXPECT_EQ(engine.execute(remove).status, ReplyStatus::kOk);
  EXPECT_EQ(engine.execute(remove).status, ReplyStatus::kNotFound);

  Request bad;
  bad.type = RequestType::kClassify;
  bad.point = {1.0, 2.0, 3.0};  // wrong dimension
  EXPECT_EQ(engine.execute(bad).status, ReplyStatus::kInvalid);

  // Well-formed but unknown id -> kNotFound; malformed (negative) -> kInvalid.
  Request bad_lookup;
  bad_lookup.type = RequestType::kLookup;
  bad_lookup.id = 1'000'000;
  EXPECT_EQ(engine.execute(bad_lookup).status, ReplyStatus::kNotFound);
  bad_lookup.id = -7;
  EXPECT_EQ(engine.execute(bad_lookup).status, ReplyStatus::kInvalid);
}

TEST(ServeEngine, AsyncSubmitDeliversReplies) {
  EngineFixture fx;
  QueryEngine::Config cfg;
  cfg.threads = 2;
  cfg.queue_capacity = 4096;
  QueryEngine engine(fx.registry, cfg);

  constexpr int kN = 500;
  std::atomic<int> ok{0};
  Rng rng(31);
  for (int i = 0; i < kN; ++i) {
    Request req;
    req.type = RequestType::kClassify;
    req.point = {rng.uniform(), rng.uniform()};
    ASSERT_TRUE(engine.try_submit(std::move(req), [&](const Reply& reply) {
      if (reply.status == ReplyStatus::kOk) ok.fetch_add(1);
    }));
  }
  engine.drain();
  EXPECT_EQ(ok.load(), kN);
  const auto m = engine.metrics();
  EXPECT_EQ(m.accepted, static_cast<u64>(kN));
  EXPECT_EQ(m.completed, static_cast<u64>(kN));
  EXPECT_EQ(m.shed, 0u);
  EXPECT_EQ(m.latency.total(), static_cast<u64>(kN));
  EXPECT_GT(m.latency.quantile_micros(0.99),
            0.0);  // histogram actually recorded
}

TEST(ServeEngine, BackpressureShedsWithOverloaded) {
  EngineFixture fx;
  QueryEngine::Config cfg;
  cfg.threads = 1;
  cfg.queue_capacity = 4;  // tiny queue to force shedding deterministically
  QueryEngine engine(fx.registry, cfg);

  // Block the single worker so the queue cannot drain.
  std::atomic<bool> release{false};
  Request gate;
  gate.type = RequestType::kClassify;
  gate.point = {0.5, 0.5};
  ASSERT_TRUE(engine.try_submit(gate, [&](const Reply&) {
    while (!release.load()) std::this_thread::yield();
  }));

  // Fill the remaining capacity, then everything further must shed.
  int admitted = 0;
  int shed = 0;
  std::atomic<int> overloaded_replies{0};
  for (int i = 0; i < 64; ++i) {
    Request req;
    req.type = RequestType::kClassify;
    req.point = {0.1, 0.1};
    const bool in = engine.try_submit(req, [&](const Reply& reply) {
      if (reply.status == ReplyStatus::kOverloaded) {
        overloaded_replies.fetch_add(1);
      }
    });
    (in ? admitted : shed) += 1;
  }
  EXPECT_GT(shed, 0);
  EXPECT_LE(admitted, 4);
  EXPECT_EQ(overloaded_replies.load(), shed);
  release.store(true);
  engine.drain();
  const auto m = engine.metrics();
  EXPECT_EQ(m.shed, static_cast<u64>(shed));
  EXPECT_GT(m.shed_rate(), 0.0);
}

TEST(ServeEngine, CacheHitsOnRepeatedQueriesAndInvalidatesOnPublish) {
  EngineFixture fx;
  QueryEngine::Config cfg;
  cfg.threads = 1;
  QueryEngine engine(fx.registry, cfg);

  Request req;
  req.type = RequestType::kClassify;
  req.point = {0.42, 0.42};
  const Reply first = engine.execute(req);
  EXPECT_FALSE(first.cache_hit);
  const Reply second = engine.execute(req);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.label, first.label);

  // A publish bumps the epoch; the cached entry must not serve stale data.
  fx.registry.publish();
  const Reply third = engine.execute(req);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.epoch, first.epoch + 1);
  EXPECT_EQ(third.label, first.label);  // model content unchanged

  const auto m = engine.metrics();
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.cache_misses, 2u);
}

TEST(ServeEngine, BatchSubmitAdmitsUpToCapacity) {
  EngineFixture fx;
  QueryEngine::Config cfg;
  cfg.threads = 1;
  cfg.queue_capacity = 8;
  QueryEngine engine(fx.registry, cfg);

  // Admission of a batch is one atomic reservation, so with nothing in
  // flight a 32-request batch against capacity 8 admits exactly 8.
  std::vector<Request> batch(32);
  for (auto& r : batch) {
    r.type = RequestType::kClassify;
    r.point = {0.3, 0.3};
  }
  std::atomic<int> done{0};
  const size_t admitted = engine.try_submit_batch(
      std::move(batch), [&](const Reply&) { done.fetch_add(1); });
  EXPECT_EQ(admitted, 8u);
  engine.drain();
  EXPECT_EQ(done.load(), static_cast<int>(admitted));
  const auto m = engine.metrics();
  EXPECT_EQ(m.shed, 32 - admitted);
  EXPECT_EQ(m.completed, admitted);
}

TEST(ServeEngine, StalledWriterDegradesMutationsButServesReads) {
  EngineFixture fx;
  QueryEngine::Config cfg;
  cfg.threads = 1;
  QueryEngine engine(fx.registry, cfg);
  const u64 mutations_before = fx.registry.mutations();
  const u64 epoch_before = fx.registry.epoch();

  fx.registry.set_stalled(true);

  // Mutations are refused with the backpressure signal, not blocked. Go
  // through the async path so the degraded metric is recorded (execute()
  // is the metric-free synchronous path).
  Request insert;
  insert.type = RequestType::kInsert;
  insert.point = {0.5, 0.5};
  std::atomic<int> degraded_replies{0};
  u64 degraded_epoch = 0;
  ASSERT_TRUE(engine.try_submit(insert, [&](const Reply& reply) {
    if (reply.status == ReplyStatus::kDegraded) {
      degraded_replies.fetch_add(1);
      degraded_epoch = reply.epoch;
    }
  }));
  Request remove;
  remove.type = RequestType::kRemove;
  remove.id = 0;
  ASSERT_TRUE(engine.try_submit(remove, [&](const Reply& reply) {
    if (reply.status == ReplyStatus::kDegraded) degraded_replies.fetch_add(1);
  }));
  engine.drain();
  EXPECT_EQ(degraded_replies.load(), 2);
  EXPECT_EQ(degraded_epoch, epoch_before);  // the epoch still being served

  // Reads keep serving from the last published snapshot.
  Request classify;
  classify.type = RequestType::kClassify;
  classify.point = {0.5, 0.5};
  EXPECT_EQ(engine.execute(classify).status, ReplyStatus::kOk);
  Request lookup;
  lookup.type = RequestType::kLookup;
  lookup.id = 0;
  EXPECT_EQ(engine.execute(lookup).status, ReplyStatus::kOk);

  EXPECT_EQ(fx.registry.mutations(), mutations_before);  // nothing applied
  EXPECT_EQ(fx.registry.stall_rejections(), 2u);
  EXPECT_EQ(engine.metrics().degraded, 2u);

  // Recovery: un-stall and the same mutation goes through.
  fx.registry.set_stalled(false);
  EXPECT_EQ(engine.execute(insert).status, ReplyStatus::kOk);
}

#ifdef SDB_FAULT_INJECTION
TEST(ServeEngine, InjectedRegistryStallDegradesExactlyPerBudget) {
  EngineFixture fx;
  QueryEngine::Config cfg;
  cfg.threads = 1;
  QueryEngine engine(fx.registry, cfg);
  fault::ScopedFaultPlan chaos("seed=41;serve.registry.stall:budget=1");
  Request insert;
  insert.type = RequestType::kInsert;
  insert.point = {0.4, 0.4};
  EXPECT_EQ(engine.execute(insert).status, ReplyStatus::kDegraded);
  EXPECT_EQ(engine.execute(insert).status, ReplyStatus::kOk);  // budget spent
  EXPECT_EQ(fx.registry.stall_rejections(), 1u);
}
#endif  // SDB_FAULT_INJECTION

TEST(ServeEngine, MutationsThroughEngineAdvanceEpochs) {
  EngineFixture fx;
  QueryEngine::Config cfg;
  cfg.threads = 2;
  QueryEngine engine(fx.registry, cfg);
  const u64 epoch_before = fx.registry.epoch();

  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    Request req;
    req.type = RequestType::kInsert;
    req.point = {rng.uniform(), rng.uniform()};
    ASSERT_TRUE(engine.try_submit(std::move(req)));
  }
  engine.drain();
  fx.registry.publish();
  EXPECT_GT(fx.registry.epoch(), epoch_before);
  EXPECT_EQ(fx.registry.model()->summary().total_points, 500u + 50u + 40u);
  const auto m = engine.metrics();
  EXPECT_EQ(m.by_type[static_cast<size_t>(RequestType::kInsert)], 40u);
  EXPECT_GT(m.work.distance_evals, 0u);  // insert work is accounted
}

}  // namespace
}  // namespace sdb::serve
