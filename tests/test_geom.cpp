#include <gtest/gtest.h>

#include "geom/aabb.hpp"
#include "geom/distance.hpp"
#include "geom/point_set.hpp"

namespace sdb {
namespace {

TEST(PointSet, AddAndAccess) {
  PointSet ps(3);
  EXPECT_TRUE(ps.empty());
  const double a[3] = {1, 2, 3};
  const double b[3] = {4, 5, 6};
  EXPECT_EQ(ps.add(a), 0);
  EXPECT_EQ(ps.add(b), 1);
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.dim(), 3);
  EXPECT_DOUBLE_EQ(ps[0][0], 1);
  EXPECT_DOUBLE_EQ(ps[1][2], 6);
}

TEST(PointSet, AdoptRawData) {
  PointSet ps(2, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[2][1], 6);
  EXPECT_EQ(ps.byte_size(), 6 * sizeof(double));
}

TEST(PointSetDeath, BadRawSizeAborts) {
  EXPECT_DEATH(PointSet(2, {1.0, 2.0, 3.0}), "multiple of dim");
}

TEST(Distance, KnownValues) {
  const double a[2] = {0, 0};
  const double b[2] = {3, 4};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_TRUE(within_eps(a, b, 5.0));
  EXPECT_FALSE(within_eps(a, b, 4.999));
}

TEST(Distance, CountsEvaluations) {
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    const double a[2] = {0, 0};
    const double b[2] = {1, 1};
    squared_distance(a, b);
    distance(a, b);
    within_eps(a, b, 2.0);
  }
  EXPECT_EQ(wc.distance_evals, 3u);
}

TEST(Aabb, ExtendAndContains) {
  Aabb box(2);
  EXPECT_TRUE(box.is_empty());
  const double a[2] = {0, 0};
  const double b[2] = {2, 3};
  box.extend(a);
  box.extend(b);
  EXPECT_FALSE(box.is_empty());
  const double inside[2] = {1, 1};
  const double outside[2] = {3, 1};
  EXPECT_TRUE(box.contains(inside));
  EXPECT_FALSE(box.contains(outside));
}

TEST(Aabb, DistanceToPoint) {
  Aabb box({0, 0}, {1, 1});
  const double inside[2] = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(box.squared_distance_to(inside), 0.0);
  const double right[2] = {3, 0.5};
  EXPECT_DOUBLE_EQ(box.squared_distance_to(right), 4.0);
  const double corner[2] = {2, 2};
  EXPECT_DOUBLE_EQ(box.squared_distance_to(corner), 2.0);
}

TEST(Aabb, IntersectsBall) {
  Aabb box({0, 0}, {1, 1});
  const double p[2] = {2, 0.5};
  EXPECT_TRUE(box.intersects_ball(p, 1.0));
  EXPECT_FALSE(box.intersects_ball(p, 0.99));
}

}  // namespace
}  // namespace sdb
