#include "synth/presets.hpp"

#include <gtest/gtest.h>

namespace sdb::synth {
namespace {

TEST(Presets, TableIContents) {
  const auto& presets = table1_presets();
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_EQ(presets[0].name, "c10k");
  EXPECT_EQ(presets[0].points, 10'000);
  EXPECT_EQ(presets[1].name, "c100k");
  EXPECT_EQ(presets[1].points, 102'400);
  EXPECT_EQ(presets[2].name, "r10k");
  EXPECT_EQ(presets[3].name, "r100k");
  EXPECT_EQ(presets[4].name, "r1m");
  EXPECT_EQ(presets[4].points, 1'024'000);
  for (const auto& p : presets) {
    EXPECT_EQ(p.dim, 10);
    EXPECT_DOUBLE_EQ(p.eps, 25.0);
    EXPECT_EQ(p.minpts, 5);
  }
}

TEST(Presets, FindByName) {
  EXPECT_TRUE(find_preset("r100k").has_value());
  EXPECT_EQ(find_preset("r100k")->points, 102'400);
  EXPECT_FALSE(find_preset("nope").has_value());
}

TEST(Presets, KindAssignment) {
  EXPECT_EQ(find_preset("c10k")->kind, DatasetKind::kCluster);
  EXPECT_EQ(find_preset("r1m")->kind, DatasetKind::kUniform);
}

TEST(Presets, GenerateScaled) {
  const auto spec = *find_preset("c10k");
  const PointSet ps = generate(spec, 42, 0.1);
  EXPECT_EQ(ps.size(), 1000u);
  EXPECT_EQ(ps.dim(), 10);
}

TEST(Presets, GenerateDeterministic) {
  const auto spec = *find_preset("r10k");
  const PointSet a = generate(spec, 42, 0.05);
  const PointSet b = generate(spec, 42, 0.05);
  EXPECT_EQ(a.raw(), b.raw());
  const PointSet c = generate(spec, 43, 0.05);
  EXPECT_NE(a.raw(), c.raw());
}

TEST(Presets, MinimumSizeFloor) {
  const auto spec = *find_preset("r10k");
  const PointSet ps = generate(spec, 42, 0.0001);
  EXPECT_GE(ps.size(), 64u);
}

TEST(PresetsDeath, BadScaleAborts) {
  const auto spec = *find_preset("r10k");
  EXPECT_DEATH(generate(spec, 42, 0.0), "scale");
  EXPECT_DEATH(generate(spec, 42, 1.5), "scale");
}

}  // namespace
}  // namespace sdb::synth
