#include "core/local_dbscan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dbscan_seq.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

PointSet line_points(std::initializer_list<double> xs) {
  PointSet ps(1);
  for (const double x : xs) {
    const double p[1] = {x};
    ps.add(p);
  }
  return ps;
}

TEST(LocalDbscan, OnlyLocalPointsAreMembers) {
  // One dense chain split across two partitions by index.
  const PointSet ps = line_points({0, 1, 2, 3, 4, 5, 6, 7});
  const KdTree tree(ps);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 2);
  LocalDbscanConfig cfg;
  cfg.params = {1.5, 3};
  const auto r0 = local_dbscan(ps, tree, part, 0, cfg);
  for (const auto& pc : r0.clusters) {
    for (const PointId m : pc.members) {
      EXPECT_EQ(part.owner[static_cast<size_t>(m)], 0);
    }
    for (const PointId s : pc.seeds) {
      EXPECT_NE(part.owner[static_cast<size_t>(s)], 0);
    }
  }
}

TEST(LocalDbscan, SeedsPointAcrossTheCut) {
  const PointSet ps = line_points({0, 1, 2, 3, 4, 5, 6, 7});
  const KdTree tree(ps);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 2);
  LocalDbscanConfig cfg;
  cfg.params = {1.5, 3};
  cfg.seed_strategy = SeedStrategy::kAllForeign;
  const auto r0 = local_dbscan(ps, tree, part, 0, cfg);
  ASSERT_EQ(r0.clusters.size(), 1u);
  // Point 4 (and possibly 5) are within eps of partition 0's points.
  const auto& seeds = r0.clusters[0].seeds;
  EXPECT_NE(std::find(seeds.begin(), seeds.end(), 4), seeds.end());
}

TEST(LocalDbscan, OnePerPartitionPlacesAtMostOneSeedPerPartition) {
  Rng rng(3);
  synth::UniformConfig ucfg;
  ucfg.n = 400;
  ucfg.dim = 2;
  ucfg.box_side = 20.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 4);
  LocalDbscanConfig cfg;
  cfg.params = {1.5, 4};
  cfg.seed_strategy = SeedStrategy::kOnePerPartition;
  for (PartitionId p = 0; p < 4; ++p) {
    const auto local = local_dbscan(ps, tree, part, p, cfg);
    for (const auto& pc : local.clusters) {
      std::vector<int> per_partition(4, 0);
      for (const PointId s : pc.seeds) {
        ++per_partition[static_cast<size_t>(part.owner[static_cast<size_t>(s)])];
      }
      for (const int c : per_partition) EXPECT_LE(c, 1);
    }
  }
}

TEST(LocalDbscan, AllForeignSeedsAreDeduplicated) {
  const PointSet ps = line_points({0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5});
  const KdTree tree(ps);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 2);
  LocalDbscanConfig cfg;
  cfg.params = {1.2, 3};
  cfg.seed_strategy = SeedStrategy::kAllForeign;
  const auto r0 = local_dbscan(ps, tree, part, 0, cfg);
  for (const auto& pc : r0.clusters) {
    auto seeds = pc.seeds;
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  }
}

TEST(LocalDbscan, CorePointsAreGloballyExact) {
  // Core-ness must match sequential DBSCAN exactly: neighborhoods come from
  // the broadcast index over ALL points, not just the partition.
  Rng rng(7);
  synth::UniformConfig ucfg;
  ucfg.n = 300;
  ucfg.dim = 2;
  ucfg.box_side = 15.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  const DbscanParams params{1.0, 4};
  const auto seq = dbscan_sequential(ps, tree, params);
  std::vector<char> seq_core(ps.size(), 0);
  for (const PointId c : seq.core_points) seq_core[static_cast<size_t>(c)] = 1;

  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 3);
  LocalDbscanConfig cfg;
  cfg.params = params;
  std::vector<char> par_core(ps.size(), 0);
  for (PartitionId p = 0; p < 3; ++p) {
    const auto local = local_dbscan(ps, tree, part, p, cfg);
    for (const PointId c : local.core_points) {
      par_core[static_cast<size_t>(c)] = 1;
    }
  }
  EXPECT_EQ(seq_core, par_core);
}

TEST(LocalDbscan, EveryLocalPointAccountedFor) {
  // Each local point is a member of exactly one partial cluster OR noise.
  Rng rng(9);
  synth::UniformConfig ucfg;
  ucfg.n = 500;
  ucfg.dim = 3;
  ucfg.box_side = 25.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 4);
  LocalDbscanConfig cfg;
  cfg.params = {1.8, 4};
  for (PartitionId p = 0; p < 4; ++p) {
    const auto local = local_dbscan(ps, tree, part, p, cfg);
    std::vector<int> seen(ps.size(), 0);
    for (const auto& pc : local.clusters) {
      for (const PointId m : pc.members) ++seen[static_cast<size_t>(m)];
    }
    for (const PointId q : local.noise) ++seen[static_cast<size_t>(q)];
    for (const PointId id : part.parts[static_cast<size_t>(p)]) {
      EXPECT_EQ(seen[static_cast<size_t>(id)], 1) << "point " << id;
    }
  }
}

TEST(LocalDbscan, SinglePartitionEqualsSequential) {
  // With one partition there are no SEEDs and the result must match
  // Algorithm 1 exactly (same counts; labels up to renaming).
  Rng rng(13);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 400;
  gcfg.dim = 2;
  gcfg.clusters = 3;
  gcfg.sigma = 0.5;
  gcfg.box_side = 50.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const KdTree tree(ps);
  const DbscanParams params{1.0, 4};
  const auto seq = dbscan_sequential(ps, tree, params);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 1);
  LocalDbscanConfig cfg;
  cfg.params = params;
  const auto local = local_dbscan(ps, tree, part, 0, cfg);
  EXPECT_EQ(local.clusters.size(), seq.clustering.num_clusters);
  EXPECT_EQ(local.noise.size(), seq.clustering.noise_count());
  EXPECT_EQ(local.core_points.size(), seq.core_points.size());
  for (const auto& pc : local.clusters) EXPECT_TRUE(pc.seeds.empty());
}

TEST(LocalDbscan, PartialClusterUidsUniqueAndDecodable) {
  const PointSet ps = line_points({0, 1, 2, 10, 11, 12, 20, 21, 22});
  const KdTree tree(ps);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 3);
  LocalDbscanConfig cfg;
  cfg.params = {1.5, 2};
  std::vector<u64> uids;
  for (PartitionId p = 0; p < 3; ++p) {
    const auto local = local_dbscan(ps, tree, part, p, cfg);
    for (const auto& pc : local.clusters) {
      EXPECT_EQ(pc.partition, p);
      EXPECT_EQ(pc.uid >> 32, static_cast<u64>(static_cast<u32>(p)));
      uids.push_back(pc.uid);
    }
  }
  std::sort(uids.begin(), uids.end());
  EXPECT_EQ(std::adjacent_find(uids.begin(), uids.end()), uids.end());
}

TEST(LocalDbscan, FragmentationGrowsWithPartitions) {
  // The paper's Figure 6 observation: more partitions -> more partial
  // clusters.
  Rng rng(17);
  synth::UniformConfig ucfg;
  ucfg.n = 1500;
  ucfg.dim = 2;
  ucfg.box_side = 30.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  LocalDbscanConfig cfg;
  cfg.params = {1.0, 4};
  auto total_partial = [&](u32 parts) {
    const Partitioning part =
        make_partitioning(PartitionerKind::kBlock, ps, parts);
    u64 total = 0;
    for (u32 p = 0; p < parts; ++p) {
      total += local_dbscan(ps, tree, part, static_cast<PartitionId>(p), cfg)
                   .clusters.size();
    }
    return total;
  };
  const u64 m1 = total_partial(1);
  const u64 m8 = total_partial(8);
  EXPECT_GT(m8, m1);
}

TEST(LocalDbscan, FrontierDedupBoundsQueueOnDenseBlob) {
  // Regression for the frontier duplicate blow-up: on a dense blob every
  // neighborhood overlaps almost every other, so enqueuing each neighbor
  // unconditionally pushed the same ids O(minpts) times each and the
  // frontier ballooned far past n. With push-time dedup, each local point
  // enters the frontier at most once per cluster: the high-water mark is
  // bounded by n and total queue traffic is O(n), not O(n * avg_degree).
  Rng rng(21);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 600;
  gcfg.dim = 2;
  gcfg.clusters = 1;
  gcfg.sigma = 0.8;
  gcfg.box_side = 10.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const KdTree tree(ps);
  const DbscanParams params{2.0, 8};
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 1);
  LocalDbscanConfig cfg;
  cfg.params = params;

  WorkCounters wc;
  LocalClusterResult local;
  {
    ScopedCounters scope(&wc);
    local = local_dbscan(ps, tree, part, 0, cfg);
  }
  const u64 n = ps.size();
  // The blob is dense enough that the old code's peak was ~sum of
  // neighborhood sizes (hundreds of times n here); these bounds fail loudly
  // if the dedup regresses.
  EXPECT_LE(wc.frontier_peak, n);
  EXPECT_GT(wc.frontier_peak, 0u);
  EXPECT_LE(wc.queue_ops, 4 * n);  // pushes + pops, <= 2 per id per cluster

  // And the dedup must not change the clustering itself.
  const auto seq = dbscan_sequential(ps, tree, params);
  EXPECT_EQ(local.clusters.size(), seq.clustering.num_clusters);
  EXPECT_EQ(local.noise.size(), seq.clustering.noise_count());
  EXPECT_EQ(local.core_points.size(), seq.core_points.size());
}

TEST(LocalDbscan, DeterministicAcrossRepeatedRuns) {
  // members/seeds/noise are contract output (SEEDs drive the cross-partition
  // merge): repeated runs must produce byte-identical vectors, including
  // order. Guards the enqueue-dedup rewrite preserving first-occurrence
  // expansion order.
  Rng rng(23);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 500;
  gcfg.dim = 2;
  gcfg.clusters = 2;
  gcfg.sigma = 0.6;
  gcfg.box_side = 20.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const KdTree tree(ps);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 3);
  LocalDbscanConfig cfg;
  cfg.params = {1.5, 5};
  for (PartitionId p = 0; p < 3; ++p) {
    const auto first = local_dbscan(ps, tree, part, p, cfg);
    const auto again = local_dbscan(ps, tree, part, p, cfg);
    ASSERT_EQ(first.clusters.size(), again.clusters.size());
    for (size_t c = 0; c < first.clusters.size(); ++c) {
      EXPECT_EQ(first.clusters[c].uid, again.clusters[c].uid);
      EXPECT_EQ(first.clusters[c].members, again.clusters[c].members);
      EXPECT_EQ(first.clusters[c].seeds, again.clusters[c].seeds);
    }
    EXPECT_EQ(first.noise, again.noise);
    EXPECT_EQ(first.core_points, again.core_points);
  }
}

TEST(LocalDbscanDeath, BadPartitionAborts) {
  const PointSet ps = line_points({0, 1});
  const KdTree tree(ps);
  const Partitioning part = make_partitioning(PartitionerKind::kBlock, ps, 2);
  LocalDbscanConfig cfg;
  EXPECT_DEATH(local_dbscan(ps, tree, part, 5, cfg), "partition id");
}

}  // namespace
}  // namespace sdb::dbscan
