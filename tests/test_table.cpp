#include "util/table.hpp"

#include <gtest/gtest.h>

namespace sdb {
namespace {

TEST(Table, AsciiAlignment) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| longer-name |"), std::string::npos);
  // Every line has equal width.
  size_t width = 0;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) break;
    if (width == 0) width = eol - pos;
    EXPECT_EQ(eol - pos, width);
    pos = eol + 1;
  }
}

TEST(Table, CsvEscaping) {
  TablePrinter t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(TablePrinter::cell(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::cell(static_cast<i64>(-5)), "-5");
  EXPECT_EQ(TablePrinter::cell(static_cast<u64>(7)), "7");
}

TEST(Table, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableDeath, ArityMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

}  // namespace
}  // namespace sdb
