// kNN graph builder contract (knn/knn_graph.hpp): exact rows against the
// brute-force oracle, NN-descent recall against exact rows, bit-determinism
// across thread counts, and self-healing under the knn.graph.drop_edge
// chaos site.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "fault/fault_plan.hpp"
#include "geom/distance.hpp"
#include "knn/knn_graph.hpp"
#include "synth/generators.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace sdb::knn {
namespace {

PointSet embedding_fixture(i64 n, int dim, u64 seed, int clusters = 5) {
  Rng rng(seed);
  synth::EmbeddingConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.intrinsic_dim = std::min(cfg.intrinsic_dim, std::max(1, dim / 2));
  cfg.clusters = clusters;
  return synth::embedding_clusters(cfg, rng);
}

/// Expected row of point i: exact kNN under (d2, id), self excluded.
std::vector<std::pair<double, PointId>> oracle_row(const PointSet& ps,
                                                   PointId i, u32 k) {
  std::vector<std::pair<double, PointId>> all;
  for (PointId j = 0; j < static_cast<PointId>(ps.size()); ++j) {
    if (j == i) continue;
    all.emplace_back(squared_distance_uncounted(ps[i], ps[j]), j);
  }
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  return all;
}

void expect_row_equals_oracle(const PointSet& ps, const KnnGraph& g,
                              PointId i) {
  const auto want = oracle_row(ps, i, g.k());
  const auto ids = g.row_ids(i);
  const auto d2s = g.row_d2(i);
  ASSERT_EQ(g.row_size(i), want.size()) << "i=" << i;
  for (size_t s = 0; s < want.size(); ++s) {
    EXPECT_EQ(ids[s], want[s].second) << "i=" << i << " slot=" << s;
    EXPECT_EQ(d2s[s], want[s].first) << "i=" << i << " slot=" << s;
  }
  for (size_t s = want.size(); s < g.k(); ++s) {
    EXPECT_EQ(ids[s], kNoNeighbor) << "i=" << i << " slot=" << s;
  }
}

TEST(KnnGraphExact, RowsMatchBruteOracleLowAndHighDim) {
  for (const int dim : {3, 64, 128}) {
    const PointSet ps = embedding_fixture(300, dim, 100 + dim);
    KnnGraphConfig cfg;
    cfg.k = 12;
    cfg.build = KnnGraphConfig::Build::kExact;
    KnnGraphBuildStats stats;
    const KnnGraph g = build_knn_graph(ps, cfg, &stats);
    ASSERT_EQ(g.size(), ps.size()) << "dim=" << dim;
    ASSERT_EQ(g.k(), cfg.k) << "dim=" << dim;
    EXPECT_EQ(stats.rounds, 0u);
    EXPECT_EQ(stats.distance_evals, ps.size() * (ps.size() - 1));
    for (PointId i = 0; i < static_cast<PointId>(ps.size()); ++i) {
      expect_row_equals_oracle(ps, g, i);
    }
  }
}

TEST(KnnGraphExact, ChargesDistanceEvalsToCallerSink) {
  const PointSet ps = embedding_fixture(200, 16, 9);
  KnnGraphConfig cfg;
  cfg.k = 8;
  cfg.build = KnnGraphConfig::Build::kExact;
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    (void)build_knn_graph(ps, cfg);
  }
  EXPECT_EQ(wc.distance_evals, ps.size() * (ps.size() - 1));
}

TEST(KnnGraphExact, ShortRowsWhenKExceedsN) {
  PointSet ps(4);
  ps.add(std::vector<double>{0, 0, 0, 0});
  ps.add(std::vector<double>{1, 0, 0, 0});
  ps.add(std::vector<double>{0, 2, 0, 0});
  KnnGraphConfig cfg;
  cfg.k = 8;
  cfg.build = KnnGraphConfig::Build::kExact;
  const KnnGraph g = build_knn_graph(ps, cfg);
  for (PointId i = 0; i < 3; ++i) {
    EXPECT_EQ(g.row_size(i), 2u) << "i=" << i;
    expect_row_equals_oracle(ps, g, i);
    EXPECT_TRUE(std::isinf(g.kth_distance2(i))) << "short row -> +inf";
  }
  EXPECT_EQ(g.row_ids(0)[0], 1);  // d2=1 beats d2=4
  EXPECT_EQ(g.row_d2(0)[0], 1.0);
}

TEST(KnnGraphExact, TieAtKthSlotBrokenByPointId) {
  // Point 0 at origin; four partners at identical d2=4 along different
  // axes. With k=2 the row must keep the two LOWEST ids of the tie group.
  PointSet ps(4);
  ps.add(std::vector<double>{0, 0, 0, 0});
  ps.add(std::vector<double>{2, 0, 0, 0});
  ps.add(std::vector<double>{0, 2, 0, 0});
  ps.add(std::vector<double>{0, 0, 2, 0});
  ps.add(std::vector<double>{0, 0, 0, 2});
  KnnGraphConfig cfg;
  cfg.k = 2;
  cfg.build = KnnGraphConfig::Build::kExact;
  const KnnGraph g = build_knn_graph(ps, cfg);
  const auto ids = g.row_ids(0);
  EXPECT_EQ(ids[0], 1);
  EXPECT_EQ(ids[1], 2);
  EXPECT_EQ(g.kth_distance2(0), 4.0);
}

TEST(KnnGraphDescent, HighRecallOnEmbeddingWorkload) {
  for (const int dim : {64, 128}) {
    const PointSet ps = embedding_fixture(1500, dim, 7 + dim);
    KnnGraphConfig exact_cfg;
    exact_cfg.k = 16;
    exact_cfg.build = KnnGraphConfig::Build::kExact;
    const KnnGraph exact = build_knn_graph(ps, exact_cfg);

    KnnGraphConfig cfg = exact_cfg;
    cfg.build = KnnGraphConfig::Build::kDescent;
    KnnGraphBuildStats stats;
    const KnnGraph approx = build_knn_graph(ps, cfg, &stats);

    const double recall = graph_recall(exact, approx);
    EXPECT_GE(recall, 0.90) << "dim=" << dim << " rounds=" << stats.rounds;
    EXPECT_GT(stats.rounds, 0u) << "dim=" << dim;
    EXPECT_GT(stats.updates, 0u) << "dim=" << dim;
    // Descent must cost strictly fewer pair evaluations than the O(n^2)
    // exact scan even at this small n; the asymptotic gap (the point of
    // the build — rounds scale with n*k^2, not n^2) is measured by
    // bench_knn at 10k points, where the ratio is several-fold.
    EXPECT_LT(stats.distance_evals, ps.size() * (ps.size() - 1))
        << "dim=" << dim;
  }
}

TEST(KnnGraphDescent, RowsAreSortedSelfFreeAndDuplicateFree) {
  const PointSet ps = embedding_fixture(800, 128, 3);
  KnnGraphConfig cfg;
  cfg.k = 10;
  const KnnGraph g = build_knn_graph(ps, cfg);
  for (PointId i = 0; i < static_cast<PointId>(ps.size()); ++i) {
    const auto ids = g.row_ids(i);
    const auto d2s = g.row_d2(i);
    const u32 m = g.row_size(i);
    EXPECT_EQ(m, cfg.k) << "i=" << i;  // n-1 >> k: rows must be full
    for (u32 s = 0; s < m; ++s) {
      EXPECT_NE(ids[s], i) << "self edge at i=" << i;
      EXPECT_EQ(d2s[s], squared_distance_uncounted(ps[i], ps[ids[s]]))
          << "stored d2 must be the true distance, i=" << i;
      if (s > 0) {
        EXPECT_LT((std::pair{d2s[s - 1], ids[s - 1]}),
                  (std::pair{d2s[s], ids[s]}))
            << "row not ascending (d2, id) at i=" << i;
      }
    }
  }
}

TEST(KnnGraphDescent, BitDeterministicAcrossThreadCounts) {
  const PointSet ps = embedding_fixture(1200, 64, 55);
  for (const auto build :
       {KnnGraphConfig::Build::kExact, KnnGraphConfig::Build::kDescent}) {
    KnnGraphConfig cfg;
    cfg.k = 12;
    cfg.build = build;
    cfg.threads = 1;
    const u64 base = build_knn_graph(ps, cfg).digest();
    for (const unsigned threads : {0u, 2u, 4u, 7u}) {
      cfg.threads = threads;
      EXPECT_EQ(build_knn_graph(ps, cfg).digest(), base)
          << "threads=" << threads << " build=" << static_cast<int>(build);
    }
  }
}

TEST(KnnGraphDescent, SeedChangesInitButConvergesToSimilarQuality) {
  const PointSet ps = embedding_fixture(1000, 64, 12);
  KnnGraphConfig exact_cfg;
  exact_cfg.k = 12;
  exact_cfg.build = KnnGraphConfig::Build::kExact;
  const KnnGraph exact = build_knn_graph(ps, exact_cfg);
  KnnGraphConfig cfg = exact_cfg;
  cfg.build = KnnGraphConfig::Build::kDescent;
  cfg.seed = 1;
  const KnnGraph a = build_knn_graph(ps, cfg);
  cfg.seed = 2;
  const KnnGraph b = build_knn_graph(ps, cfg);
  EXPECT_GE(graph_recall(exact, a), 0.90);
  EXPECT_GE(graph_recall(exact, b), 0.90);
}

#ifdef SDB_FAULT_INJECTION
TEST(KnnGraphChaos, DropEdgeFaultsSelfHealAndReplayByteIdentically) {
  // knn.graph.drop_edge skips candidate evaluations mid-build. NN-descent
  // is self-healing: a dropped candidate can resurface through a later
  // round's local join, and a budget-bounded plan must still yield a graph
  // good enough to cluster with. Replaying the same spec must reproduce
  // the exact same faulted graph (digest equality) — the repro contract of
  // the chaos framework.
  const PointSet ps = embedding_fixture(900, 64, 31);
  KnnGraphConfig exact_cfg;
  exact_cfg.k = 12;
  exact_cfg.build = KnnGraphConfig::Build::kExact;
  const KnnGraph exact = build_knn_graph(ps, exact_cfg);

  KnnGraphConfig cfg = exact_cfg;
  cfg.build = KnnGraphConfig::Build::kDescent;
  cfg.threads = 1;  // chaos runs pin one thread: totally ordered fault log

  for (const u64 fault_seed : {1u, 2u, 3u}) {
    const std::string spec = "seed=" + std::to_string(fault_seed) +
                             ";knn.graph.drop_edge:p=0.02,budget=500";
    SCOPED_TRACE("fault spec: " + spec);

    u64 first_digest = 0;
    u64 first_log = 0;
    {
      fault::ScopedFaultPlan chaos(spec);
      KnnGraphBuildStats stats;
      const KnnGraph faulted = build_knn_graph(ps, cfg, &stats);
      EXPECT_GT(stats.dropped_edges, 0u) << "plan never fired";
      EXPECT_GE(graph_recall(exact, faulted), 0.85)
          << "faulted build did not converge";
      first_digest = faulted.digest();
      first_log = chaos.plan().log_digest();
    }
    {
      fault::ScopedFaultPlan chaos(spec);
      const KnnGraph replay = build_knn_graph(ps, cfg);
      EXPECT_EQ(replay.digest(), first_digest);
      EXPECT_EQ(chaos.plan().log_digest(), first_log);
    }
  }
}

TEST(KnnGraphChaos, NoPlanMeansNoDrops) {
  const PointSet ps = embedding_fixture(400, 64, 8);
  KnnGraphConfig cfg;
  cfg.k = 8;
  KnnGraphBuildStats stats;
  (void)build_knn_graph(ps, cfg, &stats);
  EXPECT_EQ(stats.dropped_edges, 0u);
}
#endif  // SDB_FAULT_INJECTION

TEST(KnnGraphRecall, IdentityAndDisjointBounds) {
  const PointSet ps = embedding_fixture(300, 16, 4);
  KnnGraphConfig cfg;
  cfg.k = 8;
  cfg.build = KnnGraphConfig::Build::kExact;
  const KnnGraph g = build_knn_graph(ps, cfg);
  EXPECT_EQ(graph_recall(g, g), 1.0);

  // An empty approximate graph recovers nothing.
  const KnnGraph empty(ps.size(), cfg.k);
  EXPECT_EQ(graph_recall(g, empty), 0.0);
}

}  // namespace
}  // namespace sdb::knn
