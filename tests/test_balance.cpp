// Workload-balance summaries over JobMetrics — the measurement behind the
// paper's closing concern: "We did not partition data points based on the
// neighborhood relationship in our work and that might cause workload to be
// unbalanced."
#include <gtest/gtest.h>

#include "minispark/metrics.hpp"
#include "minispark/spark_context.hpp"

namespace sdb::minispark {
namespace {

TEST(BalanceStats, UniformTasksBalanced) {
  JobMetrics job;
  for (int i = 0; i < 8; ++i) {
    TaskMetrics t;
    t.sim_s = 2.0;
    t.locality_hit = true;
    job.tasks.push_back(t);
  }
  const BalanceStats b = balance_stats(job);
  EXPECT_DOUBLE_EQ(b.min_task_s, 2.0);
  EXPECT_DOUBLE_EQ(b.max_task_s, 2.0);
  EXPECT_DOUBLE_EQ(b.mean_task_s, 2.0);
  EXPECT_DOUBLE_EQ(b.imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(b.locality_rate, 1.0);
}

TEST(BalanceStats, SkewDetected) {
  JobMetrics job;
  for (const double s : {1.0, 1.0, 1.0, 5.0}) {
    TaskMetrics t;
    t.sim_s = s;
    job.tasks.push_back(t);
  }
  const BalanceStats b = balance_stats(job);
  EXPECT_DOUBLE_EQ(b.min_task_s, 1.0);
  EXPECT_DOUBLE_EQ(b.max_task_s, 5.0);
  EXPECT_DOUBLE_EQ(b.mean_task_s, 2.0);
  EXPECT_DOUBLE_EQ(b.imbalance(), 2.5);  // max / mean
}

TEST(BalanceStats, EmptyJob) {
  JobMetrics job;
  const BalanceStats b = balance_stats(job);
  EXPECT_DOUBLE_EQ(b.imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(b.locality_rate, 1.0);
}

TEST(BalanceStats, LocalityRate) {
  JobMetrics job;
  for (int i = 0; i < 4; ++i) {
    TaskMetrics t;
    t.sim_s = 1.0;
    t.locality_hit = i < 3;
    job.tasks.push_back(t);
  }
  EXPECT_DOUBLE_EQ(balance_stats(job).locality_rate, 0.75);
}

TEST(BalanceStats, RealJobEndToEnd) {
  ClusterConfig cfg;
  cfg.executors = 4;
  cfg.straggler.fraction = 0.0;
  SparkContext ctx(cfg);
  // Deliberately skewed work: task p performs p * 1M counted ops.
  auto rdd = ctx.generate<int>(
      [](u32 p) {
        counters::distance_evals(static_cast<u64>(p) * 1000000);
        return std::vector<int>{1};
      },
      8, "skewed");
  ctx.count(*rdd);
  const BalanceStats b = balance_stats(ctx.last_job());
  EXPECT_GT(b.imbalance(), 1.5);
  EXPECT_GT(b.max_task_s, b.min_task_s);
}

}  // namespace
}  // namespace sdb::minispark
