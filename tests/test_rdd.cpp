#include "minispark/rdd.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "minispark/text_file_rdd.hpp"

namespace sdb::minispark {
namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Rdd, ParallelizeChunksCoverInput) {
  auto rdd = std::make_shared<ParallelizeRdd<int>>(iota_vec(10), 3);
  EXPECT_EQ(rdd->num_partitions(), 3u);
  std::vector<int> all;
  for (u32 p = 0; p < 3; ++p) {
    const auto part = rdd->compute(p);
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_EQ(all, iota_vec(10));
}

TEST(Rdd, ParallelizeMorePartitionsThanElements) {
  auto rdd = std::make_shared<ParallelizeRdd<int>>(iota_vec(2), 5);
  std::vector<int> all;
  for (u32 p = 0; p < 5; ++p) {
    const auto part = rdd->compute(p);
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_EQ(all, iota_vec(2));
}

TEST(Rdd, MapTransformsEveryElement) {
  auto rdd = std::make_shared<ParallelizeRdd<int>>(iota_vec(10), 2);
  auto doubled = rdd->map([](const int& x) { return x * 2; });
  EXPECT_EQ(doubled->num_partitions(), 2u);
  const auto part0 = doubled->compute(0);
  EXPECT_EQ(part0, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(Rdd, MapCanChangeType) {
  auto rdd = std::make_shared<ParallelizeRdd<int>>(iota_vec(3), 1);
  auto strings = rdd->map([](const int& x) { return std::to_string(x); });
  EXPECT_EQ(strings->compute(0), (std::vector<std::string>{"0", "1", "2"}));
}

TEST(Rdd, FilterKeepsMatching) {
  auto rdd = std::make_shared<ParallelizeRdd<int>>(iota_vec(10), 2);
  auto even = rdd->filter([](const int& x) { return x % 2 == 0; });
  const auto part0 = even->compute(0);
  const auto part1 = even->compute(1);
  EXPECT_EQ(part0, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(part1, (std::vector<int>{6, 8}));
}

TEST(Rdd, MapPartitionsSeesIndex) {
  auto rdd = std::make_shared<ParallelizeRdd<int>>(iota_vec(6), 3);
  auto tagged = rdd->map_partitions(
      [](u32 p, std::vector<int>&& data) {
        std::vector<u32> out;
        for (const int x : data) out.push_back(p * 100 + static_cast<u32>(x));
        return out;
      });
  EXPECT_EQ(tagged->compute(2), (std::vector<u32>{204, 205}));
}

TEST(Rdd, LineageDepthAndParents) {
  auto base = std::make_shared<ParallelizeRdd<int>>(iota_vec(4), 2);
  auto a = base->map([](const int& x) { return x + 1; });
  auto b = a->filter([](const int& x) { return x > 1; });
  EXPECT_EQ(base->lineage_depth(), 0u);
  EXPECT_EQ(a->lineage_depth(), 1u);
  EXPECT_EQ(b->lineage_depth(), 2u);
  ASSERT_EQ(b->parents().size(), 1u);
  EXPECT_EQ(b->parents()[0]->id(), a->id());
}

TEST(Rdd, ChainedTransformsCompose) {
  auto base = std::make_shared<ParallelizeRdd<int>>(iota_vec(100), 4);
  auto result = base->map([](const int& x) { return x * 3; })
                    ->filter([](const int& x) { return x % 2 == 0; })
                    ->map([](const int& x) { return x / 3; });
  std::vector<int> all;
  for (u32 p = 0; p < 4; ++p) {
    const auto part = result->compute(p);
    all.insert(all.end(), part.begin(), part.end());
  }
  // Multiples of 3 that are even, divided by 3 -> even numbers 0..98... the
  // x*3 even <=> x even, so all even x survive.
  std::vector<int> expected;
  for (int x = 0; x < 100; x += 2) expected.push_back(x);
  EXPECT_EQ(all, expected);
}

TEST(Rdd, CacheMemoizes) {
  int computations = 0;
  auto gen = std::make_shared<GeneratorRdd<int>>(
      [&computations](u32 p) {
        ++computations;
        return std::vector<int>{static_cast<int>(p)};
      },
      2);
  gen->cache();
  EXPECT_TRUE(gen->is_cached());
  EXPECT_EQ(gen->materialize(0), std::vector<int>{0});
  EXPECT_EQ(gen->materialize(0), std::vector<int>{0});
  EXPECT_EQ(gen->materialize(1), std::vector<int>{1});
  EXPECT_EQ(computations, 2);
  gen->uncache_all();
  gen->materialize(0);
  EXPECT_EQ(computations, 3);
}

TEST(Rdd, UncachedRecomputes) {
  int computations = 0;
  auto gen = std::make_shared<GeneratorRdd<int>>(
      [&computations](u32 p) {
        ++computations;
        return std::vector<int>{static_cast<int>(p)};
      },
      1);
  gen->materialize(0);
  gen->materialize(0);
  EXPECT_EQ(computations, 2);
}

TEST(TextFileRddTest, OnePartitionPerBlock) {
  namespace fs = std::filesystem;
  const std::string root = (fs::temp_directory_path() / "sdb_rdd_dfs").string();
  fs::remove_all(root);
  dfs::MiniDfs dfs(root, 16);
  std::string content;
  for (int i = 0; i < 20; ++i) content += "line-" + std::to_string(i) + "\n";
  dfs.write("/t", content);
  TextFileRdd rdd(dfs, "/t");
  EXPECT_EQ(rdd.num_partitions(), dfs.stat("/t").blocks.size());
  std::vector<std::string> all;
  for (u32 p = 0; p < rdd.num_partitions(); ++p) {
    const auto lines = rdd.compute(p);
    all.insert(all.end(), lines.begin(), lines.end());
  }
  ASSERT_EQ(all.size(), 20u);
  EXPECT_EQ(all[0], "line-0");
  EXPECT_EQ(all[19], "line-19");
  // Locality hints come from block replicas.
  EXPECT_FALSE(rdd.preferred_locations(0).empty());
  fs::remove_all(root);
}

}  // namespace
}  // namespace sdb::minispark
