// IngestPipeline behavior: micro-epoch batching, ack-stream exactness, the
// degradation ladder (engage under a stalled batcher, recover to healthy,
// restore the deferred-rebuild threshold), shedding backpressure with reads
// still served, and degraded-snapshot surfacing through QueryEngine.
//
// The ladder tests drive overload deterministically with the
// stream.queue.stall fault site (the batcher sleeps while a tight producer
// loop outruns it) instead of relying on scheduler luck. Run under TSan/ASan
// via the `sanitize` label.
#include "stream/ingest_pipeline.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/fault_plan.hpp"
#include "serve/query_engine.hpp"
#include "util/rng.hpp"

namespace sdb::stream {
namespace {

using dbscan::IncrementalDbscan;
using BatchOp = IncrementalDbscan::BatchOp;

serve::ModelRegistry::Config registry_config(size_t rebuild_threshold = 64) {
  serve::ModelRegistry::Config cfg;
  cfg.params = dbscan::DbscanParams{0.4, 4};
  cfg.rebuild_threshold = rebuild_threshold;
  cfg.publish_every = 0;  // the pipeline owns the epoch cadence
  return cfg;
}

/// Thread-safe ack recorder preserving arrival (= canonical apply) order.
struct AckLog {
  std::mutex mu;
  std::vector<Ack> acks;

  IngestPipeline::Config attach(IngestPipeline::Config cfg) {
    cfg.on_ack = [this](const Ack& ack) {
      const std::scoped_lock lock(mu);
      acks.push_back(ack);
    };
    return cfg;
  }
  std::vector<Ack> snapshot() {
    const std::scoped_lock lock(mu);
    return acks;
  }
};

std::vector<double> random_point(Rng& rng) {
  return {rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)};
}

TEST(StreamPipeline, CoalescesIntoMicroEpochs) {
  serve::ModelRegistry registry(registry_config(), 2);
  IngestPipeline::Config cfg;
  cfg.batch_max = 64;
  cfg.batch_deadline_us = 2000;
  IngestPipeline pipeline(registry, cfg);

  Rng rng(11);
  const size_t kOps = 600;
  for (size_t i = 0; i < kOps; ++i) {
    const auto r = pipeline.submit_insert(random_point(rng));
    ASSERT_TRUE(r.accepted);
    ASSERT_GT(r.ticket, 0u);
  }
  pipeline.drain();
  const StreamMetrics m = pipeline.metrics();
  EXPECT_EQ(m.accepted, kOps);
  EXPECT_EQ(m.batched_ops, kOps);
  EXPECT_EQ(m.acked, kOps);
  EXPECT_EQ(m.shed, 0u);
  // Coalescing happened: far fewer micro-epochs than ops.
  EXPECT_LT(m.batches, kOps);
  EXPECT_GE(m.publishes, 1u);
  EXPECT_EQ(m.lag, 0u);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(pipeline.rung(), LadderRung::kHealthy);
  // The drained state is visible to readers.
  EXPECT_EQ(registry.model()->summary().total_points, kOps);
  EXPECT_EQ(registry.active_points(), kOps);
}

// The ack stream IS the state: replaying each acked micro-epoch (acks arrive
// in canonical apply order) through a control IncrementalDbscan reproduces
// the registry's data plane bit-exactly.
TEST(StreamPipeline, AckReplayReproducesStateDigest) {
  serve::ModelRegistry registry(registry_config(), 2);
  AckLog log;
  IngestPipeline::Config cfg;
  cfg.batch_max = 32;
  cfg.batch_deadline_us = 500;
  IngestPipeline piped(registry, log.attach(cfg));

  Rng rng(29);
  std::vector<PointId> live;
  // Phase 1: seed inserts, drain so every id is acked and known.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(piped.submit_insert(random_point(rng)).accepted);
  }
  piped.drain();
  for (const Ack& ack : log.snapshot()) {
    ASSERT_TRUE(ack.applied);
    live.push_back(ack.id);
  }
  // Phase 2: mixed churn — removes of known ids (including a double-remove
  // and a never-issued id, which must ack applied=false) plus new inserts.
  for (int i = 0; i < 300; ++i) {
    if (!live.empty() && rng.chance(0.45)) {
      const size_t pick = rng.uniform_index(live.size());
      ASSERT_TRUE(piped.submit_remove(live[pick]).accepted);
      live.erase(live.begin() + static_cast<i64>(pick));
    } else {
      ASSERT_TRUE(piped.submit_insert(random_point(rng)).accepted);
    }
  }
  ASSERT_TRUE(piped.submit_remove(999999).accepted);  // never issued
  piped.drain();
  piped.stop();

  const std::vector<Ack> acks = log.snapshot();
  EXPECT_EQ(acks.size(), piped.metrics().accepted);
  // Group by micro-epoch and replay in canonical order.
  IncrementalDbscan::Config inc_cfg;
  inc_cfg.params = registry_config().params;
  inc_cfg.rebuild_threshold = 16;  // digest is rebuild-timing independent
  IncrementalDbscan control(inc_cfg, 2);
  std::map<u64, std::vector<BatchOp>> epochs;
  u64 invalid_acks = 0;
  for (const Ack& ack : acks) {
    EXPECT_FALSE(ack.dropped);  // no fault plan installed
    if (!ack.applied) {
      ++invalid_acks;
      continue;
    }
    epochs[ack.batch_seq].push_back(ack.op);
  }
  EXPECT_GE(invalid_acks, 1u);  // the never-issued remove
  for (auto& [seq, ops] : epochs) control.apply_batch(ops);
  EXPECT_EQ(control.digest(), registry.state_digest());
  EXPECT_EQ(control.active_size(), registry.active_points());
}

TEST(StreamPipeline, LadderEngagesUnderStallAndRestoresRebuildThreshold) {
  const size_t kBaseThreshold = 16;
  serve::ModelRegistry registry(registry_config(kBaseThreshold), 2);
  IngestPipeline::Config cfg;
  cfg.queue_capacity = 64;
  cfg.batch_max = 4;
  cfg.batch_deadline_us = 200;
  cfg.lag_capacity = 1e9;  // isolate the queue-depth watermark
  cfg.stall_micros = 4000;
  cfg.deferred_rebuild_factor = 8;
  IngestPipeline pipeline(registry, cfg);

  fault::ScopedFaultPlan chaos("seed=3;stream.queue.stall");
  Rng rng(7);
  // A tight producer loop outruns the stalled batcher (<= 4 ops per >= 4ms):
  // the queue fills, pressure crosses the pressured watermark.
  int submitted = 0;
  for (int i = 0; i < 4000 && pipeline.rung() < LadderRung::kPressured; ++i) {
    pipeline.submit_insert(random_point(rng));
    ++submitted;
  }
  ASSERT_GE(pipeline.rung(), LadderRung::kPressured) << "after " << submitted;
  // The deferred-rebuild rung raised the registry threshold.
  EXPECT_EQ(registry.rebuild_threshold(),
            kBaseThreshold * cfg.deferred_rebuild_factor);
  const StreamMetrics mid = pipeline.metrics();
  EXPECT_GE(mid.rung_entries[static_cast<size_t>(LadderRung::kPressured)], 1u);
  EXPECT_GE(mid.transitions_up, 1u);

  // Load stops; drain lets the ladder walk back down to healthy and restore
  // the threshold (the satellite: deferred rebuilds resume after recovery).
  pipeline.drain();
  EXPECT_EQ(pipeline.rung(), LadderRung::kHealthy);
  EXPECT_EQ(registry.rebuild_threshold(), kBaseThreshold);
  const StreamMetrics after = pipeline.metrics();
  EXPECT_GE(after.transitions_down, after.transitions_up);
  EXPECT_GT(after.stalls, 0u);
  EXPECT_EQ(after.lag, 0u);
  // Every transition edge was recorded as a structured event.
  const auto events = pipeline.transitions();
  EXPECT_EQ(events.size(), after.transitions_up + after.transitions_down);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
    EXPECT_EQ(std::abs(static_cast<int>(events[i].to) -
                       static_cast<int>(events[i].from)),
              1);  // always single edges
  }
}

TEST(StreamPipeline, SheddingRejectsWritesWhileReadsKeepServing) {
  serve::ModelRegistry registry(registry_config(), 2);
  // Publish a non-empty snapshot BEFORE the overload so reads have data.
  Rng rng(13);
  for (int i = 0; i < 64; ++i) registry.insert(random_point(rng));
  registry.publish();
  const u64 pre_epoch = registry.epoch();
  const auto pre_model = registry.model();

  IngestPipeline::Config cfg;
  cfg.queue_capacity = 32;
  cfg.batch_max = 2;
  cfg.batch_deadline_us = 200;
  cfg.lag_capacity = 1e9;
  cfg.stall_micros = 8000;
  cfg.retry_after_ms = 7.5;
  IngestPipeline pipeline(registry, cfg);

  fault::ScopedFaultPlan chaos("seed=5;stream.queue.stall");
  SubmitResult rejected;
  for (int i = 0; i < 4000; ++i) {
    const auto r = pipeline.submit_insert(random_point(rng));
    if (!r.accepted) {
      rejected = r;
      break;
    }
  }
  ASSERT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.rung, LadderRung::kShedding);
  EXPECT_DOUBLE_EQ(rejected.retry_after_ms, 7.5);
  EXPECT_GT(pipeline.metrics().shed, 0u);
  // Reads are untouched: the last published epoch still answers.
  const auto model = registry.model();
  EXPECT_GE(model->epoch(), pre_epoch);
  const std::vector<double> q{2.0, 2.0};
  EXPECT_EQ(pre_model->classify(q), pre_model->classify(q));
  EXPECT_GE(model->summary().total_points, 64u);

  // Recovery: load lifts, ladder descends, writes are accepted again.
  pipeline.drain();
  EXPECT_EQ(pipeline.rung(), LadderRung::kHealthy);
  EXPECT_TRUE(pipeline.submit_insert(random_point(rng)).accepted);
  pipeline.drain();
}

TEST(StreamPipeline, DegradedRungPublishesSubsampledSnapshots) {
  serve::ModelRegistry registry(registry_config(), 2);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) registry.insert(random_point(rng));
  registry.publish();
  ASSERT_FALSE(registry.model()->degraded());

  IngestPipeline::Config cfg;
  cfg.queue_capacity = 48;
  cfg.batch_max = 2;
  cfg.batch_deadline_us = 200;
  cfg.lag_capacity = 1e9;
  cfg.stall_micros = 6000;
  cfg.degraded_core_fraction = 0.5;
  IngestPipeline pipeline(registry, cfg);

  {
    fault::ScopedFaultPlan chaos("seed=9;stream.queue.stall");
    for (int i = 0; i < 4000 && pipeline.rung() < LadderRung::kDegraded; ++i) {
      pipeline.submit_insert(random_point(rng));
    }
    ASSERT_GE(pipeline.rung(), LadderRung::kDegraded);
    EXPECT_DOUBLE_EQ(registry.core_sample_fraction(), 0.5);
    // The drain-time publish happens while the fraction knob may still be
    // degraded, then the ladder recovers and restores exactness. Draining
    // INSIDE the plan scope also quiesces the batcher before the plan
    // lifts — ScopedFaultPlan's contract is that the plan outlives every
    // in-flight SDB_INJECT call, and the batcher stops injecting only once
    // it parks (empty queue, zero lag, healthy rung).
    pipeline.drain();
  }
  EXPECT_EQ(pipeline.rung(), LadderRung::kHealthy);
  EXPECT_DOUBLE_EQ(registry.core_sample_fraction(), 1.0);

  // Force a degraded publish deterministically to pin down the surfacing
  // path end to end (ladder timing decides whether drain's publish caught
  // the degraded window above).
  registry.set_core_sample_fraction(0.5);
  registry.publish();
  ASSERT_TRUE(registry.model()->degraded());
  EXPECT_DOUBLE_EQ(registry.model()->core_sample_fraction(), 0.5);

  serve::QueryEngine::Config qcfg;
  qcfg.threads = 1;
  serve::QueryEngine engine(registry, qcfg);
  serve::Request req;
  req.type = serve::RequestType::kClassify;
  req.point = {2.0, 2.0};
  serve::Reply reply = engine.execute(req);
  EXPECT_TRUE(reply.degraded_model);  // kDegraded-style status to callers

  // Exact publish clears the flag.
  registry.set_core_sample_fraction(1.0);
  registry.publish();
  reply = engine.execute(req);
  EXPECT_FALSE(reply.degraded_model);
  EXPECT_FALSE(registry.model()->degraded());

  // The metrics counter saw the degraded reads (execute() bypasses
  // admission but not completion accounting — count via try_submit).
  ASSERT_TRUE(registry.model());
  registry.set_core_sample_fraction(0.5);
  registry.publish();
  std::atomic<int> done{0};
  engine.try_submit(req, [&](const serve::Reply& r) {
    EXPECT_TRUE(r.degraded_model);
    done.fetch_add(1);
  });
  engine.drain();
  EXPECT_EQ(done.load(), 1);
  EXPECT_GE(engine.metrics().degraded_model_reads, 1u);
}

TEST(StreamPipeline, StopShedsFurtherSubmitsAndIsIdempotent) {
  serve::ModelRegistry registry(registry_config(), 2);
  IngestPipeline::Config cfg;
  IngestPipeline pipeline(registry, cfg);
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pipeline.submit_insert(random_point(rng)).accepted);
  }
  pipeline.stop();
  pipeline.stop();  // idempotent
  // Stop drained the queue and published the trailing lag.
  EXPECT_EQ(registry.active_points(), 50u);
  EXPECT_EQ(registry.model()->summary().total_points, 50u);
  EXPECT_FALSE(pipeline.submit_insert(random_point(rng)).accepted);
}

}  // namespace
}  // namespace sdb::stream
