#include "util/flat_hash.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.hpp"

namespace sdb {
namespace {

TEST(FlatIdSet, InsertAndContains) {
  FlatIdSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatIdSet, GrowthKeepsContents) {
  FlatIdSet s(4);
  for (i64 i = 0; i < 10000; ++i) EXPECT_TRUE(s.insert(i * 3));
  EXPECT_EQ(s.size(), 10000u);
  for (i64 i = 0; i < 10000; ++i) {
    EXPECT_TRUE(s.contains(i * 3));
    EXPECT_FALSE(s.contains(i * 3 + 1));
  }
}

TEST(FlatIdSet, Clear) {
  FlatIdSet s;
  s.insert(1);
  s.insert(2);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.insert(1));
}

TEST(FlatIdSet, MatchesStdUnorderedSet) {
  // Property: random workload agrees with std::unordered_set.
  Rng rng(99);
  FlatIdSet mine;
  std::unordered_set<i64> reference;
  for (int i = 0; i < 20000; ++i) {
    const i64 key = static_cast<i64>(rng.uniform_index(5000));
    EXPECT_EQ(mine.insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(mine.size(), reference.size());
  for (i64 k = 0; k < 5000; ++k) {
    EXPECT_EQ(mine.contains(k), reference.contains(k));
  }
}

TEST(FlatIdMap, PutAndFind) {
  FlatIdMap<int> m;
  EXPECT_TRUE(m.put(3, 30));
  EXPECT_FALSE(m.put(3, 31));  // overwrite
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(*m.find(3), 31);
  EXPECT_EQ(m.find(4), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatIdMap, GrowthKeepsValues) {
  FlatIdMap<i64> m(4);
  for (i64 i = 0; i < 5000; ++i) m.put(i, i * i);
  for (i64 i = 0; i < 5000; ++i) {
    ASSERT_NE(m.find(i), nullptr);
    EXPECT_EQ(*m.find(i), i * i);
  }
}

TEST(FlatIdMap, LargeSparseKeys) {
  FlatIdMap<int> m;
  const i64 big = (1ll << 62);
  m.put(big, 1);
  m.put(big - 12345, 2);
  EXPECT_EQ(*m.find(big), 1);
  EXPECT_EQ(*m.find(big - 12345), 2);
}

}  // namespace
}  // namespace sdb
