// Property tests for the quality metrics themselves — the instruments the
// equivalence claims rest on must satisfy their own laws.
#include <gtest/gtest.h>

#include "core/quality.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

Clustering random_clustering(size_t n, u64 clusters, double noise_rate,
                             Rng& rng) {
  Clustering c;
  c.labels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.chance(noise_rate)) {
      c.labels.push_back(kNoise);
    } else {
      c.labels.push_back(static_cast<ClusterId>(rng.uniform_index(clusters)));
    }
  }
  c.num_clusters = clusters;
  c.normalize();
  return c;
}

TEST(RandIndexProperties, RangeAndIdentity) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = random_clustering(120, 1 + rng.uniform_index(6), 0.2, rng);
    const auto b = random_clustering(120, 1 + rng.uniform_index(6), 0.2, rng);
    const double r = rand_index(a, b);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    EXPECT_DOUBLE_EQ(rand_index(a, a), 1.0);
  }
}

TEST(RandIndexProperties, Symmetry) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = random_clustering(100, 1 + rng.uniform_index(5), 0.15, rng);
    const auto b = random_clustering(100, 1 + rng.uniform_index(5), 0.15, rng);
    EXPECT_DOUBLE_EQ(rand_index(a, b), rand_index(b, a));
  }
}

TEST(RandIndexProperties, PermutationInvariance) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_clustering(100, 4, 0.1, rng);
    const auto b = random_clustering(100, 4, 0.1, rng);
    // Relabel b with a fixed permutation of its cluster ids.
    Clustering b2 = b;
    for (ClusterId& l : b2.labels) {
      if (l >= 0) l = (l + 1) % 4;
    }
    EXPECT_DOUBLE_EQ(rand_index(a, b), rand_index(a, b2));
  }
}

TEST(RandIndexProperties, RefinementScoresBelowIdentity) {
  // Splitting one cluster of `a` strictly reduces the Rand index vs a.
  Clustering a;
  a.labels.assign(60, 0);
  for (size_t i = 30; i < 60; ++i) a.labels[i] = 1;
  a.num_clusters = 2;
  Clustering split = a;
  for (size_t i = 0; i < 15; ++i) split.labels[i] = 2;
  split.num_clusters = 3;
  EXPECT_LT(rand_index(a, split), 1.0);
  EXPECT_GT(rand_index(a, split), 0.5);
}

TEST(NormalizeProperties, IdempotentAndOrderCanonical) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    auto c = random_clustering(80, 5, 0.2, rng);
    // Scramble labels.
    for (ClusterId& l : c.labels) {
      if (l >= 0) l = l * 17 + 3;
    }
    Clustering once = c;
    once.normalize();
    Clustering twice = once;
    twice.normalize();
    EXPECT_EQ(once.labels, twice.labels);
    EXPECT_EQ(once.num_clusters, twice.num_clusters);
    // First non-noise label is 0, labels dense.
    ClusterId max_label = -1;
    for (const ClusterId l : once.labels) max_label = std::max(max_label, l);
    EXPECT_EQ(max_label + 1, static_cast<ClusterId>(once.num_clusters));
  }
}

TEST(SummarizeProperties, SizesSumToClusteredCount) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto c = random_clustering(150, 1 + rng.uniform_index(7), 0.25, rng);
    const auto stats = summarize(c);
    u64 clustered = 0;
    for (const ClusterId l : c.labels) clustered += (l >= 0) ? 1 : 0;
    EXPECT_EQ(stats.noise + clustered, c.labels.size());
    if (stats.clusters > 0) {
      EXPECT_NEAR(stats.mean_size * static_cast<double>(stats.clusters),
                  static_cast<double>(clustered), 1e-9);
      EXPECT_GE(stats.largest, stats.smallest);
    }
  }
}

}  // namespace
}  // namespace sdb::dbscan
