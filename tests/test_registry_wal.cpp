// RegistryWal unit suite — record framing, torn-tail truncation at every
// byte offset, generation-based compaction, and the registry-level recovery
// semantics built on top (committed-epoch replay, uncommitted-suffix
// truncation, snapshot + log round-trips).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injection.hpp"
#include "serve/model_registry.hpp"
#include "serve/registry_wal.hpp"

namespace sdb::serve {
namespace {

namespace fs = std::filesystem;

class RegistryWalTest : public ::testing::Test {
 protected:
  RegistryWalTest()
      : dir_((fs::temp_directory_path() /
              ("sdb_wal_test_p" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(dir_);
  }
  ~RegistryWalTest() override { fs::remove_all(dir_); }

  /// Append N records with a recognizable pattern: insert, remove, publish,
  /// insert, remove, publish, ...
  void append_pattern(RegistryWal& wal, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      switch (i % 3) {
        case 0: {
          const double coords[2] = {static_cast<double>(i), 0.5};
          wal.append_insert(coords);
          break;
        }
        case 1:
          wal.append_remove(static_cast<i64>(i));
          break;
        default:
          wal.append_publish(i);
          break;
      }
    }
  }

  void check_pattern(const std::vector<WalRecord>& recs, size_t n) {
    ASSERT_EQ(recs.size(), n);
    for (size_t i = 0; i < n; ++i) {
      switch (i % 3) {
        case 0:
          EXPECT_EQ(recs[i].type, WalRecordType::kInsert);
          ASSERT_EQ(recs[i].coords.size(), 2u);
          EXPECT_EQ(recs[i].coords[0], static_cast<double>(i));
          EXPECT_EQ(recs[i].coords[1], 0.5);
          break;
        case 1:
          EXPECT_EQ(recs[i].type, WalRecordType::kRemove);
          EXPECT_EQ(recs[i].point_id, static_cast<i64>(i));
          break;
        default:
          EXPECT_EQ(recs[i].type, WalRecordType::kPublish);
          EXPECT_EQ(recs[i].epoch, i);
          break;
      }
    }
  }

  [[nodiscard]] fs::path log_file(u64 generation = 0) const {
    return fs::path(dir_) / ("wal_" + std::to_string(generation) + ".log");
  }

  std::string dir_;
};

TEST_F(RegistryWalTest, RoundTripsAllRecordTypes) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 9);
    EXPECT_EQ(wal.appends(), 9u);
  }
  RegistryWal reopened(dir_);
  check_pattern(reopened.records(), 9);
  EXPECT_EQ(reopened.truncated_bytes(), 0u);
  EXPECT_FALSE(reopened.snapshot().has_value());
}

TEST_F(RegistryWalTest, AppendsSurviveAfterReopen) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 4);
  }
  {
    RegistryWal wal(dir_);
    ASSERT_EQ(wal.records().size(), 4u);
    const double coords[2] = {4.0, 0.5};  // continue the pattern at i=4
    wal.append_remove(99);
    wal.append_insert(coords);
  }
  RegistryWal reopened(dir_);
  ASSERT_EQ(reopened.records().size(), 6u);
  EXPECT_EQ(reopened.records()[4].point_id, 99);
  EXPECT_EQ(reopened.records()[5].coords[0], 4.0);
}

// Satellite (d): truncate the log at EVERY byte offset within the last
// record. Recovery must always yield exactly N-1 records and never crash —
// a torn tail is indistinguishable from "the append never happened".
TEST_F(RegistryWalTest, TornTailAtEveryByteOffsetRecoversPrefix) {
  constexpr size_t kRecords = 7;
  u64 full_size = 0;
  u64 prefix_size = 0;
  {
    RegistryWal wal(dir_);
    append_pattern(wal, kRecords - 1);
    prefix_size = fs::file_size(log_file());
    const double coords[2] = {123.0, 456.0};
    wal.append_insert(coords);
    full_size = fs::file_size(log_file());
  }
  ASSERT_GT(full_size, prefix_size);

  const std::string intact = [&] {
    std::ifstream in(log_file(), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();

  for (u64 cut = prefix_size; cut < full_size; ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut) + " of " +
                 std::to_string(full_size));
    {
      std::ofstream out(log_file(), std::ios::binary | std::ios::trunc);
      out.write(intact.data(), static_cast<std::streamsize>(cut));
    }
    RegistryWal wal(dir_);
    check_pattern(wal.records(), kRecords - 1);
    EXPECT_EQ(wal.truncated_bytes(), cut - prefix_size);
    // The torn bytes are physically gone: the file now ends exactly at the
    // last valid record, so appending resumes from a clean boundary.
    EXPECT_EQ(fs::file_size(log_file()), prefix_size);
  }
}

TEST_F(RegistryWalTest, CorruptPayloadByteDropsRecordAndSuffix) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 6);
  }
  // Flip a byte inside record 3's payload: checksum mismatch. Records 0-2
  // survive; 3 and everything after it are truncated (a record boundary is
  // only trustworthy if every record before it verified).
  std::fstream f(log_file(), std::ios::binary | std::ios::in | std::ios::out);
  // ends_ is private; recompute record 3's start by scanning the sizes:
  // frame = 4 (len) + payload + 8 (fnv). Walk three frames.
  u64 off = 0;
  for (int i = 0; i < 3; ++i) {
    f.seekg(static_cast<std::streamoff>(off));
    u32 len = 0;
    f.read(reinterpret_cast<char*>(&len), sizeof(len));
    off += 4 + len + 8;
  }
  f.seekp(static_cast<std::streamoff>(off + 5));  // a payload byte of rec 3
  char byte = 0;
  f.seekg(static_cast<std::streamoff>(off + 5));
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(off + 5));
  f.write(&byte, 1);
  f.close();

  RegistryWal wal(dir_);
  check_pattern(wal.records(), 3);
  EXPECT_GT(wal.truncated_bytes(), 0u);
}

TEST_F(RegistryWalTest, TruncateToDropsSuffixOnDiskToo) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 6);
    wal.truncate_to(2);
    ASSERT_EQ(wal.records().size(), 2u);
    // Appends after a truncation land right after the surviving prefix.
    wal.append_publish(77);
  }
  RegistryWal reopened(dir_);
  ASSERT_EQ(reopened.records().size(), 3u);
  check_pattern({reopened.records()[0], reopened.records()[1]}, 2);
  EXPECT_EQ(reopened.records()[2].type, WalRecordType::kPublish);
  EXPECT_EQ(reopened.records()[2].epoch, 77u);
}

TEST_F(RegistryWalTest, CompactionRotatesGenerationAndSubsumesLog) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 5);
    wal.compact("STATE-AT-GEN-1", 7);
    EXPECT_EQ(wal.generation(), 1u);
    EXPECT_TRUE(wal.records().empty());  // snapshot subsumed them
    wal.append_publish(42);              // new-generation log keeps working
  }
  RegistryWal reopened(dir_);
  EXPECT_EQ(reopened.generation(), 1u);
  ASSERT_TRUE(reopened.snapshot().has_value());
  EXPECT_EQ(*reopened.snapshot(), "STATE-AT-GEN-1");
  ASSERT_EQ(reopened.records().size(), 1u);
  EXPECT_EQ(reopened.records()[0].epoch, 42u);
  // Generation 0's files are gone.
  EXPECT_FALSE(fs::exists(log_file(0)));
}

// Satellite (a): the replication handshake accessors. snapshot_epoch() is
// the base the follower catches up from; last_committed_epoch() is the
// newest provable commit (newest kPublish, else the snapshot's epoch).
TEST_F(RegistryWalTest, SnapshotAndCommittedEpochAccessors) {
  {
    RegistryWal wal(dir_);
    EXPECT_EQ(wal.snapshot_epoch(), 0u);
    EXPECT_EQ(wal.last_committed_epoch(), 0u);
    wal.append_publish(5);
    EXPECT_EQ(wal.last_committed_epoch(), 5u);
    wal.compact("BASE", 7);
    // Freshly compacted: no kPublish yet, the snapshot IS the commit proof.
    EXPECT_EQ(wal.snapshot_epoch(), 7u);
    EXPECT_EQ(wal.last_committed_epoch(), 7u);
    wal.append_publish(9);
    EXPECT_EQ(wal.last_committed_epoch(), 9u);
  }
  RegistryWal reopened(dir_);  // both survive reopen
  EXPECT_EQ(reopened.snapshot_epoch(), 7u);
  EXPECT_EQ(reopened.last_committed_epoch(), 9u);
}

// Satellite (a): replay-from-snapshot with a torn tail. A follower that
// crashed mid-way through fsyncing a shipped batch reopens its log: the
// snapshot base plus every complete record must survive, the torn record
// must vanish — at EVERY byte offset of the tear.
TEST_F(RegistryWalTest, ReplayFromSnapshotSurvivesTornShippedTail) {
  u64 full_size = 0;
  u64 prefix_size = 0;
  {
    RegistryWal wal(dir_);
    wal.compact("SNAP-BASE", 3);
    // Shipped records landing after the snapshot (one full batch + the
    // record whose append the crash tears).
    const double coords[2] = {1.0, 2.0};
    wal.append_insert(coords);
    wal.append_remove(7);
    wal.append_publish(4);
    prefix_size = fs::file_size(log_file(1));
    wal.append_insert(coords);  // the to-be-torn record
    full_size = fs::file_size(log_file(1));
  }
  for (u64 size = prefix_size; size < full_size; ++size) {
    fs::resize_file(log_file(1), size);
    RegistryWal wal(dir_);
    ASSERT_TRUE(wal.snapshot().has_value());
    EXPECT_EQ(*wal.snapshot(), "SNAP-BASE");
    EXPECT_EQ(wal.snapshot_epoch(), 3u);
    ASSERT_EQ(wal.records().size(), 3u) << "tear at byte " << size;
    EXPECT_EQ(wal.records()[1].point_id, 7);
    EXPECT_EQ(wal.last_committed_epoch(), 4u);
    EXPECT_EQ(wal.truncated_bytes(), size == prefix_size ? 0u : size - prefix_size);
  }
}

// In-memory mode (empty dir): same stream bookkeeping, zero files. This is
// the replication log of a non-durable replica.
TEST_F(RegistryWalTest, InMemoryModeTracksStreamWithoutFiles) {
  RegistryWal wal("");
  const double coords[2] = {1.0, 2.0};
  wal.append_insert(coords);
  wal.append_publish(6);
  EXPECT_EQ(wal.record_count(), 2u);
  EXPECT_EQ(wal.last_committed_epoch(), 6u);
  wal.truncate_to(1);
  EXPECT_EQ(wal.record_count(), 1u);
  wal.compact("MEM-STATE", 8);
  EXPECT_EQ(wal.generation(), 1u);
  EXPECT_EQ(wal.snapshot_epoch(), 8u);
  ASSERT_TRUE(wal.snapshot().has_value());
  EXPECT_EQ(*wal.snapshot(), "MEM-STATE");
  // reset_generation: a follower forcing its log onto the primary's stream
  // coordinates after a snapshot install.
  wal.reset_generation(5, "SHIPPED", 11);
  EXPECT_EQ(wal.generation(), 5u);
  EXPECT_EQ(wal.record_count(), 0u);
  EXPECT_EQ(wal.last_committed_epoch(), 11u);
}

TEST_F(RegistryWalTest, ResetGenerationRepositionsDurableLog) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 4);
    wal.reset_generation(9, "SHIPPED-BASE", 2);
    EXPECT_EQ(wal.generation(), 9u);
    EXPECT_TRUE(wal.records().empty());
    wal.append_publish(3);  // stream records resume at (9, 0)
  }
  RegistryWal reopened(dir_);
  EXPECT_EQ(reopened.generation(), 9u);
  EXPECT_EQ(reopened.snapshot_epoch(), 2u);
  ASSERT_TRUE(reopened.snapshot().has_value());
  EXPECT_EQ(*reopened.snapshot(), "SHIPPED-BASE");
  ASSERT_EQ(reopened.records().size(), 1u);
  EXPECT_EQ(reopened.records()[0].epoch, 3u);
  EXPECT_FALSE(fs::exists(log_file(0)));  // old generation GC'd
}

TEST_F(RegistryWalTest, CorruptSnapshotFallsBackToPriorGeneration) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 3);
    wal.compact("GEN-1", 1);
    wal.compact("GEN-2", 2);
  }
  // Corrupt generation 2's snapshot; generation 1 was deleted by the second
  // compact, so the opener must fall back to an empty generation-0 world
  // rather than trust a bad checksum.
  {
    std::ofstream out(fs::path(dir_) / "snapshot_2",
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  RegistryWal reopened(dir_);
  EXPECT_FALSE(reopened.snapshot().has_value());
  EXPECT_TRUE(reopened.records().empty());
  EXPECT_GT(reopened.collected_files(), 0u);  // the bad snapshot was GC'd
}

#ifdef SDB_FAULT_INJECTION

/// In-process crash: throw instead of SIGKILL so one test can crash a
/// compaction and then play the recovering process.
struct SimulatedCrash {};
[[noreturn]] void throwing_handler(std::string_view) { throw SimulatedCrash{}; }

TEST_F(RegistryWalTest, CrashAtSnapshotRenameKeepsOldGeneration) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 4);
    const fault::CrashHandler prev =
        fault::set_crash_handler(&throwing_handler);
    fault::ScopedFaultPlan plan("seed=1;wal.crash.snapshot_rename:every=1");
    EXPECT_THROW(wal.compact("NEVER-COMMITTED", 9), SimulatedCrash);
    fault::set_crash_handler(prev);
  }
  // The staged snapshot tmp never renamed: generation 0 is still the world.
  RegistryWal reopened(dir_);
  EXPECT_EQ(reopened.generation(), 0u);
  EXPECT_FALSE(reopened.snapshot().has_value());
  check_pattern(reopened.records(), 4);
  EXPECT_GT(reopened.collected_files(), 0u);  // tmp staged file GC'd
}

TEST_F(RegistryWalTest, CrashMidAppendLeavesPriorRecordsReadable) {
  {
    RegistryWal wal(dir_);
    append_pattern(wal, 5);
    const fault::CrashHandler prev =
        fault::set_crash_handler(&throwing_handler);
    fault::ScopedFaultPlan plan("seed=1;wal.crash.mid_append:every=1");
    EXPECT_THROW(wal.append_publish(99), SimulatedCrash);
    fault::set_crash_handler(prev);
  }
  RegistryWal reopened(dir_);
  check_pattern(reopened.records(), 5);     // torn 6th record truncated
  EXPECT_GT(reopened.truncated_bytes(), 0u);  // and it did hit the disk torn
}

#endif  // SDB_FAULT_INJECTION

// --- registry-level recovery semantics (the WAL's consumer) ----------------

class RegistryRecoveryTest : public RegistryWalTest {};

TEST_F(RegistryRecoveryTest, UncommittedMutationsAreTruncatedNotReplayed) {
  ModelRegistry::Config cfg;
  cfg.params = {1.5, 3};
  cfg.publish_every = 0;  // manual publish only
  cfg.wal_dir = dir_;
  {
    ModelRegistry registry(cfg, 2);
    for (int i = 0; i < 4; ++i) {
      const double coords[2] = {static_cast<double>(i), 0.0};
      registry.insert(coords);
    }
    registry.publish();  // commits the 4 inserts at epoch 2
    const double extra[2] = {9.0, 9.0};
    registry.insert(extra);  // never published -> uncommitted
  }
  ModelRegistry recovered(cfg, 2);
  EXPECT_EQ(recovered.epoch(), 2u);
  EXPECT_EQ(recovered.active_points(), 4u);
  EXPECT_EQ(recovered.wal_replayed(), 4u);
  EXPECT_EQ(recovered.wal_discarded(), 1u);
  // The truncation is durable: a third incarnation sees a clean log whose
  // last record is the commit marker — the orphaned insert cannot return.
  ModelRegistry third(cfg, 2);
  EXPECT_EQ(third.active_points(), 4u);
  EXPECT_EQ(third.wal_discarded(), 0u);
}

TEST_F(RegistryRecoveryTest, RemovesReplayTooAndIdsStaySequential) {
  ModelRegistry::Config cfg;
  cfg.params = {1.5, 3};
  cfg.publish_every = 0;
  cfg.wal_dir = dir_;
  {
    ModelRegistry registry(cfg, 2);
    for (int i = 0; i < 6; ++i) {
      const double coords[2] = {static_cast<double>(i), 0.0};
      registry.insert(coords);
    }
    EXPECT_TRUE(registry.try_remove(2));
    EXPECT_TRUE(registry.try_remove(4));
    registry.publish();
  }
  ModelRegistry recovered(cfg, 2);
  EXPECT_EQ(recovered.active_points(), 4u);
  // Replay preserved the id space: the next insert continues after the
  // replayed ones instead of colliding with them.
  const double coords[2] = {100.0, 0.0};
  EXPECT_EQ(recovered.insert(coords), 6);
  EXPECT_FALSE(recovered.try_remove(2));  // still tombstoned after replay
}

TEST_F(RegistryRecoveryTest, SnapshotPlusLogRecoversAcrossCompaction) {
  ModelRegistry::Config cfg;
  cfg.params = {1.5, 3};
  cfg.publish_every = 0;
  cfg.wal_dir = dir_;
  u64 compacted_epoch = 0;
  {
    ModelRegistry registry(cfg, 2);
    for (int i = 0; i < 5; ++i) {
      const double coords[2] = {static_cast<double>(i), 0.0};
      registry.insert(coords);
    }
    registry.try_remove(0);
    compacted_epoch = registry.compact();  // state -> snapshot generation 1
    // Post-compaction mutations land in the new generation's log.
    const double coords[2] = {50.0, 0.0};
    registry.insert(coords);
    registry.publish();
  }
  ModelRegistry recovered(cfg, 2);
  EXPECT_EQ(recovered.active_points(), 5u);  // 5 - 1 removed + 1 post-compact
  EXPECT_GT(recovered.epoch(), compacted_epoch);
  EXPECT_EQ(recovered.wal()->generation(), 1u);
  EXPECT_EQ(recovered.wal_replayed(), 1u);  // only the post-snapshot insert
}

TEST_F(RegistryRecoveryTest, DurabilityOffKeepsLegacyBehaviour) {
  ModelRegistry::Config cfg;
  cfg.params = {1.5, 3};
  cfg.publish_every = 4;
  ModelRegistry registry(cfg, 2);
  EXPECT_EQ(registry.wal(), nullptr);
  const double coords[2] = {1.0, 2.0};
  registry.insert(coords);
  EXPECT_EQ(registry.active_points(), 1u);
  EXPECT_EQ(registry.wal_replayed(), 0u);
}

}  // namespace
}  // namespace sdb::serve
