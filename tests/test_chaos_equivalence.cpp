// Chaos equivalence sweep — the paper's correctness claim, now under faults.
//
// For every (dataset shape × partitioner × fault-plan seed × engine) cell,
// run the full pipeline with a FaultPlan injecting task failures, hangs,
// lost accumulator updates, speculative duplicates, and DFS read faults,
// then assert:
//   1. the recovered clustering is cluster-isomorphic to sequential DBSCAN
//      (check_equivalence + exact cluster/noise counts + rand index);
//   2. replaying the SAME spec string reproduces a byte-identical fault
//      sequence (log_digest equality) and identical labels.
//
// Every injected fault here is transient-by-budget: each throwing site's
// `budget` is below the pipeline's bounded retry limit, so recovery —
// retries, timeouts, re-execution, idempotent accumulator merge — must make
// the run succeed, not merely survive. Chaos plans run with host_threads=1
// (the ClusterConfig default) so the fault log is totally ordered and the
// digest is deterministic.
//
// Repro cookbook: every failure message carries the one-line fault spec;
//   ctest -R chaos            # run the whole chaos surface
//   FaultPlan::parse(spec)    # re-arm the exact failing schedule
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <optional>
#include <string>
#include <tuple>

#include "core/dbscan_seq.hpp"
#include "core/mr_dbscan.hpp"
#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "dfs/mini_dfs.hpp"
#include "fault/fault_plan.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "synth/io.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

namespace fs = std::filesystem;

enum class Shape { kBlobs, kUniform, kMoons, kRings };
enum class Engine { kSpark, kMapReduce };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kBlobs: return "blobs";
    case Shape::kUniform: return "uniform";
    case Shape::kMoons: return "moons";
    case Shape::kRings: return "rings";
  }
  return "?";
}

const char* engine_name(Engine e) {
  return e == Engine::kSpark ? "spark" : "mr";
}

// Smaller datasets than test_equivalence_property: each cell runs the
// pipeline twice (fault run + replay run), and the grid has 216 cells.
PointSet make_shape(Shape shape, u64 seed) {
  Rng rng(seed);
  switch (shape) {
    case Shape::kBlobs: {
      synth::GaussianMixtureConfig cfg;
      cfg.n = 400;
      cfg.dim = 2;
      cfg.clusters = 4;
      cfg.sigma = 0.4;
      cfg.noise_fraction = 0.08;
      cfg.box_side = 30.0;
      return synth::gaussian_clusters(cfg, rng);
    }
    case Shape::kUniform: {
      synth::UniformConfig cfg;
      cfg.n = 400;
      cfg.dim = 2;
      cfg.box_side = 18.0;
      return synth::uniform_points(cfg, rng);
    }
    case Shape::kMoons:
      return synth::two_moons(200, 0.04, rng);
    case Shape::kRings:
      return synth::rings(150, 2, 0.03, 60, rng);
  }
  return PointSet(2);
}

DbscanParams shape_params(Shape shape) {
  switch (shape) {
    case Shape::kBlobs: return {0.8, 5};
    case Shape::kUniform: return {0.9, 4};
    case Shape::kMoons: return {0.12, 5};
    case Shape::kRings: return {0.2, 5};
  }
  return {1.0, 5};
}

// Fault schedules. Every throwing site carries a budget strictly below the
// bounded retry limit it is recovered by (max_task_attempts = 4 tasks,
// RetryPolicy.max_attempts = 4 block/spill I/O), so even the worst case —
// every fire landing on the same task or block — still converges.
std::string spark_fault_spec(u64 seed) {
  return "seed=" + std::to_string(seed) +
         ";spark.task.fail:p=0.3,budget=2"
         ";spark.task.hang:p=0.2,budget=2"
         ";spark.acc.lost:p=0.25,budget=2"
         ";spark.task.duplicate:p=0.2,budget=2"
         ";dfs.read.fail:p=0.1,budget=2"
         ";dfs.read.slow:p=0.2,budget=3"
         ";dfs.read.replica:p=0.15,budget=2";
}

std::string mr_fault_spec(u64 seed) {
  return "seed=" + std::to_string(seed) +
         ";mr.map.fail:p=0.3,budget=2"
         ";mr.map.duplicate:p=0.25,budget=2"
         ";mr.reduce.fail:p=0.5,budget=2"
         ";mr.shuffle.fail:p=0.3,budget=2";
}

struct ChaosRun {
  Clustering clustering;
  u64 digest = 0;     ///< fault-log digest of the run
  u64 hits = 0;       ///< injection-site hits observed
  u64 fires = 0;      ///< faults actually fired
};

// One Spark pipeline execution under the given fault spec. The points are
// read back from MiniDfs so the dfs.read.* sites sit on the real data path.
ChaosRun run_spark(const dfs::MiniDfs& dfs, const DbscanParams& params,
                   PartitionerKind partitioner, const std::string& spec,
                   unsigned merge_threads = 1) {
  fault::ScopedFaultPlan chaos(spec);
  minispark::ClusterConfig ccfg;
  ccfg.executors = 3;
  ccfg.straggler.fraction = 0.0;
  minispark::SparkContext ctx(ccfg);
  SparkDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = 3;
  cfg.partitioner = partitioner;
  cfg.merge_threads = merge_threads;
  SparkDbscan dbscan(ctx, cfg);
  auto report = dbscan.run_from_dfs(dfs, "/points.txt");
  return {std::move(report.clustering), chaos.plan().log_digest(),
          chaos.plan().hits(), chaos.plan().fires()};
}

ChaosRun run_mr(const PointSet& ps, const DbscanParams& params,
                PartitionerKind partitioner, const std::string& spec,
                const std::string& work_dir, unsigned merge_threads = 1) {
  fault::ScopedFaultPlan chaos(spec);
  MRDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = 3;
  cfg.partitioner = partitioner;
  cfg.mr.work_dir = work_dir;
  cfg.mr.cores = 3;
  cfg.merge_threads = merge_threads;
  auto report = mr_dbscan(ps, cfg);
  return {std::move(report.clustering), chaos.plan().log_digest(),
          chaos.plan().hits(), chaos.plan().fires()};
}

using ChaosParam = std::tuple<Shape, PartitionerKind, u64, Engine>;

class ChaosEquivalence : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosEquivalence, RecoversToSequentialResultAndReplaysByteIdentically) {
  const auto [shape, partitioner, fault_seed, engine] = GetParam();
  const std::string spec = engine == Engine::kSpark
                               ? spark_fault_spec(fault_seed)
                               : mr_fault_spec(fault_seed);
  SCOPED_TRACE("fault spec: " + spec);

  const PointSet ps = make_shape(shape, 1000 + static_cast<u64>(shape));
  const DbscanParams params = shape_params(shape);
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, params);

  // Per-process scratch: ctest -j runs every grid cell as its own process.
  const std::string tag = std::string(shape_name(shape)) + "_" +
                          partitioner_name(partitioner) + "_" +
                          std::to_string(fault_seed) + "_" +
                          std::to_string(::getpid());
  const fs::path scratch = fs::temp_directory_path() / ("sdb_chaos_" + tag);
  fs::remove_all(scratch);

  ChaosRun first, replay;
  if (engine == Engine::kSpark) {
    // Stage the input before arming the plan: the chaos surface is the
    // pipeline (reads included), not test setup.
    dfs::MiniDfs dfs((scratch / "dfs").string(), 1 << 12);
    dfs.write("/points.txt", synth::to_text(ps));
    first = run_spark(dfs, params, partitioner, spec);
    replay = run_spark(dfs, params, partitioner, spec);
  } else {
    first = run_mr(ps, params, partitioner, spec, (scratch / "mr1").string());
    replay = run_mr(ps, params, partitioner, spec, (scratch / "mr2").string());
  }

#ifdef SDB_FAULT_INJECTION
  // The pipeline really went through the injection sites. (With hooks
  // compiled out the grid degenerates to a fault-free equivalence sweep.)
  EXPECT_GT(first.hits, 0u) << engine_name(engine);
#endif

  // 1. Cluster isomorphism with the sequential oracle, faults and all.
  const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                    seq.clustering, first.clustering);
  EXPECT_TRUE(eq.equivalent)
      << shape_name(shape) << " " << partitioner_name(partitioner) << " "
      << engine_name(engine) << " :: core=" << eq.core_mismatches
      << " noise=" << eq.noise_mismatches
      << " border=" << eq.border_violations << " " << eq.detail;
  EXPECT_EQ(first.clustering.num_clusters, seq.clustering.num_clusters);
  EXPECT_EQ(first.clustering.noise_count(), seq.clustering.noise_count());
  // Border ambiguity may reassign a handful of points; at these dataset
  // sizes (n=200..400) one moved point shifts ~1% of pairs, so the rand
  // bound is looser than test_equivalence_property's n=700 sweep.
  EXPECT_GT(rand_index(seq.clustering, first.clustering), 0.99);

  // 2. Same spec, same seed -> byte-identical fault sequence and labels.
  EXPECT_EQ(first.digest, replay.digest);
  EXPECT_EQ(first.hits, replay.hits);
  EXPECT_EQ(first.fires, replay.fires);
  EXPECT_EQ(first.clustering.labels, replay.clustering.labels);

  fs::remove_all(scratch);
}

std::string chaos_case_name(const ::testing::TestParamInfo<ChaosParam>& info) {
  std::string name = shape_name(std::get<0>(info.param));
  name += "_";
  name += partitioner_name(std::get<1>(info.param));
  name += "_s" + std::to_string(std::get<2>(info.param));
  name += "_";
  name += engine_name(std::get<3>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

// 4 shapes x 3 partitioners x 9 fault seeds x 2 engines = 216 cells.
INSTANTIATE_TEST_SUITE_P(
    Grid, ChaosEquivalence,
    ::testing::Combine(
        ::testing::Values(Shape::kBlobs, Shape::kUniform, Shape::kMoons,
                          Shape::kRings),
        ::testing::Values(PartitionerKind::kBlock, PartitionerKind::kRandom,
                          PartitionerKind::kKdSplit),
        ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u),
        ::testing::Values(Engine::kSpark, Engine::kMapReduce)),
    chaos_case_name);

// Parallel-merge column of the chaos surface: the SAME faulted pipeline run
// with the sequential merge and with the parallel edge-based merge
// (merge_threads=3) must produce byte-identical labels AND a byte-identical
// fault sequence — the merge runs driver-side after recovery, so the thread
// count must be invisible to both the clustering and the chaos schedule.
class ChaosParallelMerge : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosParallelMerge, ParallelMergeIsByteIdenticalUnderFaults) {
  const auto [shape, partitioner, fault_seed, engine] = GetParam();
  const std::string spec = engine == Engine::kSpark
                               ? spark_fault_spec(fault_seed)
                               : mr_fault_spec(fault_seed);
  SCOPED_TRACE("fault spec: " + spec);

  const PointSet ps = make_shape(shape, 1000 + static_cast<u64>(shape));
  const DbscanParams params = shape_params(shape);

  const std::string tag = std::string("pm_") + shape_name(shape) + "_" +
                          partitioner_name(partitioner) + "_" +
                          std::to_string(fault_seed) + "_" +
                          std::to_string(::getpid());
  const fs::path scratch = fs::temp_directory_path() / ("sdb_chaos_" + tag);
  fs::remove_all(scratch);

  ChaosRun sequential, parallel;
  if (engine == Engine::kSpark) {
    dfs::MiniDfs dfs((scratch / "dfs").string(), 1 << 12);
    dfs.write("/points.txt", synth::to_text(ps));
    sequential = run_spark(dfs, params, partitioner, spec, 1);
    parallel = run_spark(dfs, params, partitioner, spec, 3);
  } else {
    sequential =
        run_mr(ps, params, partitioner, spec, (scratch / "mr1").string(), 1);
    parallel =
        run_mr(ps, params, partitioner, spec, (scratch / "mr2").string(), 3);
  }

  EXPECT_EQ(sequential.clustering.labels, parallel.clustering.labels);
  EXPECT_EQ(sequential.clustering.num_clusters,
            parallel.clustering.num_clusters);
  EXPECT_EQ(sequential.digest, parallel.digest);
  EXPECT_EQ(sequential.hits, parallel.hits);
  EXPECT_EQ(sequential.fires, parallel.fires);

  fs::remove_all(scratch);
}

// 4 shapes x 3 partitioners x 2 fault seeds x 2 engines = 48 cells.
INSTANTIATE_TEST_SUITE_P(
    Grid, ChaosParallelMerge,
    ::testing::Combine(
        ::testing::Values(Shape::kBlobs, Shape::kUniform, Shape::kMoons,
                          Shape::kRings),
        ::testing::Values(PartitionerKind::kBlock, PartitionerKind::kRandom,
                          PartitionerKind::kKdSplit),
        ::testing::Values(2u, 7u),
        ::testing::Values(Engine::kSpark, Engine::kMapReduce)),
    chaos_case_name);

// KNN-backend column of the chaos surface: the spark pipeline with
// backend = kKnn runs the NN-descent graph build on the driver, where the
// knn.graph.drop_edge site skips candidate evaluations. A faulted build
// must still CONVERGE — NN-descent is self-healing (a dropped candidate
// can resurface through a later round's local join), so the clustering may
// shift only within the disagreement bound — and replaying the same spec
// must reproduce a byte-identical fault sequence and labels.
class ChaosKnnBackend : public ::testing::TestWithParam<u64> {};

TEST_P(ChaosKnnBackend, FaultedGraphBuildConvergesAndReplays) {
  const u64 fault_seed = GetParam();
  const std::string spec = "seed=" + std::to_string(fault_seed) +
                           ";knn.graph.drop_edge:p=0.02,budget=400"
                           ";spark.task.fail:p=0.3,budget=2"
                           ";spark.acc.lost:p=0.25,budget=2";
  SCOPED_TRACE("fault spec: " + spec);

  Rng rng(404);
  synth::EmbeddingConfig gen_cfg;
  gen_cfg.n = 800;
  gen_cfg.dim = 64;
  gen_cfg.clusters = 4;
  const PointSet ps = synth::embedding_clusters(gen_cfg, rng);

  auto run_knn = [&](const std::string* plan_spec) {
    std::optional<fault::ScopedFaultPlan> chaos;
    if (plan_spec != nullptr) chaos.emplace(*plan_spec);
    minispark::ClusterConfig ccfg;
    ccfg.executors = 3;
    ccfg.straggler.fraction = 0.0;
    minispark::SparkContext ctx(ccfg);
    SparkDbscanConfig cfg;
    cfg.params = {synth::embedding_suggested_eps(gen_cfg), 5};
    cfg.partitions = 3;
    cfg.backend = DbscanBackend::kKnn;
    cfg.knn.k = 16;
    SparkDbscan job(ctx, cfg);
    auto report = job.run(ps);
    ChaosRun out;
    out.clustering = std::move(report.clustering);
    if (chaos.has_value()) {
      out.digest = chaos->plan().log_digest();
      out.hits = chaos->plan().hits();
      out.fires = chaos->plan().fires();
    }
    return out;
  };

  const ChaosRun clean = run_knn(nullptr);
  const ChaosRun faulted = run_knn(&spec);
  const ChaosRun replay = run_knn(&spec);

#ifdef SDB_FAULT_INJECTION
  EXPECT_GT(faulted.hits, 0u);
  EXPECT_GT(faulted.fires, 0u);
#endif

  // 1. Convergence: the faulted graph clusters within the disagreement
  //    bound of the fault-free run (and exactly equals it when the descent
  //    healed every drop).
  EXPECT_GT(rand_index(clean.clustering, faulted.clustering), 0.98);
  EXPECT_GT(adjusted_rand_index(clean.clustering, faulted.clustering), 0.95);

  // 2. Replay: same spec, same seed -> byte-identical fault sequence,
  //    byte-identical labels.
  EXPECT_EQ(faulted.digest, replay.digest);
  EXPECT_EQ(faulted.hits, replay.hits);
  EXPECT_EQ(faulted.fires, replay.fires);
  EXPECT_EQ(faulted.clustering.labels, replay.clustering.labels);
}

INSTANTIATE_TEST_SUITE_P(Grid, ChaosKnnBackend,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// Sanity anchor for the grid: with no plan installed the same pipelines run
// fault-free (hits stay 0), so the grid above is genuinely exercising the
// injection path rather than passing vacuously.
TEST(ChaosEquivalence, NoPlanMeansNoFaults) {
  const PointSet ps = make_shape(Shape::kBlobs, 1000);
  const fs::path scratch =
      fs::temp_directory_path() /
      ("sdb_chaos_noplan_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  dfs::MiniDfs dfs((scratch / "dfs").string(), 1 << 12);
  dfs.write("/points.txt", synth::to_text(ps));

  minispark::ClusterConfig ccfg;
  ccfg.executors = 3;
  ccfg.straggler.fraction = 0.0;
  minispark::SparkContext ctx(ccfg);
  SparkDbscanConfig cfg;
  cfg.params = shape_params(Shape::kBlobs);
  cfg.partitions = 3;
  SparkDbscan dbscan(ctx, cfg);
  (void)dbscan.run_from_dfs(dfs, "/points.txt");
  EXPECT_EQ(dfs.io_retries(), 0u);
  EXPECT_EQ(dfs.slow_reads(), 0u);
  EXPECT_EQ(dfs.failovers(), 0u);
  fs::remove_all(scratch);
}

}  // namespace
}  // namespace sdb::dbscan
