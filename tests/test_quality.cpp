#include "core/quality.hpp"

#include <gtest/gtest.h>

#include "core/dbscan_seq.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

Clustering labels_of(std::vector<ClusterId> l, u64 k) {
  Clustering c;
  c.labels = std::move(l);
  c.num_clusters = k;
  return c;
}

TEST(RandIndex, IdenticalClusterings) {
  const auto a = labels_of({0, 0, 1, 1, kNoise}, 2);
  EXPECT_DOUBLE_EQ(rand_index(a, a), 1.0);
}

TEST(RandIndex, LabelPermutationInvariant) {
  const auto a = labels_of({0, 0, 1, 1}, 2);
  const auto b = labels_of({1, 1, 0, 0}, 2);
  EXPECT_DOUBLE_EQ(rand_index(a, b), 1.0);
}

TEST(RandIndex, CompleteDisagreement) {
  // a: all one cluster; b: all singletons (noise).
  const auto a = labels_of({0, 0, 0, 0}, 1);
  const auto b = labels_of({kNoise, kNoise, kNoise, kNoise}, 0);
  EXPECT_DOUBLE_EQ(rand_index(a, b), 0.0);
}

TEST(RandIndex, PartialAgreement) {
  const auto a = labels_of({0, 0, 1, 1}, 2);
  const auto b = labels_of({0, 0, 0, 1}, 2);
  // Pairs: (0,1) same/same agree; (2,3) same/diff disagree; (0,2),(0,3),
  // (1,2),(1,3) diff in a; in b (0,2) same -> disagree, (1,2) same ->
  // disagree, (0,3),(1,3) diff -> agree. Agreements: 3 of 6.
  EXPECT_DOUBLE_EQ(rand_index(a, b), 0.5);
}

TEST(RandIndex, NoiseTreatedAsSingletons) {
  const auto a = labels_of({kNoise, kNoise}, 0);
  const auto b = labels_of({0, 0}, 1);
  EXPECT_DOUBLE_EQ(rand_index(a, b), 0.0);
  // Two noise points agree with two noise points.
  EXPECT_DOUBLE_EQ(rand_index(a, a), 1.0);
}

TEST(Summarize, Basics) {
  const auto c = labels_of({0, 0, 0, 1, 1, kNoise}, 2);
  const auto stats = summarize(c);
  EXPECT_EQ(stats.clusters, 2u);
  EXPECT_EQ(stats.noise, 1u);
  EXPECT_EQ(stats.largest, 3u);
  EXPECT_EQ(stats.smallest, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_size, 2.5);
}

TEST(Normalize, DenseFirstAppearance) {
  auto c = labels_of({7, 7, 3, kNoise, 3, 9}, 0);
  c.normalize();
  EXPECT_EQ(c.labels, (std::vector<ClusterId>{0, 0, 1, kNoise, 1, 2}));
  EXPECT_EQ(c.num_clusters, 3u);
}

class EquivalenceTest : public ::testing::Test {
 protected:
  EquivalenceTest() : ps_(1) {
    for (const double x : {0.0, 1.0, 2.0, 10.0, 11.0, 12.0, 50.0}) {
      const double p[1] = {x};
      ps_.add(p);
    }
    tree_ = std::make_unique<KdTree>(ps_);
    // minpts=2 so every clustered point is core (multi-core clusters make
    // the bijection checks meaningful).
    params_ = {1.5, 2};
    seq_ = dbscan_sequential(ps_, *tree_, params_);
  }
  PointSet ps_;
  std::unique_ptr<KdTree> tree_;
  DbscanParams params_;
  SeqResult seq_;
};

TEST_F(EquivalenceTest, SelfEquivalent) {
  const auto report = check_equivalence(ps_, *tree_, params_,
                                        seq_.core_points, seq_.clustering,
                                        seq_.clustering);
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST_F(EquivalenceTest, RelabeledStillEquivalent) {
  Clustering relabeled = seq_.clustering;
  for (ClusterId& l : relabeled.labels) {
    if (l >= 0) l = 1 - l;  // swap the two cluster labels
  }
  const auto report = check_equivalence(ps_, *tree_, params_,
                                        seq_.core_points, seq_.clustering,
                                        relabeled);
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST_F(EquivalenceTest, SplitClusterDetected) {
  Clustering broken = seq_.clustering;
  // Move one core point of cluster 0 into its own cluster.
  broken.labels[0] = 5;
  broken.num_clusters = 6;
  const auto report = check_equivalence(ps_, *tree_, params_,
                                        seq_.core_points, seq_.clustering,
                                        broken);
  EXPECT_FALSE(report.equivalent);
  EXPECT_GT(report.core_mismatches, 0u);
}

TEST_F(EquivalenceTest, NoiseFlipDetected) {
  Clustering broken = seq_.clustering;
  broken.labels[6] = 0;  // the isolated point joins a cluster
  const auto report = check_equivalence(ps_, *tree_, params_,
                                        seq_.core_points, seq_.clustering,
                                        broken);
  EXPECT_FALSE(report.equivalent);
  EXPECT_GT(report.noise_mismatches + report.border_violations, 0u);
}

TEST_F(EquivalenceTest, MergedClustersDetected) {
  Clustering broken = seq_.clustering;
  for (ClusterId& l : broken.labels) {
    if (l == 1) l = 0;  // fuse the two clusters
  }
  broken.num_clusters = 1;
  const auto report = check_equivalence(ps_, *tree_, params_,
                                        seq_.core_points, seq_.clustering,
                                        broken);
  EXPECT_FALSE(report.equivalent);
  EXPECT_GT(report.core_mismatches, 0u);
}

}  // namespace
}  // namespace sdb::dbscan
