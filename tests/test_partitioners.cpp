#include "core/partitioners.hpp"

#include <gtest/gtest.h>

#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

PointSet sample_points(i64 n, int dim, u64 seed) {
  Rng rng(seed);
  synth::UniformConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.box_side = 100.0;
  return synth::uniform_points(cfg, rng);
}

void check_is_partition(const Partitioning& part, size_t n) {
  ASSERT_EQ(part.owner.size(), n);
  std::vector<u64> counted(part.num_partitions, 0);
  for (const PartitionId o : part.owner) {
    ASSERT_GE(o, 0);
    ASSERT_LT(static_cast<u32>(o), part.num_partitions);
    ++counted[static_cast<size_t>(o)];
  }
  ASSERT_EQ(part.parts.size(), part.num_partitions);
  u64 total = 0;
  for (u32 p = 0; p < part.num_partitions; ++p) {
    EXPECT_EQ(part.parts[p].size(), counted[p]);
    total += part.parts[p].size();
    for (const PointId id : part.parts[p]) {
      EXPECT_EQ(part.owner[static_cast<size_t>(id)], static_cast<PartitionId>(p));
    }
  }
  EXPECT_EQ(total, n);
}

class PartitionerLaw
    : public ::testing::TestWithParam<std::tuple<PartitionerKind, u32>> {};

TEST_P(PartitionerLaw, EveryPointOwnedExactlyOnce) {
  const auto [kind, parts] = GetParam();
  const PointSet ps = sample_points(1000, 3, 5);
  const Partitioning part = make_partitioning(kind, ps, parts);
  check_is_partition(part, ps.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionerLaw,
    ::testing::Combine(::testing::Values(PartitionerKind::kBlock,
                                         PartitionerKind::kRandom,
                                         PartitionerKind::kGrid,
                                         PartitionerKind::kKdSplit),
                       ::testing::Values(1u, 2u, 3u, 8u, 17u)));

TEST(BlockPartitioner, ContiguousRanges) {
  const PointSet ps = sample_points(100, 2, 7);
  const Partitioning part =
      make_partitioning(PartitionerKind::kBlock, ps, 4);
  ASSERT_TRUE(part.contiguous());
  ASSERT_EQ(part.ranges.size(), 4u);
  EXPECT_EQ(part.ranges[0].first, 0);
  EXPECT_EQ(part.ranges[3].second, 100);
  for (size_t p = 1; p < 4; ++p) {
    EXPECT_EQ(part.ranges[p].first, part.ranges[p - 1].second);
  }
  // The paper's SEED test: ownership == range membership.
  for (PointId i = 0; i < 100; ++i) {
    const auto p = static_cast<size_t>(part.owner[static_cast<size_t>(i)]);
    EXPECT_GE(i, part.ranges[p].first);
    EXPECT_LT(i, part.ranges[p].second);
  }
}

TEST(BlockPartitioner, BalancedSizes) {
  const PointSet ps = sample_points(103, 2, 7);
  const Partitioning part =
      make_partitioning(PartitionerKind::kBlock, ps, 4);
  EXPECT_LE(part.max_part_size() - part.min_part_size(), 1u);
}

TEST(RandomPartitioner, BalancedAndSeedDependent) {
  const PointSet ps = sample_points(1000, 2, 7);
  const Partitioning a =
      make_partitioning(PartitionerKind::kRandom, ps, 8, 1);
  const Partitioning b =
      make_partitioning(PartitionerKind::kRandom, ps, 8, 2);
  EXPECT_LE(a.max_part_size() - a.min_part_size(), 1u);
  EXPECT_NE(a.owner, b.owner);
  const Partitioning a2 =
      make_partitioning(PartitionerKind::kRandom, ps, 8, 1);
  EXPECT_EQ(a.owner, a2.owner);
}

TEST(KdSplitPartitioner, BalancedSizes) {
  const PointSet ps = sample_points(1000, 5, 9);
  const Partitioning part =
      make_partitioning(PartitionerKind::kKdSplit, ps, 7);
  // Proportional splits keep all parts within a small factor.
  EXPECT_LE(part.max_part_size(), part.min_part_size() + 2);
}

TEST(KdSplitPartitioner, SpatiallyCoherent) {
  // On well-separated 2-D blobs, kd-split should rarely cut a tight blob:
  // most blob-mates share a partition more often than under block split of
  // shuffled data. Weak but meaningful: compare intra-blob co-location.
  Rng rng(11);
  std::vector<i32> truth;
  const PointSet ps = synth::blobs_2d(800, 4, 0.5, 0, rng, &truth);
  const Partitioning kd =
      make_partitioning(PartitionerKind::kKdSplit, ps, 4);
  const Partitioning random =
      make_partitioning(PartitionerKind::kRandom, ps, 4, 3);
  auto coherence = [&](const Partitioning& part) {
    u64 same = 0;
    u64 pairs = 0;
    for (size_t i = 0; i < 300; ++i) {
      for (size_t j = i + 1; j < 300; ++j) {
        if (truth[i] != truth[j]) continue;
        ++pairs;
        same += part.owner[i] == part.owner[j] ? 1 : 0;
      }
    }
    return static_cast<double>(same) / static_cast<double>(pairs);
  };
  EXPECT_GT(coherence(kd), coherence(random) + 0.2);
}

TEST(GridPartitioner, DeterministicAndComplete) {
  const PointSet ps = sample_points(500, 3, 13);
  const Partitioning a = make_partitioning(PartitionerKind::kGrid, ps, 6);
  const Partitioning b = make_partitioning(PartitionerKind::kGrid, ps, 6);
  EXPECT_EQ(a.owner, b.owner);
  check_is_partition(a, ps.size());
}

TEST(Partitioning, ByteSizeScalesWithPoints) {
  const PointSet small = sample_points(100, 2, 15);
  const PointSet large = sample_points(1000, 2, 15);
  const auto a = make_partitioning(PartitionerKind::kBlock, small, 4);
  const auto b = make_partitioning(PartitionerKind::kBlock, large, 4);
  EXPECT_LT(a.byte_size(), b.byte_size());
}

TEST(PartitionerNames, AllNamed) {
  EXPECT_STREQ(partitioner_name(PartitionerKind::kBlock), "block");
  EXPECT_STREQ(partitioner_name(PartitionerKind::kRandom), "random");
  EXPECT_STREQ(partitioner_name(PartitionerKind::kGrid), "grid");
  EXPECT_STREQ(partitioner_name(PartitionerKind::kKdSplit), "kd-split");
}

}  // namespace
}  // namespace sdb::dbscan
