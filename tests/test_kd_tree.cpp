#include "spatial/kd_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/distance.hpp"
#include "spatial/brute_force.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

PointSet random_points(i64 n, int dim, double side, u64 seed) {
  Rng rng(seed);
  PointSet ps(dim);
  ps.reserve(static_cast<size_t>(n));
  std::vector<double> p(static_cast<size_t>(dim));
  for (i64 i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.uniform(0.0, side);
    ps.add(p);
  }
  return ps;
}

std::vector<PointId> sorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(KdTree, EmptySet) {
  PointSet ps(3);
  KdTree tree(ps);
  std::vector<PointId> out;
  const double q[3] = {0, 0, 0};
  tree.range_query(q, 1.0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(KdTree, SinglePoint) {
  PointSet ps(2);
  const double a[2] = {1, 1};
  ps.add(a);
  KdTree tree(ps);
  std::vector<PointId> out;
  tree.range_query(a, 0.1, out);
  EXPECT_EQ(out, std::vector<PointId>{0});
  out.clear();
  const double far[2] = {5, 5};
  tree.range_query(far, 0.1, out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTree, DuplicatePointsAllReported) {
  PointSet ps(2);
  const double a[2] = {1, 1};
  for (int i = 0; i < 50; ++i) ps.add(a);
  KdTree tree(ps, 4);
  std::vector<PointId> out;
  tree.range_query(a, 0.5, out);
  EXPECT_EQ(out.size(), 50u);
}

class KdTreeMatchesBruteForce
    : public ::testing::TestWithParam<std::tuple<int, i64, double>> {};

TEST_P(KdTreeMatchesBruteForce, RangeQueriesAgree) {
  const auto [dim, n, eps] = GetParam();
  const PointSet ps = random_points(n, dim, 100.0, 7 + static_cast<u64>(dim));
  const KdTree tree(ps, 8);
  const BruteForceIndex brute(ps);
  Rng rng(55);
  for (int trial = 0; trial < 50; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    std::vector<PointId> a;
    std::vector<PointId> b;
    tree.range_query(ps[q], eps, a);
    brute.range_query(ps[q], eps, b);
    EXPECT_EQ(sorted(a), sorted(b)) << "dim=" << dim << " n=" << n
                                    << " eps=" << eps << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeMatchesBruteForce,
    ::testing::Values(std::make_tuple(2, 500, 5.0),
                      std::make_tuple(2, 2000, 12.0),
                      std::make_tuple(3, 1000, 15.0),
                      std::make_tuple(5, 1000, 40.0),
                      std::make_tuple(10, 800, 60.0),
                      std::make_tuple(10, 800, 5.0),
                      std::make_tuple(1, 300, 3.0)));

TEST(KdTree, KnnMatchesBruteForce) {
  const PointSet ps = random_points(800, 4, 50.0, 17);
  const KdTree tree(ps, 8);
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    const size_t k = 1 + rng.uniform_index(20);
    const auto knn = tree.knn(ps[q], k);
    ASSERT_EQ(knn.size(), std::min(k, ps.size()));
    // Compare against brute-force k smallest distances.
    std::vector<std::pair<double, PointId>> all;
    for (PointId i = 0; i < static_cast<PointId>(ps.size()); ++i) {
      all.emplace_back(squared_distance(ps[q], ps[i]), i);
    }
    std::sort(all.begin(), all.end());
    // Distances must match (ids may tie arbitrarily).
    for (size_t i = 0; i < knn.size(); ++i) {
      EXPECT_DOUBLE_EQ(squared_distance(ps[q], ps[knn[i]]), all[i].first);
    }
  }
}

TEST(KdTree, KnnOrderedNearestFirst) {
  const PointSet ps = random_points(300, 3, 50.0, 23);
  const KdTree tree(ps);
  const auto knn = tree.knn(ps[0], 10);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(squared_distance(ps[0], ps[knn[i - 1]]),
              squared_distance(ps[0], ps[knn[i]]));
  }
  EXPECT_EQ(knn[0], 0);  // the query point itself is its own nearest
}

TEST(KdTree, NeighborBudgetCapsResults) {
  const PointSet ps = random_points(2000, 2, 10.0, 31);
  const KdTree tree(ps);
  QueryBudget budget;
  budget.max_neighbors = 5;
  std::vector<PointId> out;
  tree.range_query_budgeted(ps[0], 5.0, budget, out);
  EXPECT_LE(out.size(), 5u);
  // Without budget there are far more.
  std::vector<PointId> full;
  tree.range_query(ps[0], 5.0, full);
  EXPECT_GT(full.size(), 5u);
  // Budgeted results are a subset of the exact results.
  for (const PointId id : out) {
    EXPECT_NE(std::find(full.begin(), full.end(), id), full.end());
  }
}

TEST(KdTree, NodeBudgetReducesVisits) {
  const PointSet ps = random_points(5000, 3, 30.0, 37);
  const KdTree tree(ps, 8);
  QueryBudget budget;
  budget.max_nodes = 10;
  WorkCounters limited;
  {
    ScopedCounters scope(&limited);
    std::vector<PointId> out;
    tree.range_query_budgeted(ps[0], 10.0, budget, out);
  }
  WorkCounters full;
  {
    ScopedCounters scope(&full);
    std::vector<PointId> out;
    tree.range_query(ps[0], 10.0, out);
  }
  EXPECT_LE(limited.tree_nodes, 11u);
  EXPECT_GT(full.tree_nodes, limited.tree_nodes);
}

TEST(KdTree, BuildIsBalancedish) {
  const PointSet ps = random_points(4096, 3, 100.0, 41);
  const KdTree tree(ps, 16);
  // Perfectly balanced depth would be log2(4096/16) = 8; allow slack.
  EXPECT_LE(tree.depth(), 14);
  EXPECT_GT(tree.node_count(), 4096u / 16);
}

TEST(KdTree, ByteSizeNonTrivial) {
  const PointSet ps = random_points(100, 5, 10.0, 43);
  const KdTree tree(ps);
  EXPECT_GE(tree.byte_size(), ps.byte_size());
}

TEST(KdTree, ParallelBuildMatchesSequential) {
  // n above the parallel threshold so the pool actually engages. The forked
  // tasks run nth_element on disjoint id subranges, so structure, depth,
  // ids permutation — and therefore every query answer, in order — must be
  // identical to the sequential build. (This test carries the `sanitize`
  // ctest label: under -DSDB_SANITIZE=thread it is the TSan entry point for
  // the parallel build path.)
  const PointSet ps = random_points(30000, 3, 200.0, 59);
  const KdTree seq(ps, KdTreeOptions{.build_threads = 1});
  const KdTree par(ps, KdTreeOptions{.build_threads = 4});
  EXPECT_EQ(seq.node_count(), par.node_count());
  EXPECT_EQ(seq.depth(), par.depth());
  EXPECT_EQ(seq.byte_size(), par.byte_size());
  Rng rng(61);
  for (int trial = 0; trial < 40; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    std::vector<PointId> a;
    std::vector<PointId> b;
    seq.range_query(ps[q], 6.0, a);
    par.range_query(ps[q], 6.0, b);
    EXPECT_EQ(a, b) << "q=" << q;  // order included
  }
}

TEST(KdTree, ReorderedMatchesLegacyExactlyIncludingCounters) {
  // The leaf-contiguous blocked path must return the same neighbors in the
  // same order as the legacy gather path, with the same distance_evals
  // count — the counter prices simulated executor work, so "faster" must
  // never mean "counted differently".
  const PointSet ps = random_points(5000, 4, 60.0, 67);
  const KdTree legacy(ps, KdTreeOptions{.build_threads = 1, .reorder = false});
  const KdTree blocked(ps, KdTreeOptions{.build_threads = 1, .reorder = true});
  EXPECT_FALSE(legacy.reordered());
  EXPECT_TRUE(blocked.reordered());
  Rng rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    WorkCounters wl;
    std::vector<PointId> a;
    {
      ScopedCounters scope(&wl);
      legacy.range_query(ps[q], 8.0, a);
    }
    WorkCounters wb;
    std::vector<PointId> b;
    {
      ScopedCounters scope(&wb);
      blocked.range_query(ps[q], 8.0, b);
    }
    EXPECT_EQ(a, b);
    EXPECT_EQ(wl.distance_evals, wb.distance_evals);
    EXPECT_EQ(wl.tree_nodes, wb.tree_nodes);
  }
}

TEST(KdTree, BudgetedQueriesReproducible) {
  // The QueryBudget approximation contract (spatial_index.hpp): truncation
  // follows the fixed traversal order, so repeated invocations — and trees
  // built with different thread counts — return the identical sequence.
  const PointSet ps = random_points(20000, 3, 40.0, 73);
  const KdTree seq(ps, KdTreeOptions{.build_threads = 1});
  const KdTree par(ps, KdTreeOptions{.build_threads = 4});
  Rng rng(79);
  for (int trial = 0; trial < 25; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    QueryBudget budget;
    budget.max_neighbors = 1 + rng.uniform_index(16);
    budget.max_nodes = 8 + rng.uniform_index(64);
    std::vector<PointId> first;
    seq.range_query_budgeted(ps[q], 5.0, budget, first);
    for (int repeat = 0; repeat < 3; ++repeat) {
      std::vector<PointId> again;
      seq.range_query_budgeted(ps[q], 5.0, budget, again);
      EXPECT_EQ(first, again);
    }
    std::vector<PointId> parallel_tree;
    par.range_query_budgeted(ps[q], 5.0, budget, parallel_tree);
    EXPECT_EQ(first, parallel_tree);
  }
}

TEST(KdTree, CountsTreeNodeVisits) {
  const PointSet ps = random_points(1000, 2, 50.0, 47);
  const KdTree tree(ps, 8);
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    std::vector<PointId> out;
    tree.range_query(ps[0], 1.0, out);
  }
  EXPECT_GT(wc.tree_nodes, 0u);
}

}  // namespace
}  // namespace sdb
