// Unified kNN query contract across the spatial indexes (satellite of the
// KNN-DBSCAN backend PR; the contract lives on SpatialIndex::knn_query).
//
// Every index — kd-tree (both layouts), brute force, grid, R-tree — must
// return the SAME hit vector for the same query: exact kNN under the
// lexicographic (d2, id) order, ties at the k-th distance broken by point
// id. Duplicated points and exactly-equidistant partners make the tie-break
// observable; any index that kept heap-insertion order would diverge here.
//
// The counter contract is regression-tested the same way the range-query
// suite pins distance_evals: a traversal forced to examine every row (k >=
// n) charges exactly n distance_evals on EVERY index, and budget
// semantics are uniform — max_nodes caps node/cell visits deterministically,
// max_neighbors is ignored for kNN.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geom/distance.hpp"
#include "spatial/brute_force.hpp"
#include "spatial/grid_index.hpp"
#include "spatial/kd_tree.hpp"
#include "spatial/r_tree.hpp"
#include "synth/generators.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

/// Oracle: scalar full scan, sorted by (d2, id), truncated to k.
std::vector<KnnHit> brute_oracle(const PointSet& ps, std::span<const double> q,
                                 size_t k) {
  std::vector<KnnHit> all;
  for (PointId i = 0; i < static_cast<PointId>(ps.size()); ++i) {
    all.push_back({squared_distance_uncounted(q, ps[i]), i});
  }
  std::sort(all.begin(), all.end(), [](const KnnHit& a, const KnnHit& b) {
    return std::pair{a.d2, a.id} < std::pair{b.d2, b.id};
  });
  if (all.size() > k) all.resize(k);
  return all;
}

/// Dataset where ties are the common case, not the corner: duplicated
/// points (d2 ties at 0 and at every shared neighbor) and partners offset
/// by the same amount along different axes (equal d2, different id).
PointSet tie_heavy_points(size_t n, size_t dim, u64 seed) {
  Rng rng(seed);
  PointSet ps(static_cast<int>(dim));
  std::vector<double> p(dim), partner(dim);
  while (ps.size() < n) {
    for (auto& x : p) x = rng.uniform(0.0, 40.0);
    ps.add(p);
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.3) {
      ps.add(p);  // exact duplicate -> d2 tie at every query
    } else if (roll < 0.6 && dim >= 2) {
      // Two partners at identical distance from p along different axes:
      // any query near p sees an exact (d2, d2) tie between distinct ids.
      partner = p;
      partner[0] += 3.0;
      ps.add(partner);
      partner = p;
      partner[0] -= 3.0;
      ps.add(partner);
    }
  }
  return ps;
}

struct IndexSet {
  KdTree legacy;
  KdTree blocked;
  BruteForceIndex brute;
  GridIndex grid;
  RTree rtree;
  std::vector<const SpatialIndex*> all;

  explicit IndexSet(const PointSet& ps, double grid_cell)
      : legacy(ps, KdTreeOptions{.build_threads = 1, .reorder = false}),
        blocked(ps, KdTreeOptions{.build_threads = 1, .reorder = true}),
        brute(ps),
        grid(ps, grid_cell),
        rtree(ps) {
    all = {&legacy, &blocked, &brute, &grid, &rtree};
  }
};

TEST(KnnQueryParity, AllIndexesMatchTheOracleIncludingTies) {
  const PointSet ps = tie_heavy_points(500, 4, 11);
  IndexSet idx(ps, 8.0);
  const QueryBudget exact;

  for (const size_t k : {size_t{1}, size_t{2}, size_t{7}, size_t{33},
                         size_t{ps.size()}, ps.size() + 5}) {
    for (PointId q = 0; q < static_cast<PointId>(ps.size());
         q += static_cast<PointId>(ps.size() / 60 + 1)) {
      const auto want = brute_oracle(ps, ps[q], k);
      for (const SpatialIndex* index : idx.all) {
        std::vector<KnnHit> got;
        index->knn_query(ps[q], k, exact, got);
        EXPECT_EQ(got, want) << index->name() << " k=" << k << " q=" << q;
      }
    }
  }
}

TEST(KnnQueryParity, HighDimMatchesOracle) {
  // d=64: box pruning barely discriminates, so the traversals visit nearly
  // everything — the regime the KNN backend is for. Parity must hold here
  // too (this is where the heap-cutoff kernel filter bugs hid).
  Rng rng(21);
  synth::EmbeddingConfig cfg;
  cfg.n = 400;
  cfg.dim = 64;
  cfg.clusters = 4;
  const PointSet ps = synth::embedding_clusters(cfg, rng);
  IndexSet idx(ps, synth::embedding_suggested_eps(cfg));
  const QueryBudget exact;

  for (const size_t k : {size_t{1}, size_t{16}, size_t{50}}) {
    for (PointId q = 0; q < 40; ++q) {
      const auto want = brute_oracle(ps, ps[q], k);
      for (const SpatialIndex* index : idx.all) {
        std::vector<KnnHit> got;
        index->knn_query(ps[q], k, exact, got);
        EXPECT_EQ(got, want) << index->name() << " k=" << k << " q=" << q;
      }
    }
  }
}

TEST(KnnQueryCounters, ExhaustiveTraversalChargesExactlyNEverywhere) {
  // k >= n forces every index to examine every row; the unified contract
  // says that costs exactly one distance_eval per row on every index, no
  // double-charging across kernel blocks, no skipping via the cutoff
  // filter.
  const PointSet ps = tie_heavy_points(300, 3, 5);
  IndexSet idx(ps, 10.0);
  const QueryBudget exact;

  for (PointId q = 0; q < 25; ++q) {
    for (const SpatialIndex* index : idx.all) {
      WorkCounters wc;
      std::vector<KnnHit> hits;
      {
        ScopedCounters scope(&wc);
        index->knn_query(ps[q], ps.size(), exact, hits);
      }
      EXPECT_EQ(hits.size(), ps.size()) << index->name() << " q=" << q;
      EXPECT_EQ(wc.distance_evals, ps.size()) << index->name() << " q=" << q;
    }
  }
}

TEST(KnnQueryCounters, ChargesMatchScalarReference) {
  // distance_evals counts candidate rows EXAMINED — independent of whether
  // the SIMD cutoff filter or partial-distance abandonment short-circuited
  // the arithmetic. Dispatched and forced-scalar runs must charge the same.
  const PointSet ps = tie_heavy_points(400, 6, 77);
  IndexSet idx(ps, 9.0);
  const QueryBudget exact;

  for (const size_t k : {size_t{4}, size_t{32}}) {
    for (PointId q = 0; q < 30; ++q) {
      for (const SpatialIndex* index : idx.all) {
        auto run = [&] {
          WorkCounters wc;
          std::vector<KnnHit> hits;
          {
            ScopedCounters scope(&wc);
            index->knn_query(ps[q], k, exact, hits);
          }
          return std::make_tuple(hits, wc.distance_evals, wc.tree_nodes);
        };
        const auto dispatched = run();
        simd::force_scalar(true);
        const auto scalar = run();
        simd::force_scalar(false);
        EXPECT_EQ(dispatched, scalar) << index->name() << " k=" << k
                                      << " q=" << q;
      }
    }
  }
}

TEST(KnnQueryBudget, MaxNeighborsIsIgnored) {
  // k itself is the result-size bound; budget.max_neighbors must have no
  // effect on kNN results or charges (documented in spatial_index.hpp).
  const PointSet ps = tie_heavy_points(300, 4, 13);
  IndexSet idx(ps, 8.0);

  for (const u64 max_neighbors : {u64{0}, u64{1}, u64{5}, u64{1000}}) {
    QueryBudget budget;
    budget.max_neighbors = max_neighbors;
    for (PointId q = 0; q < 20; ++q) {
      for (const SpatialIndex* index : idx.all) {
        std::vector<KnnHit> with_budget, without;
        WorkCounters wc_with, wc_without;
        {
          ScopedCounters scope(&wc_with);
          index->knn_query(ps[q], 10, budget, with_budget);
        }
        {
          ScopedCounters scope(&wc_without);
          index->knn_query(ps[q], 10, QueryBudget{}, without);
        }
        EXPECT_EQ(with_budget, without)
            << index->name() << " max_neighbors=" << max_neighbors;
        EXPECT_EQ(wc_with.distance_evals, wc_without.distance_evals)
            << index->name() << " max_neighbors=" << max_neighbors;
      }
    }
  }
}

TEST(KnnQueryBudget, MaxNodesIsDeterministicAndBruteStaysExact) {
  const PointSet ps = tie_heavy_points(400, 4, 17);
  IndexSet idx(ps, 8.0);

  for (const u64 max_nodes : {u64{1}, u64{4}, u64{16}, u64{1 << 20}}) {
    QueryBudget budget;
    budget.max_nodes = max_nodes;
    for (PointId q = 0; q < 20; ++q) {
      for (const SpatialIndex* index : idx.all) {
        std::vector<KnnHit> first, second;
        index->knn_query(ps[q], 8, budget, first);
        index->knn_query(ps[q], 8, budget, second);
        // Fixed traversal order -> the budgeted result is a deterministic
        // function of (index, query, budget).
        EXPECT_EQ(first, second) << index->name() << " max_nodes="
                                 << max_nodes;
      }
      // Brute force has no nodes: any max_nodes stays exact.
      std::vector<KnnHit> brute_hits;
      idx.brute.knn_query(ps[q], 8, budget, brute_hits);
      EXPECT_EQ(brute_hits, brute_oracle(ps, ps[q], 8))
          << "max_nodes=" << max_nodes;
      // A generous cap must not change the exact answer on any index.
      if (max_nodes >= (u64{1} << 20)) {
        for (const SpatialIndex* index : idx.all) {
          std::vector<KnnHit> capped;
          index->knn_query(ps[q], 8, budget, capped);
          EXPECT_EQ(capped, brute_oracle(ps, ps[q], 8)) << index->name();
        }
      }
    }
  }
}

TEST(KnnQueryEdgeCases, EmptyKZeroAndShortDatasets) {
  PointSet ps(3);
  ps.add(std::vector<double>{1.0, 2.0, 3.0});
  ps.add(std::vector<double>{1.0, 2.0, 3.0});  // duplicate: tie at d2=0
  IndexSet idx(ps, 5.0);
  const QueryBudget exact;

  for (const SpatialIndex* index : idx.all) {
    std::vector<KnnHit> hits;
    index->knn_query(ps[0], 0, exact, hits);
    EXPECT_TRUE(hits.empty()) << index->name();
    index->knn_query(ps[0], 10, exact, hits);
    ASSERT_EQ(hits.size(), 2u) << index->name();
    // Tie at d2=0 broken by id.
    EXPECT_EQ(hits[0], (KnnHit{0.0, 0})) << index->name();
    EXPECT_EQ(hits[1], (KnnHit{0.0, 1})) << index->name();
  }
}

}  // namespace
}  // namespace sdb
