#include "mapreduce/mr_engine.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <mutex>
#include <sstream>

namespace sdb::mapreduce {
namespace {

namespace fs = std::filesystem;

class MREngineTest : public ::testing::Test {
 protected:
  MREngineTest() {
    // Per-process work dir: `ctest -j` runs each case as its own process.
    config_.work_dir =
        (fs::temp_directory_path() /
         ("sdb_mr_test_p" + std::to_string(::getpid())))
            .string();
    fs::remove_all(config_.work_dir);
    config_.cores = 2;
    config_.job_startup_s = 0.5;
    config_.task_overhead_s = 0.05;
  }
  ~MREngineTest() override { fs::remove_all(config_.work_dir); }
  MRConfig config_;
};

TEST_F(MREngineTest, WordCount) {
  config_.reduce_tasks = 3;
  MRJob job(
      config_, "wordcount",
      [](u32, const std::string& split, const MRJob::Emit& emit) {
        std::istringstream is(split);
        std::string word;
        while (is >> word) emit(word, "1");
      },
      [](const std::string& key, std::vector<std::string>& values,
         const MRJob::Emit& emit) {
        emit(key, std::to_string(values.size()));
      });
  const auto out = job.run({"a b a", "b c b", "a"});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, "a");
  EXPECT_EQ(out[0].value, "3");
  EXPECT_EQ(out[1].key, "b");
  EXPECT_EQ(out[1].value, "3");
  EXPECT_EQ(out[2].key, "c");
  EXPECT_EQ(out[2].value, "1");
}

TEST_F(MREngineTest, AllValuesForKeyGroupedOnce) {
  config_.reduce_tasks = 4;
  std::mutex mutex;
  std::vector<std::string> reduced_keys;
  MRJob job(
      config_, "grouping",
      [](u32 task, const std::string&, const MRJob::Emit& emit) {
        for (int i = 0; i < 5; ++i) {
          emit("key" + std::to_string(i), std::to_string(task));
        }
      },
      [&](const std::string& key, std::vector<std::string>& values,
          const MRJob::Emit& emit) {
        const std::scoped_lock lock(mutex);
        reduced_keys.push_back(key);
        EXPECT_EQ(values.size(), 3u);  // 3 map tasks each emitted the key
        emit(key, "ok");
      });
  job.run({"s0", "s1", "s2"});
  std::sort(reduced_keys.begin(), reduced_keys.end());
  EXPECT_EQ(reduced_keys.size(), 5u);
  EXPECT_EQ(std::adjacent_find(reduced_keys.begin(), reduced_keys.end()),
            reduced_keys.end());
}

TEST_F(MREngineTest, BinaryValuesSurviveSpill) {
  // Values with embedded NULs and newlines must round-trip through the real
  // spill files.
  const std::string binary("\x00\x01\xff\n\r\x7f", 6);
  MRJob job(
      config_, "binary",
      [&](u32, const std::string&, const MRJob::Emit& emit) {
        emit("k", binary);
      },
      [](const std::string& key, std::vector<std::string>& values,
         const MRJob::Emit& emit) { emit(key, values[0]); });
  const auto out = job.run({"x"});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, binary);
}

TEST_F(MREngineTest, MetricsAccountPhases) {
  MRJob job(
      config_, "metrics",
      [](u32, const std::string&, const MRJob::Emit& emit) {
        counters::distance_evals(100000);
        emit("k", std::string(1000, 'v'));
      },
      [](const std::string& key, std::vector<std::string>& values,
         const MRJob::Emit& emit) { emit(key, std::to_string(values.size())); });
  job.run({"a", "b", "c", "d"});
  const MRJobMetrics& m = job.metrics();
  EXPECT_EQ(m.map.tasks, 4u);
  EXPECT_EQ(m.reduce.tasks, 1u);
  EXPECT_GT(m.map.sim_makespan_s, 0.0);
  EXPECT_GE(m.map.sim_total_s, m.map.sim_makespan_s);
  EXPECT_GT(m.spill_bytes, 4000u);      // four 1000-byte values + framing
  EXPECT_GT(m.shuffle_bytes, 4000u);
  EXPECT_GT(m.sim_total_s, config_.job_startup_s);
}

TEST_F(MREngineTest, SpillFilesCleanedUp) {
  MRJob job(
      config_, "cleanup",
      [](u32, const std::string&, const MRJob::Emit& emit) { emit("k", "v"); },
      [](const std::string& key, std::vector<std::string>&,
         const MRJob::Emit& emit) { emit(key, "done"); });
  job.run({"a", "b"});
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(config_.work_dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 0u);
}

TEST_F(MREngineTest, EmptyMapOutput) {
  MRJob job(
      config_, "empty",
      [](u32, const std::string&, const MRJob::Emit&) {},
      [](const std::string&, std::vector<std::string>&, const MRJob::Emit&) {
        FAIL() << "reducer must not run with no keys";
      });
  const auto out = job.run({"a", "b"});
  EXPECT_TRUE(out.empty());
}

TEST_F(MREngineTest, StartupCostDominatesSmallJobs) {
  // The Figure 7 mechanism: for tiny inputs, MR pays its startup while
  // Spark-equivalent work is milliseconds.
  MRJob job(
      config_, "tiny",
      [](u32, const std::string&, const MRJob::Emit& emit) { emit("k", "1"); },
      [](const std::string& key, std::vector<std::string>&,
         const MRJob::Emit& emit) { emit(key, "1"); });
  job.run({"x"});
  EXPECT_GT(job.metrics().sim_total_s, 0.5);
}

}  // namespace
}  // namespace sdb::mapreduce
