#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "geom/distance.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::synth {
namespace {

PointSet uniform(i64 n, int dim, u64 seed) {
  Rng rng(seed);
  UniformConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.box_side = 100.0;
  return uniform_points(cfg, rng);
}

TEST(SpatialSort, IsAPermutation) {
  const PointSet ps = uniform(500, 3, 1);
  const PointSet sorted = spatially_sorted(ps);
  ASSERT_EQ(sorted.size(), ps.size());
  ASSERT_EQ(sorted.dim(), ps.dim());
  // Multisets of rows are equal.
  auto rows = [](const PointSet& s) {
    std::vector<std::vector<double>> r;
    for (PointId i = 0; i < static_cast<PointId>(s.size()); ++i) {
      r.emplace_back(s[i].begin(), s[i].end());
    }
    std::sort(r.begin(), r.end());
    return r;
  };
  EXPECT_EQ(rows(ps), rows(sorted));
}

TEST(SpatialSort, Deterministic) {
  const PointSet ps = uniform(300, 5, 2);
  EXPECT_EQ(spatially_sorted(ps).raw(), spatially_sorted(ps).raw());
}

TEST(SpatialSort, ImprovesBlockLocality) {
  // After sorting, consecutive index blocks must be spatially tighter:
  // compare the mean distance between index-adjacent points.
  const PointSet ps = uniform(2000, 10, 3);
  const PointSet sorted = spatially_sorted(ps);
  auto adjacency_cost = [](const PointSet& s) {
    double total = 0.0;
    for (PointId i = 0; i + 1 < static_cast<PointId>(s.size()); ++i) {
      total += squared_distance(s[i], s[i + 1]);
    }
    return total;
  };
  EXPECT_LT(adjacency_cost(sorted), adjacency_cost(ps) * 0.6);
}

TEST(SpatialSort, TinyInputsUntouched) {
  const PointSet ps = uniform(10, 2, 4);
  const PointSet sorted = spatially_sorted(ps, 32);  // below leaf size
  EXPECT_EQ(sorted.raw(), ps.raw());
}

TEST(SpatialSort, EmptyInput) {
  PointSet ps(3);
  const PointSet sorted = spatially_sorted(ps);
  EXPECT_EQ(sorted.size(), 0u);
}

TEST(SpatialSort, DuplicatePointsSurvive) {
  PointSet ps(2);
  const double a[2] = {1, 1};
  for (int i = 0; i < 100; ++i) ps.add(a);
  const PointSet sorted = spatially_sorted(ps, 8);
  EXPECT_EQ(sorted.size(), 100u);
  for (PointId i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sorted[i][0], 1.0);
  }
}

}  // namespace
}  // namespace sdb::synth
