// Block checksum verification — HDFS's data-integrity scan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "dfs/mini_dfs.hpp"

namespace sdb::dfs {
namespace {

namespace fs = std::filesystem;

class DfsIntegrityTest : public ::testing::Test {
 protected:
  // Per-process root: `ctest -j` runs each case as its own process, and a
  // shared root means one test's remove_all() deletes another's live block
  // files mid-run.
  DfsIntegrityTest()
      : root_((fs::temp_directory_path() /
               ("sdb_dfs_integrity_p" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(root_);
  }
  ~DfsIntegrityTest() override { fs::remove_all(root_); }

  /// Flip one byte of the backing file of block `id`.
  void corrupt_block(u64 id) const {
    const std::string path =
        (fs::path(root_) / "blocks" / ("blk_" + std::to_string(id))).string();
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(0);
    byte = static_cast<char>(byte ^ 0xff);
    f.write(&byte, 1);
  }

  std::string root_;
};

TEST_F(DfsIntegrityTest, CleanFileVerifies) {
  MiniDfs dfs(root_, 8);
  dfs.write("/f", "the quick brown fox jumps over the lazy dog");
  EXPECT_TRUE(dfs.verify("/f").empty());
}

TEST_F(DfsIntegrityTest, CorruptionDetectedAndLocated) {
  MiniDfs dfs(root_, 8);
  const FileInfo& info = dfs.write("/f", std::string(40, 'a'));
  ASSERT_EQ(info.blocks.size(), 5u);
  corrupt_block(info.blocks[2].id);
  const auto corrupt = dfs.verify("/f");
  EXPECT_EQ(corrupt, (std::vector<size_t>{2}));
}

TEST_F(DfsIntegrityTest, MultipleCorruptions) {
  MiniDfs dfs(root_, 4);
  const FileInfo& info = dfs.write("/f", std::string(20, 'z'));
  corrupt_block(info.blocks[0].id);
  corrupt_block(info.blocks[4].id);
  EXPECT_EQ(dfs.verify("/f"), (std::vector<size_t>{0, 4}));
}

TEST_F(DfsIntegrityTest, ChecksumsDifferPerContent) {
  MiniDfs dfs(root_, 64);
  const FileInfo& a = dfs.write("/a", "content one");
  const FileInfo& b = dfs.write("/b", "content two");
  EXPECT_NE(a.blocks[0].checksum, b.blocks[0].checksum);
}

TEST_F(DfsIntegrityTest, EmptyFileVerifies) {
  MiniDfs dfs(root_, 8);
  dfs.write("/empty", "");
  EXPECT_TRUE(dfs.verify("/empty").empty());
}

}  // namespace
}  // namespace sdb::dfs
