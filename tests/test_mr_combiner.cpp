// Map-side combiner: Hadoop's standard spill-volume optimization. The
// combiner runs on each map task's sorted bucket before it hits disk, so
// spill and shuffle bytes shrink while the reduce output is unchanged.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>

#include "mapreduce/mr_engine.hpp"

namespace sdb::mapreduce {
namespace {

namespace fs = std::filesystem;

class MRCombinerTest : public ::testing::Test {
 protected:
  MRCombinerTest() {
    // Per-process work dir: `ctest -j` runs each case as its own process.
    config_.work_dir =
        (fs::temp_directory_path() /
         ("sdb_mr_comb_p" + std::to_string(::getpid())))
            .string();
    fs::remove_all(config_.work_dir);
    config_.cores = 2;
    config_.reduce_tasks = 2;
  }
  ~MRCombinerTest() override { fs::remove_all(config_.work_dir); }

  MRJob::Mapper word_mapper() {
    return [](u32, const std::string& split, const MRJob::Emit& emit) {
      std::istringstream is(split);
      std::string word;
      while (is >> word) emit(word, "1");
    };
  }

  MRJob::Reducer count_reducer() {
    return [](const std::string& key, std::vector<std::string>& values,
              const MRJob::Emit& emit) {
      u64 total = 0;
      for (const auto& v : values) total += std::stoull(v);
      emit(key, std::to_string(total));
    };
  }

  MRConfig config_;
  const std::vector<std::string> splits_ = {
      "a a a a b", "b a a c c c", "a b c a a"};
};

TEST_F(MRCombinerTest, SameOutputWithAndWithoutCombiner) {
  MRJob plain(config_, "plain", word_mapper(), count_reducer());
  const auto expected = plain.run(splits_);

  MRJob combined(config_, "combined", word_mapper(), count_reducer());
  combined.set_combiner([](const std::string& key,
                           std::vector<std::string>& values,
                           const MRJob::Emit& emit) {
    u64 total = 0;
    for (const auto& v : values) total += std::stoull(v);
    emit(key, std::to_string(total));
  });
  const auto got = combined.run(splits_);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expected[i].key);
    EXPECT_EQ(got[i].value, expected[i].value);
  }
}

TEST_F(MRCombinerTest, CombinerReducesSpillAndShuffleBytes) {
  MRJob plain(config_, "plain2", word_mapper(), count_reducer());
  plain.run(splits_);

  MRJob combined(config_, "combined2", word_mapper(), count_reducer());
  combined.set_combiner([](const std::string& key,
                           std::vector<std::string>& values,
                           const MRJob::Emit& emit) {
    u64 total = 0;
    for (const auto& v : values) total += std::stoull(v);
    emit(key, std::to_string(total));
  });
  combined.run(splits_);

  EXPECT_LT(combined.metrics().spill_bytes, plain.metrics().spill_bytes);
  EXPECT_LT(combined.metrics().shuffle_bytes, plain.metrics().shuffle_bytes);
}

TEST_F(MRCombinerTest, CombinerSeesOnlyOneKeyGroupAtATime) {
  MRJob job(config_, "groups", word_mapper(), count_reducer());
  job.set_combiner([](const std::string& key,
                      std::vector<std::string>& values,
                      const MRJob::Emit& emit) {
    for (const auto& v : values) EXPECT_EQ(v, "1");
    EXPECT_FALSE(key.empty());
    emit(key, std::to_string(values.size()));
  });
  const auto out = job.run(splits_);
  ASSERT_EQ(out.size(), 3u);  // keys a, b, c
}

}  // namespace
}  // namespace sdb::mapreduce
