#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "core/dbscan_seq.hpp"
#include "core/quality.hpp"
#include "spatial/brute_force.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

IncrementalDbscan::Config config(double eps, i64 minpts,
                                 size_t rebuild = 64) {
  IncrementalDbscan::Config cfg;
  cfg.params = {eps, minpts};
  cfg.rebuild_threshold = rebuild;
  return cfg;
}

/// Full structural comparison against batch DBSCAN at given params.
/// (Insert-only histories: rows are ids.)
void check_equivalent(const IncrementalDbscan& inc, const DbscanParams& params,
                      const std::string& context) {
  const PointSet& ps = *inc.storage_view().rows;
  if (ps.empty()) return;
  const BruteForceIndex index(ps);
  const auto batch = dbscan_sequential(ps, index, params);
  const Clustering mine = inc.clustering();
  const auto report = check_equivalence(ps, index, params, batch.core_points,
                                        batch.clustering, mine);
  EXPECT_TRUE(report.equivalent)
      << context << ": core=" << report.core_mismatches
      << " noise=" << report.noise_mismatches
      << " border=" << report.border_violations << " " << report.detail;
  // Core flags must agree exactly.
  std::vector<char> batch_core(ps.size(), 0);
  for (const PointId c : batch.core_points) batch_core[static_cast<size_t>(c)] = 1;
  for (PointId i = 0; i < static_cast<PointId>(ps.size()); ++i) {
    EXPECT_EQ(inc.is_core(i), batch_core[static_cast<size_t>(i)] != 0)
        << context << " point " << i;
  }
}

TEST(Incremental, EmptyAndSingle) {
  IncrementalDbscan inc(config(1.0, 2), 2);
  EXPECT_EQ(inc.size(), 0u);
  const double p[2] = {0, 0};
  inc.insert(p);
  EXPECT_EQ(inc.size(), 1u);
  EXPECT_EQ(inc.label_of(0), kNoise);
  EXPECT_FALSE(inc.is_core(0));
}

TEST(Incremental, PairBecomesCluster) {
  IncrementalDbscan inc(config(1.0, 2), 1);
  const double a[1] = {0.0};
  const double b[1] = {0.5};
  inc.insert(a);
  EXPECT_EQ(inc.label_of(0), kNoise);
  inc.insert(b);
  // Both now have 2 neighbors (self-inclusive) -> both core, one cluster.
  EXPECT_TRUE(inc.is_core(0));
  EXPECT_TRUE(inc.is_core(1));
  EXPECT_EQ(inc.label_of(0), inc.label_of(1));
  EXPECT_NE(inc.label_of(0), kNoise);
}

TEST(Incremental, BridgePointMergesClusters) {
  // Two separate dense groups; a final bridge point connects them.
  IncrementalDbscan inc(config(1.1, 2), 1);
  for (const double x : {0.0, 1.0, 4.0, 5.0}) {
    const double p[1] = {x};
    inc.insert(p);
  }
  auto snapshot = inc.clustering();
  EXPECT_EQ(snapshot.num_clusters, 2u);
  const double bridge[1] = {2.5};
  inc.insert(bridge);  // within 1.1 of... nothing? 2.5-1.0=1.5 too far.
  EXPECT_EQ(inc.clustering().num_clusters, 2u);
  const double bridge2[1] = {2.0};  // links to 1.0
  const double bridge3[1] = {3.0};  // links to 2.0, 2.5... chain to 4.0
  inc.insert(bridge2);
  inc.insert(bridge3);
  const auto merged = inc.clustering();
  EXPECT_EQ(merged.num_clusters, 1u);
  EXPECT_GT(inc.merges(), 0u);
  check_equivalent(inc, {1.1, 2}, "bridge");
}

TEST(Incremental, NoisePromotedToBorder) {
  IncrementalDbscan inc(config(1.0, 3), 1);
  const double a[1] = {0.0};
  inc.insert(a);
  EXPECT_EQ(inc.label_of(0), kNoise);
  const double b[1] = {0.9};
  inc.insert(b);
  EXPECT_EQ(inc.label_of(0), kNoise);  // still: nobody is core (minpts 3)
  const double c[1] = {0.45};
  inc.insert(c);
  // c has neighbors {a, b, c} -> core; a and b become border points.
  EXPECT_TRUE(inc.is_core(2));
  EXPECT_NE(inc.label_of(0), kNoise);
  EXPECT_EQ(inc.label_of(0), inc.label_of(1));
  check_equivalent(inc, {1.0, 3}, "promotion");
}

class IncrementalEqualsBatch
    : public ::testing::TestWithParam<std::tuple<u64, size_t>> {};

TEST_P(IncrementalEqualsBatch, AfterEveryFewInsertions) {
  const auto [seed, rebuild] = GetParam();
  Rng rng(seed);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 400;
  gcfg.dim = 2;
  gcfg.clusters = 4;
  gcfg.sigma = 0.5;
  gcfg.noise_fraction = 0.15;
  gcfg.box_side = 30.0;
  const PointSet data = synth::gaussian_clusters(gcfg, rng);
  const DbscanParams params{0.8, 4};

  IncrementalDbscan inc(config(params.eps, params.minpts, rebuild), 2);
  for (PointId i = 0; i < static_cast<PointId>(data.size()); ++i) {
    inc.insert(data[i]);
    if ((i + 1) % 100 == 0) {
      check_equivalent(inc, params,
                       "seed=" + std::to_string(seed) + " after " +
                           std::to_string(i + 1));
    }
  }
  check_equivalent(inc, params, "final seed=" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalEqualsBatch,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(size_t{0}, size_t{64})));

TEST(Incremental, InsertionOrderInvariantStructure) {
  // Same multiset of points, two insertion orders -> equivalent clusterings.
  Rng rng(9);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 200;
  gcfg.dim = 2;
  gcfg.clusters = 3;
  gcfg.sigma = 0.4;
  gcfg.box_side = 25.0;
  const PointSet data = synth::gaussian_clusters(gcfg, rng);
  const DbscanParams params{0.8, 4};

  IncrementalDbscan forward(config(params.eps, params.minpts), 2);
  for (PointId i = 0; i < static_cast<PointId>(data.size()); ++i) {
    forward.insert(data[i]);
  }
  IncrementalDbscan backward(config(params.eps, params.minpts), 2);
  for (PointId i = static_cast<PointId>(data.size()); i-- > 0;) {
    backward.insert(data[i]);
  }
  const auto a = forward.clustering();
  const auto b = backward.clustering();
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.noise_count(), b.noise_count());
}

/// Compare the incremental state (with tombstones) against batch DBSCAN
/// over the surviving points only.
void check_equivalent_survivors(const IncrementalDbscan& inc,
                                const DbscanParams& params,
                                const std::string& context) {
  PointSet survivors(inc.storage_view().rows->dim());
  std::vector<PointId> survivor_ids;
  for (PointId i = 0; i < static_cast<PointId>(inc.size()); ++i) {
    if (!inc.is_removed(i)) {
      survivors.add(inc.coords_of(i));
      survivor_ids.push_back(i);
    }
  }
  if (survivors.empty()) return;
  const BruteForceIndex index(survivors);
  const auto batch = dbscan_sequential(survivors, index, params);
  Clustering mine;
  mine.labels.reserve(survivors.size());
  const Clustering full = inc.clustering();
  for (const PointId id : survivor_ids) {
    mine.labels.push_back(full.labels[static_cast<size_t>(id)]);
  }
  mine.num_clusters = full.num_clusters;
  mine.normalize();
  const auto report = check_equivalence(survivors, index, params,
                                        batch.core_points, batch.clustering,
                                        mine);
  EXPECT_TRUE(report.equivalent)
      << context << ": core=" << report.core_mismatches
      << " noise=" << report.noise_mismatches
      << " border=" << report.border_violations << " " << report.detail;
}

TEST(IncrementalRemove, RemovingBridgeSplitsCluster) {
  // a-b-bridge-c-d chain; removing the bridge must split one cluster in two.
  IncrementalDbscan inc(config(1.1, 2), 1);
  PointId bridge = -1;
  for (const double x : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    const PointId id = [&] {
      const double p[1] = {x};
      return inc.insert(p);
    }();
    if (x == 2.0) bridge = id;
  }
  EXPECT_EQ(inc.clustering().num_clusters, 1u);
  ASSERT_TRUE(inc.try_remove(bridge));
  EXPECT_EQ(inc.clustering().num_clusters, 2u);
  EXPECT_EQ(inc.active_size(), 4u);
  EXPECT_GT(inc.reclusterings(), 0u);
  check_equivalent_survivors(inc, {1.1, 2}, "bridge removal");
}

TEST(IncrementalRemove, RemovingNoiseIsCheap) {
  IncrementalDbscan inc(config(1.0, 3), 1);
  for (const double x : {0.0, 0.5, 1.0, 50.0}) {
    const double p[1] = {x};
    inc.insert(p);
  }
  EXPECT_EQ(inc.label_of(3), kNoise);
  ASSERT_TRUE(inc.try_remove(3));
  EXPECT_EQ(inc.reclusterings(), 0u);  // noise removal touches no cluster
  check_equivalent_survivors(inc, {1.0, 3}, "noise removal");
}

TEST(IncrementalRemove, DemotionTurnsClusterToNoise) {
  // Exactly minpts points in a blob: removing any one demotes the rest.
  IncrementalDbscan inc(config(1.0, 3), 1);
  for (const double x : {0.0, 0.3, 0.6}) {
    const double p[1] = {x};
    inc.insert(p);
  }
  EXPECT_EQ(inc.clustering().num_clusters, 1u);
  ASSERT_TRUE(inc.try_remove(1));
  EXPECT_EQ(inc.clustering().num_clusters, 0u);
  EXPECT_EQ(inc.label_of(0), kNoise);
  EXPECT_EQ(inc.label_of(2), kNoise);
  check_equivalent_survivors(inc, {1.0, 3}, "demotion");
}

TEST(IncrementalRemove, InvalidIdsAreRecoverable) {
  // A malformed client write must not kill the server: unknown ids, double
  // removes, and stale (reclaimed) ids all fail softly with no state change.
  IncrementalDbscan inc(config(1.0, 2), 1);
  EXPECT_FALSE(inc.try_remove(0));   // never issued
  EXPECT_FALSE(inc.try_remove(-1));  // nonsense
  const double p[1] = {0.0};
  inc.insert(p);
  EXPECT_FALSE(inc.try_remove(7));  // beyond the id space
  EXPECT_TRUE(inc.try_remove(0));
  EXPECT_FALSE(inc.try_remove(0));  // double remove
  EXPECT_EQ(inc.active_size(), 0u);
  EXPECT_TRUE(inc.is_removed(0));
}

TEST(IncrementalRemove, StaleIdAfterReclaimStaysRemoved) {
  // Reclaim compacts tombstoned rows away; the external id must keep
  // reporting removed and reject re-removal (the ingest path races stale
  // client ids against the reclaimer).
  IncrementalDbscan inc(config(1.0, 2, /*rebuild=*/4), 1);
  std::vector<PointId> ids;
  for (const double x : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5}) {
    const double p[1] = {x};
    ids.push_back(inc.insert(p));
  }
  ASSERT_TRUE(inc.try_remove(ids[1]));
  ASSERT_TRUE(inc.try_remove(ids[3]));
  // Push past the removal threshold so the reclaim fires.
  for (const double x : {5.0, 5.5, 6.0, 6.5}) {
    const double p[1] = {x};
    inc.insert(p);
  }
  ASSERT_TRUE(inc.try_remove(ids[0]));
  ASSERT_TRUE(inc.try_remove(ids[2]));
  EXPECT_GT(inc.reclaimed(), 0u);
  EXPECT_TRUE(inc.is_removed(ids[1]));
  EXPECT_FALSE(inc.try_remove(ids[1]));  // reclaimed long ago
  EXPECT_FALSE(inc.try_remove(ids[3]));
  check_equivalent_survivors(inc, {1.0, 2}, "stale ids");
}

TEST(IncrementalRemove, ReinsertAfterRemove) {
  IncrementalDbscan inc(config(1.0, 2), 1);
  const double a[1] = {0.0};
  const double b[1] = {0.5};
  inc.insert(a);
  inc.insert(b);
  EXPECT_EQ(inc.clustering().num_clusters, 1u);
  ASSERT_TRUE(inc.try_remove(1));
  EXPECT_EQ(inc.clustering().num_clusters, 0u);
  inc.insert(b);  // same coordinates, new id
  EXPECT_EQ(inc.clustering().num_clusters, 1u);
  check_equivalent_survivors(inc, {1.0, 2}, "reinsert");
}

class IncrementalChurnEqualsBatch : public ::testing::TestWithParam<u64> {};

TEST_P(IncrementalChurnEqualsBatch, RandomInsertRemoveChurn) {
  Rng rng(GetParam());
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 300;
  gcfg.dim = 2;
  gcfg.clusters = 3;
  gcfg.sigma = 0.5;
  gcfg.noise_fraction = 0.15;
  gcfg.box_side = 25.0;
  const PointSet data = synth::gaussian_clusters(gcfg, rng);
  const DbscanParams params{0.8, 4};

  IncrementalDbscan inc(config(params.eps, params.minpts, 64), 2);
  std::vector<PointId> alive;
  PointId next = 0;
  int ops = 0;
  while (next < static_cast<PointId>(data.size()) || !alive.empty()) {
    const bool can_insert = next < static_cast<PointId>(data.size());
    const bool do_remove = !alive.empty() && (!can_insert || rng.chance(0.3));
    if (do_remove) {
      const size_t pick = rng.uniform_index(alive.size());
      ASSERT_TRUE(inc.try_remove(alive[pick]));
      alive[pick] = alive.back();
      alive.pop_back();
    } else {
      alive.push_back(inc.insert(data[next]));
      ++next;
    }
    if (++ops % 75 == 0) {
      check_equivalent_survivors(inc, params,
                                 "churn seed=" + std::to_string(GetParam()) +
                                     " op=" + std::to_string(ops));
    }
    if (ops > 450) break;
  }
  check_equivalent_survivors(inc, params,
                             "final churn seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalChurnEqualsBatch,
                         ::testing::Values(101u, 202u, 303u));

TEST(Incremental, RebuildsHappenAndPreserveResults) {
  Rng rng(11);
  IncrementalDbscan inc(config(0.8, 4, /*rebuild=*/32), 2);
  synth::UniformConfig ucfg;
  ucfg.n = 300;
  ucfg.dim = 2;
  ucfg.box_side = 12.0;
  const PointSet data = synth::uniform_points(ucfg, rng);
  for (PointId i = 0; i < static_cast<PointId>(data.size()); ++i) {
    inc.insert(data[i]);
  }
  EXPECT_GT(inc.rebuilds(), 3u);
  check_equivalent(inc, {0.8, 4}, "with rebuilds");
}

class IncrementalBatchEqualsBatch : public ::testing::TestWithParam<u64> {};

TEST_P(IncrementalBatchEqualsBatch, MicroBatchChurnEqualsBatchDbscan) {
  // Random micro-batches of mixed inserts/removes (the streaming pipeline's
  // unit of work): batched removals share one affected-region
  // re-clustering, and the result must stay exactly batch DBSCAN over the
  // survivors. Ids assigned through apply_batch must match sequential ids.
  Rng rng(GetParam());
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 300;
  gcfg.dim = 2;
  gcfg.clusters = 3;
  gcfg.sigma = 0.5;
  gcfg.noise_fraction = 0.15;
  gcfg.box_side = 25.0;
  const PointSet data = synth::gaussian_clusters(gcfg, rng);
  const DbscanParams params{0.8, 4};

  IncrementalDbscan inc(config(params.eps, params.minpts, 64), 2);
  std::vector<PointId> alive;
  PointId next = 0;
  int batches = 0;
  while (next < static_cast<PointId>(data.size()) || !alive.empty()) {
    std::vector<IncrementalDbscan::BatchOp> ops;
    std::vector<bool> expect_applied;
    const size_t batch = 1 + rng.uniform_index(24);
    std::vector<PointId> removed_now;
    for (size_t k = 0; k < batch; ++k) {
      const bool can_insert = next < static_cast<PointId>(data.size());
      const bool do_remove =
          !alive.empty() && (!can_insert || rng.chance(0.35));
      if (do_remove) {
        const size_t pick = rng.uniform_index(alive.size());
        ops.push_back(IncrementalDbscan::BatchOp::make_remove(alive[pick]));
        expect_applied.push_back(true);
        removed_now.push_back(alive[pick]);
        alive[pick] = alive.back();
        alive.pop_back();
      } else if (can_insert) {
        ops.push_back(IncrementalDbscan::BatchOp::make_insert(data[next]));
        expect_applied.push_back(true);
        alive.push_back(next);  // ids are sequential by construction
        ++next;
      }
    }
    if (!removed_now.empty() && rng.chance(0.5)) {
      // Adversarial tail: double-remove and a far-future id, both must
      // fail without poisoning the batch.
      ops.push_back(
          IncrementalDbscan::BatchOp::make_remove(removed_now.front()));
      expect_applied.push_back(false);
      ops.push_back(IncrementalDbscan::BatchOp::make_remove(
          static_cast<PointId>(data.size()) + 1000));
      expect_applied.push_back(false);
    }
    const auto results = inc.apply_batch(ops);
    ASSERT_EQ(results.size(), ops.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].applied, expect_applied[i]) << "op " << i;
      if (ops[i].kind == IncrementalDbscan::BatchOp::Kind::kRemove) {
        EXPECT_EQ(results[i].id, ops[i].id);
      }
    }
    if (++batches % 5 == 0) {
      check_equivalent_survivors(
          inc, params,
          "batch churn seed=" + std::to_string(GetParam()) + " batch=" +
              std::to_string(batches));
    }
    if (batches > 60) break;
  }
  check_equivalent_survivors(
      inc, params, "final batch churn seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalBatchEqualsBatch,
                         ::testing::Values(7u, 17u, 27u));

TEST(IncrementalReclaim, ChurnMemoryIsBoundedByLiveSet) {
  // Delete-heavy firehose over a sliding window: resident bytes must track
  // the ~200-point live set, not the 4000-insert history. Before reclaim
  // (PR 9) this grew without bound.
  Rng rng(42);
  synth::UniformConfig ucfg;
  ucfg.n = 4000;
  ucfg.dim = 2;
  ucfg.box_side = 60.0;
  const PointSet data = synth::uniform_points(ucfg, rng);
  const DbscanParams params{0.8, 4};

  IncrementalDbscan inc(config(params.eps, params.minpts, 64), 2);
  std::vector<PointId> window;
  size_t bytes_quarter = 0;
  for (PointId i = 0; i < static_cast<PointId>(data.size()); ++i) {
    window.push_back(inc.insert(data[i]));
    if (window.size() > 200) {
      ASSERT_TRUE(inc.try_remove(window.front()));
      window.erase(window.begin());
    }
    if (i == 1000) bytes_quarter = inc.resident_bytes();
  }
  EXPECT_GT(inc.reclaimed(), 0u);
  EXPECT_EQ(inc.active_size(), window.size());
  const size_t bytes_final = inc.resident_bytes();
  // 4x the ops, same live set: allow slack for the id map and overflow
  // buffer phase, but growth must be nowhere near the 4x of no reclaim.
  EXPECT_LT(bytes_final, bytes_quarter * 3 / 2)
      << "resident " << bytes_final << " vs " << bytes_quarter << " at 1/4";
  check_equivalent_survivors(inc, params, "sliding window");
}

TEST(IncrementalReclaim, RemoveHeavyTriggersRebuild) {
  // Removal-only traffic must also reclaim: the threshold counts
  // accumulated tombstones, not just overflow inserts.
  Rng rng(5);
  synth::UniformConfig ucfg;
  ucfg.n = 120;
  ucfg.dim = 2;
  ucfg.box_side = 20.0;
  const PointSet data = synth::uniform_points(ucfg, rng);
  IncrementalDbscan inc(config(0.8, 4, /*rebuild=*/32), 2);
  for (PointId i = 0; i < static_cast<PointId>(data.size()); ++i) {
    inc.insert(data[i]);
  }
  const u64 rebuilds_before = inc.rebuilds();
  for (PointId i = 0; i < 100; ++i) ASSERT_TRUE(inc.try_remove(i));
  EXPECT_GT(inc.rebuilds(), rebuilds_before);
  EXPECT_GT(inc.reclaimed(), 0u);
  EXPECT_EQ(inc.active_size(), 20u);
  check_equivalent_survivors(inc, {0.8, 4}, "remove heavy");
}

TEST(Incremental, RebuildThresholdZeroNeverRebuilds) {
  // rebuild_threshold = 0: no kd-tree is ever built, every query brute-
  // forces the overflow buffer — correct but degrading toward O(n) per op.
  Rng rng(13);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 240;
  gcfg.dim = 2;
  gcfg.clusters = 3;
  gcfg.sigma = 0.5;
  gcfg.box_side = 25.0;
  const PointSet data = synth::gaussian_clusters(gcfg, rng);
  const DbscanParams params{0.8, 4};

  IncrementalDbscan inc(config(params.eps, params.minpts, /*rebuild=*/0), 2);
  WorkCounters early;
  WorkCounters late;
  for (PointId i = 0; i < static_cast<PointId>(data.size()); ++i) {
    WorkCounters* sink = nullptr;
    if (i < 40) {
      sink = &early;
    } else if (i >= static_cast<PointId>(data.size()) - 40) {
      sink = &late;
    }
    if (sink != nullptr) {
      ScopedCounters scope(sink);
      inc.insert(data[i]);
    } else {
      inc.insert(data[i]);
    }
    if (i % 3 == 0 && i > 0) ASSERT_TRUE(inc.try_remove(i - 1));
  }
  EXPECT_EQ(inc.rebuilds(), 0u);
  EXPECT_EQ(inc.reclaimed(), 0u);  // reclaim piggybacks on rebuilds
  // O(n) degradation is visible in the work counters: the last 40 inserts
  // brute-force a ~4x larger buffer than the first 40 did.
  EXPECT_GT(late.distance_evals, 2 * early.distance_evals);
  check_equivalent_survivors(inc, params, "never rebuild");

  // The ladder's deferred-rebuild rung restores the threshold at recovery;
  // index maintenance (and reclaim) must resume from the degraded state.
  inc.set_rebuild_threshold(32);
  for (PointId i = 0; i < 64; ++i) {
    const double p[2] = {100.0 + static_cast<double>(i), 0.0};
    inc.insert(p);
  }
  EXPECT_GT(inc.rebuilds(), 0u);
  EXPECT_GT(inc.reclaimed(), 0u);
  check_equivalent_survivors(inc, params, "threshold restored");
}

}  // namespace
}  // namespace sdb::dbscan
