// Kill-recover equivalence harness — the durability layer's acceptance test.
//
// Three surfaces, all driven by real process death or simulated crashes at
// scheduled fault-plan points:
//
//   1. Job checkpoint/restart (spark + mr engines): fork() a worker child
//      that runs the pipeline with --checkpoint-dir semantics and a fault
//      plan that SIGKILLs it mid-checkpoint (torn record, staged-but-
//      unrenamed record, committed record). The parent reaps the corpse,
//      re-runs with resume=true, and asserts the resumed labeling is
//      BYTE-IDENTICAL to an uninterrupted run and cluster-isomorphic to
//      sequential DBSCAN. Grid: engine x crash site x crash offset x
//      dataset seed (> 100 cells).
//   2. Registry WAL (serve): fork() a child that mutates a durable
//      ModelRegistry and dies mid-WAL-append. The parent reopens the WAL
//      directory and asserts the registry republishes exactly the last
//      committed epoch, with exactly the committed prefix of mutations —
//      computed by simulating the append sequence.
//   3. Durable MiniDfs: in-process crashes via a throwing crash handler at
//      the atomic-publish points; a reopened namenode must serve the old
//      committed version, never a torn mix.
//
// Crash scheduling uses the deterministic FaultPlan grammar
// (`site:every=1,after=K,budget=1`): the K-th site hit passes, hit K+1
// crashes. The default crash handler raises SIGKILL — the child dies
// exactly like `kill -9`, no destructors, no atexit.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <string>
#include <tuple>

#include "core/dbscan_seq.hpp"
#include "core/mr_dbscan.hpp"
#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "dfs/mini_dfs.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injection.hpp"
#include "serve/model_registry.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

namespace fs = std::filesystem;

#ifdef SDB_FAULT_INJECTION

enum class Engine { kSpark, kMapReduce };

const char* engine_name(Engine e) {
  return e == Engine::kSpark ? "spark" : "mr";
}

PointSet make_points(u64 seed) {
  Rng rng(seed);
  synth::GaussianMixtureConfig cfg;
  cfg.n = 240;
  cfg.dim = 2;
  cfg.clusters = 3;
  cfg.sigma = 0.4;
  cfg.noise_fraction = 0.08;
  cfg.box_side = 24.0;
  return synth::gaussian_clusters(cfg, rng);
}

constexpr DbscanParams kParams{0.8, 5};
constexpr u32 kPartitions = 4;

struct EngineRun {
  Clustering clustering;
  u64 resumed = 0;
  u64 executed = 0;
};

EngineRun run_engine(Engine engine, const PointSet& ps,
                     const std::string& ckpt_dir, bool resume,
                     const std::string& mr_work_dir,
                     unsigned merge_threads = 1) {
  if (engine == Engine::kSpark) {
    minispark::ClusterConfig ccfg;
    ccfg.executors = 2;
    ccfg.straggler.fraction = 0.0;
    minispark::SparkContext ctx(ccfg);
    SparkDbscanConfig cfg;
    cfg.params = kParams;
    cfg.partitions = kPartitions;
    cfg.checkpoint_dir = ckpt_dir;
    cfg.resume = resume;
    cfg.merge_threads = merge_threads;
    SparkDbscan dbscan(ctx, cfg);
    auto report = dbscan.run(ps);
    return {std::move(report.clustering), report.resumed_partitions,
            report.executed_partitions};
  }
  MRDbscanConfig cfg;
  cfg.params = kParams;
  cfg.partitions = kPartitions;
  cfg.mr.work_dir = mr_work_dir;
  cfg.mr.cores = 2;
  cfg.checkpoint_dir = ckpt_dir;
  cfg.resume = resume;
  cfg.merge_threads = merge_threads;
  auto report = mr_dbscan(ps, cfg);
  return {std::move(report.clustering), report.resumed_partitions,
          report.executed_partitions};
}

/// Fork a worker that runs the pipeline under `spec`; returns the child's
/// wait status. The child never returns: it either dies at the crash point
/// (SIGKILL via the default crash handler) or finishes and _exit(0)s.
int run_killed_child(Engine engine, const PointSet& ps,
                     const std::string& ckpt_dir, const std::string& spec,
                     const std::string& mr_work_dir) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: arm the plan, run, die. No gtest machinery in here.
    auto* plan = new fault::ScopedFaultPlan(spec);  // leaked on purpose
    (void)plan;
    (void)run_engine(engine, ps, ckpt_dir, /*resume=*/false, mr_work_dir);
    _exit(0);
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

// --- 1. job checkpoint/restart kill grid -----------------------------------

// (site, records committed before the crash given `after=K`).
using CrashParam = std::tuple<Engine, const char*, u32, u64>;

class KillRecover : public ::testing::TestWithParam<CrashParam> {};

TEST_P(KillRecover, ResumedRunIsByteIdenticalToUninterrupted) {
  const auto [engine, site, after, data_seed] = GetParam();
  const std::string spec = "seed=1;" + std::string(site) +
                           ":every=1,after=" + std::to_string(after) +
                           ",budget=1";
  SCOPED_TRACE("crash spec: " + spec);

  const PointSet ps = make_points(data_seed);

  const std::string tag = std::string(engine_name(engine)) + "_" +
                          std::to_string(after) + "_" +
                          std::to_string(data_seed) + "_" +
                          std::to_string(::getpid());
  const fs::path scratch = fs::temp_directory_path() / ("sdb_crash_" + tag);
  fs::remove_all(scratch);
  const std::string ckpt_dir = (scratch / "ckpt").string();

  // Fork FIRST: the worker child must not inherit thread pools or other
  // process state from a previous pipeline run.
  const int status = run_killed_child(engine, ps, ckpt_dir, spec,
                                      (scratch / "mr_child").string());
  // With 4 partitions the save site is hit 4 times; after <= 2 always
  // crashes. The child must have died by SIGKILL, not exited.
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << WEXITSTATUS(status);
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Oracle 1: sequential DBSCAN (isomorphism).
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, kParams);
  // Oracle 2: the same engine, uninterrupted, fresh checkpoint dir
  // (byte-identity).
  const EngineRun clean =
      run_engine(engine, ps, (scratch / "ckpt_clean").string(),
                 /*resume=*/false, (scratch / "mr_clean").string());

  // The resumed run: recover the committed records, execute the rest.
  const EngineRun resumed = run_engine(engine, ps, ckpt_dir, /*resume=*/true,
                                       (scratch / "mr_resume").string());

  // The crash left behind exactly the records committed before the fatal
  // hit: `after` for the torn/staged sites, `after + 1` once the rename
  // happened. (Sites are hit once per partition save.)
  const bool committed_at_crash =
      std::string(site) == "ckpt.crash.after_rename";
  const u64 expect_resumed = after + (committed_at_crash ? 1 : 0);
  EXPECT_EQ(resumed.resumed, expect_resumed);
  EXPECT_EQ(resumed.executed, kPartitions - expect_resumed);

  // Byte-identical to the uninterrupted run...
  EXPECT_EQ(resumed.clustering.labels, clean.clustering.labels);
  EXPECT_EQ(resumed.clustering.num_clusters, clean.clustering.num_clusters);
  // ...and cluster-isomorphic to the sequential oracle.
  const auto eq = check_equivalence(ps, tree, kParams, seq.core_points,
                                    seq.clustering, resumed.clustering);
  EXPECT_TRUE(eq.equivalent)
      << engine_name(engine) << " :: core=" << eq.core_mismatches
      << " noise=" << eq.noise_mismatches
      << " border=" << eq.border_violations << " " << eq.detail;

  fs::remove_all(scratch);
}

std::string crash_case_name(const ::testing::TestParamInfo<CrashParam>& info) {
  std::string site = std::get<1>(info.param);
  for (char& c : site) {
    if (c == '.') c = '_';
  }
  return std::string(engine_name(std::get<0>(info.param))) + "_" + site +
         "_k" + std::to_string(std::get<2>(info.param)) + "_d" +
         std::to_string(std::get<3>(info.param));
}

// 2 engines x 3 crash sites x 3 offsets x 6 datasets = 108 kill cells.
INSTANTIATE_TEST_SUITE_P(
    Grid, KillRecover,
    ::testing::Combine(
        ::testing::Values(Engine::kSpark, Engine::kMapReduce),
        ::testing::Values("ckpt.crash.mid_write", "ckpt.crash.before_rename",
                          "ckpt.crash.after_rename"),
        ::testing::Values(0u, 1u, 2u),
        ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u)),
    crash_case_name);

// Parallel-merge column of the kill grid: a run killed mid-checkpoint and
// resumed with merge_threads=3 must stay byte-identical to an uninterrupted
// SEQUENTIAL-merge run — the merge thread count is excluded from the job
// fingerprint precisely because it cannot change the labeling, and the
// recovered partial clusters must replay through the parallel pipeline into
// the exact same bytes.
TEST(KillRecover, ParallelMergeResumeIsByteIdenticalToSequentialClean) {
  for (const auto engine : {Engine::kSpark, Engine::kMapReduce}) {
    const PointSet ps = make_points(14);
    const std::string tag = std::string("pm_") + engine_name(engine) + "_" +
                            std::to_string(::getpid());
    const fs::path scratch = fs::temp_directory_path() / ("sdb_crash_" + tag);
    fs::remove_all(scratch);
    const std::string ckpt_dir = (scratch / "ckpt").string();

    const int status = run_killed_child(
        engine, ps, ckpt_dir,
        "seed=1;ckpt.crash.before_rename:every=1,after=2,budget=1",
        (scratch / "mr_child").string());
    ASSERT_TRUE(WIFSIGNALED(status)) << engine_name(engine);

    const EngineRun clean =
        run_engine(engine, ps, (scratch / "ckpt_clean").string(),
                   /*resume=*/false, (scratch / "mr_clean").string(),
                   /*merge_threads=*/1);
    const EngineRun resumed =
        run_engine(engine, ps, ckpt_dir, /*resume=*/true,
                   (scratch / "mr_resume").string(), /*merge_threads=*/3);
    EXPECT_EQ(resumed.resumed, 2u) << engine_name(engine);
    EXPECT_EQ(resumed.clustering.labels, clean.clustering.labels)
        << engine_name(engine);
    EXPECT_EQ(resumed.clustering.num_clusters, clean.clustering.num_clusters);
    fs::remove_all(scratch);
  }
}

// A completed job commits (deletes) its checkpoint: rerunning with resume
// must start from zero, not trivially "resume" a finished job.
TEST(KillRecover, CompletedJobLeavesNoCheckpointBehind) {
  const PointSet ps = make_points(21);
  const fs::path scratch =
      fs::temp_directory_path() /
      ("sdb_crash_commit_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  const EngineRun first = run_engine(Engine::kSpark, ps,
                                     (scratch / "ckpt").string(),
                                     /*resume=*/false, "");
  EXPECT_EQ(first.executed, kPartitions);
  const EngineRun second = run_engine(Engine::kSpark, ps,
                                      (scratch / "ckpt").string(),
                                      /*resume=*/true, "");
  EXPECT_EQ(second.resumed, 0u);  // nothing left to resume
  EXPECT_EQ(second.executed, kPartitions);
  EXPECT_EQ(first.clustering.labels, second.clustering.labels);
  fs::remove_all(scratch);
}

// resume=false wipes a prior (crashed) run's records instead of reusing.
TEST(KillRecover, ResumeFalseWipesPriorRecords) {
  const PointSet ps = make_points(22);
  const fs::path scratch =
      fs::temp_directory_path() /
      ("sdb_crash_wipe_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  const std::string ckpt_dir = (scratch / "ckpt").string();
  const int status =
      run_killed_child(Engine::kSpark, ps, ckpt_dir,
                       "seed=1;ckpt.crash.after_rename:every=1,after=1,budget=1",
                       "");
  ASSERT_TRUE(WIFSIGNALED(status));
  const EngineRun fresh =
      run_engine(Engine::kSpark, ps, ckpt_dir, /*resume=*/false, "");
  EXPECT_EQ(fresh.resumed, 0u);
  EXPECT_EQ(fresh.executed, kPartitions);
  fs::remove_all(scratch);
}

// A checkpoint written by a DIFFERENT job (other eps) must not be resumed:
// the fingerprint embedded in every record keeps stale state out.
TEST(KillRecover, DifferentJobFingerprintIgnoresStaleRecords) {
  const PointSet ps = make_points(23);
  const fs::path scratch =
      fs::temp_directory_path() /
      ("sdb_crash_fp_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  const std::string ckpt_dir = (scratch / "ckpt").string();
  const int status =
      run_killed_child(Engine::kSpark, ps, ckpt_dir,
                       "seed=1;ckpt.crash.after_rename:every=1,after=2,budget=1",
                       "");
  ASSERT_TRUE(WIFSIGNALED(status));

  minispark::ClusterConfig ccfg;
  ccfg.executors = 2;
  ccfg.straggler.fraction = 0.0;
  minispark::SparkContext ctx(ccfg);
  SparkDbscanConfig cfg;
  cfg.params = {0.5, 4};  // different job identity
  cfg.partitions = kPartitions;
  cfg.checkpoint_dir = ckpt_dir;
  cfg.resume = true;
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);
  EXPECT_EQ(report.resumed_partitions, 0u);
  EXPECT_EQ(report.executed_partitions, kPartitions);
  fs::remove_all(scratch);
}

// --- 2. registry WAL kill grid ---------------------------------------------

constexpr int kServeDim = 2;
constexpr int kServeInserts = 12;

/// The append sequence a child produces: construction publishes epoch 1,
/// every insert appends one record, every `publish_every`-th insert appends
/// a publish marker. Returns (expected epoch, expected active points) after
/// a crash that loses append index `crash_at` and everything after it.
std::pair<u64, size_t> simulate_committed(u64 publish_every, size_t crash_at) {
  struct Ev {
    bool publish;
    u64 epoch;
  };
  std::vector<Ev> appends;
  u64 epoch = 1;
  appends.push_back({true, epoch});  // construction's empty-model publish
  for (int i = 0; i < kServeInserts; ++i) {
    appends.push_back({false, 0});
    if ((static_cast<u64>(i) + 1) % publish_every == 0) {
      appends.push_back({true, ++epoch});
    }
  }
  const size_t upto = std::min(crash_at, appends.size());
  u64 committed_epoch = 0;
  size_t committed_points = 0;
  size_t inserts_seen = 0;
  for (size_t i = 0; i < upto; ++i) {
    if (appends[i].publish) {
      committed_epoch = appends[i].epoch;
      committed_points = inserts_seen;
    } else {
      ++inserts_seen;
    }
  }
  // Epoch 0 is unreachable: a recovered registry always republishes, and a
  // registry with no committed history publishes the empty epoch 1.
  return {committed_epoch == 0 ? 1 : committed_epoch, committed_points};
}

using ServeParam = std::tuple<u64, u32>;  // publish_every, crash append index

class ServeKillRecover : public ::testing::TestWithParam<ServeParam> {};

TEST_P(ServeKillRecover, RestartedRegistryRepublishesLastCommittedEpoch) {
  const auto [publish_every, crash_at] = GetParam();
  const std::string spec = "seed=1;wal.crash.mid_append:every=1,after=" +
                           std::to_string(crash_at) + ",budget=1";
  SCOPED_TRACE("crash spec: " + spec);
  const fs::path scratch =
      fs::temp_directory_path() /
      ("sdb_crash_serve_p" + std::to_string(publish_every) + "_k" +
       std::to_string(crash_at) + "_" + std::to_string(::getpid()));
  fs::remove_all(scratch);

  serve::ModelRegistry::Config cfg;
  cfg.params = {1.5, 3};
  cfg.publish_every = publish_every;
  cfg.wal_dir = (scratch / "wal").string();

  const pid_t pid = fork();
  if (pid == 0) {
    auto* plan = new fault::ScopedFaultPlan(spec);  // leaked on purpose
    (void)plan;
    serve::ModelRegistry registry(cfg, kServeDim);
    for (int i = 0; i < kServeInserts; ++i) {
      const double coords[kServeDim] = {static_cast<double>(i),
                                        static_cast<double>(i)};
      registry.insert(coords);
    }
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  const auto [expect_epoch, expect_points] =
      simulate_committed(publish_every, crash_at);
  if (WIFEXITED(status)) {
    // crash_at beyond the child's total appends: it finished untouched.
    EXPECT_EQ(WEXITSTATUS(status), 0);
  } else {
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
  }

  // The survivor: same WAL dir, no fault plan.
  serve::ModelRegistry recovered(cfg, kServeDim);
  EXPECT_EQ(recovered.epoch(), expect_epoch);
  EXPECT_EQ(recovered.active_points(), expect_points);
  EXPECT_EQ(recovered.model()->summary().epoch, expect_epoch);
  fs::remove_all(scratch);
}

// publish_every in {1, 3} x crash at append 0..14 = 30 serve kill cells
// (indices past the child's append count double as clean-shutdown cells).
INSTANTIATE_TEST_SUITE_P(
    Grid, ServeKillRecover,
    ::testing::Combine(::testing::Values(1u, 3u),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                         9u, 10u, 11u, 12u, 13u, 14u)),
    [](const ::testing::TestParamInfo<ServeParam>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// Compaction survives a restart: log folded into a snapshot, state intact.
TEST(ServeKillRecover, CompactionPreservesCommittedStateAcrossRestart) {
  const fs::path scratch =
      fs::temp_directory_path() /
      ("sdb_crash_compact_" + std::to_string(::getpid()));
  fs::remove_all(scratch);
  serve::ModelRegistry::Config cfg;
  cfg.params = {1.5, 3};
  cfg.publish_every = 4;
  cfg.wal_dir = (scratch / "wal").string();
  u64 epoch_before = 0;
  size_t points_before = 0;
  {
    serve::ModelRegistry registry(cfg, kServeDim);
    for (int i = 0; i < 10; ++i) {
      const double coords[kServeDim] = {static_cast<double>(i), 0.0};
      registry.insert(coords);
    }
    registry.try_remove(3);
    epoch_before = registry.compact();
    points_before = registry.active_points();
  }
  serve::ModelRegistry recovered(cfg, kServeDim);
  EXPECT_EQ(recovered.epoch(), epoch_before);
  EXPECT_EQ(recovered.active_points(), points_before);
  EXPECT_EQ(recovered.wal()->generation(), 1u);
  fs::remove_all(scratch);
}

// --- 3. durable MiniDfs crash points ---------------------------------------

/// In-process "crash": the handler throws instead of SIGKILLing, so one
/// test can crash a write and then immediately play the recovery role.
struct SimulatedCrash {};
[[noreturn]] void throwing_handler(std::string_view) { throw SimulatedCrash{}; }

class ScopedThrowingCrash {
 public:
  ScopedThrowingCrash() { prev_ = fault::set_crash_handler(&throwing_handler); }
  ~ScopedThrowingCrash() { fault::set_crash_handler(prev_); }

 private:
  fault::CrashHandler prev_;
};

class DurableDfsCrash : public ::testing::Test {
 protected:
  DurableDfsCrash()
      : root_((fs::temp_directory_path() /
               ("sdb_crash_dfs_p" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(root_);
  }
  ~DurableDfsCrash() override { fs::remove_all(root_); }
  std::string root_;
};

TEST_F(DurableDfsCrash, CrashBeforePublishLeavesOldVersionReadable) {
  const std::string v1(40, 'a');
  {
    dfs::MiniDfs dfs(root_, 16, 4, 2, dfs::Durability::kDurable);
    dfs.write("/f", v1);
    ScopedThrowingCrash crash_mode;
    fault::ScopedFaultPlan plan("seed=1;dfs.crash.before_publish:every=1");
    EXPECT_THROW(dfs.write("/f", std::string(40, 'b')), SimulatedCrash);
  }
  dfs::MiniDfs reopened(root_, 16, 4, 2, dfs::Durability::kDurable);
  EXPECT_EQ(reopened.recovered_files(), 1u);
  EXPECT_EQ(reopened.read("/f"), v1);       // old version, whole
  EXPECT_GT(reopened.orphans_collected(), 0u);  // staged v2 blocks GC'd
}

TEST_F(DurableDfsCrash, CrashMidBlockNeverReadsBackTorn) {
  const std::string v1(40, 'a');
  {
    dfs::MiniDfs dfs(root_, 16, 4, 2, dfs::Durability::kDurable);
    dfs.write("/f", v1);
    ScopedThrowingCrash crash_mode;
    fault::ScopedFaultPlan plan("seed=1;dfs.crash.mid_block:every=1,after=1");
    EXPECT_THROW(dfs.write("/f", std::string(40, 'b')), SimulatedCrash);
  }
  dfs::MiniDfs reopened(root_, 16, 4, 2, dfs::Durability::kDurable);
  EXPECT_EQ(reopened.read("/f"), v1);
  EXPECT_TRUE(reopened.verify("/f").empty());
}

TEST_F(DurableDfsCrash, CrashAtManifestRenameKeepsCommittedCatalog) {
  const std::string v1 = "committed-content";
  {
    dfs::MiniDfs dfs(root_, 16, 4, 2, dfs::Durability::kDurable);
    dfs.write("/f", v1);
    ScopedThrowingCrash crash_mode;
    // /f's publish happened before the plan was armed, so the first hit is
    // /g's manifest rename: new catalog staged to tmp, never renamed.
    fault::ScopedFaultPlan plan(
        "seed=1;dfs.crash.manifest_rename:every=1,budget=1");
    EXPECT_THROW(dfs.write("/g", "never-published"), SimulatedCrash);
  }
  dfs::MiniDfs reopened(root_, 16, 4, 2, dfs::Durability::kDurable);
  EXPECT_EQ(reopened.read("/f"), v1);
  EXPECT_FALSE(reopened.exists("/g"));  // its manifest never committed
}

TEST_F(DurableDfsCrash, MissingBlockDropsFileAtRecoveryInsteadOfShortRead) {
  // Satellite invariant: a file whose manifest entry lost a physical block
  // must vanish at recovery — never read back short-but-"valid".
  u64 victim_block = 0;
  {
    dfs::MiniDfs dfs(root_, 8, 4, 1, dfs::Durability::kDurable);
    dfs.write("/f", std::string(24, 'x'));  // 3 blocks
    victim_block = dfs.stat("/f").blocks[1].id;
  }
  fs::remove(fs::path(root_) / "blocks" /
             ("blk_" + std::to_string(victim_block)));
  dfs::MiniDfs reopened(root_, 8, 4, 1, dfs::Durability::kDurable);
  EXPECT_EQ(reopened.dropped_files(), 1u);
  EXPECT_FALSE(reopened.exists("/f"));
}

TEST_F(DurableDfsCrash, TruncatedBlockDropsFileAtRecovery) {
  u64 victim_block = 0;
  {
    dfs::MiniDfs dfs(root_, 8, 4, 1, dfs::Durability::kDurable);
    dfs.write("/f", std::string(24, 'x'));
    victim_block = dfs.stat("/f").blocks[0].id;
  }
  const fs::path block =
      fs::path(root_) / "blocks" / ("blk_" + std::to_string(victim_block));
  fs::resize_file(block, 3);  // torn: shorter than the manifest says
  dfs::MiniDfs reopened(root_, 8, 4, 1, dfs::Durability::kDurable);
  EXPECT_EQ(reopened.dropped_files(), 1u);
  EXPECT_FALSE(reopened.exists("/f"));
}

TEST_F(DurableDfsCrash, DurableCatalogSurvivesCleanReopen) {
  const std::string content = "zero\none\ntwo\nthree\n";
  {
    dfs::MiniDfs dfs(root_, 6, 4, 2, dfs::Durability::kDurable);
    dfs.write("/data/points.txt", content);
  }
  dfs::MiniDfs reopened(root_, 6, 4, 2, dfs::Durability::kDurable);
  EXPECT_EQ(reopened.recovered_files(), 1u);
  EXPECT_EQ(reopened.read("/data/points.txt"), content);
  std::string reassembled;
  for (size_t b = 0; b < reopened.stat("/data/points.txt").blocks.size(); ++b) {
    reassembled += reopened.read_text_split("/data/points.txt", b);
  }
  EXPECT_EQ(reassembled, content);  // text splits survive recovery too
}

#endif  // SDB_FAULT_INJECTION

}  // namespace
}  // namespace sdb::dbscan
