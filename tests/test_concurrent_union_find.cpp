// ConcurrentUnionFind: sequential semantics plus a multi-thread stress
// battery. The file carries the `sanitize` ctest label, so the stress tests
// run under ThreadSanitizer in the sanitizer configuration — the CAS
// union-by-min-root and path-halving protocols are exactly the code TSan
// needs to watch.
#include "spatial/concurrent_union_find.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "spatial/union_find.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

TEST(ConcurrentUnionFind, SingletonsInitially) {
  ConcurrentUnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  EXPECT_EQ(uf.set_count(), 5u);
  for (u64 i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
  EXPECT_FALSE(uf.same(0, 4));
}

TEST(ConcurrentUnionFind, UniteReturnsTrueOnceAndRootIsMinimum) {
  ConcurrentUnionFind uf(6);
  EXPECT_TRUE(uf.unite(4, 2));
  EXPECT_FALSE(uf.unite(2, 4));
  EXPECT_EQ(uf.find(4), 2u);
  EXPECT_TRUE(uf.unite(4, 5));
  EXPECT_TRUE(uf.unite(1, 5));
  // Union-by-min-root: whichever order the unions arrive, the component's
  // root is its minimum element.
  EXPECT_EQ(uf.find(5), 1u);
  EXPECT_EQ(uf.find(2), 1u);
  EXPECT_EQ(uf.set_count(), 3u);  // {1,2,4,5} {0} {3}
  EXPECT_EQ(uf.cas_retries(), 0u);  // single-threaded: no contention
}

TEST(ConcurrentUnionFind, DeepChainFindsTerminate) {
  constexpr u64 kN = 2048;
  ConcurrentUnionFind uf(kN);
  for (u64 i = kN - 1; i > 0; --i) uf.unite(i, i - 1);
  for (u64 i = 0; i < kN; ++i) EXPECT_EQ(uf.find(i), 0u);
  EXPECT_EQ(uf.set_count(), 1u);
}

/// Shared stress driver: `threads` workers each apply a slice of `edges`
/// concurrently, then the final forest is validated quiescently against a
/// sequential UnionFind oracle fed the same edge multiset.
void stress(u64 n, const std::vector<std::pair<u64, u64>>& edges,
            unsigned threads) {
  ConcurrentUnionFind cuf(n);
  std::vector<std::thread> workers;
  const size_t chunk = (edges.size() + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const size_t begin = t * chunk;
      const size_t end = std::min(edges.size(), begin + chunk);
      for (size_t e = begin; e < end; ++e) {
        cuf.unite(edges[e].first, edges[e].second);
        // Interleave finds so halving races with root CASes.
        cuf.find(edges[e].second);
      }
    });
  }
  for (auto& w : workers) w.join();

  UnionFind oracle(n);
  for (const auto& [a, b] : edges) oracle.unite(a, b);

  // Structural invariants: parents never increase (acyclicity), every
  // root is the minimum of its component, components match the oracle.
  for (u64 i = 0; i < n; ++i) {
    EXPECT_LE(cuf.parent_of(i), i);
    EXPECT_LE(cuf.find(i), i);
  }
  EXPECT_EQ(cuf.set_count(), oracle.set_count());
  for (u64 i = 0; i + 1 < n; ++i) {
    EXPECT_EQ(cuf.same(i, i + 1), oracle.same(i, i + 1)) << i;
  }
  // Determinism of the final roots (the property merge.cpp's relabel pass
  // rests on): root of every component == its minimum element, regardless
  // of schedule. Cross-check via the oracle's component partition.
  std::vector<u64> min_of_root(n, n);
  for (u64 i = 0; i < n; ++i) {
    const u64 r = static_cast<u64>(oracle.find(i));
    if (i < min_of_root[r]) min_of_root[r] = i;
  }
  for (u64 i = 0; i < n; ++i) {
    EXPECT_EQ(cuf.find(i), min_of_root[static_cast<u64>(oracle.find(i))]);
  }
}

TEST(ConcurrentUnionFindStress, ChainTopology) {
  // Worst case for path length and for CAS contention on the low roots:
  // every thread's slice keeps attaching to the same growing component.
  std::vector<std::pair<u64, u64>> edges;
  for (u64 i = 1; i < 800; ++i) edges.emplace_back(i, i - 1);
  stress(800, edges, 4);
}

TEST(ConcurrentUnionFindStress, StarTopology) {
  // All unions share element 0: maximal root contention.
  std::vector<std::pair<u64, u64>> edges;
  for (u64 i = 1; i < 800; ++i) edges.emplace_back(0, i);
  stress(800, edges, 4);
}

TEST(ConcurrentUnionFindStress, RandomTopologies) {
  for (u64 seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const u64 n = 200 + rng.uniform_index(600);
    std::vector<std::pair<u64, u64>> edges;
    const u64 e = n / 2 + rng.uniform_index(2 * n);
    for (u64 i = 0; i < e; ++i) {
      edges.emplace_back(rng.uniform_index(n), rng.uniform_index(n));
    }
    stress(n, edges, 2 + static_cast<unsigned>(seed % 3));
  }
}

}  // namespace
}  // namespace sdb
