// Randomized laws for the DFS text-split machinery: for ANY content and ANY
// block size, concatenating all text splits must reproduce the records
// exactly once, in order. This is the invariant the whole textFile -> RDD
// partitioning rests on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "dfs/mini_dfs.hpp"
#include "util/rng.hpp"

namespace sdb::dfs {
namespace {

namespace fs = std::filesystem;

class DfsFuzz : public ::testing::TestWithParam<u64> {
 protected:
  // The root must be unique per seed AND per process: `ctest -j` runs each
  // parameterized seed as its own process, and a shared root means one
  // test's constructor remove_all() deletes another's live block files
  // mid-run (the seed suite's historical Fail/abort).
  DfsFuzz()
      : root_((fs::temp_directory_path() /
               ("sdb_dfs_fuzz_s" + std::to_string(GetParam()) + "_p" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(root_);
  }
  ~DfsFuzz() override { fs::remove_all(root_); }
  std::string root_;
};

TEST_P(DfsFuzz, SplitsReassembleExactly) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const u64 block = 1 + rng.uniform_index(64);
    const u64 records = rng.uniform_index(40);
    std::string content;
    for (u64 r = 0; r < records; ++r) {
      const u64 len = rng.uniform_index(3 * block + 2);  // may span blocks
      std::string record;
      for (u64 i = 0; i < len; ++i) {
        record += static_cast<char>('a' + rng.uniform_index(26));
      }
      content += record + "\n";
    }
    // Occasionally drop the trailing newline.
    if (!content.empty() && rng.chance(0.3)) content.pop_back();

    MiniDfs dfs(root_ + "/t" + std::to_string(trial), block);
    dfs.write("/f", content);
    std::string reassembled;
    const size_t blocks = dfs.stat("/f").blocks.size();
    for (size_t b = 0; b < blocks; ++b) {
      reassembled += dfs.read_text_split("/f", b);
    }
    // The reader completes the final record, so a missing trailing newline
    // is the only tolerated difference.
    std::string expected = content;
    EXPECT_EQ(reassembled, expected)
        << "block=" << block << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace sdb::dfs
