// End-to-end tests of the paper's pipeline on minispark.
#include "core/spark_dbscan.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/dbscan_seq.hpp"
#include "core/quality.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "synth/io.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

namespace fs = std::filesystem;

minispark::ClusterConfig cluster(u32 executors) {
  minispark::ClusterConfig cfg;
  cfg.executors = executors;
  cfg.straggler.fraction = 0.0;
  return cfg;
}

PointSet blob_data(i64 n, u64 seed) {
  Rng rng(seed);
  synth::GaussianMixtureConfig cfg;
  cfg.n = n;
  cfg.dim = 2;
  cfg.clusters = 4;
  cfg.sigma = 0.5;
  cfg.noise_fraction = 0.05;
  cfg.box_side = 60.0;
  return synth::gaussian_clusters(cfg, rng);
}

TEST(SparkDbscan, MatchesSequentialOnBlobs) {
  const PointSet ps = blob_data(800, 5);
  const KdTree tree(ps);
  const DbscanParams params{1.0, 5};
  const auto seq = dbscan_sequential(ps, tree, params);

  minispark::SparkContext ctx(cluster(4));
  SparkDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = 4;
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);

  const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                    seq.clustering, report.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.detail;
}

TEST(SparkDbscan, PhaseTimesPopulated) {
  const PointSet ps = blob_data(500, 7);
  minispark::SparkContext ctx(cluster(4));
  SparkDbscanConfig cfg;
  cfg.params = {1.0, 5};
  cfg.partitions = 4;
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);
  EXPECT_GT(report.sim_read_s, 0.0);
  EXPECT_GT(report.sim_tree_s, 0.0);
  EXPECT_GT(report.sim_broadcast_s, 0.0);
  EXPECT_GT(report.sim_executor_s, 0.0);
  EXPECT_GT(report.sim_merge_s, 0.0);
  EXPECT_GT(report.sim_collect_s, 0.0);
  EXPECT_GT(report.partial_clusters, 0u);
  EXPECT_GT(report.broadcast_bytes, ps.byte_size());
  EXPECT_GT(report.accumulator_bytes, 0u);
  EXPECT_NEAR(report.sim_total_s(),
              report.sim_driver_s() + report.sim_executor_s, 1e-12);
  EXPECT_GT(report.wall_s, 0.0);
}

TEST(SparkDbscan, RunFromDfsMatchesInMemory) {
  const PointSet ps = blob_data(400, 9);
  const std::string root = (fs::temp_directory_path() / "sdb_e2e_dfs").string();
  fs::remove_all(root);
  dfs::MiniDfs dfs(root, 1 << 12);
  dfs.write("/points.txt", synth::to_text(ps));

  minispark::SparkContext ctx(cluster(2));
  SparkDbscanConfig cfg;
  cfg.params = {1.0, 5};
  cfg.partitions = 2;
  SparkDbscan dbscan(ctx, cfg);
  const auto from_dfs = dbscan.run_from_dfs(dfs, "/points.txt");

  minispark::SparkContext ctx2(cluster(2));
  SparkDbscan dbscan2(ctx2, cfg);
  const auto in_memory = dbscan2.run(ps);

  // Same data, same config -> identical labels.
  EXPECT_EQ(from_dfs.clustering.labels, in_memory.clustering.labels);
  fs::remove_all(root);
}

TEST(SparkDbscan, MorePartitionsMorePartialClusters) {
  const PointSet ps = blob_data(1500, 11);
  const DbscanParams params{1.0, 5};
  auto partials = [&](u32 parts) {
    minispark::SparkContext ctx(cluster(parts));
    SparkDbscanConfig cfg;
    cfg.params = params;
    cfg.partitions = parts;
    SparkDbscan dbscan(ctx, cfg);
    return dbscan.run(ps).partial_clusters;
  };
  EXPECT_LT(partials(1), partials(8));
}

TEST(SparkDbscan, ExecutorMakespanShrinksWithCores) {
  const PointSet ps = blob_data(2000, 13);
  const DbscanParams params{1.0, 5};
  auto exec_time = [&](u32 parts) {
    minispark::SparkContext ctx(cluster(parts));
    SparkDbscanConfig cfg;
    cfg.params = params;
    cfg.partitions = parts;
    SparkDbscan dbscan(ctx, cfg);
    return dbscan.run(ps).sim_executor_s;
  };
  const double t1 = exec_time(1);
  const double t8 = exec_time(8);
  EXPECT_GT(t1 / t8, 2.0);
}

TEST(SparkDbscan, PruningBudgetStillFindsBigClusters) {
  const PointSet ps = blob_data(1000, 15);
  minispark::SparkContext ctx(cluster(4));
  SparkDbscanConfig cfg;
  cfg.params = {1.0, 5};
  cfg.partitions = 4;
  cfg.budget.max_neighbors = 32;  // pruning-branches mode
  cfg.min_partial_cluster_size = 3;
  SparkDbscan dbscan(ctx, cfg);
  const auto report = dbscan.run(ps);
  EXPECT_GE(report.clustering.num_clusters, 3u);
  EXPECT_LE(report.clustering.num_clusters, 12u);
}

TEST(SparkDbscan, FaultInjectionDoesNotChangeResult) {
  const PointSet ps = blob_data(600, 17);
  const DbscanParams params{1.0, 5};

  minispark::SparkContext clean_ctx(cluster(4));
  SparkDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = 8;
  SparkDbscan clean(clean_ctx, cfg);
  const auto clean_report = clean.run(ps);

  minispark::ClusterConfig faulty_cluster = cluster(4);
  faulty_cluster.fault_injection_rate = 0.4;
  faulty_cluster.max_task_attempts = 8;
  minispark::SparkContext faulty_ctx(faulty_cluster);
  SparkDbscan faulty(faulty_ctx, cfg);
  const auto faulty_report = faulty.run(ps);

  EXPECT_EQ(clean_report.clustering.labels, faulty_report.clustering.labels);
  EXPECT_GT(faulty_ctx.last_job().failures_injected, 0u);
}

TEST(SparkDbscan, DeterministicAcrossRuns) {
  const PointSet ps = blob_data(700, 19);
  SparkDbscanConfig cfg;
  cfg.params = {1.0, 5};
  cfg.partitions = 4;
  minispark::SparkContext ctx1(cluster(4));
  minispark::SparkContext ctx2(cluster(4));
  SparkDbscan d1(ctx1, cfg);
  SparkDbscan d2(ctx2, cfg);
  EXPECT_EQ(d1.run(ps).clustering.labels, d2.run(ps).clustering.labels);
}

TEST(PartialClusterSerialization, RoundTrip) {
  LocalClusterResult r;
  r.partition = 3;
  PartialCluster pc;
  pc.uid = PartialCluster::make_uid(3, 7);
  pc.partition = 3;
  pc.members = {10, 11, 12};
  pc.seeds = {99, 1000};
  r.clusters.push_back(pc);
  r.core_points = {10, 11};
  r.noise = {55};
  const LocalClusterResult back = local_result_from_bytes(to_bytes(r));
  EXPECT_EQ(back.partition, 3);
  ASSERT_EQ(back.clusters.size(), 1u);
  EXPECT_EQ(back.clusters[0].uid, pc.uid);
  EXPECT_EQ(back.clusters[0].members, pc.members);
  EXPECT_EQ(back.clusters[0].seeds, pc.seeds);
  EXPECT_EQ(back.core_points, r.core_points);
  EXPECT_EQ(back.noise, r.noise);
}

TEST(PartialClusterSerialization, ByteSizeTracksContents) {
  PartialCluster small;
  small.members = {1};
  PartialCluster big;
  big.members.assign(1000, 7);
  EXPECT_LT(small.byte_size(), big.byte_size());
}

}  // namespace
}  // namespace sdb::dbscan
