#include "synth/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::synth {
namespace {

TEST(PointIo, TextRoundTrip) {
  PointSet ps(3);
  const double a[3] = {1.5, -2.25, 3.0};
  const double b[3] = {0.1, 0.2, 0.3};
  ps.add(a);
  ps.add(b);
  const std::string text = to_text(ps);
  const PointSet back = from_text(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.dim(), 3);
  EXPECT_EQ(ps.raw(), back.raw());  // %.17g is lossless for doubles
}

TEST(PointIo, TextRoundTripRandom) {
  Rng rng(4);
  UniformConfig cfg;
  cfg.n = 200;
  cfg.dim = 10;
  cfg.box_side = 123.456;
  const PointSet ps = uniform_points(cfg, rng);
  const PointSet back = from_text(to_text(ps));
  EXPECT_EQ(ps.raw(), back.raw());
}

TEST(PointIo, ParsesBlankLinesAndWhitespace) {
  const PointSet ps = from_text("1 2\n\n  3\t4  \r\n5 6\n");
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[1][0], 3.0);
  EXPECT_DOUBLE_EQ(ps[2][1], 6.0);
}

TEST(PointIo, LastLineWithoutNewline) {
  const PointSet ps = from_text("1 2\n3 4");
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps[1][1], 4.0);
}

TEST(PointIo, EmptyTextYieldsEmptySet) {
  EXPECT_EQ(from_text("").size(), 0u);
  EXPECT_EQ(from_text("\n\n").size(), 0u);
}

TEST(PointIoDeath, InconsistentDimensionAborts) {
  EXPECT_DEATH(from_text("1 2\n3 4 5\n"), "inconsistent");
}

TEST(PointIoDeath, MalformedCoordinateAborts) {
  EXPECT_DEATH(from_text("1 abc\n"), "malformed");
}

TEST(PointIo, BinaryRoundTrip) {
  Rng rng(5);
  UniformConfig cfg;
  cfg.n = 100;
  cfg.dim = 7;
  cfg.box_side = 10;
  const PointSet ps = uniform_points(cfg, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdb_points.bin").string();
  save_binary(ps, path);
  const PointSet back = load_binary(path);
  EXPECT_EQ(ps.raw(), back.raw());
  EXPECT_EQ(back.dim(), 7);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sdb::synth
