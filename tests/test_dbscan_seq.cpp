#include "core/dbscan_seq.hpp"

#include <gtest/gtest.h>

#include "spatial/brute_force.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

PointSet line_points(std::initializer_list<double> xs) {
  PointSet ps(1);
  for (const double x : xs) {
    const double p[1] = {x};
    ps.add(p);
  }
  return ps;
}

TEST(DbscanSeq, EmptyInput) {
  PointSet ps(2);
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {1.0, 3});
  EXPECT_EQ(result.clustering.num_clusters, 0u);
  EXPECT_TRUE(result.clustering.labels.empty());
}

TEST(DbscanSeq, AllNoiseWhenSparse) {
  const PointSet ps = line_points({0, 100, 200, 300});
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {1.0, 2});
  EXPECT_EQ(result.clustering.num_clusters, 0u);
  EXPECT_EQ(result.clustering.noise_count(), 4u);
  EXPECT_TRUE(result.core_points.empty());
}

TEST(DbscanSeq, SingleDenseCluster) {
  const PointSet ps = line_points({0, 1, 2, 3, 4});
  KdTree tree(ps);
  // eps=1.5: each interior point has 3+ neighbors (incl. itself).
  const auto result = dbscan_sequential(ps, tree, {1.5, 3});
  EXPECT_EQ(result.clustering.num_clusters, 1u);
  EXPECT_EQ(result.clustering.noise_count(), 0u);
  for (const ClusterId l : result.clustering.labels) EXPECT_EQ(l, 0);
}

TEST(DbscanSeq, TwoSeparatedClusters) {
  const PointSet ps = line_points({0, 1, 2, 100, 101, 102});
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {1.5, 3});
  EXPECT_EQ(result.clustering.num_clusters, 2u);
  EXPECT_EQ(result.clustering.labels[0], result.clustering.labels[2]);
  EXPECT_EQ(result.clustering.labels[3], result.clustering.labels[5]);
  EXPECT_NE(result.clustering.labels[0], result.clustering.labels[3]);
}

TEST(DbscanSeq, BorderPointJoinsCluster) {
  // 0,1,2 dense core chain; 3.4 is within eps of 2 but has only 2 neighbors
  // -> border point, must join the cluster, not be noise.
  const PointSet ps = line_points({0, 1, 2, 3.4});
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {1.5, 3});
  EXPECT_EQ(result.clustering.num_clusters, 1u);
  EXPECT_EQ(result.clustering.labels[3], 0);
  // 3.4 itself must not be a core point.
  for (const PointId c : result.core_points) EXPECT_NE(c, 3);
}

TEST(DbscanSeq, ChainReachability) {
  // A long chain where each point only sees its immediate neighbors:
  // density-reachability must propagate end to end (Definition 3).
  PointSet ps(1);
  for (int i = 0; i < 50; ++i) {
    const double p[1] = {static_cast<double>(i)};
    ps.add(p);
  }
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {1.1, 3});
  EXPECT_EQ(result.clustering.num_clusters, 1u);
  EXPECT_EQ(result.clustering.labels[0], result.clustering.labels[49]);
}

TEST(DbscanSeq, NoiseBetweenClusters) {
  const PointSet ps = line_points({0, 1, 2, 50, 100, 101, 102});
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {1.5, 3});
  EXPECT_EQ(result.clustering.num_clusters, 2u);
  EXPECT_EQ(result.clustering.labels[3], kNoise);
}

TEST(DbscanSeq, MinptsCountsSelf) {
  // Two points at distance 0.5, minpts=2: each has 2 neighbors (self+other)
  // -> both core, one cluster. This pins down the self-inclusion convention.
  const PointSet ps = line_points({0, 0.5});
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {1.0, 2});
  EXPECT_EQ(result.clustering.num_clusters, 1u);
  EXPECT_EQ(result.core_points.size(), 2u);
}

TEST(DbscanSeq, IndexChoiceDoesNotChangeResult) {
  synth::GaussianMixtureConfig cfg;
  cfg.n = 600;
  cfg.dim = 3;
  cfg.clusters = 4;
  cfg.sigma = 1.0;
  cfg.box_side = 100.0;
  Rng rng(12);
  const PointSet ps = synth::gaussian_clusters(cfg, rng);
  const KdTree tree(ps);
  const BruteForceIndex brute(ps);
  const DbscanParams params{2.0, 5};
  auto a = dbscan_sequential(ps, tree, params);
  auto b = dbscan_sequential(ps, brute, params);
  // Identical scan order (ids ascending from both indexes after sorting
  // neighbor lists is not guaranteed) -> compare structurally: same core
  // sets and same noise sets.
  EXPECT_EQ(a.core_points.size(), b.core_points.size());
  EXPECT_EQ(a.clustering.noise_count(), b.clustering.noise_count());
  EXPECT_EQ(a.clustering.num_clusters, b.clustering.num_clusters);
}

TEST(DbscanSeq, RecoverGaussianComponents) {
  synth::GaussianMixtureConfig cfg;
  cfg.n = 1200;
  cfg.dim = 10;
  cfg.clusters = 6;
  cfg.sigma = 5.0;
  cfg.noise_fraction = 0.0;
  cfg.center_separation_sigmas = 30.0;
  cfg.box_side = 3000.0;
  Rng rng(21);
  std::vector<i32> truth;
  const PointSet ps = synth::gaussian_clusters(cfg, rng, &truth);
  const KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {25.0, 5});
  // DBSCAN should find ~the number of generating components.
  EXPECT_GE(result.clustering.num_clusters, 5u);
  EXPECT_LE(result.clustering.num_clusters, 8u);
  // Points from the same component end up in the same cluster.
  u64 checked = 0;
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = i + 1; j < 200; ++j) {
      if (truth[i] == truth[j] &&
          result.clustering.labels[i] >= 0 &&
          result.clustering.labels[j] >= 0) {
        EXPECT_EQ(result.clustering.labels[i], result.clustering.labels[j]);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(DbscanSeq, CountersPopulated) {
  const PointSet ps = line_points({0, 1, 2, 3});
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {1.5, 2});
  EXPECT_GT(result.counters.distance_evals, 0u);
  EXPECT_GT(result.counters.queue_ops, 0u);
  EXPECT_GT(result.counters.points_processed, 0u);
}

TEST(DbscanSeq, LabelsAreDense) {
  Rng rng(31);
  synth::UniformConfig cfg;
  cfg.n = 500;
  cfg.dim = 2;
  cfg.box_side = 40.0;
  const PointSet ps = synth::uniform_points(cfg, rng);
  KdTree tree(ps);
  const auto result = dbscan_sequential(ps, tree, {2.0, 4});
  for (const ClusterId l : result.clustering.labels) {
    EXPECT_TRUE(l == kNoise ||
                (l >= 0 && l < static_cast<ClusterId>(result.clustering.num_clusters)));
  }
}

}  // namespace
}  // namespace sdb::dbscan
