#include "synth/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace sdb::synth {
namespace {

TEST(BallVolume, KnownValues) {
  EXPECT_NEAR(ball_volume(1, 2.0), 4.0, 1e-9);                      // 2r
  EXPECT_NEAR(ball_volume(2, 3.0), std::numbers::pi * 9.0, 1e-9);   // pi r^2
  EXPECT_NEAR(ball_volume(3, 1.0), 4.0 / 3.0 * std::numbers::pi, 1e-9);
}

TEST(UniformBoxSide, SolvesExpectedDensity) {
  const i64 n = 10000;
  const int dim = 10;
  const double eps = 25.0;
  const double target = 15.0;
  const double side = uniform_box_side(n, dim, eps, target);
  // Verify the defining equation: n * V(eps) / side^dim == target.
  const double implied =
      static_cast<double>(n) * ball_volume(dim, eps) / std::pow(side, dim);
  EXPECT_NEAR(implied, target, 1e-6);
}

TEST(GaussianClusters, CountsAndDimensions) {
  GaussianMixtureConfig cfg;
  cfg.n = 1000;
  cfg.dim = 4;
  cfg.clusters = 5;
  Rng rng(1);
  std::vector<i32> labels;
  const PointSet ps = gaussian_clusters(cfg, rng, &labels);
  EXPECT_EQ(ps.size(), 1000u);
  EXPECT_EQ(ps.dim(), 4);
  EXPECT_EQ(labels.size(), 1000u);
  // Every non-noise label within [0, clusters).
  for (const i32 l : labels) {
    EXPECT_GE(l, -1);
    EXPECT_LT(l, 5);
  }
}

TEST(GaussianClusters, NoiseFractionHonored) {
  GaussianMixtureConfig cfg;
  cfg.n = 2000;
  cfg.noise_fraction = 0.1;
  Rng rng(2);
  std::vector<i32> labels;
  gaussian_clusters(cfg, rng, &labels);
  i64 noise = 0;
  for (const i32 l : labels) noise += (l == -1) ? 1 : 0;
  EXPECT_EQ(noise, 200);
}

TEST(GaussianClusters, Deterministic) {
  GaussianMixtureConfig cfg;
  cfg.n = 500;
  Rng r1(7);
  Rng r2(7);
  const PointSet a = gaussian_clusters(cfg, r1);
  const PointSet b = gaussian_clusters(cfg, r2);
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(GaussianClusters, ClustersAreTight) {
  // Points of one component should lie within a few sigma of each other.
  GaussianMixtureConfig cfg;
  cfg.n = 2000;
  cfg.dim = 10;
  cfg.clusters = 4;
  cfg.sigma = 5.0;
  cfg.noise_fraction = 0.0;
  cfg.center_separation_sigmas = 20.0;
  cfg.box_side = 2000.0;
  Rng rng(3);
  std::vector<i32> labels;
  const PointSet ps = gaussian_clusters(cfg, rng, &labels);
  // Typical intra-cluster distance ~ sigma*sqrt(2d) = 5*sqrt(20) ~ 22.4.
  double intra_max = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    for (size_t j = i + 1; j < 200; ++j) {
      if (labels[i] != labels[j]) continue;
      double d2 = 0;
      for (int d = 0; d < 10; ++d) {
        const double diff = ps[static_cast<PointId>(i)][static_cast<size_t>(d)] -
                            ps[static_cast<PointId>(j)][static_cast<size_t>(d)];
        d2 += diff * diff;
      }
      intra_max = std::max(intra_max, std::sqrt(d2));
    }
  }
  EXPECT_LT(intra_max, 8 * cfg.sigma * std::sqrt(10.0));
}

TEST(UniformPoints, BoxRespected) {
  UniformConfig cfg;
  cfg.n = 500;
  cfg.dim = 3;
  cfg.box_side = 10.0;
  Rng rng(5);
  const PointSet ps = uniform_points(cfg, rng);
  EXPECT_EQ(ps.size(), 500u);
  for (PointId i = 0; i < 500; ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(ps[i][static_cast<size_t>(d)], 0.0);
      EXPECT_LT(ps[i][static_cast<size_t>(d)], 10.0);
    }
  }
}

TEST(UniformPoints, AutoBoxSideFromDensity) {
  UniformConfig cfg;
  cfg.n = 1000;
  cfg.dim = 10;
  cfg.eps = 25.0;
  cfg.target_neighbors = 15.0;
  cfg.box_side = 0.0;  // solve from density
  Rng rng(6);
  const PointSet ps = uniform_points(cfg, rng);
  EXPECT_EQ(ps.size(), 1000u);
}

TEST(TwoMoons, ShapeBasics) {
  Rng rng(8);
  const PointSet ps = two_moons(250, 0.05, rng);
  EXPECT_EQ(ps.size(), 500u);
  EXPECT_EQ(ps.dim(), 2);
}

TEST(Rings, PointCount) {
  Rng rng(9);
  const PointSet ps = rings(100, 3, 0.02, 50, rng);
  EXPECT_EQ(ps.size(), 350u);
  EXPECT_EQ(ps.dim(), 2);
}

TEST(Blobs2d, LabelsMatchPoints) {
  Rng rng(10);
  std::vector<i32> labels;
  const PointSet ps = blobs_2d(400, 4, 0.5, 40, rng, &labels);
  EXPECT_EQ(ps.size(), 440u);
  EXPECT_EQ(labels.size(), 440u);
}

}  // namespace
}  // namespace sdb::synth
