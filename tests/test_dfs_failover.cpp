// Datanode failure simulation: reads fail over to surviving replicas and
// only abort when a block's entire replica set is gone — HDFS's replication
// contract, which the paper leans on for fault tolerance.
#include <gtest/gtest.h>

#include <filesystem>

#include "dfs/mini_dfs.hpp"

namespace sdb::dfs {
namespace {

namespace fs = std::filesystem;

class DfsFailoverTest : public ::testing::Test {
 protected:
  DfsFailoverTest()
      : root_((fs::temp_directory_path() / "sdb_dfs_failover").string()) {
    fs::remove_all(root_);
  }
  ~DfsFailoverTest() override { fs::remove_all(root_); }
  std::string root_;
};

TEST_F(DfsFailoverTest, ReadsSurviveSingleNodeFailure) {
  MiniDfs dfs(root_, 8, /*datanodes=*/4, /*replication=*/3);
  const std::string content = "0123456789abcdefghij";
  dfs.write("/f", content);
  dfs.fail_datanode(0);
  EXPECT_EQ(dfs.read("/f"), content);  // replicas on other nodes serve
}

TEST_F(DfsFailoverTest, FailoversCounted) {
  MiniDfs dfs(root_, 8, 4, 3);
  dfs.write("/f", std::string(32, 'x'));
  // Fail the primary replica of at least one block: with round-robin
  // placement starting at node 0, block 0's replicas are {0,1,2}.
  dfs.fail_datanode(0);
  EXPECT_EQ(dfs.failovers(), 0u);
  (void)dfs.read("/f");
  EXPECT_GT(dfs.failovers(), 0u);
}

TEST_F(DfsFailoverTest, AllReplicasDeadAborts) {
  MiniDfs dfs(root_, 8, 3, 3);  // every block replicated on all 3 nodes
  dfs.write("/f", "data!");
  dfs.fail_datanode(0);
  dfs.fail_datanode(1);
  dfs.fail_datanode(2);
  EXPECT_DEATH((void)dfs.read("/f"), "unavailable");
}

TEST_F(DfsFailoverTest, RecoveryRestoresService) {
  MiniDfs dfs(root_, 8, 2, 2);
  dfs.write("/f", "hello");
  dfs.fail_datanode(0);
  dfs.fail_datanode(1);
  dfs.recover_datanode(1);
  EXPECT_TRUE(dfs.datanode_alive(1));
  EXPECT_FALSE(dfs.datanode_alive(0));
  EXPECT_EQ(dfs.read("/f"), "hello");
}

TEST_F(DfsFailoverTest, TextSplitsAlsoFailOver) {
  MiniDfs dfs(root_, 6, 4, 3);
  std::string content;
  for (int i = 0; i < 10; ++i) content += "rec" + std::to_string(i) + "\n";
  dfs.write("/f", content);
  dfs.fail_datanode(1);
  std::string reassembled;
  for (size_t b = 0; b < dfs.stat("/f").blocks.size(); ++b) {
    reassembled += dfs.read_text_split("/f", b);
  }
  EXPECT_EQ(reassembled, content);
}

TEST_F(DfsFailoverTest, ReplicationOneIsFragile) {
  MiniDfs dfs(root_, 8, 4, 1);
  dfs.write("/f", std::string(64, 'y'));  // blocks spread across nodes
  dfs.fail_datanode(0);
  // Some block had its only replica on node 0 (round-robin placement).
  EXPECT_DEATH((void)dfs.read("/f"), "unavailable");
}

}  // namespace
}  // namespace sdb::dfs
