// Datanode failure simulation: reads fail over to surviving replicas and
// only abort when a block's entire replica set is gone — HDFS's replication
// contract, which the paper leans on for fault tolerance.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "dfs/mini_dfs.hpp"
#include "fault/fault_plan.hpp"
#include "util/counters.hpp"

namespace sdb::dfs {
namespace {

namespace fs = std::filesystem;

class DfsFailoverTest : public ::testing::Test {
 protected:
  // Per-process root: `ctest -j` runs each case as its own process, and a
  // shared root means one test's remove_all() deletes another's live block
  // files mid-run.
  DfsFailoverTest()
      : root_((fs::temp_directory_path() /
               ("sdb_dfs_failover_p" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(root_);
  }
  ~DfsFailoverTest() override { fs::remove_all(root_); }
  std::string root_;
};

TEST_F(DfsFailoverTest, ReadsSurviveSingleNodeFailure) {
  MiniDfs dfs(root_, 8, /*datanodes=*/4, /*replication=*/3);
  const std::string content = "0123456789abcdefghij";
  dfs.write("/f", content);
  dfs.fail_datanode(0);
  EXPECT_EQ(dfs.read("/f"), content);  // replicas on other nodes serve
}

TEST_F(DfsFailoverTest, FailoversCounted) {
  MiniDfs dfs(root_, 8, 4, 3);
  dfs.write("/f", std::string(32, 'x'));
  // Fail the primary replica of at least one block: with round-robin
  // placement starting at node 0, block 0's replicas are {0,1,2}.
  dfs.fail_datanode(0);
  EXPECT_EQ(dfs.failovers(), 0u);
  (void)dfs.read("/f");
  EXPECT_GT(dfs.failovers(), 0u);
}

TEST_F(DfsFailoverTest, AllReplicasDeadAborts) {
  MiniDfs dfs(root_, 8, 3, 3);  // every block replicated on all 3 nodes
  dfs.write("/f", "data!");
  dfs.fail_datanode(0);
  dfs.fail_datanode(1);
  dfs.fail_datanode(2);
  EXPECT_DEATH((void)dfs.read("/f"), "unavailable");
}

TEST_F(DfsFailoverTest, RecoveryRestoresService) {
  MiniDfs dfs(root_, 8, 2, 2);
  dfs.write("/f", "hello");
  dfs.fail_datanode(0);
  dfs.fail_datanode(1);
  dfs.recover_datanode(1);
  EXPECT_TRUE(dfs.datanode_alive(1));
  EXPECT_FALSE(dfs.datanode_alive(0));
  EXPECT_EQ(dfs.read("/f"), "hello");
}

TEST_F(DfsFailoverTest, TextSplitsAlsoFailOver) {
  MiniDfs dfs(root_, 6, 4, 3);
  std::string content;
  for (int i = 0; i < 10; ++i) content += "rec" + std::to_string(i) + "\n";
  dfs.write("/f", content);
  dfs.fail_datanode(1);
  std::string reassembled;
  for (size_t b = 0; b < dfs.stat("/f").blocks.size(); ++b) {
    reassembled += dfs.read_text_split("/f", b);
  }
  EXPECT_EQ(reassembled, content);
}

TEST_F(DfsFailoverTest, PartialReplicaLossOneHealthyReplicaServesAndCounts) {
  // Regression: lose replicas down to a SINGLE healthy one and the read
  // must still succeed, with every skipped dead primary accounted both in
  // the MiniDfs failover tally and in the thread-local WorkCounters metric
  // (so the cost model sees failover reads on the executor data path).
  MiniDfs dfs(root_, 8, /*datanodes=*/4, /*replication=*/3);
  const std::string content(24, 'z');  // 3 blocks: replicas {0,1,2},{1,2,3},{2,3,0}
  dfs.write("/f", content);
  // Block 0 keeps exactly one healthy replica (node 2).
  dfs.fail_datanode(0);
  dfs.fail_datanode(1);
  EXPECT_EQ(dfs.failovers(), 0u);
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    EXPECT_EQ(dfs.read("/f"), content);
  }
  // Blocks 0 and 1 both had dead primaries; block 2's primary (node 2) is
  // alive. The counters metric mirrors the DFS-side tally exactly.
  EXPECT_EQ(dfs.failovers(), 2u);
  EXPECT_EQ(wc.dfs_failovers, 2u);
  // Reads outside a counter scope still fail over (metric is best-effort).
  EXPECT_EQ(dfs.read_block("/f", 0), content.substr(0, 8));
  EXPECT_EQ(dfs.failovers(), 3u);
  EXPECT_EQ(wc.dfs_failovers, 2u);
}

#ifdef SDB_FAULT_INJECTION
TEST_F(DfsFailoverTest, InjectedReadFaultsAreRetriedToSuccess) {
  MiniDfs dfs(root_, 8, 4, 3);
  const std::string content(32, 'r');
  dfs.write("/f", content);
  fault::ScopedFaultPlan chaos(
      "seed=31;dfs.read.fail:p=0.5,budget=3;dfs.read.slow:every=2,budget=4");
  EXPECT_EQ(dfs.read("/f"), content);  // recovery is internal
  EXPECT_EQ(dfs.io_retries(), chaos.plan().fires("dfs.read.fail"));
  EXPECT_GT(dfs.io_retries(), 0u);
  EXPECT_GT(dfs.io_backoff_s(), 0.0);
  EXPECT_GT(dfs.slow_reads(), 0u);
}

TEST_F(DfsFailoverTest, InjectedReadFaultBeyondRetryBudgetEscapes) {
  MiniDfs dfs(root_, 8, 4, 3);
  dfs.write("/f", "payload");
  RetryPolicy tight;
  tight.max_attempts = 2;
  dfs.set_io_retry(tight);
  fault::ScopedFaultPlan chaos("seed=32;dfs.read.fail");  // every attempt
  EXPECT_THROW((void)dfs.read("/f"), DfsTransientError);
}

TEST_F(DfsFailoverTest, TornWriteIsRewrittenByRetry) {
  MiniDfs dfs(root_, 8, 4, 3);
  const std::string content(24, 'w');
  {
    fault::ScopedFaultPlan chaos("seed=33;dfs.write.torn:every=2,budget=2");
    dfs.write("/f", content);
    EXPECT_EQ(dfs.torn_writes(), 2u);
  }
  // Every block checksum-verifies and reads back whole: the torn halves
  // were overwritten by the retried full-block writes.
  EXPECT_TRUE(dfs.verify("/f").empty());
  EXPECT_EQ(dfs.read("/f"), content);
}

TEST_F(DfsFailoverTest, InjectedReplicaFaultUsesTheFailoverPath) {
  MiniDfs dfs(root_, 8, 4, 3);
  const std::string content(16, 'q');
  dfs.write("/f", content);  // all datanodes healthy
  fault::ScopedFaultPlan chaos("seed=34;dfs.read.replica:budget=1");
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    EXPECT_EQ(dfs.read("/f"), content);
  }
  // The injected dead-primary is indistinguishable from a real one to the
  // accounting: same failover tally, same counters metric.
  EXPECT_EQ(dfs.failovers(), 1u);
  EXPECT_EQ(wc.dfs_failovers, 1u);
}
#endif  // SDB_FAULT_INJECTION

TEST_F(DfsFailoverTest, ReplicationOneIsFragile) {
  MiniDfs dfs(root_, 8, 4, 1);
  dfs.write("/f", std::string(64, 'y'));  // blocks spread across nodes
  dfs.fail_datanode(0);
  // Some block had its only replica on node 0 (round-robin placement).
  EXPECT_DEATH((void)dfs.read("/f"), "unavailable");
}

}  // namespace
}  // namespace sdb::dfs
