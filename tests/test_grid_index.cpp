#include "spatial/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "spatial/brute_force.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

PointSet random_points(i64 n, int dim, double side, u64 seed) {
  Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> p(static_cast<size_t>(dim));
  for (i64 i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.uniform(-side / 2, side / 2);
    ps.add(p);
  }
  return ps;
}

std::vector<PointId> sorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class GridMatchesBruteForce
    : public ::testing::TestWithParam<std::tuple<int, i64, double, double>> {};

TEST_P(GridMatchesBruteForce, RangeQueriesAgree) {
  const auto [dim, n, cell, eps] = GetParam();
  const PointSet ps = random_points(n, dim, 60.0, 101 + static_cast<u64>(dim));
  const GridIndex grid(ps, cell);
  const BruteForceIndex brute(ps);
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    std::vector<PointId> a;
    std::vector<PointId> b;
    grid.range_query(ps[q], eps, a);
    brute.range_query(ps[q], eps, b);
    EXPECT_EQ(sorted(a), sorted(b))
        << "dim=" << dim << " cell=" << cell << " eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridMatchesBruteForce,
    ::testing::Values(std::make_tuple(2, 1000, 5.0, 5.0),
                      std::make_tuple(2, 1000, 5.0, 12.0),  // eps > cell
                      std::make_tuple(2, 1000, 10.0, 3.0),  // eps < cell
                      std::make_tuple(3, 800, 8.0, 8.0),
                      std::make_tuple(1, 300, 2.0, 4.0)));

TEST(GridIndex, NegativeCoordinatesHandled) {
  PointSet ps(2);
  const double a[2] = {-10.5, -10.5};
  const double b[2] = {-10.4, -10.4};
  const double c[2] = {10.0, 10.0};
  ps.add(a);
  ps.add(b);
  ps.add(c);
  GridIndex grid(ps, 1.0);
  std::vector<PointId> out;
  grid.range_query(a, 0.5, out);
  EXPECT_EQ(sorted(out), (std::vector<PointId>{0, 1}));
}

TEST(GridIndex, CellCountReasonable) {
  const PointSet ps = random_points(1000, 2, 50.0, 3);
  GridIndex grid(ps, 5.0);
  EXPECT_GT(grid.cell_count(), 10u);
  EXPECT_LE(grid.cell_count(), 1000u);
}

TEST(GridIndex, NeighborBudgetRespected) {
  const PointSet ps = random_points(2000, 2, 10.0, 9);
  GridIndex grid(ps, 2.0);
  QueryBudget budget;
  budget.max_neighbors = 3;
  std::vector<PointId> out;
  grid.range_query_budgeted(ps[0], 4.0, budget, out);
  EXPECT_LE(out.size(), 3u);
}

TEST(GridIndexDeath, ZeroCellAborts) {
  PointSet ps(2);
  EXPECT_DEATH(GridIndex(ps, 0.0), "positive");
}

TEST(BruteForce, SelfIncluded) {
  const PointSet ps = random_points(50, 3, 10.0, 13);
  BruteForceIndex brute(ps);
  std::vector<PointId> out;
  brute.range_query(ps[7], 0.0001, out);
  EXPECT_NE(std::find(out.begin(), out.end(), 7), out.end());
}

}  // namespace
}  // namespace sdb
