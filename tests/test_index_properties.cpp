// Cross-index property sweep: every SpatialIndex implementation must agree
// with every other on exact queries, and budgeted queries must return
// subsets of the exact result.
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/distance.hpp"
#include "spatial/brute_force.hpp"
#include "spatial/grid_index.hpp"
#include "spatial/kd_tree.hpp"
#include "spatial/r_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

PointSet clustered_points(i64 n, int dim, u64 seed) {
  Rng rng(seed);
  synth::GaussianMixtureConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.clusters = 4;
  cfg.sigma = 2.0;
  cfg.noise_fraction = 0.1;
  cfg.box_side = 80.0;
  return synth::gaussian_clusters(cfg, rng);
}

std::vector<PointId> sorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class AllIndexesAgree : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(AllIndexesAgree, ExactQueriesIdentical) {
  const auto [dim, eps] = GetParam();
  const PointSet ps = clustered_points(900, dim, 71 + static_cast<u64>(dim));
  const KdTree kd(ps);
  const RTree rt(ps);
  const GridIndex grid(ps, eps);
  const BruteForceIndex brute(ps);
  const std::vector<const SpatialIndex*> indexes = {&kd, &rt, &grid, &brute};

  Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    std::vector<PointId> reference;
    brute.range_query(ps[q], eps, reference);
    const auto expected = sorted(reference);
    for (const SpatialIndex* index : indexes) {
      std::vector<PointId> out;
      index->range_query(ps[q], eps, out);
      EXPECT_EQ(sorted(out), expected)
          << index->name() << " dim=" << dim << " eps=" << eps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllIndexesAgree,
                         ::testing::Values(std::make_tuple(2, 3.0),
                                           std::make_tuple(3, 5.0),
                                           std::make_tuple(5, 9.0)));

/// Adversarial datasets for the parity sweep: exact duplicates, pairs at
/// exactly eps (the boundary the <= eps contract must include), degenerate
/// 1-d data, and the paper's high-d regime where AABB pruning barely helps.
PointSet adversarial_points(i64 n, int dim, double eps, u64 seed) {
  Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> p(static_cast<size_t>(dim));
  std::vector<double> q(static_cast<size_t>(dim));
  for (i64 i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.uniform(0.0, 40.0);
    ps.add(p);
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.15) {
      ps.add(p);  // exact duplicate
    } else if (roll < 0.3) {
      // A partner offset by exactly eps along one axis: lands on (or within
      // one ulp of) the closed-ball boundary, where any index that compares
      // with < instead of <= — or computes distance in a different order —
      // diverges from the others.
      q = p;
      q[static_cast<size_t>(rng.uniform_index(static_cast<size_t>(dim)))] +=
          eps;
      ps.add(q);
    }
  }
  return ps;
}

class IndexParityAdversarial
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(IndexParityAdversarial, AllIndexesAndLayoutsAgree) {
  const auto [dim, eps] = GetParam();
  const PointSet ps =
      adversarial_points(700, dim, eps, 113 + static_cast<u64>(dim));
  const KdTree kd_legacy(ps, KdTreeOptions{.build_threads = 1,
                                           .reorder = false});
  const KdTree kd_blocked(ps, KdTreeOptions{.build_threads = 4,
                                            .reorder = true});
  const RTree rt(ps);
  const GridIndex grid(ps, eps);
  const BruteForceIndex brute(ps);
  const std::vector<const SpatialIndex*> indexes = {&kd_legacy, &kd_blocked,
                                                    &rt, &grid, &brute};
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    std::vector<PointId> reference;
    brute.range_query(ps[q], eps, reference);
    const auto expected = sorted(reference);
    for (const SpatialIndex* index : indexes) {
      std::vector<PointId> out;
      index->range_query(ps[q], eps, out);
      EXPECT_EQ(sorted(out), expected)
          << index->name() << " dim=" << dim << " eps=" << eps << " q=" << q;
      // Kernel-variant parity: the same query with dispatch pinned to the
      // scalar fallback must return the exact same ids in the exact same
      // (unsorted) order — the SIMD kernels' bit-identical contract, probed
      // here on the adversarial exactly-eps / duplicate fixtures.
      simd::force_scalar(true);
      std::vector<PointId> out_scalar;
      index->range_query(ps[q], eps, out_scalar);
      simd::force_scalar(false);
      EXPECT_EQ(out_scalar, out)
          << index->name() << " scalar-vs-simd divergence, dim=" << dim
          << " eps=" << eps << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndexParityAdversarial,
                         ::testing::Values(std::make_tuple(1, 2.0),
                                           std::make_tuple(2, 3.0),
                                           std::make_tuple(5, 8.0),
                                           std::make_tuple(10, 20.0)));

TEST(BudgetLaws, BudgetedIsSubsetOfExactForAllIndexes) {
  const PointSet ps = clustered_points(1200, 2, 83);
  const KdTree kd(ps);
  const RTree rt(ps);
  const BruteForceIndex brute(ps);
  const std::vector<const SpatialIndex*> indexes = {&kd, &rt, &brute};
  Rng rng(13);
  for (const SpatialIndex* index : indexes) {
    for (int trial = 0; trial < 15; ++trial) {
      const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
      std::vector<PointId> exact;
      index->range_query(ps[q], 4.0, exact);
      QueryBudget budget;
      budget.max_neighbors = 1 + rng.uniform_index(8);
      std::vector<PointId> limited;
      index->range_query_budgeted(ps[q], 4.0, budget, limited);
      EXPECT_LE(limited.size(), budget.max_neighbors) << index->name();
      const auto exact_sorted = sorted(exact);
      for (const PointId id : limited) {
        EXPECT_TRUE(std::binary_search(exact_sorted.begin(),
                                       exact_sorted.end(), id))
            << index->name();
      }
    }
  }
}

TEST(KnnLaws, KGreaterThanNReturnsAll) {
  const PointSet ps = clustered_points(50, 3, 91);
  const KdTree kd(ps);
  const auto nn = kd.knn(ps[0], 500);
  EXPECT_EQ(nn.size(), 50u);
}

TEST(KnnLaws, Deterministic) {
  const PointSet ps = clustered_points(300, 3, 97);
  const KdTree kd(ps);
  EXPECT_EQ(kd.knn(ps[5], 10), kd.knn(ps[5], 10));
}

TEST(KnnLaws, PrefixConsistency) {
  // knn(k) distances are a prefix of knn(k') distances for k < k'.
  const PointSet ps = clustered_points(400, 2, 101);
  const KdTree kd(ps);
  const auto small = kd.knn(ps[7], 5);
  const auto large = kd.knn(ps[7], 15);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_DOUBLE_EQ(squared_distance(ps[7], ps[small[i]]),
                     squared_distance(ps[7], ps[large[i]]));
  }
}

}  // namespace
}  // namespace sdb
