#include "minispark/shared_vars.hpp"

#include <gtest/gtest.h>

#include "minispark/spark_context.hpp"

namespace sdb::minispark {
namespace {

TEST(Broadcast, ValueAccess) {
  Broadcast<int> b(std::make_shared<const int>(42), 4);
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.value(), 42);
  EXPECT_EQ(b.bytes(), 4u);
}

TEST(Broadcast, EmptyDereferenceAborts) {
  Broadcast<int> b;
  EXPECT_FALSE(b.valid());
  EXPECT_DEATH(b.value(), "empty Broadcast");
}

TEST(Accumulator, SumSemantics) {
  auto acc = make_sum_accumulator<i64>();
  acc->add(5, 8);
  acc->add(7, 8);
  EXPECT_EQ(acc->value(), 12);
  EXPECT_EQ(acc->total_bytes(), 16u);
  EXPECT_EQ(acc->updates(), 2u);
}

TEST(Accumulator, CustomMerge) {
  Accumulator<std::vector<int>> acc(
      {}, [](std::vector<int>& into, std::vector<int>&& delta) {
        for (const int x : delta) into.push_back(x);
      });
  acc.add({1, 2}, 8);
  acc.add({3}, 4);
  EXPECT_EQ(acc.value(), (std::vector<int>{1, 2, 3}));
}

TEST(Accumulator, NetBytesCountedInTaskScope) {
  WorkCounters wc;
  auto acc = make_sum_accumulator<i64>();
  {
    ScopedCounters scope(&wc);
    acc->add(1, 123);
  }
  EXPECT_EQ(wc.net_bytes, 123u);
}

TEST(Accumulator, ConcurrentAddsFromTasks) {
  ClusterConfig cfg;
  cfg.executors = 4;
  cfg.host_threads = 4;
  cfg.straggler.fraction = 0.0;
  SparkContext ctx(cfg);
  auto acc = ctx.accumulator<i64>(0, [](i64& into, i64&& d) { into += d; });
  auto rdd = ctx.generate<int>([](u32) { return std::vector<int>(10, 1); },
                               64, "gen");
  ctx.foreach_partition(*rdd, [&acc](u32, std::vector<int>&& data) {
    i64 sum = 0;
    for (const int x : data) sum += x;
    acc->add(sum, sizeof(i64));
  });
  EXPECT_EQ(acc->value(), 640);
  EXPECT_EQ(acc->updates(), 64u);
}

TEST(Accumulator, PaperUsage_PartialClustersTravelViaAccumulator) {
  // The pattern Algorithm 2 lines 26-28 relies on: executors append partial
  // results; the driver reads the merged collection after the job barrier.
  ClusterConfig cfg;
  cfg.executors = 3;
  cfg.straggler.fraction = 0.0;
  SparkContext ctx(cfg);
  using Partials = std::vector<std::pair<u32, int>>;
  auto acc = ctx.accumulator<Partials>(
      {}, [](Partials& into, Partials&& delta) {
        for (auto& kv : delta) into.push_back(kv);
      });
  auto rdd = ctx.generate<int>(
      [](u32 p) { return std::vector<int>{static_cast<int>(p) * 10}; }, 6,
      "gen");
  ctx.foreach_partition(*rdd, [&acc](u32 p, std::vector<int>&& data) {
    acc->add({{p, data[0]}}, 16);
  });
  EXPECT_EQ(acc->value().size(), 6u);
  EXPECT_EQ(acc->total_bytes(), 96u);
}

// --- add_once job scoping (the checkpoint/resume contract) -----------------

TEST(Accumulator, AddOnceDedupsByTag) {
  auto acc = make_sum_accumulator<i64>();
  acc->add_once(7, 5, 8);
  acc->add_once(7, 5, 8);  // speculative duplicate: ignored
  EXPECT_EQ(acc->value(), 5);
  EXPECT_EQ(acc->duplicates_ignored(), 1u);
  EXPECT_EQ(acc->pending_tags(), 1u);
  // The dropped duplicate still paid its wire bytes.
  EXPECT_EQ(acc->total_bytes(), 8u);
}

TEST(Accumulator, BeginJobSameScopeKeepsTags) {
  auto acc = make_sum_accumulator<i64>();
  acc->begin_job(0xabc);
  acc->add_once(1, 10, 0);
  acc->begin_job(0xabc);  // re-entering the SAME job: dedup state survives
  acc->add_once(1, 10, 0);
  EXPECT_EQ(acc->value(), 10);
  EXPECT_EQ(acc->duplicates_ignored(), 1u);
}

TEST(Accumulator, BeginJobNewScopeClearsTags) {
  auto acc = make_sum_accumulator<i64>();
  acc->begin_job(0xabc);
  acc->add_once(1, 10, 0);
  EXPECT_EQ(acc->pending_tags(), 1u);
  // A different job fingerprint reuses tag values freely: the tag set is
  // bounded by ONE job's partitions, not the accumulator's whole lifetime.
  acc->begin_job(0xdef);
  EXPECT_EQ(acc->pending_tags(), 0u);
  acc->add_once(1, 32, 0);
  EXPECT_EQ(acc->value(), 42);
  EXPECT_EQ(acc->duplicates_ignored(), 0u);
}

TEST(Accumulator, CommitJobClearsTags) {
  auto acc = make_sum_accumulator<i64>();
  acc->begin_job(0xabc);
  acc->add_once(1, 10, 0);
  acc->add_once(2, 10, 0);
  EXPECT_EQ(acc->pending_tags(), 2u);
  acc->commit_job();
  EXPECT_EQ(acc->pending_tags(), 0u);
  // The merged value itself is NOT reset — only the dedup bookkeeping.
  EXPECT_EQ(acc->value(), 20);
}

}  // namespace
}  // namespace sdb::minispark
