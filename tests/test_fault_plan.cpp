// FaultPlan unit tests: spec grammar round-trip, per-site schedule semantics
// (p / every / after / budget), stream independence between sites, ordered
// fault log + replay digest, and the process-wide installation contract
// behind SDB_INJECT.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sdb::fault {
namespace {

TEST(FaultPlanSpec, ParseSerializeFixedPoint) {
  const std::string spec =
      "seed=42;dfs.read.fail:p=0.1,budget=3;spark.task.fail:every=5,after=2";
  FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_EQ(plan.seed(), 42u);
  // parse(spec()).spec() is a fixed point of the grammar.
  const std::string round1 = plan.spec();
  const std::string round2 = FaultPlan::parse(round1).spec();
  EXPECT_EQ(round1, round2);
  // The canonical form preserves every schedule field.
  EXPECT_NE(round1.find("seed=42"), std::string::npos);
  EXPECT_NE(round1.find("dfs.read.fail"), std::string::npos);
  EXPECT_NE(round1.find("budget=3"), std::string::npos);
  EXPECT_NE(round1.find("every=5"), std::string::npos);
  EXPECT_NE(round1.find("after=2"), std::string::npos);
}

TEST(FaultPlanSpec, BareSiteMeansAlwaysFire) {
  FaultPlan plan = FaultPlan::parse("seed=1;site.a");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(plan.should_fire("site.a"));
  EXPECT_EQ(plan.fires("site.a"), 10u);
}

TEST(FaultPlanSpec, ProbabilityRoundTripsExactly) {
  FaultPlan plan = FaultPlan::parse("seed=9;s:p=0.123456789012345");
  FaultPlan replay = FaultPlan::parse(plan.spec());
  // Bit-exact probability round-trip: both plans make identical draws.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(plan.should_fire("s"), replay.should_fire("s")) << "hit " << i;
  }
}

TEST(FaultPlanSpec, MalformedSpecAborts) {
  EXPECT_DEATH((void)FaultPlan::parse("seed=42;s:p=notanumber"), "");
  EXPECT_DEATH((void)FaultPlan::parse("seed=42;s:bogus_key=1"), "");
}

TEST(FaultPlanSchedule, UnnamedSitesNeverFire) {
  FaultPlan plan = FaultPlan::parse("seed=3;named.site");
  EXPECT_FALSE(plan.should_fire("other.site"));
  EXPECT_EQ(plan.fires(), 0u);
  EXPECT_EQ(plan.hits(), 1u);  // the hit is still counted globally
  EXPECT_EQ(plan.hits("other.site"), 0u);
}

TEST(FaultPlanSchedule, EveryNthFiresDeterministically) {
  FaultPlan plan = FaultPlan::parse("seed=5;s:every=3");
  std::vector<int> fired_hits;
  for (int hit = 1; hit <= 12; ++hit) {
    if (plan.should_fire("s")) fired_hits.push_back(hit);
  }
  EXPECT_EQ(fired_hits, (std::vector<int>{3, 6, 9, 12}));
}

TEST(FaultPlanSchedule, AfterSkipsEarlyHits) {
  FaultPlan plan = FaultPlan::parse("seed=5;s:after=4");
  for (int hit = 1; hit <= 4; ++hit) EXPECT_FALSE(plan.should_fire("s"));
  EXPECT_TRUE(plan.should_fire("s"));  // hit 5 is the first eligible hit
}

TEST(FaultPlanSchedule, BudgetBoundsTotalFires) {
  FaultPlan plan = FaultPlan::parse("seed=5;s:budget=2");
  u64 fires = 0;
  for (int i = 0; i < 50; ++i) fires += plan.should_fire("s") ? 1 : 0;
  EXPECT_EQ(fires, 2u);
  EXPECT_EQ(plan.fires("s"), 2u);
  EXPECT_EQ(plan.hits("s"), 50u);
}

TEST(FaultPlanSchedule, ProbabilityIsSeededAndReproducible) {
  auto run = [](u64 seed) {
    FaultPlan plan(seed);
    plan.add_site({.site = "s", .probability = 0.3});
    std::vector<bool> decisions;
    for (int i = 0; i < 100; ++i) decisions.push_back(plan.should_fire("s"));
    return decisions;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
  // p=0.3 over 100 draws fires a plausible number of times.
  const auto d = run(7);
  const auto fires = std::count(d.begin(), d.end(), true);
  EXPECT_GT(fires, 10);
  EXPECT_LT(fires, 60);
}

TEST(FaultPlanSchedule, SitesHavePrivateRngStreams) {
  // Interleaving hits at a second site must not perturb the first site's
  // firing sequence — each site draws from its own derived stream.
  auto run = [](bool interleave) {
    FaultPlan plan(11);
    plan.add_site({.site = "a", .probability = 0.5});
    plan.add_site({.site = "b", .probability = 0.5});
    std::vector<bool> a_decisions;
    for (int i = 0; i < 100; ++i) {
      if (interleave) (void)plan.should_fire("b");
      a_decisions.push_back(plan.should_fire("a"));
    }
    return a_decisions;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultPlanLog, RecordsOrderedFiresAndDigestMatchesOnReplay) {
  const std::string spec = "seed=21;a:p=0.4;b:every=2";
  auto run = [&spec] {
    FaultPlan plan = FaultPlan::parse(spec);
    for (int i = 0; i < 40; ++i) {
      (void)plan.should_fire("a");
      (void)plan.should_fire("b");
    }
    return std::pair<std::vector<FaultEvent>, u64>(plan.log(),
                                                   plan.log_digest());
  };
  const auto [log1, digest1] = run();
  const auto [log2, digest2] = run();
  ASSERT_FALSE(log1.empty());
  ASSERT_EQ(log1.size(), log2.size());
  for (size_t i = 0; i < log1.size(); ++i) {
    EXPECT_EQ(log1[i].site, log2[i].site);
    EXPECT_EQ(log1[i].hit, log2[i].hit);
    EXPECT_EQ(log1[i].fire, log2[i].fire);
  }
  EXPECT_EQ(digest1, digest2);
  // A different seed produces a different fault sequence (with overwhelming
  // probability over 40 probabilistic draws).
  FaultPlan other = FaultPlan::parse("seed=22;a:p=0.4;b:every=2");
  for (int i = 0; i < 40; ++i) {
    (void)other.should_fire("a");
    (void)other.should_fire("b");
  }
  EXPECT_NE(digest1, other.log_digest());
}

TEST(FaultPlanInstall, ScopedInstallAndNestingRestores) {
  EXPECT_EQ(FaultPlan::active(), nullptr);
  {
    ScopedFaultPlan outer("seed=1;x");
    EXPECT_EQ(FaultPlan::active(), &outer.plan());
    {
      ScopedFaultPlan inner("seed=2;y");
      EXPECT_EQ(FaultPlan::active(), &inner.plan());
    }
    EXPECT_EQ(FaultPlan::active(), &outer.plan());
  }
  EXPECT_EQ(FaultPlan::active(), nullptr);
}

TEST(FaultPlanInstall, MaybeInjectRoutesToActivePlan) {
  // No plan installed: hooks never fire.
  EXPECT_FALSE(maybe_inject("x"));
  {
    ScopedFaultPlan chaos("seed=4;x;y:budget=1");
    EXPECT_TRUE(maybe_inject("x"));
    EXPECT_TRUE(maybe_inject("y"));
    EXPECT_FALSE(maybe_inject("y"));  // budget exhausted
    EXPECT_FALSE(maybe_inject("unlisted"));
    EXPECT_EQ(chaos.plan().hits(), 4u);
  }
  EXPECT_FALSE(maybe_inject("x"));
}

#ifdef SDB_FAULT_INJECTION
TEST(FaultPlanInstall, InjectMacroFiresWhenCompiledIn) {
  ScopedFaultPlan chaos("seed=6;macro.site");
  EXPECT_TRUE(SDB_INJECT("macro.site"));
  EXPECT_FALSE(SDB_INJECT("other.site"));
}
#else
TEST(FaultPlanInstall, InjectMacroIsFalseWhenCompiledOut) {
  ScopedFaultPlan chaos("seed=6;macro.site");
  EXPECT_FALSE(SDB_INJECT("macro.site"));
  EXPECT_EQ(chaos.plan().hits(), 0u);  // macro did not even hit the plan
}
#endif

TEST(FaultPlanInstall, InjectedFaultCarriesSiteName) {
  const InjectedFault fault("spark.task.fail");
  EXPECT_EQ(fault.site(), "spark.task.fail");
  EXPECT_NE(fault.what(), nullptr);  // generic tag; site() carries the name
}

}  // namespace
}  // namespace sdb::fault
