#include "util/counters.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace sdb {
namespace {

TEST(Counters, NoActiveSinkIsNoop) {
  EXPECT_EQ(counters::active(), nullptr);
  counters::distance_evals(5);  // must not crash
}

TEST(Counters, ScopedCollection) {
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    counters::distance_evals(3);
    counters::hash_ops(2);
    counters::queue_ops(7);
  }
  EXPECT_EQ(wc.distance_evals, 3u);
  EXPECT_EQ(wc.hash_ops, 2u);
  EXPECT_EQ(wc.queue_ops, 7u);
  EXPECT_EQ(counters::active(), nullptr);
}

TEST(Counters, NestedScopesPropagateToOuter) {
  WorkCounters outer;
  {
    ScopedCounters a(&outer);
    counters::distance_evals(1);
    WorkCounters inner;
    {
      ScopedCounters b(&inner);
      counters::distance_evals(10);
    }
    EXPECT_EQ(inner.distance_evals, 10u);
    counters::distance_evals(1);
  }
  // outer = its own 2 + inner's 10
  EXPECT_EQ(outer.distance_evals, 12u);
}

TEST(Counters, PlusEqualsAggregatesAllFields) {
  WorkCounters a;
  a.distance_evals = 1;
  a.tree_nodes = 2;
  a.hash_ops = 3;
  a.queue_ops = 4;
  a.points_processed = 5;
  a.seed_ops = 6;
  a.merge_ops = 7;
  a.bytes_read = 8;
  a.bytes_written = 9;
  a.net_bytes = 10;
  WorkCounters b = a;
  b += a;
  EXPECT_EQ(b.distance_evals, 2u);
  EXPECT_EQ(b.tree_nodes, 4u);
  EXPECT_EQ(b.hash_ops, 6u);
  EXPECT_EQ(b.queue_ops, 8u);
  EXPECT_EQ(b.points_processed, 10u);
  EXPECT_EQ(b.seed_ops, 12u);
  EXPECT_EQ(b.merge_ops, 14u);
  EXPECT_EQ(b.bytes_read, 16u);
  EXPECT_EQ(b.bytes_written, 18u);
  EXPECT_EQ(b.net_bytes, 20u);
}

TEST(Counters, TotalOpsExcludesBytes) {
  WorkCounters a;
  a.distance_evals = 1;
  a.bytes_read = 1000;
  EXPECT_EQ(a.total_ops(), 1u);
}

TEST(Counters, ThreadLocalIsolation) {
  WorkCounters main_wc;
  ScopedCounters scope(&main_wc);
  std::thread worker([] {
    // The worker thread has no active sink; these must be dropped, not
    // leak into the main thread's scope.
    EXPECT_EQ(counters::active(), nullptr);
    counters::distance_evals(100);
    WorkCounters own;
    {
      ScopedCounters inner(&own);
      counters::distance_evals(7);
    }
    EXPECT_EQ(own.distance_evals, 7u);
  });
  worker.join();
  counters::distance_evals(1);
  // Only this thread's single increment lands in the scope's sink.
  EXPECT_EQ(main_wc.distance_evals, 1u);
}

}  // namespace
}  // namespace sdb
