// ConsistentHashRing unit suite — cross-process determinism, construction-
// order independence, balance sanity, and the consistent-hashing remap
// bound: membership changes move strictly fewer than 2/N of the key space.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "replica/hash_ring.hpp"

namespace sdb::replica {
namespace {

std::vector<u64> test_keys(size_t n) {
  std::vector<u64> keys;
  keys.reserve(n);
  // Deterministic spread via the ring's own point hash: hashing the key
  // index as a coordinate pair exercises the real routing input format.
  for (size_t i = 0; i < n; ++i) {
    const double coords[2] = {static_cast<double>(i), 0.25};
    keys.push_back(ConsistentHashRing::hash_point(coords));
  }
  return keys;
}

// The routing hash must never drift: a router in another process (or
// built by another compiler/stdlib — the reason std::hash is banned here)
// has to place every key identically. These vectors pin the exact
// function: the repo's FNV-1a variant plus the avalanche finalizer.
TEST(HashRing, HashVectorsArePinned) {
  EXPECT_EQ(ConsistentHashRing::hash_string(""), 15503018906515740718ull);
  EXPECT_EQ(ConsistentHashRing::hash_string("a"), 4875499902769123557ull);
  EXPECT_EQ(ConsistentHashRing::hash_string("abc"), 14335153734219026618ull);
  const double coords[2] = {1.5, -2.25};
  EXPECT_EQ(ConsistentHashRing::hash_point(coords),
            ConsistentHashRing::hash_bytes(coords, sizeof(coords)));
}

// Placement is a pure function of the member SET: two routers that learned
// the members in different orders (or in different processes) agree on
// every key.
TEST(HashRing, PlacementIndependentOfConstructionOrder) {
  ConsistentHashRing forward;
  ConsistentHashRing backward;
  ConsistentHashRing shuffled;
  const std::vector<std::string> ids = {"shard-0", "shard-1", "shard-2",
                                        "shard-3", "shard-4"};
  for (const auto& id : ids) forward.add_node(id);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) backward.add_node(*it);
  for (const auto& id : {"shard-3", "shard-0", "shard-4", "shard-2",
                         "shard-1"}) {
    shuffled.add_node(id);
  }
  for (u64 key : test_keys(2000)) {
    const std::string& owner = forward.node_for(key);
    EXPECT_EQ(owner, backward.node_for(key));
    EXPECT_EQ(owner, shuffled.node_for(key));
  }
}

// Re-adding after a remove restores the exact original placement (the ring
// carries no history).
TEST(HashRing, RemoveThenReaddRestoresPlacement) {
  ConsistentHashRing ring;
  for (int i = 0; i < 4; ++i) ring.add_node("shard-" + std::to_string(i));
  const std::vector<u64> keys = test_keys(1000);
  std::vector<std::string> before;
  for (u64 k : keys) before.push_back(ring.node_for(k));
  ring.remove_node("shard-2");
  ring.add_node("shard-2");
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ring.node_for(keys[i]), before[i]);
  }
}

TEST(HashRing, BalanceIsWithinVnodeTolerance) {
  constexpr size_t kNodes = 5;
  constexpr size_t kKeys = 20000;
  ConsistentHashRing ring(128);
  for (size_t i = 0; i < kNodes; ++i) {
    ring.add_node("shard-" + std::to_string(i));
  }
  std::map<std::string, size_t> counts;
  for (u64 k : test_keys(kKeys)) ++counts[ring.node_for(k)];
  EXPECT_EQ(counts.size(), kNodes);  // every node owns something
  for (const auto& [id, count] : counts) {
    // 128 vnodes keeps shares near 1/N; allow a generous 2x band.
    EXPECT_GT(count, kKeys / (2 * kNodes)) << id;
    EXPECT_LT(count, 2 * kKeys / kNodes) << id;
  }
}

// THE consistent-hashing property: adding one node to N moves strictly
// fewer than 2/(N+1) of the keys, and every moved key moves TO the new
// node — existing nodes never exchange keys with each other.
TEST(HashRing, AddingNodeMovesOnlyKeysToTheNewNode) {
  constexpr size_t kNodes = 5;
  constexpr size_t kKeys = 20000;
  ConsistentHashRing ring;
  for (size_t i = 0; i < kNodes; ++i) {
    ring.add_node("shard-" + std::to_string(i));
  }
  const std::vector<u64> keys = test_keys(kKeys);
  std::vector<std::string> before;
  for (u64 k : keys) before.push_back(ring.node_for(k));

  ring.add_node("shard-new");
  size_t moved = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const std::string& after = ring.node_for(keys[i]);
    if (after != before[i]) {
      ++moved;
      EXPECT_EQ(after, "shard-new") << "key moved between existing nodes";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 2 * kKeys / (kNodes + 1));
}

// Removing one node of N moves strictly fewer than 2/N of the keys, and
// only keys the removed node owned move — survivors keep everything.
TEST(HashRing, RemovingNodeMovesOnlyItsOwnKeys) {
  constexpr size_t kNodes = 5;
  constexpr size_t kKeys = 20000;
  ConsistentHashRing ring;
  for (size_t i = 0; i < kNodes; ++i) {
    ring.add_node("shard-" + std::to_string(i));
  }
  const std::vector<u64> keys = test_keys(kKeys);
  std::vector<std::string> before;
  for (u64 k : keys) before.push_back(ring.node_for(k));

  ring.remove_node("shard-2");
  size_t moved = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const std::string& after = ring.node_for(keys[i]);
    if (before[i] == "shard-2") {
      ++moved;
      EXPECT_NE(after, "shard-2");
    } else {
      EXPECT_EQ(after, before[i]) << "a survivor's key moved";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 2 * kKeys / kNodes);
}

TEST(HashRing, NodesForReturnsDistinctSuccessors) {
  ConsistentHashRing ring;
  for (int i = 0; i < 4; ++i) ring.add_node("shard-" + std::to_string(i));
  for (u64 key : test_keys(200)) {
    const std::vector<std::string> placement = ring.nodes_for(key, 3);
    ASSERT_EQ(placement.size(), 3u);
    EXPECT_EQ(placement[0], ring.node_for(key));  // head = the owner
    EXPECT_NE(placement[0], placement[1]);
    EXPECT_NE(placement[0], placement[2]);
    EXPECT_NE(placement[1], placement[2]);
  }
  // Asking for more members than exist returns all of them, once each.
  const std::vector<std::string> all = ring.nodes_for(test_keys(1)[0], 99);
  EXPECT_EQ(all.size(), 4u);
}

TEST(HashRing, AddAndRemoveUnknownAreNoOps) {
  ConsistentHashRing ring;
  ring.add_node("a");
  ring.add_node("a");  // duplicate add
  EXPECT_EQ(ring.size(), 1u);
  ring.remove_node("missing");
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.node_for(123u), "a");
}

}  // namespace
}  // namespace sdb::replica
