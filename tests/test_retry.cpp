// util/retry.hpp: bounded retry with exponential backoff + seeded jitter —
// the recovery primitive behind MiniDfs block I/O and MapReduce task retry.
#include "util/retry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sdb {
namespace {

TEST(Retry, FirstAttemptSuccessMakesNoRetries) {
  RetryStats stats;
  const int result = retry_call(RetryPolicy{}, 1, [] { return 7; }, &stats);
  EXPECT_EQ(result, 7);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.backoff_s, 0.0);
}

TEST(Retry, TransientFailuresAreRetriedUntilSuccess) {
  int calls = 0;
  RetryStats stats;
  const int result = retry_call(
      RetryPolicy{}, 2,
      [&calls] {
        if (++calls < 3) throw std::runtime_error("transient");
        return calls;
      },
      &stats);
  EXPECT_EQ(result, 3);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_GT(stats.backoff_s, 0.0);
}

TEST(Retry, PermanentFailureRethrowsAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  RetryStats stats;
  EXPECT_THROW(retry_call(
                   policy, 3,
                   [&calls]() -> int {
                     ++calls;
                     throw std::runtime_error("permanent");
                   },
                   &stats),
               std::runtime_error);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3u);
}

TEST(Retry, BackoffGrowsExponentiallyAndIsCapped) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.010;
  policy.multiplier = 2.0;
  policy.max_backoff_s = 0.030;
  policy.jitter = 0.0;  // deterministic schedule
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_seconds(policy, 1, rng), 0.010);
  EXPECT_DOUBLE_EQ(backoff_seconds(policy, 2, rng), 0.020);
  EXPECT_DOUBLE_EQ(backoff_seconds(policy, 3, rng), 0.030);  // capped
  EXPECT_DOUBLE_EQ(backoff_seconds(policy, 9, rng), 0.030);  // still capped
}

TEST(Retry, JitterStaysWithinConfiguredBand) {
  RetryPolicy policy;
  policy.initial_backoff_s = 0.100;
  policy.jitter = 0.25;
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const double b = backoff_seconds(policy, 1, rng);
    EXPECT_GE(b, 0.100 * 0.75);
    EXPECT_LE(b, 0.100 * 1.25);
  }
}

TEST(Retry, ScheduleIsReproducibleGivenSeed) {
  auto total_backoff = [](u64 seed) {
    RetryStats stats;
    int calls = 0;
    RetryPolicy policy;
    policy.max_attempts = 6;
    (void)retry_call(
        policy, seed,
        [&calls] {
          if (++calls < 6) throw std::runtime_error("transient");
          return 0;
        },
        &stats);
    return stats.backoff_s;
  };
  EXPECT_DOUBLE_EQ(total_backoff(5), total_backoff(5));
  EXPECT_NE(total_backoff(5), total_backoff(6));
}

TEST(Retry, ZeroAttemptPolicyAborts) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_DEATH((void)retry_call(policy, 1, [] { return 0; }), "");
}

}  // namespace
}  // namespace sdb
