#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace sdb {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] {});
  f.get();
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] {
      // A little real work.
      volatile double x = 0;
      for (int j = 0; j < 10000; ++j) x = x + j;
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ManySubmittersOneConsumerOrderIndependence) {
  ThreadPool pool(3);
  std::atomic<u64> sum{0};
  std::vector<std::future<void>> futures;
  for (u64 i = 1; i <= 1000; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 1000u * 1001u / 2);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
  }  // destructor must join without deadlock
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace sdb
