// Fault-tolerance: the motivation the paper gives for leaving MPI behind.
// Tasks are killed by injection and must be recomputed from lineage with
// identical results.
#include <gtest/gtest.h>

#include <numeric>

#include "minispark/spark_context.hpp"

namespace sdb::minispark {
namespace {

TEST(FaultTolerance, InjectedFailuresAreRetriedToSuccess) {
  ClusterConfig cfg;
  cfg.executors = 4;
  cfg.fault_injection_rate = 0.3;
  cfg.max_task_attempts = 6;
  cfg.straggler.fraction = 0.0;
  cfg.seed = 11;
  SparkContext ctx(cfg);
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto rdd = ctx.parallelize(data, 16);
  const auto out = ctx.collect(*rdd);
  EXPECT_EQ(out, data);  // result identical despite failures
  EXPECT_GT(ctx.last_job().failures_injected, 0u);
}

TEST(FaultTolerance, AttemptsRecordedPerTask) {
  ClusterConfig cfg;
  cfg.executors = 2;
  cfg.fault_injection_rate = 0.5;
  cfg.max_task_attempts = 8;
  cfg.straggler.fraction = 0.0;
  cfg.seed = 3;
  SparkContext ctx(cfg);
  auto rdd = ctx.parallelize(std::vector<int>(64, 1), 32);
  ctx.count(*rdd);
  u32 retried = 0;
  for (const auto& t : ctx.last_job().tasks) {
    EXPECT_GE(t.attempts, 1u);
    EXPECT_LE(t.attempts, 8u);
    if (t.attempts > 1) ++retried;
  }
  EXPECT_GT(retried, 0u);
}

TEST(FaultTolerance, RetriesChargeExtraLaunchOverhead) {
  // A retried task pays the task-launch overhead again (the recompute).
  ClusterConfig no_faults_cfg;
  no_faults_cfg.executors = 1;
  no_faults_cfg.straggler.fraction = 0.0;
  ClusterConfig faults_cfg = no_faults_cfg;
  faults_cfg.fault_injection_rate = 0.9;
  faults_cfg.max_task_attempts = 10;
  faults_cfg.seed = 5;

  SparkContext clean(no_faults_cfg);
  SparkContext faulty(faults_cfg);
  auto make = [](SparkContext& ctx) {
    auto rdd = ctx.parallelize(std::vector<int>(8, 1), 8);
    ctx.count(*rdd);
    return ctx.last_job().sim_executor_total_s;
  };
  EXPECT_GT(make(faulty), make(clean));
}

TEST(FaultTolerance, DeterministicGivenSeed) {
  auto run = [](u64 seed) {
    ClusterConfig cfg;
    cfg.executors = 4;
    cfg.fault_injection_rate = 0.4;
    cfg.seed = seed;
    cfg.straggler.fraction = 0.0;
    SparkContext ctx(cfg);
    auto rdd = ctx.parallelize(std::vector<int>(100, 2), 20);
    ctx.count(*rdd);
    std::vector<u32> attempts;
    for (const auto& t : ctx.last_job().tasks) attempts.push_back(t.attempts);
    return attempts;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultTolerance, CachedRddSurvivesCacheLossViaLineage) {
  // Spark reconstructs lost cached partitions from lineage; uncache_all()
  // models the loss, materialize() must transparently recompute.
  ClusterConfig cfg;
  cfg.executors = 2;
  cfg.straggler.fraction = 0.0;
  SparkContext ctx(cfg);
  auto base = ctx.parallelize(std::vector<int>{1, 2, 3, 4}, 2);
  auto mapped = base->map([](const int& x) { return x * 10; });
  mapped->cache();
  const auto first = ctx.collect(*mapped);
  mapped->uncache_all();  // simulated executor loss
  const auto second = ctx.collect(*mapped);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace sdb::minispark
