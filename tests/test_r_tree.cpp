#include "spatial/r_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "spatial/brute_force.hpp"
#include "spatial/kd_tree.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

PointSet random_points(i64 n, int dim, double side, u64 seed) {
  Rng rng(seed);
  PointSet ps(dim);
  std::vector<double> p(static_cast<size_t>(dim));
  for (i64 i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.uniform(0.0, side);
    ps.add(p);
  }
  return ps;
}

std::vector<PointId> sorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RTree, EmptyAndSingle) {
  PointSet empty(2);
  RTree tree(empty);
  std::vector<PointId> out;
  const double q[2] = {0, 0};
  tree.range_query(q, 1.0, out);
  EXPECT_TRUE(out.empty());

  PointSet one(2);
  const double a[2] = {3, 4};
  one.add(a);
  RTree single(one);
  single.check_invariants();
  single.range_query(a, 0.1, out);
  EXPECT_EQ(out, std::vector<PointId>{0});
}

TEST(RTree, InvariantsAfterManyInserts) {
  for (const int fanout : {4, 8, 16, 32}) {
    const PointSet ps = random_points(3000, 3, 100.0, 11);
    RTree tree(ps, fanout);
    tree.check_invariants();
    EXPECT_GT(tree.height(), 1);
    EXPECT_GT(tree.node_count(), 3000u / static_cast<u32>(fanout));
  }
}

class RTreeMatchesBruteForce
    : public ::testing::TestWithParam<std::tuple<int, i64, double>> {};

TEST_P(RTreeMatchesBruteForce, RangeQueriesAgree) {
  const auto [dim, n, eps] = GetParam();
  const PointSet ps = random_points(n, dim, 100.0, 31 + static_cast<u64>(dim));
  const RTree tree(ps, 12);
  const BruteForceIndex brute(ps);
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    std::vector<PointId> a;
    std::vector<PointId> b;
    tree.range_query(ps[q], eps, a);
    brute.range_query(ps[q], eps, b);
    EXPECT_EQ(sorted(a), sorted(b))
        << "dim=" << dim << " n=" << n << " eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeMatchesBruteForce,
    ::testing::Values(std::make_tuple(2, 500, 8.0),
                      std::make_tuple(2, 3000, 15.0),
                      std::make_tuple(3, 1500, 20.0),
                      std::make_tuple(5, 1000, 45.0),
                      std::make_tuple(10, 800, 70.0),
                      std::make_tuple(1, 300, 4.0)));

TEST(RTree, AgreesWithKdTree) {
  const PointSet ps = random_points(2000, 4, 50.0, 41);
  const RTree rtree(ps);
  const KdTree kdtree(ps);
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const PointId q = static_cast<PointId>(rng.uniform_index(ps.size()));
    std::vector<PointId> a;
    std::vector<PointId> b;
    rtree.range_query(ps[q], 10.0, a);
    kdtree.range_query(ps[q], 10.0, b);
    EXPECT_EQ(sorted(a), sorted(b));
  }
}

TEST(RTree, DuplicatePoints) {
  PointSet ps(2);
  const double a[2] = {1, 1};
  for (int i = 0; i < 100; ++i) ps.add(a);
  RTree tree(ps, 8);
  tree.check_invariants();
  std::vector<PointId> out;
  tree.range_query(a, 0.5, out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(RTree, NeighborBudgetRespected) {
  const PointSet ps = random_points(3000, 2, 10.0, 43);
  RTree tree(ps);
  QueryBudget budget;
  budget.max_neighbors = 7;
  std::vector<PointId> out;
  tree.range_query_budgeted(ps[0], 4.0, budget, out);
  EXPECT_LE(out.size(), 7u);
  std::vector<PointId> full;
  tree.range_query(ps[0], 4.0, full);
  EXPECT_GT(full.size(), 7u);
}

TEST(RTree, NodeBudgetStopsDescent) {
  const PointSet ps = random_points(5000, 3, 30.0, 47);
  RTree tree(ps, 8);
  QueryBudget budget;
  budget.max_nodes = 5;
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    std::vector<PointId> out;
    tree.range_query_budgeted(ps[0], 10.0, budget, out);
  }
  EXPECT_LE(wc.tree_nodes, 6u);
}

TEST(RTree, PrunesFarQueries) {
  // A query far from all data must touch only the root.
  const PointSet ps = random_points(2000, 2, 10.0, 53);
  RTree tree(ps);
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    std::vector<PointId> out;
    const double far[2] = {1e6, 1e6};
    tree.range_query(far, 1.0, out);
    EXPECT_TRUE(out.empty());
  }
  EXPECT_LE(wc.tree_nodes, 1u);
}

TEST(RTree, ByteSizeGrowsWithData) {
  const PointSet small = random_points(100, 2, 10.0, 59);
  const PointSet large = random_points(2000, 2, 10.0, 59);
  EXPECT_LT(RTree(small).byte_size(), RTree(large).byte_size());
}

}  // namespace
}  // namespace sdb
