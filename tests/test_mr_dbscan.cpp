#include "core/mr_dbscan.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/dbscan_seq.hpp"
#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

namespace fs = std::filesystem;

PointSet blob_data(i64 n, u64 seed) {
  Rng rng(seed);
  synth::GaussianMixtureConfig cfg;
  cfg.n = n;
  cfg.dim = 2;
  cfg.clusters = 3;
  cfg.sigma = 0.5;
  cfg.noise_fraction = 0.05;
  cfg.box_side = 50.0;
  return synth::gaussian_clusters(cfg, rng);
}

MRDbscanConfig base_config(const std::string& tag) {
  MRDbscanConfig cfg;
  cfg.params = {1.0, 5};
  cfg.partitions = 4;
  cfg.mr.work_dir = (fs::temp_directory_path() / ("sdb_mrdb_" + tag)).string();
  cfg.mr.cores = 4;
  return cfg;
}

TEST(MRDbscan, MatchesSequential) {
  const PointSet ps = blob_data(600, 23);
  const KdTree tree(ps);
  const DbscanParams params{1.0, 5};
  const auto seq = dbscan_sequential(ps, tree, params);
  const auto cfg = base_config("match");
  const auto report = mr_dbscan(ps, cfg);
  const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                    seq.clustering, report.clustering);
  EXPECT_TRUE(eq.equivalent) << eq.detail;
  fs::remove_all(cfg.mr.work_dir);
}

TEST(MRDbscan, AgreesWithSparkPipeline) {
  // The paper's two implementations compute the same clustering; only the
  // framework (and hence the time) differs.
  const PointSet ps = blob_data(500, 29);
  const auto cfg = base_config("agree");
  const auto mr_report = mr_dbscan(ps, cfg);

  minispark::ClusterConfig cluster;
  cluster.executors = 4;
  cluster.straggler.fraction = 0.0;
  minispark::SparkContext ctx(cluster);
  SparkDbscanConfig scfg;
  scfg.params = cfg.params;
  scfg.partitions = 4;
  SparkDbscan spark(ctx, scfg);
  const auto spark_report = spark.run(ps);

  EXPECT_EQ(mr_report.clustering.labels, spark_report.clustering.labels);
  fs::remove_all(cfg.mr.work_dir);
}

TEST(MRDbscan, SimTimeFarExceedsSpark) {
  // The Figure 7 claim: Spark is ~9-16x faster on 10k points. At test scale
  // we only assert the direction and a solid margin.
  const PointSet ps = blob_data(400, 31);
  const auto cfg = base_config("slow");
  const auto mr_report = mr_dbscan(ps, cfg);

  minispark::ClusterConfig cluster;
  cluster.executors = 4;
  cluster.straggler.fraction = 0.0;
  minispark::SparkContext ctx(cluster);
  SparkDbscanConfig scfg;
  scfg.params = cfg.params;
  scfg.partitions = 4;
  SparkDbscan spark(ctx, scfg);
  const auto spark_report = spark.run(ps);

  EXPECT_GT(mr_report.sim_total_s, 3.0 * spark_report.sim_total_s());
  fs::remove_all(cfg.mr.work_dir);
}

TEST(MRDbscan, MetricsPopulated) {
  const PointSet ps = blob_data(300, 37);
  const auto cfg = base_config("metrics");
  const auto report = mr_dbscan(ps, cfg);
  EXPECT_EQ(report.job.map.tasks, 4u);
  EXPECT_EQ(report.job.reduce.tasks, 1u);
  EXPECT_GT(report.job.spill_bytes, 0u);
  EXPECT_GT(report.job.shuffle_bytes, 0u);
  EXPECT_GT(report.partial_clusters, 0u);
  EXPECT_GT(report.sim_total_s, cfg.mr.job_startup_s);
  fs::remove_all(cfg.mr.work_dir);
}

TEST(MRDbscan, SinglePartition) {
  const PointSet ps = blob_data(200, 41);
  auto cfg = base_config("single");
  cfg.partitions = 1;
  const auto report = mr_dbscan(ps, cfg);
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, cfg.params);
  EXPECT_EQ(report.clustering.num_clusters, seq.clustering.num_clusters);
  fs::remove_all(cfg.mr.work_dir);
}

}  // namespace
}  // namespace sdb::dbscan
