// SIMD strip-kernel contract tests (see distance_simd.hpp).
//
// The dispatched kernel (AVX2/NEON when the host has it, scalar otherwise)
// returns an eps-decision bitmask and must match the scalar reference AND
// the per-point full-sum oracle bit-for-bit on every input — including
// exactly-eps boundary pairs (eps2 values chosen to land exactly on a
// point's squared distance), denormals, huge magnitudes, and partial final
// strips. The kernels abandon a lane's accumulation once its partial sum
// exceeds eps2; these tests pin that the abandonment never changes a
// decision. Cluster labels must not depend on which variant ran. The
// forced-scalar ctest cell (test_distance_kernels_scalar, SDB_SIMD=scalar in
// the environment) re-runs this whole binary with dispatch pinned to the
// fallback, so both sides of every comparison are exercised on SIMD hosts.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/dbscan_seq.hpp"
#include "geom/distance.hpp"
#include "spatial/brute_force.hpp"
#include "spatial/grid_index.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace sdb {
namespace {

/// Oracle mask: full-sum squared distance per lane (same ascending-d unfused
/// accumulation as the kernels), compared against eps2 with <= — the
/// decision every variant must reproduce regardless of how early it
/// abandons a lane.
u32 oracle_mask(std::span<const double> q,
                const std::vector<std::vector<double>>& rows, size_t pos,
                size_t count, double eps2) {
  u32 mask = 0;
  for (size_t j = 0; j < count; ++j) {
    if (squared_distance_uncounted(q, rows[pos + j]) <= eps2) {
      mask |= u32{1} << j;
    }
  }
  return mask;
}

/// Adversarial coordinate rows for one strip block: exact duplicates of the
/// query, partners offset by exactly eps along one axis, denormal and huge
/// magnitudes, negative zeros, and plain random values.
std::vector<std::vector<double>> adversarial_rows(size_t n, size_t dim,
                                                  double eps,
                                                  std::span<const double> q,
                                                  Rng& rng) {
  std::vector<std::vector<double>> rows;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    switch (i % 6) {
      case 0:  // exact duplicate of q -> distance exactly 0
        p.assign(q.begin(), q.end());
        break;
      case 1:  // exactly eps along one axis -> d2 lands on eps^2
        p.assign(q.begin(), q.end());
        p[rng.uniform_index(dim)] += eps;
        break;
      case 2:  // denormal coordinates
        for (auto& x : p) x = 1e-310;
        break;
      case 3:  // huge magnitudes (squares near the overflow edge)
        for (auto& x : p) x = (rng.uniform(0.0, 1.0) < 0.5 ? -1e150 : 1e150);
        break;
      case 4:  // negative zero vs positive zero
        for (auto& x : p) x = -0.0;
        break;
      default:
        for (auto& x : p) x = rng.uniform(-100.0, 100.0);
        break;
    }
    rows.push_back(std::move(p));
  }
  return rows;
}

class StripKernelBitExact : public ::testing::TestWithParam<size_t> {};

TEST_P(StripKernelBitExact, MatchesScalarReferenceAndPerPointLoop) {
  const size_t dim = GetParam();
  const double eps = 25.0;
  Rng rng(1234 + static_cast<u64>(dim));
  std::vector<double> q(dim);
  for (auto& x : q) x = rng.uniform(-100.0, 100.0);

  // Two full blocks plus a partial one, every lane offset exercised below.
  const size_t n = 2 * kDistanceStrip + 7;
  const auto rows = adversarial_rows(n, dim, eps, q, rng);
  std::vector<double> strips(strip_padded_len(n, dim), 0.0);
  for (size_t i = 0; i < n; ++i) strip_store_row(strips.data(), i, rows[i]);

  // Thresholds that make the decision a one-ulp question: 0 (only exact
  // duplicates pass), eps^2 exactly (the offset-by-eps partners land ON the
  // boundary), one ulp below it (they must flip out), exact squared
  // distances of individual rows (<= must include them), tiny and huge.
  std::vector<double> eps2s = {0.0, eps * eps,
                               std::nextafter(eps * eps, 0.0), 1e-310, 1e5,
                               1e300};
  for (size_t i = 0; i < n; i += 5) {
    eps2s.push_back(squared_distance_uncounted(q, rows[i]));
  }

  const simd::StripKernelFn dispatched = simd::detail::strip_kernel();
  for (const double eps2 : eps2s) {
    if (!std::isfinite(eps2)) continue;  // huge-coordinate rows overflow d2
    for (size_t pos = 0; pos < n;) {
      const size_t lane = pos % kDistanceStrip;
      const size_t count = std::min(kDistanceStrip - lane, n - pos);
      const double* lanes = strip_lane(strips.data(), pos, dim);
      const u32 got = dispatched(q.data(), dim, eps2, lanes, count);
      const u32 ref = simd::detail::strip_scalar(q.data(), dim, eps2, lanes,
                                                 count);
      const u32 want = oracle_mask(q, rows, pos, count, eps2);
      EXPECT_EQ(got, ref) << "dispatched vs strip_scalar: dim=" << dim
                          << " pos=" << pos << " eps2=" << eps2;
      EXPECT_EQ(got, want) << "dispatched vs full-sum oracle: dim=" << dim
                           << " pos=" << pos << " eps2=" << eps2;
      pos += count;
    }
  }
}

TEST_P(StripKernelBitExact, EveryLaneOffsetAndCount) {
  // A scan may enter a block at any lane and take any count up to the block
  // end — sweep them all, checking masks and that no bit at or past `count`
  // is ever set.
  const size_t dim = GetParam();
  const double eps = 4.0;
  Rng rng(99 + static_cast<u64>(dim));
  std::vector<double> q(dim);
  for (auto& x : q) x = rng.uniform(-10.0, 10.0);

  const size_t n = kDistanceStrip;
  const auto rows = adversarial_rows(n, dim, eps, q, rng);
  std::vector<double> strips(strip_padded_len(n, dim), 0.0);
  for (size_t i = 0; i < n; ++i) strip_store_row(strips.data(), i, rows[i]);

  const simd::StripKernelFn dispatched = simd::detail::strip_kernel();
  for (const double eps2 : {0.0, eps * eps, 1e4}) {
    for (size_t lane = 0; lane < kDistanceStrip; ++lane) {
      for (size_t count = 1; count <= kDistanceStrip - lane; ++count) {
        const u32 got = dispatched(q.data(), dim, eps2,
                                   strip_lane(strips.data(), lane, dim),
                                   count);
        const u32 want = oracle_mask(q, rows, lane, count, eps2);
        EXPECT_EQ(got, want)
            << "lane=" << lane << " count=" << count << " eps2=" << eps2;
        if (count < 32) {
          EXPECT_EQ(got >> count, 0u)
              << "mask bit at/past count: lane=" << lane
              << " count=" << count << " eps2=" << eps2;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, StripKernelBitExact,
                         ::testing::Values<size_t>(1, 2, 3, 10, 64, 96, 128));

// ---------------------------------------------------------------------------
// Partial-distance abandonment at high dimension. The probe schedule
// (abandon_probe_due) checks the accumulated partial sum at fixed depths;
// the d >= 64 regression was a stride that skipped the late probes, so
// far-away rows burned the whole row before abandoning — and one variant's
// probe placement disagreed with another's mask on boundary eps2 values.
// These fixtures make abandonment THE common case and require bit-identical
// masks against both the scalar reference and the full-sum oracle.
// ---------------------------------------------------------------------------

class AbandonmentHighDim : public ::testing::TestWithParam<size_t> {};

TEST_P(AbandonmentHighDim, AllFarRowsMatchScalarBitExactly) {
  const size_t dim = GetParam();
  Rng rng(5150 + static_cast<u64>(dim));
  std::vector<double> q(dim);
  for (auto& x : q) x = rng.uniform(-1.0, 1.0);

  // Rows engineered to cross eps2 at a controlled depth: the first
  // `cross_at` coordinates equal q's (contributing 0), the rest differ by
  // 10 each. Sweeping cross_at over the probe depths (1, 3, 7, 15, 31, 63,
  // 127) exercises every abandonment point of the schedule; the remaining
  // lanes are near-duplicates that must survive to the end.
  const size_t n = 2 * kDistanceStrip + 5;
  std::vector<std::vector<double>> rows;
  const size_t depths[] = {0, 1, 3, 7, 15, 31, 47, 63, 95, 127};
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(q.begin(), q.end());
    if (i % 3 == 0) {
      // near row: tiny perturbation in the LAST coordinate only — the
      // decision is made at the very end of the accumulation.
      p[dim - 1] += 0.5;
    } else {
      const size_t cross = std::min(depths[i % 10], dim - 1);
      for (size_t d = cross; d < dim; ++d) p[d] += 10.0;
    }
    rows.push_back(std::move(p));
  }
  std::vector<double> strips(strip_padded_len(n, dim), 0.0);
  for (size_t i = 0; i < n; ++i) strip_store_row(strips.data(), i, rows[i]);

  // eps2 ladder: thresholds between the per-depth crossing sums, so each
  // value abandons a different subset of rows at a different probe.
  std::vector<double> eps2s = {0.24, 0.26, 1.0, 100.0 - 1e-9, 100.0,
                               100.0 + 1e-9, 1600.0, 1e4, 1e6};
  for (size_t i = 0; i < n; i += 7) {
    eps2s.push_back(squared_distance_uncounted(q, rows[i]));
  }

  const simd::StripKernelFn dispatched = simd::detail::strip_kernel();
  for (const double eps2 : eps2s) {
    for (size_t pos = 0; pos < n;) {
      const size_t count = std::min(kDistanceStrip - pos % kDistanceStrip,
                                    n - pos);
      const double* lanes = strip_lane(strips.data(), pos, dim);
      const u32 got = dispatched(q.data(), dim, eps2, lanes, count);
      const u32 ref = simd::detail::strip_scalar(q.data(), dim, eps2, lanes,
                                                 count);
      const u32 want = oracle_mask(q, rows, pos, count, eps2);
      EXPECT_EQ(got, ref) << "dim=" << dim << " pos=" << pos
                          << " eps2=" << eps2;
      EXPECT_EQ(got, want) << "dim=" << dim << " pos=" << pos
                           << " eps2=" << eps2;
      pos += count;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, AbandonmentHighDim,
                         ::testing::Values<size_t>(64, 65, 96, 128));

// ---------------------------------------------------------------------------
// Index-level regression: partial final strips / strip-boundary counts.
// ---------------------------------------------------------------------------

class StripBoundarySizes : public ::testing::TestWithParam<size_t> {};

TEST_P(StripBoundarySizes, ReorderedTreeMatchesLegacyAndBruteExactly) {
  // Dataset sizes straddling the strip width: 1, kDistanceStrip +- 1, etc.
  // With leaf_size >= n the whole dataset is one leaf, so the query IS one
  // kernel call with a partial final strip — the tail-handling regression
  // this suite pins down. Results AND distance_evals must match the scalar
  // paths exactly.
  const size_t n = GetParam();
  const double eps = 30.0;
  Rng rng(7 + static_cast<u64>(n));
  PointSet ps(3);
  std::vector<double> p(3);
  for (size_t i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.uniform(0.0, 60.0);
    ps.add(p);
  }
  const KdTree legacy(ps, KdTreeOptions{.build_threads = 1, .reorder = false});
  const KdTree blocked(ps, KdTreeOptions{.build_threads = 1, .reorder = true});
  const BruteForceIndex brute(ps);

  for (size_t qi = 0; qi < n; ++qi) {
    const auto q = ps[static_cast<PointId>(qi)];
    WorkCounters wc_legacy, wc_blocked, wc_brute;
    std::vector<PointId> out_legacy, out_blocked, out_brute;
    {
      ScopedCounters scope(&wc_legacy);
      legacy.range_query(q, eps, out_legacy);
    }
    {
      ScopedCounters scope(&wc_blocked);
      blocked.range_query(q, eps, out_blocked);
    }
    {
      ScopedCounters scope(&wc_brute);
      brute.range_query(q, eps, out_brute);
    }
    EXPECT_EQ(out_blocked, out_legacy) << "n=" << n << " q=" << qi;
    EXPECT_EQ(wc_blocked.distance_evals, wc_legacy.distance_evals)
        << "n=" << n << " q=" << qi;
    EXPECT_EQ(wc_blocked.tree_nodes, wc_legacy.tree_nodes)
        << "n=" << n << " q=" << qi;
    // Brute force streams the same kernel over id order; same totals.
    std::sort(out_blocked.begin(), out_blocked.end());
    EXPECT_EQ(out_blocked, out_brute) << "n=" << n << " q=" << qi;
    EXPECT_EQ(wc_brute.distance_evals, n) << "n=" << n << " q=" << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(AroundStripWidth, StripBoundarySizes,
                         ::testing::Values<size_t>(1, kDistanceStrip - 1,
                                                   kDistanceStrip,
                                                   kDistanceStrip + 1,
                                                   2 * kDistanceStrip - 1,
                                                   2 * kDistanceStrip + 1));

// ---------------------------------------------------------------------------
// Budgeted queries through the strip kernel (strip_scan_budgeted): hits,
// order, distance_evals, and the early-stop row must be exactly the scalar
// loop's — across indexes, kernel variants, and strip-boundary sizes.
// ---------------------------------------------------------------------------

TEST(BudgetedStripScan, BitIdenticalAcrossVariantsAndLayouts) {
  // Dataset sizes straddling the strip width so the budget can fire inside
  // a full block, exactly at a block edge, and in a ragged tail; budgets
  // straddling the typical hit counts so both the "whole segment consumed"
  // and the "stop at bit j, charge j+1 rows" reconstruction paths run.
  for (const size_t n : {size_t{1}, kDistanceStrip - 1, kDistanceStrip,
                         kDistanceStrip + 1, 3 * kDistanceStrip + 5,
                         size_t{400}}) {
    Rng rng(31 + static_cast<u64>(n));
    PointSet ps(4);
    std::vector<double> p(4);
    for (size_t i = 0; i < n; ++i) {
      for (auto& x : p) x = rng.uniform(0.0, 50.0);
      ps.add(p);
    }
    const KdTree legacy(ps,
                        KdTreeOptions{.build_threads = 1, .reorder = false});
    const KdTree blocked(ps,
                         KdTreeOptions{.build_threads = 1, .reorder = true});
    const BruteForceIndex brute(ps);
    const GridIndex grid(ps, 20.0);

    for (const u64 max_neighbors : {u64{1}, u64{3}, u64{31}, u64{32}, u64{33},
                                    u64{64}}) {
      QueryBudget budget;
      budget.max_neighbors = max_neighbors;
      for (size_t qi = 0; qi < n; qi += (n > 64 ? 7 : 1)) {
        const auto q = ps[static_cast<PointId>(qi)];
        auto run = [&](const SpatialIndex& index) {
          WorkCounters wc;
          std::vector<PointId> hits;
          {
            ScopedCounters scope(&wc);
            index.range_query_budgeted(q, 20.0, budget, hits);
          }
          return std::make_pair(hits, wc.distance_evals);
        };
        // Kernel-vs-scalar parity on every index type.
        for (const SpatialIndex* index :
             {static_cast<const SpatialIndex*>(&blocked),
              static_cast<const SpatialIndex*>(&brute),
              static_cast<const SpatialIndex*>(&grid)}) {
          const auto dispatched = run(*index);
          simd::force_scalar(true);
          const auto scalar = run(*index);
          simd::force_scalar(false);
          EXPECT_EQ(dispatched.first, scalar.first)
              << index->name() << " n=" << n << " q=" << qi
              << " max_neighbors=" << max_neighbors;
          EXPECT_EQ(dispatched.second, scalar.second)
              << index->name() << " n=" << n << " q=" << qi
              << " max_neighbors=" << max_neighbors;
        }
        // Layout parity: the blocked tree must also reproduce the legacy
        // (gather-path) tree's hits and charges exactly — same visit order,
        // same stop row.
        const auto blocked_run = run(blocked);
        const auto legacy_run = run(legacy);
        EXPECT_EQ(blocked_run.first, legacy_run.first)
            << "n=" << n << " q=" << qi << " max_neighbors=" << max_neighbors;
        EXPECT_EQ(blocked_run.second, legacy_run.second)
            << "n=" << n << " q=" << qi << " max_neighbors=" << max_neighbors;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// kNN through the kernel filter: the heap-refinement path masks leaf
// candidates with the current worst heap distance and must return exactly
// the scalar path's neighbors and charges.
// ---------------------------------------------------------------------------

TEST(KnnKernelFilter, BitIdenticalScalarVsSimdAndLegacyLayout) {
  Rng rng(4242);
  synth::GaussianMixtureConfig cfg;
  cfg.n = 1200;
  cfg.dim = 6;
  cfg.clusters = 4;
  cfg.sigma = 3.0;
  cfg.box_side = 80.0;
  const PointSet ps = synth::gaussian_clusters(cfg, rng);
  const KdTree legacy(ps, KdTreeOptions{.build_threads = 1, .reorder = false});
  const KdTree blocked(ps, KdTreeOptions{.build_threads = 1, .reorder = true});

  for (const size_t k : {size_t{1}, size_t{4}, size_t{33}, size_t{200}}) {
    for (PointId q = 0; q < 60; ++q) {
      const auto dispatched = blocked.knn(ps[q], k);
      simd::force_scalar(true);
      const auto scalar = blocked.knn(ps[q], k);
      simd::force_scalar(false);
      EXPECT_EQ(dispatched, scalar) << "k=" << k << " q=" << q;
      EXPECT_EQ(dispatched, legacy.knn(ps[q], k)) << "k=" << k << " q=" << q;
    }
  }
}

TEST(KnnKernelFilter, HighDimAndTiesMatchScalarAndBruteOracle) {
  // The two fixed bugs this pins:
  //  * d=128 and k > leaf occupancy: the heap-cutoff filter masked leaf
  //    candidates with the entry-time k-th distance; with an unfilled heap
  //    (k larger than any single leaf) or late-probing dims the filter
  //    must pass EVERYTHING through to the exact refinement, never drop a
  //    true neighbor.
  //  * ties at exactly the k-th distance: duplicated points and partners at
  //    identical d2 must resolve by point id, identically on every variant
  //    and layout.
  Rng rng(8128);
  PointSet ps(128);
  std::vector<double> p(128);
  for (int i = 0; i < 500; ++i) {
    for (auto& x : p) x = rng.uniform(-5.0, 5.0);
    ps.add(p);
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.25) {
      ps.add(p);  // exact duplicate: d2 tie at every query
    } else if (roll < 0.5) {
      // Two partners at the same d2 from p, different ids: a tie exactly
      // at the k-th slot whenever the heap boundary lands on them.
      std::vector<double> partner = p;
      partner[0] += 2.0;
      ps.add(partner);
      partner = p;
      partner[0] -= 2.0;
      ps.add(partner);
    }
  }
  // Small leaves so k=64 exceeds any single leaf's occupancy.
  const KdTree legacy(ps, KdTreeOptions{.leaf_size = 8,
                                        .build_threads = 1,
                                        .reorder = false});
  const KdTree blocked(ps, KdTreeOptions{.leaf_size = 8,
                                         .build_threads = 1,
                                         .reorder = true});
  const BruteForceIndex brute(ps);
  const QueryBudget exact;

  for (const size_t k : {size_t{1}, size_t{9}, size_t{64}, size_t{200}}) {
    for (PointId q = 0; q < 50; ++q) {
      std::vector<KnnHit> oracle;
      brute.knn_query(ps[q], k, exact, oracle);
      std::vector<KnnHit> hits;
      blocked.knn_query(ps[q], k, exact, hits);
      EXPECT_EQ(hits, oracle) << "blocked k=" << k << " q=" << q;
      hits.clear();
      legacy.knn_query(ps[q], k, exact, hits);
      EXPECT_EQ(hits, oracle) << "legacy k=" << k << " q=" << q;
      hits.clear();
      simd::force_scalar(true);
      blocked.knn_query(ps[q], k, exact, hits);
      simd::force_scalar(false);
      EXPECT_EQ(hits, oracle) << "scalar k=" << k << " q=" << q;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch control.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, ForceScalarPinsFallbackAndResultsAreIdentical) {
  // Whatever the host dispatches, force_scalar(true) must land on the
  // scalar fallback, and a query batch run on each side must agree bit-
  // for-bit (same hits, same order, same counters).
  const PointSet ps = [] {
    Rng rng(555);
    synth::GaussianMixtureConfig cfg;
    cfg.n = 800;
    cfg.dim = 10;
    cfg.clusters = 3;
    cfg.sigma = 4.0;
    cfg.box_side = 60.0;
    return synth::gaussian_clusters(cfg, rng);
  }();
  const KdTree tree(ps, KdTreeOptions{.build_threads = 1, .reorder = true});

  auto run_queries = [&] {
    std::vector<PointId> all;
    WorkCounters wc;
    ScopedCounters scope(&wc);
    std::vector<PointId> hits;
    for (PointId q = 0; q < 100; ++q) {
      hits.clear();
      tree.range_query(ps[q], 9.0, hits);
      all.insert(all.end(), hits.begin(), hits.end());
    }
    return std::make_pair(all, wc.distance_evals);
  };

  const auto dispatched = run_queries();
  simd::force_scalar(true);
  EXPECT_EQ(simd::active_variant(), simd::KernelVariant::kScalar);
  EXPECT_TRUE(simd::scalar_forced());
  const auto scalar = run_queries();
  simd::force_scalar(false);
  EXPECT_FALSE(simd::scalar_forced());

  EXPECT_EQ(dispatched.first, scalar.first);
  EXPECT_EQ(dispatched.second, scalar.second);
}

TEST(KernelDispatch, EnvVarPinsScalar) {
  // The forced-scalar ctest cell runs with SDB_SIMD=scalar in the
  // environment; in that cell the dispatcher must never leave the fallback.
  const char* env = std::getenv("SDB_SIMD");
  if (env == nullptr) {
    GTEST_SKIP() << "SDB_SIMD not set; covered by the forced-scalar cell";
  }
  EXPECT_EQ(simd::active_variant(), simd::KernelVariant::kScalar)
      << "SDB_SIMD=" << env << " must pin the scalar fallback";
}

TEST(KernelDispatch, VariantNamesAreStable) {
  EXPECT_STREQ(simd::variant_name(simd::KernelVariant::kScalar), "scalar");
  EXPECT_STREQ(simd::variant_name(simd::KernelVariant::kAvx2), "avx2");
  EXPECT_STREQ(simd::variant_name(simd::KernelVariant::kAvx512), "avx512");
  EXPECT_STREQ(simd::variant_name(simd::KernelVariant::kNeon), "neon");
  EXPECT_NE(simd::active_variant_name(), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: cluster labels may not depend on the kernel.
// ---------------------------------------------------------------------------

TEST(KernelDeterminism, ClusterLabelsByteIdenticalScalarVsSimd) {
  // Exactly-eps pairs make eps-membership a one-ulp question — if any
  // variant rounded differently, a boundary point would flip core/border
  // status and the labelings would diverge.
  Rng rng(2024);
  const double eps = 25.0;
  PointSet ps(10);
  std::vector<double> p(10), partner(10);
  for (int i = 0; i < 600; ++i) {
    for (auto& x : p) x = rng.uniform(0.0, 200.0);
    ps.add(p);
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.2) {
      partner = p;
      partner[rng.uniform_index(10)] += eps;
      ps.add(partner);
    } else if (roll < 0.3) {
      ps.add(p);  // duplicate
    }
  }
  const dbscan::DbscanParams params{eps, 4};
  const KdTree tree(ps, KdTreeOptions{.build_threads = 1, .reorder = true});

  const auto with_dispatch = dbscan::dbscan_sequential(ps, tree, params);
  simd::force_scalar(true);
  const auto with_scalar = dbscan::dbscan_sequential(ps, tree, params);
  simd::force_scalar(false);

  EXPECT_EQ(with_dispatch.clustering.labels, with_scalar.clustering.labels);
  EXPECT_EQ(with_dispatch.core_points, with_scalar.core_points);
  EXPECT_EQ(with_dispatch.counters.distance_evals,
            with_scalar.counters.distance_evals);
  EXPECT_EQ(with_dispatch.counters.tree_nodes,
            with_scalar.counters.tree_nodes);
}

}  // namespace
}  // namespace sdb
