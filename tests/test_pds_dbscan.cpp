#include "core/pds_dbscan.hpp"

#include <gtest/gtest.h>

#include "core/dbscan_seq.hpp"
#include "core/quality.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

class PdsEqualsSequential
    : public ::testing::TestWithParam<std::tuple<u32, PartitionerKind>> {};

TEST_P(PdsEqualsSequential, StructuralEquivalence) {
  const auto [partitions, partitioner] = GetParam();
  Rng rng(77);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 800;
  gcfg.dim = 2;
  gcfg.clusters = 4;
  gcfg.sigma = 0.5;
  gcfg.noise_fraction = 0.1;
  gcfg.box_side = 40.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const DbscanParams params{0.9, 5};
  const KdTree tree(ps);
  const auto seq = dbscan_sequential(ps, tree, params);

  PdsDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = partitions;
  cfg.partitioner = partitioner;
  const auto pds = pds_dbscan(ps, tree, cfg);

  // Identical core sets.
  auto sorted = [](std::vector<PointId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(pds.core_points), sorted(seq.core_points));

  const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                    seq.clustering, pds.clustering);
  EXPECT_TRUE(eq.equivalent)
      << "partitions=" << partitions << " " << eq.detail;
  EXPECT_EQ(pds.clustering.num_clusters, seq.clustering.num_clusters);
  EXPECT_EQ(pds.clustering.noise_count(), seq.clustering.noise_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PdsEqualsSequential,
    ::testing::Combine(::testing::Values(1u, 3u, 8u, 16u),
                       ::testing::Values(PartitionerKind::kBlock,
                                         PartitionerKind::kKdSplit)));

TEST(PdsDbscan, CrossUnionsZeroWithOnePartition) {
  Rng rng(5);
  synth::UniformConfig ucfg;
  ucfg.n = 300;
  ucfg.dim = 2;
  ucfg.box_side = 12.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  PdsDbscanConfig cfg;
  cfg.params = {1.0, 4};
  cfg.partitions = 1;
  const auto pds = pds_dbscan(ps, tree, cfg);
  EXPECT_EQ(pds.cross_unions, 0u);
}

TEST(PdsDbscan, CrossUnionsGrowWithPartitions) {
  Rng rng(6);
  synth::UniformConfig ucfg;
  ucfg.n = 1000;
  ucfg.dim = 2;
  ucfg.box_side = 20.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  PdsDbscanConfig cfg;
  cfg.params = {1.0, 4};
  cfg.partitions = 2;
  const u64 at2 = pds_dbscan(ps, tree, cfg).cross_unions;
  cfg.partitions = 16;
  const u64 at16 = pds_dbscan(ps, tree, cfg).cross_unions;
  EXPECT_GT(at16, at2);
}

TEST(PdsDbscan, SpatialPartitioningCutsCommunication) {
  // PDSDBSCAN's merge volume shrinks with spatially coherent partitions —
  // the same effect the SEED design shows in bench_ablation_seeds.
  Rng rng(7);
  synth::UniformConfig ucfg;
  ucfg.n = 1500;
  ucfg.dim = 2;
  ucfg.box_side = 25.0;
  const PointSet raw = synth::uniform_points(ucfg, rng);
  const PointSet ps = synth::spatially_sorted(raw);
  const KdTree tree(ps);
  PdsDbscanConfig block;
  block.params = {1.0, 4};
  block.partitions = 8;
  block.partitioner = PartitionerKind::kBlock;  // spatial via sorted input
  PdsDbscanConfig random = block;
  random.partitioner = PartitionerKind::kRandom;
  EXPECT_LT(pds_dbscan(ps, tree, block).cross_unions,
            pds_dbscan(ps, tree, random).cross_unions / 2);
}

TEST(PdsDbscan, PhaseCountersPopulated) {
  Rng rng(8);
  synth::UniformConfig ucfg;
  ucfg.n = 400;
  ucfg.dim = 2;
  ucfg.box_side = 15.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  PdsDbscanConfig cfg;
  cfg.params = {1.0, 4};
  cfg.partitions = 4;
  const auto pds = pds_dbscan(ps, tree, cfg);
  ASSERT_EQ(pds.local_phase.size(), 4u);
  for (const auto& wc : pds.local_phase) {
    EXPECT_GT(wc.distance_evals, 0u);
  }
  EXPECT_GT(pds.merge_phase.merge_ops, 0u);
}

}  // namespace
}  // namespace sdb::dbscan
