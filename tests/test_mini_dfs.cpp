#include "dfs/mini_dfs.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/counters.hpp"

namespace sdb::dfs {
namespace {

namespace fs = std::filesystem;

class MiniDfsTest : public ::testing::Test {
 protected:
  MiniDfsTest()
      : root_((fs::temp_directory_path() / "sdb_dfs_test").string()) {
    fs::remove_all(root_);
  }
  ~MiniDfsTest() override { fs::remove_all(root_); }
  std::string root_;
};

TEST_F(MiniDfsTest, WriteReadRoundTrip) {
  MiniDfs dfs(root_, 16);
  const std::string content = "hello\nworld\nthis is a test\n";
  dfs.write("/data/points.txt", content);
  EXPECT_TRUE(dfs.exists("/data/points.txt"));
  EXPECT_EQ(dfs.read("/data/points.txt"), content);
}

TEST_F(MiniDfsTest, BlockSplitting) {
  MiniDfs dfs(root_, 10);
  const std::string content(35, 'x');
  const FileInfo& info = dfs.write("/f", content);
  EXPECT_EQ(info.size, 35u);
  ASSERT_EQ(info.blocks.size(), 4u);
  EXPECT_EQ(info.blocks[0].size, 10u);
  EXPECT_EQ(info.blocks[3].size, 5u);
}

TEST_F(MiniDfsTest, ReplicaPlacement) {
  MiniDfs dfs(root_, 8, /*datanodes=*/4, /*replication=*/3);
  const FileInfo& info = dfs.write("/f", std::string(20, 'y'));
  for (const auto& block : info.blocks) {
    EXPECT_EQ(block.replicas.size(), 3u);
    for (const u32 r : block.replicas) EXPECT_LT(r, 4u);
  }
}

TEST_F(MiniDfsTest, ReplicationClampedToDatanodes) {
  MiniDfs dfs(root_, 8, /*datanodes=*/2, /*replication=*/5);
  const FileInfo& info = dfs.write("/f", "abc");
  EXPECT_EQ(info.blocks[0].replicas.size(), 2u);
}

TEST_F(MiniDfsTest, TextSplitsReconstructRecordsExactlyOnce) {
  // Records straddle block boundaries; concatenating all splits must yield
  // the original records exactly once, in order (LineRecordReader law).
  MiniDfs dfs(root_, 7);  // tiny blocks => lots of straddling
  std::string content;
  for (int i = 0; i < 50; ++i) {
    content += "record-" + std::to_string(i) + "\n";
  }
  dfs.write("/records", content);
  const size_t blocks = dfs.stat("/records").blocks.size();
  std::string reassembled;
  for (size_t b = 0; b < blocks; ++b) {
    reassembled += dfs.read_text_split("/records", b);
  }
  EXPECT_EQ(reassembled, content);
}

TEST_F(MiniDfsTest, TextSplitLongRecordSpanningManyBlocks) {
  MiniDfs dfs(root_, 4);
  const std::string content = "aa\n" + std::string(20, 'b') + "\ncc\n";
  dfs.write("/long", content);
  const size_t blocks = dfs.stat("/long").blocks.size();
  std::string reassembled;
  for (size_t b = 0; b < blocks; ++b) {
    reassembled += dfs.read_text_split("/long", b);
  }
  EXPECT_EQ(reassembled, content);
}

TEST_F(MiniDfsTest, OverwriteReplacesContent) {
  MiniDfs dfs(root_, 16);
  dfs.write("/f", "first");
  dfs.write("/f", "second version");
  EXPECT_EQ(dfs.read("/f"), "second version");
}

TEST_F(MiniDfsTest, RemoveDeletesBlocks) {
  MiniDfs dfs(root_, 4);
  dfs.write("/f", "0123456789");
  dfs.remove("/f");
  EXPECT_FALSE(dfs.exists("/f"));
  // Block files are gone from the backing directory.
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(fs::path(root_) / "blocks")) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 0u);
}

TEST_F(MiniDfsTest, EmptyFile) {
  MiniDfs dfs(root_, 16);
  dfs.write("/empty", "");
  EXPECT_TRUE(dfs.exists("/empty"));
  EXPECT_EQ(dfs.read("/empty"), "");
  EXPECT_EQ(dfs.stat("/empty").blocks.size(), 0u);
}

TEST_F(MiniDfsTest, StatMissingAborts) {
  MiniDfs dfs(root_, 16);
  EXPECT_DEATH((void)dfs.stat("/missing"), "no such DFS file");
}

TEST_F(MiniDfsTest, ReadCountsBytes) {
  MiniDfs dfs(root_, 8);
  dfs.write("/f", std::string(30, 'z'));
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    (void)dfs.read("/f");
  }
  EXPECT_EQ(wc.bytes_read, 30u);
}

}  // namespace
}  // namespace sdb::dfs
