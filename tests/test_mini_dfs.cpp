#include "dfs/mini_dfs.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "util/counters.hpp"

namespace sdb::dfs {
namespace {

namespace fs = std::filesystem;

class MiniDfsTest : public ::testing::Test {
 protected:
  // Per-process root: `ctest -j` runs each case as its own process, and a
  // shared root means one test's remove_all() deletes another's live block
  // files mid-run.
  MiniDfsTest()
      : root_((fs::temp_directory_path() /
               ("sdb_dfs_test_p" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(root_);
  }
  ~MiniDfsTest() override { fs::remove_all(root_); }
  std::string root_;
};

TEST_F(MiniDfsTest, WriteReadRoundTrip) {
  MiniDfs dfs(root_, 16);
  const std::string content = "hello\nworld\nthis is a test\n";
  dfs.write("/data/points.txt", content);
  EXPECT_TRUE(dfs.exists("/data/points.txt"));
  EXPECT_EQ(dfs.read("/data/points.txt"), content);
}

TEST_F(MiniDfsTest, BlockSplitting) {
  MiniDfs dfs(root_, 10);
  const std::string content(35, 'x');
  const FileInfo& info = dfs.write("/f", content);
  EXPECT_EQ(info.size, 35u);
  ASSERT_EQ(info.blocks.size(), 4u);
  EXPECT_EQ(info.blocks[0].size, 10u);
  EXPECT_EQ(info.blocks[3].size, 5u);
}

TEST_F(MiniDfsTest, ReplicaPlacement) {
  MiniDfs dfs(root_, 8, /*datanodes=*/4, /*replication=*/3);
  const FileInfo& info = dfs.write("/f", std::string(20, 'y'));
  for (const auto& block : info.blocks) {
    EXPECT_EQ(block.replicas.size(), 3u);
    for (const u32 r : block.replicas) EXPECT_LT(r, 4u);
  }
}

TEST_F(MiniDfsTest, ReplicationClampedToDatanodes) {
  MiniDfs dfs(root_, 8, /*datanodes=*/2, /*replication=*/5);
  const FileInfo& info = dfs.write("/f", "abc");
  EXPECT_EQ(info.blocks[0].replicas.size(), 2u);
}

TEST_F(MiniDfsTest, TextSplitsReconstructRecordsExactlyOnce) {
  // Records straddle block boundaries; concatenating all splits must yield
  // the original records exactly once, in order (LineRecordReader law).
  MiniDfs dfs(root_, 7);  // tiny blocks => lots of straddling
  std::string content;
  for (int i = 0; i < 50; ++i) {
    content += "record-" + std::to_string(i) + "\n";
  }
  dfs.write("/records", content);
  const size_t blocks = dfs.stat("/records").blocks.size();
  std::string reassembled;
  for (size_t b = 0; b < blocks; ++b) {
    reassembled += dfs.read_text_split("/records", b);
  }
  EXPECT_EQ(reassembled, content);
}

TEST_F(MiniDfsTest, TextSplitLongRecordSpanningManyBlocks) {
  MiniDfs dfs(root_, 4);
  const std::string content = "aa\n" + std::string(20, 'b') + "\ncc\n";
  dfs.write("/long", content);
  const size_t blocks = dfs.stat("/long").blocks.size();
  std::string reassembled;
  for (size_t b = 0; b < blocks; ++b) {
    reassembled += dfs.read_text_split("/long", b);
  }
  EXPECT_EQ(reassembled, content);
}

TEST_F(MiniDfsTest, OverwriteReplacesContent) {
  MiniDfs dfs(root_, 16);
  dfs.write("/f", "first");
  dfs.write("/f", "second version");
  EXPECT_EQ(dfs.read("/f"), "second version");
}

TEST_F(MiniDfsTest, RemoveDeletesBlocks) {
  MiniDfs dfs(root_, 4);
  dfs.write("/f", "0123456789");
  dfs.remove("/f");
  EXPECT_FALSE(dfs.exists("/f"));
  // Block files are gone from the backing directory.
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(fs::path(root_) / "blocks")) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 0u);
}

TEST_F(MiniDfsTest, EmptyFile) {
  MiniDfs dfs(root_, 16);
  dfs.write("/empty", "");
  EXPECT_TRUE(dfs.exists("/empty"));
  EXPECT_EQ(dfs.read("/empty"), "");
  EXPECT_EQ(dfs.stat("/empty").blocks.size(), 0u);
}

TEST_F(MiniDfsTest, StatMissingAborts) {
  MiniDfs dfs(root_, 16);
  EXPECT_DEATH((void)dfs.stat("/missing"), "no such DFS file");
}

TEST_F(MiniDfsTest, ReadCountsBytes) {
  MiniDfs dfs(root_, 8);
  dfs.write("/f", std::string(30, 'z'));
  WorkCounters wc;
  {
    ScopedCounters scope(&wc);
    (void)dfs.read("/f");
  }
  EXPECT_EQ(wc.bytes_read, 30u);
}

// --- durable mode (atomic publish + manifest recovery) ---------------------

TEST_F(MiniDfsTest, DurableCatalogSurvivesReopen) {
  const std::string a(20, 'a');
  const std::string b = "hello\nworld\n";
  {
    MiniDfs dfs(root_, 8, 4, 2, Durability::kDurable);
    dfs.write("/x/a", a);
    dfs.write("/b", b);
  }
  MiniDfs reopened(root_, 8, 4, 2, Durability::kDurable);
  EXPECT_EQ(reopened.recovered_files(), 2u);
  EXPECT_EQ(reopened.dropped_files(), 0u);
  EXPECT_EQ(reopened.read("/x/a"), a);
  EXPECT_EQ(reopened.read("/b"), b);
  // New writes keep working after recovery (block-id allocation resumed past
  // the recovered ids, so nothing collides).
  reopened.write("/c", "fresh");
  EXPECT_EQ(reopened.read("/c"), "fresh");
  EXPECT_EQ(reopened.read("/x/a"), a);
}

TEST_F(MiniDfsTest, EphemeralCatalogDoesNotSurviveReopen) {
  {
    MiniDfs dfs(root_, 8);
    dfs.write("/f", "transient");
  }
  MiniDfs reopened(root_, 8);
  EXPECT_FALSE(reopened.exists("/f"));
  EXPECT_EQ(reopened.recovered_files(), 0u);
}

TEST_F(MiniDfsTest, TornBlockIsRejectedOnReadNotReturnedShort) {
  // The satellite invariant: a block whose bytes no longer match the
  // manifest (torn write, external truncation) must never be read back as a
  // short-but-valid file — the read fails loudly instead.
  MiniDfs dfs(root_, 8, 4, 1, Durability::kDurable);
  dfs.write("/f", std::string(24, 'q'));
  const u64 victim = dfs.stat("/f").blocks[1].id;
  fs::resize_file(fs::path(root_) / "blocks" / ("blk_" + std::to_string(victim)),
                  2);
  EXPECT_THROW((void)dfs.read("/f"), DfsTransientError);
  EXPECT_EQ(dfs.verify("/f"), std::vector<size_t>{1});
}

TEST_F(MiniDfsTest, CorruptBlockByteIsRejectedOnRead) {
  MiniDfs dfs(root_, 8, 4, 1, Durability::kDurable);
  dfs.write("/f", std::string(16, 'q'));
  const u64 victim = dfs.stat("/f").blocks[0].id;
  const fs::path bp =
      fs::path(root_) / "blocks" / ("blk_" + std::to_string(victim));
  // Same size, one flipped byte: only the checksum can catch it.
  std::fstream f(bp, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(3);
  f.put('Q');
  f.close();
  EXPECT_THROW((void)dfs.read("/f"), DfsTransientError);
  EXPECT_EQ(dfs.verify("/f"), std::vector<size_t>{0});
}

TEST_F(MiniDfsTest, DurableOverwriteIsAtomicAcrossReopen) {
  const std::string v2(40, 'b');
  {
    MiniDfs dfs(root_, 16, 4, 2, Durability::kDurable);
    dfs.write("/f", std::string(40, 'a'));
    dfs.write("/f", v2);  // overwrite republishes the manifest
  }
  MiniDfs reopened(root_, 16, 4, 2, Durability::kDurable);
  EXPECT_EQ(reopened.read("/f"), v2);
  EXPECT_TRUE(reopened.verify("/f").empty());
}

TEST_F(MiniDfsTest, DurableRemoveSurvivesReopen) {
  {
    MiniDfs dfs(root_, 8, 4, 2, Durability::kDurable);
    dfs.write("/f", "doomed");
    dfs.write("/keep", "kept");
    dfs.remove("/f");
  }
  MiniDfs reopened(root_, 8, 4, 2, Durability::kDurable);
  EXPECT_FALSE(reopened.exists("/f"));
  EXPECT_EQ(reopened.read("/keep"), "kept");
}

}  // namespace
}  // namespace sdb::dfs
