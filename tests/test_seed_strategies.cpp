// Seed-placement strategies: the paper's one-seed-per-partition rule vs the
// complete all-foreign rule, including a constructed case where the paper's
// rule under-merges (DESIGN.md §3).
#include <gtest/gtest.h>

#include "core/dbscan_seq.hpp"
#include "core/local_dbscan.hpp"
#include "core/merge.hpp"
#include "core/quality.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

std::vector<LocalClusterResult> run_locals(const PointSet& ps,
                                           const KdTree& tree,
                                           const Partitioning& partitioning,
                                           const DbscanParams& params,
                                           SeedStrategy strategy) {
  LocalDbscanConfig cfg;
  cfg.params = params;
  cfg.seed_strategy = strategy;
  std::vector<LocalClusterResult> locals;
  for (u32 p = 0; p < partitioning.num_partitions; ++p) {
    locals.push_back(
        local_dbscan(ps, tree, partitioning, static_cast<PartitionId>(p), cfg));
  }
  return locals;
}

u64 seed_count(const std::vector<LocalClusterResult>& locals) {
  u64 total = 0;
  for (const auto& local : locals) {
    for (const auto& pc : local.clusters) total += pc.seeds.size();
  }
  return total;
}

TEST(SeedStrategies, OnePerPartitionPlacesFewerSeeds) {
  Rng rng(51);
  synth::UniformConfig ucfg;
  ucfg.n = 1200;
  ucfg.dim = 2;
  ucfg.box_side = 25.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  const DbscanParams params{1.0, 4};
  const auto part = make_partitioning(PartitionerKind::kBlock, ps, 6);
  const auto one = run_locals(ps, tree, part, params, SeedStrategy::kOnePerPartition);
  const auto all = run_locals(ps, tree, part, params, SeedStrategy::kAllForeign);
  EXPECT_LT(seed_count(one), seed_count(all));
  EXPECT_GT(seed_count(one), 0u);
}

TEST(SeedStrategies, AllForeignNeverWorseThanPaperRule) {
  // With the sound union-find merge, the paper's one-seed-per-partition rule
  // can only LOSE merge edges relative to all-foreign (both record a subset
  // of the true cross-partition adjacencies; all-foreign records all of
  // them). Hence: #clusters(one) >= #clusters(all) == #clusters(sequential),
  // on every dataset/partitioning.
  Rng rng(53);
  synth::UniformConfig ucfg;
  ucfg.n = 1500;
  ucfg.dim = 2;
  ucfg.box_side = 28.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  const DbscanParams params{1.0, 4};
  const auto seq = dbscan_sequential(ps, tree, params);

  MergeOptions merge_options;
  merge_options.strategy = MergeStrategy::kUnionFind;
  for (const u32 partitions : {4u, 8u, 16u}) {
    const auto part =
        make_partitioning(PartitionerKind::kBlock, ps, partitions);
    const auto one = merge_partial_clusters(
        run_locals(ps, tree, part, params, SeedStrategy::kOnePerPartition),
        ps.size(), merge_options);
    const auto all = merge_partial_clusters(
        run_locals(ps, tree, part, params, SeedStrategy::kAllForeign),
        ps.size(), merge_options);
    EXPECT_EQ(all.clustering.num_clusters, seq.clustering.num_clusters);
    EXPECT_GE(one.clustering.num_clusters, all.clustering.num_clusters)
        << "partitions=" << partitions;
    const auto eq = check_equivalence(ps, tree, params, seq.core_points,
                                      seq.clustering, all.clustering);
    EXPECT_TRUE(eq.equivalent) << eq.detail;
  }
}

TEST(SeedStrategies, StrategiesAgreeWhenOnePartnerPerPartition) {
  // On well-separated blobs each partial cluster touches at most one foreign
  // cluster per partition, so both strategies merge identically.
  Rng rng(61);
  synth::GaussianMixtureConfig cfg;
  cfg.n = 600;
  cfg.dim = 2;
  cfg.clusters = 3;
  cfg.sigma = 0.3;
  cfg.noise_fraction = 0.0;
  cfg.box_side = 60.0;
  const PointSet ps = synth::gaussian_clusters(cfg, rng);
  const KdTree tree(ps);
  const DbscanParams params{0.7, 5};
  const auto part = make_partitioning(PartitionerKind::kBlock, ps, 4);

  MergeOptions merge_options;
  const auto one = merge_partial_clusters(
      run_locals(ps, tree, part, params, SeedStrategy::kOnePerPartition),
      ps.size(), merge_options);
  const auto all = merge_partial_clusters(
      run_locals(ps, tree, part, params, SeedStrategy::kAllForeign), ps.size(),
      merge_options);
  EXPECT_EQ(one.clustering.num_clusters, all.clustering.num_clusters);
}

TEST(SeedStrategies, SeedOpsCountedInBothModes) {
  Rng rng(71);
  synth::UniformConfig ucfg;
  ucfg.n = 400;
  ucfg.dim = 2;
  ucfg.box_side = 15.0;
  const PointSet ps = synth::uniform_points(ucfg, rng);
  const KdTree tree(ps);
  const auto part = make_partitioning(PartitionerKind::kBlock, ps, 4);
  for (const auto strategy :
       {SeedStrategy::kOnePerPartition, SeedStrategy::kAllForeign}) {
    LocalDbscanConfig cfg;
    cfg.params = {1.0, 4};
    cfg.seed_strategy = strategy;
    WorkCounters wc;
    {
      ScopedCounters scope(&wc);
      local_dbscan(ps, tree, part, 0, cfg);
    }
    EXPECT_GT(wc.seed_ops, 0u) << seed_strategy_name(strategy);
  }
}

TEST(SeedStrategies, Names) {
  EXPECT_STREQ(seed_strategy_name(SeedStrategy::kOnePerPartition),
               "one-per-partition");
  EXPECT_STREQ(seed_strategy_name(SeedStrategy::kAllForeign), "all-foreign");
}

}  // namespace
}  // namespace sdb::dbscan
