#include "minispark/rdd_ops.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "minispark/spark_context.hpp"

namespace sdb::minispark {
namespace {

ClusterConfig quiet(u32 executors = 4) {
  ClusterConfig cfg;
  cfg.executors = executors;
  cfg.straggler.fraction = 0.0;
  return cfg;
}

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(RddOps, FlatMapExpandsElements) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(iota_vec(5), 2);
  auto expanded = flat_map(
      std::shared_ptr<const Rdd<int>>(rdd),
      [](int& x) { return std::vector<int>(static_cast<size_t>(x), x); });
  const auto out = ctx.collect(*expanded);
  // 0 -> nothing, 1 -> {1}, 2 -> {2,2}, ...
  EXPECT_EQ(out, (std::vector<int>{1, 2, 2, 3, 3, 3, 4, 4, 4, 4}));
}

TEST(RddOps, FlatMapCanChangeType) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(std::vector<std::string>{"a b", "c"}, 1);
  auto words = flat_map(std::shared_ptr<const Rdd<std::string>>(rdd),
                        [](std::string& line) {
                          std::vector<std::string> out;
                          size_t pos = 0;
                          while (pos < line.size()) {
                            size_t sp = line.find(' ', pos);
                            if (sp == std::string::npos) sp = line.size();
                            out.push_back(line.substr(pos, sp - pos));
                            pos = sp + 1;
                          }
                          return out;
                        });
  EXPECT_EQ(ctx.collect(*words),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RddOps, UnionConcatenatesPartitions) {
  SparkContext ctx(quiet());
  auto a = ctx.parallelize(std::vector<int>{1, 2}, 2);
  auto b = ctx.parallelize(std::vector<int>{3, 4, 5}, 3);
  auto u = union_rdds<int>(a, b);
  EXPECT_EQ(u->num_partitions(), 5u);
  EXPECT_EQ(ctx.collect(*u), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(u->lineage_depth(), 1u);
  EXPECT_EQ(u->parents().size(), 2u);
}

TEST(RddOps, ZipWithIndexGlobalOrder) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(std::vector<std::string>{"a", "b", "c", "d", "e"},
                             3);
  auto zipped = zip_with_index<std::string>(rdd);
  const auto out = ctx.collect(*zipped);
  ASSERT_EQ(out.size(), 5u);
  for (u64 i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].second, i);
  }
  EXPECT_EQ(out[0].first, "a");
  EXPECT_EQ(out[4].first, "e");
}

TEST(RddOps, ZipWithIndexComputePartitionInIsolation) {
  // Computing only partition 2 must still see the right offsets.
  auto base = std::make_shared<ParallelizeRdd<int>>(iota_vec(10), 4);
  auto zipped = zip_with_index<int>(base);
  const auto part2 = zipped->compute(2);
  // Partitions of 10 over 4: sizes 2,3,2,3 -> partition 2 starts at 5.
  ASSERT_FALSE(part2.empty());
  EXPECT_EQ(part2[0].second, 5u);
}

TEST(RddOps, SampleFractionRoughlyHonored) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(iota_vec(10000), 8);
  auto sampled = sample<int>(rdd, 0.2, 99);
  const u64 n = ctx.count(*sampled);
  EXPECT_GT(n, 1700u);
  EXPECT_LT(n, 2300u);
}

TEST(RddOps, SampleDeterministicPerSeed) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(iota_vec(1000), 4);
  auto s1 = sample<int>(rdd, 0.5, 7);
  auto s2 = sample<int>(rdd, 0.5, 7);
  auto s3 = sample<int>(rdd, 0.5, 8);
  EXPECT_EQ(ctx.collect(*s1), ctx.collect(*s2));
  EXPECT_NE(ctx.collect(*s1), ctx.collect(*s3));
}

TEST(RddOps, GlomOneVectorPerPartition) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(iota_vec(10), 3);
  auto g = glom<int>(rdd);
  const auto out = ctx.collect(*g, /*bytes_per_element=*/64);
  ASSERT_EQ(out.size(), 3u);
  u64 total = 0;
  for (const auto& part : out) total += part.size();
  EXPECT_EQ(total, 10u);
}

TEST(RddOps, ComposeThroughPipeline) {
  SparkContext ctx(quiet());
  auto base = ctx.parallelize(iota_vec(100), 5);
  auto doubled = base->map([](const int& x) { return 2 * x; });
  auto sampled = sample<int>(doubled, 0.5, 3);
  auto expanded = flat_map(std::shared_ptr<const Rdd<int>>(sampled),
                           [](int& x) { return std::vector<int>{x, -x}; });
  const auto out = ctx.collect(*expanded);
  EXPECT_FALSE(out.empty());
  long sum = 0;
  for (const int x : out) sum += x;
  EXPECT_EQ(sum, 0);  // every x paired with -x
}

TEST(Actions, ReduceSums) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(iota_vec(101), 7);
  const int total = ctx.reduce(*rdd, [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 5050);
}

TEST(Actions, ReduceWithEmptyPartitions) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(std::vector<int>{5}, 8);  // 7 empty partitions
  EXPECT_EQ(ctx.reduce(*rdd, [](int a, int b) { return a + b; }), 5);
}

TEST(Actions, ReduceEmptyRddAborts) {
  // The whole context must be constructed INSIDE the death-test child: the
  // fork only carries the calling thread, so a pre-existing thread pool
  // would leave the child's tasks unserviced and hang the test.
  EXPECT_DEATH(
      {
        SparkContext ctx(quiet());
        auto rdd = ctx.parallelize(std::vector<int>{}, 3);
        ctx.reduce(*rdd, [](int a, int b) { return a + b; });
      },
      "empty RDD");
}

TEST(Actions, TakeRespectsPartitionOrder) {
  SparkContext ctx(quiet());
  auto rdd = ctx.parallelize(iota_vec(100), 10);
  EXPECT_EQ(ctx.take(*rdd, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ctx.take(*rdd, 0), (std::vector<int>{}));
  EXPECT_EQ(ctx.take(*rdd, 1000).size(), 100u);
}

}  // namespace
}  // namespace sdb::minispark
