// ClusterModel: classify agreement with batch DBSCAN, snapshot round-trip
// bit-exactness, and serialization robustness (truncated / corrupted buffers
// must fail cleanly, never crash or return a broken model).
#include "serve/cluster_model.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "core/dbscan_seq.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::serve {
namespace {

struct Fixture {
  PointSet points;
  dbscan::DbscanParams params;
  dbscan::SeqResult seq;
  std::vector<char> core_mask;

  explicit Fixture(i64 n = 600, double eps = 0.05, i64 minpts = 5,
                   u64 seed = 17) {
    Rng rng(seed);
    points = synth::blobs_2d(n, 4, 0.05, n / 10, rng);
    params = dbscan::DbscanParams{eps, minpts};
    const KdTree tree(points);
    seq = dbscan::dbscan_sequential(points, tree, params);
    core_mask.assign(points.size(), 0);
    for (const PointId id : seq.core_points) {
      core_mask[static_cast<size_t>(id)] = 1;
    }
  }

  [[nodiscard]] std::shared_ptr<ClusterModel> build(
      const ClusterModel::Options& options = {}) const {
    return ClusterModel::build(points, seq.clustering, core_mask, params,
                               options);
  }
};

TEST(ServeModel, ClassifyAgreesWithBatchOnNonBorderPoints) {
  const Fixture fx;
  const auto model = fx.build();
  u64 checked_core = 0;
  u64 checked_noise = 0;
  for (PointId id = 0; id < static_cast<PointId>(fx.points.size()); ++id) {
    const ClusterId batch = fx.seq.clustering.labels[static_cast<size_t>(id)];
    if (fx.core_mask[static_cast<size_t>(id)] != 0) {
      // A core point is within eps of itself -> must classify to its own
      // cluster.
      EXPECT_EQ(model->classify(fx.points[id]), batch) << "core id " << id;
      ++checked_core;
    } else if (batch == kNoise) {
      // A noise point has no core within eps, else DBSCAN would have made
      // it a border member.
      EXPECT_EQ(model->classify(fx.points[id]), kNoise) << "noise id " << id;
      ++checked_noise;
    }
    // Border points are skipped: their assignment is DBSCAN's documented
    // ambiguity (quality.hpp).
  }
  EXPECT_GT(checked_core, 0u);
  EXPECT_GT(checked_noise, 0u);
}

TEST(ServeModel, LabelOfMatchesSnapshotLabels) {
  const Fixture fx;
  const auto model = fx.build();
  for (PointId id = 0; id < static_cast<PointId>(fx.points.size()); ++id) {
    ASSERT_TRUE(model->has(id));
    EXPECT_EQ(model->label_of(id),
              fx.seq.clustering.labels[static_cast<size_t>(id)]);
  }
  EXPECT_FALSE(model->has(-1));
  EXPECT_FALSE(model->has(static_cast<PointId>(fx.points.size())));
}

TEST(ServeModel, SummaryAndStats) {
  const Fixture fx;
  const auto model = fx.build();
  const auto s = model->summary();
  EXPECT_EQ(s.total_points, fx.points.size());
  EXPECT_EQ(s.num_clusters, fx.seq.clustering.num_clusters);
  EXPECT_EQ(s.core_points, fx.seq.core_points.size());
  EXPECT_EQ(s.noise_points, fx.seq.clustering.noise_count());
  EXPECT_EQ(s.dim, 2);

  const auto sizes = fx.seq.clustering.cluster_sizes();
  u64 total_core = 0;
  for (u64 c = 0; c < s.num_clusters; ++c) {
    const auto& st = model->stats_of(static_cast<ClusterId>(c));
    EXPECT_EQ(st.size, sizes[c]);
    total_core += st.core_count;
    EXPECT_EQ(model->centroid_of(static_cast<ClusterId>(c)).size(), 2u);
  }
  EXPECT_EQ(total_core, fx.seq.core_points.size());
}

TEST(ServeModel, SubsampledCoreModelIsSmallerAndMostlyAgrees) {
  const Fixture fx(2000);
  const auto full = fx.build();
  ClusterModel::Options opts;
  opts.core_sample_fraction = 0.5;
  const auto half = fx.build(opts);
  EXPECT_LT(half->core_count(), full->core_count());
  EXPECT_GT(half->core_count(), 0u);
  // The DBSCAN++ trade: most core points still classify to their cluster;
  // the subsample can only turn answers into noise, never into a different
  // cluster's id for a core point's own location... unless a closer
  // retained core of another cluster exists, which eps-disjointness of
  // clusters prevents for distances <= eps.
  u64 agree = 0;
  u64 total = 0;
  for (const PointId id : fx.seq.core_points) {
    const ClusterId got = half->classify(fx.points[id]);
    const ClusterId want = fx.seq.clustering.labels[static_cast<size_t>(id)];
    ++total;
    if (got == want) ++agree;
    else EXPECT_EQ(got, kNoise) << "subsampling must not relabel, id " << id;
  }
  EXPECT_GT(agree, total / 2);
}

TEST(ServeModel, SaveLoadRoundTripsBitExactly) {
  const Fixture fx;
  const auto model = fx.build();
  const std::vector<char> bytes = model->save();
  std::string error;
  const auto loaded = ClusterModel::load(bytes, &error);
  ASSERT_NE(loaded, nullptr) << error;
  // Bit-exact round trip: re-serializing the loaded model reproduces the
  // original byte stream.
  EXPECT_EQ(loaded->save(), bytes);
  // And the loaded model answers identically.
  const auto s1 = model->summary();
  const auto s2 = loaded->summary();
  EXPECT_EQ(s1.total_points, s2.total_points);
  EXPECT_EQ(s1.num_clusters, s2.num_clusters);
  EXPECT_EQ(s1.core_points, s2.core_points);
  for (PointId id = 0; id < static_cast<PointId>(fx.points.size()); ++id) {
    EXPECT_EQ(loaded->label_of(id), model->label_of(id));
  }
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> q{rng.uniform(-2, 3), rng.uniform(-2, 3)};
    EXPECT_EQ(loaded->classify(q), model->classify(q));
  }
}

TEST(ServeModel, SaveLoadThroughFile) {
  const Fixture fx(200);
  const auto model = fx.build();
  const std::string path =
      (std::filesystem::temp_directory_path() / "sdb_serve_model_test.bin")
          .string();
  model->save_file(path);
  std::string error;
  const auto loaded = ClusterModel::load_file(path, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->save(), model->save());
  std::filesystem::remove(path);
}

TEST(ServeModel, EveryTruncationFailsCleanly) {
  const Fixture fx(120);
  const auto model = fx.build();
  const std::vector<char> bytes = model->save();
  ASSERT_GT(bytes.size(), 16u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<char> prefix(bytes.begin(),
                                   bytes.begin() + static_cast<long>(len));
    std::string error;
    const auto loaded = ClusterModel::load(prefix, &error);
    EXPECT_EQ(loaded, nullptr) << "truncation at " << len << " loaded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(ServeModel, EveryByteFlipFailsCleanly) {
  const Fixture fx(60);
  const auto model = fx.build();
  const std::vector<char> bytes = model->save();
  // Flip one bit of every byte position (the FNV checksum over the payload
  // makes any single-byte change detectable).
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<char> corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    std::string error;
    const auto loaded = ClusterModel::load(corrupt, &error);
    EXPECT_EQ(loaded, nullptr) << "flip at " << pos << " loaded";
  }
}

TEST(ServeModel, GarbageAndEmptyBuffersFailCleanly) {
  std::string error;
  EXPECT_EQ(ClusterModel::load({}, &error), nullptr);
  std::vector<char> junk(1024);
  Rng rng(9);
  for (auto& c : junk) c = static_cast<char>(rng.uniform_index(256));
  EXPECT_EQ(ClusterModel::load(junk, &error), nullptr);
  // A huge length prefix must not attempt a huge allocation: corrupt the
  // labels length field of a valid snapshot and recompute nothing — the
  // checksum already rejects it, so patch the checksum too and rely on the
  // bounds check.
  const Fixture fx(30);
  std::vector<char> bytes = fx.build()->save();
  // labels vec length sits right after magic+version+dim+eps+minpts+clusters
  const size_t len_off = 4 + 4 + 4 + 8 + 8 + 8;
  const u64 huge = ~0ull / 16;
  std::memcpy(bytes.data() + len_off, &huge, sizeof(huge));
  // Recompute the trailing checksum so the corruption reaches the reader.
  u64 h = 1469598103934665603ull;
  for (size_t i = 0; i + 8 < bytes.size(); ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  std::memcpy(bytes.data() + bytes.size() - 8, &h, sizeof(h));
  EXPECT_EQ(ClusterModel::load(bytes, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(ServeModel, EmptyClusteringModelServesNoise) {
  PointSet points(2);
  dbscan::Clustering clustering;
  const auto model = ClusterModel::build(points, clustering, {},
                                         dbscan::DbscanParams{0.5, 3});
  const std::vector<double> q{0.0, 0.0};
  EXPECT_EQ(model->classify(q), kNoise);
  EXPECT_EQ(model->summary().total_points, 0u);
  const auto bytes = model->save();
  std::string error;
  const auto loaded = ClusterModel::load(bytes, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->save(), bytes);
}

}  // namespace
}  // namespace sdb::serve
