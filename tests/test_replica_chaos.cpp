// Replication chaos grid — the acceptance proof for the WAL-shipping tier.
//
// Seeded FaultPlans drive every failure mode the subsystem claims to
// survive: dropped / duplicated / reordered / corrupted shipped batches,
// follower apply stalls, and SIGKILL of the primary mid-stream (the
// `replica.primary.kill` site fires inside the heartbeat, so the plan —
// not the test — decides when the primary dies). Each grid cell replays
// the SAME deterministic workload and checks, at every step:
//
//   * serve-once: an epoch visible on any serving surface (a follower's
//     model, or the committed model) always has ONE content digest —
//     recorded the first time it is seen, re-checked on every later
//     sighting, and cross-checked against a fault-free control run;
//   * monotonic committed watermark, committed model == committed epoch;
//   * epoch-bounded staleness: any non-redirected read is at most
//     `staleness_bound` epochs behind the committed watermark;
//   * reads never fail — through the failover window included.
//
// After the faulted phase, the plan is lifted and the set drained: every
// surviving node must converge to the primary's exact content (digest
// equality), proving drops/dups/reorders only ever DELAYED the stream.
// Kill cells additionally check no committed epoch is lost across the
// promotion, and one durable cell reopens the dead primary's on-disk WAL
// to cross-check its recovered state against the control digests.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "replica/replica_set.hpp"
#include "serve/model_registry.hpp"

namespace sdb::replica {
namespace {

namespace fs = std::filesystem;

#ifdef SDB_FAULT_INJECTION

constexpr int kIterations = 120;
constexpr u64 kStalenessBound = 3;

u64 model_digest(const serve::ClusterModel& model) {
  const std::vector<char> bytes = model.save();
  u64 h = 1469598103934665603ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct ChaosOutcome {
  /// Digest per epoch, first-seen on any SERVING surface; every later
  /// sighting must match.
  std::map<u64, u64> epoch_digest;
  u64 final_committed = 0;
  u64 final_primary_epoch = 0;
  u64 committed_at_first_kill = 0;  ///< 0 = primary never died
  u64 failovers = 0;
  u64 rejected_writes = 0;  ///< writes refused during failover windows
};

ReplicaSet::Options chaos_options(const std::string& dir) {
  ReplicaSet::Options opts;
  opts.replicas = 3;
  opts.staleness_bound = kStalenessBound;
  opts.heartbeat_timeout = 2;
  opts.batch_records = 8;
  opts.pipeline_batches = 2;
  opts.ack_replicas = 1;
  opts.dir = dir;
  opts.registry.params = dbscan::DbscanParams{0.2, 2};
  opts.registry.publish_every = 0;  // the workload publishes explicitly
  return opts;
}

/// Record/check digests of every SERVING surface. Pending primary epochs
/// are deliberately not sampled: they are not served (primary reads go to
/// the committed model) and may be reassigned after a failover.
void sweep_invariants(const ReplicaSet& set, ChaosOutcome* out,
                      u64* committed_floor) {
  const u64 committed = set.committed_epoch();
  ASSERT_GE(committed, *committed_floor) << "committed watermark regressed";
  *committed_floor = committed;

  const auto check = [&](const serve::ClusterModel& model) {
    const u64 e = model.epoch();
    const u64 d = model_digest(model);
    const auto [it, inserted] = out->epoch_digest.emplace(e, d);
    ASSERT_EQ(it->second, d) << "epoch " << e << " served with two contents";
  };
  const std::shared_ptr<const serve::ClusterModel> committed_model =
      set.committed_model();
  ASSERT_NE(committed_model, nullptr);
  ASSERT_EQ(committed_model->epoch(), committed);
  check(*committed_model);
  for (size_t i = 0; i < set.replicas(); ++i) {
    if (i == set.primary_index() || !set.alive(i)) continue;
    const auto reg = set.node_registry(i);
    ASSERT_NE(reg, nullptr);
    check(*reg->model());
  }

  // Epoch-bounded staleness + reads-never-fail, on every preference.
  const double q[2] = {0.35, 0.5};
  for (size_t i = 0; i < set.replicas(); ++i) {
    const ReplicaSet::ClassifyResult r = set.classify(q, i);
    if (!r.redirected) {
      ASSERT_LE(committed, r.epoch + kStalenessBound)
          << "node " << i << " served beyond the staleness bound";
    } else {
      ASSERT_EQ(r.epoch, committed);  // redirects land on the committed model
    }
  }
}

/// The deterministic workload, identical for every grid cell; only the
/// installed FaultPlan differs. Returns the run's observable history.
ChaosOutcome run_cell(const std::string& plan_spec, const std::string& dir) {
  ReplicaSet set(chaos_options(dir), 2);
  ChaosOutcome out;
  u64 committed_floor = 0;
  bool primary_was_live = true;
  {
    fault::FaultPlan plan = fault::FaultPlan::parse(
        plan_spec.empty() ? "seed=0" : plan_spec);
    fault::FaultPlan::install(&plan);
    for (int i = 0; i < kIterations; ++i) {
      const double coords[2] = {0.07 * (i % 25), 0.09 * (i / 25)};
      if (!set.insert(coords).has_value()) ++out.rejected_writes;
      if (i % 4 == 3 && !set.publish().has_value()) ++out.rejected_writes;
      if (i == 50) (void)set.compact();  // exercise the snapshot handshake
      set.pump();
      set.tick();
      if (primary_was_live && !set.has_live_primary()) {
        primary_was_live = false;
        if (out.committed_at_first_kill == 0) {
          out.committed_at_first_kill = set.committed_epoch();
        }
      }
      if (set.has_live_primary()) primary_was_live = true;
      sweep_invariants(set, &out, &committed_floor);
      if (::testing::Test::HasFatalFailure()) break;
    }
    fault::FaultPlan::install(nullptr);
  }
  // Drain: faults lifted, the stream must fully converge — channel faults
  // only ever delay, never lose or fork committed history.
  for (int i = 0; i < kIterations; ++i) {
    set.tick();  // finishes any in-progress failover
    set.pump();
    sweep_invariants(set, &out, &committed_floor);
    if (::testing::Test::HasFatalFailure()) return out;
  }
  EXPECT_TRUE(set.has_live_primary());
  const auto primary = set.node_registry(set.primary_index());
  out.final_primary_epoch = primary->epoch();
  out.final_committed = set.committed_epoch();
  out.failovers = set.failovers();
  EXPECT_EQ(out.final_committed, out.final_primary_epoch);
  const u64 primary_digest = model_digest(*primary->model());
  for (size_t i = 0; i < set.replicas(); ++i) {
    if (!set.alive(i)) continue;
    const auto reg = set.node_registry(i);
    EXPECT_EQ(reg->epoch(), out.final_primary_epoch) << "node " << i;
    EXPECT_EQ(model_digest(*reg->model()), primary_digest) << "node " << i;
  }
  return out;
}

/// Digest cross-check against the fault-free control. Channel faults never
/// touch the primary's stream, so every epoch's content is determined by
/// the insert sequence alone — any divergence is a replication bug. After
/// a kill the insert sequence forks (failover-window writes are refused),
/// so only epochs committed before the first kill are comparable.
void expect_matches_control(const ChaosOutcome& control,
                            const ChaosOutcome& cell) {
  const u64 comparable_through = cell.committed_at_first_kill == 0
                                     ? ~u64{0}
                                     : cell.committed_at_first_kill;
  for (const auto& [epoch, digest] : cell.epoch_digest) {
    if (epoch > comparable_through) continue;
    // Epoch 0 is a follower's pre-bootstrap empty model. The fault-free
    // control never observes it (followers apply the primary's base epoch-1
    // marker before the first sweep), but a cell that drops the very first
    // frame does. It is still serve-once WITHIN the cell via epoch_digest.
    if (epoch == 0) continue;
    const auto it = control.epoch_digest.find(epoch);
    ASSERT_NE(it, control.epoch_digest.end()) << "epoch " << epoch;
    EXPECT_EQ(it->second, digest) << "epoch " << epoch;
  }
}

class ReplicaChaosGrid : public ::testing::Test {
 protected:
  static const ChaosOutcome& control() {
    static const ChaosOutcome c = run_cell("", "");
    return c;
  }
};

TEST_F(ReplicaChaosGrid, ControlRunConverges) {
  const ChaosOutcome& c = control();
  EXPECT_EQ(c.failovers, 0u);
  EXPECT_EQ(c.rejected_writes, 0u);
  EXPECT_GT(c.final_committed, 30u);  // ~30 publishes + compaction
}

TEST_F(ReplicaChaosGrid, ChannelFaultGridMatchesControl) {
  const std::vector<std::string> plans = {
      "replica.ship.drop:p=0.3",
      "replica.ship.duplicate:p=0.4",
      "replica.ship.reorder:p=0.4",
      "replica.ship.corrupt:p=0.25",
      "replica.apply.stall:p=0.3",
      // everything at once, plus stalls
      "replica.ship.drop:p=0.15,budget=200;replica.ship.duplicate:p=0.2;"
      "replica.ship.reorder:p=0.2;replica.ship.corrupt:p=0.1;"
      "replica.apply.stall:p=0.1",
  };
  for (const u64 seed : {1, 2, 3}) {
    for (const std::string& sites : plans) {
      const std::string spec = "seed=" + std::to_string(seed) + ";" + sites;
      SCOPED_TRACE(spec);
      const ChaosOutcome cell = run_cell(spec, "");
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      EXPECT_EQ(cell.failovers, 0u);
      EXPECT_EQ(cell.committed_at_first_kill, 0u);
      // Faults only delay: the run ends at the control's exact history.
      EXPECT_EQ(cell.final_committed, control().final_committed);
      expect_matches_control(control(), cell);
    }
  }
}

TEST_F(ReplicaChaosGrid, PrimaryKillPromotesWithoutLosingCommits) {
  for (const u64 seed : {1, 2}) {
    // Deterministic kill on the 40th heartbeat; channel chaos throughout.
    const std::string spec =
        "seed=" + std::to_string(seed) +
        ";replica.primary.kill:every=40,budget=1;replica.ship.drop:p=0.2;"
        "replica.ship.duplicate:p=0.2;replica.ship.reorder:p=0.2";
    SCOPED_TRACE(spec);
    const ChaosOutcome cell = run_cell(spec, "");
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    EXPECT_EQ(cell.failovers, 1u);
    EXPECT_GT(cell.committed_at_first_kill, 0u);
    EXPECT_GT(cell.rejected_writes, 0u);  // the failover window existed
    // The acceptance bar: nothing committed before the kill was lost or
    // re-served with different content.
    EXPECT_GE(cell.final_committed, cell.committed_at_first_kill);
    expect_matches_control(control(), cell);
  }
}

TEST_F(ReplicaChaosGrid, CascadingKillsFallBackToLastReplica) {
  // Two kills: 3 replicas -> 2 -> 1. The last node commits alone
  // (required acks clamp to the live follower count) and reads never fail.
  const std::string spec =
      "seed=5;replica.primary.kill:every=35,budget=2;replica.ship.drop:p=0.1";
  const ChaosOutcome cell = run_cell(spec, "");
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  EXPECT_EQ(cell.failovers, 2u);
  EXPECT_GE(cell.final_committed, cell.committed_at_first_kill);
  expect_matches_control(control(), cell);
}

TEST_F(ReplicaChaosGrid, DurableKillCellAuditsDeadPrimaryWal) {
  // Same kill cell over durable node WALs, then reopen the dead primary's
  // directory as a standalone registry — its recovered committed state must
  // match the control run's digest for that epoch (the dead primary's
  // history up to its last durable commit is the control's history), and
  // its durable commit can never lag what the replica set had committed.
  const std::string dir =
      (fs::temp_directory_path() /
       ("sdb_replica_chaos_p" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  const std::string spec =
      "seed=9;replica.primary.kill:every=40,budget=1;"
      "replica.ship.drop:p=0.2;replica.ship.reorder:p=0.2";
  const ChaosOutcome cell = run_cell(spec, dir);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ASSERT_EQ(cell.failovers, 1u);
  expect_matches_control(control(), cell);

  serve::ModelRegistry::Config cfg;
  cfg.params = dbscan::DbscanParams{0.2, 2};
  cfg.publish_every = 0;
  cfg.wal_dir = dir + "/node_0";  // the killed original primary
  serve::ModelRegistry reopened(cfg, 2);
  const u64 durable_epoch = reopened.epoch();
  EXPECT_GE(durable_epoch, cell.committed_at_first_kill)
      << "the primary's durable commit lags the replicated watermark";
  const auto it = control().epoch_digest.find(durable_epoch);
  ASSERT_NE(it, control().epoch_digest.end());
  EXPECT_EQ(model_digest(*reopened.model()), it->second)
      << "on-disk recovery diverged from the replicated history";
  fs::remove_all(dir);
}

#else   // !SDB_FAULT_INJECTION
TEST(ReplicaChaosGrid, RequiresFaultInjectionBuild) { GTEST_SKIP(); }
#endif  // SDB_FAULT_INJECTION

}  // namespace
}  // namespace sdb::replica
