// KNN-DBSCAN backend contract (knn/knn_backend.hpp + the spark pipeline
// backend switch):
//   * KnnEpsGraph core/edge semantics against hand-checkable fixtures;
//   * the disagreement-bound harness: well-separated fixtures with an exact
//     graph score ZERO disagreement vs exact DBSCAN, embedding workloads
//     with the descent build stay within an asserted (ARI, fraction) bound;
//   * the partitioned engine (dbscan::SparkDbscanConfig{backend = kKnn}) agrees
//     with the single-node knn_dbscan reference end-to-end on d=64;
//   * serving snapshots (ClusterModel) built from the backend's output;
//   * job-identity isolation: knn runs can never alias exact-backend
//     checkpoints (backend-salted fingerprints).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/dbscan_seq.hpp"
#include "core/job_identity.hpp"
#include "core/quality.hpp"
#include "core/spark_dbscan.hpp"
#include "knn/disagreement.hpp"
#include "knn/knn_backend.hpp"
#include "serve/cluster_model.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::knn {
namespace {

PointSet embedding_fixture(i64 n, int dim, u64 seed,
                           synth::EmbeddingConfig* out_cfg = nullptr) {
  Rng rng(seed);
  synth::EmbeddingConfig cfg;
  cfg.n = n;
  cfg.dim = dim;
  cfg.clusters = 5;
  if (out_cfg != nullptr) *out_cfg = cfg;
  return synth::embedding_clusters(cfg, rng);
}

KnnGraphConfig exact_graph_cfg(u32 k) {
  KnnGraphConfig cfg;
  cfg.k = k;
  cfg.build = KnnGraphConfig::Build::kExact;
  return cfg;
}

// ---------------------------------------------------------------------------
// KnnEpsGraph semantics on a hand-checkable line fixture.
// ---------------------------------------------------------------------------

TEST(KnnEpsGraph, CoreBorderNoiseOnALine) {
  // Points on a line at x = 0, 1, 2, 3, 50 with eps = 1.2, minpts = 3:
  // 1 sees {0, 2} and 2 sees {1, 3}, so those two are core (1 + 2 >= 3);
  // 0 and 3 each see one core (border); 4 is noise.
  PointSet ps(2);
  ps.add(std::vector<double>{0.0, 0.0});
  ps.add(std::vector<double>{1.0, 0.0});
  ps.add(std::vector<double>{2.0, 0.0});
  ps.add(std::vector<double>{3.0, 0.0});
  ps.add(std::vector<double>{50.0, 0.0});

  const dbscan::DbscanParams params{1.2, 3};
  const KnnGraph g = build_knn_graph(ps, exact_graph_cfg(3));
  const KnnEpsGraph eps = KnnEpsGraph::build(g, params);

  ASSERT_EQ(eps.size(), 5u);
  EXPECT_FALSE(eps.is_core(0));  // one in-eps neighbor (1): 1+1 < 3
  EXPECT_TRUE(eps.is_core(1));
  EXPECT_TRUE(eps.is_core(2));
  EXPECT_FALSE(eps.is_core(3));
  EXPECT_FALSE(eps.is_core(4));
  EXPECT_EQ(eps.num_core(), 2u);

  const dbscan::Clustering c = knn_dbscan(eps);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.labels[0], 0);  // border of the only cluster
  EXPECT_EQ(c.labels[1], 0);
  EXPECT_EQ(c.labels[2], 0);
  EXPECT_EQ(c.labels[3], 0);  // border via edge to core 2
  EXPECT_EQ(c.labels[4], kNoise);
}

TEST(KnnEpsGraph, RequiresKAtLeastMinptsMinusOne) {
  PointSet ps(2);
  for (int i = 0; i < 8; ++i) {
    ps.add(std::vector<double>{static_cast<double>(i), 0.0});
  }
  const KnnGraph g = build_knn_graph(ps, exact_graph_cfg(3));
  EXPECT_DEATH((void)KnnEpsGraph::build(g, dbscan::DbscanParams{1.5, 5}),
               "minpts");
}

TEST(KnnEpsGraph, MutualEdgesAreSymmetricAndFlagsConsistent) {
  const PointSet ps = embedding_fixture(400, 64, 17);
  KnnGraphConfig cfg;  // descent build: rows are genuinely asymmetric
  cfg.k = 8;
  const KnnGraph g = build_knn_graph(ps, cfg);
  const dbscan::DbscanParams params{
      synth::embedding_suggested_eps(synth::EmbeddingConfig{
          .n = 400, .dim = 64, .clusters = 5}),
      5};
  const KnnEpsGraph eps = KnnEpsGraph::build(g, params);

  for (PointId i = 0; i < static_cast<PointId>(eps.size()); ++i) {
    const auto nbrs = eps.neighbors(i);
    const auto flags = eps.edge_flags(i);
    ASSERT_EQ(nbrs.size(), flags.size());
    for (size_t s = 0; s < nbrs.size(); ++s) {
      const PointId j = nbrs[s];
      ASSERT_NE(j, i) << "self edge";
      if (s > 0) EXPECT_LT(nbrs[s - 1], j) << "row not ascending by id";
      // Find i in j's row; the flag must be the mirror image.
      const auto jn = eps.neighbors(j);
      const auto jf = eps.edge_flags(j);
      bool found = false;
      for (size_t t = 0; t < jn.size(); ++t) {
        if (jn[t] != i) continue;
        found = true;
        const std::uint8_t mirrored = static_cast<std::uint8_t>(
            ((flags[s] & KnnEpsGraph::kFwd) != 0 ? KnnEpsGraph::kRev : 0) |
            ((flags[s] & KnnEpsGraph::kRev) != 0 ? KnnEpsGraph::kFwd : 0));
        EXPECT_EQ(jf[t], mirrored) << "i=" << i << " j=" << j;
        break;
      }
      EXPECT_TRUE(found) << "edge " << i << "->" << j << " not mirrored";
    }
  }
}

// ---------------------------------------------------------------------------
// Disagreement harness.
// ---------------------------------------------------------------------------

TEST(Disagreement, IdenticalClusteringsScoreZero) {
  dbscan::Clustering c;
  c.labels = {0, 0, 1, 1, kNoise};
  c.num_clusters = 2;
  const DisagreementReport r = measure_disagreement(c, c);
  EXPECT_EQ(r.points, 5u);
  EXPECT_EQ(r.ari, 1.0);
  EXPECT_EQ(r.label_disagreements, 0u);
  EXPECT_EQ(r.noise_mismatches, 0u);
  EXPECT_EQ(r.disagreement_frac(), 0.0);
  EXPECT_TRUE(r.within(1.0, 0.0));
}

TEST(Disagreement, CountsLabelAndNoiseMismatches) {
  dbscan::Clustering exact, approx;
  exact.labels = {0, 0, 0, 1, 1, kNoise};
  exact.num_clusters = 2;
  // One point defects from cluster 0 to cluster 1 (renumbered), and the
  // noise point got clustered.
  approx.labels = {5, 5, 7, 7, 7, 7};
  approx.num_clusters = 2;
  const DisagreementReport r = measure_disagreement(exact, approx);
  EXPECT_EQ(r.points, 6u);
  EXPECT_EQ(r.noise_mismatches, 1u);   // exact noise, approx clustered
  EXPECT_EQ(r.label_disagreements, 1u);  // point 2 outside the matching
  EXPECT_LT(r.ari, 1.0);
  EXPECT_FALSE(r.within(0.999, 0.0));
}

TEST(Disagreement, ZeroOnWellSeparatedGaussiansWithExactGraph) {
  // The parity fixture the ISSUE names: well-separated gaussian clusters,
  // exact kNN rows, eps covering intra-cluster distances with room to
  // spare. Every in-eps fact exact DBSCAN uses is visible in the graph
  // (k >= largest eps-neighborhood), so the backend must reproduce exact
  // DBSCAN point-for-point: ARI exactly 1, zero mismatches of any kind.
  Rng rng(2025);
  synth::GaussianMixtureConfig cfg;
  cfg.n = 600;
  cfg.dim = 8;
  cfg.clusters = 5;
  cfg.sigma = 0.5;
  cfg.center_separation_sigmas = 40.0;
  cfg.noise_fraction = 0.04;
  cfg.box_side = 400.0;
  const PointSet ps = synth::gaussian_clusters(cfg, rng);

  // eps ~ 4 sigma sqrt(2d): generous enough that each cluster is one dense
  // eps-connected blob, far below the 20-sigma center separation.
  const dbscan::DbscanParams params{
      4.0 * cfg.sigma * std::sqrt(2.0 * cfg.dim), 5};

  // k = 160 >= any eps-neighborhood (clusters hold ~120 points each), so
  // the exact kNN graph contains every in-eps edge.
  const DisagreementReport r =
      knn_vs_exact(ps, params, exact_graph_cfg(160));
  EXPECT_EQ(r.ari, 1.0);
  EXPECT_EQ(r.label_disagreements, 0u);
  EXPECT_EQ(r.noise_mismatches, 0u);
  EXPECT_EQ(r.core_mismatches, 0u);
  EXPECT_TRUE(r.within(1.0, 0.0));
}

TEST(Disagreement, BoundedOnEmbeddingWorkloadWithDescentGraph) {
  // The realistic cell: d=64 embedding clusters, approximate descent
  // graph, modest k. The backend may disagree with exact DBSCAN — but only
  // within the asserted bound (this is the bound bench_knn reports
  // against).
  synth::EmbeddingConfig cfg;
  const PointSet ps = embedding_fixture(1200, 64, 99, &cfg);
  const dbscan::DbscanParams params{synth::embedding_suggested_eps(cfg), 5};

  KnnGraphConfig knn_cfg;
  knn_cfg.k = 16;
  knn_cfg.build = KnnGraphConfig::Build::kDescent;
  const DisagreementReport r = knn_vs_exact(ps, params, knn_cfg);
  EXPECT_EQ(r.points, ps.size());
  EXPECT_TRUE(r.within(0.95, 0.02))
      << "ari=" << r.ari << " frac=" << r.disagreement_frac()
      << " labels=" << r.label_disagreements
      << " noise=" << r.noise_mismatches;
}

// ---------------------------------------------------------------------------
// Partitioned engine: spark pipeline with backend = kKnn.
// ---------------------------------------------------------------------------

dbscan::SparkDbscanConfig knn_spark_config(const dbscan::DbscanParams& params,
                                   u32 k, int partitions = 4) {
  dbscan::SparkDbscanConfig cfg;
  cfg.params = params;
  cfg.partitions = partitions;
  cfg.backend = dbscan::DbscanBackend::kKnn;
  cfg.knn.k = k;
  return cfg;
}

TEST(SparkKnnBackend, MatchesSingleNodeReferenceOnD64) {
  synth::EmbeddingConfig gen_cfg;
  const PointSet ps = embedding_fixture(1500, 64, 42, &gen_cfg);
  const dbscan::DbscanParams params{synth::embedding_suggested_eps(gen_cfg),
                                    5};

  // Single-node reference over the same graph config.
  KnnGraphConfig knn_cfg;
  knn_cfg.k = 16;
  const KnnGraph g = build_knn_graph(ps, knn_cfg);
  const KnnEpsGraph eps = KnnEpsGraph::build(g, params);
  const dbscan::Clustering reference = knn_dbscan(eps);

  minispark::ClusterConfig ccfg;
  ccfg.executors = 3;
  ccfg.straggler.fraction = 0.0;
  minispark::SparkContext ctx(ccfg);
  dbscan::SparkDbscanConfig cfg = knn_spark_config(params, knn_cfg.k);
  dbscan::SparkDbscan job(ctx, cfg);
  const dbscan::SparkDbscanReport report = job.run(ps);

  // Same graph, same core mask, same expansion rule -> the partitioned
  // result must be cluster-isomorphic to the reference: identical noise
  // set, ARI exactly 1 after matching.
  const DisagreementReport gap =
      measure_disagreement(reference, report.clustering);
  EXPECT_EQ(gap.ari, 1.0);
  EXPECT_EQ(gap.label_disagreements, 0u);
  EXPECT_EQ(gap.noise_mismatches, 0u);
  EXPECT_EQ(report.clustering.num_clusters, reference.num_clusters);

  // The report carries the graph-build telemetry.
  EXPECT_GT(report.knn_graph_rounds, 0u);
  EXPECT_GT(report.knn_graph_evals, 0u);
  EXPECT_GT(report.knn_eps_edges, 0u);
  EXPECT_GT(report.knn_core_points, 0u);
  EXPECT_EQ(report.knn_core_points, eps.num_core());
}

TEST(SparkKnnBackend, DeterministicAcrossRunsAndPartitioners) {
  synth::EmbeddingConfig gen_cfg;
  const PointSet ps = embedding_fixture(900, 64, 77, &gen_cfg);
  const dbscan::DbscanParams params{synth::embedding_suggested_eps(gen_cfg),
                                    5};

  auto run_labels = [&](dbscan::PartitionerKind partitioner) {
    minispark::ClusterConfig ccfg;
    ccfg.executors = 3;
    ccfg.straggler.fraction = 0.0;
    minispark::SparkContext ctx(ccfg);
    dbscan::SparkDbscanConfig cfg = knn_spark_config(params, 16);
    cfg.partitioner = partitioner;
    dbscan::SparkDbscan job(ctx, cfg);
    return job.run(ps).clustering;
  };

  const auto block1 = run_labels(dbscan::PartitionerKind::kBlock);
  const auto block2 = run_labels(dbscan::PartitionerKind::kBlock);
  EXPECT_EQ(block1.labels, block2.labels);

  // Partitioning must not change the clustering (the graph and core mask
  // are global; only the sweep is partitioned).
  const auto random = run_labels(dbscan::PartitionerKind::kRandom);
  const DisagreementReport gap = measure_disagreement(block1, random);
  EXPECT_EQ(gap.ari, 1.0);
  EXPECT_EQ(gap.label_disagreements, 0u);
  EXPECT_EQ(gap.noise_mismatches, 0u);
}

TEST(SparkKnnBackend, ExactBackendIsUnaffectedByKnnConfig) {
  // The backend switch must leave the exact path byte-identical: same
  // labels whether cfg.knn is default or not, as long as backend = kExact.
  Rng rng(5);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 400;
  gcfg.dim = 2;
  gcfg.clusters = 4;
  gcfg.sigma = 0.4;
  gcfg.box_side = 30.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, rng);
  const dbscan::DbscanParams params{0.8, 5};

  auto run_exact = [&](u32 knn_k) {
    minispark::ClusterConfig ccfg;
    ccfg.executors = 2;
    ccfg.straggler.fraction = 0.0;
    minispark::SparkContext ctx(ccfg);
    dbscan::SparkDbscanConfig cfg;
    cfg.params = params;
    cfg.partitions = 3;
    cfg.knn.k = knn_k;  // must be inert under kExact
    dbscan::SparkDbscan job(ctx, cfg);
    return job.run(ps).clustering.labels;
  };
  EXPECT_EQ(run_exact(16), run_exact(64));
}

// ---------------------------------------------------------------------------
// Serving snapshot from the KNN backend's output.
// ---------------------------------------------------------------------------

TEST(KnnServing, ClusterModelSnapshotClassifiesCorePointsHome) {
  synth::EmbeddingConfig gen_cfg;
  const PointSet ps = embedding_fixture(800, 64, 21, &gen_cfg);
  const dbscan::DbscanParams params{synth::embedding_suggested_eps(gen_cfg),
                                    5};
  const KnnGraph g = build_knn_graph(ps, exact_graph_cfg(16));
  const KnnEpsGraph eps = KnnEpsGraph::build(g, params);
  const dbscan::Clustering clustering = knn_dbscan(eps);

  const auto model =
      serve::ClusterModel::build(ps, clustering, eps.core_mask(), params);
  ASSERT_NE(model, nullptr);

  const auto summary = model->summary();
  EXPECT_EQ(summary.total_points, ps.size());
  EXPECT_EQ(summary.num_clusters,
            static_cast<u64>(clustering.num_clusters));
  EXPECT_EQ(summary.core_points, eps.num_core());
  EXPECT_EQ(summary.noise_points, clustering.noise_count());
  EXPECT_EQ(summary.dim, 64);

  // Every core point classifies into its own cluster (distance 0 to a
  // retained core), and label_of serves the snapshot labels verbatim.
  u64 checked = 0;
  for (PointId i = 0; i < static_cast<PointId>(ps.size()) && checked < 200;
       ++i) {
    if (!eps.is_core(i)) continue;
    ++checked;
    EXPECT_EQ(model->classify(ps[i]), clustering.labels[i]) << "i=" << i;
    EXPECT_EQ(model->label_of(i), clustering.labels[i]) << "i=" << i;
  }
  EXPECT_GT(checked, 0u);
}

// ---------------------------------------------------------------------------
// Job identity: knn runs never alias exact-backend checkpoints.
// ---------------------------------------------------------------------------

TEST(KnnJobIdentity, BackendSaltSeparatesFingerprints) {
  const PointSet ps = embedding_fixture(200, 16, 3);
  const u64 dataset = dbscan::dataset_digest(ps);
  const dbscan::DbscanParams params{1.0, 5};
  auto fp = [&](u64 salt) {
    return dbscan::job_fingerprint(
        "spark", dataset, params, dbscan::PartitionerKind::kBlock, 4, 42,
        dbscan::SeedStrategy::kAllForeign,
        dbscan::MergeStrategy::kUnionFind, dbscan::Codec::kCompact, salt);
  };
  EXPECT_NE(fp(0), fp(0x1234abcdULL))
      << "knn-backend runs must not reuse exact-backend checkpoints";
  // Distinct knn configs hash to distinct salts upstream; distinct salts
  // must keep fingerprints distinct here.
  EXPECT_NE(fp(0x1234abcdULL), fp(0x1234abceULL));

  // Salt 0 is the documented no-op: byte-identical to the legacy 9-arg
  // call, so pre-existing exact-backend checkpoints stay reachable.
  const u64 legacy = dbscan::job_fingerprint(
      "spark", dataset, params, dbscan::PartitionerKind::kBlock, 4, 42,
      dbscan::SeedStrategy::kAllForeign, dbscan::MergeStrategy::kUnionFind,
      dbscan::Codec::kCompact);
  EXPECT_EQ(fp(0), legacy);
}

}  // namespace
}  // namespace sdb::knn
