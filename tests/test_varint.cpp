#include "util/varint.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sdb {
namespace {

u64 roundtrip(u64 v) {
  std::vector<char> buf;
  put_varint(buf, v);
  size_t pos = 0;
  const u64 back = get_varint(buf.data(), buf.size(), pos);
  EXPECT_EQ(pos, buf.size());
  return back;
}

TEST(Varint, KnownValues) {
  EXPECT_EQ(roundtrip(0), 0u);
  EXPECT_EQ(roundtrip(1), 1u);
  EXPECT_EQ(roundtrip(127), 127u);
  EXPECT_EQ(roundtrip(128), 128u);
  EXPECT_EQ(roundtrip(300), 300u);
  EXPECT_EQ(roundtrip(~0ull), ~0ull);
}

TEST(Varint, EncodedSizes) {
  auto size_of = [](u64 v) {
    std::vector<char> buf;
    put_varint(buf, v);
    return buf.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 3u);
  EXPECT_EQ(size_of(~0ull), 10u);
}

TEST(Varint, RandomRoundTrip) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const u64 bits = rng.uniform_index(64);
    const u64 v = rng.uniform_index(~0ull >> bits ? (~0ull >> bits) : 1);
    EXPECT_EQ(roundtrip(v), v);
  }
}

TEST(Varint, TruncatedAborts) {
  std::vector<char> buf;
  put_varint(buf, 300);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_DEATH(get_varint(buf.data(), buf.size(), pos), "truncated");
}

TEST(Zigzag, SmallMagnitudesSmallCodes) {
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
  EXPECT_EQ(zigzag(-2), 3u);
  for (const i64 v : std::initializer_list<i64>{
           -1000000, -1, 0, 1, 7, 123456789,
           std::numeric_limits<i64>::min(), std::numeric_limits<i64>::max()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
}

TEST(IdList, RoundTripSorted) {
  std::vector<char> buf;
  put_id_list(buf, {100, 5, 7, 3000, 6});
  size_t pos = 0;
  EXPECT_EQ(get_id_list(buf.data(), buf.size(), pos),
            (std::vector<i64>{5, 6, 7, 100, 3000}));
  EXPECT_EQ(pos, buf.size());
}

TEST(IdList, Empty) {
  std::vector<char> buf;
  put_id_list(buf, {});
  size_t pos = 0;
  EXPECT_TRUE(get_id_list(buf.data(), buf.size(), pos).empty());
}

TEST(IdList, DenseIdsCompressWell) {
  // 1000 consecutive ids -> ~1 byte per delta after the first.
  std::vector<i64> ids;
  for (i64 i = 5000; i < 6000; ++i) ids.push_back(i);
  std::vector<char> buf;
  put_id_list(buf, ids);
  EXPECT_LT(buf.size(), 1100u);          // vs 8000 bytes fixed-width
  size_t pos = 0;
  EXPECT_EQ(get_id_list(buf.data(), buf.size(), pos), ids);
}

TEST(IdList, RandomRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<i64> ids;
    const u64 n = rng.uniform_index(200);
    for (u64 i = 0; i < n; ++i) {
      ids.push_back(static_cast<i64>(rng.uniform_index(1000000)));
    }
    std::vector<char> buf;
    put_id_list(buf, ids);
    std::sort(ids.begin(), ids.end());
    size_t pos = 0;
    EXPECT_EQ(get_id_list(buf.data(), buf.size(), pos), ids);
  }
}

}  // namespace
}  // namespace sdb
