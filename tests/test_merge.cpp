#include "core/merge.hpp"

#include <gtest/gtest.h>

#include "core/dbscan_seq.hpp"
#include "core/local_dbscan.hpp"
#include "spatial/kd_tree.hpp"
#include "synth/generators.hpp"
#include "util/rng.hpp"

namespace sdb::dbscan {
namespace {

// Build a LocalClusterResult by hand.
LocalClusterResult make_local(PartitionId partition,
                              std::vector<PartialCluster> clusters,
                              std::vector<PointId> cores,
                              std::vector<PointId> noise = {}) {
  LocalClusterResult r;
  r.partition = partition;
  r.clusters = std::move(clusters);
  r.core_points = std::move(cores);
  r.noise = std::move(noise);
  return r;
}

PartialCluster make_pc(PartitionId part, u32 idx, std::vector<PointId> members,
                       std::vector<PointId> seeds) {
  PartialCluster pc;
  pc.partition = part;
  pc.uid = PartialCluster::make_uid(part, idx);
  pc.members = std::move(members);
  pc.seeds = std::move(seeds);
  return pc;
}

TEST(Merge, PaperFigure4Example) {
  // Figure 4: C[0] in partition 0 (range 0-2499) holds seed 3000; C[5] in
  // partition 1 contains 3000 as a regular element -> one merged cluster.
  auto local0 = make_local(
      0, {make_pc(0, 0, {0, 5, 6, 11, 223, 2300, 23, 45, 1000}, {3000})},
      {0, 5, 6});
  auto local1 = make_local(
      1, {make_pc(1, 5, {3000, 2501, 4200, 2800, 2600, 3401, 3678}, {})},
      {3000, 2501});
  MergeOptions opt;
  opt.strategy = MergeStrategy::kPaperSinglePass;
  const auto merged = merge_partial_clusters({local0, local1}, 5000, opt);
  EXPECT_EQ(merged.clustering.num_clusters, 1u);
  EXPECT_EQ(merged.clustering.labels[0], merged.clustering.labels[3000]);
  EXPECT_EQ(merged.clustering.labels[2300], merged.clustering.labels[3678]);
  EXPECT_EQ(merged.stats.merges, 1u);
  EXPECT_EQ(merged.stats.partial_clusters, 2u);
}

TEST(Merge, NoSeedsNoMerges) {
  auto local0 = make_local(0, {make_pc(0, 0, {0, 1}, {})}, {0, 1});
  auto local1 = make_local(1, {make_pc(1, 0, {2, 3}, {})}, {2, 3});
  for (const auto strategy :
       {MergeStrategy::kPaperSinglePass, MergeStrategy::kUnionFind}) {
    MergeOptions opt;
    opt.strategy = strategy;
    const auto merged = merge_partial_clusters({local0, local1}, 4, opt);
    EXPECT_EQ(merged.clustering.num_clusters, 2u);
    EXPECT_EQ(merged.stats.merges, 0u);
  }
}

TEST(Merge, UnclaimedBorderSeedAdopted) {
  // Seed 5 is noise in partition 1 (cross-partition border point): the
  // cluster holding the seed must adopt it.
  auto local0 = make_local(0, {make_pc(0, 0, {0, 1, 2}, {5})}, {0, 1, 2});
  auto local1 = make_local(1, {}, {}, {5, 6});
  for (const auto strategy :
       {MergeStrategy::kPaperSinglePass, MergeStrategy::kUnionFind}) {
    MergeOptions opt;
    opt.strategy = strategy;
    const auto merged = merge_partial_clusters({local0, local1}, 8, opt);
    EXPECT_EQ(merged.clustering.labels[5], merged.clustering.labels[0]);
    EXPECT_EQ(merged.stats.border_claims, 1u);
    EXPECT_EQ(merged.clustering.labels[6], kNoise);
  }
}

TEST(Merge, UnionFindClosesChains) {
  // A -> B -> C chain: A's seed reaches B, B's seed reaches C. Union-find
  // must produce ONE cluster even though A and C never reference each other.
  auto a = make_local(0, {make_pc(0, 0, {0, 1}, {10})}, {0, 1});
  auto b = make_local(1, {make_pc(1, 0, {10, 11}, {20})}, {10, 11});
  auto c = make_local(2, {make_pc(2, 0, {20, 21}, {})}, {20, 21});
  MergeOptions opt;
  opt.strategy = MergeStrategy::kUnionFind;
  const auto merged = merge_partial_clusters({a, b, c}, 30, opt);
  EXPECT_EQ(merged.clustering.num_clusters, 1u);
  EXPECT_EQ(merged.clustering.labels[0], merged.clustering.labels[21]);
}

TEST(Merge, PaperSinglePassMissesAbsorbedClustersSeeds) {
  // The documented Algorithm 4 gap: once B is absorbed by A, B's own seeds
  // are never processed. Order the partial clusters so A absorbs B before
  // B's turn; C must stay separate under the paper pass but fuse under
  // union-find.
  auto a = make_local(0, {make_pc(0, 0, {0, 1}, {10})}, {0, 1});
  auto b = make_local(1, {make_pc(1, 0, {10, 11}, {20})}, {10, 11});
  auto c = make_local(2, {make_pc(2, 0, {20, 21}, {})}, {20, 21});
  MergeOptions paper;
  paper.strategy = MergeStrategy::kPaperSinglePass;
  const auto merged = merge_partial_clusters({a, b, c}, 30, paper);
  // A+B merged; C separate because B (absorbed, 'finished') never digs out
  // its seed 20.
  EXPECT_EQ(merged.clustering.num_clusters, 2u);
  EXPECT_EQ(merged.clustering.labels[0], merged.clustering.labels[10]);
  EXPECT_NE(merged.clustering.labels[0], merged.clustering.labels[20]);
}

TEST(Merge, PaperSinglePassOverMergesOnBorderSeeds) {
  // The second Algorithm 4 gap: seed 10 is a NON-core border member of B.
  // Sequential DBSCAN keeps A and B separate (border points do not connect
  // clusters); the paper pass merges them, union-find does not.
  auto a = make_local(0, {make_pc(0, 0, {0, 1}, {10})}, {0, 1});
  auto b = make_local(1, {make_pc(1, 0, {10, 11, 12}, {})}, {11, 12});
  MergeOptions paper;
  paper.strategy = MergeStrategy::kPaperSinglePass;
  const auto paper_merged = merge_partial_clusters({a, b}, 20, paper);
  EXPECT_EQ(paper_merged.clustering.num_clusters, 1u);

  MergeOptions uf;
  uf.strategy = MergeStrategy::kUnionFind;
  const auto uf_merged = merge_partial_clusters({a, b}, 20, uf);
  EXPECT_EQ(uf_merged.clustering.num_clusters, 2u);
  // The border point stays with its own partition's cluster.
  EXPECT_EQ(uf_merged.clustering.labels[10], uf_merged.clustering.labels[11]);
}

TEST(Merge, MinSizeFilterDropsSmallClusters) {
  auto local0 = make_local(
      0, {make_pc(0, 0, {0, 1, 2, 3}, {}), make_pc(0, 1, {7}, {})},
      {0, 1, 2, 3, 7});
  MergeOptions opt;
  opt.min_partial_cluster_size = 2;
  const auto merged = merge_partial_clusters({local0}, 10, opt);
  EXPECT_EQ(merged.clustering.num_clusters, 1u);
  EXPECT_EQ(merged.clustering.labels[7], kNoise);
  EXPECT_EQ(merged.stats.filtered_partial_clusters, 1u);
}

TEST(Merge, StatsReportKAndM) {
  auto local0 = make_local(
      0, {make_pc(0, 0, {0, 1, 2}, {}), make_pc(0, 1, {5, 6}, {})},
      {0, 1, 2, 5, 6});
  const auto merged = merge_partial_clusters({local0}, 10, {});
  EXPECT_EQ(merged.stats.partial_clusters, 2u);
  EXPECT_EQ(merged.stats.max_partial_cluster_size, 3u);
}

TEST(Merge, EmptyInput) {
  const auto merged = merge_partial_clusters({}, 5, {});
  EXPECT_EQ(merged.clustering.num_clusters, 0u);
  EXPECT_EQ(merged.clustering.labels.size(), 5u);
  EXPECT_EQ(merged.clustering.noise_count(), 5u);
}

TEST(Merge, CountersPopulated) {
  auto local0 = make_local(0, {make_pc(0, 0, {0, 1, 2}, {5})}, {0, 1, 2});
  auto local1 = make_local(1, {make_pc(1, 0, {5, 6}, {})}, {5, 6});
  const auto merged = merge_partial_clusters({local0, local1}, 8, {});
  EXPECT_GT(merged.counters.merge_ops, 0u);
}

// Relabel clusters by order of first appearance so two labelings can be
// compared up to cluster-id renaming (the id assignment is an artifact of
// processing order; the partition of points is the semantic content).
std::vector<ClusterId> canonical_labels(const Clustering& clustering) {
  std::vector<ClusterId> mapping(clustering.num_clusters, -1);
  std::vector<ClusterId> out;
  out.reserve(clustering.labels.size());
  ClusterId next = 0;
  for (const ClusterId l : clustering.labels) {
    if (l == kNoise) {
      out.push_back(kNoise);
      continue;
    }
    if (mapping[static_cast<size_t>(l)] < 0) {
      mapping[static_cast<size_t>(l)] = next++;
    }
    out.push_back(mapping[static_cast<size_t>(l)]);
  }
  return out;
}

// Property (the idempotent-accumulator contract's other half): the driver
// merge must not care in which order partial results arrive. Task retries,
// speculative duplicates and scheduling jitter all permute accumulator
// arrival order, so any order sensitivity here would turn a recovered run
// into a silently different clustering.
TEST(Merge, OrderInvariantAcrossArrivalPermutations) {
  Rng data_rng(321);
  synth::GaussianMixtureConfig gcfg;
  gcfg.n = 600;
  gcfg.dim = 2;
  gcfg.clusters = 4;
  gcfg.sigma = 0.4;
  gcfg.noise_fraction = 0.08;
  gcfg.box_side = 35.0;
  const PointSet ps = synth::gaussian_clusters(gcfg, data_rng);
  const DbscanParams params{0.8, 5};
  const KdTree tree(ps);

  constexpr u32 kPartitions = 6;
  const Partitioning partitioning =
      make_partitioning(PartitionerKind::kBlock, ps, kPartitions, 77);
  LocalDbscanConfig local_cfg;
  local_cfg.params = params;
  local_cfg.seed_strategy = SeedStrategy::kAllForeign;
  std::vector<LocalClusterResult> locals;
  for (u32 p = 0; p < kPartitions; ++p) {
    locals.push_back(local_dbscan(ps, tree, partitioning,
                                  static_cast<PartitionId>(p), local_cfg));
  }

  for (const auto strategy :
       {MergeStrategy::kUnionFind, MergeStrategy::kPaperSinglePass}) {
    MergeOptions opt;
    opt.strategy = strategy;
    const auto baseline =
        canonical_labels(merge_partial_clusters(locals, ps.size(), opt)
                             .clustering);
    for (u64 seed = 1; seed <= 50; ++seed) {
      std::vector<LocalClusterResult> shuffled = locals;
      Rng rng(seed);
      rng.shuffle(shuffled);
      const auto merged = merge_partial_clusters(shuffled, ps.size(), opt);
      EXPECT_EQ(canonical_labels(merged.clustering), baseline)
          << "strategy=" << static_cast<int>(strategy) << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace sdb::dbscan
