# Empty compiler generated dependencies file for geo_hotspots.
# This may be replaced when dependencies are built.
