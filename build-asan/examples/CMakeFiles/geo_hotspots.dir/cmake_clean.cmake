file(REMOVE_RECURSE
  "CMakeFiles/geo_hotspots.dir/geo_hotspots.cpp.o"
  "CMakeFiles/geo_hotspots.dir/geo_hotspots.cpp.o.d"
  "geo_hotspots"
  "geo_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
