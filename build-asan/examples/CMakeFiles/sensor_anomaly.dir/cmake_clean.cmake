file(REMOVE_RECURSE
  "CMakeFiles/sensor_anomaly.dir/sensor_anomaly.cpp.o"
  "CMakeFiles/sensor_anomaly.dir/sensor_anomaly.cpp.o.d"
  "sensor_anomaly"
  "sensor_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
