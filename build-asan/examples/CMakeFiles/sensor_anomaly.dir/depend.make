# Empty dependencies file for sensor_anomaly.
# This may be replaced when dependencies are built.
