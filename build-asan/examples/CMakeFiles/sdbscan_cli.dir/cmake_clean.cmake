file(REMOVE_RECURSE
  "CMakeFiles/sdbscan_cli.dir/sdbscan_cli.cpp.o"
  "CMakeFiles/sdbscan_cli.dir/sdbscan_cli.cpp.o.d"
  "sdbscan_cli"
  "sdbscan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdbscan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
