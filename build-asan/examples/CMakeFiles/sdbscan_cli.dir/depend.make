# Empty dependencies file for sdbscan_cli.
# This may be replaced when dependencies are built.
