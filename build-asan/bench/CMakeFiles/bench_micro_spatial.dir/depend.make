# Empty dependencies file for bench_micro_spatial.
# This may be replaced when dependencies are built.
