file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_spatial.dir/bench_micro_spatial.cpp.o"
  "CMakeFiles/bench_micro_spatial.dir/bench_micro_spatial.cpp.o.d"
  "bench_micro_spatial"
  "bench_micro_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
