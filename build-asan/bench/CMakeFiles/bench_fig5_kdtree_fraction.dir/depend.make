# Empty dependencies file for bench_fig5_kdtree_fraction.
# This may be replaced when dependencies are built.
