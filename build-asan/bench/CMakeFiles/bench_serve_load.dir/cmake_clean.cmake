file(REMOVE_RECURSE
  "CMakeFiles/bench_serve_load.dir/bench_serve_load.cpp.o"
  "CMakeFiles/bench_serve_load.dir/bench_serve_load.cpp.o.d"
  "bench_serve_load"
  "bench_serve_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
