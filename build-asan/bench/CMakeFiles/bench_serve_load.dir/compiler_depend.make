# Empty compiler generated dependencies file for bench_serve_load.
# This may be replaced when dependencies are built.
