# Empty compiler generated dependencies file for bench_ablation_kdtree.
# This may be replaced when dependencies are built.
