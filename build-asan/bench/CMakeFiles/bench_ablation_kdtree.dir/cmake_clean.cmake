file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kdtree.dir/bench_ablation_kdtree.cpp.o"
  "CMakeFiles/bench_ablation_kdtree.dir/bench_ablation_kdtree.cpp.o.d"
  "bench_ablation_kdtree"
  "bench_ablation_kdtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kdtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
