file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mapreduce_vs_spark.dir/bench_fig7_mapreduce_vs_spark.cpp.o"
  "CMakeFiles/bench_fig7_mapreduce_vs_spark.dir/bench_fig7_mapreduce_vs_spark.cpp.o.d"
  "bench_fig7_mapreduce_vs_spark"
  "bench_fig7_mapreduce_vs_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mapreduce_vs_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
