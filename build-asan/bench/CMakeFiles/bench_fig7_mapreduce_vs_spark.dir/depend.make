# Empty dependencies file for bench_fig7_mapreduce_vs_spark.
# This may be replaced when dependencies are built.
