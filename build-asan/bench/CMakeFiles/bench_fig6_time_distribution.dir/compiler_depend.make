# Empty compiler generated dependencies file for bench_fig6_time_distribution.
# This may be replaced when dependencies are built.
