file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dimensions.dir/bench_ext_dimensions.cpp.o"
  "CMakeFiles/bench_ext_dimensions.dir/bench_ext_dimensions.cpp.o.d"
  "bench_ext_dimensions"
  "bench_ext_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
