# Empty dependencies file for bench_ext_pds_comparison.
# This may be replaced when dependencies are built.
