file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pds_comparison.dir/bench_ext_pds_comparison.cpp.o"
  "CMakeFiles/bench_ext_pds_comparison.dir/bench_ext_pds_comparison.cpp.o.d"
  "bench_ext_pds_comparison"
  "bench_ext_pds_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pds_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
