# Empty compiler generated dependencies file for bench_ext_interactive.
# This may be replaced when dependencies are built.
