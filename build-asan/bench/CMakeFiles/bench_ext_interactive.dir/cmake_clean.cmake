file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_interactive.dir/bench_ext_interactive.cpp.o"
  "CMakeFiles/bench_ext_interactive.dir/bench_ext_interactive.cpp.o.d"
  "bench_ext_interactive"
  "bench_ext_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
