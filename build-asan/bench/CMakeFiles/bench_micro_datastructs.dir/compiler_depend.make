# Empty compiler generated dependencies file for bench_micro_datastructs.
# This may be replaced when dependencies are built.
