file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_datastructs.dir/bench_micro_datastructs.cpp.o"
  "CMakeFiles/bench_micro_datastructs.dir/bench_micro_datastructs.cpp.o.d"
  "bench_micro_datastructs"
  "bench_micro_datastructs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_datastructs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
