# Empty compiler generated dependencies file for bench_ablation_serialization.
# This may be replaced when dependencies are built.
