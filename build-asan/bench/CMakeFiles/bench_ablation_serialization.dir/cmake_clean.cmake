file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_serialization.dir/bench_ablation_serialization.cpp.o"
  "CMakeFiles/bench_ablation_serialization.dir/bench_ablation_serialization.cpp.o.d"
  "bench_ablation_serialization"
  "bench_ablation_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
