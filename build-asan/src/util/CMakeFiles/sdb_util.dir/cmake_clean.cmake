file(REMOVE_RECURSE
  "CMakeFiles/sdb_util.dir/counters.cpp.o"
  "CMakeFiles/sdb_util.dir/counters.cpp.o.d"
  "CMakeFiles/sdb_util.dir/flags.cpp.o"
  "CMakeFiles/sdb_util.dir/flags.cpp.o.d"
  "CMakeFiles/sdb_util.dir/log.cpp.o"
  "CMakeFiles/sdb_util.dir/log.cpp.o.d"
  "CMakeFiles/sdb_util.dir/rng.cpp.o"
  "CMakeFiles/sdb_util.dir/rng.cpp.o.d"
  "CMakeFiles/sdb_util.dir/serialize.cpp.o"
  "CMakeFiles/sdb_util.dir/serialize.cpp.o.d"
  "CMakeFiles/sdb_util.dir/table.cpp.o"
  "CMakeFiles/sdb_util.dir/table.cpp.o.d"
  "CMakeFiles/sdb_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sdb_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/sdb_util.dir/varint.cpp.o"
  "CMakeFiles/sdb_util.dir/varint.cpp.o.d"
  "libsdb_util.a"
  "libsdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
