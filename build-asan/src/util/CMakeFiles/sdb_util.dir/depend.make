# Empty dependencies file for sdb_util.
# This may be replaced when dependencies are built.
