file(REMOVE_RECURSE
  "libsdb_util.a"
)
