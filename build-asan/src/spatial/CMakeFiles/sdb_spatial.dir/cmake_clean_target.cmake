file(REMOVE_RECURSE
  "libsdb_spatial.a"
)
