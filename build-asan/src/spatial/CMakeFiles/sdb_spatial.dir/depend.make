# Empty dependencies file for sdb_spatial.
# This may be replaced when dependencies are built.
