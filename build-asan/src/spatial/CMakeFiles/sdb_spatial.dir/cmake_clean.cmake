file(REMOVE_RECURSE
  "CMakeFiles/sdb_spatial.dir/brute_force.cpp.o"
  "CMakeFiles/sdb_spatial.dir/brute_force.cpp.o.d"
  "CMakeFiles/sdb_spatial.dir/grid_index.cpp.o"
  "CMakeFiles/sdb_spatial.dir/grid_index.cpp.o.d"
  "CMakeFiles/sdb_spatial.dir/kd_tree.cpp.o"
  "CMakeFiles/sdb_spatial.dir/kd_tree.cpp.o.d"
  "CMakeFiles/sdb_spatial.dir/r_tree.cpp.o"
  "CMakeFiles/sdb_spatial.dir/r_tree.cpp.o.d"
  "libsdb_spatial.a"
  "libsdb_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
