# Empty dependencies file for sdb_serve.
# This may be replaced when dependencies are built.
