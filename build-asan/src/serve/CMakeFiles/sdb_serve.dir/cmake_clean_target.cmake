file(REMOVE_RECURSE
  "libsdb_serve.a"
)
