file(REMOVE_RECURSE
  "CMakeFiles/sdb_serve.dir/classify_cache.cpp.o"
  "CMakeFiles/sdb_serve.dir/classify_cache.cpp.o.d"
  "CMakeFiles/sdb_serve.dir/cluster_model.cpp.o"
  "CMakeFiles/sdb_serve.dir/cluster_model.cpp.o.d"
  "CMakeFiles/sdb_serve.dir/model_registry.cpp.o"
  "CMakeFiles/sdb_serve.dir/model_registry.cpp.o.d"
  "CMakeFiles/sdb_serve.dir/query_engine.cpp.o"
  "CMakeFiles/sdb_serve.dir/query_engine.cpp.o.d"
  "libsdb_serve.a"
  "libsdb_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
