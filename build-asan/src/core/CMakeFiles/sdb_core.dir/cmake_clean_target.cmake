file(REMOVE_RECURSE
  "libsdb_core.a"
)
