# Empty dependencies file for sdb_core.
# This may be replaced when dependencies are built.
