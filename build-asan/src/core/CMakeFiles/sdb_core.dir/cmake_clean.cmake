file(REMOVE_RECURSE
  "CMakeFiles/sdb_core.dir/codec.cpp.o"
  "CMakeFiles/sdb_core.dir/codec.cpp.o.d"
  "CMakeFiles/sdb_core.dir/dbscan.cpp.o"
  "CMakeFiles/sdb_core.dir/dbscan.cpp.o.d"
  "CMakeFiles/sdb_core.dir/dbscan_seq.cpp.o"
  "CMakeFiles/sdb_core.dir/dbscan_seq.cpp.o.d"
  "CMakeFiles/sdb_core.dir/incremental.cpp.o"
  "CMakeFiles/sdb_core.dir/incremental.cpp.o.d"
  "CMakeFiles/sdb_core.dir/local_dbscan.cpp.o"
  "CMakeFiles/sdb_core.dir/local_dbscan.cpp.o.d"
  "CMakeFiles/sdb_core.dir/merge.cpp.o"
  "CMakeFiles/sdb_core.dir/merge.cpp.o.d"
  "CMakeFiles/sdb_core.dir/mr_dbscan.cpp.o"
  "CMakeFiles/sdb_core.dir/mr_dbscan.cpp.o.d"
  "CMakeFiles/sdb_core.dir/partial_cluster.cpp.o"
  "CMakeFiles/sdb_core.dir/partial_cluster.cpp.o.d"
  "CMakeFiles/sdb_core.dir/partitioners.cpp.o"
  "CMakeFiles/sdb_core.dir/partitioners.cpp.o.d"
  "CMakeFiles/sdb_core.dir/pds_dbscan.cpp.o"
  "CMakeFiles/sdb_core.dir/pds_dbscan.cpp.o.d"
  "CMakeFiles/sdb_core.dir/quality.cpp.o"
  "CMakeFiles/sdb_core.dir/quality.cpp.o.d"
  "CMakeFiles/sdb_core.dir/spark_dbscan.cpp.o"
  "CMakeFiles/sdb_core.dir/spark_dbscan.cpp.o.d"
  "libsdb_core.a"
  "libsdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
