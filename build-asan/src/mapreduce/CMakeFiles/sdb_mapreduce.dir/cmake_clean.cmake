file(REMOVE_RECURSE
  "CMakeFiles/sdb_mapreduce.dir/mr_engine.cpp.o"
  "CMakeFiles/sdb_mapreduce.dir/mr_engine.cpp.o.d"
  "libsdb_mapreduce.a"
  "libsdb_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
