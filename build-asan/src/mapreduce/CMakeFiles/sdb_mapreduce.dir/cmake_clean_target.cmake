file(REMOVE_RECURSE
  "libsdb_mapreduce.a"
)
