# Empty dependencies file for sdb_mapreduce.
# This may be replaced when dependencies are built.
