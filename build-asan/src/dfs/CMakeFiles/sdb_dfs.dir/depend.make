# Empty dependencies file for sdb_dfs.
# This may be replaced when dependencies are built.
