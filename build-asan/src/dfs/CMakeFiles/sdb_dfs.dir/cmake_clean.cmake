file(REMOVE_RECURSE
  "CMakeFiles/sdb_dfs.dir/mini_dfs.cpp.o"
  "CMakeFiles/sdb_dfs.dir/mini_dfs.cpp.o.d"
  "libsdb_dfs.a"
  "libsdb_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
