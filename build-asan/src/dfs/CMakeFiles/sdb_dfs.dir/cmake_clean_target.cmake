file(REMOVE_RECURSE
  "libsdb_dfs.a"
)
