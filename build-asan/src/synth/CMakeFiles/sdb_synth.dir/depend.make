# Empty dependencies file for sdb_synth.
# This may be replaced when dependencies are built.
