file(REMOVE_RECURSE
  "CMakeFiles/sdb_synth.dir/generators.cpp.o"
  "CMakeFiles/sdb_synth.dir/generators.cpp.o.d"
  "CMakeFiles/sdb_synth.dir/io.cpp.o"
  "CMakeFiles/sdb_synth.dir/io.cpp.o.d"
  "CMakeFiles/sdb_synth.dir/presets.cpp.o"
  "CMakeFiles/sdb_synth.dir/presets.cpp.o.d"
  "libsdb_synth.a"
  "libsdb_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
