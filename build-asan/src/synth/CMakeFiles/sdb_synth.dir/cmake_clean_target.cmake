file(REMOVE_RECURSE
  "libsdb_synth.a"
)
