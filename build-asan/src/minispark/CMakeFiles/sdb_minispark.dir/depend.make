# Empty dependencies file for sdb_minispark.
# This may be replaced when dependencies are built.
