file(REMOVE_RECURSE
  "libsdb_minispark.a"
)
