file(REMOVE_RECURSE
  "CMakeFiles/sdb_minispark.dir/metrics.cpp.o"
  "CMakeFiles/sdb_minispark.dir/metrics.cpp.o.d"
  "libsdb_minispark.a"
  "libsdb_minispark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdb_minispark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
