# Empty dependencies file for test_spatial_sort.
# This may be replaced when dependencies are built.
