file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_sort.dir/test_spatial_sort.cpp.o"
  "CMakeFiles/test_spatial_sort.dir/test_spatial_sort.cpp.o.d"
  "test_spatial_sort"
  "test_spatial_sort.pdb"
  "test_spatial_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
