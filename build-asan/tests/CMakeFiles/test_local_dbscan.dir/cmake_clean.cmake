file(REMOVE_RECURSE
  "CMakeFiles/test_local_dbscan.dir/test_local_dbscan.cpp.o"
  "CMakeFiles/test_local_dbscan.dir/test_local_dbscan.cpp.o.d"
  "test_local_dbscan"
  "test_local_dbscan.pdb"
  "test_local_dbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
