# Empty compiler generated dependencies file for test_local_dbscan.
# This may be replaced when dependencies are built.
