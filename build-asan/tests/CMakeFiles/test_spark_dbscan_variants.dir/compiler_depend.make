# Empty compiler generated dependencies file for test_spark_dbscan_variants.
# This may be replaced when dependencies are built.
