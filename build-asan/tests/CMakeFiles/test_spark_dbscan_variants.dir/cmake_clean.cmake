file(REMOVE_RECURSE
  "CMakeFiles/test_spark_dbscan_variants.dir/test_spark_dbscan_variants.cpp.o"
  "CMakeFiles/test_spark_dbscan_variants.dir/test_spark_dbscan_variants.cpp.o.d"
  "test_spark_dbscan_variants"
  "test_spark_dbscan_variants.pdb"
  "test_spark_dbscan_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spark_dbscan_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
