# Empty compiler generated dependencies file for test_spark_dbscan.
# This may be replaced when dependencies are built.
