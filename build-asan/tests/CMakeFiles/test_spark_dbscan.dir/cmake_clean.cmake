file(REMOVE_RECURSE
  "CMakeFiles/test_spark_dbscan.dir/test_spark_dbscan.cpp.o"
  "CMakeFiles/test_spark_dbscan.dir/test_spark_dbscan.cpp.o.d"
  "test_spark_dbscan"
  "test_spark_dbscan.pdb"
  "test_spark_dbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spark_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
