# Empty dependencies file for test_kd_tree.
# This may be replaced when dependencies are built.
