file(REMOVE_RECURSE
  "CMakeFiles/test_kd_tree.dir/test_kd_tree.cpp.o"
  "CMakeFiles/test_kd_tree.dir/test_kd_tree.cpp.o.d"
  "test_kd_tree"
  "test_kd_tree.pdb"
  "test_kd_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kd_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
