file(REMOVE_RECURSE
  "CMakeFiles/test_sim_clock.dir/test_sim_clock.cpp.o"
  "CMakeFiles/test_sim_clock.dir/test_sim_clock.cpp.o.d"
  "test_sim_clock"
  "test_sim_clock.pdb"
  "test_sim_clock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
