# Empty compiler generated dependencies file for test_rdd.
# This may be replaced when dependencies are built.
