file(REMOVE_RECURSE
  "CMakeFiles/test_rdd.dir/test_rdd.cpp.o"
  "CMakeFiles/test_rdd.dir/test_rdd.cpp.o.d"
  "test_rdd"
  "test_rdd.pdb"
  "test_rdd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
