# Empty dependencies file for test_dfs_fuzz.
# This may be replaced when dependencies are built.
