file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_fuzz.dir/test_dfs_fuzz.cpp.o"
  "CMakeFiles/test_dfs_fuzz.dir/test_dfs_fuzz.cpp.o.d"
  "test_dfs_fuzz"
  "test_dfs_fuzz.pdb"
  "test_dfs_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
