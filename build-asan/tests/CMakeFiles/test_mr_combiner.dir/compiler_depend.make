# Empty compiler generated dependencies file for test_mr_combiner.
# This may be replaced when dependencies are built.
