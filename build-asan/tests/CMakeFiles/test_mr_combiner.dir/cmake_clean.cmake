file(REMOVE_RECURSE
  "CMakeFiles/test_mr_combiner.dir/test_mr_combiner.cpp.o"
  "CMakeFiles/test_mr_combiner.dir/test_mr_combiner.cpp.o.d"
  "test_mr_combiner"
  "test_mr_combiner.pdb"
  "test_mr_combiner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
