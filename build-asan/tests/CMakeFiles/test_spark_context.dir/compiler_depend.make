# Empty compiler generated dependencies file for test_spark_context.
# This may be replaced when dependencies are built.
