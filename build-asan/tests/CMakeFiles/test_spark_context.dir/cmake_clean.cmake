file(REMOVE_RECURSE
  "CMakeFiles/test_spark_context.dir/test_spark_context.cpp.o"
  "CMakeFiles/test_spark_context.dir/test_spark_context.cpp.o.d"
  "test_spark_context"
  "test_spark_context.pdb"
  "test_spark_context[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spark_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
