file(REMOVE_RECURSE
  "CMakeFiles/test_mr_engine.dir/test_mr_engine.cpp.o"
  "CMakeFiles/test_mr_engine.dir/test_mr_engine.cpp.o.d"
  "test_mr_engine"
  "test_mr_engine.pdb"
  "test_mr_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
