# Empty compiler generated dependencies file for test_mr_engine.
# This may be replaced when dependencies are built.
