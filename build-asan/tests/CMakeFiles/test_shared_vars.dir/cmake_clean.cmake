file(REMOVE_RECURSE
  "CMakeFiles/test_shared_vars.dir/test_shared_vars.cpp.o"
  "CMakeFiles/test_shared_vars.dir/test_shared_vars.cpp.o.d"
  "test_shared_vars"
  "test_shared_vars.pdb"
  "test_shared_vars[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_vars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
