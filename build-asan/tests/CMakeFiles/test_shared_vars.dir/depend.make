# Empty dependencies file for test_shared_vars.
# This may be replaced when dependencies are built.
