file(REMOVE_RECURSE
  "CMakeFiles/test_mini_dfs.dir/test_mini_dfs.cpp.o"
  "CMakeFiles/test_mini_dfs.dir/test_mini_dfs.cpp.o.d"
  "test_mini_dfs"
  "test_mini_dfs.pdb"
  "test_mini_dfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mini_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
