# Empty dependencies file for test_mini_dfs.
# This may be replaced when dependencies are built.
