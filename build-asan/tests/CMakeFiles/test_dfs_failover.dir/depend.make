# Empty dependencies file for test_dfs_failover.
# This may be replaced when dependencies are built.
