file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_failover.dir/test_dfs_failover.cpp.o"
  "CMakeFiles/test_dfs_failover.dir/test_dfs_failover.cpp.o.d"
  "test_dfs_failover"
  "test_dfs_failover.pdb"
  "test_dfs_failover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
