# Empty dependencies file for test_flat_hash.
# This may be replaced when dependencies are built.
