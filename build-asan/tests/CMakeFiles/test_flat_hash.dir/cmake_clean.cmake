file(REMOVE_RECURSE
  "CMakeFiles/test_flat_hash.dir/test_flat_hash.cpp.o"
  "CMakeFiles/test_flat_hash.dir/test_flat_hash.cpp.o.d"
  "test_flat_hash"
  "test_flat_hash.pdb"
  "test_flat_hash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
