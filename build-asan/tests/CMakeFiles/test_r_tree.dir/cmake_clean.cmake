file(REMOVE_RECURSE
  "CMakeFiles/test_r_tree.dir/test_r_tree.cpp.o"
  "CMakeFiles/test_r_tree.dir/test_r_tree.cpp.o.d"
  "test_r_tree"
  "test_r_tree.pdb"
  "test_r_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_r_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
