file(REMOVE_RECURSE
  "CMakeFiles/test_index_properties.dir/test_index_properties.cpp.o"
  "CMakeFiles/test_index_properties.dir/test_index_properties.cpp.o.d"
  "test_index_properties"
  "test_index_properties.pdb"
  "test_index_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
