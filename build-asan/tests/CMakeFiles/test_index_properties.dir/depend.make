# Empty dependencies file for test_index_properties.
# This may be replaced when dependencies are built.
