file(REMOVE_RECURSE
  "CMakeFiles/test_balance.dir/test_balance.cpp.o"
  "CMakeFiles/test_balance.dir/test_balance.cpp.o.d"
  "test_balance"
  "test_balance.pdb"
  "test_balance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
