# Empty dependencies file for test_balance.
# This may be replaced when dependencies are built.
