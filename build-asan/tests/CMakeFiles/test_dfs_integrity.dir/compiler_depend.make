# Empty compiler generated dependencies file for test_dfs_integrity.
# This may be replaced when dependencies are built.
