file(REMOVE_RECURSE
  "CMakeFiles/test_dfs_integrity.dir/test_dfs_integrity.cpp.o"
  "CMakeFiles/test_dfs_integrity.dir/test_dfs_integrity.cpp.o.d"
  "test_dfs_integrity"
  "test_dfs_integrity.pdb"
  "test_dfs_integrity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
