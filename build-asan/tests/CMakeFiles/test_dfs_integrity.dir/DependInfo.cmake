
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dfs_integrity.cpp" "tests/CMakeFiles/test_dfs_integrity.dir/test_dfs_integrity.cpp.o" "gcc" "tests/CMakeFiles/test_dfs_integrity.dir/test_dfs_integrity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/sdb_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/serve/CMakeFiles/sdb_serve.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/synth/CMakeFiles/sdb_synth.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dfs/CMakeFiles/sdb_dfs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/minispark/CMakeFiles/sdb_minispark.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mapreduce/CMakeFiles/sdb_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/spatial/CMakeFiles/sdb_spatial.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/sdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
