file(REMOVE_RECURSE
  "CMakeFiles/test_equivalence_property.dir/test_equivalence_property.cpp.o"
  "CMakeFiles/test_equivalence_property.dir/test_equivalence_property.cpp.o.d"
  "test_equivalence_property"
  "test_equivalence_property.pdb"
  "test_equivalence_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equivalence_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
