# Empty dependencies file for test_equivalence_property.
# This may be replaced when dependencies are built.
