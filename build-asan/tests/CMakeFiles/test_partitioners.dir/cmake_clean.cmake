file(REMOVE_RECURSE
  "CMakeFiles/test_partitioners.dir/test_partitioners.cpp.o"
  "CMakeFiles/test_partitioners.dir/test_partitioners.cpp.o.d"
  "test_partitioners"
  "test_partitioners.pdb"
  "test_partitioners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
