# Empty dependencies file for test_rdd_ops.
# This may be replaced when dependencies are built.
