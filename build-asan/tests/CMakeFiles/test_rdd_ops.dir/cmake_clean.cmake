file(REMOVE_RECURSE
  "CMakeFiles/test_rdd_ops.dir/test_rdd_ops.cpp.o"
  "CMakeFiles/test_rdd_ops.dir/test_rdd_ops.cpp.o.d"
  "test_rdd_ops"
  "test_rdd_ops.pdb"
  "test_rdd_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdd_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
