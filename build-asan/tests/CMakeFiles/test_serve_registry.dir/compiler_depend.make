# Empty compiler generated dependencies file for test_serve_registry.
# This may be replaced when dependencies are built.
