file(REMOVE_RECURSE
  "CMakeFiles/test_serve_registry.dir/test_serve_registry.cpp.o"
  "CMakeFiles/test_serve_registry.dir/test_serve_registry.cpp.o.d"
  "test_serve_registry"
  "test_serve_registry.pdb"
  "test_serve_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
