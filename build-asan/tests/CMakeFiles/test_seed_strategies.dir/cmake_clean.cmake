file(REMOVE_RECURSE
  "CMakeFiles/test_seed_strategies.dir/test_seed_strategies.cpp.o"
  "CMakeFiles/test_seed_strategies.dir/test_seed_strategies.cpp.o.d"
  "test_seed_strategies"
  "test_seed_strategies.pdb"
  "test_seed_strategies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seed_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
