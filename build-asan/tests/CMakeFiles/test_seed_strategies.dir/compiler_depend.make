# Empty compiler generated dependencies file for test_seed_strategies.
# This may be replaced when dependencies are built.
