file(REMOVE_RECURSE
  "CMakeFiles/test_quality_properties.dir/test_quality_properties.cpp.o"
  "CMakeFiles/test_quality_properties.dir/test_quality_properties.cpp.o.d"
  "test_quality_properties"
  "test_quality_properties.pdb"
  "test_quality_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quality_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
