# Empty compiler generated dependencies file for test_varint.
# This may be replaced when dependencies are built.
