file(REMOVE_RECURSE
  "CMakeFiles/test_varint.dir/test_varint.cpp.o"
  "CMakeFiles/test_varint.dir/test_varint.cpp.o.d"
  "test_varint"
  "test_varint.pdb"
  "test_varint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_varint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
