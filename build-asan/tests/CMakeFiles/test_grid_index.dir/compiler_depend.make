# Empty compiler generated dependencies file for test_grid_index.
# This may be replaced when dependencies are built.
