file(REMOVE_RECURSE
  "CMakeFiles/test_grid_index.dir/test_grid_index.cpp.o"
  "CMakeFiles/test_grid_index.dir/test_grid_index.cpp.o.d"
  "test_grid_index"
  "test_grid_index.pdb"
  "test_grid_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
