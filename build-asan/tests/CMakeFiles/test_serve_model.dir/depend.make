# Empty dependencies file for test_serve_model.
# This may be replaced when dependencies are built.
