file(REMOVE_RECURSE
  "CMakeFiles/test_serve_model.dir/test_serve_model.cpp.o"
  "CMakeFiles/test_serve_model.dir/test_serve_model.cpp.o.d"
  "test_serve_model"
  "test_serve_model.pdb"
  "test_serve_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
