# Empty compiler generated dependencies file for test_dbscan_seq.
# This may be replaced when dependencies are built.
