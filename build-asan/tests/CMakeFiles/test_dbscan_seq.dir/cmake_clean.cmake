file(REMOVE_RECURSE
  "CMakeFiles/test_dbscan_seq.dir/test_dbscan_seq.cpp.o"
  "CMakeFiles/test_dbscan_seq.dir/test_dbscan_seq.cpp.o.d"
  "test_dbscan_seq"
  "test_dbscan_seq.pdb"
  "test_dbscan_seq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbscan_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
