file(REMOVE_RECURSE
  "CMakeFiles/test_pds_dbscan.dir/test_pds_dbscan.cpp.o"
  "CMakeFiles/test_pds_dbscan.dir/test_pds_dbscan.cpp.o.d"
  "test_pds_dbscan"
  "test_pds_dbscan.pdb"
  "test_pds_dbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pds_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
