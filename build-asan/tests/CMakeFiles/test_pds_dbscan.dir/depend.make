# Empty dependencies file for test_pds_dbscan.
# This may be replaced when dependencies are built.
