# Empty compiler generated dependencies file for test_mr_dbscan.
# This may be replaced when dependencies are built.
