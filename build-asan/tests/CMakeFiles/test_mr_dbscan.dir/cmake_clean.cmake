file(REMOVE_RECURSE
  "CMakeFiles/test_mr_dbscan.dir/test_mr_dbscan.cpp.o"
  "CMakeFiles/test_mr_dbscan.dir/test_mr_dbscan.cpp.o.d"
  "test_mr_dbscan"
  "test_mr_dbscan.pdb"
  "test_mr_dbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
