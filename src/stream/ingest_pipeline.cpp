#include "stream/ingest_pipeline.hpp"

#include <algorithm>

#include "fault/injection.hpp"

namespace sdb::stream {

using dbscan::IncrementalDbscan;

const char* rung_name(LadderRung rung) {
  switch (rung) {
    case LadderRung::kHealthy: return "healthy";
    case LadderRung::kPressured: return "pressured";
    case LadderRung::kDegraded: return "degraded";
    case LadderRung::kShedding: return "shedding";
  }
  return "?";
}

IngestPipeline::IngestPipeline(serve::ModelRegistry& registry, Config config)
    : registry_(registry),
      config_(std::move(config)),
      base_rebuild_threshold_(registry.rebuild_threshold()) {
  SDB_CHECK(config_.queue_capacity > 0, "queue capacity must be positive");
  SDB_CHECK(config_.batch_max > 0, "batch_max must be positive");
  SDB_CHECK(config_.publish_every_batches > 0 &&
                config_.pressured_publish_every > 0,
            "publish cadences must be positive");
  SDB_CHECK(config_.lag_capacity > 0.0, "lag_capacity must be positive");
  SDB_CHECK(config_.pressured_enter <= config_.degraded_enter &&
                config_.degraded_enter <= config_.shedding_enter,
            "enter watermarks must be non-decreasing up the ladder");
  SDB_CHECK(config_.pressured_exit < config_.pressured_enter &&
                config_.degraded_exit < config_.degraded_enter &&
                config_.shedding_exit < config_.shedding_enter,
            "exit watermarks must sit below their enter watermarks");
  SDB_CHECK(config_.degraded_core_fraction > 0.0 &&
                config_.degraded_core_fraction <= 1.0,
            "degraded_core_fraction must be in (0, 1]");
  batcher_ = std::thread(&IngestPipeline::batcher_main, this);
}

IngestPipeline::~IngestPipeline() { stop(); }

SubmitResult IngestPipeline::submit_insert(std::span<const double> coords) {
  SDB_CHECK(static_cast<int>(coords.size()) == registry_.dim(),
            "submit_insert: dimension mismatch");
  return submit(IncrementalDbscan::BatchOp::make_insert(coords));
}

SubmitResult IngestPipeline::submit_remove(PointId id) {
  // Invalid/stale ids are acknowledged applied=false at apply time — a
  // malformed client write must not be able to kill the pipeline.
  return submit(IncrementalDbscan::BatchOp::make_remove(id));
}

SubmitResult IngestPipeline::submit(IncrementalDbscan::BatchOp op) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::scoped_lock lock(mu_);
  // Pressure may have built while the batcher is mid-epoch (or stalled by a
  // fault): escalation is evaluated at admission so shedding engages at its
  // watermark, not at queue-full.
  maybe_escalate_locked(batch_seq_);
  SubmitResult result;
  result.rung = rung_.load(std::memory_order_relaxed);
  if (stopping_ || result.rung == LadderRung::kShedding ||
      queue_.size() >= config_.queue_capacity) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    result.retry_after_ms = config_.retry_after_ms;
    return result;
  }
  result.accepted = true;
  result.ticket = next_ticket_++;
  queue_.push_back(Pending{std::move(op), result.ticket});
  const u64 depth = queue_.size();
  u64 prev = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > prev && !max_queue_depth_.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return result;
}

void IngestPipeline::batcher_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto ready = [this] {
      return stopping_ || drain_requested_ || !queue_.empty();
    };
    // While lag is pending or the ladder is engaged, wake on a timer even
    // with an empty queue: an idle pipeline must still publish trailing lag
    // (a skipped publish must not strand the ladder at a high rung) and
    // walk back down to healthy.
    if (lag_.load(std::memory_order_relaxed) > 0 ||
        rung_.load(std::memory_order_relaxed) != LadderRung::kHealthy) {
      cv_.wait_for(lock, std::chrono::microseconds(config_.batch_deadline_us),
                   ready);
    } else {
      cv_.wait(lock, ready);
    }
    if (queue_.empty()) {
      const bool barrier = drain_requested_ || stopping_;
      lock.unlock();
      if (lag_.load(std::memory_order_relaxed) > 0) {
        if (barrier) {
          // drain/stop is the explicit barrier: fault plans do not gate it.
          publish_now();
        } else if (SDB_INJECT("stream.publish.delay")) {
          publish_skips_.fetch_add(1, std::memory_order_relaxed);
        } else {
          publish_now();
        }
      }
      lock.lock();
      maybe_recover_locked(batch_seq_);
      // Re-check emptiness: submits may have landed while unlocked.
      if (queue_.empty()) {
        if (drain_requested_) {
          drain_requested_ = false;
          cv_drained_.notify_all();
        }
        if (stopping_) return;
      }
      continue;
    }
    // Fault: bounded batcher stall — queue depth builds while we sleep,
    // which is how chaos runs push the ladder up without a real overload.
    lock.unlock();
    if (SDB_INJECT("stream.queue.stall")) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.stall_micros));
    }
    lock.lock();
    // Form a micro-epoch: take what is queued, up to the rung's cap; when
    // short of the cap, wait out the deadline for more to coalesce.
    const size_t cap = batch_cap();
    const auto deadline =
        Clock::now() + std::chrono::microseconds(config_.batch_deadline_us);
    std::vector<Pending> batch;
    batch.reserve(std::min(cap, queue_.size()));
    for (;;) {
      while (!queue_.empty() && batch.size() < cap) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (batch.size() >= cap || stopping_ || drain_requested_) break;
      const bool woke = cv_.wait_until(lock, deadline, [this] {
        return stopping_ || drain_requested_ || !queue_.empty();
      });
      if (!woke) break;  // deadline: ship the partial micro-epoch
    }
    if (batch.empty()) continue;
    const u64 seq = ++batch_seq_;
    applying_ = true;
    lock.unlock();
    apply_one_batch(seq, std::move(batch));
    lock.lock();
    applying_ = false;
    maybe_escalate_locked(seq);
    maybe_recover_locked(seq);
    cv_drained_.notify_all();
  }
}

void IngestPipeline::apply_one_batch(u64 seq, std::vector<Pending> batch) {
  batched_ops_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (SDB_INJECT("stream.batch.drop")) {
    // NACK the whole micro-epoch BEFORE anything is applied: every op acks
    // dropped=true so producers resubmit. An acknowledged (applied) write
    // can never be dropped — the fault gate sits strictly upstream of the
    // registry.
    dropped_batches_.fetch_add(1, std::memory_order_relaxed);
    nacked_.fetch_add(batch.size(), std::memory_order_relaxed);
    if (config_.on_ack) {
      const u64 epoch = registry_.epoch();
      for (Pending& pending : batch) {
        Ack ack;
        ack.ticket = pending.ticket;
        ack.batch_seq = seq;
        ack.dropped = true;
        ack.op = std::move(pending.op);
        ack.id = ack.op.kind == IncrementalDbscan::BatchOp::Kind::kRemove
                     ? ack.op.id
                     : -1;
        ack.epoch = epoch;
        config_.on_ack(ack);
      }
    }
    return;
  }
  std::vector<IncrementalDbscan::BatchOp> ops;
  ops.reserve(batch.size());
  for (Pending& pending : batch) ops.push_back(std::move(pending.op));
  const std::vector<IncrementalDbscan::BatchResult> results =
      registry_.apply_batch(ops);
  batches_.fetch_add(1, std::memory_order_relaxed);
  u64 applied_count = 0;
  for (const IncrementalDbscan::BatchResult& r : results) {
    if (r.applied) ++applied_count;
  }
  lag_.fetch_add(applied_count, std::memory_order_relaxed);
  acked_.fetch_add(applied_count, std::memory_order_relaxed);
  nacked_.fetch_add(batch.size() - applied_count, std::memory_order_relaxed);
  if (config_.on_ack) {
    // Canonical apply order: the micro-epoch's inserts first (op order),
    // then its removes — replaying acked micro-epochs through apply_batch
    // reproduces the registry's state bit-exactly.
    const u64 epoch = registry_.epoch();
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < ops.size(); ++i) {
        const bool is_insert =
            ops[i].kind == IncrementalDbscan::BatchOp::Kind::kInsert;
        if (is_insert != (pass == 0)) continue;
        Ack ack;
        ack.ticket = batch[i].ticket;
        ack.batch_seq = seq;
        ack.applied = results[i].applied;
        ack.op = std::move(ops[i]);
        ack.id = results[i].id;
        ack.epoch = epoch;
        config_.on_ack(ack);
      }
    }
  }
  if (++batches_since_publish_ >= publish_cadence()) {
    if (SDB_INJECT("stream.publish.delay")) {
      // Skip the due publish: readers keep the stale epoch and the lag
      // watermark grows until the ladder reacts or the plan lifts.
      publish_skips_.fetch_add(1, std::memory_order_relaxed);
    } else {
      publish_now();
      batches_since_publish_ = 0;
    }
  }
}

void IngestPipeline::publish_now() {
  registry_.publish();
  lag_.store(0, std::memory_order_relaxed);  // batcher-thread only
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

void IngestPipeline::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_requested_ = true;
  cv_.notify_all();
  cv_drained_.wait(lock, [this] {
    return queue_.empty() && !applying_ && !drain_requested_;
  });
}

void IngestPipeline::stop() {
  {
    const std::scoped_lock lock(mu_);
    if (stopping_) {
      // Second stop: the batcher is already gone or going; fall through to
      // the (idempotent) join.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

double IngestPipeline::pressure_locked() const {
  const double queue_fraction =
      static_cast<double>(queue_.size()) /
      static_cast<double>(config_.queue_capacity);
  const double lag_fraction =
      static_cast<double>(lag_.load(std::memory_order_relaxed)) /
      config_.lag_capacity;
  return std::max(queue_fraction, lag_fraction);
}

double IngestPipeline::enter_watermark(LadderRung rung) const {
  switch (rung) {
    case LadderRung::kHealthy: return 0.0;
    case LadderRung::kPressured: return config_.pressured_enter;
    case LadderRung::kDegraded: return config_.degraded_enter;
    case LadderRung::kShedding: return config_.shedding_enter;
  }
  return 0.0;
}

double IngestPipeline::exit_watermark(LadderRung rung) const {
  switch (rung) {
    case LadderRung::kHealthy: return 0.0;
    case LadderRung::kPressured: return config_.pressured_exit;
    case LadderRung::kDegraded: return config_.degraded_exit;
    case LadderRung::kShedding: return config_.shedding_exit;
  }
  return 0.0;
}

void IngestPipeline::maybe_escalate_locked(u64 batch_seq) {
  const double pressure = pressure_locked();
  LadderRung current = rung_.load(std::memory_order_relaxed);
  LadderRung target = current;
  for (u32 r = static_cast<u32>(current) + 1; r < kLadderRungs; ++r) {
    if (pressure >= enter_watermark(static_cast<LadderRung>(r))) {
      target = static_cast<LadderRung>(r);
    }
  }
  // Jump straight to the demanded rung, one edge at a time so every rung's
  // enter action runs and every edge emits its own event.
  while (static_cast<u32>(current) < static_cast<u32>(target)) {
    const LadderRung next =
        static_cast<LadderRung>(static_cast<u32>(current) + 1);
    switch (next) {
      case LadderRung::kPressured:
        registry_.set_rebuild_threshold(base_rebuild_threshold_ *
                                        config_.deferred_rebuild_factor);
        break;
      case LadderRung::kDegraded:
        registry_.set_core_sample_fraction(config_.degraded_core_fraction);
        break;
      default:
        break;  // kShedding: pure admission gate, no registry knob
    }
    record_transition_locked(current, next, batch_seq, pressure);
    rung_.store(next, std::memory_order_release);
    current = next;
  }
}

void IngestPipeline::maybe_recover_locked(u64 batch_seq) {
  for (;;) {
    const LadderRung current = rung_.load(std::memory_order_relaxed);
    if (current == LadderRung::kHealthy) return;
    const double pressure = pressure_locked();
    const bool idle =
        queue_.empty() && lag_.load(std::memory_order_relaxed) == 0;
    if (!idle && pressure > exit_watermark(current)) return;
    const LadderRung next =
        static_cast<LadderRung>(static_cast<u32>(current) - 1);
    switch (current) {
      case LadderRung::kPressured:
        registry_.set_rebuild_threshold(base_rebuild_threshold_);
        break;
      case LadderRung::kDegraded:
        registry_.set_core_sample_fraction(1.0);
        break;
      default:
        break;
    }
    record_transition_locked(current, next, batch_seq, pressure);
    rung_.store(next, std::memory_order_release);
    // One rung per evaluation under load; a fully idle pipeline walks all
    // the way back to healthy.
    if (!idle) return;
  }
}

void IngestPipeline::record_transition_locked(LadderRung from, LadderRung to,
                                              u64 batch_seq, double pressure) {
  if (static_cast<u32>(to) > static_cast<u32>(from)) {
    transitions_up_.fetch_add(1, std::memory_order_relaxed);
  } else {
    transitions_down_.fetch_add(1, std::memory_order_relaxed);
  }
  rung_entries_[static_cast<size_t>(to)].fetch_add(1,
                                                   std::memory_order_relaxed);
  LadderTransition event;
  event.from = from;
  event.to = to;
  event.seq = ++transition_seq_;
  event.batch_seq = batch_seq;
  event.queue_depth = queue_.size();
  event.lag = lag_.load(std::memory_order_relaxed);
  event.pressure = pressure;
  // Bounded event log: the counters stay exact forever; the structured log
  // keeps the first 4096 transitions (plenty for any real incident window).
  if (transitions_.size() < 4096) transitions_.push_back(event);
  if (config_.on_transition) config_.on_transition(event);
}

size_t IngestPipeline::batch_cap() const {
  const LadderRung rung = rung_.load(std::memory_order_relaxed);
  return rung >= LadderRung::kPressured
             ? config_.batch_max * config_.pressured_batch_factor
             : config_.batch_max;
}

u64 IngestPipeline::publish_cadence() const {
  const LadderRung rung = rung_.load(std::memory_order_relaxed);
  return rung >= LadderRung::kPressured ? config_.pressured_publish_every
                                        : config_.publish_every_batches;
}

StreamMetrics IngestPipeline::metrics() const {
  StreamMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.accepted = accepted_.load(std::memory_order_relaxed);
  m.shed = shed_.load(std::memory_order_relaxed);
  m.acked = acked_.load(std::memory_order_relaxed);
  m.nacked = nacked_.load(std::memory_order_relaxed);
  m.batches = batches_.load(std::memory_order_relaxed);
  m.batched_ops = batched_ops_.load(std::memory_order_relaxed);
  m.dropped_batches = dropped_batches_.load(std::memory_order_relaxed);
  m.publishes = publishes_.load(std::memory_order_relaxed);
  m.publish_skips = publish_skips_.load(std::memory_order_relaxed);
  m.stalls = stalls_.load(std::memory_order_relaxed);
  m.transitions_up = transitions_up_.load(std::memory_order_relaxed);
  m.transitions_down = transitions_down_.load(std::memory_order_relaxed);
  for (size_t r = 0; r < kLadderRungs; ++r) {
    m.rung_entries[r] = rung_entries_[r].load(std::memory_order_relaxed);
  }
  m.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  m.lag = lag_.load(std::memory_order_relaxed);
  m.rung = rung_.load(std::memory_order_relaxed);
  {
    const std::scoped_lock lock(mu_);
    m.queue_depth = queue_.size();
  }
  return m;
}

std::vector<LadderTransition> IngestPipeline::transitions() const {
  const std::scoped_lock lock(mu_);
  return transitions_;
}

}  // namespace sdb::stream
