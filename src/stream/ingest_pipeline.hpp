// IngestPipeline — streaming ingest with bounded micro-epoch batching and an
// explicit overload-degradation ladder.
//
// Producers submit inserts/removes into a bounded queue; a single batcher
// thread groups them into micro-epochs (flushed at `batch_max` ops or after
// `batch_deadline_us`, whichever first) and applies each micro-epoch through
// ModelRegistry::apply_batch — one affected-region re-clustering per epoch
// instead of one per op — then publishes through the registry's RCU path.
// Readers never touch the pipeline: they keep loading the last published
// snapshot, whatever the write side is going through.
//
// The degradation ladder. Overload is measured as a normalized pressure
// score: max(queue_depth / queue_capacity, unpublished_ops / lag_capacity).
// Hysteresis watermarks (enter > exit) map pressure onto four rungs:
//
//   kHealthy   — exact incremental updates, publish every micro-epoch.
//   kPressured — coalesce larger micro-epochs (batch cap x
//                `pressured_batch_factor`), stretch the publish cadence to
//                every `pressured_publish_every` epochs, and DEFER kd-tree
//                rebuilds (registry rebuild_threshold x
//                `deferred_rebuild_factor`). Updates stay exact.
//   kDegraded  — additionally publish DBSCAN++-subsampled snapshots
//                (core_sample_fraction = `degraded_core_fraction`): classify
//                may misreport eps-boundary points as noise, bounded by the
//                retained-core fraction; models report degraded() and
//                QueryEngine surfaces Reply::degraded_model. The data plane
//                stays exact — only the serving snapshot approximates.
//   kShedding  — reject new writes with a retry-after hint (reads keep
//                being served from the last published epoch). Nothing
//                already acknowledged is ever shed.
//
// Escalation jumps straight to whatever rung the pressure demands (evaluated
// at every submit and after every micro-epoch, walking each edge so knob
// actions stay consistent); recovery steps down one rung per evaluation —
// or all the way to kHealthy once the queue is empty and the lag is zero —
// undoing each rung's knobs on exit (threshold restored, fraction back to
// 1.0). Every transition increments counters and emits a structured
// LadderTransition event.
//
// Acknowledgements: `on_ack` fires on the batcher thread once per submitted
// op, in CANONICAL APPLY ORDER (a micro-epoch's inserts in op order, then
// its removes), carrying the op, its micro-epoch seq, the assigned id and
// the applied/dropped outcome. Replaying the acked ops of each micro-epoch
// through IncrementalDbscan::apply_batch therefore reproduces the
// registry's data-plane state bit-exactly (ModelRegistry::state_digest) —
// the zero-lost-acknowledged-writes proof the chaos grid runs.
//
// Fault sites (chaos; see fault/injection.hpp):
//   stream.queue.stall   — bounded batcher stall (`stall_micros`) before a
//                          micro-epoch forms; queue depth builds.
//   stream.batch.drop    — NACK a whole micro-epoch BEFORE application;
//                          every op in it acks applied=false/dropped=true so
//                          producers resubmit. Acknowledged (applied) writes
//                          are never dropped.
//   stream.publish.delay — skip a due publish; epoch lag grows until the
//                          ladder reacts or the plan lifts.
//
// The registry should be configured with publish_every = 0: the pipeline
// owns the epoch cadence (a registry-side cadence is harmless but fights
// the ladder's stretched-publish rung).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/model_registry.hpp"

namespace sdb::stream {

enum class LadderRung : u32 {
  kHealthy = 0,
  kPressured = 1,
  kDegraded = 2,
  kShedding = 3,
};
inline constexpr size_t kLadderRungs = 4;
[[nodiscard]] const char* rung_name(LadderRung rung);

/// One ladder transition (always a single edge; multi-rung moves emit one
/// event per edge), in decision order.
struct LadderTransition {
  LadderRung from = LadderRung::kHealthy;
  LadderRung to = LadderRung::kHealthy;
  u64 seq = 0;         ///< 1-based transition sequence number
  u64 batch_seq = 0;   ///< micro-epoch counter at decision time
  size_t queue_depth = 0;
  u64 lag = 0;         ///< unpublished applied ops at decision time
  double pressure = 0.0;  ///< the normalized score that drove the decision
};

/// Outcome of a submit. Rejections (shedding rung or hard queue-full) carry
/// a retry-after backpressure hint; reads are unaffected either way.
struct SubmitResult {
  bool accepted = false;
  u64 ticket = 0;               ///< correlates with Ack::ticket
  double retry_after_ms = 0.0;  ///< backpressure hint when rejected
  LadderRung rung = LadderRung::kHealthy;  ///< rung at decision time
};

/// Per-op acknowledgement, fired on the batcher thread in canonical apply
/// order (see the class comment).
struct Ack {
  u64 ticket = 0;
  u64 batch_seq = 0;     ///< 1-based micro-epoch the op rode in
  bool applied = false;  ///< false: invalid remove, or micro-epoch NACKed
  bool dropped = false;  ///< whole-epoch NACK (stream.batch.drop): resubmit
  dbscan::IncrementalDbscan::BatchOp op;  ///< the op, for replay harnesses
  PointId id = -1;       ///< insert: assigned id; remove: echo of target
  u64 epoch = 0;         ///< registry epoch observed after the micro-epoch
};

struct StreamMetrics {
  u64 submitted = 0;
  u64 accepted = 0;
  u64 shed = 0;             ///< rejected (shedding rung or queue full)
  u64 acked = 0;            ///< ops acknowledged applied
  u64 nacked = 0;           ///< ops acknowledged not-applied
  u64 batches = 0;          ///< micro-epochs applied
  u64 batched_ops = 0;      ///< ops that entered a micro-epoch
  u64 dropped_batches = 0;  ///< stream.batch.drop fires
  u64 publishes = 0;        ///< epochs published by the pipeline
  u64 publish_skips = 0;    ///< stream.publish.delay fires
  u64 stalls = 0;           ///< stream.queue.stall fires
  u64 transitions_up = 0;
  u64 transitions_down = 0;
  std::array<u64, kLadderRungs> rung_entries{};  ///< entries into each rung
  size_t queue_depth = 0;
  u64 max_queue_depth = 0;
  u64 lag = 0;  ///< applied ops not yet in a published epoch
  LadderRung rung = LadderRung::kHealthy;
};

class IngestPipeline {
 public:
  struct Config {
    size_t queue_capacity = 4096;
    /// Micro-epoch flush thresholds (healthy rung).
    size_t batch_max = 256;
    u64 batch_deadline_us = 2000;
    u64 publish_every_batches = 1;

    /// Ladder watermarks on the normalized pressure score. Enter when
    /// pressure >= enter; step down when pressure <= exit (hysteresis).
    double pressured_enter = 0.50;
    double pressured_exit = 0.20;
    double degraded_enter = 0.75;
    double degraded_exit = 0.40;
    double shedding_enter = 0.95;
    double shedding_exit = 0.60;
    /// Unpublished-op count that maps to pressure 1.0 (the epoch-lag
    /// watermark scale).
    double lag_capacity = 4096.0;

    /// Knob actions per rung (see the class comment).
    size_t pressured_batch_factor = 4;
    u64 pressured_publish_every = 4;
    size_t deferred_rebuild_factor = 8;
    double degraded_core_fraction = 0.5;

    /// Retry-after hint returned on shed submits.
    double retry_after_ms = 5.0;
    /// Bounded batcher stall when stream.queue.stall fires.
    u64 stall_micros = 2000;

    /// Fired on the batcher thread, no pipeline lock held; may call back
    /// into the pipeline's metrics but must not submit (deadlock-free but
    /// unbounded recursion risk under shedding retries).
    std::function<void(const Ack&)> on_ack;
    /// Fired on the DECIDING thread with the pipeline lock held: must not
    /// call back into the pipeline.
    std::function<void(const LadderTransition&)> on_transition;
  };

  IngestPipeline(serve::ModelRegistry& registry, Config config);
  ~IngestPipeline();  ///< stop()

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Submit one write. O(1): either enqueued (acknowledged later via
  /// on_ack) or rejected with backpressure. Any thread.
  SubmitResult submit_insert(std::span<const double> coords);
  SubmitResult submit_remove(PointId id);

  /// Block until every queued op has been applied, publish any trailing
  /// lag (unconditionally — drain is the explicit barrier, fault plans do
  /// not gate it), and let the ladder re-evaluate (an idle pipeline walks
  /// back down to kHealthy).
  void drain();
  /// Drain, then join the batcher. Idempotent; further submits are shed.
  void stop();

  [[nodiscard]] LadderRung rung() const {
    return rung_.load(std::memory_order_acquire);
  }
  [[nodiscard]] StreamMetrics metrics() const;
  /// The structured transition event log, in decision order.
  [[nodiscard]] std::vector<LadderTransition> transitions() const;

 private:
  struct Pending {
    dbscan::IncrementalDbscan::BatchOp op;
    u64 ticket = 0;
  };
  using Clock = std::chrono::steady_clock;

  SubmitResult submit(dbscan::IncrementalDbscan::BatchOp op);
  void batcher_main();
  /// Apply one micro-epoch (no pipeline lock held): fault gate, registry
  /// apply, acks in canonical order, publish cadence.
  void apply_one_batch(u64 seq, std::vector<Pending> batch);
  void publish_now();

  [[nodiscard]] double pressure_locked() const;
  [[nodiscard]] double enter_watermark(LadderRung rung) const;
  [[nodiscard]] double exit_watermark(LadderRung rung) const;
  /// Jump up to whatever rung pressure demands, one edge at a time.
  void maybe_escalate_locked(u64 batch_seq);
  /// Step down one rung — or all the way to kHealthy when fully idle.
  void maybe_recover_locked(u64 batch_seq);
  void record_transition_locked(LadderRung from, LadderRung to, u64 batch_seq,
                                double pressure);
  /// Batch cap / publish cadence for the current rung (reads the atomic
  /// rung; no lock needed).
  [[nodiscard]] size_t batch_cap() const;
  [[nodiscard]] u64 publish_cadence() const;

  serve::ModelRegistry& registry_;
  Config config_;
  const size_t base_rebuild_threshold_;

  std::atomic<LadderRung> rung_{LadderRung::kHealthy};
  std::atomic<u64> lag_{0};  ///< applied ops not yet published

  // Counters (relaxed; exact only at quiescence).
  std::atomic<u64> submitted_{0};
  std::atomic<u64> accepted_{0};
  std::atomic<u64> shed_{0};
  std::atomic<u64> acked_{0};
  std::atomic<u64> nacked_{0};
  std::atomic<u64> batches_{0};
  std::atomic<u64> batched_ops_{0};
  std::atomic<u64> dropped_batches_{0};
  std::atomic<u64> publishes_{0};
  std::atomic<u64> publish_skips_{0};
  std::atomic<u64> stalls_{0};
  std::atomic<u64> transitions_up_{0};
  std::atomic<u64> transitions_down_{0};
  std::array<std::atomic<u64>, kLadderRungs> rung_entries_{};
  std::atomic<u64> max_queue_depth_{0};

  mutable std::mutex mu_;          // queue, ladder decisions, transition log
  std::condition_variable cv_;     // batcher wakeups
  std::condition_variable cv_drained_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool drain_requested_ = false;
  bool applying_ = false;
  u64 next_ticket_ = 1;
  u64 batch_seq_ = 0;
  u64 batches_since_publish_ = 0;  // batcher thread only
  u64 transition_seq_ = 0;
  std::vector<LadderTransition> transitions_;

  std::thread batcher_;  // last member: joined before the rest dies
};

}  // namespace sdb::stream
