// Lock-free disjoint-set forest for the parallel edge-based merge.
//
// The driver-side merge (core/merge.cpp) reduces Algorithm 4 to a bag of
// (seed cluster, master cluster) edges and processes them concurrently on
// the thread pool. This structure is the concurrent counterpart of
// spatial/union_find.hpp (Patwary et al.'s PDSDBSCAN disjoint sets; Wang et
// al.'s parallel DBSCAN unite-and-compress):
//
//   * parent array of std::atomic<u64>; no locks anywhere;
//   * unite() is CAS union-by-min-root: the root with the LARGER index is
//     attached under the root with the smaller index, so parent values are
//     strictly decreasing along any path (acyclicity is structural, not
//     probabilistic) and the final root of every component is its minimum
//     element — a deterministic outcome for ANY schedule, which is what
//     makes the byte-identical relabel pass in merge.cpp possible;
//   * find() uses path halving. Each halving step either shortcuts x to its
//     grandparent or observes a root; because parents strictly decrease,
//     the loop takes at most O(path) steps regardless of concurrent
//     unions — finds are wait-free, unions are lock-free (a failed CAS
//     means some other union made progress).
//
// Unlike the sequential UnionFind this class never touches the thread-local
// work counters: pool workers have no active ScopedCounters sink, and
// path-length-dependent charges would make the simulated clock depend on
// the thread schedule. The merge driver charges deterministic per-edge
// costs instead (see merge.cpp) and reports the schedule-dependent CAS
// retry count separately via cas_retries().
#pragma once

#include <atomic>
#include <memory>

#include "util/common.hpp"

namespace sdb {

class ConcurrentUnionFind {
 public:
  explicit ConcurrentUnionFind(size_t n)
      : parent_(std::make_unique<std::atomic<u64>[]>(n)), size_(n) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i].store(i, std::memory_order_relaxed);
    }
  }

  /// Representative of x's set. Wait-free: the traversal strictly descends
  /// in index, so it finishes in at most O(depth) loads even while other
  /// threads are uniting. Path halving is a best-effort CAS — a lost race
  /// just skips one shortcut.
  u64 find(u64 x) {
    SDB_DCHECK(x < size_, "ConcurrentUnionFind::find out of range");
    while (true) {
      u64 p = parent_[x].load(std::memory_order_acquire);
      if (p == x) return x;
      const u64 g = parent_[p].load(std::memory_order_acquire);
      if (g == p) return p;
      // Halve: x -> grandparent. Failure means someone else already moved
      // parent_[x] (necessarily to a smaller index); either way descend.
      parent_[x].compare_exchange_weak(p, g, std::memory_order_release,
                                       std::memory_order_relaxed);
      x = g;
    }
  }

  /// Merge the sets of a and b; the smaller root index wins (union by min
  /// root). Returns true if the sets were distinct. Lock-free: the only
  /// reason to retry is that a competing unite changed one of the roots.
  bool unite(u64 a, u64 b) {
    while (true) {
      a = find(a);
      b = find(b);
      if (a == b) return false;
      if (a > b) {
        const u64 t = a;
        a = b;
        b = t;
      }
      // Attach the larger root b under the smaller root a. The CAS only
      // succeeds while b is still a root (parent_[b] == b), which is what
      // keeps the strictly-decreasing-parent invariant: a < b.
      u64 expected = b;
      if (parent_[b].compare_exchange_strong(expected, a,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        return true;
      }
      cas_retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// True when a and b are currently in the same set (exact once all
  /// uniting threads have joined).
  [[nodiscard]] bool same(u64 a, u64 b) { return find(a) == find(b); }

  [[nodiscard]] size_t size() const { return size_; }

  /// Raw parent link (quiescent inspection; tests assert parent(x) <= x).
  [[nodiscard]] u64 parent_of(u64 x) const {
    SDB_DCHECK(x < size_, "ConcurrentUnionFind::parent_of out of range");
    return parent_[x].load(std::memory_order_acquire);
  }

  /// Number of disjoint sets. Quiescent: call after the uniting threads
  /// have joined (a racing unite can make the count momentarily stale).
  [[nodiscard]] size_t set_count() const {
    size_t roots = 0;
    for (size_t i = 0; i < size_; ++i) {
      if (parent_[i].load(std::memory_order_acquire) == i) ++roots;
    }
    return roots;
  }

  /// Failed root CASes across all unite() calls — schedule-dependent, so it
  /// feeds MergeStats (observability) and never the work counters.
  [[nodiscard]] u64 cas_retries() const {
    return cas_retries_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<std::atomic<u64>[]> parent_;
  size_t size_;
  std::atomic<u64> cas_retries_{0};
};

}  // namespace sdb
