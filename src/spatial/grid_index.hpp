// Uniform grid index with cell edge == eps.
//
// An alternative to the kd-tree for low-dimensional data: a range query
// visits only the 3^d cells adjacent to the query's cell. At the paper's
// d=10 that is 59049 cells per query, so the kd-tree wins — which is exactly
// the comparison bench_micro_spatial measures. The grid is the index of
// choice for the 2-D example applications.
//
// Layout: cells are (begin, end) ranges into two packed arrays — the member
// point ids, and their coordinates stored strip-transposed (SoA) in packed
// order (see distance_simd.hpp) — so a cell scan streams blocks through the
// runtime-dispatched SIMD strip kernel instead of gathering rows
// point-by-point (same scheme as the kd-tree's leaf-order buffer). A cell
// may enter its first block at any lane offset, exactly like a kd-tree
// leaf.
#pragma once

#include <unordered_map>

#include "spatial/spatial_index.hpp"

namespace sdb {

class GridIndex final : public SpatialIndex {
 public:
  /// Build over `points` with cell edge length `cell` (normally the query
  /// eps). Keeps a reference to the PointSet.
  GridIndex(const PointSet& points, double cell);

  void range_query(std::span<const double> q, double eps,
                   std::vector<PointId>& out) const override;

  void range_query_budgeted(std::span<const double> q, double eps,
                            const QueryBudget& budget,
                            std::vector<PointId>& out) const override;

  /// Unified kNN (see SpatialIndex::knn_query): expanding Chebyshev-ring
  /// cell search from the query's cell, pruned once the ring's distance
  /// lower bound strictly exceeds the current k-th (d2, id) heap top, and
  /// terminated when the ring box covers every occupied cell. Cells are
  /// probed in odometer order within a ring (deterministic); max_nodes
  /// bounds the cells probed.
  void knn_query(std::span<const double> q, size_t k,
                 const QueryBudget& budget,
                 std::vector<KnnHit>& out) const override;

  [[nodiscard]] size_t size() const override { return points_.size(); }
  [[nodiscard]] u64 byte_size() const override;
  [[nodiscard]] const char* name() const override { return "grid"; }

  [[nodiscard]] size_t cell_count() const { return cells_.size(); }

 private:
  /// Half-open range into packed_ids_ (and, by position, packed_coords_).
  struct CellRange {
    u32 begin = 0;
    u32 end = 0;
  };

  [[nodiscard]] u64 cell_key(std::span<const double> p) const;
  void cell_coords(std::span<const double> p, std::vector<i64>& coords) const;
  [[nodiscard]] u64 coords_key(const std::vector<i64>& coords) const;

  const PointSet& points_;
  double cell_;
  std::unordered_map<u64, CellRange> cells_;
  // Per-dimension [min, max] occupied cell coordinates — the ring search's
  // termination bound (empty when the index holds no points).
  std::vector<i64> cell_lo_;
  std::vector<i64> cell_hi_;
  std::vector<PointId> packed_ids_;    // cell-contiguous, id order per cell
  std::vector<double> packed_coords_;  // strip-transposed coords in
                                       // packed_ids_ order, padded to whole
                                       // blocks (padding lanes zero)
};

}  // namespace sdb
