// Uniform grid index with cell edge == eps.
//
// An alternative to the kd-tree for low-dimensional data: a range query
// visits only the 3^d cells adjacent to the query's cell. At the paper's
// d=10 that is 59049 cells per query, so the kd-tree wins — which is exactly
// the comparison bench_micro_spatial measures. The grid is the index of
// choice for the 2-D example applications.
#pragma once

#include <unordered_map>

#include "spatial/spatial_index.hpp"

namespace sdb {

class GridIndex final : public SpatialIndex {
 public:
  /// Build over `points` with cell edge length `cell` (normally the query
  /// eps). Keeps a reference to the PointSet.
  GridIndex(const PointSet& points, double cell);

  void range_query(std::span<const double> q, double eps,
                   std::vector<PointId>& out) const override;

  void range_query_budgeted(std::span<const double> q, double eps,
                            const QueryBudget& budget,
                            std::vector<PointId>& out) const override;

  [[nodiscard]] size_t size() const override { return points_.size(); }
  [[nodiscard]] u64 byte_size() const override;
  [[nodiscard]] const char* name() const override { return "grid"; }

  [[nodiscard]] size_t cell_count() const { return cells_.size(); }

 private:
  [[nodiscard]] u64 cell_key(std::span<const double> p) const;
  void cell_coords(std::span<const double> p, std::vector<i64>& coords) const;
  [[nodiscard]] u64 coords_key(const std::vector<i64>& coords) const;

  const PointSet& points_;
  double cell_;
  std::unordered_map<u64, std::vector<PointId>> cells_;
};

}  // namespace sdb
