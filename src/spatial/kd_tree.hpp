// kd-tree (Bentley 1975), the spatial index the paper broadcasts to all
// executors to cut neighborhood search from O(n^2) to ~O(n log n).
//
// Build: recursive median split (std::nth_element) on the dimension of
// largest spread, leaf buckets of kLeafSize points. Large builds fork the
// two subtree recursions as util/thread_pool tasks (with a sequential
// cutoff); nth_element operates on disjoint id subranges, so the tasks
// share no mutable state and the resulting tree is bit-identical in
// structure to a sequential build.
// Layout: with `reorder` on (the default), the tree keeps a leaf-contiguous
// copy of the coordinates — the rows of every leaf bucket packed
// back-to-back in traversal order — so leaf scans stream linear doubles
// through the blocked distance kernel instead of gathering rows through the
// id permutation. ids_ doubles as the remap table back to original PointIds.
// Query: classic ball-overlap descent with AABB pruning; an optional
// QueryBudget implements the paper's "kd-tree with pruning branches"
// approximation used for the 1M-point experiments (it bounds the neighbor
// count / node visits, trading exactness for time — see the approximation
// contract on QueryBudget in spatial_index.hpp).
#pragma once

#include "spatial/spatial_index.hpp"

namespace sdb {

/// Build-time knobs. The defaults are the fast path; the legacy flags exist
/// for parity tests and before/after benchmarking (bench_hotpath).
struct KdTreeOptions {
  /// Leaf bucket capacity.
  int leaf_size = 16;
  /// Worker threads for the build. 0 = auto (hardware concurrency, capped);
  /// 1 = fully sequential. Parallelism only engages above a size threshold,
  /// so small builds never pay thread-spawn cost.
  unsigned build_threads = 0;
  /// Keep the leaf-contiguous coordinate copy (one extra n*dim*8-byte
  /// buffer, reflected in byte_size()). false = legacy gather path.
  bool reorder = true;
};

class ThreadPool;

class KdTree final : public SpatialIndex {
 public:
  /// Build over all points in `points`. The tree keeps a reference to the
  /// PointSet; the caller must keep it alive.
  explicit KdTree(const PointSet& points, int leaf_size = 16)
      : KdTree(points, KdTreeOptions{.leaf_size = leaf_size}) {}

  KdTree(const PointSet& points, const KdTreeOptions& options);

  void range_query(std::span<const double> q, double eps,
                   std::vector<PointId>& out) const override;

  void range_query_budgeted(std::span<const double> q, double eps,
                            const QueryBudget& budget,
                            std::vector<PointId>& out) const override;

  /// Ids of the k nearest neighbors of `q` (including `q` itself when it is
  /// an indexed point), ordered nearest-first. Used by the eps-estimation
  /// example (the original DBSCAN paper's 4-dist heuristic).
  [[nodiscard]] std::vector<PointId> knn(std::span<const double> q,
                                         size_t k) const;

  [[nodiscard]] size_t size() const override { return points_.size(); }
  [[nodiscard]] u64 byte_size() const override;
  [[nodiscard]] const char* name() const override { return "kd-tree"; }

  /// Number of internal + leaf nodes (exposed for tests/benches).
  [[nodiscard]] size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const { return depth_; }
  /// Whether the leaf-contiguous coordinate buffer is active.
  [[nodiscard]] bool reordered() const { return !leaf_coords_.empty(); }

 private:
  struct Node {
    // Leaf: [begin, end) into ids_. Internal: split dim/value + children.
    u32 begin = 0;
    u32 end = 0;
    i32 left = -1;
    i32 right = -1;
    i32 split_dim = -1;
    double split_value = 0.0;
    // Tight bounding box of the subtree, flattened into boxes_ at
    // node_index * 2 * dim (lo values then hi values).
    u32 box = 0;
    [[nodiscard]] bool is_leaf() const { return left < 0; }
  };

  struct BuildCtx;
  void build_range(i32 idx, u32 begin, u32 end, int depth, BuildCtx& ctx);
  void build_reordered(ThreadPool* pool, unsigned tasks);

  struct QueryState {
    double eps;
    double eps2;
    const QueryBudget* budget;
    std::vector<PointId>* out;
    u64 nodes_visited = 0;
    u64 found = 0;
    bool stopped = false;
  };
  void query_node(i32 node_id, std::span<const double> q, QueryState& st) const;

  /// Row i of the build permutation: the coordinates of point ids_[i],
  /// served from the packed buffer when reordering is on.
  [[nodiscard]] std::span<const double> row(u32 i) const {
    if (!leaf_coords_.empty()) {
      const size_t dim = static_cast<size_t>(points_.dim());
      return {leaf_coords_.data() + static_cast<size_t>(i) * dim, dim};
    }
    return points_[ids_[i]];
  }

  /// Squared distance from q to the node's bounding box.
  [[nodiscard]] double box_distance2(const Node& node,
                                     std::span<const double> q) const;

  const PointSet& points_;
  int leaf_size_;
  int depth_ = 0;
  std::vector<PointId> ids_;  // permutation of point ids, bucketed by leaf;
                              // the remap table: position -> original PointId
  std::vector<Node> nodes_;
  std::vector<double> boxes_;        // per node: dim lo values then hi values
  std::vector<double> leaf_coords_;  // leaf-contiguous rows (ids_ order);
                                     // empty when reorder is off
  i32 root_ = -1;
};

}  // namespace sdb
