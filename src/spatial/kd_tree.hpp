// kd-tree (Bentley 1975), the spatial index the paper broadcasts to all
// executors to cut neighborhood search from O(n^2) to ~O(n log n).
//
// Build: recursive median split (std::nth_element) on the dimension of
// largest spread, leaf buckets of kLeafSize points — O(n log n) total.
// Query: classic ball-overlap descent with AABB pruning; an optional
// QueryBudget implements the paper's "kd-tree with pruning branches"
// approximation used for the 1M-point experiments (it bounds the neighbor
// count / node visits, trading exactness for time).
#pragma once

#include "spatial/spatial_index.hpp"

namespace sdb {

class KdTree final : public SpatialIndex {
 public:
  /// Build over all points in `points`. The tree keeps a reference to the
  /// PointSet; the caller must keep it alive.
  explicit KdTree(const PointSet& points, int leaf_size = 16);

  void range_query(std::span<const double> q, double eps,
                   std::vector<PointId>& out) const override;

  void range_query_budgeted(std::span<const double> q, double eps,
                            const QueryBudget& budget,
                            std::vector<PointId>& out) const override;

  /// Ids of the k nearest neighbors of `q` (including `q` itself when it is
  /// an indexed point), ordered nearest-first. Used by the eps-estimation
  /// example (the original DBSCAN paper's 4-dist heuristic).
  [[nodiscard]] std::vector<PointId> knn(std::span<const double> q,
                                         size_t k) const;

  [[nodiscard]] size_t size() const override { return points_.size(); }
  [[nodiscard]] u64 byte_size() const override;
  [[nodiscard]] const char* name() const override { return "kd-tree"; }

  /// Number of internal + leaf nodes (exposed for tests/benches).
  [[nodiscard]] size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const { return depth_; }

 private:
  struct Node {
    // Leaf: [begin, end) into ids_. Internal: split dim/value + children.
    u32 begin = 0;
    u32 end = 0;
    i32 left = -1;
    i32 right = -1;
    i32 split_dim = -1;
    double split_value = 0.0;
    // Tight bounding box of the subtree, flattened into boxes_.
    u32 box = 0;
    [[nodiscard]] bool is_leaf() const { return left < 0; }
  };

  i32 build(u32 begin, u32 end, int depth);

  struct QueryState {
    double eps;
    double eps2;
    const QueryBudget* budget;
    std::vector<PointId>* out;
    u64 nodes_visited = 0;
    u64 found = 0;
    bool stopped = false;
  };
  void query_node(i32 node_id, std::span<const double> q, QueryState& st) const;

  /// Squared distance from q to the node's bounding box.
  [[nodiscard]] double box_distance2(const Node& node,
                                     std::span<const double> q) const;

  const PointSet& points_;
  int leaf_size_;
  int depth_ = 0;
  std::vector<PointId> ids_;     // permutation of point ids, bucketed by leaf
  std::vector<Node> nodes_;
  std::vector<double> boxes_;    // per node: dim lo values then dim hi values
  i32 root_ = -1;
};

}  // namespace sdb
