// kd-tree (Bentley 1975), the spatial index the paper broadcasts to all
// executors to cut neighborhood search from O(n^2) to ~O(n log n).
//
// Build: recursive median split (std::nth_element) on the dimension of
// largest spread, leaf buckets of kLeafSize points. Large builds fork the
// two subtree recursions as util/thread_pool tasks (with a sequential
// cutoff); nth_element operates on disjoint id subranges, so the tasks
// share no mutable state and the resulting tree is bit-identical in
// structure to a sequential build. Sequential builds (build_threads <= 1,
// or below the size threshold) skip the parallel machinery entirely —
// plain slot counters, no atomics, no pool.
// Layout: with `reorder` on (the default), the tree keeps a strip-transposed
// (SoA) copy of the coordinates in leaf-traversal order — blocks of
// kDistanceStrip points stored dimension-major (see distance_simd.hpp) —
// filled IN PLACE as each leaf is finalized during the build, so the packed
// layout costs the leaf stores only, not a second full pass. Leaf scans
// stream the blocks through the runtime-dispatched SIMD strip kernel;
// ids_ doubles as the remap table back to original PointIds.
// Query: classic ball-overlap descent with AABB pruning; an optional
// QueryBudget implements the paper's "kd-tree with pruning branches"
// approximation used for the 1M-point experiments (it bounds the neighbor
// count / node visits, trading exactness for time — see the approximation
// contract on QueryBudget in spatial_index.hpp). Work counters are tallied
// locally during the descent and flushed once per query (counters::add) —
// exact totals, one thread-local access per query.
#pragma once

#include <memory>

#include "geom/distance_simd.hpp"
#include "spatial/spatial_index.hpp"

namespace sdb {

/// Build-time knobs. The defaults are the fast path; the legacy flags exist
/// for parity tests and before/after benchmarking (bench_hotpath).
struct KdTreeOptions {
  /// Leaf bucket capacity. 192 is the vector-era tuning: wider leaves
  /// convert expensive per-node box tests into strip-kernel lanes that cost
  /// a fraction of a scalar evaluation each, and the kernels' partial-
  /// distance abandonment keeps the extra candidates cheap — most of them
  /// stop a few dimensions in (16 was the scalar-era default; see DESIGN.md
  /// §14 for the sweep).
  int leaf_size = 192;
  /// Worker threads for the build. 0 = auto (hardware concurrency, capped);
  /// 1 = fully sequential. Parallelism only engages above a size threshold,
  /// so small builds never pay thread-spawn cost.
  unsigned build_threads = 0;
  /// Keep the strip-transposed leaf-order coordinate copy (one extra
  /// ~n*dim*8-byte buffer, reflected in byte_size()). false = legacy gather
  /// path (scalar per-point evaluation through the id permutation).
  bool reorder = true;
};

class ThreadPool;

class KdTree final : public SpatialIndex {
 public:
  /// Build over all points in `points`. The tree keeps a reference to the
  /// PointSet (and, with reorder on, a strip-transposed coordinate
  /// snapshot); the caller must keep it alive and unmutated for the tree's
  /// lifetime — post-build mutations would not be reflected in the packed
  /// layout, the split structure, or the bounding boxes.
  explicit KdTree(const PointSet& points, int leaf_size = 192)
      : KdTree(points, KdTreeOptions{.leaf_size = leaf_size}) {}

  KdTree(const PointSet& points, const KdTreeOptions& options);

  void range_query(std::span<const double> q, double eps,
                   std::vector<PointId>& out) const override;

  void range_query_budgeted(std::span<const double> q, double eps,
                            const QueryBudget& budget,
                            std::vector<PointId>& out) const override;

  /// Unified kNN query (see the contract on SpatialIndex::knn_query):
  /// ascending (d2, id) with deterministic smaller-id tie-break at the k-th
  /// distance, one distance_eval per row examined, max_nodes-budgeted
  /// descent.
  void knn_query(std::span<const double> q, size_t k,
                 const QueryBudget& budget,
                 std::vector<KnnHit>& out) const override;

  /// Ids of the k nearest neighbors of `q` (including `q` itself when it is
  /// an indexed point), ordered nearest-first (ties: smaller id). Used by
  /// the eps-estimation example (the original DBSCAN paper's 4-dist
  /// heuristic). Convenience wrapper over knn_query.
  [[nodiscard]] std::vector<PointId> knn(std::span<const double> q,
                                         size_t k) const;

  [[nodiscard]] size_t size() const override { return points_.size(); }
  [[nodiscard]] u64 byte_size() const override;
  [[nodiscard]] const char* name() const override { return "kd-tree"; }

  /// Number of internal + leaf nodes (exposed for tests/benches).
  [[nodiscard]] size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const { return depth_; }
  /// Whether the strip-transposed leaf-order coordinate buffer is active.
  [[nodiscard]] bool reordered() const { return leaf_coords_len_ != 0; }

 private:
  struct Node {
    // Leaf: [begin, end) into ids_. Internal: split dim/value + children.
    u32 begin = 0;
    u32 end = 0;
    i32 left = -1;
    i32 right = -1;
    i32 split_dim = -1;
    double split_value = 0.0;
    // Tight bounding box of the subtree, flattened into boxes_ at
    // node_index * 2 * dim, INTERLEAVED per dimension:
    // [lo0, hi0, lo1, hi1, ...]. The interleave keeps the early-exit
    // distance loop inside the first cache line for most pruned nodes.
    u32 box = 0;
    [[nodiscard]] bool is_leaf() const { return left < 0; }
  };

  struct BuildCtx;
  void build_range(i32 idx, u32 begin, u32 end, int depth, BuildCtx& ctx);
  /// Scatter one finalized leaf's rows into the strip-transposed buffer.
  /// (The common-dimensionality leaf path fuses this scatter with the
  /// bounding-box reduction inline in build_range; this standalone version
  /// serves degenerate-spread and very-wide-dimension leaves.)
  void export_leaf_strips(u32 begin, u32 end);

  /// Capacity of run_query's fixed descent stack. Max occupancy is
  /// depth_ + 1 (each descent pops one node and pushes its two children),
  /// and with exact-median splits depth_ <= ~log2(n) + 1 <= 33 for 32-bit
  /// point counts — but that bound is a property of the SPLIT POLICY, so
  /// the constructor checks depth_ + 1 against this capacity after every
  /// build rather than trusting the invariant silently (an unbalanced
  /// split policy would otherwise corrupt the stack).
  static constexpr int kQueryStackCap = 64;

  struct QueryState {
    double eps;
    double eps2;
    const QueryBudget* budget;
    std::vector<PointId>* out;
    /// Strip kernel fetched once per query (atomic dispatch load hoisted
    /// out of the leaf loop).
    simd::StripKernelFn kernel = nullptr;
    u64 nodes_visited = 0;
    u64 distance_evals = 0;
    u64 found = 0;
  };
  /// Iterative depth-first descent from the root (explicit stack, near
  /// child popped first). Visit order, counter totals, and output order are
  /// exactly those of the textbook recursive formulation.
  void run_query(std::span<const double> q, QueryState& st) const;

  /// Row i of the build permutation: the coordinates of point ids_[i]. The
  /// strip buffer has no contiguous rows, so scalar consumers (knn, the
  /// budgeted fallback) gather through the id permutation — the same doubles
  /// bit-for-bit.
  [[nodiscard]] std::span<const double> row(u32 i) const {
    return points_[ids_[i]];
  }

  /// Squared distance from q to the node's bounding box, with an early exit
  /// once the partial sum exceeds `cutoff`: the sum is monotone in d, so
  /// "result > cutoff" is decided identically whether or not the remaining
  /// dimensions are accumulated. Callers must only compare the result
  /// against `cutoff` (prune when greater).
  [[nodiscard]] double box_distance2(const Node& node, std::span<const double> q,
                                     double cutoff) const;

  const PointSet& points_;
  int leaf_size_;
  int depth_ = 0;
  std::vector<PointId> ids_;  // permutation of point ids, bucketed by leaf;
                              // the remap table: position -> original PointId
  std::vector<Node> nodes_;
  std::vector<double> boxes_;  // per node: interleaved [lo, hi] per dim
  // Strip-transposed leaf-order coordinates (see distance_simd.hpp);
  // len == 0 when reorder is off. unique_ptr + explicit length instead of a
  // vector so the build can allocate without a redundant zero-fill (only the
  // final block's padding lanes need zeroing).
  std::unique_ptr<double[]> leaf_coords_;
  size_t leaf_coords_len_ = 0;
  i32 root_ = -1;
};

}  // namespace sdb
