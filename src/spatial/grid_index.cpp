#include "spatial/grid_index.hpp"

#include <cmath>

#include "geom/distance.hpp"

namespace sdb {

GridIndex::GridIndex(const PointSet& points, double cell)
    : points_(points), cell_(cell) {
  SDB_CHECK(cell > 0.0, "grid cell size must be positive");
  const size_t dim = static_cast<size_t>(points_.dim());
  const size_t n = points_.size();

  // Pass 1: bucket ids per cell, remembering first-seen cell order so the
  // packed layout (and therefore query output order) is deterministic.
  std::unordered_map<u64, std::vector<PointId>> buckets;
  std::vector<u64> cell_order;
  std::vector<i64> coords(dim);
  for (PointId i = 0; i < static_cast<PointId>(n); ++i) {
    cell_coords(points_[i], coords);
    auto [it, inserted] = buckets.try_emplace(coords_key(coords));
    if (inserted) cell_order.push_back(it->first);
    it->second.push_back(i);
  }

  // Pass 2: flatten into cell-contiguous id + coordinate arrays.
  packed_ids_.reserve(n);
  packed_coords_.reserve(n * dim);
  cells_.reserve(buckets.size());
  const double* src = points_.raw().data();
  for (const u64 key : cell_order) {
    const std::vector<PointId>& members = buckets.at(key);
    CellRange range;
    range.begin = static_cast<u32>(packed_ids_.size());
    for (const PointId id : members) {
      packed_ids_.push_back(id);
      const double* from = src + static_cast<size_t>(id) * dim;
      packed_coords_.insert(packed_coords_.end(), from, from + dim);
    }
    range.end = static_cast<u32>(packed_ids_.size());
    cells_.emplace(key, range);
  }
}

void GridIndex::cell_coords(std::span<const double> p,
                            std::vector<i64>& coords) const {
  for (size_t d = 0; d < p.size(); ++d) {
    coords[d] = static_cast<i64>(std::floor(p[d] / cell_));
  }
}

u64 GridIndex::coords_key(const std::vector<i64>& coords) const {
  // Mix the per-dimension cell indices into one 64-bit key.
  u64 h = 1469598103934665603ull;
  for (const i64 c : coords) {
    h ^= static_cast<u64>(c) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

u64 GridIndex::cell_key(std::span<const double> p) const {
  std::vector<i64> coords(p.size());
  cell_coords(p, coords);
  return coords_key(coords);
}

void GridIndex::range_query(std::span<const double> q, double eps,
                            std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void GridIndex::range_query_budgeted(std::span<const double> q, double eps,
                                     const QueryBudget& budget,
                                     std::vector<PointId>& out) const {
  const int dim = points_.dim();
  // The query radius may exceed the cell edge; compute the cell reach.
  const i64 reach = static_cast<i64>(std::ceil(eps / cell_));
  std::vector<i64> base(static_cast<size_t>(dim));
  cell_coords(q, base);

  const double eps2 = eps * eps;
  u64 found = 0;
  u64 visited_cells = 0;
  bool stopped = false;

  // Enumerate the (2*reach+1)^dim neighbor cells by odometer.
  std::vector<i64> offset(static_cast<size_t>(dim), -reach);
  std::vector<i64> coords(static_cast<size_t>(dim));
  for (;;) {
    for (int d = 0; d < dim; ++d) coords[d] = base[d] + offset[d];
    ++visited_cells;
    counters::tree_nodes(1);
    if (budget.max_nodes != 0 && visited_cells > budget.max_nodes) break;
    if (auto it = cells_.find(coords_key(coords)); it != cells_.end()) {
      const CellRange range = it->second;
      if (budget.max_neighbors == 0) {
        // Blocked kernel over the cell's packed rows. Candidate order and
        // distance_evals match the scalar path exactly.
        double d2[kDistanceStrip];
        for (u32 i = range.begin; i < range.end;) {
          const u32 m =
              std::min<u32>(static_cast<u32>(kDistanceStrip), range.end - i);
          squared_distance_batch(
              q,
              packed_coords_.data() +
                  static_cast<size_t>(i) * static_cast<size_t>(dim),
              m, d2);
          for (u32 j = 0; j < m; ++j) {
            if (d2[j] <= eps2) out.push_back(packed_ids_[i + j]);
          }
          i += m;
        }
      } else {
        // Scalar path: the neighbor budget may stop mid-cell, and a strip
        // evaluated past the stop would overcount distance_evals.
        for (u32 i = range.begin; i < range.end; ++i) {
          const std::span<const double> p{
              packed_coords_.data() +
                  static_cast<size_t>(i) * static_cast<size_t>(dim),
              static_cast<size_t>(dim)};
          if (squared_distance(q, p) <= eps2) {
            out.push_back(packed_ids_[i]);
            ++found;
            if (found >= budget.max_neighbors) {
              stopped = true;
              break;
            }
          }
        }
      }
    }
    if (stopped) break;
    // Advance the odometer.
    int d = 0;
    for (; d < dim; ++d) {
      if (++offset[d] <= reach) break;
      offset[d] = -reach;
    }
    if (d == dim) break;
  }
}

u64 GridIndex::byte_size() const {
  return points_.byte_size() +
         cells_.size() * (sizeof(u64) + sizeof(CellRange)) +
         packed_ids_.size() * sizeof(PointId) +
         packed_coords_.size() * sizeof(double);
}

}  // namespace sdb
