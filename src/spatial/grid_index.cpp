#include "spatial/grid_index.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <queue>

#include "geom/distance.hpp"

namespace sdb {

GridIndex::GridIndex(const PointSet& points, double cell)
    : points_(points), cell_(cell) {
  SDB_CHECK(cell > 0.0, "grid cell size must be positive");
  const size_t dim = static_cast<size_t>(points_.dim());
  const size_t n = points_.size();

  // Pass 1: bucket ids per cell, remembering first-seen cell order so the
  // packed layout (and therefore query output order) is deterministic.
  std::unordered_map<u64, std::vector<PointId>> buckets;
  std::vector<u64> cell_order;
  std::vector<i64> coords(dim);
  for (PointId i = 0; i < static_cast<PointId>(n); ++i) {
    cell_coords(points_[i], coords);
    if (cell_lo_.empty()) {
      cell_lo_ = coords;
      cell_hi_ = coords;
    } else {
      for (size_t d = 0; d < dim; ++d) {
        cell_lo_[d] = std::min(cell_lo_[d], coords[d]);
        cell_hi_[d] = std::max(cell_hi_[d], coords[d]);
      }
    }
    auto [it, inserted] = buckets.try_emplace(coords_key(coords));
    if (inserted) cell_order.push_back(it->first);
    it->second.push_back(i);
  }

  // Pass 2: flatten into cell-contiguous id + strip-transposed coordinate
  // arrays (padding lanes of the final block zeroed by assign).
  packed_ids_.reserve(n);
  packed_coords_.assign(strip_padded_len(n, dim), 0.0);
  cells_.reserve(buckets.size());
  for (const u64 key : cell_order) {
    const std::vector<PointId>& members = buckets.at(key);
    CellRange range;
    range.begin = static_cast<u32>(packed_ids_.size());
    for (const PointId id : members) {
      strip_store_row(packed_coords_.data(), packed_ids_.size(), points_[id]);
      packed_ids_.push_back(id);
    }
    range.end = static_cast<u32>(packed_ids_.size());
    cells_.emplace(key, range);
  }
}

void GridIndex::cell_coords(std::span<const double> p,
                            std::vector<i64>& coords) const {
  for (size_t d = 0; d < p.size(); ++d) {
    coords[d] = static_cast<i64>(std::floor(p[d] / cell_));
  }
}

u64 GridIndex::coords_key(const std::vector<i64>& coords) const {
  // Mix the per-dimension cell indices into one 64-bit key.
  u64 h = 1469598103934665603ull;
  for (const i64 c : coords) {
    h ^= static_cast<u64>(c) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

u64 GridIndex::cell_key(std::span<const double> p) const {
  std::vector<i64> coords(p.size());
  cell_coords(p, coords);
  return coords_key(coords);
}

void GridIndex::range_query(std::span<const double> q, double eps,
                            std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void GridIndex::range_query_budgeted(std::span<const double> q, double eps,
                                     const QueryBudget& budget,
                                     std::vector<PointId>& out) const {
  const int dim = points_.dim();
  // The query radius may exceed the cell edge; compute the cell reach.
  const i64 reach = static_cast<i64>(std::ceil(eps / cell_));
  std::vector<i64> base(static_cast<size_t>(dim));
  cell_coords(q, base);

  const double eps2 = eps * eps;
  const simd::StripKernelFn kernel = simd::detail::strip_kernel();
  u64 found = 0;
  u64 visited_cells = 0;
  u64 evals = 0;
  bool stopped = false;

  // Enumerate the (2*reach+1)^dim neighbor cells by odometer.
  std::vector<i64> offset(static_cast<size_t>(dim), -reach);
  std::vector<i64> coords(static_cast<size_t>(dim));
  for (;;) {
    for (int d = 0; d < dim; ++d) coords[d] = base[d] + offset[d];
    ++visited_cells;
    if (budget.max_nodes != 0 && visited_cells > budget.max_nodes) break;
    if (auto it = cells_.find(coords_key(coords)); it != cells_.end()) {
      const CellRange range = it->second;
      if (budget.max_neighbors == 0) {
        // SIMD strip kernel over the cell's packed blocks; a cell may enter
        // its first block at any lane offset. Ascending mask-bit order is
        // ascending packed position, so candidate order and the
        // distance_evals tally match the scalar path exactly (one eval per
        // candidate row, regardless of the kernel's internal abandonment).
        evals += range.end - range.begin;
        for (u32 i = range.begin; i < range.end;) {
          const u32 lane = i % static_cast<u32>(kDistanceStrip);
          const u32 m = std::min<u32>(static_cast<u32>(kDistanceStrip) - lane,
                                      range.end - i);
          u32 mask = kernel(q.data(), static_cast<size_t>(dim), eps2,
                            strip_lane(packed_coords_.data(), i,
                                       static_cast<size_t>(dim)),
                            m);
          while (mask != 0) {
            const u32 j = static_cast<u32>(std::countr_zero(mask));
            out.push_back(packed_ids_[i + j]);
            mask &= mask - 1;
          }
          i += m;
        }
      } else {
        // Neighbor-budgeted cell scan, still through the strip kernel: the
        // mask walk reconstructs the scalar loop's exact stop row and
        // distance_evals charge (strip_scan_budgeted), so output, counters,
        // and the stop point are byte-identical to a per-row scalar gather.
        stopped = strip_scan_budgeted(
            kernel, q, eps2, packed_coords_.data(), range.begin, range.end,
            budget.max_neighbors, found, evals,
            [&](size_t pos) { out.push_back(packed_ids_[pos]); });
      }
    }
    if (stopped) break;
    // Advance the odometer.
    int d = 0;
    for (; d < dim; ++d) {
      if (++offset[d] <= reach) break;
      offset[d] = -reach;
    }
    if (d == dim) break;
  }
  // One thread-local flush per query (exact totals — see counters::add).
  counters::tree_nodes(visited_cells);
  counters::distance_evals(evals);
}

void GridIndex::knn_query(std::span<const double> q, size_t k,
                          const QueryBudget& budget,
                          std::vector<KnnHit>& out) const {
  // Max-heap of lexicographic (d2, id) pairs — smaller-id tie-break at the
  // k-th distance (see the contract in spatial_index.hpp).
  using Entry = std::pair<double, PointId>;
  std::priority_queue<Entry> heap;
  if (k == 0 || points_.empty()) return;
  const size_t dim = static_cast<size_t>(points_.dim());
  std::vector<i64> base(dim);
  cell_coords(q, base);

  u64 cells_probed = 0;
  u64 evals = 0;
  bool budget_hit = false;
  std::vector<i64> coords(dim);
  auto probe_cell = [&]() {
    if (budget.max_nodes != 0 && cells_probed >= budget.max_nodes) {
      budget_hit = true;
      return;
    }
    ++cells_probed;
    const auto it = cells_.find(coords_key(coords));
    if (it == cells_.end()) return;
    const CellRange range = it->second;
    // One eval per row in the cell — every member is examined.
    evals += range.end - range.begin;
    for (u32 i = range.begin; i < range.end; ++i) {
      const Entry cand{
          squared_distance_uncounted(q, points_[packed_ids_[i]]),
          packed_ids_[i]};
      if (heap.size() < k) {
        heap.push(cand);
      } else if (cand < heap.top()) {
        heap.pop();
        heap.push(cand);
      }
    }
  };

  // High-dimensional fallback. The ring odometer below iterates the full
  // (2r+1)^dim offset box per ring, which dwarfs the occupied-cell count
  // long before dim reaches embedding sizes (3^64 offsets at d=64, r=1) —
  // geometric enumeration can never pay off once the occupied bounding box
  // holds more cells than the index has points. In that regime probe every
  // occupied cell once, in packed (build-deterministic) order; the unified
  // counter contract is unchanged: one tree_node per cell probed, one
  // distance_eval per row examined, budget.max_nodes caps the probes.
  double box_cells = 1.0;
  for (size_t d = 0; d < dim; ++d) {
    box_cells *= static_cast<double>(cell_hi_[d] - cell_lo_[d] + 1);
    if (box_cells > 1e18) break;
  }
  if (box_cells > std::max<double>(1024.0,
                                   4.0 * static_cast<double>(cells_.size()))) {
    // Sort by packed range start: the deterministic build order of the
    // cells, independent of the hash map's iteration order.
    std::vector<const CellRange*> occupied;
    occupied.reserve(cells_.size());
    for (const auto& [key, range] : cells_) occupied.push_back(&range);
    std::sort(occupied.begin(), occupied.end(),
              [](const CellRange* a, const CellRange* b) {
                return a->begin < b->begin;
              });
    for (const CellRange* range : occupied) {
      if (budget.max_nodes != 0 && cells_probed >= budget.max_nodes) break;
      ++cells_probed;
      evals += range->end - range->begin;
      for (u32 i = range->begin; i < range->end; ++i) {
        const Entry cand{
            squared_distance_uncounted(q, points_[packed_ids_[i]]),
            packed_ids_[i]};
        if (heap.size() < k) {
          heap.push(cand);
        } else if (cand < heap.top()) {
          heap.pop();
          heap.push(cand);
        }
      }
    }
    counters::tree_nodes(cells_probed);
    counters::distance_evals(evals);
    const size_t base_out = out.size();
    out.resize(base_out + heap.size());
    for (size_t i = heap.size(); i-- > 0;) {
      out[base_out + i] = KnnHit{heap.top().first, heap.top().second};
      heap.pop();
    }
    return;
  }

  // Expand Chebyshev rings r = 0, 1, 2, ... around the query's cell.
  for (i64 r = 0;; ++r) {
    if (budget_hit) break;
    if (r > 0) {
      // Prune: any point in a ring-r cell is at least (r-1)*cell away from
      // q in some coordinate (q lies inside its own cell). Strict > keeps
      // the tie-break exact — an equal-distance point with a smaller id
      // may still displace the heap top.
      if (heap.size() == k) {
        const double lb = static_cast<double>(r - 1) * cell_;
        if (lb * lb > heap.top().first) break;
      }
      // Termination: once the PREVIOUS ring box covers every occupied
      // cell, ring r and beyond hold nothing.
      bool covered = true;
      for (size_t d = 0; d < dim; ++d) {
        if (base[d] - (r - 1) > cell_lo_[d] ||
            base[d] + (r - 1) < cell_hi_[d]) {
          covered = false;
          break;
        }
      }
      if (covered) break;
    }
    // Odometer over offsets in [-r, r]^dim, probing only the shell
    // (Chebyshev norm == r) — deterministic cell order within the ring.
    std::vector<i64> off(dim, -r);
    for (;;) {
      bool on_shell = r == 0;
      for (size_t d = 0; d < dim && !on_shell; ++d) {
        on_shell = off[d] == -r || off[d] == r;
      }
      if (on_shell) {
        for (size_t d = 0; d < dim; ++d) coords[d] = base[d] + off[d];
        probe_cell();
        if (budget_hit) break;
      }
      size_t d = 0;
      for (; d < dim; ++d) {
        if (++off[d] <= r) break;
        off[d] = -r;
      }
      if (d == dim) break;
    }
  }
  counters::tree_nodes(cells_probed);
  counters::distance_evals(evals);

  const size_t base_out = out.size();
  out.resize(base_out + heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[base_out + i] = KnnHit{heap.top().first, heap.top().second};
    heap.pop();
  }
}

u64 GridIndex::byte_size() const {
  return points_.byte_size() +
         cells_.size() * (sizeof(u64) + sizeof(CellRange)) +
         packed_ids_.size() * sizeof(PointId) +
         packed_coords_.size() * sizeof(double);
}

}  // namespace sdb
