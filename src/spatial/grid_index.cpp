#include "spatial/grid_index.hpp"

#include <cmath>

#include "geom/distance.hpp"

namespace sdb {

GridIndex::GridIndex(const PointSet& points, double cell)
    : points_(points), cell_(cell) {
  SDB_CHECK(cell > 0.0, "grid cell size must be positive");
  std::vector<i64> coords(static_cast<size_t>(points_.dim()));
  for (PointId i = 0; i < static_cast<PointId>(points_.size()); ++i) {
    cell_coords(points_[i], coords);
    cells_[coords_key(coords)].push_back(i);
  }
}

void GridIndex::cell_coords(std::span<const double> p,
                            std::vector<i64>& coords) const {
  for (size_t d = 0; d < p.size(); ++d) {
    coords[d] = static_cast<i64>(std::floor(p[d] / cell_));
  }
}

u64 GridIndex::coords_key(const std::vector<i64>& coords) const {
  // Mix the per-dimension cell indices into one 64-bit key.
  u64 h = 1469598103934665603ull;
  for (const i64 c : coords) {
    h ^= static_cast<u64>(c) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

u64 GridIndex::cell_key(std::span<const double> p) const {
  std::vector<i64> coords(p.size());
  cell_coords(p, coords);
  return coords_key(coords);
}

void GridIndex::range_query(std::span<const double> q, double eps,
                            std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void GridIndex::range_query_budgeted(std::span<const double> q, double eps,
                                     const QueryBudget& budget,
                                     std::vector<PointId>& out) const {
  const int dim = points_.dim();
  // The query radius may exceed the cell edge; compute the cell reach.
  const i64 reach = static_cast<i64>(std::ceil(eps / cell_));
  std::vector<i64> base(static_cast<size_t>(dim));
  cell_coords(q, base);

  const double eps2 = eps * eps;
  u64 found = 0;
  u64 visited_cells = 0;
  bool stopped = false;

  // Enumerate the (2*reach+1)^dim neighbor cells by odometer.
  std::vector<i64> offset(static_cast<size_t>(dim), -reach);
  std::vector<i64> coords(static_cast<size_t>(dim));
  for (;;) {
    for (int d = 0; d < dim; ++d) coords[d] = base[d] + offset[d];
    ++visited_cells;
    counters::tree_nodes(1);
    if (budget.max_nodes != 0 && visited_cells > budget.max_nodes) break;
    if (auto it = cells_.find(coords_key(coords)); it != cells_.end()) {
      for (const PointId id : it->second) {
        if (squared_distance(q, points_[id]) <= eps2) {
          out.push_back(id);
          ++found;
          if (budget.max_neighbors != 0 && found >= budget.max_neighbors) {
            stopped = true;
            break;
          }
        }
      }
    }
    if (stopped) break;
    // Advance the odometer.
    int d = 0;
    for (; d < dim; ++d) {
      if (++offset[d] <= reach) break;
      offset[d] = -reach;
    }
    if (d == dim) break;
  }
}

u64 GridIndex::byte_size() const {
  u64 bytes = points_.byte_size();
  for (const auto& [key, ids] : cells_) {
    (void)key;
    bytes += sizeof(u64) + ids.size() * sizeof(PointId);
  }
  return bytes;
}

}  // namespace sdb
