// Naive O(n) per query index — the paper's "O(n^2) linear search" baseline.
//
// Exact scans stream the same strip-transposed (SoA) layout and runtime-
// dispatched SIMD kernel as the kd-tree leaf scan (see distance_simd.hpp):
// the constructor keeps a strip-transposed copy of the coordinates, built
// once, so every query is one long run of vertical-reduction blocks with no
// id indirection at all.
#pragma once

#include <vector>

#include "spatial/spatial_index.hpp"

namespace sdb {

class BruteForceIndex final : public SpatialIndex {
 public:
  /// The index keeps a reference to `points` AND snapshots the coordinates
  /// into its strip-transposed buffer at construction; the caller must keep
  /// the PointSet alive and unmutated for the index's lifetime (a mutation
  /// after build would not be observed — the same immutability assumption
  /// as KdTree's and GridIndex's packed layouts).
  explicit BruteForceIndex(const PointSet& points);

  void range_query(std::span<const double> q, double eps,
                   std::vector<PointId>& out) const override;

  void range_query_budgeted(std::span<const double> q, double eps,
                            const QueryBudget& budget,
                            std::vector<PointId>& out) const override;

  /// Unified kNN (see SpatialIndex::knn_query). Always exact: brute force
  /// has no nodes for max_nodes to bound. Scans every row (n distance_evals,
  /// zero tree_nodes) with the strip kernel as a cutoff filter once the
  /// heap is full — the same idiom as the kd-tree leaf scan.
  void knn_query(std::span<const double> q, size_t k,
                 const QueryBudget& budget,
                 std::vector<KnnHit>& out) const override;

  [[nodiscard]] size_t size() const override { return points_.size(); }
  [[nodiscard]] u64 byte_size() const override {
    return points_.byte_size() + strips_.size() * sizeof(double);
  }
  [[nodiscard]] const char* name() const override { return "brute-force"; }

 private:
  const PointSet& points_;
  std::vector<double> strips_;  // strip-transposed coords in id order,
                                // padded to whole blocks (padding zeroed)
};

}  // namespace sdb
