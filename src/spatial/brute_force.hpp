// Naive O(n) per query index — the paper's "O(n^2) linear search" baseline.
#pragma once

#include "spatial/spatial_index.hpp"

namespace sdb {

class BruteForceIndex final : public SpatialIndex {
 public:
  /// The index keeps a reference to `points`; the caller must keep the
  /// PointSet alive for the index's lifetime.
  explicit BruteForceIndex(const PointSet& points) : points_(points) {}

  void range_query(std::span<const double> q, double eps,
                   std::vector<PointId>& out) const override;

  void range_query_budgeted(std::span<const double> q, double eps,
                            const QueryBudget& budget,
                            std::vector<PointId>& out) const override;

  [[nodiscard]] size_t size() const override { return points_.size(); }
  [[nodiscard]] u64 byte_size() const override { return points_.byte_size(); }
  [[nodiscard]] const char* name() const override { return "brute-force"; }

 private:
  const PointSet& points_;
};

}  // namespace sdb
