#include "spatial/r_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "geom/distance.hpp"

namespace sdb {

RTree::RTree(const PointSet& points, int max_entries)
    : points_(points),
      dim_(points.dim() > 0 ? points.dim() : 1),
      max_entries_(std::max(4, max_entries)),
      min_entries_(std::max(2, static_cast<int>(max_entries_ * 0.4))) {
  for (PointId i = 0; i < static_cast<PointId>(points_.size()); ++i) {
    insert(i);
  }
}

u32 RTree::alloc_rect() {
  const auto rect = static_cast<u32>(rects_.size());
  rects_.resize(rects_.size() + 2 * static_cast<size_t>(dim_));
  return rect;
}

void RTree::rect_set_point(u32 rect, std::span<const double> p) {
  for (int d = 0; d < dim_; ++d) {
    rect_lo(rect)[d] = p[static_cast<size_t>(d)];
    rect_hi(rect)[d] = p[static_cast<size_t>(d)];
  }
}

void RTree::rect_extend(u32 dst, u32 src) {
  for (int d = 0; d < dim_; ++d) {
    rect_lo(dst)[d] = std::min(rect_lo(dst)[d], rect_lo(src)[d]);
    rect_hi(dst)[d] = std::max(rect_hi(dst)[d], rect_hi(src)[d]);
  }
}

double RTree::rect_area(u32 rect) const {
  double a = 1.0;
  for (int d = 0; d < dim_; ++d) a *= rect_hi(rect)[d] - rect_lo(rect)[d];
  return a;
}

double RTree::rect_margin(u32 rect) const {
  double m = 0.0;
  for (int d = 0; d < dim_; ++d) m += rect_hi(rect)[d] - rect_lo(rect)[d];
  return m;
}

double RTree::rect_enlargement(u32 rect, std::span<const double> p) const {
  // Area enlargement is numerically fragile in high dimensions (products of
  // many edge lengths); R* implementations for point data commonly fall
  // back to margin enlargement, which is what we use.
  double enlargement = 0.0;
  for (int d = 0; d < dim_; ++d) {
    const double lo = rect_lo(rect)[d];
    const double hi = rect_hi(rect)[d];
    const double x = p[static_cast<size_t>(d)];
    if (x < lo) enlargement += lo - x;
    else if (x > hi) enlargement += x - hi;
  }
  return enlargement;
}

double RTree::rect_distance2(u32 rect, std::span<const double> q) const {
  double s = 0.0;
  for (int d = 0; d < dim_; ++d) {
    double diff = 0.0;
    const double x = q[static_cast<size_t>(d)];
    if (x < rect_lo(rect)[d]) diff = rect_lo(rect)[d] - x;
    else if (x > rect_hi(rect)[d]) diff = x - rect_hi(rect)[d];
    s += diff * diff;
  }
  return s;
}

void RTree::insert(PointId id) {
  if (root_ < 0) {
    Node leaf;
    leaf.leaf = true;
    leaf.rect = alloc_rect();
    rect_set_point(leaf.rect, points_[id]);
    leaf.children.push_back(static_cast<i32>(id));
    nodes_.push_back(std::move(leaf));
    root_ = 0;
    height_ = 1;
    return;
  }
  const i32 sibling = insert_recursive(root_, id);
  if (sibling >= 0) {
    // Root split: grow the tree by one level.
    Node new_root;
    new_root.leaf = false;
    new_root.rect = alloc_rect();
    new_root.children = {root_, sibling};
    const auto new_root_id = static_cast<i32>(nodes_.size());
    nodes_.push_back(std::move(new_root));
    // Initialize the new root's rect from its two children.
    const u32 rr = nodes_[static_cast<size_t>(new_root_id)].rect;
    const u32 r0 = nodes_[static_cast<size_t>(root_)].rect;
    for (int d = 0; d < dim_; ++d) {
      rect_lo(rr)[d] = rect_lo(r0)[d];
      rect_hi(rr)[d] = rect_hi(r0)[d];
    }
    rect_extend(rr, nodes_[static_cast<size_t>(sibling)].rect);
    root_ = new_root_id;
    ++height_;
  }
}

i32 RTree::insert_recursive(i32 node_id, PointId id) {
  // NOTE: nodes_ may reallocate during recursion (splits push_back), so
  // never hold a Node reference across a recursive call.
  const auto p = points_[id];
  {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    for (int d = 0; d < dim_; ++d) {
      rect_lo(node.rect)[d] = std::min(rect_lo(node.rect)[d],
                                       p[static_cast<size_t>(d)]);
      rect_hi(node.rect)[d] = std::max(rect_hi(node.rect)[d],
                                       p[static_cast<size_t>(d)]);
    }
    if (node.leaf) {
      node.children.push_back(static_cast<i32>(id));
      if (static_cast<int>(node.children.size()) > max_entries_) {
        return split(node_id);
      }
      return -1;
    }
  }

  // Choose-subtree: least margin enlargement, ties by least area.
  i32 best_child = -1;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    for (const i32 child : node.children) {
      const u32 rect = nodes_[static_cast<size_t>(child)].rect;
      const double enlargement = rect_enlargement(rect, p);
      const double area = rect_margin(rect);
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best_child = child;
      }
    }
  }
  const i32 sibling = insert_recursive(best_child, id);
  if (sibling >= 0) {
    Node& node = nodes_[static_cast<size_t>(node_id)];
    node.children.push_back(sibling);
    rect_extend(node.rect, nodes_[static_cast<size_t>(sibling)].rect);
    if (static_cast<int>(node.children.size()) > max_entries_) {
      return split(node_id);
    }
  }
  return -1;
}

i32 RTree::split(i32 node_id) {
  // Materialize entry boxes (degenerate for leaf point entries).
  const bool leaf = nodes_[static_cast<size_t>(node_id)].leaf;
  std::vector<i32> entries = nodes_[static_cast<size_t>(node_id)].children;
  const size_t count = entries.size();
  std::vector<double> lo(count * static_cast<size_t>(dim_));
  std::vector<double> hi(count * static_cast<size_t>(dim_));
  for (size_t i = 0; i < count; ++i) {
    if (leaf) {
      const auto p = points_[entries[i]];
      for (int d = 0; d < dim_; ++d) {
        lo[i * dim_ + static_cast<size_t>(d)] = p[static_cast<size_t>(d)];
        hi[i * dim_ + static_cast<size_t>(d)] = p[static_cast<size_t>(d)];
      }
    } else {
      const u32 rect = nodes_[static_cast<size_t>(entries[i])].rect;
      for (int d = 0; d < dim_; ++d) {
        lo[i * dim_ + static_cast<size_t>(d)] = rect_lo(rect)[d];
        hi[i * dim_ + static_cast<size_t>(d)] = rect_hi(rect)[d];
      }
    }
  }

  // R* split axis: minimize the summed margins of all valid distributions
  // after sorting along the axis (entries sorted by box center).
  auto group_margin = [&](const std::vector<size_t>& order, size_t from,
                          size_t to) {
    std::vector<double> glo(static_cast<size_t>(dim_),
                            std::numeric_limits<double>::infinity());
    std::vector<double> ghi(static_cast<size_t>(dim_),
                            -std::numeric_limits<double>::infinity());
    for (size_t i = from; i < to; ++i) {
      for (int d = 0; d < dim_; ++d) {
        glo[static_cast<size_t>(d)] = std::min(
            glo[static_cast<size_t>(d)], lo[order[i] * dim_ + static_cast<size_t>(d)]);
        ghi[static_cast<size_t>(d)] = std::max(
            ghi[static_cast<size_t>(d)], hi[order[i] * dim_ + static_cast<size_t>(d)]);
      }
    }
    double margin = 0.0;
    for (int d = 0; d < dim_; ++d) {
      margin += ghi[static_cast<size_t>(d)] - glo[static_cast<size_t>(d)];
    }
    return margin;
  };

  const auto min_k = static_cast<size_t>(min_entries_);
  int best_axis = 0;
  double best_axis_margin = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_order;
  for (int axis = 0; axis < dim_; ++axis) {
    std::vector<size_t> order(count);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const double ca = lo[a * dim_ + static_cast<size_t>(axis)] +
                        hi[a * dim_ + static_cast<size_t>(axis)];
      const double cb = lo[b * dim_ + static_cast<size_t>(axis)] +
                        hi[b * dim_ + static_cast<size_t>(axis)];
      return ca < cb;
    });
    double margin_sum = 0.0;
    for (size_t k = min_k; k + min_k <= count; ++k) {
      margin_sum += group_margin(order, 0, k) + group_margin(order, k, count);
    }
    if (margin_sum < best_axis_margin) {
      best_axis_margin = margin_sum;
      best_axis = axis;
      best_order = std::move(order);
    }
  }
  (void)best_axis;

  // Best distribution on the chosen axis: minimize total margin (a robust
  // stand-in for R*'s overlap criterion with point data).
  size_t best_split = min_k;
  double best_value = std::numeric_limits<double>::infinity();
  for (size_t k = min_k; k + min_k <= count; ++k) {
    const double value =
        group_margin(best_order, 0, k) + group_margin(best_order, k, count);
    if (value < best_value) {
      best_value = value;
      best_split = k;
    }
  }

  // Build the sibling; shrink this node to the first group.
  Node sibling;
  sibling.leaf = leaf;
  sibling.rect = alloc_rect();
  std::vector<i32> keep;
  keep.reserve(best_split);
  for (size_t i = 0; i < best_split; ++i) keep.push_back(entries[best_order[i]]);
  for (size_t i = best_split; i < count; ++i) {
    sibling.children.push_back(entries[best_order[i]]);
  }
  const auto sibling_id = static_cast<i32>(nodes_.size());
  nodes_.push_back(std::move(sibling));
  nodes_[static_cast<size_t>(node_id)].children = std::move(keep);
  recompute_rect(node_id);
  recompute_rect(sibling_id);
  return sibling_id;
}

void RTree::recompute_rect(i32 node_id) {
  Node& node = nodes_[static_cast<size_t>(node_id)];
  for (int d = 0; d < dim_; ++d) {
    rect_lo(node.rect)[d] = std::numeric_limits<double>::infinity();
    rect_hi(node.rect)[d] = -std::numeric_limits<double>::infinity();
  }
  for (const i32 child : node.children) {
    if (node.leaf) {
      const auto p = points_[child];
      for (int d = 0; d < dim_; ++d) {
        rect_lo(node.rect)[d] = std::min(rect_lo(node.rect)[d],
                                         p[static_cast<size_t>(d)]);
        rect_hi(node.rect)[d] = std::max(rect_hi(node.rect)[d],
                                         p[static_cast<size_t>(d)]);
      }
    } else {
      rect_extend(node.rect, nodes_[static_cast<size_t>(child)].rect);
    }
  }
}

void RTree::range_query(std::span<const double> q, double eps,
                        std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void RTree::range_query_budgeted(std::span<const double> q, double eps,
                                 const QueryBudget& budget,
                                 std::vector<PointId>& out) const {
  if (root_ < 0) return;
  u64 visited = 0;
  u64 evals = 0;
  u64 found = 0;
  bool stopped = false;
  query_node(root_, q, eps * eps, budget, visited, evals, found, stopped, out);
  counters::tree_nodes(visited);
  counters::distance_evals(evals);
}

void RTree::query_node(i32 node_id, std::span<const double> q, double eps2,
                       const QueryBudget& budget, u64& visited, u64& evals,
                       u64& found, bool& stopped,
                       std::vector<PointId>& out) const {
  if (stopped) return;
  ++visited;
  if (budget.max_nodes != 0 && visited > budget.max_nodes) {
    stopped = true;
    return;
  }
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  if (rect_distance2(node.rect, q) > eps2) return;
  if (node.leaf) {
    // One eval per leaf entry examined, tallied locally and flushed once
    // per query by the caller — the same charging rule and granularity as
    // the kd-tree and grid paths (this used to go through the counted
    // squared_distance wrapper per row and counters::tree_nodes per node).
    for (const i32 id : node.children) {
      ++evals;
      if (squared_distance_uncounted(q, points_[id]) <= eps2) {
        out.push_back(id);
        ++found;
        if (budget.max_neighbors != 0 && found >= budget.max_neighbors) {
          stopped = true;
          return;
        }
      }
    }
    return;
  }
  for (const i32 child : node.children) {
    query_node(child, q, eps2, budget, visited, evals, found, stopped, out);
    if (stopped) return;
  }
}

void RTree::knn_query(std::span<const double> q, size_t k,
                      const QueryBudget& budget,
                      std::vector<KnnHit>& out) const {
  // Max-heap of lexicographic (d2, id) pairs — smaller-id tie-break at the
  // k-th distance (see the contract in spatial_index.hpp).
  using Entry = std::pair<double, PointId>;
  std::priority_queue<Entry> heap;
  if (root_ < 0 || k == 0) return;

  u64 nodes_visited = 0;
  u64 evals = 0;
  auto visit = [&](auto&& self, i32 node_id) -> void {
    if (budget.max_nodes != 0 && nodes_visited >= budget.max_nodes) return;
    ++nodes_visited;
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    // Strict > keeps the tie-break exact: a subtree at rectangle distance
    // equal to the current k-th distance may still hold an equal-distance
    // point with a smaller id.
    if (heap.size() == k &&
        rect_distance2(node.rect, q) > heap.top().first) {
      return;
    }
    if (node.leaf) {
      for (const i32 id : node.children) {
        ++evals;
        const Entry cand{squared_distance_uncounted(q, points_[id]),
                         static_cast<PointId>(id)};
        if (heap.size() < k) {
          heap.push(cand);
        } else if (cand < heap.top()) {
          heap.pop();
          heap.push(cand);
        }
      }
      return;
    }
    // Descend children nearest-rectangle-first (ties: child order) — the
    // deterministic analogue of the kd-tree's near-child-first descent,
    // and what makes the heap-top pruning above effective.
    std::vector<std::pair<double, size_t>> order;
    order.reserve(node.children.size());
    for (size_t i = 0; i < node.children.size(); ++i) {
      order.emplace_back(
          rect_distance2(nodes_[static_cast<size_t>(node.children[i])].rect,
                         q),
          i);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [dist, i] : order) {
      self(self, node.children[i]);
    }
  };
  visit(visit, root_);
  counters::tree_nodes(nodes_visited);
  counters::distance_evals(evals);

  const size_t base = out.size();
  out.resize(base + heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[base + i] = KnnHit{heap.top().first, heap.top().second};
    heap.pop();
  }
}

u64 RTree::byte_size() const {
  u64 bytes = points_.byte_size() + rects_.size() * sizeof(double);
  for (const Node& node : nodes_) {
    bytes += sizeof(Node) + node.children.size() * sizeof(i32);
  }
  return bytes;
}

void RTree::check_invariants() const {
  if (root_ < 0) return;
  // Leaf depth uniformity: find it first.
  int leaf_depth = 0;
  for (i32 n = root_; !nodes_[static_cast<size_t>(n)].leaf;
       n = nodes_[static_cast<size_t>(n)].children.front()) {
    ++leaf_depth;
  }
  check_node(root_, 0, leaf_depth);
}

void RTree::check_node(i32 node_id, int depth, int leaf_depth) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  SDB_CHECK(!node.children.empty(), "R-tree node with no children");
  if (node_id != root_) {
    SDB_CHECK(static_cast<int>(node.children.size()) >= min_entries_,
              "R-tree node underfilled");
  }
  SDB_CHECK(static_cast<int>(node.children.size()) <= max_entries_,
            "R-tree node overfilled");
  if (node.leaf) {
    SDB_CHECK(depth == leaf_depth, "R-tree leaves at different depths");
    for (const i32 id : node.children) {
      const auto p = points_[id];
      for (int d = 0; d < dim_; ++d) {
        SDB_CHECK(p[static_cast<size_t>(d)] >= rect_lo(node.rect)[d] &&
                      p[static_cast<size_t>(d)] <= rect_hi(node.rect)[d],
                  "leaf point outside node rect");
      }
    }
    return;
  }
  for (const i32 child : node.children) {
    const u32 crect = nodes_[static_cast<size_t>(child)].rect;
    for (int d = 0; d < dim_; ++d) {
      SDB_CHECK(rect_lo(crect)[d] >= rect_lo(node.rect)[d] - 1e-12 &&
                    rect_hi(crect)[d] <= rect_hi(node.rect)[d] + 1e-12,
                "child rect outside parent rect");
    }
    check_node(child, depth + 1, leaf_depth);
  }
}

}  // namespace sdb
