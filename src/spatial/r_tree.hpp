// R-tree with R*-flavored heuristics (Beckmann et al. 1990) — the paper's
// reference [2], cited as the alternative spatial access method to the
// kd-tree.
//
// Dynamic balanced tree of axis-aligned rectangles:
//   * insert descends by least-enlargement (ties: least area), R*'s
//     choose-subtree for point data;
//   * node overflow splits along the axis with minimum total margin, at the
//     position with minimum overlap (R*'s split), no reinsertion pass;
//   * range queries descend every child whose rectangle intersects the
//     query ball.
// Unlike the kd-tree (bulk-built, static), the R-tree supports incremental
// insertion — which is what makes it interesting next to
// core/incremental.hpp, and why the paper's citation matters.
#pragma once

#include "spatial/spatial_index.hpp"

namespace sdb {

class RTree final : public SpatialIndex {
 public:
  /// Build by inserting every point of `points` (kept by reference).
  /// `max_entries` is the node fan-out M; min fill is M * 0.4 (R*'s m).
  explicit RTree(const PointSet& points, int max_entries = 16);

  void range_query(std::span<const double> q, double eps,
                   std::vector<PointId>& out) const override;
  void range_query_budgeted(std::span<const double> q, double eps,
                            const QueryBudget& budget,
                            std::vector<PointId>& out) const override;

  /// Unified kNN (see SpatialIndex::knn_query): depth-first descent with
  /// children visited in ascending (rect distance, child index) order and
  /// subtrees pruned when their rectangle's distance strictly exceeds the
  /// current k-th (d2, id) heap top. Same charging rule as kd/grid: one
  /// distance_eval per leaf entry examined, one tree_node per node visited,
  /// flushed once per query.
  void knn_query(std::span<const double> q, size_t k,
                 const QueryBudget& budget,
                 std::vector<KnnHit>& out) const override;

  [[nodiscard]] size_t size() const override { return points_.size(); }
  [[nodiscard]] u64 byte_size() const override;
  [[nodiscard]] const char* name() const override { return "r-tree"; }

  [[nodiscard]] size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int height() const { return height_; }

  /// Structural invariants (fill factors, rectangle containment); used by
  /// tests. Aborts on violation.
  void check_invariants() const;

 private:
  struct Node {
    bool leaf = true;
    // Bounding rectangle, flattened: rect_lo/rect_hi into rects_.
    u32 rect = 0;
    // Children: node ids for internal nodes, point ids for leaves.
    std::vector<i32> children;
  };

  // Rectangle helpers over the flat rects_ array.
  [[nodiscard]] double* rect_lo(u32 rect) { return rects_.data() + rect; }
  [[nodiscard]] double* rect_hi(u32 rect) {
    return rects_.data() + rect + dim_;
  }
  [[nodiscard]] const double* rect_lo(u32 rect) const {
    return rects_.data() + rect;
  }
  [[nodiscard]] const double* rect_hi(u32 rect) const {
    return rects_.data() + rect + dim_;
  }
  u32 alloc_rect();
  void rect_set_point(u32 rect, std::span<const double> p);
  void rect_extend(u32 dst, u32 src);
  [[nodiscard]] double rect_area(u32 rect) const;
  [[nodiscard]] double rect_margin(u32 rect) const;
  [[nodiscard]] double rect_enlargement(u32 rect, std::span<const double> p) const;
  [[nodiscard]] double rect_distance2(u32 rect, std::span<const double> q) const;
  [[nodiscard]] u32 rect_of_entry(const Node& node, size_t i) const;

  void insert(PointId id);
  /// Returns the id of a new sibling if the child split, else -1.
  i32 insert_recursive(i32 node_id, PointId id);
  i32 split(i32 node_id);
  void recompute_rect(i32 node_id);

  void query_node(i32 node_id, std::span<const double> q, double eps2,
                  const QueryBudget& budget, u64& visited, u64& evals,
                  u64& found, bool& stopped, std::vector<PointId>& out) const;

  void check_node(i32 node_id, int depth, int leaf_depth) const;

  const PointSet& points_;
  int dim_;
  int max_entries_;
  int min_entries_;
  std::vector<Node> nodes_;
  std::vector<double> rects_;
  i32 root_ = -1;
  int height_ = 0;
};

}  // namespace sdb
