#include "spatial/kd_tree.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <numeric>
#include <queue>
#include <thread>

#include "geom/distance.hpp"
#include "util/thread_pool.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace sdb {

namespace {

/// Dimension cap for the fused leaf scatter+box pass's stack accumulators;
/// wider points take the strip export plus the plain per-row box loop.
constexpr int kMaxFusedDim = 64;
/// Below this many points a build is sequential regardless of the thread
/// option: thread-spawn plus task overhead would dominate.
constexpr u32 kParallelBuildThreshold = 1u << 14;
/// Cap on auto-detected build threads.
constexpr unsigned kMaxBuildThreads = 16;

}  // namespace

/// Shared state of one build. Parallel builds claim node slots from one
/// atomic cursor over preallocated arrays, so forked subtree tasks never
/// touch a shared container: every task writes only its own node slots and
/// its own disjoint subrange of ids_ (and disjoint strip lanes). Visibility
/// of the writes back to the constructing thread is established by
/// ThreadPool::wait_idle(). Sequential builds (pool == nullptr) skip the
/// machinery entirely and use the plain counters — no atomic RMW per node.
struct KdTree::BuildCtx {
  std::atomic<u32> node_cursor{0};
  std::atomic<int> max_depth{0};
  u32 seq_cursor = 0;   // plain cursor, pool == nullptr only
  int seq_depth = 0;    // plain depth high-water, pool == nullptr only
  u32 max_nodes = 0;
  u32 seq_cutoff = 0;  // subtree ranges <= this build inline (no fork)
  ThreadPool* pool = nullptr;

  u32 alloc_node() {
    if (pool == nullptr) {
      SDB_CHECK(seq_cursor < max_nodes, "kd-tree node bound exceeded");
      return seq_cursor++;
    }
    const u32 idx = node_cursor.fetch_add(1, std::memory_order_relaxed);
    SDB_CHECK(idx < max_nodes, "kd-tree node bound exceeded");
    return idx;
  }

  /// Claim two ADJACENT slots for a sibling pair (left = base, right =
  /// base + 1). Adjacency is guaranteed even under parallel builds — one
  /// fetch_add(2) instead of two racing fetch_add(1)s — so the query loop
  /// can prefetch both children's node records and (contiguous) box rows
  /// with a fixed number of cache-line touches.
  u32 alloc_children() {
    if (pool == nullptr) {
      SDB_CHECK(seq_cursor + 1 < max_nodes, "kd-tree node bound exceeded");
      const u32 base = seq_cursor;
      seq_cursor += 2;
      return base;
    }
    const u32 base = node_cursor.fetch_add(2, std::memory_order_relaxed);
    SDB_CHECK(base + 1 < max_nodes, "kd-tree node bound exceeded");
    return base;
  }

  void note_depth(int depth) {
    if (pool == nullptr) {
      if (depth > seq_depth) seq_depth = depth;
      return;
    }
    int seen = max_depth.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_depth.compare_exchange_weak(seen, depth,
                                            std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] u32 nodes_allocated() const {
    return pool == nullptr ? seq_cursor
                           : node_cursor.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int depth_seen() const {
    return pool == nullptr ? seq_depth
                           : max_depth.load(std::memory_order_relaxed);
  }
};

KdTree::KdTree(const PointSet& points, const KdTreeOptions& options)
    : points_(points), leaf_size_(std::max(1, options.leaf_size)) {
  const size_t n = points_.size();
  ids_.resize(n);
  std::iota(ids_.begin(), ids_.end(), PointId{0});
  if (n == 0) return;

  const size_t dim = static_cast<size_t>(points_.dim());
  // Structural bound on the node count: internal nodes split at the median,
  // so every leaf holds > leaf_size/2 points (degenerate-spread leaves hold
  // more) => <= 2n/(L+1) * 2 nodes total. Preallocating at the bound lets
  // parallel tasks claim slots with one atomic increment.
  const size_t max_nodes =
      4 * n / (static_cast<size_t>(leaf_size_) + 1) + 8;
  BuildCtx ctx;
  ctx.max_nodes = static_cast<u32>(max_nodes);
  nodes_.resize(max_nodes);
  boxes_.resize(max_nodes * 2 * dim);

  if (options.reorder) {
    // Strip-transposed leaf-order buffer, filled in place as leaves
    // finalize. Allocate without zero-filling the whole buffer (the leaf
    // stores overwrite every live lane); only the final block's padding
    // lanes need zeros so vector loads never read uninitialized memory.
    leaf_coords_len_ = strip_padded_len(n, dim);
    leaf_coords_ = std::make_unique_for_overwrite<double[]>(leaf_coords_len_);
#if defined(__linux__)
    // The buffer is large, written exactly once (by the leaf scatters), and
    // freshly mmapped by the allocator at this size — so at 4KiB pages the
    // build pays one minor fault per page (~2k faults at 1m points), a cost
    // the legacy build simply doesn't have. Ask for transparent huge pages
    // on the page-aligned interior; a kernel without (or with disabled) THP
    // just returns EINVAL/ENOMEM and nothing changes.
    {
      const auto page = static_cast<uintptr_t>(sysconf(_SC_PAGESIZE));
      const auto lo =
          (reinterpret_cast<uintptr_t>(leaf_coords_.get()) + page - 1) &
          ~(page - 1);
      const auto hi = (reinterpret_cast<uintptr_t>(leaf_coords_.get()) +
                       leaf_coords_len_ * sizeof(double)) &
                      ~(page - 1);
      if (hi > lo) {
        (void)madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
      }
    }
#endif
    const size_t live = ((n - 1) / kDistanceStrip) * kDistanceStrip * dim;
    std::fill(leaf_coords_.get() + live, leaf_coords_.get() + leaf_coords_len_,
              0.0);
  }

  unsigned threads = options.build_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, kMaxBuildThreads);

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && n >= kParallelBuildThreshold) {
    pool = std::make_unique<ThreadPool>(threads);
    ctx.pool = pool.get();
    // Fork until subtrees are ~n/(8*threads): enough tasks to balance the
    // pool without drowning it in queue traffic.
    ctx.seq_cutoff = std::max<u32>(static_cast<u32>(leaf_size_),
                                   static_cast<u32>(n / (threads * 8)));
  }

  root_ = static_cast<i32>(ctx.alloc_node());
  build_range(root_, 0, static_cast<u32>(n), 0, ctx);
  if (ctx.pool != nullptr) ctx.pool->wait_idle();

  depth_ = ctx.depth_seen();
  // Median splits bound the depth at ~log2(n) + 1; enforce that the query
  // stack capacity covers it so a future split-policy change cannot turn
  // into silent stack corruption (see kQueryStackCap).
  SDB_CHECK(depth_ + 1 <= kQueryStackCap,
            "kd-tree depth exceeds query stack capacity");
  const u32 node_count = ctx.nodes_allocated();
  nodes_.resize(node_count);
  nodes_.shrink_to_fit();
  boxes_.resize(static_cast<size_t>(node_count) * 2 * dim);
  boxes_.shrink_to_fit();
}

/// Scatter rows [begin, end) of the id permutation into the strip buffer.
/// Row-major reads (each row contiguous), lane-strided writes that stay
/// inside the leaf's few L1-resident strip blocks. Non-temporal stores were
/// measured here and lost: on this class of host plain stores win at both
/// 100k and 1m points (partial-line NT writes cost more than the RFO they
/// save, and the staged-tile variant pays an extra copy).
void KdTree::export_leaf_strips(u32 begin, u32 end) {
  double* strips = leaf_coords_.get();
  for (u32 i = begin; i < end; ++i) {
    strip_store_row(strips, i, points_[ids_[i]]);
  }
}

void KdTree::build_range(i32 idx, u32 begin, u32 end, int depth,
                         BuildCtx& ctx) {
  const int dim = points_.dim();
  ctx.note_depth(depth);

  Node node;
  node.begin = begin;
  node.end = end;
  node.box = static_cast<u32>(idx) * 2 * static_cast<u32>(dim);

  // Tight bounding box over [begin, end), interleaved [lo, hi] per dim.
  double* b = boxes_.data() + node.box;
  for (int d = 0; d < dim; ++d) {
    b[2 * d] = std::numeric_limits<double>::infinity();
    b[2 * d + 1] = -std::numeric_limits<double>::infinity();
  }

  if (end - begin <= static_cast<u32>(leaf_size_)) {
    // Size-bounded leaf. Reorder mode scatters the rows into the
    // strip-transposed buffer in place (no build-then-copy), fused with the
    // bounding-box reduction in a single pass over the rows.
    if (leaf_coords_ != nullptr && dim <= kMaxFusedDim) {
      // STACK-LOCAL min/max accumulators: locals provably don't alias the
      // lane stores, so the accumulators live in registers/L1 instead of
      // the load-modify-store chain on b that the legacy branch pays per
      // element (b could alias the coordinate loads as far as the compiler
      // can prove).
      double lo[kMaxFusedDim], hi[kMaxFusedDim];
      for (int d = 0; d < dim; ++d) {
        lo[d] = std::numeric_limits<double>::infinity();
        hi[d] = -std::numeric_limits<double>::infinity();
      }
      double* strips = leaf_coords_.get();
      for (u32 i = begin; i < end; ++i) {
        const auto p = points_[ids_[i]];
        double* lane = strip_lane(strips, i, static_cast<size_t>(dim));
        for (int d = 0; d < dim; ++d) {
          const double v = p[d];
          lane[static_cast<size_t>(d) * kDistanceStrip] = v;
          lo[d] = std::min(lo[d], v);
          hi[d] = std::max(hi[d], v);
        }
      }
      for (int d = 0; d < dim; ++d) {
        b[2 * d] = lo[d];
        b[2 * d + 1] = hi[d];
      }
    } else {
      // Legacy layout, or a dimensionality too wide for the stack
      // accumulators (rare): plain per-row box update, plus the strip
      // export when the packed layout is on.
      if (leaf_coords_ != nullptr) export_leaf_strips(begin, end);
      for (u32 i = begin; i < end; ++i) {
        const auto p = points_[ids_[i]];
        for (int d = 0; d < dim; ++d) {
          b[2 * d] = std::min(b[2 * d], p[d]);
          b[2 * d + 1] = std::max(b[2 * d + 1], p[d]);
        }
      }
    }
    nodes_[static_cast<size_t>(idx)] = node;
    return;
  }

  for (u32 i = begin; i < end; ++i) {
    const auto p = points_[ids_[i]];
    for (int d = 0; d < dim; ++d) {
      b[2 * d] = std::min(b[2 * d], p[d]);
      b[2 * d + 1] = std::max(b[2 * d + 1], p[d]);
    }
  }

  // Split on the dimension of largest spread at the median.
  int best_dim = 0;
  double best_spread = -1.0;
  for (int d = 0; d < dim; ++d) {
    const double spread = b[2 * d + 1] - b[2 * d];
    if (spread > best_spread) {
      best_spread = spread;
      best_dim = d;
    }
  }

  // Degenerate spread (all coordinates equal): keep as leaf to guarantee
  // termination.
  if (best_spread <= 0.0) {
    if (leaf_coords_ != nullptr) export_leaf_strips(begin, end);
    nodes_[static_cast<size_t>(idx)] = node;
    return;
  }

  const u32 mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](PointId a, PointId b) {
                     return points_[a][best_dim] < points_[b][best_dim];
                   });
  node.split_dim = best_dim;
  node.split_value = points_[ids_[mid]][best_dim];

  // Children slots are claimed by the parent so the node can be finalized
  // before the subtree tasks run — no post-hoc patching, no joins inside
  // tasks (the simple pool would deadlock on nested waits). The pair is
  // adjacent (alloc_children) so queries can prefetch both siblings.
  const u32 base = ctx.alloc_children();
  const i32 left = static_cast<i32>(base);
  const i32 right = static_cast<i32>(base + 1);
  node.left = left;
  node.right = right;
  nodes_[static_cast<size_t>(idx)] = node;

  // Task-recursive fork with a sequential cutoff: ship the left subtree to
  // the pool when it is big enough, keep the right on this thread (the
  // forked task forks its own children in turn). Build bodies never throw —
  // all storage is preallocated — so the discarded futures lose nothing.
  if (ctx.pool != nullptr && mid - begin > ctx.seq_cutoff) {
    ctx.pool->submit([this, left, begin, mid, depth, &ctx] {
      build_range(left, begin, mid, depth + 1, ctx);
    });
  } else {
    build_range(left, begin, mid, depth + 1, ctx);
  }
  build_range(right, mid, end, depth + 1, ctx);
}

double KdTree::box_distance2(const Node& node, std::span<const double> q,
                             double cutoff) const {
  // Branchless clamp: the outside-the-box excess per dimension is
  // max(lo-q, q-hi, 0). Accumulation stays a single ascending-d chain so
  // the result is identical for every build/query configuration; the
  // early exit only ever skips dimensions once "result > cutoff" is already
  // decided (the sum is monotone), and with the interleaved [lo, hi] box
  // rows it keeps most pruned nodes inside their first cache line.
  const int dim = points_.dim();
  const double* b = boxes_.data() + node.box;
  double s = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double diff =
        std::max(std::max(b[2 * d] - q[d], q[d] - b[2 * d + 1]), 0.0);
    s += diff * diff;
    if (s > cutoff) break;
  }
  return s;
}

void KdTree::range_query(std::span<const double> q, double eps,
                         std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void KdTree::range_query_budgeted(std::span<const double> q, double eps,
                                  const QueryBudget& budget,
                                  std::vector<PointId>& out) const {
  if (root_ < 0) return;
  QueryState st{eps, eps * eps, &budget, &out};
  st.kernel = simd::detail::strip_kernel();
  run_query(q, st);
  // One thread-local flush per query instead of one per node/evaluation;
  // totals are exactly what the per-op increments would have produced.
  counters::tree_nodes(st.nodes_visited);
  counters::distance_evals(st.distance_evals);
}

void KdTree::run_query(std::span<const double> q, QueryState& st) const {
  // Explicit-stack depth-first descent, near child popped first — the same
  // node sequence the recursive formulation visits, minus the call frames.
  // Median splits halve the range every level, so the depth (== max live
  // far-children on the stack) is bounded by ~log2(n) + 1; 64 covers any
  // 32-bit point count with a wide margin.
  const size_t dim = static_cast<size_t>(points_.dim());
  const double* strips = leaf_coords_.get();
  i32 stack[kQueryStackCap];  // depth_ + 1 <= cap, checked at build
  int top = 0;
  stack[top++] = root_;
  while (top > 0) {
    const Node& node = nodes_[static_cast<size_t>(stack[--top])];
    ++st.nodes_visited;
    if (st.budget->max_nodes != 0 && st.nodes_visited > st.budget->max_nodes) {
      return;  // the paper's branch-pruning cutoff
    }
    if (box_distance2(node, q, st.eps2) > st.eps2) continue;

    if (!node.is_leaf()) {
      // The sibling pair is adjacent (alloc_children): start both children's
      // node records and box rows toward the cache while this iteration
      // finishes — the near child is popped immediately after.
      __builtin_prefetch(nodes_.data() + node.left);
      __builtin_prefetch(nodes_.data() + node.right);
      __builtin_prefetch(boxes_.data() +
                         static_cast<size_t>(node.left) * 2 * dim);
      __builtin_prefetch(boxes_.data() +
                         static_cast<size_t>(node.right) * 2 * dim);
      // Descend the side containing q first: with a neighbor budget this
      // reports the densest nearby region before the cutoff fires.
      const bool left_first = q[node.split_dim] <= node.split_value;
      stack[top++] = left_first ? node.right : node.left;  // far: visited later
      stack[top++] = left_first ? node.left : node.right;  // near: popped next
      continue;
    }

    if (strips != nullptr && st.budget->max_neighbors != 0) {
      // Neighbor-budgeted leaf scan, still through the strip kernel: the
      // mask walk reconstructs the scalar loop's exact stop row and
      // distance_evals charge (see strip_scan_budgeted), so wide vector-era
      // leaves don't degrade the paper's pruned 1M-point mode to per-row
      // scalar evaluation. Output, counters, and the stop point are byte-
      // identical to the scalar path below.
      const bool stop = strip_scan_budgeted(
          st.kernel, q, st.eps2, strips, node.begin, node.end,
          st.budget->max_neighbors, st.found, st.distance_evals,
          [&](size_t pos) { st.out->push_back(ids_[pos]); });
      if (stop) return;
      continue;
    }
    if (strips != nullptr) {
      // Hot path: stream the strip-transposed blocks through the dispatched
      // SIMD kernel and walk the returned eps-decision mask. A leaf may
      // enter its first block at any lane offset; segments never cross a
      // block boundary. Ascending bit order is ascending position, so
      // candidate order matches the scalar path (ids_ order). The
      // distance_evals tally charges one evaluation per candidate row,
      // matching the scalar path's count exactly — the kernel's internal
      // partial-distance abandonment is an implementation detail of the
      // evaluation, like box_distance2's monotone early exit, and never
      // shows up in the counters.
      st.distance_evals += node.end - node.begin;
      for (u32 i = node.begin; i < node.end;) {
        const u32 lane = i % static_cast<u32>(kDistanceStrip);
        const u32 m = std::min<u32>(static_cast<u32>(kDistanceStrip) - lane,
                                    node.end - i);
        if (i + m < node.end) {
          // Start the next segment's first dimension rows toward L1 while
          // the kernel chews this one; a leaf spans several strip blocks
          // and the blocks are not adjacent in memory.
          __builtin_prefetch(strip_lane(strips, i + m, dim));
          __builtin_prefetch(strip_lane(strips, i + m, dim) + 8);
        }
        u32 mask =
            st.kernel(q.data(), dim, st.eps2, strip_lane(strips, i, dim), m);
        while (mask != 0) {
          const u32 j = static_cast<u32>(std::countr_zero(mask));
          st.out->push_back(ids_[i + j]);
          mask &= mask - 1;
        }
        i += m;
      }
      continue;
    }
    // Scalar path: legacy (reorder=false) layout only — the reference the
    // strip paths above are bit-identical to, budgeted or not.
    for (u32 i = node.begin; i < node.end; ++i) {
      ++st.distance_evals;
      if (squared_distance_uncounted(q, row(i)) <= st.eps2) {
        st.out->push_back(ids_[i]);
        ++st.found;
        if (st.budget->max_neighbors != 0 &&
            st.found >= st.budget->max_neighbors) {
          return;
        }
      }
    }
  }
}

void KdTree::knn_query(std::span<const double> q, size_t k,
                       const QueryBudget& budget,
                       std::vector<KnnHit>& out) const {
  // Max-heap of (distance2, id), bounded to k entries. The PAIR compares —
  // lexicographic (d2, id) — so the retained set is the k smallest (d2, id)
  // pairs: ties at exactly the k-th distance are broken toward the smaller
  // id, deterministically, regardless of tree layout or traversal order.
  // (Comparing d2 alone kept whichever tied point the traversal reached
  // first — a function of leaf packing, not of the data.)
  using Entry = std::pair<double, PointId>;
  std::priority_queue<Entry> heap;
  if (root_ < 0 || k == 0) return;

  u64 nodes_visited = 0;
  u64 evals = 0;
  // Iterative best-first would be faster; recursive depth-first with heap
  // pruning is simpler and the call sites (examples, tests, the exact kNN
  // graph builder's oracle) are small.
  const double* strips = leaf_coords_.get();
  const simd::StripKernelFn kernel =
      strips != nullptr ? simd::detail::strip_kernel() : nullptr;
  auto visit = [&](auto&& self, i32 node_id) -> void {
    // Node budget: stop descending once the cap is reached (max_neighbors
    // is ignored for kNN — see the contract in spatial_index.hpp).
    if (budget.max_nodes != 0 && nodes_visited >= budget.max_nodes) return;
    ++nodes_visited;
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    // Strict > keeps the tie-break exact: a subtree at box distance equal
    // to the current k-th distance may still hold an equal-distance point
    // with a smaller id.
    if (heap.size() == k &&
        box_distance2(node, q, heap.top().first) > heap.top().first) {
      return;
    }
    if (node.is_leaf()) {
      // The kernel contract requires a finite eps^2; a heap of overflowed
      // (inf) distances — possible with ~1e154-magnitude coordinates —
      // falls back to the scalar loop.
      if (strips != nullptr && heap.size() == k &&
          std::isfinite(heap.top().first)) {
        // Kernel-filtered leaf scan: with the heap full, a row can only
        // matter if (d2, id) < heap.top(), which requires d2 <= top.d2 —
        // and top.d2 never increases — so the kernel mask at cutoff =
        // top.d2-at-leaf-entry (its <= keeps the d2 == cutoff rows the
        // id tie-break may still admit) is a superset of every row the
        // scalar loop below would insert. Survivors get the exact distance
        // from the same unfused scalar accumulation, so the heap evolves
        // identically; rows the filter drops satisfy d2 > cutoff >=
        // top.d2-current and were no-ops anyway. Charged one eval per row,
        // exactly like the scalar loop.
        evals += node.end - node.begin;
        const double cutoff = heap.top().first;
        for (u32 i = node.begin; i < node.end;) {
          const u32 lane = i % static_cast<u32>(kDistanceStrip);
          const u32 m = std::min<u32>(static_cast<u32>(kDistanceStrip) - lane,
                                      node.end - i);
          u32 mask = kernel(q.data(), static_cast<size_t>(points_.dim()),
                            cutoff, strip_lane(strips, i,
                                               static_cast<size_t>(
                                                   points_.dim())),
                            m);
          while (mask != 0) {
            const u32 j = static_cast<u32>(std::countr_zero(mask));
            const Entry cand{squared_distance_uncounted(q, row(i + j)),
                             ids_[i + j]};
            if (cand < heap.top()) {
              heap.pop();
              heap.push(cand);
            }
            mask &= mask - 1;
          }
          i += m;
        }
        return;
      }
      // Scalar leaf scan — always while the heap is filling (the first
      // leaves), and the whole query on legacy (reorder=false) trees.
      for (u32 i = node.begin; i < node.end; ++i) {
        ++evals;
        const Entry cand{squared_distance_uncounted(q, row(i)), ids_[i]};
        if (heap.size() < k) {
          heap.push(cand);
        } else if (cand < heap.top()) {
          heap.pop();
          heap.push(cand);
        }
      }
      return;
    }
    const bool left_first = q[node.split_dim] <= node.split_value;
    self(self, left_first ? node.left : node.right);
    self(self, left_first ? node.right : node.left);
  };
  visit(visit, root_);
  // One thread-local flush per query (see the counter contract).
  counters::tree_nodes(nodes_visited);
  counters::distance_evals(evals);

  const size_t base = out.size();
  out.resize(base + heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[base + i] = KnnHit{heap.top().first, heap.top().second};
    heap.pop();
  }
}

std::vector<PointId> KdTree::knn(std::span<const double> q, size_t k) const {
  std::vector<KnnHit> hits;
  knn_query(q, k, QueryBudget{}, hits);
  std::vector<PointId> out;
  out.reserve(hits.size());
  for (const KnnHit& h : hits) out.push_back(h.id);
  return out;
}

u64 KdTree::byte_size() const {
  return points_.byte_size() + ids_.size() * sizeof(PointId) +
         nodes_.size() * sizeof(Node) + boxes_.size() * sizeof(double) +
         leaf_coords_len_ * sizeof(double);
}

}  // namespace sdb
