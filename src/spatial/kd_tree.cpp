#include "spatial/kd_tree.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <queue>
#include <thread>

#include "geom/distance.hpp"
#include "util/thread_pool.hpp"

namespace sdb {

namespace {

/// Below this many points a build is sequential regardless of the thread
/// option: thread-spawn plus task overhead would dominate.
constexpr u32 kParallelBuildThreshold = 1u << 14;
/// Cap on auto-detected build threads.
constexpr unsigned kMaxBuildThreads = 16;

}  // namespace

/// Shared state of one (possibly parallel) build. Node slots come from one
/// atomic cursor over preallocated arrays, so forked subtree tasks never
/// touch a shared container: every task writes only its own node slots and
/// its own disjoint subrange of ids_. Visibility of the writes back to the
/// constructing thread is established by ThreadPool::wait_idle().
struct KdTree::BuildCtx {
  std::atomic<u32> node_cursor{0};
  std::atomic<int> max_depth{0};
  u32 max_nodes = 0;
  u32 seq_cutoff = 0;  // subtree ranges <= this build inline (no fork)
  ThreadPool* pool = nullptr;

  u32 alloc_node() {
    const u32 idx = node_cursor.fetch_add(1, std::memory_order_relaxed);
    SDB_CHECK(idx < max_nodes, "kd-tree node bound exceeded");
    return idx;
  }

  void note_depth(int depth) {
    int seen = max_depth.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_depth.compare_exchange_weak(seen, depth,
                                            std::memory_order_relaxed)) {
    }
  }
};

KdTree::KdTree(const PointSet& points, const KdTreeOptions& options)
    : points_(points), leaf_size_(std::max(1, options.leaf_size)) {
  const size_t n = points_.size();
  ids_.resize(n);
  std::iota(ids_.begin(), ids_.end(), PointId{0});
  if (n == 0) return;

  const size_t dim = static_cast<size_t>(points_.dim());
  // Structural bound on the node count: internal nodes split at the median,
  // so every leaf holds > leaf_size/2 points (degenerate-spread leaves hold
  // more) => <= 2n/(L+1) * 2 nodes total. Preallocating at the bound lets
  // parallel tasks claim slots with one atomic increment.
  const size_t max_nodes =
      4 * n / (static_cast<size_t>(leaf_size_) + 1) + 8;
  BuildCtx ctx;
  ctx.max_nodes = static_cast<u32>(max_nodes);
  nodes_.resize(max_nodes);
  boxes_.resize(max_nodes * 2 * dim);

  unsigned threads = options.build_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, kMaxBuildThreads);

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && n >= kParallelBuildThreshold) {
    pool = std::make_unique<ThreadPool>(threads);
    ctx.pool = pool.get();
    // Fork until subtrees are ~n/(8*threads): enough tasks to balance the
    // pool without drowning it in queue traffic.
    ctx.seq_cutoff = std::max<u32>(static_cast<u32>(leaf_size_),
                                   static_cast<u32>(n / (threads * 8)));
  }

  root_ = static_cast<i32>(ctx.alloc_node());
  build_range(root_, 0, static_cast<u32>(n), 0, ctx);
  if (ctx.pool != nullptr) ctx.pool->wait_idle();

  depth_ = ctx.max_depth.load(std::memory_order_relaxed);
  const u32 node_count = ctx.node_cursor.load(std::memory_order_relaxed);
  nodes_.resize(node_count);
  nodes_.shrink_to_fit();
  boxes_.resize(static_cast<size_t>(node_count) * 2 * dim);
  boxes_.shrink_to_fit();

  if (options.reorder) build_reordered(pool.get(), threads);
}

void KdTree::build_range(i32 idx, u32 begin, u32 end, int depth,
                         BuildCtx& ctx) {
  const int dim = points_.dim();
  ctx.note_depth(depth);

  Node node;
  node.begin = begin;
  node.end = end;
  node.box = static_cast<u32>(idx) * 2 * static_cast<u32>(dim);

  // Tight bounding box over [begin, end).
  double* lo = boxes_.data() + node.box;
  double* hi = lo + dim;
  std::fill(lo, lo + dim, std::numeric_limits<double>::infinity());
  std::fill(hi, hi + dim, -std::numeric_limits<double>::infinity());
  for (u32 i = begin; i < end; ++i) {
    const auto p = points_[ids_[i]];
    for (int d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  if (end - begin <= static_cast<u32>(leaf_size_)) {
    nodes_[static_cast<size_t>(idx)] = node;
    return;
  }

  // Split on the dimension of largest spread at the median.
  int best_dim = 0;
  double best_spread = -1.0;
  for (int d = 0; d < dim; ++d) {
    const double spread = hi[d] - lo[d];
    if (spread > best_spread) {
      best_spread = spread;
      best_dim = d;
    }
  }
  const u32 mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](PointId a, PointId b) {
                     return points_[a][best_dim] < points_[b][best_dim];
                   });
  node.split_dim = best_dim;
  node.split_value = points_[ids_[mid]][best_dim];

  // Degenerate spread (all coordinates equal): keep as leaf to guarantee
  // termination.
  if (best_spread <= 0.0) {
    nodes_[static_cast<size_t>(idx)] = node;
    return;
  }

  // Children slots are claimed by the parent so the node can be finalized
  // before the subtree tasks run — no post-hoc patching, no joins inside
  // tasks (the simple pool would deadlock on nested waits).
  const i32 left = static_cast<i32>(ctx.alloc_node());
  const i32 right = static_cast<i32>(ctx.alloc_node());
  node.left = left;
  node.right = right;
  nodes_[static_cast<size_t>(idx)] = node;

  // Task-recursive fork with a sequential cutoff: ship the left subtree to
  // the pool when it is big enough, keep the right on this thread (the
  // forked task forks its own children in turn). Build bodies never throw —
  // all storage is preallocated — so the discarded futures lose nothing.
  if (ctx.pool != nullptr && mid - begin > ctx.seq_cutoff) {
    ctx.pool->submit([this, left, begin, mid, depth, &ctx] {
      build_range(left, begin, mid, depth + 1, ctx);
    });
  } else {
    build_range(left, begin, mid, depth + 1, ctx);
  }
  build_range(right, mid, end, depth + 1, ctx);
}

void KdTree::build_reordered(ThreadPool* pool, unsigned tasks) {
  const size_t n = ids_.size();
  const size_t dim = static_cast<size_t>(points_.dim());
  leaf_coords_.resize(n * dim);
  const double* src = points_.raw().data();
  auto copy_rows = [this, src, dim](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double* from = src + static_cast<size_t>(ids_[i]) * dim;
      std::copy(from, from + dim, leaf_coords_.data() + i * dim);
    }
  };
  if (pool == nullptr || n < kParallelBuildThreshold) {
    copy_rows(0, n);
    return;
  }
  const size_t chunk = (n + tasks - 1) / tasks;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    pool->submit([copy_rows, begin, end] { copy_rows(begin, end); });
  }
  pool->wait_idle();
}

double KdTree::box_distance2(const Node& node,
                             std::span<const double> q) const {
  const int dim = points_.dim();
  const double* lo = boxes_.data() + node.box;
  const double* hi = lo + dim;
  double s = 0.0;
  for (int d = 0; d < dim; ++d) {
    double diff = 0.0;
    if (q[d] < lo[d]) diff = lo[d] - q[d];
    else if (q[d] > hi[d]) diff = q[d] - hi[d];
    s += diff * diff;
  }
  return s;
}

void KdTree::range_query(std::span<const double> q, double eps,
                         std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void KdTree::range_query_budgeted(std::span<const double> q, double eps,
                                  const QueryBudget& budget,
                                  std::vector<PointId>& out) const {
  if (root_ < 0) return;
  QueryState st{eps, eps * eps, &budget, &out};
  query_node(root_, q, st);
}

void KdTree::query_node(i32 node_id, std::span<const double> q,
                        QueryState& st) const {
  if (st.stopped) return;
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  ++st.nodes_visited;
  counters::tree_nodes(1);
  if (st.budget->max_nodes != 0 && st.nodes_visited > st.budget->max_nodes) {
    st.stopped = true;  // the paper's branch-pruning cutoff
    return;
  }
  if (box_distance2(node, q) > st.eps2) return;

  if (node.is_leaf()) {
    if (!leaf_coords_.empty() && st.budget->max_neighbors == 0) {
      // Hot path: stream the packed leaf rows through the blocked kernel,
      // then filter. Candidate order matches the scalar path (ids_ order),
      // and so does the distance_evals count — every leaf row is evaluated
      // exactly once either way.
      const size_t dim = static_cast<size_t>(points_.dim());
      double d2[kDistanceStrip];
      for (u32 i = node.begin; i < node.end;) {
        const u32 m =
            std::min<u32>(static_cast<u32>(kDistanceStrip), node.end - i);
        squared_distance_batch(
            q, leaf_coords_.data() + static_cast<size_t>(i) * dim, m, d2);
        for (u32 j = 0; j < m; ++j) {
          if (d2[j] <= st.eps2) st.out->push_back(ids_[i + j]);
        }
        i += m;
      }
      return;
    }
    // Scalar path: legacy layout, or a neighbor budget that may stop
    // mid-leaf (evaluating a whole strip would overcount distance_evals).
    for (u32 i = node.begin; i < node.end && !st.stopped; ++i) {
      if (squared_distance(q, row(i)) <= st.eps2) {
        st.out->push_back(ids_[i]);
        ++st.found;
        if (st.budget->max_neighbors != 0 &&
            st.found >= st.budget->max_neighbors) {
          st.stopped = true;
        }
      }
    }
    return;
  }

  // Descend the side containing q first: with a neighbor budget this
  // reports the densest nearby region before the cutoff fires.
  const bool left_first = q[node.split_dim] <= node.split_value;
  query_node(left_first ? node.left : node.right, q, st);
  query_node(left_first ? node.right : node.left, q, st);
}

std::vector<PointId> KdTree::knn(std::span<const double> q, size_t k) const {
  // Max-heap of (distance2, id); bounded to k entries.
  using Entry = std::pair<double, PointId>;
  std::priority_queue<Entry> heap;
  if (root_ < 0 || k == 0) return {};

  // Iterative best-first would be faster; recursive depth-first with heap
  // pruning is simpler and the call sites (examples, tests) are small.
  auto visit = [&](auto&& self, i32 node_id) -> void {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    counters::tree_nodes(1);
    if (heap.size() == k && box_distance2(node, q) > heap.top().first) return;
    if (node.is_leaf()) {
      for (u32 i = node.begin; i < node.end; ++i) {
        const double d2 = squared_distance(q, row(i));
        if (heap.size() < k) {
          heap.emplace(d2, ids_[i]);
        } else if (d2 < heap.top().first) {
          heap.pop();
          heap.emplace(d2, ids_[i]);
        }
      }
      return;
    }
    const bool left_first = q[node.split_dim] <= node.split_value;
    self(self, left_first ? node.left : node.right);
    self(self, left_first ? node.right : node.left);
  };
  visit(visit, root_);

  std::vector<PointId> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

u64 KdTree::byte_size() const {
  return points_.byte_size() + ids_.size() * sizeof(PointId) +
         nodes_.size() * sizeof(Node) + boxes_.size() * sizeof(double) +
         leaf_coords_.size() * sizeof(double);
}

}  // namespace sdb
