#include "spatial/kd_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "geom/distance.hpp"

namespace sdb {

KdTree::KdTree(const PointSet& points, int leaf_size)
    : points_(points), leaf_size_(std::max(1, leaf_size)) {
  ids_.resize(points_.size());
  std::iota(ids_.begin(), ids_.end(), PointId{0});
  if (!ids_.empty()) {
    nodes_.reserve(2 * ids_.size() / static_cast<size_t>(leaf_size_) + 4);
    root_ = build(0, static_cast<u32>(ids_.size()), 0);
  }
}

i32 KdTree::build(u32 begin, u32 end, int depth) {
  depth_ = std::max(depth_, depth);
  const int dim = points_.dim();

  // Tight bounding box over [begin, end).
  const u32 box_offset = static_cast<u32>(boxes_.size());
  boxes_.resize(boxes_.size() + 2 * static_cast<size_t>(dim));
  double* lo = boxes_.data() + box_offset;
  double* hi = lo + dim;
  std::fill(lo, lo + dim, std::numeric_limits<double>::infinity());
  std::fill(hi, hi + dim, -std::numeric_limits<double>::infinity());
  for (u32 i = begin; i < end; ++i) {
    const auto p = points_[ids_[i]];
    for (int d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  Node node;
  node.begin = begin;
  node.end = end;
  node.box = box_offset;

  if (end - begin <= static_cast<u32>(leaf_size_)) {
    const i32 id = static_cast<i32>(nodes_.size());
    nodes_.push_back(node);
    return id;
  }

  // Split on the dimension of largest spread at the median.
  int best_dim = 0;
  double best_spread = -1.0;
  for (int d = 0; d < dim; ++d) {
    const double spread = hi[d] - lo[d];
    if (spread > best_spread) {
      best_spread = spread;
      best_dim = d;
    }
  }
  const u32 mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](PointId a, PointId b) {
                     return points_[a][best_dim] < points_[b][best_dim];
                   });
  node.split_dim = best_dim;
  node.split_value = points_[ids_[mid]][best_dim];

  // Degenerate spread (all coordinates equal): keep as leaf to guarantee
  // termination.
  if (best_spread <= 0.0) {
    const i32 id = static_cast<i32>(nodes_.size());
    nodes_.push_back(node);
    return id;
  }

  const i32 id = static_cast<i32>(nodes_.size());
  nodes_.push_back(node);  // reserve the slot; children reference is patched
  const i32 left = build(begin, mid, depth + 1);
  const i32 right = build(mid, end, depth + 1);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

double KdTree::box_distance2(const Node& node,
                             std::span<const double> q) const {
  const int dim = points_.dim();
  const double* lo = boxes_.data() + node.box;
  const double* hi = lo + dim;
  double s = 0.0;
  for (int d = 0; d < dim; ++d) {
    double diff = 0.0;
    if (q[d] < lo[d]) diff = lo[d] - q[d];
    else if (q[d] > hi[d]) diff = q[d] - hi[d];
    s += diff * diff;
  }
  return s;
}

void KdTree::range_query(std::span<const double> q, double eps,
                         std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void KdTree::range_query_budgeted(std::span<const double> q, double eps,
                                  const QueryBudget& budget,
                                  std::vector<PointId>& out) const {
  if (root_ < 0) return;
  QueryState st{eps, eps * eps, &budget, &out};
  query_node(root_, q, st);
}

void KdTree::query_node(i32 node_id, std::span<const double> q,
                        QueryState& st) const {
  if (st.stopped) return;
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  ++st.nodes_visited;
  counters::tree_nodes(1);
  if (st.budget->max_nodes != 0 && st.nodes_visited > st.budget->max_nodes) {
    st.stopped = true;  // the paper's branch-pruning cutoff
    return;
  }
  if (box_distance2(node, q) > st.eps2) return;

  if (node.is_leaf()) {
    for (u32 i = node.begin; i < node.end && !st.stopped; ++i) {
      const PointId id = ids_[i];
      if (squared_distance(q, points_[id]) <= st.eps2) {
        st.out->push_back(id);
        ++st.found;
        if (st.budget->max_neighbors != 0 &&
            st.found >= st.budget->max_neighbors) {
          st.stopped = true;
        }
      }
    }
    return;
  }

  // Descend the side containing q first: with a neighbor budget this
  // reports the densest nearby region before the cutoff fires.
  const bool left_first = q[node.split_dim] <= node.split_value;
  query_node(left_first ? node.left : node.right, q, st);
  query_node(left_first ? node.right : node.left, q, st);
}

std::vector<PointId> KdTree::knn(std::span<const double> q, size_t k) const {
  // Max-heap of (distance2, id); bounded to k entries.
  using Entry = std::pair<double, PointId>;
  std::priority_queue<Entry> heap;
  if (root_ < 0 || k == 0) return {};

  // Iterative best-first would be faster; recursive depth-first with heap
  // pruning is simpler and the call sites (examples, tests) are small.
  auto visit = [&](auto&& self, i32 node_id) -> void {
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    counters::tree_nodes(1);
    if (heap.size() == k && box_distance2(node, q) > heap.top().first) return;
    if (node.is_leaf()) {
      for (u32 i = node.begin; i < node.end; ++i) {
        const PointId id = ids_[i];
        const double d2 = squared_distance(q, points_[id]);
        if (heap.size() < k) {
          heap.emplace(d2, id);
        } else if (d2 < heap.top().first) {
          heap.pop();
          heap.emplace(d2, id);
        }
      }
      return;
    }
    const bool left_first = q[node.split_dim] <= node.split_value;
    self(self, left_first ? node.left : node.right);
    self(self, left_first ? node.right : node.left);
  };
  visit(visit, root_);

  std::vector<PointId> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

u64 KdTree::byte_size() const {
  return points_.byte_size() + ids_.size() * sizeof(PointId) +
         nodes_.size() * sizeof(Node) + boxes_.size() * sizeof(double);
}

}  // namespace sdb
