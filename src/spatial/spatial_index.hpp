// Abstract eps-neighborhood index.
//
// DBSCAN (Algorithm 1/2 in the paper) only needs one spatial primitive:
// "all points within eps of q". The paper uses a kd-tree broadcast to every
// executor; this interface lets the clustering code run against the kd-tree,
// a uniform grid, or the naive O(n^2) scan so the paper's complexity claims
// (Section V.B) can be measured rather than asserted.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geom/point_set.hpp"
#include "util/common.hpp"

namespace sdb {

/// Optional limits for approximate ("pruning branches") queries used by the
/// paper for the 1M-point runs. Zero means unlimited.
///
/// Approximation contract (what a truncated query does and does not
/// promise):
///
///  * DETERMINISM. Every index has a fixed candidate traversal order — the
///    kd-tree descends the child containing the query first and scans leaf
///    buckets in build-permutation order; the grid walks neighbor cells in
///    odometer order and cells in id order; brute force scans ids
///    ascending. A budgeted query returns exactly the first matches of that
///    traversal until a budget fires, so repeated invocations with the same
///    index, query, and budget return the *identical* sequence. The
///    kd-tree's order depends only on the data (median splits are
///    deterministic), not on how many threads built the tree.
///  * SUBSET. Budgeted results are always a subset of the exact result set
///    (enforced by test_index_properties BudgetLaws).
///  * NO SYMMETRY. Exact eps-neighborhoods are symmetric (A within eps of B
///    iff B within eps of A); truncated ones are NOT. The budget can fire
///    while scanning a dense region around A before reaching B, yet B's own
///    query — a different traversal — may still report A. Consumers that
///    derive core status from budgeted neighbor counts (local_dbscan under
///    the paper's r1m configuration) therefore see an asymmetric relation:
///    border/core decisions can differ from the exact run, and cluster
///    results are approximate in exactly the way the paper's Section V
///    "pruning branches" runs are. Anything needing symmetric neighborhoods
///    must run with budget.exact().
struct QueryBudget {
  /// Stop reporting once this many neighbors were found (0 = exact).
  u64 max_neighbors = 0;
  /// Stop descending once this many tree nodes / grid cells were visited
  /// (0 = exact).
  u64 max_nodes = 0;

  [[nodiscard]] bool exact() const {
    return max_neighbors == 0 && max_nodes == 0;
  }
};

/// One kNN result row: squared distance + point id. knn_query returns hits
/// in ascending (d2, id) order.
struct KnnHit {
  double d2 = 0.0;
  PointId id = 0;
  friend bool operator==(const KnnHit&, const KnnHit&) = default;
};

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Append the ids of all points within `eps` of `q` to `out` (out is NOT
  /// cleared). Includes the query point itself if it is in the dataset.
  virtual void range_query(std::span<const double> q, double eps,
                           std::vector<PointId>& out) const = 0;

  /// Budgeted range query; an exact index may ignore the budget only when
  /// budget.exact() is true.
  virtual void range_query_budgeted(std::span<const double> q, double eps,
                                    const QueryBudget& budget,
                                    std::vector<PointId>& out) const = 0;

  /// k-nearest-neighbor query: append the k nearest indexed points to `out`
  /// (including the query point itself when it is indexed), ascending by
  /// (d2, id).
  ///
  /// DETERMINISTIC TIE-BREAK. Ties at exactly the k-th distance are broken
  /// toward the SMALLER point id: the result is the k smallest (d2, id)
  /// pairs under lexicographic order. That makes the exact result unique —
  /// independent of index structure, leaf size, build thread count, and
  /// SIMD variant — so every index returns byte-identical hit lists for the
  /// same dataset (regression-tested across all four in test_knn_queries).
  ///
  /// COUNTER CONTRACT (unified across kd-tree / grid / R-tree / brute
  /// force; the R-tree previously had no kNN path at all and the kd-tree
  /// charged per node rather than per query):
  ///   * distance_evals: exactly ONE per candidate row the traversal
  ///     examines, charged whether or not the row enters the heap, and
  ///     regardless of SIMD partial-distance abandonment or kernel cutoff
  ///     filtering (both are implementation details of the evaluation, as
  ///     in range queries). A traversal forced to examine every row (k >=
  ///     n, or a single-leaf/single-cell layout) charges exactly n on every
  ///     index.
  ///   * tree_nodes: one per tree node / grid cell the traversal visits
  ///     (zero for brute force, which has no nodes).
  ///   * All tallies are accumulated locally and flushed once per query
  ///     (counters::add), like range_query.
  ///
  /// BUDGET SEMANTICS for kNN (previously undocumented):
  ///   * budget.max_nodes bounds the nodes/cells visited, exactly as in
  ///     range queries: the traversal stops descending once the cap is
  ///     reached, and the result is the EXACT kNN (with the same tie-break)
  ///     of the rows actually examined — deterministic, because traversal
  ///     order is fixed (see the approximation contract above), but NOT
  ///     necessarily a subset of the unbudgeted result's ids beyond the
  ///     prefix property of the traversal. Indexes without nodes (brute
  ///     force) ignore it and are always exact.
  ///   * budget.max_neighbors is IGNORED: k itself is the result-size
  ///     bound, and truncating below k would silently change kNN semantics
  ///     (regression-tested: results are identical for any max_neighbors).
  virtual void knn_query(std::span<const double> q, size_t k,
                         const QueryBudget& budget,
                         std::vector<KnnHit>& out) const = 0;

  /// Number of indexed points.
  [[nodiscard]] virtual size_t size() const = 0;

  /// Approximate serialized size in bytes; prices the paper's broadcast of
  /// the kd-tree to every executor.
  [[nodiscard]] virtual u64 byte_size() const = 0;

  /// Human-readable name used in bench output.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace sdb
