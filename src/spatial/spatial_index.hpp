// Abstract eps-neighborhood index.
//
// DBSCAN (Algorithm 1/2 in the paper) only needs one spatial primitive:
// "all points within eps of q". The paper uses a kd-tree broadcast to every
// executor; this interface lets the clustering code run against the kd-tree,
// a uniform grid, or the naive O(n^2) scan so the paper's complexity claims
// (Section V.B) can be measured rather than asserted.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geom/point_set.hpp"
#include "util/common.hpp"

namespace sdb {

/// Optional limits for approximate ("pruning branches") queries used by the
/// paper for the 1M-point runs. Zero means unlimited.
struct QueryBudget {
  /// Stop reporting once this many neighbors were found (0 = exact).
  u64 max_neighbors = 0;
  /// Stop descending once this many tree nodes / grid cells were visited
  /// (0 = exact).
  u64 max_nodes = 0;

  [[nodiscard]] bool exact() const {
    return max_neighbors == 0 && max_nodes == 0;
  }
};

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Append the ids of all points within `eps` of `q` to `out` (out is NOT
  /// cleared). Includes the query point itself if it is in the dataset.
  virtual void range_query(std::span<const double> q, double eps,
                           std::vector<PointId>& out) const = 0;

  /// Budgeted range query; an exact index may ignore the budget only when
  /// budget.exact() is true.
  virtual void range_query_budgeted(std::span<const double> q, double eps,
                                    const QueryBudget& budget,
                                    std::vector<PointId>& out) const = 0;

  /// Number of indexed points.
  [[nodiscard]] virtual size_t size() const = 0;

  /// Approximate serialized size in bytes; prices the paper's broadcast of
  /// the kd-tree to every executor.
  [[nodiscard]] virtual u64 byte_size() const = 0;

  /// Human-readable name used in bench output.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace sdb
