// Abstract eps-neighborhood index.
//
// DBSCAN (Algorithm 1/2 in the paper) only needs one spatial primitive:
// "all points within eps of q". The paper uses a kd-tree broadcast to every
// executor; this interface lets the clustering code run against the kd-tree,
// a uniform grid, or the naive O(n^2) scan so the paper's complexity claims
// (Section V.B) can be measured rather than asserted.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geom/point_set.hpp"
#include "util/common.hpp"

namespace sdb {

/// Optional limits for approximate ("pruning branches") queries used by the
/// paper for the 1M-point runs. Zero means unlimited.
///
/// Approximation contract (what a truncated query does and does not
/// promise):
///
///  * DETERMINISM. Every index has a fixed candidate traversal order — the
///    kd-tree descends the child containing the query first and scans leaf
///    buckets in build-permutation order; the grid walks neighbor cells in
///    odometer order and cells in id order; brute force scans ids
///    ascending. A budgeted query returns exactly the first matches of that
///    traversal until a budget fires, so repeated invocations with the same
///    index, query, and budget return the *identical* sequence. The
///    kd-tree's order depends only on the data (median splits are
///    deterministic), not on how many threads built the tree.
///  * SUBSET. Budgeted results are always a subset of the exact result set
///    (enforced by test_index_properties BudgetLaws).
///  * NO SYMMETRY. Exact eps-neighborhoods are symmetric (A within eps of B
///    iff B within eps of A); truncated ones are NOT. The budget can fire
///    while scanning a dense region around A before reaching B, yet B's own
///    query — a different traversal — may still report A. Consumers that
///    derive core status from budgeted neighbor counts (local_dbscan under
///    the paper's r1m configuration) therefore see an asymmetric relation:
///    border/core decisions can differ from the exact run, and cluster
///    results are approximate in exactly the way the paper's Section V
///    "pruning branches" runs are. Anything needing symmetric neighborhoods
///    must run with budget.exact().
struct QueryBudget {
  /// Stop reporting once this many neighbors were found (0 = exact).
  u64 max_neighbors = 0;
  /// Stop descending once this many tree nodes / grid cells were visited
  /// (0 = exact).
  u64 max_nodes = 0;

  [[nodiscard]] bool exact() const {
    return max_neighbors == 0 && max_nodes == 0;
  }
};

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Append the ids of all points within `eps` of `q` to `out` (out is NOT
  /// cleared). Includes the query point itself if it is in the dataset.
  virtual void range_query(std::span<const double> q, double eps,
                           std::vector<PointId>& out) const = 0;

  /// Budgeted range query; an exact index may ignore the budget only when
  /// budget.exact() is true.
  virtual void range_query_budgeted(std::span<const double> q, double eps,
                                    const QueryBudget& budget,
                                    std::vector<PointId>& out) const = 0;

  /// Number of indexed points.
  [[nodiscard]] virtual size_t size() const = 0;

  /// Approximate serialized size in bytes; prices the paper's broadcast of
  /// the kd-tree to every executor.
  [[nodiscard]] virtual u64 byte_size() const = 0;

  /// Human-readable name used in bench output.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace sdb
