#include "spatial/brute_force.hpp"

#include "geom/distance.hpp"

namespace sdb {

void BruteForceIndex::range_query(std::span<const double> q, double eps,
                                  std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void BruteForceIndex::range_query_budgeted(std::span<const double> q,
                                           double eps,
                                           const QueryBudget& budget,
                                           std::vector<PointId>& out) const {
  const double eps2 = eps * eps;
  u64 found = 0;
  const auto n = static_cast<PointId>(points_.size());
  for (PointId i = 0; i < n; ++i) {
    if (squared_distance(q, points_[i]) <= eps2) {
      out.push_back(i);
      ++found;
      if (budget.max_neighbors != 0 && found >= budget.max_neighbors) return;
    }
  }
}

}  // namespace sdb
