#include "spatial/brute_force.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>

#include "geom/distance.hpp"

namespace sdb {

BruteForceIndex::BruteForceIndex(const PointSet& points) : points_(points) {
  const size_t n = points_.size();
  if (n == 0) return;
  const size_t dim = static_cast<size_t>(points_.dim());
  strips_.assign(strip_padded_len(n, dim), 0.0);
  for (size_t i = 0; i < n; ++i) {
    strip_store_row(strips_.data(), i, points_[static_cast<PointId>(i)]);
  }
}

void BruteForceIndex::range_query(std::span<const double> q, double eps,
                                  std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void BruteForceIndex::range_query_budgeted(std::span<const double> q,
                                           double eps,
                                           const QueryBudget& budget,
                                           std::vector<PointId>& out) const {
  const double eps2 = eps * eps;
  const size_t n = points_.size();
  if (budget.max_neighbors == 0) {
    // Ids are packed-position order here, so the exact scan is one long run
    // of full strip blocks through the dispatched SIMD kernel (the final
    // block is the only partial one).
    const size_t dim = static_cast<size_t>(q.size());
    const simd::StripKernelFn kernel = simd::detail::strip_kernel();
    for (size_t i = 0; i < n;) {
      const size_t m = std::min(kDistanceStrip, n - i);
      u32 mask = kernel(q.data(), dim, eps2,
                        strips_.data() + (i / kDistanceStrip) *
                            (kDistanceStrip * dim),
                        m);
      while (mask != 0) {
        const u32 j = static_cast<u32>(std::countr_zero(mask));
        out.push_back(static_cast<PointId>(i + j));
        mask &= mask - 1;
      }
      i += m;
    }
    counters::distance_evals(n);
    return;
  }
  // Neighbor-budgeted scan through the same strip kernel and snapshot the
  // exact path reads (no live-PointSet gather): the mask walk reconstructs
  // the scalar loop's exact stop row and distance_evals charge
  // (strip_scan_budgeted), byte-identical output and counters.
  u64 found = 0;
  u64 evals = 0;
  const simd::StripKernelFn kernel = simd::detail::strip_kernel();
  strip_scan_budgeted(kernel, q, eps2, strips_.data(), 0, n,
                      budget.max_neighbors, found, evals,
                      [&](size_t pos) {
                        out.push_back(static_cast<PointId>(pos));
                      });
  counters::distance_evals(evals);
}

void BruteForceIndex::knn_query(std::span<const double> q, size_t k,
                                const QueryBudget& budget,
                                std::vector<KnnHit>& out) const {
  (void)budget;  // no nodes to bound; max_neighbors ignored per contract
  // Max-heap of lexicographic (d2, id) pairs — the smaller-id tie-break at
  // the k-th distance (see spatial_index.hpp).
  using Entry = std::pair<double, PointId>;
  std::priority_queue<Entry> heap;
  const size_t n = points_.size();
  if (k == 0 || n == 0) return;
  const size_t dim = static_cast<size_t>(points_.dim());
  const simd::StripKernelFn kernel = simd::detail::strip_kernel();
  for (size_t i = 0; i < n;) {
    const size_t m = std::min(kDistanceStrip, n - i);
    const double cutoff = heap.size() == k ? heap.top().first
                                           : std::numeric_limits<double>::max();
    if (heap.size() == k && std::isfinite(cutoff)) {
      // Kernel cutoff filter (kd-tree leaf idiom): the <= mask at the
      // block-entry k-th distance is a superset of every row the scalar
      // loop could insert; survivors get the exact unfused scalar distance.
      u32 mask = kernel(q.data(), dim, cutoff,
                        strips_.data() + (i / kDistanceStrip) *
                            (kDistanceStrip * dim),
                        m);
      while (mask != 0) {
        const u32 j = static_cast<u32>(std::countr_zero(mask));
        const Entry cand{
            squared_distance_uncounted(q, points_[static_cast<PointId>(i + j)]),
            static_cast<PointId>(i + j)};
        if (cand < heap.top()) {
          heap.pop();
          heap.push(cand);
        }
        mask &= mask - 1;
      }
    } else {
      for (size_t j = 0; j < m; ++j) {
        const Entry cand{
            squared_distance_uncounted(q, points_[static_cast<PointId>(i + j)]),
            static_cast<PointId>(i + j)};
        if (heap.size() < k) {
          heap.push(cand);
        } else if (cand < heap.top()) {
          heap.pop();
          heap.push(cand);
        }
      }
    }
    i += m;
  }
  // One eval per row examined — the scan examines every row exactly once.
  counters::distance_evals(n);

  const size_t base = out.size();
  out.resize(base + heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[base + i] = KnnHit{heap.top().first, heap.top().second};
    heap.pop();
  }
}

}  // namespace sdb
