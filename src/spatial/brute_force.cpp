#include "spatial/brute_force.hpp"

#include <algorithm>
#include <bit>

#include "geom/distance.hpp"

namespace sdb {

BruteForceIndex::BruteForceIndex(const PointSet& points) : points_(points) {
  const size_t n = points_.size();
  if (n == 0) return;
  const size_t dim = static_cast<size_t>(points_.dim());
  strips_.assign(strip_padded_len(n, dim), 0.0);
  for (size_t i = 0; i < n; ++i) {
    strip_store_row(strips_.data(), i, points_[static_cast<PointId>(i)]);
  }
}

void BruteForceIndex::range_query(std::span<const double> q, double eps,
                                  std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void BruteForceIndex::range_query_budgeted(std::span<const double> q,
                                           double eps,
                                           const QueryBudget& budget,
                                           std::vector<PointId>& out) const {
  const double eps2 = eps * eps;
  const size_t n = points_.size();
  if (budget.max_neighbors == 0) {
    // Ids are packed-position order here, so the exact scan is one long run
    // of full strip blocks through the dispatched SIMD kernel (the final
    // block is the only partial one).
    const size_t dim = static_cast<size_t>(q.size());
    const simd::StripKernelFn kernel = simd::detail::strip_kernel();
    for (size_t i = 0; i < n;) {
      const size_t m = std::min(kDistanceStrip, n - i);
      u32 mask = kernel(q.data(), dim, eps2,
                        strips_.data() + (i / kDistanceStrip) *
                            (kDistanceStrip * dim),
                        m);
      while (mask != 0) {
        const u32 j = static_cast<u32>(std::countr_zero(mask));
        out.push_back(static_cast<PointId>(i + j));
        mask &= mask - 1;
      }
      i += m;
    }
    counters::distance_evals(n);
    return;
  }
  // Neighbor-budgeted scan through the same strip kernel and snapshot the
  // exact path reads (no live-PointSet gather): the mask walk reconstructs
  // the scalar loop's exact stop row and distance_evals charge
  // (strip_scan_budgeted), byte-identical output and counters.
  u64 found = 0;
  u64 evals = 0;
  const simd::StripKernelFn kernel = simd::detail::strip_kernel();
  strip_scan_budgeted(kernel, q, eps2, strips_.data(), 0, n,
                      budget.max_neighbors, found, evals,
                      [&](size_t pos) {
                        out.push_back(static_cast<PointId>(pos));
                      });
  counters::distance_evals(evals);
}

}  // namespace sdb
