#include "spatial/brute_force.hpp"

#include <algorithm>

#include "geom/distance.hpp"

namespace sdb {

void BruteForceIndex::range_query(std::span<const double> q, double eps,
                                  std::vector<PointId>& out) const {
  range_query_budgeted(q, eps, QueryBudget{}, out);
}

void BruteForceIndex::range_query_budgeted(std::span<const double> q,
                                           double eps,
                                           const QueryBudget& budget,
                                           std::vector<PointId>& out) const {
  const double eps2 = eps * eps;
  const size_t n = points_.size();
  if (budget.max_neighbors == 0) {
    // PointSet rows are already contiguous, so the exact scan is one long
    // run of the blocked kernel — no id indirection at all.
    const size_t dim = static_cast<size_t>(points_.dim());
    const double* rows = points_.raw().data();
    double d2[kDistanceStrip];
    for (size_t i = 0; i < n;) {
      const size_t m = std::min(kDistanceStrip, n - i);
      squared_distance_batch(q, rows + i * dim, m, d2);
      for (size_t j = 0; j < m; ++j) {
        if (d2[j] <= eps2) out.push_back(static_cast<PointId>(i + j));
      }
      i += m;
    }
    return;
  }
  u64 found = 0;
  for (PointId i = 0; i < static_cast<PointId>(n); ++i) {
    if (squared_distance(q, points_[i]) <= eps2) {
      out.push_back(i);
      ++found;
      if (found >= budget.max_neighbors) return;
    }
  }
}

}  // namespace sdb
