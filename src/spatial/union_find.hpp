// Disjoint-set forest with union by rank + path halving.
//
// Used by the driver-side UnionFind merge strategy (the sound alternative to
// the paper's single-pass Algorithm 4) and by the clustering-equivalence
// checker. Patwary et al.'s PDSDBSCAN — the accuracy comparator the paper
// cites — is built on the same structure.
#pragma once

#include <numeric>
#include <vector>

#include "util/common.hpp"
#include "util/counters.hpp"

namespace sdb {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  /// Representative of x's set (with path halving).
  size_t find(size_t x) {
    SDB_DCHECK(x < parent_.size(), "UnionFind::find out of range");
    while (parent_[x] != x) {
      counters::merge_ops(1);
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merge the sets of a and b. Returns true if they were distinct.
  bool unite(size_t a, size_t b) {
    a = find(a);
    b = find(b);
    counters::merge_ops(1);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    --sets_;
    return true;
  }

  [[nodiscard]] bool same(size_t a, size_t b) {
    return find(a) == find(b);
  }

  [[nodiscard]] size_t size() const { return parent_.size(); }

  /// Number of disjoint sets remaining.
  [[nodiscard]] size_t set_count() const { return sets_; }

 private:
  std::vector<size_t> parent_;
  std::vector<u32> rank_;
  size_t sets_ = parent_.size();
};

}  // namespace sdb
