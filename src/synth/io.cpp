#include "synth/io.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "util/serialize.hpp"

namespace sdb::synth {

std::string to_text(const PointSet& points) {
  std::string out;
  // ~24 chars per coordinate is a safe reservation for %.17g doubles.
  out.reserve(points.size() * static_cast<size_t>(points.dim()) * 24);
  char buf[64];
  for (PointId i = 0; i < static_cast<PointId>(points.size()); ++i) {
    const auto p = points[i];
    for (size_t d = 0; d < p.size(); ++d) {
      const int len = std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
      if (d > 0) out.push_back(' ');
      out.append(buf, static_cast<size_t>(len));
    }
    out.push_back('\n');
  }
  return out;
}

PointSet from_text(const std::string& text) {
  PointSet points;
  std::vector<double> coords;
  int dim = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    coords.clear();
    size_t p = pos;
    while (p < eol) {
      while (p < eol && (text[p] == ' ' || text[p] == '\t' || text[p] == '\r')) {
        ++p;
      }
      if (p >= eol) break;
      size_t q = p;
      while (q < eol && text[q] != ' ' && text[q] != '\t' && text[q] != '\r') {
        ++q;
      }
      double value = 0.0;
      const auto [ptr, ec] = std::from_chars(text.data() + p, text.data() + q, value);
      SDB_CHECK(ec == std::errc{} && ptr == text.data() + q,
                "malformed coordinate in point text");
      coords.push_back(value);
      p = q;
    }
    pos = eol + 1;
    if (coords.empty()) continue;  // skip blank lines
    if (dim == 0) {
      dim = static_cast<int>(coords.size());
      points = PointSet(dim);
    }
    SDB_CHECK(static_cast<int>(coords.size()) == dim,
              "inconsistent dimensionality in point text");
    points.add(coords);
  }
  if (dim == 0) return PointSet(1);  // empty input -> empty 1-d set
  return points;
}

void save_binary(const PointSet& points, const std::string& path) {
  BinaryWriter w;
  w.write_u32(static_cast<u32>(points.dim()));
  w.write_u64(points.size());
  w.write_f64_vec(points.raw());
  write_file(path, w.buffer());
}

PointSet load_binary(const std::string& path) {
  const std::vector<char> data = read_file(path);
  BinaryReader r(data);
  const int dim = static_cast<int>(r.read_u32());
  const u64 n = r.read_u64();
  std::vector<double> raw = r.read_f64_vec();
  SDB_CHECK(raw.size() == n * static_cast<u64>(dim), "corrupt binary point file");
  return PointSet(dim, std::move(raw));
}

}  // namespace sdb::synth
