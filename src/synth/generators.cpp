#include "synth/generators.hpp"

#include <array>
#include <cmath>
#include <numbers>

namespace sdb::synth {

double ball_volume(int dim, double r) {
  const double d = dim;
  return std::pow(std::numbers::pi, d / 2.0) / std::tgamma(d / 2.0 + 1.0) *
         std::pow(r, d);
}

double uniform_box_side(i64 n, int dim, double eps, double target_neighbors) {
  SDB_CHECK(n > 0 && target_neighbors > 0, "bad uniform_box_side arguments");
  // Expected neighbors = n * V_ball(eps) / side^dim  => solve for side.
  const double volume = static_cast<double>(n) * ball_volume(dim, eps) /
                        target_neighbors;
  return std::pow(volume, 1.0 / dim);
}

PointSet gaussian_clusters(const GaussianMixtureConfig& cfg, Rng& rng,
                           std::vector<i32>* true_labels) {
  SDB_CHECK(cfg.n > 0 && cfg.dim > 0 && cfg.clusters > 0,
            "bad GaussianMixtureConfig");
  PointSet points(cfg.dim);
  points.reserve(static_cast<size_t>(cfg.n));
  if (true_labels != nullptr) {
    true_labels->clear();
    true_labels->reserve(static_cast<size_t>(cfg.n));
  }

  // Sample well-separated centers by rejection (bounded retries; if the box
  // is too crowded we accept the best effort — the datasets remain valid,
  // just with potentially touching clusters).
  const double min_sep2 = cfg.center_separation_sigmas * cfg.sigma *
                          cfg.center_separation_sigmas * cfg.sigma;
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<size_t>(cfg.clusters));
  for (int c = 0; c < cfg.clusters; ++c) {
    std::vector<double> best(static_cast<size_t>(cfg.dim));
    for (int attempt = 0; attempt < 256; ++attempt) {
      std::vector<double> cand(static_cast<size_t>(cfg.dim));
      for (auto& x : cand) x = rng.uniform(0.0, cfg.box_side);
      bool ok = true;
      for (const auto& existing : centers) {
        double d2 = 0.0;
        for (int d = 0; d < cfg.dim; ++d) {
          const double diff = cand[d] - existing[d];
          d2 += diff * diff;
        }
        if (d2 < min_sep2) {
          ok = false;
          break;
        }
      }
      best = cand;
      if (ok) break;
    }
    centers.push_back(std::move(best));
  }

  const i64 noise_count =
      static_cast<i64>(std::llround(cfg.noise_fraction * cfg.n));
  std::vector<double> p(static_cast<size_t>(cfg.dim));
  for (i64 i = 0; i < cfg.n; ++i) {
    if (i < noise_count) {
      for (auto& x : p) x = rng.uniform(0.0, cfg.box_side);
      points.add(p);
      if (true_labels != nullptr) true_labels->push_back(-1);
      continue;
    }
    const auto c = static_cast<size_t>(rng.uniform_index(centers.size()));
    for (int d = 0; d < cfg.dim; ++d) {
      p[static_cast<size_t>(d)] = rng.normal(centers[c][static_cast<size_t>(d)], cfg.sigma);
    }
    points.add(p);
    if (true_labels != nullptr) true_labels->push_back(static_cast<i32>(c));
  }
  return points;
}

double embedding_suggested_eps(const EmbeddingConfig& cfg) {
  const double intra2 =
      2.0 * cfg.intrinsic_dim * cfg.spread * cfg.spread +
      2.0 * cfg.dim * cfg.jitter * cfg.jitter;
  return 1.5 * std::sqrt(intra2);
}

PointSet embedding_clusters(const EmbeddingConfig& cfg, Rng& rng,
                            std::vector<i32>* true_labels) {
  SDB_CHECK(cfg.n > 0 && cfg.dim > 0 && cfg.clusters > 0 &&
                cfg.intrinsic_dim > 0 && cfg.intrinsic_dim <= cfg.dim,
            "bad EmbeddingConfig");
  const auto dim = static_cast<size_t>(cfg.dim);
  const auto intrinsic = static_cast<size_t>(cfg.intrinsic_dim);

  // Centers: rejection-sampled in a cube sized to hold `clusters` balls of
  // the required separation (bounded retries, best effort like
  // gaussian_clusters).
  const double min_sep =
      cfg.center_separation * embedding_suggested_eps(cfg) / 1.5;
  const double side =
      min_sep * std::cbrt(static_cast<double>(cfg.clusters)) * 2.0;
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<size_t>(cfg.clusters));
  for (int c = 0; c < cfg.clusters; ++c) {
    std::vector<double> best(dim);
    for (int attempt = 0; attempt < 256; ++attempt) {
      std::vector<double> cand(dim);
      for (auto& x : cand) x = rng.uniform(0.0, side);
      bool ok = true;
      for (const auto& existing : centers) {
        double d2 = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = cand[d] - existing[d];
          d2 += diff * diff;
        }
        if (d2 < min_sep * min_sep) {
          ok = false;
          break;
        }
      }
      best = cand;
      if (ok) break;
    }
    centers.push_back(std::move(best));
  }

  // Per-cluster manifold basis: `intrinsic` random unit vectors in R^dim
  // (near-orthogonal at high dim without explicit orthogonalization).
  std::vector<std::vector<double>> bases(centers.size());
  for (auto& basis : bases) {
    basis.resize(intrinsic * dim);
    for (size_t t = 0; t < intrinsic; ++t) {
      double norm2 = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double x = rng.normal(0.0, 1.0);
        basis[t * dim + d] = x;
        norm2 += x * x;
      }
      const double inv = 1.0 / std::sqrt(std::max(norm2, 1e-30));
      for (size_t d = 0; d < dim; ++d) basis[t * dim + d] *= inv;
    }
  }

  PointSet points(cfg.dim);
  points.reserve(static_cast<size_t>(cfg.n));
  if (true_labels != nullptr) {
    true_labels->clear();
    true_labels->reserve(static_cast<size_t>(cfg.n));
  }
  const i64 noise_count =
      static_cast<i64>(std::llround(cfg.noise_fraction * cfg.n));
  std::vector<double> p(dim);
  for (i64 i = 0; i < cfg.n; ++i) {
    if (i < noise_count) {
      for (auto& x : p) x = rng.uniform(0.0, side);
      points.add(p);
      if (true_labels != nullptr) true_labels->push_back(-1);
      continue;
    }
    const auto c = static_cast<size_t>(rng.uniform_index(centers.size()));
    p = centers[c];
    for (size_t t = 0; t < intrinsic; ++t) {
      const double a = rng.normal(0.0, cfg.spread);
      for (size_t d = 0; d < dim; ++d) p[d] += a * bases[c][t * dim + d];
    }
    for (size_t d = 0; d < dim; ++d) p[d] += rng.normal(0.0, cfg.jitter);
    points.add(p);
    if (true_labels != nullptr) true_labels->push_back(static_cast<i32>(c));
  }
  return points;
}

PointSet uniform_points(const UniformConfig& cfg, Rng& rng) {
  SDB_CHECK(cfg.n > 0 && cfg.dim > 0, "bad UniformConfig");
  const double side =
      cfg.box_side > 0.0
          ? cfg.box_side
          : uniform_box_side(cfg.n, cfg.dim, cfg.eps, cfg.target_neighbors);
  PointSet points(cfg.dim);
  points.reserve(static_cast<size_t>(cfg.n));
  std::vector<double> p(static_cast<size_t>(cfg.dim));
  for (i64 i = 0; i < cfg.n; ++i) {
    for (auto& x : p) x = rng.uniform(0.0, side);
    points.add(p);
  }
  return points;
}

namespace {

void median_order(const PointSet& points, std::vector<PointId>& ids,
                  size_t begin, size_t end, int leaf) {
  if (end - begin <= static_cast<size_t>(leaf)) return;
  const int dim = points.dim();
  int best = 0;
  double spread = -1.0;
  for (int d = 0; d < dim; ++d) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (size_t i = begin; i < end; ++i) {
      const double x = points[ids[i]][static_cast<size_t>(d)];
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    if (hi - lo > spread) {
      spread = hi - lo;
      best = d;
    }
  }
  if (spread <= 0.0) return;
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(ids.begin() + static_cast<long>(begin),
                   ids.begin() + static_cast<long>(mid),
                   ids.begin() + static_cast<long>(end),
                   [&](PointId a, PointId b) {
                     return points[a][static_cast<size_t>(best)] <
                            points[b][static_cast<size_t>(best)];
                   });
  median_order(points, ids, begin, mid, leaf);
  median_order(points, ids, mid, end, leaf);
}

}  // namespace

PointSet spatially_sorted(const PointSet& points, int leaf) {
  std::vector<PointId> ids(points.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  median_order(points, ids, 0, ids.size(), std::max(1, leaf));
  PointSet out(points.dim());
  out.reserve(points.size());
  for (const PointId id : ids) out.add(points[id]);
  return out;
}

PointSet two_moons(i64 n_per_moon, double noise_sigma, Rng& rng) {
  PointSet points(2);
  points.reserve(static_cast<size_t>(2 * n_per_moon));
  for (i64 i = 0; i < n_per_moon; ++i) {
    const double t = std::numbers::pi * rng.uniform();
    const double p[2] = {std::cos(t) + rng.normal(0.0, noise_sigma),
                         std::sin(t) + rng.normal(0.0, noise_sigma)};
    points.add(p);
  }
  for (i64 i = 0; i < n_per_moon; ++i) {
    const double t = std::numbers::pi * rng.uniform();
    const double p[2] = {1.0 - std::cos(t) + rng.normal(0.0, noise_sigma),
                         0.5 - std::sin(t) + rng.normal(0.0, noise_sigma)};
    points.add(p);
  }
  return points;
}

PointSet rings(i64 n_per_ring, int num_rings, double noise_sigma,
               i64 background_noise, Rng& rng) {
  PointSet points(2);
  points.reserve(static_cast<size_t>(n_per_ring * num_rings + background_noise));
  const double max_r = static_cast<double>(num_rings);
  for (int ring = 1; ring <= num_rings; ++ring) {
    const double r = static_cast<double>(ring);
    for (i64 i = 0; i < n_per_ring; ++i) {
      const double t = 2.0 * std::numbers::pi * rng.uniform();
      const double rr = r + rng.normal(0.0, noise_sigma);
      const double p[2] = {rr * std::cos(t), rr * std::sin(t)};
      points.add(p);
    }
  }
  for (i64 i = 0; i < background_noise; ++i) {
    const double p[2] = {rng.uniform(-max_r - 1, max_r + 1),
                         rng.uniform(-max_r - 1, max_r + 1)};
    points.add(p);
  }
  return points;
}

PointSet blobs_2d(i64 n, int num_blobs, double sigma, i64 background_noise,
                  Rng& rng, std::vector<i32>* true_labels) {
  PointSet points(2);
  points.reserve(static_cast<size_t>(n + background_noise));
  if (true_labels != nullptr) true_labels->clear();
  const double side = 10.0 * sigma * std::sqrt(static_cast<double>(num_blobs));
  std::vector<std::array<double, 2>> centers;
  centers.reserve(static_cast<size_t>(num_blobs));
  for (int b = 0; b < num_blobs; ++b) {
    centers.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  }
  for (i64 i = 0; i < n; ++i) {
    const auto b = static_cast<size_t>(rng.uniform_index(centers.size()));
    const double p[2] = {rng.normal(centers[b][0], sigma),
                         rng.normal(centers[b][1], sigma)};
    points.add(p);
    if (true_labels != nullptr) true_labels->push_back(static_cast<i32>(b));
  }
  for (i64 i = 0; i < background_noise; ++i) {
    const double p[2] = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
    points.add(p);
    if (true_labels != nullptr) true_labels->push_back(-1);
  }
  return points;
}

}  // namespace sdb::synth
