// Point-set (de)serialization: a text format (one whitespace-separated point
// per line, the shape HDFS text inputs take in the paper's pipeline) and a
// compact binary format for checkpointing generated datasets.
#pragma once

#include <string>

#include "geom/point_set.hpp"

namespace sdb::synth {

/// Render points as text, one line per point, coordinates separated by a
/// single space, '\n' line endings. This is the payload stored in MiniDfs
/// for the textFile -> parse pipeline.
std::string to_text(const PointSet& points);

/// Parse the text format. Aborts on malformed input or inconsistent
/// dimensionality. Empty lines are skipped.
PointSet from_text(const std::string& text);

/// Binary round trip (dim + count + raw doubles).
void save_binary(const PointSet& points, const std::string& path);
PointSet load_binary(const std::string& path);

}  // namespace sdb::synth
