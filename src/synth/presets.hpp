// Table I dataset presets.
//
// Name    Points      d   eps  minpts  kind
// c10k    10,000      10  25   5       synthetic-cluster (Gaussian mixture)
// c100k   102,400     10  25   5       synthetic-cluster
// r10k    10,000      10  25   5       uniform random
// r100k   102,400     10  25   5       uniform random
// r1m     1,024,000   10  25   5       uniform random
//
// `scale` uniformly shrinks the point counts (benches default to reduced
// scale on laptop-class hosts; --full restores the paper's sizes).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "synth/generators.hpp"

namespace sdb::synth {

enum class DatasetKind { kCluster, kUniform, kEmbedding };

struct DatasetSpec {
  std::string name;
  i64 points = 0;
  int dim = 10;
  double eps = 25.0;
  i64 minpts = 5;
  DatasetKind kind = DatasetKind::kUniform;
};

/// All five Table I presets, in the paper's order.
const std::vector<DatasetSpec>& table1_presets();

/// High-dimensional embedding presets for the KNN-DBSCAN backend (not part
/// of the paper's Table I): e10k64 / e10k128 — 10,000 synthetic embedding
/// vectors at d=64 / d=128 (synth::embedding_clusters), eps from
/// embedding_suggested_eps. The regime where exact kd-tree range queries
/// degenerate to linear scans.
const std::vector<DatasetSpec>& embedding_presets();

/// Look up a preset by name ("c10k", "c100k", "r10k", "r100k", "r1m",
/// "e10k64", "e10k128").
std::optional<DatasetSpec> find_preset(const std::string& name);

/// Generate the dataset for a preset, deterministically from `seed`.
/// `scale` in (0, 1] multiplies the point count (1.0 = the paper's size).
PointSet generate(const DatasetSpec& spec, u64 seed, double scale = 1.0);

}  // namespace sdb::synth
