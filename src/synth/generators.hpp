// Synthetic dataset generators.
//
// The paper's testbed (Table I) is five synthetic datasets made with the IBM
// Quest generator: two "synthetic-cluster" sets (c10k, c100k) and three
// random sets (r10k, r100k, r1m), all 10-dimensional, clustered with eps=25,
// minpts=5. Quest itself is not redistributable, so we generate the closest
// equivalents:
//   * c-series -> Gaussian mixture: k well-separated spherical clusters with
//     per-dimension sigma tied to eps (so eps=25/minpts=5 recovers them),
//     plus a uniform noise fraction.
//   * r-series -> uniform points in a box whose side is solved from the
//     d-ball volume so the *expected* eps-neighborhood size is a chosen
//     target; this yields the mix of core/border/noise points and the heavy
//     partial-cluster fragmentation the paper reports for r100k/r1m.
// All generation is deterministic given a seed.
#pragma once

#include <string>
#include <vector>

#include "geom/point_set.hpp"
#include "util/rng.hpp"

namespace sdb::synth {

/// Volume of the d-dimensional ball of radius r.
double ball_volume(int dim, double r);

/// Side length of the d-cube in which n uniform points have an expected
/// eps-neighborhood of `target_neighbors` points.
double uniform_box_side(i64 n, int dim, double eps, double target_neighbors);

struct GaussianMixtureConfig {
  i64 n = 10'000;
  int dim = 10;
  int clusters = 16;
  /// Per-dimension standard deviation of each cluster. The default ties it
  /// to the paper's eps=25: sigma = eps/5 makes typical intra-cluster
  /// distances (~sigma*sqrt(2d)) fall under eps at d=10.
  double sigma = 5.0;
  /// Minimum center separation in units of sigma.
  double center_separation_sigmas = 12.0;
  /// Fraction of points drawn uniformly over the whole box (noise).
  double noise_fraction = 0.05;
  /// Bounding box side for centers/noise.
  double box_side = 1000.0;
};

/// Gaussian-mixture "synthetic-cluster" dataset (c-series surrogate).
/// If `true_labels` is non-null it receives the generating component of each
/// point (-1 for noise) for use by quality metrics.
PointSet gaussian_clusters(const GaussianMixtureConfig& cfg, Rng& rng,
                           std::vector<i32>* true_labels = nullptr);

struct UniformConfig {
  i64 n = 10'000;
  int dim = 10;
  /// Box side; if <= 0 it is solved from eps/target_neighbors.
  double box_side = 0.0;
  double eps = 25.0;
  double target_neighbors = 15.0;
};

/// Uniform random dataset (r-series surrogate).
PointSet uniform_points(const UniformConfig& cfg, Rng& rng);

/// Reorder points into recursive-median (kd) order: global indices become
/// spatially coherent, so contiguous index blocks cover compact regions.
/// The paper's Quest-generated inputs behave this way — its partial-cluster
/// counts (Figure 6) are only reachable when HDFS block partitions are
/// spatially coherent, so the r-series presets apply this ordering
/// (DESIGN.md §2). `leaf` is the granularity at which recursion stops.
PointSet spatially_sorted(const PointSet& points, int leaf = 32);

/// --- 2-D shape generators for the example applications ---

/// Two interleaved half-moons with Gaussian jitter; the classic shape that
/// defeats k-means but not DBSCAN.
PointSet two_moons(i64 n_per_moon, double noise_sigma, Rng& rng);

/// Concentric rings (annuli) with jitter plus uniform background noise.
PointSet rings(i64 n_per_ring, int num_rings, double noise_sigma,
               i64 background_noise, Rng& rng);

/// Isotropic 2-D Gaussian blobs plus uniform background noise.
PointSet blobs_2d(i64 n, int num_blobs, double sigma, i64 background_noise,
                  Rng& rng, std::vector<i32>* true_labels = nullptr);

}  // namespace sdb::synth
