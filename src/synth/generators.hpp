// Synthetic dataset generators.
//
// The paper's testbed (Table I) is five synthetic datasets made with the IBM
// Quest generator: two "synthetic-cluster" sets (c10k, c100k) and three
// random sets (r10k, r100k, r1m), all 10-dimensional, clustered with eps=25,
// minpts=5. Quest itself is not redistributable, so we generate the closest
// equivalents:
//   * c-series -> Gaussian mixture: k well-separated spherical clusters with
//     per-dimension sigma tied to eps (so eps=25/minpts=5 recovers them),
//     plus a uniform noise fraction.
//   * r-series -> uniform points in a box whose side is solved from the
//     d-ball volume so the *expected* eps-neighborhood size is a chosen
//     target; this yields the mix of core/border/noise points and the heavy
//     partial-cluster fragmentation the paper reports for r100k/r1m.
// All generation is deterministic given a seed.
#pragma once

#include <string>
#include <vector>

#include "geom/point_set.hpp"
#include "util/rng.hpp"

namespace sdb::synth {

/// Volume of the d-dimensional ball of radius r.
double ball_volume(int dim, double r);

/// Side length of the d-cube in which n uniform points have an expected
/// eps-neighborhood of `target_neighbors` points.
double uniform_box_side(i64 n, int dim, double eps, double target_neighbors);

struct GaussianMixtureConfig {
  i64 n = 10'000;
  int dim = 10;
  int clusters = 16;
  /// Per-dimension standard deviation of each cluster. The default ties it
  /// to the paper's eps=25: sigma = eps/5 makes typical intra-cluster
  /// distances (~sigma*sqrt(2d)) fall under eps at d=10.
  double sigma = 5.0;
  /// Minimum center separation in units of sigma.
  double center_separation_sigmas = 12.0;
  /// Fraction of points drawn uniformly over the whole box (noise).
  double noise_fraction = 0.05;
  /// Bounding box side for centers/noise.
  double box_side = 1000.0;
};

/// Gaussian-mixture "synthetic-cluster" dataset (c-series surrogate).
/// If `true_labels` is non-null it receives the generating component of each
/// point (-1 for noise) for use by quality metrics.
PointSet gaussian_clusters(const GaussianMixtureConfig& cfg, Rng& rng,
                           std::vector<i32>* true_labels = nullptr);

struct UniformConfig {
  i64 n = 10'000;
  int dim = 10;
  /// Box side; if <= 0 it is solved from eps/target_neighbors.
  double box_side = 0.0;
  double eps = 25.0;
  double target_neighbors = 15.0;
};

/// Uniform random dataset (r-series surrogate).
PointSet uniform_points(const UniformConfig& cfg, Rng& rng);

/// Synthetic embedding workload: the high-dimensional regime the KNN-DBSCAN
/// backend exists for. Real embedding vectors live near low-dimensional
/// manifolds inside a high-dimensional ambient space; each cluster here is a
/// random `intrinsic_dim`-dimensional affine patch in R^dim — points are
/// center + sum_t a_t * u_t (a_t ~ N(0, spread^2), u_t random unit vectors)
/// plus N(0, jitter^2) ambient noise per coordinate. Distances concentrate
/// (exact kd-tree pruning degenerates to a linear scan) while cluster
/// structure stays recoverable — exactly the workload of PAPERS.md's
/// KNN-DBSCAN evaluation.
struct EmbeddingConfig {
  i64 n = 10'000;
  int dim = 64;            ///< ambient dimensionality (64 / 128 presets)
  int intrinsic_dim = 8;   ///< manifold dimension per cluster
  int clusters = 10;
  double spread = 1.0;     ///< on-manifold coefficient sigma
  double jitter = 0.02;    ///< full-ambient per-coordinate noise sigma
  /// Minimum center separation in units of the RMS intra-cluster pair
  /// distance (see embedding_suggested_eps).
  double center_separation = 4.0;
  /// Fraction of points drawn uniformly over the center bounding box
  /// (outliers that exact DBSCAN and the KNN backend must both call noise).
  double noise_fraction = 0.02;
};

/// The eps that makes DBSCAN recover EmbeddingConfig's clusters: 1.5x the
/// RMS intra-cluster pair distance sqrt(2*intrinsic*spread^2 +
/// 2*dim*jitter^2) — comfortably above typical intra-cluster gaps, well
/// below the center separation.
double embedding_suggested_eps(const EmbeddingConfig& cfg);

/// Generate the embedding workload. If `true_labels` is non-null it receives
/// the generating component of each point (-1 for the uniform outliers).
PointSet embedding_clusters(const EmbeddingConfig& cfg, Rng& rng,
                            std::vector<i32>* true_labels = nullptr);

/// Reorder points into recursive-median (kd) order: global indices become
/// spatially coherent, so contiguous index blocks cover compact regions.
/// The paper's Quest-generated inputs behave this way — its partial-cluster
/// counts (Figure 6) are only reachable when HDFS block partitions are
/// spatially coherent, so the r-series presets apply this ordering
/// (DESIGN.md §2). `leaf` is the granularity at which recursion stops.
PointSet spatially_sorted(const PointSet& points, int leaf = 32);

/// --- 2-D shape generators for the example applications ---

/// Two interleaved half-moons with Gaussian jitter; the classic shape that
/// defeats k-means but not DBSCAN.
PointSet two_moons(i64 n_per_moon, double noise_sigma, Rng& rng);

/// Concentric rings (annuli) with jitter plus uniform background noise.
PointSet rings(i64 n_per_ring, int num_rings, double noise_sigma,
               i64 background_noise, Rng& rng);

/// Isotropic 2-D Gaussian blobs plus uniform background noise.
PointSet blobs_2d(i64 n, int num_blobs, double sigma, i64 background_noise,
                  Rng& rng, std::vector<i32>* true_labels = nullptr);

}  // namespace sdb::synth
