#include "synth/presets.hpp"

#include <algorithm>
#include <cmath>

namespace sdb::synth {

const std::vector<DatasetSpec>& table1_presets() {
  static const std::vector<DatasetSpec> presets = {
      {"c10k", 10'000, 10, 25.0, 5, DatasetKind::kCluster},
      {"c100k", 102'400, 10, 25.0, 5, DatasetKind::kCluster},
      {"r10k", 10'000, 10, 25.0, 5, DatasetKind::kUniform},
      {"r100k", 102'400, 10, 25.0, 5, DatasetKind::kUniform},
      {"r1m", 1'024'000, 10, 25.0, 5, DatasetKind::kUniform},
  };
  return presets;
}

namespace {

EmbeddingConfig embedding_config_for(const DatasetSpec& spec) {
  EmbeddingConfig cfg;
  cfg.n = spec.points;
  cfg.dim = spec.dim;
  return cfg;  // intrinsic/spread/jitter stay at the struct defaults
}

}  // namespace

const std::vector<DatasetSpec>& embedding_presets() {
  static const std::vector<DatasetSpec> presets = [] {
    std::vector<DatasetSpec> out = {
        {"e10k64", 10'000, 64, 0.0, 5, DatasetKind::kEmbedding},
        {"e10k128", 10'000, 128, 0.0, 5, DatasetKind::kEmbedding},
    };
    // eps is a property of the generator's geometry, not a free parameter:
    // derive it so the preset clusters under its own spec.
    for (auto& spec : out) {
      spec.eps = embedding_suggested_eps(embedding_config_for(spec));
    }
    return out;
  }();
  return presets;
}

std::optional<DatasetSpec> find_preset(const std::string& name) {
  for (const auto& p : table1_presets()) {
    if (p.name == name) return p;
  }
  for (const auto& p : embedding_presets()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

PointSet generate(const DatasetSpec& spec, u64 seed, double scale) {
  SDB_CHECK(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  const i64 n = std::max<i64>(
      64, static_cast<i64>(std::llround(static_cast<double>(spec.points) * scale)));
  Rng rng(derive_seed(seed, spec.name));
  if (spec.kind == DatasetKind::kEmbedding) {
    EmbeddingConfig cfg = embedding_config_for(spec);
    cfg.n = n;
    return embedding_clusters(cfg, rng);
  }
  if (spec.kind == DatasetKind::kCluster) {
    GaussianMixtureConfig cfg;
    cfg.n = n;
    cfg.dim = spec.dim;
    // Cluster count grows sub-linearly with n, as Quest's does; sigma is
    // tied to eps so minpts=5 / eps=25 recovers the components.
    cfg.clusters = std::max(8, static_cast<int>(std::cbrt(static_cast<double>(n))));
    // sigma = eps/3: typical intra-cluster pair distance (sigma*sqrt(2d) ~
    // 37 > eps) exceeds eps, so clusters are eps-connected CHAINS rather
    // than cliques — matching the fragmentation the paper reports for the
    // c-series under block partitioning (its Figure 6c).
    cfg.sigma = spec.eps / 3.0;
    cfg.noise_fraction = 0.05;
    cfg.box_side = cfg.sigma * cfg.center_separation_sigmas *
                   std::cbrt(static_cast<double>(cfg.clusters)) * 4.0;
    return gaussian_clusters(cfg, rng);
  }
  UniformConfig cfg;
  cfg.n = n;
  cfg.dim = spec.dim;
  cfg.eps = spec.eps;
  // Density target: ~3x minpts expected neighbors, which yields the paper's
  // qualitative regime — a mix of core points, border points, and noise,
  // fragmenting into many partial clusters under block partitioning.
  // Density target: ~3x minpts expected neighbors -> a mix of core, border
  // and noise points. The points are then emitted in spatial (recursive
  // median) order: the paper's Figure 6 partial-cluster counts are only
  // reachable when index-contiguous blocks are spatially coherent, which is
  // how Quest-generated files behave (see spatially_sorted()).
  cfg.target_neighbors = 3.0 * static_cast<double>(spec.minpts);
  return spatially_sorted(uniform_points(cfg, rng));
}

}  // namespace sdb::synth
