// AVX2 strip kernel. Compiled with -mavx2 ONLY (no -mfma) and
// -ffp-contract=off: the accumulation must stay an unfused multiply + add so
// every lane's partial sums are bit-identical to the scalar fallback — a
// fused multiply-add's single rounding would flip exactly-eps boundary
// pairs. The speedup comes from three places: the lanes (4 doubles per
// vector), the unit-stride SoA loads, and partial-distance abandonment —
// the kernel walks dimensions OUTERMOST across all lanes of the strip and
// stops fetching further dimension rows once every lane's partial sum
// already exceeds eps^2. Squared-distance accumulation is monotone
// (non-negative terms, and IEEE round-to-nearest addition of a non-negative
// value never decreases the sum), so "partial > eps^2" decides the final
// eps test exactly; abandonment changes how much memory the kernel reads —
// decisive when the strip working set exceeds cache — never the answer.
//
// Only selected when __builtin_cpu_supports("avx2") at dispatch time, so
// building this TU on any x86-64 toolchain is safe even for older hosts.
#include "geom/distance_simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <limits>

namespace sdb::simd::detail {

namespace {

/// Full 32-lane block: eight 4-wide accumulators, fully unrolled so they
/// live in registers. The abandonment probe (a 7-min tree + one compare +
/// movemask, cheap against the 8 loads the skipped dimensions would have
/// cost) runs on the shared dense-early/geometric-tail schedule —
/// abandon_probe_due in distance_simd.hpp.
inline std::uint32_t strip_avx2_full(const double* q, size_t dim, double eps2,
                                     const double* lanes) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  __m256d a4 = _mm256_setzero_pd(), a5 = _mm256_setzero_pd();
  __m256d a6 = _mm256_setzero_pd(), a7 = _mm256_setzero_pd();
  const __m256d veps = _mm256_set1_pd(eps2);
  for (size_t d = 0; d < dim; ++d) {
    const __m256d vq = _mm256_broadcast_sd(q + d);
    const double* row = lanes + d * kDistanceStrip;
    const __m256d d0 = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 0));
    const __m256d d1 = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 4));
    const __m256d d2 = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 8));
    const __m256d d3 = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 12));
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(d2, d2));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(d3, d3));
    const __m256d d4 = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 16));
    const __m256d d5 = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 20));
    const __m256d d6 = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 24));
    const __m256d d7 = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 28));
    a4 = _mm256_add_pd(a4, _mm256_mul_pd(d4, d4));
    a5 = _mm256_add_pd(a5, _mm256_mul_pd(d5, d5));
    a6 = _mm256_add_pd(a6, _mm256_mul_pd(d6, d6));
    a7 = _mm256_add_pd(a7, _mm256_mul_pd(d7, d7));
    if (abandon_probe_due(d, dim)) {
      const __m256d m01 = _mm256_min_pd(a0, a1);
      const __m256d m23 = _mm256_min_pd(a2, a3);
      const __m256d m45 = _mm256_min_pd(a4, a5);
      const __m256d m67 = _mm256_min_pd(a6, a7);
      const __m256d m = _mm256_min_pd(_mm256_min_pd(m01, m23),
                                      _mm256_min_pd(m45, m67));
      if (_mm256_movemask_pd(_mm256_cmp_pd(m, veps, _CMP_LE_OQ)) == 0) {
        return 0;  // every lane's partial sum already exceeds eps^2
      }
    }
  }
  std::uint32_t mask = 0;
  mask |= static_cast<std::uint32_t>(
      _mm256_movemask_pd(_mm256_cmp_pd(a0, veps, _CMP_LE_OQ)));
  mask |= static_cast<std::uint32_t>(
              _mm256_movemask_pd(_mm256_cmp_pd(a1, veps, _CMP_LE_OQ))) << 4;
  mask |= static_cast<std::uint32_t>(
              _mm256_movemask_pd(_mm256_cmp_pd(a2, veps, _CMP_LE_OQ))) << 8;
  mask |= static_cast<std::uint32_t>(
              _mm256_movemask_pd(_mm256_cmp_pd(a3, veps, _CMP_LE_OQ))) << 12;
  mask |= static_cast<std::uint32_t>(
              _mm256_movemask_pd(_mm256_cmp_pd(a4, veps, _CMP_LE_OQ))) << 16;
  mask |= static_cast<std::uint32_t>(
              _mm256_movemask_pd(_mm256_cmp_pd(a5, veps, _CMP_LE_OQ))) << 20;
  mask |= static_cast<std::uint32_t>(
              _mm256_movemask_pd(_mm256_cmp_pd(a6, veps, _CMP_LE_OQ))) << 24;
  mask |= static_cast<std::uint32_t>(
              _mm256_movemask_pd(_mm256_cmp_pd(a7, veps, _CMP_LE_OQ))) << 28;
  return mask;
}

/// Partial strip (a scan entering or leaving a block mid-strip). Groups of
/// 4 lanes; the ragged tail group loads through maskload — the lanes past
/// `count` may sit past the end of the buffer's final dimension row, so an
/// unmasked 4-wide load could fault. Inactive tail lanes accumulate from
/// +inf: they never hold the min down (so they cannot block abandonment)
/// and they compare false in the final <= eps^2 test, which keeps bits
/// >= count zero without any extra masking.
inline std::uint32_t strip_avx2_partial(const double* q, size_t dim,
                                        double eps2, const double* lanes,
                                        size_t count) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t full = count / 4;
  const size_t rem = count - full * 4;
  const size_t groups = full + (rem != 0 ? 1 : 0);
  __m256d acc[kDistanceStrip / 4];
  for (size_t g = 0; g < full; ++g) acc[g] = _mm256_setzero_pd();
  __m256i tail_mask = _mm256_setzero_si256();
  if (rem != 0) {
    acc[full] = _mm256_setr_pd(0.0, rem > 1 ? 0.0 : kInf,
                               rem > 2 ? 0.0 : kInf, kInf);
    tail_mask = _mm256_setr_epi64x(-1, rem > 1 ? -1 : 0, rem > 2 ? -1 : 0, 0);
  }
  const __m256d veps = _mm256_set1_pd(eps2);
  for (size_t d = 0; d < dim; ++d) {
    const __m256d vq = _mm256_broadcast_sd(q + d);
    const double* row = lanes + d * kDistanceStrip;
    for (size_t g = 0; g < full; ++g) {
      const __m256d diff = _mm256_sub_pd(vq, _mm256_loadu_pd(row + 4 * g));
      acc[g] = _mm256_add_pd(acc[g], _mm256_mul_pd(diff, diff));
    }
    if (rem != 0) {
      const __m256d p = _mm256_maskload_pd(row + 4 * full, tail_mask);
      const __m256d diff = _mm256_sub_pd(vq, p);
      acc[full] = _mm256_add_pd(acc[full], _mm256_mul_pd(diff, diff));
    }
    if (abandon_probe_due(d, dim)) {
      __m256d m = acc[0];
      for (size_t g = 1; g < groups; ++g) m = _mm256_min_pd(m, acc[g]);
      if (_mm256_movemask_pd(_mm256_cmp_pd(m, veps, _CMP_LE_OQ)) == 0) {
        return 0;
      }
    }
  }
  std::uint32_t mask = 0;
  for (size_t g = 0; g < groups; ++g) {
    mask |= static_cast<std::uint32_t>(_mm256_movemask_pd(
                _mm256_cmp_pd(acc[g], veps, _CMP_LE_OQ)))
            << (4 * g);
  }
  return mask;
}

}  // namespace

std::uint32_t strip_avx2(const double* q, size_t dim, double eps2,
                         const double* lanes, size_t count) {
  if (count == kDistanceStrip) return strip_avx2_full(q, dim, eps2, lanes);
  return strip_avx2_partial(q, dim, eps2, lanes, count);
}

}  // namespace sdb::simd::detail

#endif  // defined(__AVX2__)
