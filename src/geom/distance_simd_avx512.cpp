// AVX-512F strip kernel. Compiled with -mavx512f ONLY (no -mfma implied
// contraction: -ffp-contract=off is also pinned) so the accumulation stays
// an unfused multiply + add, bit-identical to the scalar fallback — see the
// determinism contract in distance_simd.hpp. Relative to the AVX2 variant
// this halves the vector op count (8 doubles per register, a full
// 32-lane strip in 4 accumulators) and replaces the movemask shuffle
// dance with native mask registers: _mm512_cmp_pd_mask yields the
// decision bits directly, and masked loads make the ragged tail group
// fault-free without a separate maskload constant.
//
// Only selected when __builtin_cpu_supports("avx512f") at dispatch time,
// so building this TU on any x86-64 toolchain is safe for older hosts.
#include "geom/distance_simd.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <limits>

namespace sdb::simd::detail {

namespace {

/// Full 32-lane block: four 8-wide accumulators, fully unrolled so they
/// live in registers. The abandonment probe runs every second dimension —
/// a 3-min tree + one mask compare, cheap against the 4 loads the skipped
/// dimensions would have cost.
inline std::uint32_t strip_avx512_full(const double* q, size_t dim,
                                       double eps2, const double* lanes) {
  __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
  __m512d a2 = _mm512_setzero_pd(), a3 = _mm512_setzero_pd();
  const __m512d veps = _mm512_set1_pd(eps2);
  for (size_t d = 0; d < dim; ++d) {
    const __m512d vq = _mm512_set1_pd(q[d]);
    const double* row = lanes + d * kDistanceStrip;
    const __m512d d0 = _mm512_sub_pd(vq, _mm512_loadu_pd(row + 0));
    const __m512d d1 = _mm512_sub_pd(vq, _mm512_loadu_pd(row + 8));
    const __m512d d2 = _mm512_sub_pd(vq, _mm512_loadu_pd(row + 16));
    const __m512d d3 = _mm512_sub_pd(vq, _mm512_loadu_pd(row + 24));
    a0 = _mm512_add_pd(a0, _mm512_mul_pd(d0, d0));
    a1 = _mm512_add_pd(a1, _mm512_mul_pd(d1, d1));
    a2 = _mm512_add_pd(a2, _mm512_mul_pd(d2, d2));
    a3 = _mm512_add_pd(a3, _mm512_mul_pd(d3, d3));
    if (abandon_probe_due(d, dim)) {
      const __m512d m =
          _mm512_min_pd(_mm512_min_pd(a0, a1), _mm512_min_pd(a2, a3));
      if (_mm512_cmp_pd_mask(m, veps, _CMP_LE_OQ) == 0) {
        return 0;  // every lane's partial sum already exceeds eps^2
      }
    }
  }
  std::uint32_t mask = 0;
  mask |= static_cast<std::uint32_t>(_mm512_cmp_pd_mask(a0, veps, _CMP_LE_OQ));
  mask |= static_cast<std::uint32_t>(_mm512_cmp_pd_mask(a1, veps, _CMP_LE_OQ))
          << 8;
  mask |= static_cast<std::uint32_t>(_mm512_cmp_pd_mask(a2, veps, _CMP_LE_OQ))
          << 16;
  mask |= static_cast<std::uint32_t>(_mm512_cmp_pd_mask(a3, veps, _CMP_LE_OQ))
          << 24;
  return mask;
}

/// Partial strip (a scan entering or leaving a block mid-strip). Groups of
/// 8 lanes; the ragged tail group loads through a lane mask — the lanes
/// past `count` may sit past the end of the buffer's final dimension row,
/// so an unmasked 8-wide load could fault. Inactive tail lanes accumulate
/// from +inf: they never hold the min down (so they cannot block
/// abandonment) and they compare false in the final <= eps^2 test, which
/// keeps bits >= count zero without any extra masking.
inline std::uint32_t strip_avx512_partial(const double* q, size_t dim,
                                          double eps2, const double* lanes,
                                          size_t count) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t full = count / 8;
  const size_t rem = count - full * 8;
  const size_t groups = full + (rem != 0 ? 1 : 0);
  __m512d acc[kDistanceStrip / 8];
  for (size_t g = 0; g < full; ++g) acc[g] = _mm512_setzero_pd();
  __mmask8 tail = 0;
  if (rem != 0) {
    tail = static_cast<__mmask8>((1u << rem) - 1u);
    // Active tail lanes start at 0, inactive ones at +inf.
    acc[full] = _mm512_mask_mov_pd(_mm512_set1_pd(kInf), tail,
                                   _mm512_setzero_pd());
  }
  const __m512d veps = _mm512_set1_pd(eps2);
  for (size_t d = 0; d < dim; ++d) {
    const __m512d vq = _mm512_set1_pd(q[d]);
    const double* row = lanes + d * kDistanceStrip;
    for (size_t g = 0; g < full; ++g) {
      const __m512d diff = _mm512_sub_pd(vq, _mm512_loadu_pd(row + 8 * g));
      acc[g] = _mm512_add_pd(acc[g], _mm512_mul_pd(diff, diff));
    }
    if (rem != 0) {
      // maskz load: inactive lanes read as 0.0, so their diff^2 is finite
      // and +inf + finite keeps the accumulator at +inf.
      const __m512d p = _mm512_maskz_loadu_pd(tail, row + 8 * full);
      const __m512d diff = _mm512_sub_pd(vq, p);
      acc[full] = _mm512_add_pd(acc[full], _mm512_mul_pd(diff, diff));
    }
    if (abandon_probe_due(d, dim)) {
      __m512d m = acc[0];
      for (size_t g = 1; g < groups; ++g) m = _mm512_min_pd(m, acc[g]);
      if (_mm512_cmp_pd_mask(m, veps, _CMP_LE_OQ) == 0) {
        return 0;
      }
    }
  }
  std::uint32_t mask = 0;
  for (size_t g = 0; g < groups; ++g) {
    mask |= static_cast<std::uint32_t>(
                _mm512_cmp_pd_mask(acc[g], veps, _CMP_LE_OQ))
            << (8 * g);
  }
  return mask;
}

}  // namespace

std::uint32_t strip_avx512(const double* q, size_t dim, double eps2,
                           const double* lanes, size_t count) {
  if (count == kDistanceStrip) return strip_avx512_full(q, dim, eps2, lanes);
  return strip_avx512_partial(q, dim, eps2, lanes, count);
}

}  // namespace sdb::simd::detail

#endif  // defined(__AVX512F__)
