// Flat, cache-friendly storage for d-dimensional points.
//
// All datasets in the paper are dense 10-dimensional real vectors (Table I).
// Points are stored row-major in one contiguous buffer; a point is addressed
// by its global PointId and viewed as std::span<const double>. The global
// index is load-bearing: the paper's block partitioning and SEED mechanism
// are both defined on it.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace sdb {

class PointSet {
 public:
  PointSet() = default;

  /// Create an empty set of `dim`-dimensional points.
  explicit PointSet(int dim) : dim_(dim) {
    SDB_CHECK(dim > 0, "dimension must be positive");
  }

  /// Adopt existing row-major data. data.size() must be a multiple of dim.
  PointSet(int dim, std::vector<double> data) : dim_(dim), data_(std::move(data)) {
    SDB_CHECK(dim > 0, "dimension must be positive");
    SDB_CHECK(data_.size() % static_cast<size_t>(dim) == 0,
              "data size not a multiple of dim");
  }

  /// Append one point (coords.size() must equal dim()).
  PointId add(std::span<const double> coords) {
    SDB_CHECK(static_cast<int>(coords.size()) == dim_, "dimension mismatch");
    data_.insert(data_.end(), coords.begin(), coords.end());
    return static_cast<PointId>(size()) - 1;
  }

  /// Reserve capacity for n points.
  void reserve(size_t n) { data_.reserve(n * static_cast<size_t>(dim_)); }

  [[nodiscard]] std::span<const double> operator[](PointId i) const {
    SDB_DCHECK(i >= 0 && static_cast<size_t>(i) < size(), "point id out of range");
    return {data_.data() + static_cast<size_t>(i) * dim_,
            static_cast<size_t>(dim_)};
  }

  [[nodiscard]] size_t size() const {
    return dim_ == 0 ? 0 : data_.size() / static_cast<size_t>(dim_);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] int dim() const { return dim_; }

  /// Raw row-major buffer (n * dim doubles).
  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

  /// Approximate in-memory size in bytes; used by the network cost model to
  /// price broadcasting the dataset + kd-tree to executors.
  [[nodiscard]] u64 byte_size() const { return data_.size() * sizeof(double); }

 private:
  int dim_ = 0;
  std::vector<double> data_;
};

}  // namespace sdb
