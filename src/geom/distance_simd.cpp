#include "geom/distance_simd.hpp"

#include <cstdlib>
#include <cstring>

namespace sdb::simd {
namespace detail {

std::atomic<StripKernelFn> g_strip{nullptr};

std::uint32_t strip_scalar(const double* q, size_t dim, double eps2,
                           const double* lanes, size_t count) {
  std::uint32_t mask = 0;
  for (size_t j = 0; j < count; ++j) {
    const double* col = lanes + j;
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = q[d] - col[d * kDistanceStrip];
      s += diff * diff;
      // Partial-distance abandonment: the sum is monotone, so once it
      // exceeds eps^2 the lane's decision is already made.
      if (s > eps2) break;
    }
    if (s <= eps2) mask |= std::uint32_t{1} << j;
  }
  return mask;
}

#if SDB_HAVE_AVX2
// Defined in distance_simd_avx2.cpp (compiled with -mavx2 only).
std::uint32_t strip_avx2(const double* q, size_t dim, double eps2,
                         const double* lanes, size_t count);
#endif
#if SDB_HAVE_AVX512
// Defined in distance_simd_avx512.cpp (compiled with -mavx512f only).
std::uint32_t strip_avx512(const double* q, size_t dim, double eps2,
                           const double* lanes, size_t count);
#endif
#if SDB_HAVE_NEON
// Defined in distance_simd_neon.cpp.
std::uint32_t strip_neon(const double* q, size_t dim, double eps2,
                         const double* lanes, size_t count);
#endif

namespace {

std::atomic<bool> g_forced_scalar{false};

/// True when the environment pins the scalar fallback (SDB_SIMD=scalar, off
/// or 0) — the forced-scalar ctest cell sets this for the whole binary.
bool env_forces_scalar() {
  const char* v = std::getenv("SDB_SIMD");
  if (v == nullptr) return false;
  return std::strcmp(v, "scalar") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "0") == 0;
}

StripKernelFn best_kernel() {
  if (g_forced_scalar.load(std::memory_order_relaxed) || env_forces_scalar()) {
    return &strip_scalar;
  }
#if SDB_HAVE_AVX512
  if (__builtin_cpu_supports("avx512f")) return &strip_avx512;
#endif
#if SDB_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return &strip_avx2;
#endif
#if SDB_HAVE_NEON
  // NEON is baseline on aarch64; no runtime probe needed.
  return &strip_neon;
#endif
  return &strip_scalar;
}

}  // namespace

StripKernelFn resolve() {
  const StripKernelFn fn = best_kernel();
  g_strip.store(fn, std::memory_order_relaxed);
  return fn;
}

}  // namespace detail

KernelVariant active_variant() {
  const StripKernelFn fn = detail::strip_kernel();
#if SDB_HAVE_AVX512
  if (fn == &detail::strip_avx512) return KernelVariant::kAvx512;
#endif
#if SDB_HAVE_AVX2
  if (fn == &detail::strip_avx2) return KernelVariant::kAvx2;
#endif
#if SDB_HAVE_NEON
  if (fn == &detail::strip_neon) return KernelVariant::kNeon;
#endif
  (void)fn;
  return KernelVariant::kScalar;
}

const char* variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar: return "scalar";
    case KernelVariant::kAvx2: return "avx2";
    case KernelVariant::kAvx512: return "avx512";
    case KernelVariant::kNeon: return "neon";
  }
  return "?";
}

void force_scalar(bool on) {
  detail::g_forced_scalar.store(on, std::memory_order_relaxed);
  detail::resolve();
}

bool scalar_forced() {
  return detail::g_forced_scalar.load(std::memory_order_relaxed);
}

}  // namespace sdb::simd
