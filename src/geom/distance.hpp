// Distance kernels. Every full distance evaluation is counted so the
// simulated cluster clock can price executor work exactly.
#pragma once

#include <cmath>
#include <span>

#include "util/counters.hpp"

namespace sdb {

/// Squared Euclidean distance between two points of equal dimension.
/// Counted as one distance evaluation.
inline double squared_distance(std::span<const double> a,
                               std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  counters::distance_evals(1);
  return s;
}

/// Euclidean distance.
inline double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

/// True iff the two points are within `eps` of each other.
inline bool within_eps(std::span<const double> a, std::span<const double> b,
                       double eps) {
  return squared_distance(a, b) <= eps * eps;
}

/// Strip width of the blocked kernel: callers evaluate candidates in chunks
/// of at most this many points (small enough for a stack buffer, large
/// enough that the inner loops vectorize and amortize the counter update).
inline constexpr size_t kDistanceStrip = 32;

/// Blocked kernel: squared distances from `q` to `count` points stored
/// contiguously row-major at `rows` (row stride == q.size() doubles), one
/// result per row into `out`. This is the leaf-scan workhorse: a strip of
/// packed candidates is evaluated in one call with no per-point id
/// indirection, so the loops below compile to straight-line vectorizable
/// code. Counted as exactly `count` distance evaluations — one per row, the
/// same count the scalar squared_distance path would produce — so
/// counter-based cost models stay exact. Callers that must honor a neighbor
/// budget mid-strip should fall back to the scalar path instead of passing
/// rows they might not consume.
inline void squared_distance_batch(std::span<const double> q,
                                   const double* rows, size_t count,
                                   double* out) {
  const size_t dim = q.size();
  switch (dim) {
    case 1:
      for (size_t i = 0; i < count; ++i) {
        const double d0 = q[0] - rows[i];
        out[i] = d0 * d0;
      }
      break;
    case 2:
      for (size_t i = 0; i < count; ++i) {
        const double d0 = q[0] - rows[2 * i];
        const double d1 = q[1] - rows[2 * i + 1];
        out[i] = d0 * d0 + d1 * d1;
      }
      break;
    case 3:
      for (size_t i = 0; i < count; ++i) {
        const double d0 = q[0] - rows[3 * i];
        const double d1 = q[1] - rows[3 * i + 1];
        const double d2 = q[2] - rows[3 * i + 2];
        out[i] = d0 * d0 + d1 * d1 + d2 * d2;
      }
      break;
    default:
      for (size_t i = 0; i < count; ++i) {
        const double* p = rows + i * dim;
        double s = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = q[d] - p[d];
          s += diff * diff;
        }
        out[i] = s;
      }
      break;
  }
  counters::distance_evals(count);
}

}  // namespace sdb
