// Distance kernels. Every full distance evaluation is counted so the
// simulated cluster clock can price executor work exactly.
#pragma once

#include <cmath>
#include <span>

#include "util/counters.hpp"

namespace sdb {

/// Squared Euclidean distance between two points of equal dimension.
/// Counted as one distance evaluation.
inline double squared_distance(std::span<const double> a,
                               std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  counters::distance_evals(1);
  return s;
}

/// Euclidean distance.
inline double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

/// True iff the two points are within `eps` of each other.
inline bool within_eps(std::span<const double> a, std::span<const double> b,
                       double eps) {
  return squared_distance(a, b) <= eps * eps;
}

}  // namespace sdb
