// Distance kernels. Every full distance evaluation is counted so the
// simulated cluster clock can price executor work exactly; hot-path callers
// (the spatial indexes) batch their counts per query and flush once through
// counters::add — same totals, no thread-local lookup per evaluation.
//
// The vectorized leaf-scan kernels live in distance_simd.hpp: a runtime-
// dispatched AVX2/NEON strip kernel over a strip-transposed (SoA) layout,
// bit-identical to the scalar loops here (unfused multiply+add, ascending-d
// accumulation) so eps-membership decisions never depend on the host ISA.
#pragma once

#include <bit>
#include <cmath>
#include <span>

#include "geom/distance_simd.hpp"
#include "util/counters.hpp"

namespace sdb {

/// Squared Euclidean distance, uncounted — for callers that tally
/// distance_evals themselves and flush in a batch (see counters::add).
inline double squared_distance_uncounted(std::span<const double> a,
                                         std::span<const double> b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Squared Euclidean distance between two points of equal dimension.
/// Counted as one distance evaluation.
inline double squared_distance(std::span<const double> a,
                               std::span<const double> b) {
  const double s = squared_distance_uncounted(a, b);
  counters::distance_evals(1);
  return s;
}

/// Euclidean distance.
inline double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

/// True iff the two points are within `eps` of each other.
inline bool within_eps(std::span<const double> a, std::span<const double> b,
                       double eps) {
  return squared_distance(a, b) <= eps * eps;
}

// ---------------------------------------------------------------------------
// Strip-transposed (SoA) layout helpers — the layout the SIMD kernels scan.
// See distance_simd.hpp for the full layout + determinism contract. Global
// position i lives in block i / kDistanceStrip at lane i % kDistanceStrip;
// within a block coordinates are dimension-major with lane stride
// kDistanceStrip.
// ---------------------------------------------------------------------------

/// Buffer length (in doubles) for n points of dimension dim, padded to whole
/// strip blocks. Builders zero the final partial block's padding lanes so
/// vector loads never touch uninitialized memory.
inline constexpr size_t strip_padded_len(size_t n, size_t dim) {
  return ((n + kDistanceStrip - 1) / kDistanceStrip) * kDistanceStrip * dim;
}

/// Address of position `pos`'s lane within its block.
inline const double* strip_lane(const double* base, size_t pos, size_t dim) {
  return base + (pos / kDistanceStrip) * (kDistanceStrip * dim) +
         pos % kDistanceStrip;
}
inline double* strip_lane(double* base, size_t pos, size_t dim) {
  return base + (pos / kDistanceStrip) * (kDistanceStrip * dim) +
         pos % kDistanceStrip;
}

/// Scatter one coordinate row into its strip lane (builder-side transpose).
inline void strip_store_row(double* base, size_t pos,
                            std::span<const double> p) {
  double* lane = strip_lane(base, pos, p.size());
  for (size_t d = 0; d < p.size(); ++d) lane[d * kDistanceStrip] = p[d];
}

/// Eps-membership mask for `count` strip-layout points starting at global
/// position `pos` in `strips`: bit j of the result is set iff the squared
/// distance from `q` to point pos + j is <= eps2. `count` must not cross a
/// strip-block boundary: count <= kDistanceStrip - pos % kDistanceStrip.
/// Dispatches to the active SIMD kernel; counted as exactly `count`
/// distance evaluations — one per candidate row, matching the scalar path,
/// even though the kernel may abandon a lane's accumulation early once its
/// partial sum exceeds eps2 (see distance_simd.hpp). Hot loops should
/// instead fetch simd::detail::strip_kernel() once per query, call it per
/// block, and batch-flush their counts (see KdTree::run_query).
inline std::uint32_t within_eps_strip(std::span<const double> q, double eps2,
                                      const double* strips, size_t pos,
                                      size_t count) {
  const std::uint32_t mask = simd::detail::strip_kernel()(
      q.data(), q.size(), eps2, strip_lane(strips, pos, q.size()), count);
  counters::distance_evals(count);
  return mask;
}

/// Neighbor-budgeted scan of packed strip positions [begin, end) through the
/// dispatched SIMD kernel, with SCALAR stop-and-count semantics: the scalar
/// reference loop walks rows in packed order, charges one distance_eval per
/// row it visits, and returns the moment `found` reaches `max_neighbors` —
/// charging the stopping row but nothing after it. This helper reproduces
/// that observable behavior exactly from the kernel's per-segment masks
/// (eps decisions are bit-identical by the kernel contract, so the stopping
/// row is the same row): a segment where the budget cannot fire is charged
/// whole; in the segment where it fires, rows after the stopping match are
/// neither pushed nor charged, even though the kernel already evaluated
/// them — physical over-evaluation inside one strip is an implementation
/// detail of the evaluation, like partial-distance abandonment, and never
/// shows up in counters or output. `push(pos)` receives each matching
/// packed position in ascending order; `found`/`evals` are updated in
/// place. Returns true when the budget fired (caller stops its scan).
/// Requires max_neighbors > 0; `found` may be nonzero from earlier ranges.
template <typename PushFn>
inline bool strip_scan_budgeted(simd::StripKernelFn kernel,
                                std::span<const double> q, double eps2,
                                const double* strips, size_t begin, size_t end,
                                u64 max_neighbors, u64& found, u64& evals,
                                PushFn&& push) {
  const size_t dim = q.size();
  for (size_t i = begin; i < end;) {
    const size_t lane = i % kDistanceStrip;
    const size_t m = std::min(kDistanceStrip - lane, end - i);
    std::uint32_t mask =
        kernel(q.data(), dim, eps2, strip_lane(strips, i, dim), m);
    const u64 hits = static_cast<u64>(std::popcount(mask));
    if (found + hits < max_neighbors) {
      // Budget cannot fire inside this segment: the scalar loop would have
      // visited (and charged) every row of it.
      evals += m;
      found += hits;
      while (mask != 0) {
        push(i + static_cast<size_t>(std::countr_zero(mask)));
        mask &= mask - 1;
      }
      i += m;
      continue;
    }
    // The budget fires at the (max_neighbors - found)-th match of this
    // segment; the scalar loop stops right after that row.
    while (mask != 0) {
      const size_t j = static_cast<size_t>(std::countr_zero(mask));
      push(i + j);
      mask &= mask - 1;
      if (++found >= max_neighbors) {
        evals += static_cast<u64>(j) + 1;  // rows i .. i+j inclusive
        return true;
      }
    }
    evals += m;  // unreachable when hits >= needed, kept for safety
    i += m;
  }
  return false;
}

/// Blocked row-major (AoS) kernel: squared distances from `q` to `count`
/// points stored contiguously row-major at `rows` (row stride == q.size()
/// doubles), one result per row into `out`. The pre-SIMD leaf-scan
/// workhorse, kept as the reference batch path for callers without a
/// strip-transposed layout and as the oracle the strip kernels are tested
/// against. Counted as exactly `count` distance evaluations — one per row,
/// the same count the scalar squared_distance path would produce. Callers
/// that must honor a neighbor budget mid-strip should use
/// strip_scan_budgeted (strip layout) or the scalar path instead of passing
/// rows they might not consume.
inline void squared_distance_batch(std::span<const double> q,
                                   const double* rows, size_t count,
                                   double* out) {
  const size_t dim = q.size();
  switch (dim) {
    case 1:
      for (size_t i = 0; i < count; ++i) {
        const double d0 = q[0] - rows[i];
        out[i] = d0 * d0;
      }
      break;
    case 2:
      for (size_t i = 0; i < count; ++i) {
        const double d0 = q[0] - rows[2 * i];
        const double d1 = q[1] - rows[2 * i + 1];
        out[i] = d0 * d0 + d1 * d1;
      }
      break;
    case 3:
      for (size_t i = 0; i < count; ++i) {
        const double d0 = q[0] - rows[3 * i];
        const double d1 = q[1] - rows[3 * i + 1];
        const double d2 = q[2] - rows[3 * i + 2];
        out[i] = d0 * d0 + d1 * d1 + d2 * d2;
      }
      break;
    default:
      for (size_t i = 0; i < count; ++i) {
        const double* p = rows + i * dim;
        double s = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = q[d] - p[d];
          s += diff * diff;
        }
        out[i] = s;
      }
      break;
  }
  counters::distance_evals(count);
}

}  // namespace sdb
