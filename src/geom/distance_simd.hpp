// Runtime-dispatched SIMD distance kernels over the strip-transposed (SoA)
// coordinate layout.
//
// The broadcast kd-tree's eps-range leaf scan is the hottest loop in the
// whole system, and the GPU DBSCAN literature (Prokopenko et al.; Wang et
// al.) shows the winning idiom: coalesced structure-of-arrays accesses and
// divergence-free inner loops. This header ports that idiom to SIMD lanes.
//
// Layout contract (the "strip" layout): candidate points are stored in
// blocks of kDistanceStrip lanes. Within a block, coordinates are
// dimension-major — all d=0 values of the block's points, then all d=1
// values, and so on — so the distance loop over `dim` is a pure vertical
// reduction: each vector lane accumulates one point's squared distance with
// unit-stride loads and no per-point pointer chasing. Blocks are addressed
// by global position: position i lives in block i / kDistanceStrip at lane
// i % kDistanceStrip, and a scan may enter a block at any lane offset (a
// kd-tree leaf or grid cell can start mid-block).
//
// Determinism contract: every variant (scalar fallback, AVX2, AVX-512, NEON)
// returns bit-identical eps-decision masks. Each lane accumulates
// (q[d] - p[d])^2 in ascending-d order with UNFUSED multiply and add — the
// same operation sequence as the scalar squared_distance() — so
// eps-membership decisions, cluster labels, and exactly-eps boundary pairs
// agree byte-for-byte across variants and hosts. FMA contraction is
// deliberately not used: a fused multiply-add rounds once instead of twice,
// which would flip points that land within one ulp of the eps boundary.
// -ffp-contract=off is pinned PROJECT-WIDE (top-level CMakeLists), not just
// on the vector TUs — the scalar reference loops are header-inline in every
// spatial TU, and on targets where fmadd is baseline (aarch64) the compiler
// would otherwise contract them while the kernels stay unfused.
//
// Abandonment: a kernel MAY stop accumulating a lane — or stop fetching
// further dimension rows for the whole strip — once the partial sums it is
// tracking already exceed eps^2. The accumulation is monotone (every term
// is non-negative, and IEEE round-to-nearest addition of a non-negative
// value never decreases a sum), so a partial sum above eps^2 decides the
// final test exactly; abandonment changes how many bytes the kernel reads,
// never which bits it returns. This is why the contract hands the kernel
// eps^2 and takes back a decision mask instead of raw squared distances:
// returning the distances would force every lane to full depth, and the
// leaf scan at scale is bound by strip memory traffic, not arithmetic.
// Callers that need actual squared distances still get kernel help: kNN
// filters leaf candidates through the mask with eps^2 = its current worst
// heap distance and computes exact distances only for survivors, and
// neighbor-budgeted scans reconstruct the scalar loop's exact stop row and
// distance_evals charge from the mask (strip_scan_budgeted, distance.hpp).
//
// Dispatch: the kernel is a function pointer resolved on first use — CPU
// feature detection (AVX-512F then AVX2 on x86-64, NEON on aarch64) gated by the
// SDB_SIMD cmake option, the SDB_SIMD=scalar environment variable, and the
// force_scalar() test hook. The scalar fallback is always compiled, so a
// scalar-only build (-DSDB_SIMD=OFF) is just the permanent fallback.
//
// Counters: these entry points do NOT touch work counters — callers charge
// distance_evals themselves (see distance.hpp's counted wrappers and the
// per-query batching in the spatial indexes), keeping counts exact and the
// hot loop free of thread-local lookups.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sdb {

/// Strip width of the blocked/SIMD kernels: callers evaluate candidates in
/// blocks of at most this many points (small enough for a stack result
/// buffer, large enough that the vector loops amortize dispatch).
inline constexpr size_t kDistanceStrip = 32;

namespace simd {

enum class KernelVariant { kScalar = 0, kAvx2 = 1, kNeon = 2, kAvx512 = 3 };

/// fn(q, dim, eps2, lanes, count) -> mask:
///   bit j of the result is set iff
///   sum_d (q[d] - lanes[d * kDistanceStrip + j])^2 <= eps2,   for j < count;
///   bits >= count are always zero (count <= kDistanceStrip = 32, so the
///   mask fits a u32 exactly).
/// `lanes` points at the first lane to evaluate inside one strip block
/// (block base + lane offset); `count` never crosses a block boundary, so
/// count + (lanes - block_base) % kDistanceStrip <= kDistanceStrip. Inputs
/// are assumed finite (no NaN/inf coordinates or eps).
using StripKernelFn = std::uint32_t (*)(const double* q, size_t dim,
                                        double eps2, const double* lanes,
                                        size_t count);

namespace detail {

/// The dispatched kernel; null until first resolution. Relaxed atomics: all
/// candidate values are interchangeable (bit-identical results), so racing
/// initializations are benign.
extern std::atomic<StripKernelFn> g_strip;

/// Scalar reference implementation — always built, and the ground truth the
/// vector variants are tested bit-equal against.
std::uint32_t strip_scalar(const double* q, size_t dim, double eps2,
                           const double* lanes, size_t count);

/// CPU detection + SDB_SIMD env + force_scalar() -> best kernel. Stores the
/// choice in g_strip and returns it.
StripKernelFn resolve();

/// The active strip kernel (resolving on first use). Fetch once per query,
/// not per strip, to keep the atomic load off the inner loop.
inline StripKernelFn strip_kernel() {
  StripKernelFn fn = g_strip.load(std::memory_order_relaxed);
  return fn != nullptr ? fn : resolve();
}

}  // namespace detail

namespace detail {

/// Abandonment probe schedule shared by every vector kernel: probe after
/// dimension `d` iff this returns true. Dense early (every 2nd dim through
/// d=7, where low-d adversarial scans become decidable within a few dims),
/// then geometric (d = 15, 31, 63, ... — after each probe the kernel walks
/// at most as many dims again before the next one). The old fixed every-2nd
/// schedule paid ~d/2 horizontal min-tree reductions per strip at d >= 64 —
/// pure overhead on high-d strips whose partial sums cross eps^2 late or
/// not at all — while the geometric tail keeps the dims walked after the
/// scan becomes decidable bounded by 2x. Probing is always mask-safe at ANY
/// schedule: abandonment fires only when every lane's partial sum already
/// exceeds eps^2, which decides the final test exactly (monotonicity), so
/// the schedule changes bytes read and probe arithmetic, never mask bits —
/// pinned by the d=128 bit-identity fixtures in test_distance_kernels.
constexpr bool abandon_probe_due(size_t d, size_t dim) {
  return (d & 1) != 0 && (d < 8 || (d & (d + 1)) == 0) && d + 1 < dim;
}

}  // namespace detail

/// Which kernel the dispatcher currently selects.
KernelVariant active_variant();
const char* variant_name(KernelVariant v);
inline const char* active_variant_name() { return variant_name(active_variant()); }

/// Test hook: pin the dispatcher to the scalar fallback (true) or restore
/// CPU-detected dispatch (false). The SDB_SIMD=scalar environment variable
/// applies the same pin at startup — that is how the forced-scalar ctest
/// cell runs the whole suite on the fallback path.
void force_scalar(bool on);
[[nodiscard]] bool scalar_forced();

}  // namespace simd
}  // namespace sdb
