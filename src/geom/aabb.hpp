// Axis-aligned bounding boxes, used by the kd-tree for branch pruning and by
// the spatial-grid partitioner.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace sdb {

class Aabb {
 public:
  Aabb() = default;

  /// Empty (inverted) box of the given dimension; grows via extend().
  explicit Aabb(int dim)
      : lo_(static_cast<size_t>(dim), std::numeric_limits<double>::infinity()),
        hi_(static_cast<size_t>(dim),
            -std::numeric_limits<double>::infinity()) {}

  Aabb(std::vector<double> lo, std::vector<double> hi)
      : lo_(std::move(lo)), hi_(std::move(hi)) {
    SDB_CHECK(lo_.size() == hi_.size(), "AABB corner dimension mismatch");
  }

  void extend(std::span<const double> p) {
    SDB_DCHECK(p.size() == lo_.size(), "AABB/point dimension mismatch");
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i] < lo_[i]) lo_[i] = p[i];
      if (p[i] > hi_[i]) hi_[i] = p[i];
    }
  }

  [[nodiscard]] int dim() const { return static_cast<int>(lo_.size()); }
  [[nodiscard]] const std::vector<double>& lo() const { return lo_; }
  [[nodiscard]] const std::vector<double>& hi() const { return hi_; }

  [[nodiscard]] bool is_empty() const {
    return lo_.empty() || lo_[0] > hi_[0];
  }

  [[nodiscard]] bool contains(std::span<const double> p) const {
    for (size_t i = 0; i < lo_.size(); ++i) {
      if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
    }
    return true;
  }

  /// Squared distance from `p` to the closest point of the box (0 inside).
  [[nodiscard]] double squared_distance_to(std::span<const double> p) const {
    double s = 0.0;
    for (size_t i = 0; i < lo_.size(); ++i) {
      double d = 0.0;
      if (p[i] < lo_[i]) d = lo_[i] - p[i];
      else if (p[i] > hi_[i]) d = p[i] - hi_[i];
      s += d * d;
    }
    return s;
  }

  /// True iff a ball of radius `eps` centered at `p` intersects the box.
  [[nodiscard]] bool intersects_ball(std::span<const double> p,
                                     double eps) const {
    return squared_distance_to(p) <= eps * eps;
  }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace sdb
