// NEON (aarch64) strip kernel. Same contract as the AVX2 variant: unfused
// multiply + add in ascending-d order per lane (-ffp-contract=off, and no
// vfma intrinsics) so eps-decision masks are bit-identical to the scalar
// fallback, plus partial-distance abandonment — every second dimension the
// pair checks whether both partial sums already exceed eps^2 and stops
// fetching further dimension rows if so (the accumulation is monotone, so
// the decision cannot change). float64x2_t gives 2 lanes; 2-wide loads
// never read past `count`, so no masked tail load is needed.
#include "geom/distance_simd.hpp"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

namespace sdb::simd::detail {

std::uint32_t strip_neon(const double* q, size_t dim, double eps2,
                         const double* lanes, size_t count) {
  std::uint32_t mask = 0;
  size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    const double* col = lanes + j;
    float64x2_t acc = vdupq_n_f64(0.0);
    bool abandoned = false;
    for (size_t d = 0; d < dim; ++d) {
      const float64x2_t vq = vdupq_n_f64(q[d]);
      const float64x2_t p = vld1q_f64(col + d * kDistanceStrip);
      const float64x2_t diff = vsubq_f64(vq, p);
      acc = vaddq_f64(acc, vmulq_f64(diff, diff));
      if (abandon_probe_due(d, dim) &&
          vgetq_lane_f64(acc, 0) > eps2 && vgetq_lane_f64(acc, 1) > eps2) {
        abandoned = true;
        break;
      }
    }
    if (abandoned) continue;
    if (vgetq_lane_f64(acc, 0) <= eps2) mask |= std::uint32_t{1} << j;
    if (vgetq_lane_f64(acc, 1) <= eps2) mask |= std::uint32_t{1} << (j + 1);
  }
  for (; j < count; ++j) {
    const double* col = lanes + j;
    double s = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = q[d] - col[d * kDistanceStrip];
      s += diff * diff;
      if (s > eps2) break;
    }
    if (s <= eps2) mask |= std::uint32_t{1} << j;
  }
  return mask;
}

}  // namespace sdb::simd::detail

#endif  // aarch64 / NEON
