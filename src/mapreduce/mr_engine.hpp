// MapReduce engine — the paper's Figure 7 baseline substrate.
//
// Faithful to the Hadoop data path the paper describes (its Figure 2):
//   * map tasks consume input splits and emit key-value pairs;
//   * emitted pairs are partitioned by hash(key) % reducers, sorted, and
//     *spilled to real local files* (this disk materialization is exactly
//     the cost Spark's in-memory RDDs avoid);
//   * reduce tasks "remote-read" every map task's spill for their partition
//     (charged to the network model), merge-sort them, group by key, and
//     run the reducer;
//   * the job pays a startup cost (JobTracker scheduling + JVM spin-up) and
//     a per-task launch overhead, both far larger than Spark's.
//
// Like minispark, execution is real and results exact; phase durations are
// also accounted on the simulated cluster clock so the Spark/MapReduce
// comparison (Figure 7) is apples-to-apples.
// Failure semantics: map/reduce task attempts that fail (fault sites
// mr.map.fail / mr.reduce.fail / mr.shuffle.fail) are re-executed under a
// bounded backoff policy, exactly Hadoop's task-retry story. Re-execution
// is idempotent: spills are truncating overwrites and are deleted only
// after the whole job succeeds, and mr.map.duplicate speculatively runs a
// map task twice to prove the output is execution-count-invariant.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "minispark/cost_model.hpp"
#include "util/common.hpp"
#include "util/retry.hpp"

namespace sdb::mapreduce {

struct MRConfig {
  /// Directory for spill files (real files are written/read here).
  std::string work_dir = "/tmp/sdb_mr";
  u32 reduce_tasks = 1;
  /// Simulated cores available to run map/reduce tasks.
  u32 cores = 4;

  /// Per-job startup: JobTracker scheduling, JVM launch, split computation.
  /// Hadoop jobs pay seconds here where Spark pays milliseconds.
  double job_startup_s = 2.5;
  /// Per-task JVM/launch overhead (Hadoop reuses JVMs poorly by default).
  double task_overhead_s = 0.15;

  /// Bounded backoff applied to failed map/reduce attempts and shuffle
  /// reads; retries re-pay the task overhead and their backoff is charged
  /// to the task's simulated duration.
  RetryPolicy task_retry;

  minispark::CostModel cost;  ///< shared op/disk/network pricing
};

struct PhaseMetrics {
  double sim_makespan_s = 0.0;  ///< tasks list-scheduled on `cores`
  double sim_total_s = 0.0;     ///< sum of task durations
  u64 tasks = 0;
};

struct MRJobMetrics {
  std::string name;
  double wall_s = 0.0;
  PhaseMetrics map;
  PhaseMetrics reduce;
  double shuffle_s = 0.0;       ///< simulated remote-read + merge time
  u64 spill_bytes = 0;          ///< map-side bytes written to disk
  u64 shuffle_bytes = 0;        ///< bytes moved map->reduce
  double sim_total_s = 0.0;     ///< startup + map + shuffle + reduce
  u32 map_retries = 0;          ///< failed map attempts that were re-run
  u32 reduce_retries = 0;       ///< failed reduce attempts that were re-run
  u32 shuffle_retries = 0;      ///< failed spill reads that were re-run
  u32 duplicate_map_tasks = 0;  ///< speculative duplicate map executions
};

/// One key-value record. Values are opaque byte strings (the serialized
/// payloads the DBSCAN job ships are binary partial-cluster blobs).
struct KV {
  std::string key;
  std::string value;
};

class MRJob {
 public:
  /// Emit callback handed to mappers/reducers.
  using Emit = std::function<void(std::string key, std::string value)>;
  /// mapper(map_task_index, input_split, emit)
  using Mapper = std::function<void(u32, const std::string&, const Emit&)>;
  /// reducer(key, values, emit)
  using Reducer =
      std::function<void(const std::string&, std::vector<std::string>&, const Emit&)>;

  MRJob(MRConfig config, std::string name, Mapper mapper, Reducer reducer);

  /// Optional map-side combiner (same signature as a reducer): runs on each
  /// map task's sorted bucket before it spills, shrinking spill and shuffle
  /// volume. Must be algebraically compatible with the reducer (associative
  /// partial aggregation), as in Hadoop.
  void set_combiner(Reducer combiner) { combiner_ = std::move(combiner); }

  /// Run the job over the given input splits (one map task per split).
  /// Returns the reduce output in key order.
  std::vector<KV> run(const std::vector<std::string>& input_splits);

  [[nodiscard]] const MRJobMetrics& metrics() const { return metrics_; }

 private:
  [[nodiscard]] std::string spill_path(u32 map_task, u32 reduce_task) const;

  MRConfig config_;
  std::string name_;
  Mapper mapper_;
  Reducer reducer_;
  Reducer combiner_;  // empty = no combiner
  MRJobMetrics metrics_;
};

}  // namespace sdb::mapreduce
