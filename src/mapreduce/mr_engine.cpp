#include "mapreduce/mr_engine.hpp"

#include <algorithm>
#include <filesystem>

#include "fault/injection.hpp"
#include "minispark/metrics.hpp"
#include "util/serialize.hpp"
#include "util/stopwatch.hpp"

namespace sdb::mapreduce {

namespace fs = std::filesystem;

namespace {

u64 key_hash(const std::string& key) {
  u64 h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void write_kv_run(const std::string& path, const std::vector<KV>& run) {
  BinaryWriter w;
  w.write_u64(run.size());
  for (const KV& kv : run) {
    w.write_string(kv.key);
    w.write_string(kv.value);
  }
  write_file(path, w.buffer());
}

std::vector<KV> read_kv_run(const std::string& path) {
  const std::vector<char> data = read_file(path);
  BinaryReader r(data);
  const u64 n = r.read_u64();
  std::vector<KV> run;
  run.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    KV kv;
    kv.key = r.read_string();
    kv.value = r.read_string();
    run.push_back(std::move(kv));
  }
  return run;
}

}  // namespace

MRJob::MRJob(MRConfig config, std::string name, Mapper mapper, Reducer reducer)
    : config_(std::move(config)),
      name_(std::move(name)),
      mapper_(std::move(mapper)),
      reducer_(std::move(reducer)) {
  SDB_CHECK(config_.reduce_tasks > 0, "need at least one reduce task");
  SDB_CHECK(config_.cores > 0, "need at least one core");
  fs::create_directories(config_.work_dir);
}

std::string MRJob::spill_path(u32 map_task, u32 reduce_task) const {
  return (fs::path(config_.work_dir) /
          (name_ + "_m" + std::to_string(map_task) + "_r" +
           std::to_string(reduce_task) + ".spill"))
      .string();
}

std::vector<KV> MRJob::run(const std::vector<std::string>& input_splits) {
  Stopwatch wall;
  metrics_ = MRJobMetrics{};
  metrics_.name = name_;

  const u32 map_tasks = static_cast<u32>(input_splits.size());
  const u32 reduce_tasks = config_.reduce_tasks;

  // ---- Map phase: run mapper, partition by key hash, sort, spill to disk.
  // One attempt is the whole task; spills are truncating overwrites, so a
  // retried or speculatively-duplicated attempt leaves identical state.
  std::vector<double> map_durations;
  map_durations.reserve(map_tasks);
  auto run_map_attempt = [&](u32 m) {
    if (SDB_INJECT("mr.map.fail")) throw fault::InjectedFault("mr.map.fail");
    std::vector<std::vector<KV>> buckets(reduce_tasks);
    const MRJob::Emit emit = [&](std::string key, std::string value) {
      const u32 r = static_cast<u32>(key_hash(key) % reduce_tasks);
      buckets[r].push_back(KV{std::move(key), std::move(value)});
    };
    mapper_(m, input_splits[m], emit);
    for (u32 r = 0; r < reduce_tasks; ++r) {
      std::sort(buckets[r].begin(), buckets[r].end(),
                [](const KV& a, const KV& b) { return a.key < b.key; });
      if (combiner_) {
        // Map-side combine on the sorted bucket: group adjacent keys and
        // replace each group with the combiner's output.
        std::vector<KV> combined;
        const MRJob::Emit emit = [&](std::string key, std::string value) {
          combined.push_back(KV{std::move(key), std::move(value)});
        };
        size_t i = 0;
        while (i < buckets[r].size()) {
          size_t j = i;
          std::vector<std::string> values;
          while (j < buckets[r].size() &&
                 buckets[r][j].key == buckets[r][i].key) {
            values.push_back(std::move(buckets[r][j].value));
            ++j;
          }
          combiner_(buckets[r][i].key, values, emit);
          i = j;
        }
        buckets[r] = std::move(combined);
      }
      write_kv_run(spill_path(m, r), buckets[r]);
    }
  };
  for (u32 m = 0; m < map_tasks; ++m) {
    WorkCounters wc;
    RetryStats stats;
    retry_call(
        config_.task_retry, /*seed=*/m,
        [&] {
          WorkCounters attempt_wc;
          {
            ScopedCounters scope(&attempt_wc);
            run_map_attempt(m);
          }
          wc = attempt_wc;  // only the surviving attempt's work is charged
          return 0;
        },
        &stats);
    metrics_.map_retries += stats.retries;
    if (SDB_INJECT("mr.map.duplicate")) {
      // Speculative execution: the same task runs again elsewhere; both
      // copies spill, the later overwrite is byte-identical. The duplicate
      // retries its own injected failures like any attempt.
      RetryStats dup_stats;
      retry_call(
          config_.task_retry, /*seed=*/map_tasks + m,
          [&] {
            ScopedCounters scope(&wc);  // duplicate work is real, charge it
            run_map_attempt(m);
            return 0;
          },
          &dup_stats);
      metrics_.map_retries += dup_stats.retries;
      ++metrics_.duplicate_map_tasks;
    }
    metrics_.spill_bytes += wc.bytes_written;
    map_durations.push_back(config_.task_overhead_s * stats.attempts +
                            stats.backoff_s +
                            config_.cost.compute_seconds(wc));
  }
  metrics_.map.tasks = map_tasks;
  for (const double d : map_durations) metrics_.map.sim_total_s += d;
  metrics_.map.sim_makespan_s =
      minispark::list_schedule_makespan(map_durations, config_.cores);

  // ---- Shuffle + sort + reduce phase. Spills are deleted only after the
  // whole job succeeds, so a failed reduce attempt can always re-read them
  // (Hadoop keeps map output until the job commits, for exactly this
  // reason).
  std::vector<KV> output;
  std::vector<double> reduce_durations;
  reduce_durations.reserve(reduce_tasks);
  std::vector<std::string> spent_spills;
  double shuffle_s = 0.0;
  for (u32 r = 0; r < reduce_tasks; ++r) {
    WorkCounters wc;
    std::vector<KV> records;
    double shuffle_backoff_s = 0.0;
    {
      ScopedCounters scope(&wc);
      // Remote read of every map task's spill for this partition. The disk
      // read is physical; the network hop is priced via net_bytes. A
      // transient remote-read failure (site mr.shuffle.fail) is retried
      // with backoff like a real fetch failure.
      for (u32 m = 0; m < map_tasks; ++m) {
        const std::string path = spill_path(m, r);
        RetryStats fetch_stats;
        std::vector<KV> run = retry_call(
            config_.task_retry,
            /*seed=*/static_cast<u64>(m) * 1000003ull + r,
            [&] {
              if (SDB_INJECT("mr.shuffle.fail")) {
                throw fault::InjectedFault("mr.shuffle.fail");
              }
              return read_kv_run(path);
            },
            &fetch_stats);
        metrics_.shuffle_retries += fetch_stats.retries;
        shuffle_backoff_s += fetch_stats.backoff_s;
        spent_spills.push_back(path);
        for (auto& kv : run) records.push_back(std::move(kv));
      }
      u64 bytes = 0;
      for (const KV& kv : records) bytes += kv.key.size() + kv.value.size();
      counters::net_bytes(bytes);
      metrics_.shuffle_bytes += bytes;

      // Merge-sort so all occurrences of a key are adjacent.
      std::stable_sort(records.begin(), records.end(),
                       [](const KV& a, const KV& b) { return a.key < b.key; });
    }
    shuffle_s += config_.cost.compute_seconds(wc) + shuffle_backoff_s;

    WorkCounters rc;
    RetryStats stats;
    std::vector<KV> task_output;
    retry_call(
        config_.task_retry, /*seed=*/7919ull + r,
        [&] {
          // The injected failure fires before any record is consumed, so a
          // retry sees `records` untouched (reducer runs move values out).
          if (SDB_INJECT("mr.reduce.fail")) {
            throw fault::InjectedFault("mr.reduce.fail");
          }
          task_output.clear();
          WorkCounters attempt_rc;
          {
            ScopedCounters scope(&attempt_rc);
            const MRJob::Emit emit = [&](std::string key, std::string value) {
              task_output.push_back(KV{std::move(key), std::move(value)});
            };
            size_t i = 0;
            while (i < records.size()) {
              size_t j = i;
              std::vector<std::string> values;
              while (j < records.size() && records[j].key == records[i].key) {
                values.push_back(std::move(records[j].value));
                ++j;
              }
              reducer_(records[i].key, values, emit);
              i = j;
            }
          }
          rc = attempt_rc;
          return 0;
        },
        &stats);
    metrics_.reduce_retries += stats.retries;
    for (auto& kv : task_output) output.push_back(std::move(kv));
    reduce_durations.push_back(config_.task_overhead_s * stats.attempts +
                               stats.backoff_s +
                               config_.cost.compute_seconds(rc));
  }
  // Job commit: map outputs are no longer needed.
  for (const std::string& path : spent_spills) fs::remove(path);
  metrics_.reduce.tasks = reduce_tasks;
  for (const double d : reduce_durations) {
    metrics_.reduce.sim_total_s += d;
  }
  metrics_.reduce.sim_makespan_s =
      minispark::list_schedule_makespan(reduce_durations, config_.cores);
  metrics_.shuffle_s = shuffle_s;

  std::sort(output.begin(), output.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });

  metrics_.wall_s = wall.seconds();
  metrics_.sim_total_s = config_.job_startup_s + metrics_.map.sim_makespan_s +
                         metrics_.shuffle_s + metrics_.reduce.sim_makespan_s;
  return output;
}

}  // namespace sdb::mapreduce
