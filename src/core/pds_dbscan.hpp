// PDSDBSCAN-style parallel DBSCAN — the comparator the paper checks its
// accuracy against (Patwary et al., SC'12: "A new scalable parallel DBSCAN
// algorithm using the disjoint-set data structure").
//
// Where the paper's algorithm builds per-partition partial clusters and
// defers linking to a driver-side SEED merge, the disjoint-set formulation
// expresses DBSCAN directly as union operations:
//   local phase  — each worker processes its partition's points: a core
//                  point unites with the core neighbors inside its
//                  partition and REMEMBERS cross-partition core pairs;
//   merge phase  — the remembered cross pairs are applied to the global
//                  union-find (what PDSDBSCAN does with message passing /
//                  locks, here a driver pass priced like its sequential
//                  merge);
//   labeling     — roots become cluster ids; border points attach to any
//                  adjacent core's cluster; the rest is noise.
//
// Semantics match DBSCAN exactly (tested structurally equivalent to the
// sequential algorithm), making this both a correctness cross-check and a
// baseline for bench comparisons against the SEED design.
#pragma once

#include "core/dbscan.hpp"
#include "core/partitioners.hpp"
#include "geom/point_set.hpp"
#include "spatial/spatial_index.hpp"
#include "util/counters.hpp"

namespace sdb::dbscan {

struct PdsDbscanConfig {
  DbscanParams params;
  u32 partitions = 4;
  PartitionerKind partitioner = PartitionerKind::kBlock;
  u64 seed = 42;
};

struct PdsDbscanResult {
  Clustering clustering;
  std::vector<PointId> core_points;
  /// Cross-partition core-core union pairs deferred to the merge phase
  /// (PDSDBSCAN's communication volume).
  u64 cross_unions = 0;
  /// Work counters per phase, for simulated-clock pricing.
  std::vector<WorkCounters> local_phase;  ///< one per partition
  WorkCounters merge_phase;
};

PdsDbscanResult pds_dbscan(const PointSet& points, const SpatialIndex& index,
                           const PdsDbscanConfig& config);

}  // namespace sdb::dbscan
