// Sequential DBSCAN — Algorithm 1 of the paper (Ester et al. 1996, BFS
// formulation). The speedup denominator for every scaling figure, and the
// ground truth the partitioned implementations are tested against.
#pragma once

#include "core/dbscan.hpp"
#include "geom/point_set.hpp"
#include "spatial/spatial_index.hpp"
#include "util/counters.hpp"

namespace sdb::dbscan {

struct SeqResult {
  Clustering clustering;
  std::vector<PointId> core_points;  ///< every point with >= minpts neighbors
  WorkCounters counters;             ///< all work performed, for sim pricing
};

/// Run DBSCAN over all points using `index` for eps-neighborhood queries.
/// `budget` enables the paper's approximate "pruning branches" mode
/// (QueryBudget{} = exact).
SeqResult dbscan_sequential(const PointSet& points, const SpatialIndex& index,
                            const DbscanParams& params,
                            const QueryBudget& budget = {});

}  // namespace sdb::dbscan
