#include "core/partitioners.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace sdb::dbscan {

const char* partitioner_name(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kBlock: return "block";
    case PartitionerKind::kRandom: return "random";
    case PartitionerKind::kGrid: return "grid";
    case PartitionerKind::kKdSplit: return "kd-split";
  }
  return "?";
}

u64 Partitioning::max_part_size() const {
  u64 m = 0;
  for (const auto& p : parts) m = std::max<u64>(m, p.size());
  return m;
}

u64 Partitioning::min_part_size() const {
  u64 m = parts.empty() ? 0 : parts.front().size();
  for (const auto& p : parts) m = std::min<u64>(m, p.size());
  return m;
}

namespace {

void finish_from_owner(Partitioning& out) {
  out.parts.assign(out.num_partitions, {});
  for (PointId i = 0; i < static_cast<PointId>(out.owner.size()); ++i) {
    out.parts[static_cast<size_t>(out.owner[static_cast<size_t>(i)])].push_back(i);
  }
}

Partitioning block_partition(size_t n, u32 parts) {
  Partitioning out;
  out.num_partitions = parts;
  out.owner.resize(n);
  out.ranges.reserve(parts);
  for (u32 p = 0; p < parts; ++p) {
    const auto lo = static_cast<PointId>(n * p / parts);
    const auto hi = static_cast<PointId>(n * (p + 1) / parts);
    out.ranges.emplace_back(lo, hi);
    for (PointId i = lo; i < hi; ++i) {
      out.owner[static_cast<size_t>(i)] = static_cast<PartitionId>(p);
    }
  }
  finish_from_owner(out);
  return out;
}

Partitioning random_partition(size_t n, u32 parts, u64 seed) {
  Partitioning out;
  out.num_partitions = parts;
  out.owner.resize(n);
  // Balanced random assignment: a shuffled block pattern.
  std::vector<PartitionId> pattern(n);
  for (size_t i = 0; i < n; ++i) {
    pattern[i] = static_cast<PartitionId>(n == 0 ? 0 : (i * parts / n));
  }
  Rng rng(derive_seed(seed, "random-partitioner"));
  rng.shuffle(pattern);
  out.owner = std::move(pattern);
  finish_from_owner(out);
  return out;
}

/// Coarse spatial grid: hash each point's cell to a partition. The cell edge
/// targets ~4 cells per partition so cells stay large enough to keep
/// clusters intact.
Partitioning grid_partition(const PointSet& points, u32 parts) {
  const size_t n = points.size();
  const int dim = points.dim();
  Partitioning out;
  out.num_partitions = parts;
  out.owner.resize(n);
  if (n == 0) {
    finish_from_owner(out);
    return out;
  }
  // Bounding box.
  std::vector<double> lo(points[0].begin(), points[0].end());
  std::vector<double> hi = lo;
  for (PointId i = 1; i < static_cast<PointId>(n); ++i) {
    const auto p = points[i];
    for (int d = 0; d < dim; ++d) {
      lo[static_cast<size_t>(d)] = std::min(lo[static_cast<size_t>(d)], p[d]);
      hi[static_cast<size_t>(d)] = std::max(hi[static_cast<size_t>(d)], p[d]);
    }
  }
  // Cells per dimension so total cells ~= 4 * parts.
  const double target_cells = 4.0 * parts;
  const int cells_per_dim = std::max(
      1, static_cast<int>(std::ceil(std::pow(target_cells, 1.0 / dim))));
  for (PointId i = 0; i < static_cast<PointId>(n); ++i) {
    const auto p = points[i];
    u64 h = 1469598103934665603ull;
    for (int d = 0; d < dim; ++d) {
      const double extent = hi[static_cast<size_t>(d)] - lo[static_cast<size_t>(d)];
      int cell = 0;
      if (extent > 0) {
        cell = static_cast<int>((p[d] - lo[static_cast<size_t>(d)]) / extent *
                                cells_per_dim);
        cell = std::clamp(cell, 0, cells_per_dim - 1);
      }
      h ^= static_cast<u64>(cell) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    out.owner[static_cast<size_t>(i)] = static_cast<PartitionId>(h % parts);
  }
  finish_from_owner(out);
  return out;
}

/// Recursive median splits on the widest dimension, yielding `parts`
/// spatially-coherent, size-balanced partitions (parts need not be a power
/// of two: each split divides proportionally).
void kd_split(const PointSet& points, std::vector<PointId>& ids, size_t begin,
              size_t end, u32 parts_here, PartitionId first_part,
              std::vector<PartitionId>& owner) {
  if (parts_here <= 1) {
    for (size_t i = begin; i < end; ++i) {
      owner[static_cast<size_t>(ids[i])] = first_part;
    }
    return;
  }
  const int dim = points.dim();
  // Widest dimension over [begin, end).
  std::vector<double> lo(static_cast<size_t>(dim),
                         std::numeric_limits<double>::infinity());
  std::vector<double> hi(static_cast<size_t>(dim),
                         -std::numeric_limits<double>::infinity());
  for (size_t i = begin; i < end; ++i) {
    const auto p = points[ids[i]];
    for (int d = 0; d < dim; ++d) {
      lo[static_cast<size_t>(d)] = std::min(lo[static_cast<size_t>(d)], p[d]);
      hi[static_cast<size_t>(d)] = std::max(hi[static_cast<size_t>(d)], p[d]);
    }
  }
  int best = 0;
  double spread = -1;
  for (int d = 0; d < dim; ++d) {
    if (hi[static_cast<size_t>(d)] - lo[static_cast<size_t>(d)] > spread) {
      spread = hi[static_cast<size_t>(d)] - lo[static_cast<size_t>(d)];
      best = d;
    }
  }
  const u32 left_parts = parts_here / 2;
  const u32 right_parts = parts_here - left_parts;
  const size_t mid =
      begin + (end - begin) * left_parts / parts_here;
  std::nth_element(ids.begin() + static_cast<long>(begin),
                   ids.begin() + static_cast<long>(mid),
                   ids.begin() + static_cast<long>(end),
                   [&](PointId a, PointId b) {
                     return points[a][best] < points[b][best];
                   });
  kd_split(points, ids, begin, mid, left_parts, first_part, owner);
  kd_split(points, ids, mid, end, right_parts,
           first_part + static_cast<PartitionId>(left_parts), owner);
}

Partitioning kdsplit_partition(const PointSet& points, u32 parts) {
  const size_t n = points.size();
  Partitioning out;
  out.num_partitions = parts;
  out.owner.assign(n, 0);
  std::vector<PointId> ids(n);
  std::iota(ids.begin(), ids.end(), PointId{0});
  kd_split(points, ids, 0, n, parts, 0, out.owner);
  finish_from_owner(out);
  return out;
}

}  // namespace

Partitioning make_partitioning(PartitionerKind kind, const PointSet& points,
                               u32 num_partitions, u64 seed) {
  SDB_CHECK(num_partitions > 0, "need at least one partition");
  switch (kind) {
    case PartitionerKind::kBlock:
      return block_partition(points.size(), num_partitions);
    case PartitionerKind::kRandom:
      return random_partition(points.size(), num_partitions, seed);
    case PartitionerKind::kGrid:
      return grid_partition(points, num_partitions);
    case PartitionerKind::kKdSplit:
      return kdsplit_partition(points, num_partitions);
  }
  SDB_CHECK(false, "unknown partitioner");
  return {};
}

}  // namespace sdb::dbscan
