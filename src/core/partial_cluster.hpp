// Partial clusters and SEEDs — the paper's central data structure.
//
// Each executor clusters only its own points; whenever its BFS frontier
// reaches a point owned by another partition, that point is recorded as a
// SEED instead of being expanded (Algorithm 3). A SEED is a *marker*: at
// merge time (Algorithm 4) a SEED appearing as a regular member of another
// partition's partial cluster identifies the "master" cluster to merge with.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/serialize.hpp"

namespace sdb::dbscan {

struct PartialCluster {
  /// Globally unique id: (partition << 32) | local index. Figure 4's "c[0]",
  /// "c[5]" labels.
  u64 uid = 0;
  PartitionId partition = 0;
  /// Points owned by `partition` that belong to this cluster ("regular
  /// elements" in the paper's words).
  std::vector<PointId> members;
  /// Foreign points recorded by Algorithm 3 (paper: "integers in squares").
  std::vector<PointId> seeds;

  [[nodiscard]] static u64 make_uid(PartitionId partition, u32 local_index) {
    return (static_cast<u64>(static_cast<u32>(partition)) << 32) | local_index;
  }

  [[nodiscard]] u64 byte_size() const {
    return sizeof(uid) + sizeof(partition) +
           (members.size() + seeds.size()) * sizeof(PointId) + 2 * sizeof(u64);
  }
};

/// One merge edge as executors emit it: "partial cluster `origin_uid` dug
/// out foreign point `seed`". The driver-side join against the owner
/// partition's facts completes it to the (seed cluster, master cluster,
/// seed-is-core) triple the parallel union-find merge consumes — the owner
/// alone knows which of its clusters holds `seed` as a regular member and
/// whether `seed` is core, so the resolved halves cannot be produced
/// executor-side without peer communication (which the paper's design
/// forbids).
struct SeedEdge {
  u64 origin_uid = 0;  ///< uid of the partial cluster that placed the seed
  PointId seed = 0;    ///< the foreign point the BFS frontier touched
  friend bool operator==(const SeedEdge&, const SeedEdge&) = default;
};

/// Wire versions for LocalClusterResult (see serialize()):
///   v1 — legacy: seeds nested inside each PartialCluster record;
///   v2 — seeds relocated into one flat per-result seed-edge section, the
///        form the parallel merge shards over. Readers accept both; blobs
///        recovered from old checkpoints/spills keep decoding.
inline constexpr u32 kLocalResultWireV1 = 1;
inline constexpr u32 kLocalResultWireV2 = 2;

/// Everything one executor ships back through the accumulator: its partial
/// clusters plus the per-point facts the driver needs for a sound merge
/// (which local points are core, which are locally noise).
struct LocalClusterResult {
  PartitionId partition = 0;
  std::vector<PartialCluster> clusters;
  std::vector<PointId> core_points;  ///< local points with >= minpts neighbors
  std::vector<PointId> noise;        ///< local points marked noise
  /// Flat (origin cluster uid, seed point) records: the v2 wire form of the
  /// nested per-cluster seeds lists, grouped by cluster in `clusters`
  /// order. local_dbscan emits both views; decoding a legacy v1 blob
  /// synthesizes this from the nested lists. Invariant:
  /// seed_edges == flatten_seed_edges(*this).
  std::vector<SeedEdge> seed_edges;

  [[nodiscard]] u64 byte_size() const {
    u64 bytes = sizeof(partition) + 3 * sizeof(u64);
    for (const auto& c : clusters) bytes += c.byte_size();
    bytes += (core_points.size() + noise.size()) * sizeof(PointId);
    return bytes;
  }
};

/// The flat edge view of the nested seeds lists (clusters order, seeds
/// order within each cluster).
[[nodiscard]] std::vector<SeedEdge> flatten_seed_edges(
    const LocalClusterResult& result);

/// Cheap structural check that `seed_edges` matches the nested lists (used
/// by the merge to fall back to flatten_seed_edges for hand-built
/// fixtures): counts must match and edges must be grouped by cluster uid in
/// clusters order.
[[nodiscard]] bool seed_edges_consistent(const LocalClusterResult& result);

/// Binary round trip (used by the MapReduce pipeline, whose intermediate
/// data really does cross a serialization boundary). serialize() writes the
/// v2 layout; deserialize_local_result() auto-detects v1 vs v2.
void serialize(const PartialCluster& pc, BinaryWriter& w);
PartialCluster deserialize_partial_cluster(BinaryReader& r);
void serialize(const LocalClusterResult& result, BinaryWriter& w);
LocalClusterResult deserialize_local_result(BinaryReader& r);

/// Convenience: serialize to / parse from a byte string.
std::string to_bytes(const LocalClusterResult& result);
LocalClusterResult local_result_from_bytes(const std::string& bytes);

}  // namespace sdb::dbscan
