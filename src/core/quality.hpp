// Clustering quality / equivalence metrics.
//
// The paper states "all parallel executions generate the same result as the
// serial execution". DBSCAN's only legitimate nondeterminism is border-point
// assignment (a border point within eps of cores from two clusters may join
// either), so "same result" is checked structurally:
//   * the partition induced on CORE points must be identical;
//   * the noise sets must be identical;
//   * every border point must be assigned to a cluster that contains at
//     least one core point within eps of it.
#pragma once

#include "core/dbscan.hpp"
#include "geom/point_set.hpp"
#include "spatial/spatial_index.hpp"

namespace sdb::dbscan {

struct EquivalenceReport {
  bool equivalent = false;
  u64 core_mismatches = 0;    ///< core pairs split/joined differently
  u64 noise_mismatches = 0;   ///< points noise in one, clustered in the other
  u64 border_violations = 0;  ///< border points assigned to a non-adjacent cluster
  std::string detail;         ///< first few offending points, for test output
};

/// Structural equivalence of two clusterings of the same dataset under the
/// same (eps, minpts). `core_points` is the core set (identical for both by
/// definition of DBSCAN; pass the sequential result's).
EquivalenceReport check_equivalence(const PointSet& points,
                                    const SpatialIndex& index,
                                    const DbscanParams& params,
                                    const std::vector<PointId>& core_points,
                                    const Clustering& a, const Clustering& b);

/// Rand index between two clusterings (noise treated as singleton clusters).
/// 1.0 = identical pair structure. Computed pairwise-exactly via label
/// contingency, O(n + #distinct label pairs).
double rand_index(const Clustering& a, const Clustering& b);

/// Adjusted Rand index (Hubert & Arabie): the Rand index corrected for
/// chance agreement, so 1.0 = identical partitions, ~0 = what random
/// labelings score, negative = worse than chance. Noise treated as
/// singleton clusters, same as rand_index. This is the headline metric of
/// the KNN-DBSCAN disagreement-bound harness (knn/disagreement.hpp) — the
/// plain Rand index saturates near 1 for many-cluster partitions and would
/// hide real disagreement.
double adjusted_rand_index(const Clustering& a, const Clustering& b);

/// Summary statistics used by bench output.
struct ClusteringStats {
  u64 clusters = 0;
  u64 noise = 0;
  u64 largest = 0;
  u64 smallest = 0;
  double mean_size = 0.0;
};
ClusteringStats summarize(const Clustering& c);

}  // namespace sdb::dbscan
