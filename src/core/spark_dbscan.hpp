// SparkDbscan — the paper's complete pipeline (Algorithm 2) on minispark.
//
// Driver:  read points (optionally from MiniDfs as text), build the kd-tree,
//          broadcast {kd-tree + points, eps, minpts, partition map}.
// Executors (one foreachPartition job, no peer communication, no shuffle):
//          run local_dbscan over their partition, ship partial clusters back
//          through an accumulator.
// Driver:  dig out SEEDs and merge partial clusters (Algorithm 4 or the
//          union-find variant) into the global clustering.
//
// Every phase is measured on both clocks; the report carries exactly the
// series the paper's Figures 5, 6 and 8 plot.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/codec.hpp"
#include "core/dbscan.hpp"
#include "core/local_dbscan.hpp"
#include "core/merge.hpp"
#include "core/partitioners.hpp"
#include "dfs/mini_dfs.hpp"
#include "knn/knn_graph.hpp"
#include "minispark/spark_context.hpp"

namespace sdb::dbscan {

/// Which spatial index the driver builds and broadcasts. The paper uses the
/// kd-tree and cites the R*-tree as the standard alternative; brute force is
/// the O(n^2) baseline of Section V.B.
enum class IndexKind { kKdTree, kRTree, kBruteForce };

const char* index_kind_name(IndexKind kind);

/// Which neighborhood machinery the pipeline runs on.
enum class DbscanBackend {
  /// Exact eps-range queries over a broadcast spatial index — the paper's
  /// design, and exact at any dimension it can afford.
  kExact,
  /// KNN-DBSCAN (knn/knn_backend.hpp): the driver builds an approximate kNN
  /// graph, derives the in-eps graph + global core mask, and broadcasts
  /// THAT; executors run the same partitioned BFS over graph rows. The
  /// high-dimensional backend — build cost is dimension-independent where
  /// exact tree queries degenerate to linear scans past d~20.
  kKnn,
};

const char* backend_name(DbscanBackend backend);

struct SparkDbscanConfig {
  DbscanParams params;
  DbscanBackend backend = DbscanBackend::kExact;
  /// kNN graph build parameters (backend == kKnn only). knn.k must be
  /// >= params.minpts - 1.
  knn::KnnGraphConfig knn;
  IndexKind index = IndexKind::kKdTree;
  /// Number of data partitions (the paper runs partitions == cores).
  /// 0 = the context's default parallelism.
  u32 partitions = 0;
  PartitionerKind partitioner = PartitionerKind::kBlock;
  SeedStrategy seed_strategy = SeedStrategy::kAllForeign;
  MergeStrategy merge_strategy = MergeStrategy::kUnionFind;
  /// Driver threads for the kUnionFind merge (see MergeOptions::
  /// merge_threads). Labels are byte-identical for any value; affects wall
  /// time and the counter accounting model only, so it is excluded from the
  /// job fingerprint (checkpoints from different values interoperate).
  unsigned merge_threads = 1;
  /// Approximate kd-tree search ("pruning branches", used for r1m).
  QueryBudget budget;
  /// Worker threads for the driver's kd-tree build (0 = auto, 1 =
  /// sequential). Affects wall time only: the tree structure, the query
  /// results, and the simulated clock are identical either way.
  unsigned index_build_threads = 0;
  /// Leaf-contiguous kd-tree layout (see KdTreeOptions::reorder). false
  /// selects the legacy gather path — kept for before/after benchmarking
  /// (bench_hotpath); results are identical either way.
  bool index_reorder = true;
  /// Drop partial clusters smaller than this before merging (r1m runs).
  u64 min_partial_cluster_size = 0;
  /// Wire format for the partial clusters shipped via the accumulator
  /// (Section IV.B serialization discussion; see core/codec.hpp).
  Codec codec = Codec::kRaw;
  u64 seed = 42;
  /// Directory for crash-consistent job checkpoints (empty = durability
  /// off). Each accepted partition result is committed to disk as it
  /// arrives (see minispark/job_checkpoint.hpp), so a driver death loses at
  /// most the in-flight partitions.
  std::string checkpoint_dir;
  /// With checkpoint_dir set: recover committed partition results left by a
  /// previous (crashed) run of the same job fingerprint, execute only the
  /// missing partitions, and resume the merge. false wipes prior state and
  /// checkpoints from scratch.
  bool resume = false;
};

struct SparkDbscanReport {
  Clustering clustering;
  MergeStats merge_stats;

  // --- simulated-clock phase times (seconds) ---
  double sim_read_s = 0.0;       ///< read file + transform into Point RDDs (Δ)
  double sim_tree_s = 0.0;       ///< kd-tree construction in the driver
  double sim_broadcast_s = 0.0;  ///< shipping tree + params to executors
  double sim_executor_s = 0.0;   ///< executor phase makespan
  double sim_executor_total_s = 0.0;  ///< sum of task times (serial exec work)
  double sim_collect_s = 0.0;    ///< accumulator transfer back to driver
  double sim_merge_s = 0.0;      ///< Algorithm 4 / union-find merge

  double wall_s = 0.0;           ///< real host time, whole pipeline

  u64 partial_clusters = 0;      ///< m (the Figure 6 right-axis series)
  u64 broadcast_bytes = 0;
  u64 accumulator_bytes = 0;

  // --- KNN backend (backend == kKnn) ---
  u64 knn_graph_rounds = 0;  ///< NN-descent rounds (0 for the exact build)
  u64 knn_graph_evals = 0;   ///< distance evals spent building the graph
  u64 knn_eps_edges = 0;     ///< in-eps edges in the broadcast eps-graph
  u64 knn_core_points = 0;   ///< global core count under the graph mask

  // --- durability (checkpoint_dir set) ---
  u64 job_fingerprint = 0;       ///< deterministic job identity
  u64 resumed_partitions = 0;    ///< results recovered from the checkpoint
  u64 executed_partitions = 0;   ///< results computed by this run
  u64 checkpoint_saves = 0;      ///< records committed by this run

  /// Driver time as the paper splits it: everything not in executors.
  [[nodiscard]] double sim_driver_s() const {
    return sim_read_s + sim_tree_s + sim_broadcast_s + sim_collect_s +
           sim_merge_s;
  }
  [[nodiscard]] double sim_total_s() const {
    return sim_driver_s() + sim_executor_s;
  }
};

class SparkDbscan {
 public:
  SparkDbscan(minispark::SparkContext& context, SparkDbscanConfig config)
      : ctx_(context), config_(std::move(config)) {}

  /// Cluster an in-memory dataset (generation cost excluded from timings,
  /// matching the paper, which times from HDFS read onward with Δ for the
  /// read/transform phase estimated from byte volume).
  SparkDbscanReport run(const PointSet& points);

  /// Full paper pipeline: read `path` from the DFS as text, parse points,
  /// then cluster. The read/parse really happens and is priced as Δ.
  SparkDbscanReport run_from_dfs(const dfs::MiniDfs& dfs,
                                 const std::string& path);

 private:
  SparkDbscanReport run_impl(const PointSet& points, double sim_read_s);

  minispark::SparkContext& ctx_;
  SparkDbscanConfig config_;
};

}  // namespace sdb::dbscan
