#include "core/pds_dbscan.hpp"

#include "spatial/union_find.hpp"

namespace sdb::dbscan {

PdsDbscanResult pds_dbscan(const PointSet& points, const SpatialIndex& index,
                           const PdsDbscanConfig& config) {
  const size_t n = points.size();
  PdsDbscanResult result;
  const Partitioning partitioning = make_partitioning(
      config.partitioner, points, config.partitions, config.seed);
  result.local_phase.resize(config.partitions);

  std::vector<char> is_core(n, 0);
  // Neighbor lists are cached between the core pass and the union pass so
  // each point is queried exactly once (PDSDBSCAN's single-query property).
  std::vector<std::vector<PointId>> neighbors(n);

  // --- Local phase part 1: neighborhoods + core flags, per partition. ---
  for (u32 p = 0; p < config.partitions; ++p) {
    ScopedCounters scope(&result.local_phase[p]);
    for (const PointId id : partitioning.parts[p]) {
      counters::points_processed(1);
      index.range_query(points[id], config.params.eps,
                        neighbors[static_cast<size_t>(id)]);
      if (static_cast<i64>(neighbors[static_cast<size_t>(id)].size()) >=
          config.params.minpts) {
        is_core[static_cast<size_t>(id)] = 1;
        result.core_points.push_back(id);
      }
    }
  }

  // --- Local phase part 2: local unions; remember cross-partition pairs. ---
  UnionFind uf(n);
  std::vector<std::pair<PointId, PointId>> cross;
  for (u32 p = 0; p < config.partitions; ++p) {
    ScopedCounters scope(&result.local_phase[p]);
    for (const PointId id : partitioning.parts[p]) {
      if (!is_core[static_cast<size_t>(id)]) continue;
      for (const PointId q : neighbors[static_cast<size_t>(id)]) {
        counters::hash_ops(1);  // the core-flag lookup
        if (!is_core[static_cast<size_t>(q)] || q == id) continue;
        if (partitioning.owner[static_cast<size_t>(q)] ==
            static_cast<PartitionId>(p)) {
          uf.unite(static_cast<size_t>(id), static_cast<size_t>(q));
        } else if (id < q) {
          // Deferred to the merge phase; `id < q` dedups the symmetric pair
          // (the other side sees it too).
          cross.emplace_back(id, q);
          counters::queue_ops(1);
        }
      }
    }
  }
  result.cross_unions = cross.size();

  // --- Merge phase: apply cross-partition unions (driver-side here). ---
  {
    ScopedCounters scope(&result.merge_phase);
    for (const auto& [a, b] : cross) {
      uf.unite(static_cast<size_t>(a), static_cast<size_t>(b));
    }
  }

  // --- Labeling: roots -> dense ids; borders attach to a core neighbor. ---
  {
    ScopedCounters scope(&result.merge_phase);
    result.clustering.labels.assign(n, kNoise);
    std::vector<ClusterId> root_label(n, kUnlabeled);
    ClusterId next = 0;
    for (const PointId c : result.core_points) {
      const size_t root = uf.find(static_cast<size_t>(c));
      if (root_label[root] == kUnlabeled) root_label[root] = next++;
      result.clustering.labels[static_cast<size_t>(c)] = root_label[root];
      counters::merge_ops(1);
    }
    for (size_t id = 0; id < n; ++id) {
      if (is_core[id]) continue;
      for (const PointId q : neighbors[id]) {
        if (is_core[static_cast<size_t>(q)]) {
          result.clustering.labels[id] =
              root_label[uf.find(static_cast<size_t>(q))];
          counters::merge_ops(1);
          break;
        }
      }
    }
    result.clustering.num_clusters = static_cast<u64>(next);
  }
  return result;
}

}  // namespace sdb::dbscan
