#include "core/local_dbscan.hpp"

#include <deque>

#include "util/counters.hpp"
#include "util/flat_hash.hpp"

namespace sdb::dbscan {

const char* seed_strategy_name(SeedStrategy s) {
  switch (s) {
    case SeedStrategy::kOnePerPartition: return "one-per-partition";
    case SeedStrategy::kAllForeign: return "all-foreign";
  }
  return "?";
}

LocalClusterResult local_dbscan(const PointSet& points,
                                const SpatialIndex& index,
                                const Partitioning& partitioning,
                                PartitionId partition,
                                const LocalDbscanConfig& config) {
  SDB_CHECK(partition >= 0 &&
                static_cast<u32>(partition) < partitioning.num_partitions,
            "partition id out of range");
  const auto& my_points = partitioning.parts[static_cast<size_t>(partition)];
  const auto& owner = partitioning.owner;

  LocalClusterResult result;
  result.partition = partition;

  // The paper's Hashtable: visited marks + cluster membership of local
  // points. Algorithm 2 line 5 / line 11 / line 13 operate on it.
  FlatIdMap<ClusterId> membership(my_points.size() * 2 + 16);
  FlatIdSet visited(my_points.size() * 2 + 16);

  std::vector<PointId> neighbors;
  std::deque<PointId> frontier;  // the paper's Queue (LinkedList)

  for (const PointId p : my_points) {
    counters::hash_ops(1);
    if (visited.contains(p)) continue;  // line 5: already processed
    visited.insert(p);
    counters::hash_ops(1);
    counters::points_processed(1);

    neighbors.clear();
    index.range_query_budgeted(points[p], config.params.eps, config.budget,
                               neighbors);  // line 6: via broadcast kd-tree

    if (static_cast<i64>(neighbors.size()) < config.params.minpts) {
      result.noise.push_back(p);  // line 9 of Algorithm 2: mark as noise
      continue;
    }

    // New partial cluster seeded at local core point p.
    result.core_points.push_back(p);
    PartialCluster pc;
    pc.partition = partition;
    pc.uid = PartialCluster::make_uid(partition,
                                      static_cast<u32>(result.clusters.size()));
    pc.members.push_back(p);
    membership.put(p, static_cast<ClusterId>(pc.uid));
    counters::hash_ops(1);

    // Algorithm 3 state: the per-foreign-partition place flags (line 2) and
    // a dedup set so kAllForeign records each foreign point once.
    std::vector<char> seed_placed(partitioning.num_partitions, 0);
    FlatIdSet seeds_seen;

    frontier.assign(neighbors.begin(), neighbors.end());
    counters::queue_ops(neighbors.size());

    while (!frontier.empty()) {
      const PointId q = frontier.front();
      frontier.pop_front();
      counters::queue_ops(1);

      const PartitionId q_owner = owner[static_cast<size_t>(q)];
      if (q_owner != partition) {
        // Foreign point -> SEED placement (Algorithm 3 lines 6-26).
        counters::seed_ops(1);
        switch (config.seed_strategy) {
          case SeedStrategy::kOnePerPartition:
            if (!seed_placed[static_cast<size_t>(q_owner)]) {
              seed_placed[static_cast<size_t>(q_owner)] = 1;  // place_flg
              pc.seeds.push_back(q);
            }
            break;
          case SeedStrategy::kAllForeign:
            counters::hash_ops(1);
            if (seeds_seen.insert(q)) pc.seeds.push_back(q);
            break;
        }
        continue;  // never expand foreign points: no peer communication
      }

      counters::hash_ops(1);
      if (!visited.contains(q)) {  // line 13: q unvisited
        visited.insert(q);
        counters::hash_ops(1);
        counters::points_processed(1);
        neighbors.clear();
        index.range_query_budgeted(points[q], config.params.eps, config.budget,
                                   neighbors);  // line 15
        if (static_cast<i64>(neighbors.size()) >= config.params.minpts) {
          // line 16-17: q is core, its neighborhood extends the frontier.
          result.core_points.push_back(q);
          for (const PointId r : neighbors) frontier.push_back(r);
          counters::queue_ops(neighbors.size());
        }
      }

      // line 20-22: claim q for this cluster if unclaimed.
      counters::hash_ops(1);
      if (membership.find(q) == nullptr) {
        membership.put(q, static_cast<ClusterId>(pc.uid));
        counters::hash_ops(1);
        pc.members.push_back(q);
      }
    }
    result.clusters.push_back(std::move(pc));
  }

  // A locally-noise point may have been claimed later as a border point of a
  // local cluster (noise -> border promotion); drop those from the noise
  // list so the driver sees consistent facts.
  std::vector<PointId> true_noise;
  true_noise.reserve(result.noise.size());
  for (const PointId p : result.noise) {
    counters::hash_ops(1);
    if (membership.find(p) == nullptr) true_noise.push_back(p);
  }
  result.noise = std::move(true_noise);
  return result;
}

}  // namespace sdb::dbscan
