#include "core/local_dbscan.hpp"

#include <algorithm>
#include <deque>

#include "util/counters.hpp"
#include "util/flat_hash.hpp"

namespace sdb::dbscan {

const char* seed_strategy_name(SeedStrategy s) {
  switch (s) {
    case SeedStrategy::kOnePerPartition: return "one-per-partition";
    case SeedStrategy::kAllForeign: return "all-foreign";
  }
  return "?";
}

LocalClusterResult local_dbscan(const PointSet& points,
                                const SpatialIndex& index,
                                const Partitioning& partitioning,
                                PartitionId partition,
                                const LocalDbscanConfig& config) {
  SDB_CHECK(partition >= 0 &&
                static_cast<u32>(partition) < partitioning.num_partitions,
            "partition id out of range");
  const auto& my_points = partitioning.parts[static_cast<size_t>(partition)];
  const auto& owner = partitioning.owner;

  LocalClusterResult result;
  result.partition = partition;

  // The paper's Hashtable: visited marks + cluster membership of local
  // points. Algorithm 2 line 5 / line 11 / line 13 operate on it.
  FlatIdMap<ClusterId> membership(my_points.size() * 2 + 16);
  FlatIdSet visited(my_points.size() * 2 + 16);

  std::vector<PointId> neighbors;
  std::deque<PointId> frontier;  // the paper's Queue (LinkedList)
  u64 frontier_peak = 0;

  // Per-call counter batch: the expansion sweep increments hash/queue/seed
  // counters on every element, and a thread-local lookup per increment is
  // measurable at r1m scale. Tally locally, flush once through
  // counters::add — identical totals in every enclosing scope. (The
  // range_query calls flush their own per-query batches independently.)
  WorkCounters tally;

  // Algorithm 3 line 2 place flags, hoisted out of the cluster loop: the
  // per-cluster O(num_partitions) zero-fill showed up as allocator traffic
  // on many-cluster workloads. Only the entries dirtied by the previous
  // cluster are cleared.
  std::vector<char> seed_placed(partitioning.num_partitions, 0);
  std::vector<PartitionId> seed_dirty;

  for (const PointId p : my_points) {
    tally.hash_ops += 1;
    if (visited.contains(p)) continue;  // line 5: already processed
    visited.insert(p);
    tally.hash_ops += 1;
    tally.points_processed += 1;

    neighbors.clear();
    index.range_query_budgeted(points[p], config.params.eps, config.budget,
                               neighbors);  // line 6: via broadcast kd-tree

    if (static_cast<i64>(neighbors.size()) < config.params.minpts) {
      result.noise.push_back(p);  // line 9 of Algorithm 2: mark as noise
      continue;
    }

    // New partial cluster seeded at local core point p.
    result.core_points.push_back(p);
    PartialCluster pc;
    pc.partition = partition;
    pc.uid = PartialCluster::make_uid(partition,
                                      static_cast<u32>(result.clusters.size()));
    pc.members.push_back(p);
    membership.put(p, static_cast<ClusterId>(pc.uid));
    tally.hash_ops += 1;

    // Algorithm 3 state: reset the hoisted place flags, plus a dedup set so
    // kAllForeign records each foreign point once.
    for (const PartitionId d : seed_dirty) seed_placed[static_cast<size_t>(d)] = 0;
    seed_dirty.clear();
    FlatIdSet seeds_seen;

    // Frontier dedup (bugfix): the naive expansion pushes every neighbor of
    // every core point, so a dense cluster enqueues each point O(minpts)
    // times — O(n*minpts) queue memory and inflated queue_ops. Skip at push
    // time anything already claimed by this partition's sweep (its pop was
    // always a no-op: claimed implies visited, so neither expansion nor
    // membership would fire) and anything already queued for this cluster.
    // Pops see each id's FIRST occurrence in the original order, so
    // members/seeds/noise come out byte-identical to the naive loop.
    FlatIdSet enqueued(neighbors.size() * 2);
    frontier.clear();
    auto enqueue = [&](PointId r) {
      tally.hash_ops += 1;
      if (owner[static_cast<size_t>(r)] == partition &&
          membership.find(r) != nullptr) {
        return;
      }
      tally.hash_ops += 1;
      if (!enqueued.insert(r)) return;
      frontier.push_back(r);
      tally.queue_ops += 1;
    };
    for (const PointId r : neighbors) enqueue(r);
    frontier_peak = std::max<u64>(frontier_peak, frontier.size());

    while (!frontier.empty()) {
      const PointId q = frontier.front();
      frontier.pop_front();
      tally.queue_ops += 1;

      const PartitionId q_owner = owner[static_cast<size_t>(q)];
      if (q_owner != partition) {
        // Foreign point -> SEED placement (Algorithm 3 lines 6-26).
        tally.seed_ops += 1;
        switch (config.seed_strategy) {
          case SeedStrategy::kOnePerPartition:
            if (!seed_placed[static_cast<size_t>(q_owner)]) {
              seed_placed[static_cast<size_t>(q_owner)] = 1;  // place_flg
              seed_dirty.push_back(q_owner);
              pc.seeds.push_back(q);
            }
            break;
          case SeedStrategy::kAllForeign:
            tally.hash_ops += 1;
            if (seeds_seen.insert(q)) pc.seeds.push_back(q);
            break;
        }
        continue;  // never expand foreign points: no peer communication
      }

      tally.hash_ops += 1;
      if (!visited.contains(q)) {  // line 13: q unvisited
        visited.insert(q);
        tally.hash_ops += 1;
        tally.points_processed += 1;
        neighbors.clear();
        index.range_query_budgeted(points[q], config.params.eps, config.budget,
                                   neighbors);  // line 15
        if (static_cast<i64>(neighbors.size()) >= config.params.minpts) {
          // line 16-17: q is core, its neighborhood extends the frontier
          // (deduplicated — see `enqueue` above).
          result.core_points.push_back(q);
          for (const PointId r : neighbors) enqueue(r);
          frontier_peak = std::max<u64>(frontier_peak, frontier.size());
        }
      }

      // line 20-22: claim q for this cluster if unclaimed.
      tally.hash_ops += 1;
      if (membership.find(q) == nullptr) {
        membership.put(q, static_cast<ClusterId>(pc.uid));
        tally.hash_ops += 1;
        pc.members.push_back(q);
      }
    }
    result.clusters.push_back(std::move(pc));
  }

  // A locally-noise point may have been claimed later as a border point of a
  // local cluster (noise -> border promotion); drop those from the noise
  // list so the driver sees consistent facts.
  std::vector<PointId> true_noise;
  true_noise.reserve(result.noise.size());
  for (const PointId p : result.noise) {
    tally.hash_ops += 1;
    if (membership.find(p) == nullptr) true_noise.push_back(p);
  }
  result.noise = std::move(true_noise);
  // Emit the flat (origin uid, seed) edge view of the nested seed lists —
  // the record the v2 wire format ships and the parallel merge shards over.
  // A view construction folded into serialization, so it is not charged as
  // algorithm work.
  result.seed_edges = flatten_seed_edges(result);
  tally.frontier_peak = frontier_peak;
  counters::add(tally);
  return result;
}

}  // namespace sdb::dbscan
