#include "core/quality.hpp"

#include <sstream>
#include <unordered_map>

namespace sdb::dbscan {

EquivalenceReport check_equivalence(const PointSet& points,
                                    const SpatialIndex& index,
                                    const DbscanParams& params,
                                    const std::vector<PointId>& core_points,
                                    const Clustering& a, const Clustering& b) {
  EquivalenceReport report;
  SDB_CHECK(a.labels.size() == b.labels.size() &&
                a.labels.size() == points.size(),
            "clustering size mismatch");
  std::ostringstream detail;

  std::vector<char> is_core(points.size(), 0);
  for (const PointId p : core_points) is_core[static_cast<size_t>(p)] = 1;

  // Core partition equality: the label mapping restricted to core points
  // must be a bijection (and no core may be noise).
  std::unordered_map<ClusterId, ClusterId> a_to_b;
  std::unordered_map<ClusterId, ClusterId> b_to_a;
  for (const PointId p : core_points) {
    const ClusterId la = a.labels[static_cast<size_t>(p)];
    const ClusterId lb = b.labels[static_cast<size_t>(p)];
    if (la < 0 || lb < 0) {
      ++report.core_mismatches;
      if (report.core_mismatches <= 3) {
        detail << "core point " << p << " labeled noise (" << la << "/" << lb
               << "); ";
      }
      continue;
    }
    const auto [ita, ia] = a_to_b.try_emplace(la, lb);
    const auto [itb, ib] = b_to_a.try_emplace(lb, la);
    if ((!ia && ita->second != lb) || (!ib && itb->second != la)) {
      ++report.core_mismatches;
      if (report.core_mismatches <= 3) {
        detail << "core point " << p << " breaks bijection (" << la << "->"
               << lb << "); ";
      }
    }
  }

  // Noise set equality.
  for (size_t i = 0; i < a.labels.size(); ++i) {
    const bool na = a.labels[i] == kNoise;
    const bool nb = b.labels[i] == kNoise;
    if (na != nb) {
      ++report.noise_mismatches;
      if (report.noise_mismatches <= 3) {
        detail << "point " << i << " noise in one only; ";
      }
    }
  }

  // Border adjacency: every non-core clustered point of b must be within
  // eps of a core point of the same b-cluster (same check for a).
  auto check_borders = [&](const Clustering& c) {
    u64 violations = 0;
    std::vector<PointId> neighbors;
    for (size_t i = 0; i < c.labels.size(); ++i) {
      if (is_core[i] || c.labels[i] == kNoise) continue;
      neighbors.clear();
      index.range_query(points[static_cast<PointId>(i)], params.eps, neighbors);
      bool ok = false;
      for (const PointId q : neighbors) {
        if (is_core[static_cast<size_t>(q)] &&
            c.labels[static_cast<size_t>(q)] == c.labels[i]) {
          ok = true;
          break;
        }
      }
      if (!ok) ++violations;
    }
    return violations;
  };
  report.border_violations = check_borders(a) + check_borders(b);

  report.equivalent = report.core_mismatches == 0 &&
                      report.noise_mismatches == 0 &&
                      report.border_violations == 0;
  report.detail = detail.str();
  return report;
}

double rand_index(const Clustering& a, const Clustering& b) {
  SDB_CHECK(a.labels.size() == b.labels.size(), "clustering size mismatch");
  const size_t n = a.labels.size();
  if (n < 2) return 1.0;

  // Noise points become unique singleton labels so they never pair.
  auto effective = [n](const Clustering& c, size_t i) -> i64 {
    const ClusterId l = c.labels[i];
    return l >= 0 ? l : static_cast<i64>(n + i);
  };

  // Contingency counts keyed by (la, lb); marginals keyed by la / lb.
  std::unordered_map<u64, u64> cell;
  std::unordered_map<i64, u64> row;
  std::unordered_map<i64, u64> col;
  for (size_t i = 0; i < n; ++i) {
    const i64 la = effective(a, i);
    const i64 lb = effective(b, i);
    // Exact pair key (labels stay well under 2^32 here).
    ++cell[(static_cast<u64>(static_cast<u32>(la)) << 32) |
           static_cast<u64>(static_cast<u32>(lb))];
    ++row[la];
    ++col[lb];
  }
  auto choose2 = [](u64 k) { return static_cast<double>(k) * (k - 1) / 2.0; };
  double sum_cells = 0.0;
  for (const auto& [k, v] : cell) {
    (void)k;
    sum_cells += choose2(v);
  }
  double sum_rows = 0.0;
  for (const auto& [k, v] : row) {
    (void)k;
    sum_rows += choose2(v);
  }
  double sum_cols = 0.0;
  for (const auto& [k, v] : col) {
    (void)k;
    sum_cols += choose2(v);
  }
  const double total = choose2(n);
  // Rand = (agreements) / total pairs
  //      = (TP + TN) / total, TP = sum_cells,
  //        TN = total - sum_rows - sum_cols + sum_cells.
  const double agreements = total - sum_rows - sum_cols + 2.0 * sum_cells;
  return agreements / total;
}

double adjusted_rand_index(const Clustering& a, const Clustering& b) {
  SDB_CHECK(a.labels.size() == b.labels.size(), "clustering size mismatch");
  const size_t n = a.labels.size();
  if (n < 2) return 1.0;

  // Same contingency machinery as rand_index (noise -> unique singletons).
  auto effective = [n](const Clustering& c, size_t i) -> i64 {
    const ClusterId l = c.labels[i];
    return l >= 0 ? l : static_cast<i64>(n + i);
  };
  std::unordered_map<u64, u64> cell;
  std::unordered_map<i64, u64> row;
  std::unordered_map<i64, u64> col;
  for (size_t i = 0; i < n; ++i) {
    const i64 la = effective(a, i);
    const i64 lb = effective(b, i);
    ++cell[(static_cast<u64>(static_cast<u32>(la)) << 32) |
           static_cast<u64>(static_cast<u32>(lb))];
    ++row[la];
    ++col[lb];
  }
  auto choose2 = [](u64 k) { return static_cast<double>(k) * (k - 1) / 2.0; };
  double sum_cells = 0.0;
  for (const auto& [k, v] : cell) {
    (void)k;
    sum_cells += choose2(v);
  }
  double sum_rows = 0.0;
  for (const auto& [k, v] : row) {
    (void)k;
    sum_rows += choose2(v);
  }
  double sum_cols = 0.0;
  for (const auto& [k, v] : col) {
    (void)k;
    sum_cols += choose2(v);
  }
  const double total = choose2(n);
  // ARI = (Index - ExpectedIndex) / (MaxIndex - ExpectedIndex).
  const double expected = sum_rows * sum_cols / total;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // both partitions all-singletons
  return (sum_cells - expected) / (max_index - expected);
}

ClusteringStats summarize(const Clustering& c) {
  ClusteringStats stats;
  stats.clusters = c.num_clusters;
  stats.noise = c.noise_count();
  const auto sizes = c.cluster_sizes();
  u64 total = 0;
  for (const u64 s : sizes) {
    stats.largest = std::max(stats.largest, s);
    stats.smallest = stats.smallest == 0 ? s : std::min(stats.smallest, s);
    total += s;
  }
  stats.mean_size =
      sizes.empty() ? 0.0 : static_cast<double>(total) / static_cast<double>(sizes.size());
  return stats;
}

}  // namespace sdb::dbscan
