#include "core/codec.hpp"

#include "util/counters.hpp"
#include "util/varint.hpp"

namespace sdb::dbscan {

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kRaw: return "raw";
    case Codec::kCompact: return "compact";
  }
  return "?";
}

namespace {

std::string encode_compact(const LocalClusterResult& result) {
  std::vector<char> out;
  put_varint(out, static_cast<u64>(result.partition));
  put_varint(out, result.clusters.size());
  for (const PartialCluster& pc : result.clusters) {
    put_varint(out, pc.uid);
    put_id_list(out, pc.members);
    put_id_list(out, pc.seeds);
  }
  put_id_list(out, result.core_points);
  put_id_list(out, result.noise);
  return std::string(out.data(), out.size());
}

LocalClusterResult decode_compact(const std::string& bytes) {
  LocalClusterResult result;
  size_t pos = 0;
  const char* data = bytes.data();
  const size_t size = bytes.size();
  result.partition =
      static_cast<PartitionId>(get_varint(data, size, pos));
  const u64 n = get_varint(data, size, pos);
  result.clusters.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    PartialCluster pc;
    pc.uid = get_varint(data, size, pos);
    pc.partition = result.partition;
    pc.members = get_id_list(data, size, pos);
    pc.seeds = get_id_list(data, size, pos);
    result.clusters.push_back(std::move(pc));
  }
  result.core_points = get_id_list(data, size, pos);
  result.noise = get_id_list(data, size, pos);
  SDB_CHECK(pos == size, "compact codec: trailing bytes");
  return result;
}

}  // namespace

std::string encode(const LocalClusterResult& result, Codec codec) {
  std::string bytes;
  switch (codec) {
    case Codec::kRaw: bytes = to_bytes(result); break;
    case Codec::kCompact: bytes = encode_compact(result); break;
  }
  counters::codec_bytes(bytes.size());
  return bytes;
}

LocalClusterResult decode(const std::string& bytes, Codec codec) {
  counters::codec_bytes(bytes.size());
  switch (codec) {
    case Codec::kRaw: return local_result_from_bytes(bytes);
    case Codec::kCompact: return decode_compact(bytes);
  }
  SDB_CHECK(false, "unknown codec");
  return {};
}

}  // namespace sdb::dbscan
