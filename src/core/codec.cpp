#include "core/codec.hpp"

#include "util/counters.hpp"
#include "util/varint.hpp"

namespace sdb::dbscan {

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kRaw: return "raw";
    case Codec::kCompact: return "compact";
  }
  return "?";
}

namespace {

/// v2 compact framing sentinel. A v1 stream starts with the partition id
/// varint; partitions are i32 values (< 2^31), so a leading varint at or
/// above this constant is unambiguously a v2 header. ("SDB2" << 32.)
constexpr u64 kCompactMagicV2 = 0x53444232ull << 32;

std::string encode_compact(const LocalClusterResult& result) {
  // v2: header, members-only cluster records, per-point facts, then the
  // seed-edge section (each cluster's seed list in clusters order — the
  // same sorted/delta/varint bytes the v1 layout nested per cluster).
  std::vector<char> out;
  put_varint(out, kCompactMagicV2);
  put_varint(out, kLocalResultWireV2);
  put_varint(out, static_cast<u64>(result.partition));
  put_varint(out, result.clusters.size());
  for (const PartialCluster& pc : result.clusters) {
    put_varint(out, pc.uid);
    put_id_list(out, pc.members);
  }
  put_id_list(out, result.core_points);
  put_id_list(out, result.noise);
  for (const PartialCluster& pc : result.clusters) {
    put_id_list(out, pc.seeds);
  }
  return std::string(out.data(), out.size());
}

LocalClusterResult decode_compact(const std::string& bytes) {
  LocalClusterResult result;
  size_t pos = 0;
  const char* data = bytes.data();
  const size_t size = bytes.size();
  const u64 head = get_varint(data, size, pos);
  if (head < kCompactMagicV2) {
    // Legacy v1: `head` is the partition id, clusters carry nested seeds.
    result.partition = static_cast<PartitionId>(head);
    const u64 n = get_varint(data, size, pos);
    result.clusters.reserve(n);
    for (u64 i = 0; i < n; ++i) {
      PartialCluster pc;
      pc.uid = get_varint(data, size, pos);
      pc.partition = result.partition;
      pc.members = get_id_list(data, size, pos);
      pc.seeds = get_id_list(data, size, pos);
      result.clusters.push_back(std::move(pc));
    }
    result.core_points = get_id_list(data, size, pos);
    result.noise = get_id_list(data, size, pos);
    SDB_CHECK(pos == size, "compact codec: trailing bytes");
    result.seed_edges = flatten_seed_edges(result);
    return result;
  }
  SDB_CHECK(head == kCompactMagicV2, "compact codec: bad wire magic");
  const u64 version = get_varint(data, size, pos);
  SDB_CHECK(version == kLocalResultWireV2,
            "compact codec: unknown wire version");
  result.partition = static_cast<PartitionId>(get_varint(data, size, pos));
  const u64 n = get_varint(data, size, pos);
  result.clusters.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    PartialCluster pc;
    pc.uid = get_varint(data, size, pos);
    pc.partition = result.partition;
    pc.members = get_id_list(data, size, pos);
    result.clusters.push_back(std::move(pc));
  }
  result.core_points = get_id_list(data, size, pos);
  result.noise = get_id_list(data, size, pos);
  for (u64 i = 0; i < n; ++i) {
    result.clusters[i].seeds = get_id_list(data, size, pos);
  }
  SDB_CHECK(pos == size, "compact codec: trailing bytes");
  result.seed_edges = flatten_seed_edges(result);
  return result;
}

}  // namespace

std::string encode(const LocalClusterResult& result, Codec codec) {
  std::string bytes;
  switch (codec) {
    case Codec::kRaw: bytes = to_bytes(result); break;
    case Codec::kCompact: bytes = encode_compact(result); break;
  }
  counters::codec_bytes(bytes.size());
  return bytes;
}

LocalClusterResult decode(const std::string& bytes, Codec codec) {
  counters::codec_bytes(bytes.size());
  switch (codec) {
    case Codec::kRaw: return local_result_from_bytes(bytes);
    case Codec::kCompact: return decode_compact(bytes);
  }
  SDB_CHECK(false, "unknown codec");
  return {};
}

}  // namespace sdb::dbscan
