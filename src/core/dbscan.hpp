// Common DBSCAN types shared by the sequential, Spark, and MapReduce
// implementations.
#pragma once

#include <vector>

#include "util/common.hpp"

namespace sdb::dbscan {

/// The two DBSCAN parameters (Ester et al. 1996). The paper uses eps=25,
/// minpts=5 for all Table I datasets.
struct DbscanParams {
  double eps = 25.0;
  i64 minpts = 5;
};

/// A complete clustering of n points: labels[i] is the cluster of point i,
/// kNoise for noise. Cluster ids are dense in [0, num_clusters).
struct Clustering {
  std::vector<ClusterId> labels;
  u64 num_clusters = 0;

  [[nodiscard]] u64 size() const { return labels.size(); }

  [[nodiscard]] u64 noise_count() const {
    u64 c = 0;
    for (const ClusterId l : labels) c += (l == kNoise) ? 1 : 0;
    return c;
  }

  /// Cluster sizes indexed by cluster id.
  [[nodiscard]] std::vector<u64> cluster_sizes() const {
    std::vector<u64> sizes(num_clusters, 0);
    for (const ClusterId l : labels) {
      if (l >= 0) ++sizes[static_cast<size_t>(l)];
    }
    return sizes;
  }

  /// Renumber labels to be dense in first-appearance order; normalizes two
  /// clusterings for comparison.
  void normalize();
};

}  // namespace sdb::dbscan
