#include "core/incremental.hpp"

#include <algorithm>
#include <unordered_map>

#include "geom/distance.hpp"

namespace sdb::dbscan {

IncrementalDbscan::IncrementalDbscan(Config config, int dim)
    : config_(std::move(config)), points_(dim) {
  SDB_CHECK(config_.params.minpts >= 1, "minpts must be >= 1");
}

void IncrementalDbscan::neighbors_of(std::span<const double> q,
                                     std::vector<PointId>& out) const {
  if (tree_ != nullptr) {
    tree_->range_query(q, config_.params.eps, out);
  }
  // Overflow buffer: brute-force scan of the points added since the last
  // rebuild.
  const double eps2 = config_.params.eps * config_.params.eps;
  for (PointId i = static_cast<PointId>(tree_size_);
       i < static_cast<PointId>(points_.size()); ++i) {
    if (squared_distance(q, points_[i]) <= eps2) out.push_back(i);
  }
  // Filter tombstones (the tree still indexes them).
  std::erase_if(out, [this](PointId id) {
    return removed_[static_cast<size_t>(id)] != 0;
  });
}

size_t IncrementalDbscan::find_slot(size_t slot) const {
  while (slot_parent_[slot] != slot) {
    slot_parent_[slot] = slot_parent_[slot_parent_[slot]];
    slot = slot_parent_[slot];
  }
  return slot;
}

void IncrementalDbscan::unite_slots(size_t a, size_t b) {
  a = find_slot(a);
  b = find_slot(b);
  if (a == b) return;
  slot_parent_[b] = a;
  ++merges_;
}

size_t IncrementalDbscan::new_slot() {
  slot_parent_.push_back(slot_parent_.size());
  return slot_parent_.size() - 1;
}

PointId IncrementalDbscan::insert(std::span<const double> coords) {
  const PointId p = points_.add(coords);
  core_.push_back(0);
  slot_of_.push_back(kNone);
  count_.push_back(0);
  removed_.push_back(0);

  // Neighbors of p among all previous points plus p itself.
  std::vector<PointId> neighbors;
  neighbors_of(coords, neighbors);
  // points_ already contains p, and p is in the overflow range, so the scan
  // included it; count_ is self-inclusive by construction.
  count_[static_cast<size_t>(p)] = neighbors.size();

  // Every neighbor's count grows by one; collect the points that just
  // crossed the core threshold.
  std::vector<PointId> new_cores;
  for (const PointId q : neighbors) {
    if (q == p) continue;
    ++count_[static_cast<size_t>(q)];
    if (!core_[static_cast<size_t>(q)] &&
        count_[static_cast<size_t>(q)] >=
            static_cast<u64>(config_.params.minpts)) {
      core_[static_cast<size_t>(q)] = 1;
      new_cores.push_back(q);
    }
  }
  if (count_[static_cast<size_t>(p)] >=
      static_cast<u64>(config_.params.minpts)) {
    core_[static_cast<size_t>(p)] = 1;
    new_cores.push_back(p);
  }

  if (new_cores.empty()) {
    // p itself may still be a border point of an adjacent core's cluster.
    for (const PointId q : neighbors) {
      if (q != p && core_[static_cast<size_t>(q)]) {
        slot_of_[static_cast<size_t>(p)] =
            static_cast<i64>(find_slot(static_cast<size_t>(
                slot_of_[static_cast<size_t>(q)])));
        break;
      }
    }
    return p;
  }

  // Each new core anchors its own cluster slot; clusters merge ONLY through
  // core-core adjacency. (Two new cores linked only via the non-core point
  // p must NOT fuse — non-core points never chain clusters in DBSCAN.)
  for (const PointId q : new_cores) {
    if (slot_of_[static_cast<size_t>(q)] == kNone) {
      slot_of_[static_cast<size_t>(q)] = static_cast<i64>(new_slot());
    }
  }

  std::vector<PointId> q_neighbors;
  for (const PointId q : new_cores) {
    const auto q_slot = static_cast<size_t>(slot_of_[static_cast<size_t>(q)]);
    // Everything in q's eps-neighborhood is now directly density-reachable
    // from q: core neighbors pull their clusters into q's; noise neighbors
    // become border points of q's cluster.
    q_neighbors.clear();
    neighbors_of(points_[q], q_neighbors);
    for (const PointId r : q_neighbors) {
      if (r == q) continue;
      if (core_[static_cast<size_t>(r)]) {
        // Every core has a slot by now (old cores got theirs when they
        // became core; this batch was pre-assigned above).
        unite_slots(q_slot,
                    static_cast<size_t>(slot_of_[static_cast<size_t>(r)]));
      } else if (slot_of_[static_cast<size_t>(r)] == kNone) {
        slot_of_[static_cast<size_t>(r)] =
            static_cast<i64>(find_slot(q_slot));  // noise -> border
      }
    }
  }

  // p itself: border of an adjacent core if it is not core.
  if (!core_[static_cast<size_t>(p)] &&
      slot_of_[static_cast<size_t>(p)] == kNone) {
    for (const PointId q : neighbors) {
      if (q != p && core_[static_cast<size_t>(q)]) {
        slot_of_[static_cast<size_t>(p)] =
            slot_of_[static_cast<size_t>(q)];
        break;
      }
    }
  }

  // Amortized index maintenance.
  if (config_.rebuild_threshold > 0 &&
      points_.size() - tree_size_ >= config_.rebuild_threshold) {
    tree_ = std::make_unique<KdTree>(points_);
    tree_size_ = points_.size();
    ++rebuilds_;
  }
  return p;
}

void IncrementalDbscan::remove(PointId id) {
  SDB_CHECK(id >= 0 && static_cast<size_t>(id) < points_.size(),
            "remove: invalid point id");
  SDB_CHECK(!removed_[static_cast<size_t>(id)], "remove: already removed");

  // Neighbors BEFORE tombstoning (the set whose counts shrink).
  std::vector<PointId> neighbors;
  neighbors_of(points_[id], neighbors);

  removed_[static_cast<size_t>(id)] = 1;
  ++removed_count_;

  // Shrink neighbor counts; collect cores demoted by the loss.
  std::vector<PointId> demoted;
  for (const PointId q : neighbors) {
    if (q == id) continue;
    --count_[static_cast<size_t>(q)];
    if (core_[static_cast<size_t>(q)] &&
        count_[static_cast<size_t>(q)] <
            static_cast<u64>(config_.params.minpts)) {
      core_[static_cast<size_t>(q)] = 0;
      demoted.push_back(q);
    }
  }

  // Affected clusters: the removed point's own and every demoted core's.
  // Their union is re-clustered from surviving cores — removal can split a
  // cluster, which no local patch rule handles soundly.
  std::vector<size_t> affected;
  auto note_slot = [&](PointId q) {
    const i64 slot = slot_of_[static_cast<size_t>(q)];
    if (slot == kNone) return;
    const size_t root = find_slot(static_cast<size_t>(slot));
    if (std::find(affected.begin(), affected.end(), root) == affected.end()) {
      affected.push_back(root);
    }
  };
  note_slot(id);
  for (const PointId d : demoted) note_slot(d);
  slot_of_[static_cast<size_t>(id)] = kNone;
  core_[static_cast<size_t>(id)] = 0;
  if (affected.empty()) return;
  ++reclusterings_;

  // Gather the affected clusters' surviving members and clear them.
  std::vector<PointId> region;
  for (PointId q = 0; q < static_cast<PointId>(points_.size()); ++q) {
    if (removed_[static_cast<size_t>(q)]) continue;
    const i64 slot = slot_of_[static_cast<size_t>(q)];
    if (slot == kNone) continue;
    const size_t root = find_slot(static_cast<size_t>(slot));
    if (std::find(affected.begin(), affected.end(), root) != affected.end()) {
      region.push_back(q);
      slot_of_[static_cast<size_t>(q)] = kNone;
    }
  }

  // Re-cluster the region: BFS over its core graph (fresh slot per
  // connected component), then border attachment. The BFS is closed within
  // the region: a core adjacent to a region core shared its cluster before
  // the removal, so that cluster is affected and the core is in the region.
  std::vector<PointId> frontier;
  std::vector<PointId> q_neighbors;
  for (const PointId c : region) {
    if (!core_[static_cast<size_t>(c)] ||
        slot_of_[static_cast<size_t>(c)] != kNone) {
      continue;
    }
    const auto slot = static_cast<i64>(new_slot());
    slot_of_[static_cast<size_t>(c)] = slot;
    frontier.assign(1, c);
    while (!frontier.empty()) {
      const PointId x = frontier.back();
      frontier.pop_back();
      q_neighbors.clear();
      neighbors_of(points_[x], q_neighbors);
      for (const PointId r : q_neighbors) {
        if (core_[static_cast<size_t>(r)] &&
            slot_of_[static_cast<size_t>(r)] == kNone) {
          slot_of_[static_cast<size_t>(r)] = slot;
          frontier.push_back(r);
        }
      }
    }
  }
  // Border attachment for the region's non-core points.
  for (const PointId b : region) {
    if (core_[static_cast<size_t>(b)] ||
        slot_of_[static_cast<size_t>(b)] != kNone) {
      continue;
    }
    q_neighbors.clear();
    neighbors_of(points_[b], q_neighbors);
    for (const PointId r : q_neighbors) {
      if (core_[static_cast<size_t>(r)]) {
        slot_of_[static_cast<size_t>(b)] = slot_of_[static_cast<size_t>(r)];
        break;
      }
    }
  }
}

ClusterId IncrementalDbscan::label_of(PointId id) const {
  const i64 slot = slot_of_[static_cast<size_t>(id)];
  if (slot == kNone) return kNoise;
  return static_cast<ClusterId>(find_slot(static_cast<size_t>(slot)));
}

Clustering IncrementalDbscan::clustering() const {
  Clustering c;
  c.labels.reserve(points_.size());
  std::unordered_map<size_t, ClusterId> remap;
  ClusterId next = 0;
  for (PointId i = 0; i < static_cast<PointId>(points_.size()); ++i) {
    const i64 slot = slot_of_[static_cast<size_t>(i)];
    if (slot == kNone) {
      c.labels.push_back(kNoise);
      continue;
    }
    const size_t root = find_slot(static_cast<size_t>(slot));
    const auto [it, inserted] = remap.try_emplace(root, next);
    if (inserted) ++next;
    c.labels.push_back(it->second);
  }
  c.num_clusters = static_cast<u64>(next);
  return c;
}

}  // namespace sdb::dbscan
