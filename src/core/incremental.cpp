#include "core/incremental.hpp"

#include <algorithm>
#include <cstring>

#include "geom/distance.hpp"
#include "util/flat_hash.hpp"

namespace sdb::dbscan {

IncrementalDbscan::IncrementalDbscan(Config config, int dim)
    : config_(std::move(config)), points_(dim) {
  SDB_CHECK(config_.params.minpts >= 1, "minpts must be >= 1");
}

void IncrementalDbscan::neighbors_of(std::span<const double> q,
                                     std::vector<PointId>& out) const {
  if (tree_ != nullptr) {
    tree_->range_query(q, config_.params.eps, out);
  }
  // Overflow buffer: brute-force scan of the rows added since the last
  // rebuild.
  const double eps2 = config_.params.eps * config_.params.eps;
  for (PointId i = static_cast<PointId>(tree_size_);
       i < static_cast<PointId>(points_.size()); ++i) {
    if (squared_distance(q, points_[i]) <= eps2) out.push_back(i);
  }
  // Filter tombstones (the tree still indexes them).
  std::erase_if(out, [this](PointId row) {
    return removed_[static_cast<size_t>(row)] != 0;
  });
}

size_t IncrementalDbscan::find_slot(size_t slot) const {
  while (slot_parent_[slot] != slot) {
    slot_parent_[slot] = slot_parent_[slot_parent_[slot]];
    slot = slot_parent_[slot];
  }
  return slot;
}

void IncrementalDbscan::unite_slots(size_t a, size_t b) {
  a = find_slot(a);
  b = find_slot(b);
  if (a == b) return;
  slot_parent_[b] = a;
  ++merges_;
}

size_t IncrementalDbscan::new_slot() {
  slot_parent_.push_back(slot_parent_.size());
  return slot_parent_.size() - 1;
}

bool IncrementalDbscan::is_removed(PointId id) const {
  SDB_CHECK(id >= 0 && static_cast<u64>(id) < next_id_,
            "is_removed: id never issued");
  return row_of(id) == kInvalidRow;
}

PointId IncrementalDbscan::insert(std::span<const double> coords) {
  const auto id = static_cast<PointId>(next_id_++);
  insert_row(id, coords);
  maybe_rebuild_after_insert();
  return id;
}

void IncrementalDbscan::restore(PointId id, std::span<const double> coords) {
  SDB_CHECK(id >= 0 && static_cast<u64>(id) >= next_id_,
            "restore: ids must arrive in increasing order");
  next_id_ = static_cast<u64>(id) + 1;
  insert_row(id, coords);
  maybe_rebuild_after_insert();
}

void IncrementalDbscan::insert_row(PointId external_id,
                                   std::span<const double> coords) {
  const PointId p = points_.add(coords);  // row index
  external_of_.push_back(external_id);
  internal_of_.emplace(external_id, static_cast<u32>(p));
  core_.push_back(0);
  slot_of_.push_back(kNone);
  count_.push_back(0);
  removed_.push_back(0);

  // Neighbors of p among all previous points plus p itself.
  std::vector<PointId> neighbors;
  neighbors_of(coords, neighbors);
  // points_ already contains p, and p is in the overflow range, so the scan
  // included it; count_ is self-inclusive by construction.
  count_[static_cast<size_t>(p)] = neighbors.size();

  // Every neighbor's count grows by one; collect the points that just
  // crossed the core threshold.
  std::vector<PointId> new_cores;
  for (const PointId q : neighbors) {
    if (q == p) continue;
    ++count_[static_cast<size_t>(q)];
    if (!core_[static_cast<size_t>(q)] &&
        count_[static_cast<size_t>(q)] >=
            static_cast<u64>(config_.params.minpts)) {
      core_[static_cast<size_t>(q)] = 1;
      new_cores.push_back(q);
    }
  }
  if (count_[static_cast<size_t>(p)] >=
      static_cast<u64>(config_.params.minpts)) {
    core_[static_cast<size_t>(p)] = 1;
    new_cores.push_back(p);
  }

  if (new_cores.empty()) {
    // p itself may still be a border point of an adjacent core's cluster.
    for (const PointId q : neighbors) {
      if (q != p && core_[static_cast<size_t>(q)]) {
        slot_of_[static_cast<size_t>(p)] =
            static_cast<i64>(find_slot(static_cast<size_t>(
                slot_of_[static_cast<size_t>(q)])));
        break;
      }
    }
    return;
  }

  // Each new core anchors its own cluster slot; clusters merge ONLY through
  // core-core adjacency. (Two new cores linked only via the non-core point
  // p must NOT fuse — non-core points never chain clusters in DBSCAN.)
  for (const PointId q : new_cores) {
    if (slot_of_[static_cast<size_t>(q)] == kNone) {
      slot_of_[static_cast<size_t>(q)] = static_cast<i64>(new_slot());
    }
  }

  std::vector<PointId> q_neighbors;
  for (const PointId q : new_cores) {
    const auto q_slot = static_cast<size_t>(slot_of_[static_cast<size_t>(q)]);
    // Everything in q's eps-neighborhood is now directly density-reachable
    // from q: core neighbors pull their clusters into q's; noise neighbors
    // become border points of q's cluster.
    q_neighbors.clear();
    neighbors_of(points_[q], q_neighbors);
    for (const PointId r : q_neighbors) {
      if (r == q) continue;
      if (core_[static_cast<size_t>(r)]) {
        // Every core has a slot by now (old cores got theirs when they
        // became core; this batch was pre-assigned above).
        unite_slots(q_slot,
                    static_cast<size_t>(slot_of_[static_cast<size_t>(r)]));
      } else if (slot_of_[static_cast<size_t>(r)] == kNone) {
        slot_of_[static_cast<size_t>(r)] =
            static_cast<i64>(find_slot(q_slot));  // noise -> border
      }
    }
  }

  // p itself: border of an adjacent core if it is not core.
  if (!core_[static_cast<size_t>(p)] &&
      slot_of_[static_cast<size_t>(p)] == kNone) {
    for (const PointId q : neighbors) {
      if (q != p && core_[static_cast<size_t>(q)]) {
        slot_of_[static_cast<size_t>(p)] =
            slot_of_[static_cast<size_t>(q)];
        break;
      }
    }
  }
}

bool IncrementalDbscan::try_remove(PointId id) {
  if (id < 0 || static_cast<u64>(id) >= next_id_) return false;
  const u32 row = row_of(id);
  if (row == kInvalidRow) return false;
  remove_rows({row});
  maybe_rebuild_after_remove();
  return true;
}

std::vector<IncrementalDbscan::BatchResult> IncrementalDbscan::apply_batch(
    std::span<const BatchOp> ops) {
  std::vector<BatchResult> results(ops.size());
  // Inserts first, in op order (within a batch, inserts happen-before
  // removes; a remove can target an id acked by an earlier batch or an
  // insert of this one).
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != BatchOp::Kind::kInsert) continue;
    results[i] = {true, insert(ops[i].coords)};
  }
  // Removes share one affected-region re-clustering.
  std::vector<u32> victims;
  FlatIdSet pending;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != BatchOp::Kind::kRemove) continue;
    const PointId id = ops[i].id;
    results[i].id = id;
    if (id < 0 || static_cast<u64>(id) >= next_id_) continue;
    const u32 row = row_of(id);
    if (row == kInvalidRow) continue;                 // unknown / stale id
    if (!pending.insert(static_cast<i64>(row))) continue;  // double remove
    victims.push_back(row);
    results[i].applied = true;
  }
  if (!victims.empty()) {
    remove_rows(victims);
    maybe_rebuild_after_remove();
  }
  return results;
}

void IncrementalDbscan::remove_rows(const std::vector<u32>& victims) {
  const auto minpts = static_cast<u64>(config_.params.minpts);

  // Snapshot each victim's pre-removal role, then tombstone all of them up
  // front so neighbor queries below see only survivors. (Row coords stay
  // readable until the next reclaim.)
  std::vector<char> was_core(victims.size());
  std::vector<i64> old_slot(victims.size());
  for (size_t k = 0; k < victims.size(); ++k) {
    const u32 v = victims[k];
    was_core[k] = core_[v];
    old_slot[k] = slot_of_[v];
    removed_[v] = 1;
    ++removed_count_;
    core_[v] = 0;
    slot_of_[v] = kNone;
  }

  // Each survivor q loses |N(q) ∩ victims| neighbors — one decrement per
  // (victim, q) adjacency. Collect the cores demoted by the loss.
  std::vector<PointId> nbrs;
  std::vector<u32> demoted;
  FlatIdSet demoted_set;
  for (const u32 v : victims) {
    nbrs.clear();
    neighbors_of(points_[static_cast<PointId>(v)], nbrs);
    for (const PointId q : nbrs) {
      --count_[static_cast<size_t>(q)];
      if (core_[static_cast<size_t>(q)] &&
          count_[static_cast<size_t>(q)] < minpts) {
        core_[static_cast<size_t>(q)] = 0;
        demoted.push_back(static_cast<u32>(q));
        demoted_set.insert(q);
      }
    }
  }

  // Affected clusters: every removed core's and every demoted core's.
  // Removing only border/noise points (with no demotions) changes nothing
  // about the survivors' clustering — no region work at all.
  FlatIdSet affected;
  for (size_t k = 0; k < victims.size(); ++k) {
    if (was_core[k] && old_slot[k] != kNone) {
      affected.insert(
          static_cast<i64>(find_slot(static_cast<size_t>(old_slot[k]))));
    }
  }
  for (const u32 d : demoted) {
    const i64 slot = slot_of_[d];
    if (slot != kNone) {
      affected.insert(static_cast<i64>(find_slot(static_cast<size_t>(slot))));
    }
  }
  if (affected.empty()) return;
  ++reclusterings_;

  // Affected-region search over the OLD core graph (survivors still core
  // plus this batch's demotions), seeded at the removed cores'
  // neighborhoods and at the demotions. Old cores reached this way provably
  // belong to affected clusters (two old cores within eps shared a
  // cluster), so the search never leaves the region — its cost scales with
  // the affected clusters, not with n. Non-core members of affected
  // clusters are collected along the way for re-attachment; components the
  // search never reaches keep their old slots, and with them their labels.
  std::vector<u32> region;
  FlatIdSet in_region;
  std::vector<u32> stack;
  auto consider = [&](PointId rid) {
    const auto r = static_cast<u32>(rid);
    if (in_region.contains(rid)) return;
    if (core_[r] || demoted_set.contains(rid)) {
      in_region.insert(rid);
      region.push_back(r);
      stack.push_back(r);
      return;
    }
    const i64 slot = slot_of_[r];
    if (slot != kNone &&
        affected.contains(
            static_cast<i64>(find_slot(static_cast<size_t>(slot))))) {
      in_region.insert(rid);
      region.push_back(r);
    }
  };
  for (const u32 d : demoted) consider(static_cast<PointId>(d));
  for (size_t k = 0; k < victims.size(); ++k) {
    if (!was_core[k]) continue;
    nbrs.clear();
    neighbors_of(points_[static_cast<PointId>(victims[k])], nbrs);
    for (const PointId r : nbrs) consider(r);
  }
  while (!stack.empty()) {
    const u32 x = stack.back();
    stack.pop_back();
    nbrs.clear();
    neighbors_of(points_[static_cast<PointId>(x)], nbrs);
    for (const PointId r : nbrs) {
      if (static_cast<u32>(r) != x) consider(r);
    }
  }

  for (const u32 x : region) slot_of_[x] = kNone;

  // Re-cluster the region: BFS over its core graph (fresh slot per
  // connected component), then border attachment. The BFS is closed within
  // the region: a core adjacent to a region core shared its cluster before
  // the removal, so the region search collected it.
  std::vector<PointId> frontier;
  std::vector<PointId> q_neighbors;
  for (const u32 c : region) {
    if (!core_[c] || slot_of_[c] != kNone) continue;
    const auto slot = static_cast<i64>(new_slot());
    slot_of_[c] = slot;
    frontier.assign(1, static_cast<PointId>(c));
    while (!frontier.empty()) {
      const PointId x = frontier.back();
      frontier.pop_back();
      q_neighbors.clear();
      neighbors_of(points_[x], q_neighbors);
      for (const PointId r : q_neighbors) {
        if (core_[static_cast<size_t>(r)] &&
            slot_of_[static_cast<size_t>(r)] == kNone) {
          slot_of_[static_cast<size_t>(r)] = slot;
          frontier.push_back(r);
        }
      }
    }
  }
  // Border attachment for the region's non-core points. Attaching to a core
  // OUTSIDE the region (an untouched component that kept its slot) is valid
  // — the border is within eps of that core.
  for (const u32 b : region) {
    if (core_[b] || slot_of_[b] != kNone) continue;
    q_neighbors.clear();
    neighbors_of(points_[static_cast<PointId>(b)], q_neighbors);
    for (const PointId r : q_neighbors) {
      if (core_[static_cast<size_t>(r)]) {
        slot_of_[b] = slot_of_[static_cast<size_t>(r)];
        break;
      }
    }
  }
}

void IncrementalDbscan::maybe_rebuild_after_insert() {
  if (config_.rebuild_threshold > 0 &&
      points_.size() - tree_size_ >= config_.rebuild_threshold) {
    rebuild_and_reclaim();
  }
}

void IncrementalDbscan::maybe_rebuild_after_remove() {
  if (config_.rebuild_threshold > 0 &&
      removed_count_ >= config_.rebuild_threshold) {
    rebuild_and_reclaim();
  }
}

void IncrementalDbscan::rebuild_and_reclaim() {
  if (removed_count_ > 0) {
    // Compact rows: drop tombstones, remap external ids, renumber the slot
    // forest root-by-root (grouping and first-appearance order are
    // preserved, so clustering() output is unchanged).
    const size_t live = points_.size() - removed_count_;
    PointSet rows(points_.dim());
    rows.reserve(live);
    std::vector<PointId> external;
    std::vector<char> core;
    std::vector<u64> count;
    std::vector<i64> slot;
    std::vector<char> removed;
    external.reserve(live);
    core.reserve(live);
    count.reserve(live);
    slot.reserve(live);
    removed.reserve(live);
    std::unordered_map<size_t, size_t> root_remap;
    std::vector<size_t> parent;
    for (size_t r = 0; r < points_.size(); ++r) {
      if (removed_[r]) {
        internal_of_.erase(external_of_[r]);
        continue;
      }
      internal_of_[external_of_[r]] = static_cast<u32>(external.size());
      rows.add(points_[static_cast<PointId>(r)]);
      external.push_back(external_of_[r]);
      core.push_back(core_[r]);
      count.push_back(count_[r]);
      removed.push_back(0);
      if (slot_of_[r] == kNone) {
        slot.push_back(kNone);
      } else {
        const size_t root = find_slot(static_cast<size_t>(slot_of_[r]));
        const auto [it, inserted] = root_remap.try_emplace(root, parent.size());
        if (inserted) parent.push_back(parent.size());
        slot.push_back(static_cast<i64>(it->second));
      }
    }
    reclaimed_ += removed_count_;
    points_ = std::move(rows);
    external_of_ = std::move(external);
    core_ = std::move(core);
    count_ = std::move(count);
    slot_of_ = std::move(slot);
    removed_ = std::move(removed);
    slot_parent_ = std::move(parent);
    removed_count_ = 0;
  }
  tree_.reset();
  if (!points_.empty()) tree_ = std::make_unique<KdTree>(points_);
  tree_size_ = points_.size();
  ++rebuilds_;
}

ClusterId IncrementalDbscan::label_of(PointId id) const {
  const u32 row = row_of(id);
  if (row == kInvalidRow) return kNoise;
  const i64 slot = slot_of_[row];
  if (slot == kNone) return kNoise;
  return static_cast<ClusterId>(find_slot(static_cast<size_t>(slot)));
}

Clustering IncrementalDbscan::clustering() const {
  Clustering c;
  c.labels.assign(static_cast<size_t>(next_id_), kNoise);
  std::unordered_map<size_t, ClusterId> remap;
  ClusterId next = 0;
  // Rows enumerate live ids in increasing external order, so dense
  // renumbering by first appearance matches the id-ordered convention.
  for (size_t r = 0; r < points_.size(); ++r) {
    if (removed_[r]) continue;
    const i64 slot = slot_of_[r];
    if (slot == kNone) continue;
    const size_t root = find_slot(static_cast<size_t>(slot));
    const auto [it, inserted] = remap.try_emplace(root, next);
    if (inserted) ++next;
    c.labels[static_cast<size_t>(external_of_[r])] = it->second;
  }
  c.num_clusters = static_cast<u64>(next);
  return c;
}

size_t IncrementalDbscan::resident_bytes() const {
  size_t bytes = points_.byte_size();
  bytes += core_.size() + removed_.size();
  bytes += count_.size() * sizeof(u64) + slot_of_.size() * sizeof(i64);
  bytes += external_of_.size() * sizeof(PointId);
  bytes += internal_of_.size() *
           (sizeof(PointId) + sizeof(u32) + 2 * sizeof(void*));
  bytes += slot_parent_.size() * sizeof(size_t);
  // kd-tree estimate: packed coords + per-node index bookkeeping.
  bytes += tree_size_ *
           (static_cast<size_t>(points_.dim()) * sizeof(double) + 16);
  return bytes;
}

u64 IncrementalDbscan::digest() const {
  const Clustering snap = clustering();
  u64 h = 14695981039346656037ull;
  const auto mix = [&h](u64 v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(next_id_);
  for (PointId id = 0; id < static_cast<PointId>(next_id_); ++id) {
    const u32 row = row_of(id);
    if (row == kInvalidRow) continue;
    mix(static_cast<u64>(id));
    for (const double c : points_[static_cast<PointId>(row)]) {
      u64 bits = 0;
      std::memcpy(&bits, &c, sizeof(bits));
      mix(bits);
    }
    mix(static_cast<u64>(snap.labels[static_cast<size_t>(id)]));
  }
  return h;
}

}  // namespace sdb::dbscan
