#include "core/spark_dbscan.hpp"

#include "core/job_identity.hpp"
#include "knn/knn_backend.hpp"
#include "minispark/job_checkpoint.hpp"
#include "spatial/brute_force.hpp"
#include "spatial/kd_tree.hpp"
#include "spatial/r_tree.hpp"
#include "synth/io.hpp"
#include "util/stopwatch.hpp"

namespace sdb::dbscan {

const char* index_kind_name(IndexKind kind) {
  switch (kind) {
    case IndexKind::kKdTree: return "kd-tree";
    case IndexKind::kRTree: return "r-tree";
    case IndexKind::kBruteForce: return "brute-force";
  }
  return "?";
}

const char* backend_name(DbscanBackend backend) {
  switch (backend) {
    case DbscanBackend::kExact: return "exact";
    case DbscanBackend::kKnn: return "knn";
  }
  return "?";
}

namespace {

/// Everything the driver broadcasts: the spatial index over all points, the
/// parameters, and the partition map (paper Section IV.B).
struct BroadcastState {
  const PointSet* points = nullptr;
  std::unique_ptr<SpatialIndex> tree;
  /// KNN backend: the in-eps graph + global core mask replaces the spatial
  /// index as the neighborhood machinery (non-null iff backend == kKnn).
  std::unique_ptr<knn::KnnEpsGraph> eps_graph;
  Partitioning partitioning;
  LocalDbscanConfig local_config;
};

std::unique_ptr<SpatialIndex> build_index(IndexKind kind,
                                          const PointSet& points,
                                          unsigned build_threads,
                                          bool reorder) {
  switch (kind) {
    case IndexKind::kKdTree:
      return std::make_unique<KdTree>(
          points,
          KdTreeOptions{.build_threads = build_threads, .reorder = reorder});
    case IndexKind::kRTree: return std::make_unique<RTree>(points);
    case IndexKind::kBruteForce:
      return std::make_unique<BruteForceIndex>(points);
  }
  SDB_CHECK(false, "unknown index kind");
  return nullptr;
}

}  // namespace

SparkDbscanReport SparkDbscan::run(const PointSet& points) {
  // Δ estimate without a physical read: charge the dataset's byte volume at
  // disk bandwidth plus per-point transform cost.
  WorkCounters read_wc;
  read_wc.bytes_read = points.byte_size();
  read_wc.points_processed = points.size();
  return run_impl(points, ctx_.config().cost.compute_seconds(read_wc));
}

SparkDbscanReport SparkDbscan::run_from_dfs(const dfs::MiniDfs& dfs,
                                            const std::string& path) {
  // Lines 1-2 of Algorithm 2: textFile -> parse into Point RDDs, collected
  // into the driver's PointSet (the driver also needs the full set to build
  // the kd-tree it broadcasts).
  WorkCounters read_wc;
  PointSet points;
  {
    ScopedCounters scope(&read_wc);
    const std::string text = dfs.read(path);
    points = synth::from_text(text);
    counters::points_processed(points.size());
  }
  return run_impl(points, ctx_.config().cost.compute_seconds(read_wc));
}

SparkDbscanReport SparkDbscan::run_impl(const PointSet& points,
                                        double sim_read_s) {
  Stopwatch wall;
  SparkDbscanReport report;
  report.sim_read_s = sim_read_s;

  const u32 partitions = config_.partitions > 0 ? config_.partitions
                                                : ctx_.default_parallelism();

  // --- Durability: open the job checkpoint and recover committed results.
  // Partitions with a committed record are never re-executed; their blobs
  // rejoin the merge below, and the uid-canonical merge order makes the
  // resumed labeling byte-identical to an uninterrupted run.
  std::unique_ptr<minispark::JobCheckpoint> ckpt;
  std::vector<u32> recovered_parts;
  if (!config_.checkpoint_dir.empty()) {
    u64 backend_salt = 0;
    if (config_.backend == DbscanBackend::kKnn) {
      backend_salt = detail::fnv1a_append(1469598103934665603ull, "knn", 3);
      backend_salt = detail::fnv1a_value(backend_salt, config_.knn.k);
      backend_salt = detail::fnv1a_value(backend_salt, config_.knn.build);
      backend_salt = detail::fnv1a_value(backend_salt, config_.knn.max_rounds);
      backend_salt = detail::fnv1a_value(backend_salt, config_.knn.sample);
      backend_salt =
          detail::fnv1a_value(backend_salt, config_.knn.termination_frac);
      backend_salt = detail::fnv1a_value(backend_salt, config_.knn.seed);
    }
    report.job_fingerprint = job_fingerprint(
        "spark", dataset_digest(points), config_.params, config_.partitioner,
        partitions, config_.seed, config_.seed_strategy,
        config_.merge_strategy, config_.codec, backend_salt);
    ckpt = std::make_unique<minispark::JobCheckpoint>(
        config_.checkpoint_dir, report.job_fingerprint, config_.resume);
    recovered_parts = ckpt->completed();
  }
  std::vector<u32> pending;
  for (u32 p = 0; p < partitions; ++p) {
    if (ckpt != nullptr && ckpt->has(p)) continue;
    pending.push_back(p);
  }
  report.resumed_partitions = recovered_parts.size();
  report.executed_partitions = pending.size();

  // --- Driver: build the neighborhood machinery (priced from its measured
  // work): the spatial index for the exact backend, the kNN graph + in-eps
  // graph for the KNN backend. ---
  auto state = std::make_shared<BroadcastState>();
  state->points = &points;
  if (config_.backend == DbscanBackend::kKnn) {
    WorkCounters graph_wc;
    ScopedCounters scope(&graph_wc);
    knn::KnnGraphBuildStats graph_stats;
    const knn::KnnGraph graph =
        knn::build_knn_graph(points, config_.knn, &graph_stats);
    state->eps_graph = std::make_unique<knn::KnnEpsGraph>(
        knn::KnnEpsGraph::build(graph, config_.params));
    report.knn_graph_rounds = graph_stats.rounds;
    report.knn_graph_evals = graph_stats.distance_evals;
    report.knn_eps_edges = state->eps_graph->num_edges();
    report.knn_core_points = state->eps_graph->num_core();
    report.sim_tree_s = ctx_.config().cost.compute_seconds(graph_wc);
  } else {
    WorkCounters tree_wc;
    ScopedCounters scope(&tree_wc);
    state->tree = build_index(config_.index, points,
                              config_.index_build_threads,
                              config_.index_reorder);
    // Tree build work is dominated by nth_element coordinate comparisons;
    // they are not individually counted, so price them explicitly:
    // ~n log2(n) comparisons at distance-eval granularity per dim pass.
    double nlogn = static_cast<double>(points.size());
    double log2n = 1.0;
    for (size_t x = points.size(); x > 1; x >>= 1) log2n += 1.0;
    tree_wc.distance_evals += static_cast<u64>(nlogn * log2n);
    report.sim_tree_s = ctx_.config().cost.compute_seconds(tree_wc);
  }
  state->partitioning = make_partitioning(config_.partitioner, points,
                                          partitions, config_.seed);
  state->local_config.params = config_.params;
  state->local_config.seed_strategy = config_.seed_strategy;
  state->local_config.budget = config_.budget;

  // --- Broadcast: neighborhood machinery + partition map (Section IV.B).
  // The KNN backend ships the eps-graph + core mask (the kNN graph itself
  // stays on the driver; executors only ever need the derived view). ---
  const u64 broadcast_bytes =
      (state->tree != nullptr ? state->tree->byte_size()
                              : state->eps_graph->byte_size()) +
      state->partitioning.byte_size() + 64;
  auto broadcast = ctx_.broadcast(std::move(state), broadcast_bytes);
  report.broadcast_bytes = broadcast_bytes;

  // --- Executors: foreachPartition, results back via accumulator. ---
  // Each executor serializes its LocalClusterResult with the configured
  // codec; the accumulator carries the wire bytes (what a real cluster
  // ships) and the driver decodes after the barrier.
  auto acc = ctx_.accumulator<std::vector<std::string>>(
      {}, [](std::vector<std::string>& into, std::vector<std::string>&& delta) {
        for (auto& blob : delta) into.push_back(std::move(blob));
      });

  // The RDD carries partition indices only; the data plane is the broadcast
  // (the paper pushes Point RDDs, but executors never exchange them — the
  // kd-tree broadcast already holds every coordinate, so shipping the RDD
  // contents is pure overhead we charge to the read phase). On a resumed
  // run the RDD spans only the partitions the checkpoint is missing.
  const std::vector<u32> work = pending;
  const Codec codec = config_.codec;
  acc->begin_job(report.job_fingerprint);
  minispark::JobCheckpoint* ckpt_ptr = ckpt.get();
  if (!pending.empty()) {
    auto rdd = ctx_.generate<u32>(
        [&work](u32 i) { return std::vector<u32>{work[i]}; },
        static_cast<u32>(work.size()), "partitions");
    ctx_.foreach_partition(
        *rdd,
        [&broadcast, &acc, codec, ckpt_ptr](u32, std::vector<u32>&& data) {
          const u32 p = data.at(0);
          const BroadcastState& st = *broadcast.value();
          LocalClusterResult local =
              st.eps_graph != nullptr
                  ? knn::local_knn_dbscan(
                        *st.eps_graph, st.partitioning,
                        static_cast<PartitionId>(p),
                        knn::LocalKnnDbscanConfig{
                            st.local_config.seed_strategy})
                  : local_dbscan(*st.points, *st.tree, st.partitioning,
                                 static_cast<PartitionId>(p), st.local_config);
          std::string blob = encode(local, codec);
          const u64 bytes = blob.size();
          std::vector<std::string> delta;
          delta.push_back(blob);
          // Algorithm 2 lines 26-28. Tagged by partition so re-executed and
          // speculatively-duplicated tasks merge exactly once — the invariant
          // that keeps the chaos suite's faulted runs equal to dbscan_seq.
          acc->add_once(p, std::move(delta), bytes);
          // Persist only after the accumulator accepted the result: a record
          // on disk always corresponds to an applied update.
          if (ckpt_ptr != nullptr) ckpt_ptr->save(p, blob);
        },
        "dbscan-local-clustering");

    const minispark::JobMetrics& job = ctx_.last_job();
    report.sim_executor_s = job.sim_executor_makespan_s;
    report.sim_executor_total_s = job.sim_executor_total_s;
  }
  report.sim_broadcast_s =
      ctx_.config().cost.broadcast_seconds(broadcast_bytes, ctx_.config().executors);
  report.accumulator_bytes = acc->total_bytes();
  report.sim_collect_s = ctx_.config().cost.transfer_seconds(acc->total_bytes());
  if (ckpt != nullptr) report.checkpoint_saves = ckpt->saves();

  // --- Driver: decode the wire blobs, then merge (lines 30-31). ---
  // Recovered blobs and freshly computed ones decode through the same path;
  // merge_partial_clusters sorts partial clusters into uid-canonical order,
  // so the mixed arrival order cannot perturb the labeling.
  std::vector<LocalClusterResult> locals;
  {
    WorkCounters decode_wc;
    ScopedCounters scope(&decode_wc);
    locals.reserve(acc->value().size() + recovered_parts.size());
    for (const u32 p : recovered_parts) {
      locals.push_back(decode(ckpt->load(p), codec));
    }
    for (const std::string& blob : acc->value()) {
      locals.push_back(decode(blob, codec));
    }
    report.sim_collect_s += ctx_.config().cost.compute_seconds(decode_wc);
  }
  for (const auto& local : locals) {
    report.partial_clusters += local.clusters.size();
  }
  MergeOptions merge_options;
  merge_options.strategy = config_.merge_strategy;
  merge_options.min_partial_cluster_size = config_.min_partial_cluster_size;
  merge_options.merge_threads = config_.merge_threads;
  MergeResult merged =
      merge_partial_clusters(locals, points.size(), merge_options);
  report.sim_merge_s = ctx_.config().cost.compute_seconds(merged.counters);
  report.merge_stats = merged.stats;
  report.clustering = std::move(merged.clustering);

  // Job consumed: release the accumulator dedup tags and the checkpoint
  // records (the merged result supersedes them).
  acc->commit_job();
  if (ckpt != nullptr) ckpt->commit();

  report.wall_s = wall.seconds();
  return report;
}

}  // namespace sdb::dbscan
