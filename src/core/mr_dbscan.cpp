#include "core/mr_dbscan.hpp"

#include "spatial/kd_tree.hpp"
#include "util/stopwatch.hpp"

namespace sdb::dbscan {

MRDbscanReport mr_dbscan(const PointSet& points, const MRDbscanConfig& config) {
  Stopwatch wall;
  MRDbscanReport report;

  // Shared read-only state: in Hadoop this ships via the distributed cache
  // and every task re-reads it from local disk; that read is charged inside
  // the mapper below.
  const KdTree tree(points);
  const Partitioning partitioning = make_partitioning(
      config.partitioner, points, config.partitions, config.seed);
  LocalDbscanConfig local_config;
  local_config.params = config.params;
  local_config.seed_strategy = config.seed_strategy;
  const u64 cache_bytes = tree.byte_size() + partitioning.byte_size();

  std::vector<LocalClusterResult> locals(config.partitions);

  mapreduce::MRJob::Mapper mapper =
      [&](u32 task, const std::string& split, const mapreduce::MRJob::Emit& emit) {
        // Distributed-cache load: dataset + kd-tree from local disk.
        counters::bytes_read(cache_bytes);
        const auto partition = static_cast<PartitionId>(std::stol(split));
        LocalClusterResult local =
            local_dbscan(points, tree, partitioning, partition, local_config);
        locals[task] = local;  // kept for reporting only
        emit("partial", encode(local, config.codec));
      };

  MergeOptions merge_options;
  merge_options.strategy = config.merge_strategy;
  MergeResult merged;
  mapreduce::MRJob::Reducer reducer =
      [&](const std::string& key, std::vector<std::string>& values,
          const mapreduce::MRJob::Emit& emit) {
        SDB_CHECK(key == "partial", "unexpected reduce key: " + key);
        std::vector<LocalClusterResult> collected;
        collected.reserve(values.size());
        for (const std::string& blob : values) {
          collected.push_back(decode(blob, config.codec));
        }
        merged = merge_partial_clusters(collected, points.size(), merge_options);
        // Emit one record per cluster (member lists), the job's output.
        BinaryWriter w;
        w.write_i64_vec(merged.clustering.labels);
        const auto& buf = w.buffer();
        emit("labels", std::string(buf.data(), buf.size()));
      };

  mapreduce::MRConfig mr_config = config.mr;
  mr_config.reduce_tasks = 1;  // the merge is global, like the Spark driver
  mapreduce::MRJob job(mr_config, "mr-dbscan", std::move(mapper),
                       std::move(reducer));

  std::vector<std::string> splits;
  splits.reserve(config.partitions);
  for (u32 p = 0; p < config.partitions; ++p) {
    splits.push_back(std::to_string(p));
  }
  const std::vector<mapreduce::KV> output = job.run(splits);
  SDB_CHECK(output.size() == 1 && output[0].key == "labels",
            "mr-dbscan job produced unexpected output");

  report.clustering = std::move(merged.clustering);
  report.merge_stats = merged.stats;
  report.job = job.metrics();
  for (const auto& local : locals) {
    report.partial_clusters += local.clusters.size();
  }
  report.sim_total_s = report.job.sim_total_s;
  report.wall_s = wall.seconds();
  return report;
}

}  // namespace sdb::dbscan
