#include "core/mr_dbscan.hpp"

#include <memory>

#include "core/job_identity.hpp"
#include "minispark/job_checkpoint.hpp"
#include "spatial/kd_tree.hpp"
#include "util/stopwatch.hpp"

namespace sdb::dbscan {

MRDbscanReport mr_dbscan(const PointSet& points, const MRDbscanConfig& config) {
  Stopwatch wall;
  MRDbscanReport report;

  // --- Durability: recover committed map outputs, map only the rest.
  // The reducer folds recovered blobs in with freshly-shuffled ones; the
  // uid-canonical merge makes the resumed labeling byte-identical to an
  // uninterrupted run.
  std::unique_ptr<minispark::JobCheckpoint> ckpt;
  std::vector<u32> recovered_parts;
  if (!config.checkpoint_dir.empty()) {
    report.job_fingerprint = job_fingerprint(
        "mr", dataset_digest(points), config.params, config.partitioner,
        config.partitions, config.seed, config.seed_strategy,
        config.merge_strategy, config.codec);
    ckpt = std::make_unique<minispark::JobCheckpoint>(
        config.checkpoint_dir, report.job_fingerprint, config.resume);
    recovered_parts = ckpt->completed();
  }
  std::vector<u32> pending;
  for (u32 p = 0; p < config.partitions; ++p) {
    if (ckpt != nullptr && ckpt->has(p)) continue;
    pending.push_back(p);
  }
  report.resumed_partitions = recovered_parts.size();
  report.executed_partitions = pending.size();

  // Shared read-only state: in Hadoop this ships via the distributed cache
  // and every task re-reads it from local disk; that read is charged inside
  // the mapper below.
  const KdTree tree(points);
  const Partitioning partitioning = make_partitioning(
      config.partitioner, points, config.partitions, config.seed);
  LocalDbscanConfig local_config;
  local_config.params = config.params;
  local_config.seed_strategy = config.seed_strategy;
  const u64 cache_bytes = tree.byte_size() + partitioning.byte_size();

  std::vector<LocalClusterResult> locals(pending.size());

  minispark::JobCheckpoint* ckpt_ptr = ckpt.get();
  mapreduce::MRJob::Mapper mapper =
      [&](u32 task, const std::string& split, const mapreduce::MRJob::Emit& emit) {
        // Distributed-cache load: dataset + kd-tree from local disk.
        counters::bytes_read(cache_bytes);
        const auto partition = static_cast<PartitionId>(std::stol(split));
        LocalClusterResult local =
            local_dbscan(points, tree, partitioning, partition, local_config);
        locals[task] = local;  // kept for reporting only
        std::string blob = encode(local, config.codec);
        // Commit the map output before it enters the shuffle: Hadoop's map
        // outputs survive task death the same way (materialized spills).
        if (ckpt_ptr != nullptr) {
          ckpt_ptr->save(static_cast<u32>(partition), blob);
        }
        emit("partial", std::move(blob));
      };

  MergeOptions merge_options;
  merge_options.strategy = config.merge_strategy;
  merge_options.merge_threads = config.merge_threads;
  MergeResult merged;
  // Decoded checkpoint blobs join the shuffled values in the reducer.
  // Decoded eagerly: commit() below deletes the records.
  std::vector<LocalClusterResult> recovered_locals;
  recovered_locals.reserve(recovered_parts.size());
  for (const u32 p : recovered_parts) {
    recovered_locals.push_back(decode(ckpt->load(p), config.codec));
  }
  mapreduce::MRJob::Reducer reducer =
      [&](const std::string& key, std::vector<std::string>& values,
          const mapreduce::MRJob::Emit& emit) {
        SDB_CHECK(key == "partial", "unexpected reduce key: " + key);
        std::vector<LocalClusterResult> collected = recovered_locals;
        collected.reserve(collected.size() + values.size());
        for (const std::string& blob : values) {
          collected.push_back(decode(blob, config.codec));
        }
        merged = merge_partial_clusters(collected, points.size(), merge_options);
        // Emit one record per cluster (member lists), the job's output.
        BinaryWriter w;
        w.write_i64_vec(merged.clustering.labels);
        const auto& buf = w.buffer();
        emit("labels", std::string(buf.data(), buf.size()));
      };

  if (pending.empty()) {
    // Everything already checkpointed: no map tasks to run, so skip the job
    // (and its startup cost) and merge the recovered outputs directly.
    merged =
        merge_partial_clusters(recovered_locals, points.size(), merge_options);
  } else {
    mapreduce::MRConfig mr_config = config.mr;
    mr_config.reduce_tasks = 1;  // the merge is global, like the Spark driver
    mapreduce::MRJob job(mr_config, "mr-dbscan", std::move(mapper),
                         std::move(reducer));

    std::vector<std::string> splits;
    splits.reserve(pending.size());
    for (const u32 p : pending) {
      splits.push_back(std::to_string(p));
    }
    const std::vector<mapreduce::KV> output = job.run(splits);
    SDB_CHECK(output.size() == 1 && output[0].key == "labels",
              "mr-dbscan job produced unexpected output");
    report.job = job.metrics();
  }
  if (ckpt != nullptr) {
    report.checkpoint_saves = ckpt->saves();
    ckpt->commit();
  }

  report.clustering = std::move(merged.clustering);
  report.merge_stats = merged.stats;
  for (const auto& local : locals) {
    report.partial_clusters += local.clusters.size();
  }
  for (const auto& local : recovered_locals) {
    report.partial_clusters += local.clusters.size();
  }
  report.sim_total_s = report.job.sim_total_s;
  report.wall_s = wall.seconds();
  return report;
}

}  // namespace sdb::dbscan
