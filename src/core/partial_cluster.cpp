#include "core/partial_cluster.hpp"

namespace sdb::dbscan {

void serialize(const PartialCluster& pc, BinaryWriter& w) {
  w.write_u64(pc.uid);
  w.write_i64(pc.partition);
  w.write_i64_vec(pc.members);
  w.write_i64_vec(pc.seeds);
}

PartialCluster deserialize_partial_cluster(BinaryReader& r) {
  PartialCluster pc;
  pc.uid = r.read_u64();
  pc.partition = static_cast<PartitionId>(r.read_i64());
  pc.members = r.read_i64_vec();
  pc.seeds = r.read_i64_vec();
  return pc;
}

void serialize(const LocalClusterResult& result, BinaryWriter& w) {
  w.write_i64(result.partition);
  w.write_u64(result.clusters.size());
  for (const auto& c : result.clusters) serialize(c, w);
  w.write_i64_vec(result.core_points);
  w.write_i64_vec(result.noise);
}

LocalClusterResult deserialize_local_result(BinaryReader& r) {
  LocalClusterResult result;
  result.partition = static_cast<PartitionId>(r.read_i64());
  const u64 n = r.read_u64();
  result.clusters.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    result.clusters.push_back(deserialize_partial_cluster(r));
  }
  result.core_points = r.read_i64_vec();
  result.noise = r.read_i64_vec();
  return result;
}

std::string to_bytes(const LocalClusterResult& result) {
  BinaryWriter w;
  serialize(result, w);
  const auto& buf = w.buffer();
  return std::string(buf.data(), buf.size());
}

LocalClusterResult local_result_from_bytes(const std::string& bytes) {
  BinaryReader r(bytes.data(), bytes.size());
  return deserialize_local_result(r);
}

}  // namespace sdb::dbscan
