#include "core/partial_cluster.hpp"

namespace sdb::dbscan {

namespace {

/// v2 raw framing sentinel. A v1 stream starts with write_i64(partition)
/// and partitions are always >= 0, so any negative leading i64 is
/// unambiguously a v2 header. ("SDB2" with the sign bit.)
constexpr i64 kRawMagicV2 = -0x53444232;

}  // namespace

std::vector<SeedEdge> flatten_seed_edges(const LocalClusterResult& result) {
  std::vector<SeedEdge> edges;
  u64 total = 0;
  for (const auto& c : result.clusters) total += c.seeds.size();
  edges.reserve(total);
  for (const auto& c : result.clusters) {
    for (const PointId q : c.seeds) edges.push_back({c.uid, q});
  }
  return edges;
}

bool seed_edges_consistent(const LocalClusterResult& result) {
  size_t pos = 0;
  for (const auto& c : result.clusters) {
    for (const PointId q : c.seeds) {
      if (pos >= result.seed_edges.size()) return false;
      const SeedEdge& e = result.seed_edges[pos++];
      if (e.origin_uid != c.uid || e.seed != q) return false;
    }
  }
  return pos == result.seed_edges.size();
}

void serialize(const PartialCluster& pc, BinaryWriter& w) {
  w.write_u64(pc.uid);
  w.write_i64(pc.partition);
  w.write_i64_vec(pc.members);
  w.write_i64_vec(pc.seeds);
}

PartialCluster deserialize_partial_cluster(BinaryReader& r) {
  PartialCluster pc;
  pc.uid = r.read_u64();
  pc.partition = static_cast<PartitionId>(r.read_i64());
  pc.members = r.read_i64_vec();
  pc.seeds = r.read_i64_vec();
  return pc;
}

void serialize(const LocalClusterResult& result, BinaryWriter& w) {
  // v2: header, members-only cluster records, per-point facts, then the
  // seed-edge section — each cluster's seed list in clusters order (the
  // byte content of the v1 nested lists, relocated so the driver's merge
  // can treat the section as one flat edge array).
  w.write_i64(kRawMagicV2);
  w.write_u32(kLocalResultWireV2);
  w.write_i64(result.partition);
  w.write_u64(result.clusters.size());
  for (const auto& c : result.clusters) {
    w.write_u64(c.uid);
    w.write_i64(c.partition);
    w.write_i64_vec(c.members);
  }
  w.write_i64_vec(result.core_points);
  w.write_i64_vec(result.noise);
  for (const auto& c : result.clusters) {
    w.write_i64_vec(c.seeds);
  }
}

LocalClusterResult deserialize_local_result(BinaryReader& r) {
  LocalClusterResult result;
  const i64 head = r.read_i64();
  if (head >= 0) {
    // Legacy v1: `head` is the partition id, clusters carry nested seeds.
    result.partition = static_cast<PartitionId>(head);
    const u64 n = r.read_u64();
    result.clusters.reserve(n);
    for (u64 i = 0; i < n; ++i) {
      result.clusters.push_back(deserialize_partial_cluster(r));
    }
    result.core_points = r.read_i64_vec();
    result.noise = r.read_i64_vec();
    result.seed_edges = flatten_seed_edges(result);
    return result;
  }
  SDB_CHECK(head == kRawMagicV2, "LocalClusterResult: bad wire magic");
  const u32 version = r.read_u32();
  SDB_CHECK(version == kLocalResultWireV2,
            "LocalClusterResult: unknown wire version");
  result.partition = static_cast<PartitionId>(r.read_i64());
  const u64 n = r.read_u64();
  result.clusters.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    PartialCluster pc;
    pc.uid = r.read_u64();
    pc.partition = static_cast<PartitionId>(r.read_i64());
    pc.members = r.read_i64_vec();
    result.clusters.push_back(std::move(pc));
  }
  result.core_points = r.read_i64_vec();
  result.noise = r.read_i64_vec();
  for (u64 i = 0; i < n; ++i) {
    result.clusters[i].seeds = r.read_i64_vec();
  }
  result.seed_edges = flatten_seed_edges(result);
  return result;
}

std::string to_bytes(const LocalClusterResult& result) {
  BinaryWriter w;
  serialize(result, w);
  const auto& buf = w.buffer();
  return std::string(buf.data(), buf.size());
}

LocalClusterResult local_result_from_bytes(const std::string& bytes) {
  BinaryReader r(bytes.data(), bytes.size());
  return deserialize_local_result(r);
}

}  // namespace sdb::dbscan
