// Wire codecs for LocalClusterResult — the payload executors ship to the
// driver through the accumulator (and MapReduce spills to disk).
//
// The paper (Section IV.B) notes that with large broadcasts/collections,
// "choosing an appropriate data serialization format that is both fast and
// compact" is essential. Two formats are provided and ablated by
// bench_ablation_serialization:
//   kRaw     — fixed-width (8-byte ids), the straightforward format;
//   kCompact — point-id lists sorted, delta-encoded, varint-coded. Ids
//              within a partial cluster are dense per partition, so deltas
//              fit in 1-2 bytes: typically 4-6x smaller than kRaw.
// Encoding/decoding CPU is charged per byte (CostModel::ns_codec_byte), so
// the compact codec trades CPU for network honestly on the simulated clock.
#pragma once

#include <string>

#include "core/partial_cluster.hpp"

namespace sdb::dbscan {

enum class Codec { kRaw, kCompact };

const char* codec_name(Codec codec);

/// Serialize with the chosen codec. Byte volume is charged to
/// counters::codec_bytes (CPU) — network/disk charges are the caller's.
std::string encode(const LocalClusterResult& result, Codec codec);

/// Inverse of encode. NOTE (kCompact): id lists are restored in ascending
/// order — set semantics, which is all the merge consumes.
LocalClusterResult decode(const std::string& bytes, Codec codec);

}  // namespace sdb::dbscan
