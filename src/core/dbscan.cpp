#include "core/dbscan.hpp"

#include <unordered_map>

namespace sdb::dbscan {

void Clustering::normalize() {
  std::unordered_map<ClusterId, ClusterId> remap;
  remap.reserve(num_clusters);
  ClusterId next = 0;
  for (ClusterId& l : labels) {
    if (l < 0) continue;
    const auto [it, inserted] = remap.try_emplace(l, next);
    if (inserted) ++next;
    l = it->second;
  }
  num_clusters = static_cast<u64>(next);
}

}  // namespace sdb::dbscan
