// Point-to-executor partitioners.
//
// The paper block-partitions points by global index ("if the current point's
// index is beyond the range of current partition it is taken as a SEED") and
// names data-aware partitioning as future work ("we did not partition data
// points based on the neighborhood relationship ... that might cause
// workload to be unbalanced"). We implement the paper's block partitioner
// plus that future work, so the ablation bench can measure what spatial
// partitioning buys:
//   * kBlock   — contiguous index ranges, the paper's scheme;
//   * kRandom  — random assignment (worst-case fragmentation control);
//   * kGrid    — coarse spatial grid cells round-robined to partitions;
//   * kKdSplit — recursive median splits (kd-tree style) into equal-count
//                spatially-coherent partitions.
#pragma once

#include <string>
#include <vector>

#include "geom/point_set.hpp"
#include "util/common.hpp"

namespace sdb::dbscan {

enum class PartitionerKind { kBlock, kRandom, kGrid, kKdSplit };

const char* partitioner_name(PartitionerKind kind);

/// Assignment of every point to exactly one partition.
struct Partitioning {
  u32 num_partitions = 0;
  /// owner[i] = partition of point i.
  std::vector<PartitionId> owner;
  /// parts[p] = ids of the points in partition p (ascending).
  std::vector<std::vector<PointId>> parts;
  /// For the block partitioner: [lo, hi) index range per partition, the
  /// form the paper's SEED test uses. Empty for non-contiguous schemes.
  std::vector<std::pair<PointId, PointId>> ranges;

  [[nodiscard]] bool contiguous() const { return !ranges.empty(); }

  /// Serialized size of the partition map shipped via broadcast.
  [[nodiscard]] u64 byte_size() const {
    return owner.size() * sizeof(PartitionId) + ranges.size() * sizeof(ranges[0]);
  }

  /// Largest / smallest partition sizes (workload-balance metrics).
  [[nodiscard]] u64 max_part_size() const;
  [[nodiscard]] u64 min_part_size() const;
};

/// Build a partitioning of `points` into `num_partitions` parts.
/// `seed` feeds the random partitioner (ignored by deterministic schemes).
Partitioning make_partitioning(PartitionerKind kind, const PointSet& points,
                               u32 num_partitions, u64 seed = 42);

}  // namespace sdb::dbscan
