// Driver-side merging of partial clusters (Algorithm 4) and the sound
// union-find alternative.
//
// The paper's single pass walks partial clusters in order; for each still-
// "unfinished" cluster it digs out the SEEDs, finds each seed's master
// partial cluster (the one containing the seed as a regular element), merges
// it, and marks statuses. Two soundness gaps follow from the pseudocode, both
// implemented faithfully here so they can be measured (see DESIGN.md §3):
//   * absorbed clusters are marked "finished", so their OWN seeds are never
//     processed — merge chains can be left incomplete;
//   * a seed that is a non-core border member of the master still triggers a
//     merge, which can fuse clusters sequential DBSCAN keeps separate.
//
// MergeStrategy::kUnionFind fixes both: every partial cluster's seeds are
// processed, and a seed only fuses clusters when the seed point is core.
//
// With merge_threads > 1 the kUnionFind strategy runs as a parallel
// edge-based pipeline (DESIGN.md §13): the per-result seed-edge records are
// resolved against sharded point tables into (seed cluster, master cluster,
// seed-is-core) edges, united through a lock-free ConcurrentUnionFind, and
// relabeled by a deterministic uid-canonical pass — the output is
// byte-identical to the sequential kUnionFind merge for any thread count
// and any arrival permutation (tests/test_merge_equivalence.cpp).
#pragma once

#include "core/dbscan.hpp"
#include "core/partial_cluster.hpp"
#include "core/partitioners.hpp"
#include "util/counters.hpp"

namespace sdb {
class ThreadPool;
}

namespace sdb::dbscan {

enum class MergeStrategy {
  kPaperSinglePass,  ///< Algorithm 4, faithful including its gaps
  kUnionFind,        ///< transitive closure, core-seeds-only fusion
};

const char* merge_strategy_name(MergeStrategy s);

struct MergeOptions {
  MergeStrategy strategy = MergeStrategy::kUnionFind;
  /// Drop partial clusters with fewer members before merging (the paper's
  /// small-cluster filter for the 1M-point runs). 0 = keep all.
  u64 min_partial_cluster_size = 0;
  /// Driver threads for the kUnionFind merge. 1 = the sequential reference
  /// path; >1 = the parallel edge-based pipeline on that many workers;
  /// 0 = hardware concurrency. Labels and MergeStats (minus cas_retries/
  /// rounds) are byte-identical across all values; only wall time and the
  /// work-counter accounting model change (see DESIGN.md §13).
  /// kPaperSinglePass ignores this: Algorithm 4's finished-status sweep is
  /// inherently sequential.
  unsigned merge_threads = 1;
  /// Optional external worker pool for the parallel pipeline (benchmarks
  /// reuse one pool across runs to keep thread spawn-cost out of the
  /// measurement). null = spawn a pool internally when merge_threads > 1.
  ThreadPool* pool = nullptr;
};

struct MergeStats {
  u64 partial_clusters = 0;        ///< m, after filtering
  u64 filtered_partial_clusters = 0;
  u64 max_partial_cluster_size = 0;  ///< K in the paper's cost model
  u64 seeds_examined = 0;
  u64 merges = 0;
  u64 border_claims = 0;  ///< foreign noise/unclaimed points adopted via seeds
  /// Seed-edge records processed by the kUnionFind merge (== seeds_examined
  /// after the small-cluster filter; 0 for kPaperSinglePass).
  u64 edges_emitted = 0;
  /// Failed root CASes in the concurrent union-find. Schedule-dependent
  /// observability — deliberately NOT part of the deterministic counters.
  u64 cas_retries = 0;
  /// Fixed-size edge chunks processed by the parallel pipeline
  /// (ceil(edges / chunk)); 0 on the sequential paths. Deterministic for a
  /// given input regardless of thread count.
  u64 rounds = 0;
};

struct MergeResult {
  Clustering clustering;
  MergeStats stats;
  WorkCounters counters;  ///< driver merge work, for sim pricing
};

/// Merge the per-partition results into a global clustering of `num_points`
/// points.
MergeResult merge_partial_clusters(
    const std::vector<LocalClusterResult>& locals, u64 num_points,
    const MergeOptions& options);

}  // namespace sdb::dbscan
