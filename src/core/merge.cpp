#include "core/merge.hpp"

#include <algorithm>
#include <unordered_map>

#include "spatial/union_find.hpp"

namespace sdb::dbscan {

const char* merge_strategy_name(MergeStrategy s) {
  switch (s) {
    case MergeStrategy::kPaperSinglePass: return "paper-single-pass";
    case MergeStrategy::kUnionFind: return "union-find";
  }
  return "?";
}

MergeResult merge_partial_clusters(
    const std::vector<LocalClusterResult>& locals, u64 num_points,
    const MergeOptions& options) {
  MergeResult result;
  ScopedCounters scope(&result.counters);

  // Flatten partial clusters, applying the small-cluster filter.
  std::vector<const PartialCluster*> pcs;
  for (const auto& local : locals) {
    for (const auto& pc : local.clusters) {
      if (options.min_partial_cluster_size > 0 &&
          pc.members.size() < options.min_partial_cluster_size) {
        ++result.stats.filtered_partial_clusters;
        continue;
      }
      pcs.push_back(&pc);
    }
  }
  // Canonicalize on cluster uid (partition, local index) so the merge is
  // invariant to the ARRIVAL order of partial results: task retries,
  // speculative re-execution and scheduling jitter permute `locals`, and
  // everything below — member ownership, union-find indices, label ids,
  // border-claim priority — keys off positions in this list
  // (tests/test_merge.cpp OrderInvariantAcrossArrivalPermutations).
  std::sort(pcs.begin(), pcs.end(),
            [](const PartialCluster* a, const PartialCluster* b) {
              return a->uid < b->uid;
            });
  const size_t m = pcs.size();
  result.stats.partial_clusters = m;
  for (const auto* pc : pcs) {
    result.stats.max_partial_cluster_size =
        std::max<u64>(result.stats.max_partial_cluster_size, pc->members.size());
  }

  // Global facts: which partial cluster owns each point, which points are
  // core. (The driver has all LocalClusterResults at this stage — this is
  // the "analyze partial clusters based on the placed SEEDs" of Algorithm 2
  // line 30.)
  constexpr i64 kNone = -1;
  std::vector<i64> member_of(num_points, kNone);
  std::vector<char> is_core(num_points, 0);
  for (size_t i = 0; i < m; ++i) {
    for (const PointId p : pcs[i]->members) {
      member_of[static_cast<size_t>(p)] = static_cast<i64>(i);
      counters::merge_ops(1);
    }
  }
  for (const auto& local : locals) {
    for (const PointId p : local.core_points) {
      is_core[static_cast<size_t>(p)] = 1;
    }
  }

  // Ordinal of each partial cluster within its partition's list, and the
  // per-partition list sizes: Algorithm 4's "find master partial cluster
  // index" scans the owner partition's clusters (the owner is known from
  // the seed's index range), so that scan length is what the paper-faithful
  // merge charges per seed.
  std::vector<u64> ordinal(m, 0);
  std::unordered_map<PartitionId, u64> partition_counts;
  for (size_t i = 0; i < m; ++i) {
    ordinal[i] = partition_counts[pcs[i]->partition]++;
  }

  UnionFind uf(m);
  // border_claim[q] = partial cluster that adopts unclaimed foreign point q.
  std::vector<std::pair<PointId, size_t>> border_claims;

  switch (options.strategy) {
    case MergeStrategy::kPaperSinglePass: {
      // Algorithm 4: statuses gate which clusters get their seeds processed.
      std::vector<char> finished(m, 0);
      for (size_t i = 0; i < m; ++i) {
        if (finished[i]) continue;  // line 2: only 'unfinished'
        for (const PointId q : pcs[i]->seeds) {  // line 3: dig out seeds
          ++result.stats.seeds_examined;
          counters::merge_ops(1);
          const i64 j = member_of[static_cast<size_t>(q)];
          // Algorithm 4 line 5 "find master partial cluster index" is a
          // LINEAR SCAN in the paper (no inverted index is described) over
          // the seed's owner partition's cluster list. We resolve via
          // member_of but charge the scan the paper's implementation
          // performs — the super-linear driver term behind the Figure 8d
          // speedup drop at 32 cores (9279 partial clusters).
          if (j >= 0) {
            counters::merge_ops(ordinal[static_cast<size_t>(j)] + 1);
          } else {
            // Not found anywhere: full scan of one partition's list; charge
            // the average list length.
            counters::merge_ops(
                m / std::max<size_t>(1, partition_counts.size()) + 1);
          }
          if (j >= 0 && static_cast<size_t>(j) != i) {
            // line 5-7: master found (ANY regular membership qualifies —
            // the paper does not check core-ness), merge, mark finished.
            if (uf.unite(i, static_cast<size_t>(j))) ++result.stats.merges;
            finished[static_cast<size_t>(j)] = 1;
          } else if (j == kNone) {
            // Seed points to a foreign point that is noise in its own
            // partition: a cross-partition border point; adopt it (the
            // paper keeps seeds in the merged member list, Figure 4b).
            border_claims.emplace_back(q, i);
          }
        }
        finished[i] = 1;  // line 9
      }
      break;
    }
    case MergeStrategy::kUnionFind: {
      // Process EVERY cluster's seeds; fuse only through core seeds.
      for (size_t i = 0; i < m; ++i) {
        for (const PointId q : pcs[i]->seeds) {
          ++result.stats.seeds_examined;
          counters::merge_ops(1);
          const i64 j = member_of[static_cast<size_t>(q)];
          if (is_core[static_cast<size_t>(q)] && j >= 0) {
            // A core point is always a regular member of its own partition's
            // clustering (j < 0 can only happen when the small-cluster
            // filter dropped that cluster — fall through to adoption).
            if (static_cast<size_t>(j) != i && uf.unite(i, static_cast<size_t>(j))) {
              ++result.stats.merges;
            }
          } else if (j == kNone) {
            // Non-core, unclaimed anywhere: cross-partition border point.
            border_claims.emplace_back(q, i);
          }
          // Non-core seed already claimed by its own partition: border-point
          // assignment ambiguity — leave it where it is (sequential DBSCAN
          // also assigns such points to one adjacent cluster arbitrarily).
        }
      }
      break;
    }
  }

  // Emit dense labels by union-find root.
  result.clustering.labels.assign(num_points, kNoise);
  std::vector<ClusterId> root_label(m, kUnlabeled);
  ClusterId next = 0;
  for (size_t i = 0; i < m; ++i) {
    const size_t root = uf.find(i);
    if (root_label[root] == kUnlabeled) root_label[root] = next++;
    const ClusterId label = root_label[root];
    for (const PointId p : pcs[i]->members) {
      result.clustering.labels[static_cast<size_t>(p)] = label;
      counters::merge_ops(1);
    }
  }
  // Border adoptions (first claim wins, deterministic in pc order).
  for (const auto& [q, i] : border_claims) {
    ClusterId& l = result.clustering.labels[static_cast<size_t>(q)];
    if (l == kNoise) {
      l = root_label[uf.find(i)];
      ++result.stats.border_claims;
    }
  }
  result.clustering.num_clusters = static_cast<u64>(next);
  return result;
}

}  // namespace sdb::dbscan
