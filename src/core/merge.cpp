#include "core/merge.hpp"

#include <algorithm>
#include <future>
#include <thread>
#include <unordered_map>
#include <vector>

#include "spatial/concurrent_union_find.hpp"
#include "spatial/union_find.hpp"
#include "util/thread_pool.hpp"

namespace sdb::dbscan {

const char* merge_strategy_name(MergeStrategy s) {
  switch (s) {
    case MergeStrategy::kPaperSinglePass: return "paper-single-pass";
    case MergeStrategy::kUnionFind: return "union-find";
  }
  return "?";
}

namespace {

constexpr i64 kNone = -1;

/// Fixed edge-chunk size for the parallel pipeline. Chunk boundaries are a
/// function of the edge array alone — NOT of the thread count — so the
/// concatenated per-chunk outputs (border claims, deterministic work
/// counts, stats.rounds) are identical for any number of workers.
constexpr size_t kEdgeChunk = 2048;

/// One resolved merge edge: seed cluster index (position in the uid-sorted
/// filtered cluster list) plus the seed point whose owner-side facts
/// (master cluster, core-ness) the union stage reads from the point tables.
struct ResolvedEdge {
  u32 origin = 0;
  PointId seed = 0;
};

struct MergePrelude {
  std::vector<const PartialCluster*> pcs;  ///< uid-sorted, filter applied
};

/// Flatten, filter, and uid-canonicalize the partial clusters.
///
/// The sort makes the merge invariant to the ARRIVAL order of partial
/// results: task retries, speculative re-execution and scheduling jitter
/// permute `locals`, and everything downstream — member ownership,
/// union-find indices, label ids, border-claim priority — keys off
/// positions in this list (tests/test_merge.cpp
/// OrderInvariantAcrossArrivalPermutations).
MergePrelude make_prelude(const std::vector<LocalClusterResult>& locals,
                          const MergeOptions& options, MergeResult* result) {
  MergePrelude pre;
  for (const auto& local : locals) {
    for (const auto& pc : local.clusters) {
      if (options.min_partial_cluster_size > 0 &&
          pc.members.size() < options.min_partial_cluster_size) {
        ++result->stats.filtered_partial_clusters;
        continue;
      }
      pre.pcs.push_back(&pc);
    }
  }
  std::sort(pre.pcs.begin(), pre.pcs.end(),
            [](const PartialCluster* a, const PartialCluster* b) {
              return a->uid < b->uid;
            });
  result->stats.partial_clusters = pre.pcs.size();
  for (const auto* pc : pre.pcs) {
    result->stats.max_partial_cluster_size = std::max<u64>(
        result->stats.max_partial_cluster_size, pc->members.size());
  }
  return pre;
}

/// The sequential reference paths (Algorithm 4 and the sound union-find
/// variant), byte-for-byte the pre-parallel behavior including the
/// path-length-dependent work-counter charges.
void merge_sequential(const std::vector<LocalClusterResult>& locals,
                      const std::vector<const PartialCluster*>& pcs,
                      u64 num_points, const MergeOptions& options,
                      MergeResult* result) {
  const size_t m = pcs.size();

  // Global facts: which partial cluster owns each point, which points are
  // core. (The driver has all LocalClusterResults at this stage — this is
  // the "analyze partial clusters based on the placed SEEDs" of Algorithm 2
  // line 30.)
  std::vector<i64> member_of(num_points, kNone);
  std::vector<char> is_core(num_points, 0);
  for (size_t i = 0; i < m; ++i) {
    for (const PointId p : pcs[i]->members) {
      member_of[static_cast<size_t>(p)] = static_cast<i64>(i);
      counters::merge_ops(1);
    }
  }
  for (const auto& local : locals) {
    for (const PointId p : local.core_points) {
      is_core[static_cast<size_t>(p)] = 1;
    }
  }

  // Ordinal of each partial cluster within its partition's list, and the
  // per-partition list sizes: Algorithm 4's "find master partial cluster
  // index" scans the owner partition's clusters (the owner is known from
  // the seed's index range), so that scan length is what the paper-faithful
  // merge charges per seed.
  std::vector<u64> ordinal(m, 0);
  std::unordered_map<PartitionId, u64> partition_counts;
  for (size_t i = 0; i < m; ++i) {
    ordinal[i] = partition_counts[pcs[i]->partition]++;
  }

  UnionFind uf(m);
  // border_claim[q] = partial cluster that adopts unclaimed foreign point q.
  std::vector<std::pair<PointId, size_t>> border_claims;

  switch (options.strategy) {
    case MergeStrategy::kPaperSinglePass: {
      // Algorithm 4: statuses gate which clusters get their seeds processed.
      std::vector<char> finished(m, 0);
      for (size_t i = 0; i < m; ++i) {
        if (finished[i]) continue;  // line 2: only 'unfinished'
        for (const PointId q : pcs[i]->seeds) {  // line 3: dig out seeds
          ++result->stats.seeds_examined;
          counters::merge_ops(1);
          const i64 j = member_of[static_cast<size_t>(q)];
          // Algorithm 4 line 5 "find master partial cluster index" is a
          // LINEAR SCAN in the paper (no inverted index is described) over
          // the seed's owner partition's cluster list. We resolve via
          // member_of but charge the scan the paper's implementation
          // performs — the super-linear driver term behind the Figure 8d
          // speedup drop at 32 cores (9279 partial clusters).
          if (j >= 0) {
            counters::merge_ops(ordinal[static_cast<size_t>(j)] + 1);
          } else {
            // Not found anywhere: full scan of one partition's list; charge
            // the average list length.
            counters::merge_ops(
                m / std::max<size_t>(1, partition_counts.size()) + 1);
          }
          if (j >= 0 && static_cast<size_t>(j) != i) {
            // line 5-7: master found (ANY regular membership qualifies —
            // the paper does not check core-ness), merge, mark finished.
            if (uf.unite(i, static_cast<size_t>(j))) ++result->stats.merges;
            finished[static_cast<size_t>(j)] = 1;
          } else if (j == kNone) {
            // Seed points to a foreign point that is noise in its own
            // partition: a cross-partition border point; adopt it (the
            // paper keeps seeds in the merged member list, Figure 4b).
            border_claims.emplace_back(q, i);
          }
        }
        finished[i] = 1;  // line 9
      }
      break;
    }
    case MergeStrategy::kUnionFind: {
      // Process EVERY cluster's seeds; fuse only through core seeds.
      for (size_t i = 0; i < m; ++i) {
        for (const PointId q : pcs[i]->seeds) {
          ++result->stats.seeds_examined;
          counters::merge_ops(1);
          const i64 j = member_of[static_cast<size_t>(q)];
          if (is_core[static_cast<size_t>(q)] && j >= 0) {
            // A core point is always a regular member of its own partition's
            // clustering (j < 0 can only happen when the small-cluster
            // filter dropped that cluster — fall through to adoption).
            if (static_cast<size_t>(j) != i &&
                uf.unite(i, static_cast<size_t>(j))) {
              ++result->stats.merges;
            }
          } else if (j == kNone) {
            // Non-core, unclaimed anywhere: cross-partition border point.
            border_claims.emplace_back(q, i);
          }
          // Non-core seed already claimed by its own partition: border-point
          // assignment ambiguity — leave it where it is (sequential DBSCAN
          // also assigns such points to one adjacent cluster arbitrarily).
        }
      }
      result->stats.edges_emitted = result->stats.seeds_examined;
      break;
    }
  }

  // Emit dense labels by union-find root.
  result->clustering.labels.assign(num_points, kNoise);
  std::vector<ClusterId> root_label(m, kUnlabeled);
  ClusterId next = 0;
  for (size_t i = 0; i < m; ++i) {
    const size_t root = uf.find(i);
    if (root_label[root] == kUnlabeled) root_label[root] = next++;
    const ClusterId label = root_label[root];
    for (const PointId p : pcs[i]->members) {
      result->clustering.labels[static_cast<size_t>(p)] = label;
      counters::merge_ops(1);
    }
  }
  // Border adoptions (first claim wins, deterministic in pc order).
  for (const auto& [q, i] : border_claims) {
    ClusterId& l = result->clustering.labels[static_cast<size_t>(q)];
    if (l == kNoise) {
      l = root_label[uf.find(i)];
      ++result->stats.border_claims;
    }
  }
  result->clustering.num_clusters = static_cast<u64>(next);
}

/// The parallel edge-based kUnionFind pipeline (DESIGN.md §13). Five
/// stages; every parallel write is to a disjoint slot (each point is owned
/// by exactly one partition and claimed by at most one of its clusters;
/// each cluster's edge slice is a precomputed range), so the only
/// cross-thread contention is inside ConcurrentUnionFind.
///
/// Output contract: labels, num_clusters and the deterministic MergeStats
/// fields are byte-identical to merge_sequential(kUnionFind) for any thread
/// count. Work-counter charges are deterministic too, but follow a flat
/// per-edge accounting model instead of the sequential path's
/// path-halving-dependent one (the schedule-dependent part — CAS retries —
/// goes to stats.cas_retries only).
void merge_parallel_union_find(const std::vector<LocalClusterResult>& locals,
                               const std::vector<const PartialCluster*>& pcs,
                               u64 num_points, unsigned threads,
                               ThreadPool* external_pool,
                               MergeResult* result) {
  const size_t m = pcs.size();

  std::unique_ptr<ThreadPool> owned_pool;
  if (external_pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(threads);
  }
  ThreadPool& pool = external_pool != nullptr ? *external_pool : *owned_pool;

  auto wait_all = [](std::vector<std::future<void>>& fs) {
    for (auto& f : fs) f.get();
    fs.clear();
  };

  // --- Stage 1: point tables + edge gather (one barrier, disjoint writes).
  // member_of[p] = uid-sorted index of the surviving cluster claiming p;
  // is_core[p] from the owner partition's core list. The edge array is
  // assembled from each result's flat seed_edges record into precomputed
  // per-cluster slices, so the slot of every edge — and therefore the whole
  // downstream order — is a function of (cluster uid, seed position) alone,
  // never of which worker or which arrival order produced it.
  std::vector<i64> member_of(num_points, kNone);
  std::vector<char> is_core(num_points, 0);

  std::unordered_map<u64, u32> uid_index;
  uid_index.reserve(m * 2);
  std::vector<size_t> edge_offset(m + 1, 0);
  for (size_t i = 0; i < m; ++i) {
    uid_index.emplace(pcs[i]->uid, static_cast<u32>(i));
    edge_offset[i + 1] = edge_offset[i] + pcs[i]->seeds.size();
  }
  const size_t num_edges = edge_offset[m];
  std::vector<ResolvedEdge> edges(num_edges);

  u64 total_members = 0;
  for (size_t i = 0; i < m; ++i) total_members += pcs[i]->members.size();

  std::vector<std::future<void>> futures;
  const size_t pc_chunk = std::max<size_t>(1, (m + threads - 1) / threads);
  for (size_t begin = 0; begin < m; begin += pc_chunk) {
    const size_t end = std::min(m, begin + pc_chunk);
    futures.push_back(pool.submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        for (const PointId p : pcs[i]->members) {
          member_of[static_cast<size_t>(p)] = static_cast<i64>(i);
        }
      }
    }));
  }
  for (const auto& local : locals) {
    futures.push_back(pool.submit([&, local = &local] {
      for (const PointId p : local->core_points) {
        is_core[static_cast<size_t>(p)] = 1;
      }
      // The flat wire record when it is present and structurally sound
      // (local_dbscan and both codecs maintain it); hand-built fixtures
      // fall back to flattening the nested lists.
      const bool consistent = seed_edges_consistent(*local);
      const std::vector<SeedEdge> flattened =
          consistent ? std::vector<SeedEdge>{} : flatten_seed_edges(*local);
      const std::vector<SeedEdge>& src =
          consistent ? local->seed_edges : flattened;
      // Edges of one cluster are contiguous in `src`; cache the uid lookup
      // across the run. bad_uid marks a run whose origin did not survive
      // the small-cluster filter (those edges are dropped, matching the
      // sequential path which never examines filtered clusters' seeds).
      u32 idx = 0;
      size_t cursor = 0;
      u64 run_uid = 0;
      bool have_run = false, bad_uid = false;
      for (const SeedEdge& e : src) {
        if (!have_run || e.origin_uid != run_uid) {
          have_run = true;
          run_uid = e.origin_uid;
          const auto it = uid_index.find(e.origin_uid);
          bad_uid = it == uid_index.end();
          if (!bad_uid) {
            idx = it->second;
            cursor = edge_offset[idx];
          }
        }
        if (bad_uid) continue;
        edges[cursor++] = ResolvedEdge{idx, e.seed};
      }
    }));
  }
  wait_all(futures);

  // --- Stage 2: concurrent union over fixed-size edge chunks. Each chunk
  // also collects its border claims locally; chunk order (a pure function
  // of the edge array) reproduces the sequential claim order exactly.
  ConcurrentUnionFind cuf(m);
  const size_t num_chunks = (num_edges + kEdgeChunk - 1) / kEdgeChunk;
  std::vector<std::vector<std::pair<PointId, u32>>> chunk_claims(num_chunks);
  std::vector<u64> chunk_union_edges(num_chunks, 0);
  std::vector<u64> chunk_merges(num_chunks, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    futures.push_back(pool.submit([&, c] {
      const size_t begin = c * kEdgeChunk;
      const size_t end = std::min(num_edges, begin + kEdgeChunk);
      auto& claims = chunk_claims[c];
      u64 union_edges = 0;
      u64 merges = 0;
      for (size_t e = begin; e < end; ++e) {
        const u32 i = edges[e].origin;
        const PointId q = edges[e].seed;
        const i64 j = member_of[static_cast<size_t>(q)];
        if (is_core[static_cast<size_t>(q)] && j >= 0) {
          if (static_cast<u32>(j) != i) {
            ++union_edges;
            if (cuf.unite(i, static_cast<u64>(j))) ++merges;
          }
        } else if (j == kNone) {
          claims.emplace_back(q, i);
        }
      }
      chunk_union_edges[c] = union_edges;
      chunk_merges[c] = merges;
    }));
  }
  wait_all(futures);

  u64 union_edges = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    union_edges += chunk_union_edges[c];
    // Successful unites across any schedule = m - final component count, so
    // the sum is deterministic even though each chunk's share is not.
    result->stats.merges += chunk_merges[c];
  }
  result->stats.seeds_examined = num_edges;
  result->stats.edges_emitted = num_edges;
  result->stats.rounds = num_chunks;
  result->stats.cas_retries = cuf.cas_retries();

  // --- Stage 3: deterministic uid-canonical relabel (sequential, O(m)).
  // Union-by-min-root has already made every component's root its minimum
  // cluster index; assigning labels by first appearance over ascending i
  // therefore reproduces the sequential pass bit-for-bit (proof sketch in
  // DESIGN.md §13).
  std::vector<ClusterId> root_label(m, kUnlabeled);
  std::vector<ClusterId> label_of(m, kNoise);
  ClusterId next = 0;
  for (size_t i = 0; i < m; ++i) {
    const size_t root = cuf.find(i);
    if (root_label[root] == kUnlabeled) root_label[root] = next++;
    label_of[i] = root_label[root];
  }
  result->clustering.num_clusters = static_cast<u64>(next);

  // --- Stage 4: parallel label write (disjoint member slots).
  result->clustering.labels.assign(num_points, kNoise);
  auto& labels = result->clustering.labels;
  for (size_t begin = 0; begin < m; begin += pc_chunk) {
    const size_t end = std::min(m, begin + pc_chunk);
    futures.push_back(pool.submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        const ClusterId label = label_of[i];
        for (const PointId p : pcs[i]->members) {
          labels[static_cast<size_t>(p)] = label;
        }
      }
    }));
  }
  wait_all(futures);

  // --- Stage 5: border adoptions, first claim wins in edge order.
  for (const auto& claims : chunk_claims) {
    for (const auto& [q, i] : claims) {
      ClusterId& l = labels[static_cast<size_t>(q)];
      if (l == kNoise) {
        l = label_of[i];
        ++result->stats.border_claims;
      }
    }
  }

  // Deterministic work-counter charges, applied on the driver thread (pool
  // workers have no ScopedCounters sink, and per-iteration charges there
  // would race or vary with the schedule): one op per member to build the
  // tables, one per edge examined, a flat two per union edge (find+unite),
  // one per member to write labels.
  counters::merge_ops(total_members);
  counters::merge_ops(num_edges);
  counters::merge_ops(2 * union_edges);
  counters::merge_ops(total_members);
}

}  // namespace

MergeResult merge_partial_clusters(
    const std::vector<LocalClusterResult>& locals, u64 num_points,
    const MergeOptions& options) {
  MergeResult result;
  ScopedCounters scope(&result.counters);

  const MergePrelude pre = make_prelude(locals, options, &result);

  unsigned threads = options.merge_threads != 0
                         ? options.merge_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  if (options.strategy != MergeStrategy::kUnionFind) threads = 1;

  if (threads <= 1) {
    merge_sequential(locals, pre.pcs, num_points, options, &result);
  } else {
    merge_parallel_union_find(locals, pre.pcs, num_points, threads,
                              options.pool, &result);
  }
  return result;
}

}  // namespace sdb::dbscan
