#include "core/dbscan_seq.hpp"

#include <deque>

#include "util/flat_hash.hpp"

namespace sdb::dbscan {

SeqResult dbscan_sequential(const PointSet& points, const SpatialIndex& index,
                            const DbscanParams& params,
                            const QueryBudget& budget) {
  const auto n = static_cast<PointId>(points.size());
  SeqResult result;
  {
    ScopedCounters scope(&result.counters);

    auto& labels = result.clustering.labels;
    labels.assign(static_cast<size_t>(n), kUnlabeled);
    std::vector<char> visited(static_cast<size_t>(n), 0);

    std::vector<PointId> neighbors;
    std::deque<PointId> frontier;  // the paper's Queue (LinkedList)
    ClusterId next_cluster = 0;

    // Note on hash_ops: the visited/label structures here are flat arrays
    // (ids are dense), but the counted cost mirrors the hashtable discipline
    // of the executor kernel (the paper's serial Java code uses the same
    // Hashtable in both modes) so serial and parallel work are priced
    // identically by the simulated clock.
    for (PointId p = 0; p < n; ++p) {
      counters::hash_ops(1);
      if (visited[static_cast<size_t>(p)]) continue;  // line 2: unvisited only
      visited[static_cast<size_t>(p)] = 1;            // line 3
      counters::hash_ops(1);
      counters::points_processed(1);

      neighbors.clear();
      index.range_query_budgeted(points[p], params.eps, budget, neighbors);

      if (static_cast<i64>(neighbors.size()) < params.minpts) {
        labels[static_cast<size_t>(p)] = kNoise;      // line 6
        continue;
      }

      // Line 8: new cluster seeded at the core point p.
      const ClusterId c = next_cluster++;
      labels[static_cast<size_t>(p)] = c;
      result.core_points.push_back(p);

      frontier.assign(neighbors.begin(), neighbors.end());
      counters::queue_ops(neighbors.size());

      while (!frontier.empty()) {                     // lines 9-20
        const PointId q = frontier.front();
        frontier.pop_front();
        counters::queue_ops(1);

        counters::hash_ops(1);
        if (!visited[static_cast<size_t>(q)]) {       // line 10
          visited[static_cast<size_t>(q)] = 1;        // line 11
          counters::hash_ops(1);
          counters::points_processed(1);
          neighbors.clear();
          index.range_query_budgeted(points[q], params.eps, budget, neighbors);
          if (static_cast<i64>(neighbors.size()) >= params.minpts) {
            // line 14: q is core; its neighborhood extends the cluster.
            result.core_points.push_back(q);
            for (const PointId r : neighbors) frontier.push_back(r);
            counters::queue_ops(neighbors.size());
          }
        }
        // Line 17: claim q if unclaimed (noise -> border promotion).
        counters::hash_ops(1);
        ClusterId& lq = labels[static_cast<size_t>(q)];
        if (lq == kUnlabeled || lq == kNoise) {
          lq = c;
          counters::hash_ops(1);
        }
      }
    }
    result.clustering.num_clusters = static_cast<u64>(next_cluster);
  }
  return result;
}

}  // namespace sdb::dbscan
