// Deterministic job fingerprints for checkpoint/resume.
//
// A checkpoint is only safe to resume if the restarted job is *the same
// job*: same input bytes, same eps/minpts, same partitioning, same merge
// semantics, same wire codec. The fingerprint folds every parameter that
// can change a partition's LocalClusterResult (or its serialized bytes)
// into one FNV-1a digest; JobCheckpoint embeds it in every record and
// discards records whose fingerprint differs, so a stale checkpoint
// directory can never contaminate a different run.
#pragma once

#include "core/codec.hpp"
#include "core/dbscan.hpp"
#include "core/local_dbscan.hpp"
#include "core/merge.hpp"
#include "core/partitioners.hpp"
#include "geom/point_set.hpp"

namespace sdb::dbscan {

namespace detail {

inline u64 fnv1a_append(u64 h, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
u64 fnv1a_value(u64 h, const T& v) {
  return fnv1a_append(h, &v, sizeof(v));
}

}  // namespace detail

/// FNV-1a over the dataset's raw coordinate bytes + dimensionality. The
/// expensive term of the fingerprint (one pass over n*d doubles).
inline u64 dataset_digest(const PointSet& points) {
  u64 h = 1469598103934665603ull;
  const int dim = points.dim();
  h = detail::fnv1a_value(h, dim);
  h = detail::fnv1a_append(h, points.raw().data(),
                           points.raw().size() * sizeof(double));
  return h;
}

/// The deterministic identity of one distributed-DBSCAN job. `engine`
/// separates spark from mr checkpoints sharing a directory; `seed` is the
/// partitioner seed (the only stochastic input to a partition's result).
inline u64 job_fingerprint(std::string_view engine, u64 dataset,
                           const DbscanParams& params,
                           PartitionerKind partitioner, u32 partitions,
                           u64 seed, SeedStrategy seed_strategy,
                           MergeStrategy merge_strategy, Codec codec,
                           u64 backend_salt = 0) {
  u64 h = dataset;
  h = detail::fnv1a_append(h, engine.data(), engine.size());
  h = detail::fnv1a_value(h, params.eps);
  h = detail::fnv1a_value(h, params.minpts);
  h = detail::fnv1a_value(h, partitioner);
  h = detail::fnv1a_value(h, partitions);
  h = detail::fnv1a_value(h, seed);
  h = detail::fnv1a_value(h, seed_strategy);
  h = detail::fnv1a_value(h, merge_strategy);
  h = detail::fnv1a_value(h, codec);
  // Non-default neighborhood backends (KNN-DBSCAN) fold their parameters in
  // as a salt: a knn checkpoint must never resume into an exact job or into
  // a knn job with different graph parameters. Zero (the exact backend)
  // folds nothing, so every pre-existing exact fingerprint is unchanged.
  if (backend_salt != 0) h = detail::fnv1a_value(h, backend_salt);
  return h;
}

}  // namespace sdb::dbscan
