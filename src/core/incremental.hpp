// Incremental DBSCAN — point insertion (Ester et al. 1998), the capability
// behind the MR-IDBSCAN line of work the paper cites ([14]).
//
// Maintains a clustering under point insertions with exactly-DBSCAN
// semantics:
//   * neighbor counts are exact, so the core set always equals the batch
//     algorithm's core set;
//   * when an insertion turns points into cores, the clusters reachable
//     through those new cores are merged (union-find over cluster slots, so
//     merging is O(alpha) instead of relabeling);
//   * noise points adjacent to a new core are promoted to border points.
// Border-point assignment carries DBSCAN's usual ambiguity; everything else
// is tested structurally equivalent to rerunning batch DBSCAN from scratch
// after every insertion (tests/test_incremental.cpp).
//
// Deletions are supported via tombstones + affected-region re-clustering:
// removing a point can demote cores and SPLIT clusters, so the union of the
// affected clusters is re-clustered from its surviving cores (a bounded
// local recomputation; the membership scan is O(n), documented trade-off).
// Tombstoned storage is not reclaimed.
//
// Index: a kd-tree over the points present at the last rebuild plus a
// brute-force overflow buffer for newer points; the tree is rebuilt when the
// buffer exceeds `rebuild_threshold` (amortized O(log n) queries).
// Tombstones are filtered from every query.
#pragma once

#include <memory>

#include "core/dbscan.hpp"
#include "geom/point_set.hpp"
#include "spatial/kd_tree.hpp"
#include "util/counters.hpp"

namespace sdb::dbscan {

class IncrementalDbscan {
 public:
  struct Config {
    DbscanParams params;
    /// Rebuild the kd-tree when this many points sit in the overflow
    /// buffer (0 = never rebuild; queries degrade toward O(n)).
    size_t rebuild_threshold = 256;
  };

  explicit IncrementalDbscan(Config config, int dim);

  /// Insert one point; returns its id. The clustering is updated to be
  /// exactly what batch DBSCAN would produce over the points so far (up to
  /// border-point assignment).
  PointId insert(std::span<const double> coords);

  /// Remove a point. Aborts on an invalid or already-removed id. The
  /// clustering is updated to what batch DBSCAN would produce over the
  /// surviving points (up to border-point assignment).
  void remove(PointId id);

  [[nodiscard]] bool is_removed(PointId id) const {
    return removed_[static_cast<size_t>(id)] != 0;
  }

  /// Points currently present (inserted minus removed).
  [[nodiscard]] size_t active_size() const { return points_.size() - removed_count_; }

  /// Current clustering snapshot (labels dense-renumbered; removed points
  /// are reported as noise).
  [[nodiscard]] Clustering clustering() const;

  /// Current cluster label of one point (kNoise for noise), without the
  /// snapshot cost.
  [[nodiscard]] ClusterId label_of(PointId id) const;

  [[nodiscard]] bool is_core(PointId id) const {
    return core_[static_cast<size_t>(id)] != 0;
  }

  [[nodiscard]] size_t size() const { return points_.size(); }
  [[nodiscard]] const PointSet& points() const { return points_; }

  /// Number of cluster-merge events triggered by insertions (metrics).
  [[nodiscard]] u64 merges() const { return merges_; }
  /// Number of kd-tree rebuilds performed.
  [[nodiscard]] u64 rebuilds() const { return rebuilds_; }

 private:
  /// All points within eps of q (tree + overflow buffer).
  void neighbors_of(std::span<const double> q, std::vector<PointId>& out) const;

  /// Union-find over cluster slots, growable.
  size_t find_slot(size_t slot) const;
  void unite_slots(size_t a, size_t b);
  size_t new_slot();

  /// Assign point to a cluster slot (kNone if noise).
  static constexpr i64 kNone = -1;

  Config config_;
  PointSet points_;
  std::unique_ptr<KdTree> tree_;     // over points [0, tree_size_)
  size_t tree_size_ = 0;             // points covered by tree_
  std::vector<char> core_;
  std::vector<u64> count_;           // self-inclusive eps-neighbor counts
  std::vector<i64> slot_of_;         // point -> cluster slot (kNone = noise)
  mutable std::vector<size_t> slot_parent_;  // union-find forest
  std::vector<char> removed_;        // tombstones
  size_t removed_count_ = 0;
  u64 merges_ = 0;
  u64 rebuilds_ = 0;
  u64 reclusterings_ = 0;

 public:
  /// Number of affected-region re-clusterings triggered by removals.
  [[nodiscard]] u64 reclusterings() const { return reclusterings_; }
};

}  // namespace sdb::dbscan
