// Incremental DBSCAN — point insertion (Ester et al. 1998), the capability
// behind the MR-IDBSCAN line of work the paper cites ([14]).
//
// Maintains a clustering under point insertions with exactly-DBSCAN
// semantics:
//   * neighbor counts are exact, so the core set always equals the batch
//     algorithm's core set;
//   * when an insertion turns points into cores, the clusters reachable
//     through those new cores are merged (union-find over cluster slots, so
//     merging is O(alpha) instead of relabeling);
//   * noise points adjacent to a new core are promoted to border points.
// Border-point assignment carries DBSCAN's usual ambiguity; everything else
// is tested structurally equivalent to rerunning batch DBSCAN from scratch
// after every insertion (tests/test_incremental.cpp).
//
// Deletions are supported via tombstones + affected-region re-clustering:
// removing a point can demote cores and SPLIT clusters, so the affected
// clusters are re-clustered from their surviving cores. The affected region
// is discovered by graph search over the old core graph (eps-range queries
// on the spatial index — the same eps-cell adjacency scoping as the paper's
// grid partitioning), seeded at the removed cores and the demotions, so the
// cost is proportional to the affected clusters, not to n. Components of an
// affected cluster that the search never reaches provably keep their labels
// and are left untouched.
//
// Ids vs rows: callers hold stable external `PointId`s (dense, assigned in
// insertion order, never reused). Storage is row-compacted internally:
// tombstoned rows are RECLAIMED at every index rebuild (insert overflow or
// `rebuild_threshold` accumulated removals), so resident memory tracks the
// live set, not the insert history. A reclaimed id stays removed forever.
//
// Index: a kd-tree over the rows present at the last rebuild plus a
// brute-force overflow buffer for newer rows; the tree is rebuilt when the
// buffer exceeds `rebuild_threshold` (amortized O(log n) queries).
// Tombstones are filtered from every query. The threshold is adjustable at
// runtime (`set_rebuild_threshold`) — the streaming ladder's
// deferred-rebuild rung raises it under pressure and restores it on
// recovery.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/dbscan.hpp"
#include "geom/point_set.hpp"
#include "spatial/kd_tree.hpp"
#include "util/counters.hpp"

namespace sdb::dbscan {

class IncrementalDbscan {
 public:
  struct Config {
    DbscanParams params;
    /// Rebuild the kd-tree (and reclaim tombstones) when this many points
    /// sit in the overflow buffer or this many removals have accumulated
    /// (0 = never rebuild; queries degrade toward O(n) and tombstones are
    /// never reclaimed).
    size_t rebuild_threshold = 256;
  };

  /// One operation of a micro-batch (see apply_batch).
  struct BatchOp {
    enum class Kind : unsigned char { kInsert = 0, kRemove = 1 };
    Kind kind = Kind::kInsert;
    std::vector<double> coords;  ///< kInsert: the point
    PointId id = -1;             ///< kRemove: the target id

    static BatchOp make_insert(std::span<const double> c) {
      BatchOp op;
      op.coords.assign(c.begin(), c.end());
      return op;
    }
    static BatchOp make_remove(PointId id) {
      BatchOp op;
      op.kind = Kind::kRemove;
      op.id = id;
      return op;
    }
  };
  /// Per-op outcome, aligned with apply_batch's input.
  struct BatchResult {
    bool applied = false;
    PointId id = -1;  ///< insert: the assigned id; remove: the target id
  };

  explicit IncrementalDbscan(Config config, int dim);

  /// Insert one point; returns its id. The clustering is updated to be
  /// exactly what batch DBSCAN would produce over the points so far (up to
  /// border-point assignment).
  PointId insert(std::span<const double> coords);

  /// Re-insert a point under an explicit external id (snapshot restore).
  /// `id` must be >= every id issued so far; ids skipped over are burned
  /// (they report removed forever).
  void restore(PointId id, std::span<const double> coords);

  /// Advance the id space to `next` without storing anything: ids in
  /// [size(), next) report removed forever. Snapshot restore uses this to
  /// line the id sequence up with the source registry's.
  void burn_ids(PointId next) {
    SDB_CHECK(next >= 0 && static_cast<u64>(next) >= next_id_,
              "burn_ids: id space can only grow");
    next_id_ = static_cast<u64>(next);
  }

  /// Remove a point. Returns false — with no state change — when the id was
  /// never issued, is already removed, or was reclaimed; a malformed client
  /// write must not kill the server. The clustering is updated to what
  /// batch DBSCAN would produce over the surviving points (up to
  /// border-point assignment).
  [[nodiscard]] bool try_remove(PointId id);

  /// Apply a micro-batch: every insert in op order first, then every remove
  /// in op order (within a batch, inserts happen-before removes). Removals
  /// share ONE affected-region re-clustering, so a batch of k deletes from
  /// the same cluster costs one region search instead of k. Returns per-op
  /// outcomes aligned with `ops`; invalid removes report applied=false.
  std::vector<BatchResult> apply_batch(std::span<const BatchOp> ops);

  /// True when `id` was issued and is no longer live (removed or reclaimed).
  /// Aborts on ids never issued.
  [[nodiscard]] bool is_removed(PointId id) const;

  /// Points currently present (inserted minus removed).
  [[nodiscard]] size_t active_size() const {
    return points_.size() - removed_count_;
  }

  /// Current clustering snapshot, indexed by external id over [0, size());
  /// labels dense-renumbered; removed points are reported as noise.
  [[nodiscard]] Clustering clustering() const;

  /// Current cluster label of one point (kNoise for noise or removed),
  /// without the snapshot cost.
  [[nodiscard]] ClusterId label_of(PointId id) const;

  [[nodiscard]] bool is_core(PointId id) const {
    const u32 row = row_of(id);
    return row != kInvalidRow && core_[row] != 0;
  }

  /// External ids issued so far (the id space; includes removed ids).
  [[nodiscard]] size_t size() const { return static_cast<size_t>(next_id_); }

  /// Row-level view of the compacted storage for snapshot/model builders.
  /// Rows carry tombstones until the next reclaim; `external_ids` is
  /// strictly increasing, so live rows enumerate live ids in order.
  struct StorageView {
    const PointSet* rows = nullptr;
    std::span<const PointId> external_ids;  ///< row -> stable id
    std::span<const char> removed;          ///< row -> tombstone flag
    std::span<const char> core;             ///< row -> core flag
    u64 id_space = 0;                       ///< external ids issued so far
  };
  [[nodiscard]] StorageView storage_view() const {
    return {&points_, external_of_, removed_, core_,
            static_cast<u64>(next_id_)};
  }

  /// Coordinates of a live point (aborts on removed/unknown ids).
  [[nodiscard]] std::span<const double> coords_of(PointId id) const {
    const u32 row = row_of(id);
    SDB_CHECK(row != kInvalidRow, "coords_of: id is not live");
    return points_[static_cast<PointId>(row)];
  }

  void set_rebuild_threshold(size_t threshold) {
    config_.rebuild_threshold = threshold;
  }
  [[nodiscard]] size_t rebuild_threshold() const {
    return config_.rebuild_threshold;
  }

  /// Approximate bytes of resident state (storage + index + id maps). The
  /// memory-bound regression test asserts this tracks the live set under
  /// churn, not the insert history.
  [[nodiscard]] size_t resident_bytes() const;

  /// FNV-1a over the id-ordered live state: (id, coordinate bits, canonical
  /// label) per live id, prefixed with the id-space size. Two instances that
  /// applied the same operation sequence (same batch boundaries) digest
  /// equal regardless of rebuild/reclaim timing — the streaming chaos
  /// harness's convergence check.
  [[nodiscard]] u64 digest() const;

  /// Number of cluster-merge events triggered by insertions (metrics).
  [[nodiscard]] u64 merges() const { return merges_; }
  /// Number of kd-tree rebuilds performed.
  [[nodiscard]] u64 rebuilds() const { return rebuilds_; }
  /// Number of affected-region re-clusterings triggered by removals.
  [[nodiscard]] u64 reclusterings() const { return reclusterings_; }
  /// Tombstoned rows reclaimed at rebuilds.
  [[nodiscard]] u64 reclaimed() const { return reclaimed_; }

 private:
  static constexpr u32 kInvalidRow = 0xffffffffu;

  /// Row of a live external id; kInvalidRow when unknown/removed.
  [[nodiscard]] u32 row_of(PointId id) const {
    const auto it = internal_of_.find(id);
    if (it == internal_of_.end()) return kInvalidRow;
    return removed_[it->second] != 0 ? kInvalidRow : it->second;
  }

  /// All live rows within eps of q (tree + overflow buffer).
  void neighbors_of(std::span<const double> q, std::vector<PointId>& out) const;

  /// The old insert body, in row space; does NOT touch the rebuild check.
  void insert_row(PointId external_id, std::span<const double> coords);
  /// Tombstone `victims` (live rows) and re-cluster the affected region.
  void remove_rows(const std::vector<u32>& victims);

  void maybe_rebuild_after_insert();
  void maybe_rebuild_after_remove();
  /// Drop tombstoned rows (remapping rows + slots), rebuild the kd-tree.
  void rebuild_and_reclaim();

  /// Union-find over cluster slots, growable.
  size_t find_slot(size_t slot) const;
  void unite_slots(size_t a, size_t b);
  size_t new_slot();

  /// Assign point to a cluster slot (kNone if noise).
  static constexpr i64 kNone = -1;

  Config config_;
  u64 next_id_ = 0;                  // next external id
  PointSet points_;                  // row storage (compacted at reclaim)
  std::vector<PointId> external_of_; // row -> external id (increasing)
  std::unordered_map<PointId, u32> internal_of_;  // external -> row
  std::unique_ptr<KdTree> tree_;     // over rows [0, tree_size_)
  size_t tree_size_ = 0;             // rows covered by tree_
  std::vector<char> core_;
  std::vector<u64> count_;           // self-inclusive eps-neighbor counts
  std::vector<i64> slot_of_;         // row -> cluster slot (kNone = noise)
  mutable std::vector<size_t> slot_parent_;  // union-find forest
  std::vector<char> removed_;        // tombstones
  size_t removed_count_ = 0;
  u64 merges_ = 0;
  u64 rebuilds_ = 0;
  u64 reclusterings_ = 0;
  u64 reclaimed_ = 0;
};

}  // namespace sdb::dbscan
