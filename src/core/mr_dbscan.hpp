// DBSCAN on the MapReduce substrate — the paper's own Figure 7 baseline
// ("we have implemented our own DBSCAN with MapReduce approach").
//
// Same clustering kernel and SEED merge as the Spark version; what differs
// is the framework data path, which is the entire point of the comparison:
//   * each map task loads the dataset + kd-tree from the distributed cache
//     (charged as disk reads — there is no in-memory broadcast in MR);
//   * map output (serialized partial-cluster blobs) is sorted and spilled to
//     real local files, then shuffled to the reducer over the network model;
//   * the single reducer performs the SEED merge and emits the labeling;
//   * the job pays MapReduce startup and per-task overheads.
#pragma once

#include "core/codec.hpp"
#include "core/dbscan.hpp"
#include "core/local_dbscan.hpp"
#include "core/merge.hpp"
#include "core/partitioners.hpp"
#include "mapreduce/mr_engine.hpp"

namespace sdb::dbscan {

struct MRDbscanConfig {
  DbscanParams params;
  u32 partitions = 4;  ///< map tasks
  PartitionerKind partitioner = PartitionerKind::kBlock;
  SeedStrategy seed_strategy = SeedStrategy::kAllForeign;
  MergeStrategy merge_strategy = MergeStrategy::kUnionFind;
  /// Reducer threads for the kUnionFind merge (see MergeOptions::
  /// merge_threads). Labels are byte-identical for any value.
  unsigned merge_threads = 1;
  /// Wire format for the partial clusters spilled by map tasks.
  Codec codec = Codec::kRaw;
  u64 seed = 42;
  mapreduce::MRConfig mr;  ///< engine knobs (work dir, cores, overheads)
  /// Directory for crash-consistent job checkpoints (empty = durability
  /// off). Each map task's partial-cluster blob is committed to disk as it
  /// is produced (see minispark/job_checkpoint.hpp).
  std::string checkpoint_dir;
  /// With checkpoint_dir set: recover committed map outputs left by a
  /// previous (crashed) run of the same job fingerprint, map only the
  /// missing partitions, and feed both into the reduce-side merge. false
  /// wipes prior state and checkpoints from scratch.
  bool resume = false;
};

struct MRDbscanReport {
  Clustering clustering;
  MergeStats merge_stats;
  mapreduce::MRJobMetrics job;
  u64 partial_clusters = 0;
  double sim_total_s = 0.0;  ///< startup + map + shuffle + reduce
  double wall_s = 0.0;

  // --- durability (checkpoint_dir set) ---
  u64 job_fingerprint = 0;       ///< deterministic job identity
  u64 resumed_partitions = 0;    ///< map outputs recovered from the checkpoint
  u64 executed_partitions = 0;   ///< map tasks run by this job
  u64 checkpoint_saves = 0;      ///< records committed by this run
};

/// Run the MapReduce DBSCAN over an in-memory dataset.
MRDbscanReport mr_dbscan(const PointSet& points, const MRDbscanConfig& config);

}  // namespace sdb::dbscan
