// The executor-side kernel: Algorithm 2 (local clustering) + Algorithm 3
// (SEED placement).
//
// Runs entirely inside one executor over one partition, with zero peer
// communication — the paper's headline design. Globally-exact neighborhoods
// come from the broadcast spatial index over ALL points; locality comes from
// expanding only points owned by this partition. Foreign points reached by
// the frontier become SEEDs.
//
// Data structures follow the paper's Section III.B choices: a hash table for
// the visited/processed check (put/containsKey are the counted hash_ops) and
// a queue for the frontier (add/remove are the counted queue_ops).
#pragma once

#include "core/dbscan.hpp"
#include "core/partial_cluster.hpp"
#include "core/partitioners.hpp"
#include "geom/point_set.hpp"
#include "spatial/spatial_index.hpp"

namespace sdb::dbscan {

/// How SEEDs are placed when the frontier reaches a foreign point.
enum class SeedStrategy {
  /// The paper's Algorithm 3: at most ONE seed per foreign partition per
  /// partial cluster ("if place one seed already ... continue"). Cheaper,
  /// but can under-merge when one partial cluster touches two distinct
  /// clusters of the same foreign partition — see tests/test_seed_strategies.
  kOnePerPartition,
  /// Record every distinct foreign point reached. Complete: guarantees the
  /// merge graph contains every adjacency the sequential algorithm sees.
  kAllForeign,
};

const char* seed_strategy_name(SeedStrategy s);

struct LocalDbscanConfig {
  DbscanParams params;
  SeedStrategy seed_strategy = SeedStrategy::kAllForeign;
  QueryBudget budget;  ///< "pruning branches" approximation (r1m runs)
};

/// Cluster the points of partition `partition` (per `partitioning`) using a
/// spatial index over the full dataset. Pure function of its inputs —
/// exactly what makes it a valid RDD task body.
LocalClusterResult local_dbscan(const PointSet& points,
                                const SpatialIndex& index,
                                const Partitioning& partitioning,
                                PartitionId partition,
                                const LocalDbscanConfig& config);

}  // namespace sdb::dbscan
