// MiniDfs — the HDFS stand-in.
//
// The paper's pipeline starts with "read an input file from HDFS and
// generate RDDs". MiniDfs reproduces the pieces that matter to that
// pipeline:
//   * files are split into fixed-size blocks stored as real files on local
//     disk (so byte volumes and read costs are physical, not modeled);
//   * a namenode-style catalog maps path -> ordered block list, and each
//     block carries simulated datanode replica locations (round-robin,
//     configurable replication factor) used by the scheduler's locality
//     accounting;
//   * TextInputFormat semantics: reading block k of a text file yields only
//     complete records — the reader skips the partial first line (unless
//     k == 0) and reads past the block boundary to finish its last line,
//     exactly as Hadoop's LineRecordReader does. One block == one input
//     partition in minispark's textFile.
//
// Failure semantics (see DESIGN.md "Failure model & fault injection"):
// transient block I/O failures — injected at the `dfs.read.fail`,
// `dfs.read.slow`, `dfs.write.torn` and `dfs.read.replica` sites — are
// recovered internally with bounded exponential-backoff retries
// (util/retry.hpp); only a fault that survives every attempt escapes as
// DfsTransientError. Whole-replica-set loss remains a hard abort, matching
// HDFS below the replication factor.
//
// Durability (DESIGN.md "Durability & recovery"): in Durability::kDurable
// mode every write is an atomic publish — blocks are staged as tmp files
// and renamed into place, then the namenode catalog is serialized to a
// checksummed manifest (manifest.tmp + rename). A process killed at any
// byte of that sequence (crash points `dfs.crash.mid_block`,
// `dfs.crash.before_publish`, `dfs.crash.manifest_rename`) leaves either
// the old committed version or the new one, never a torn mix: reopening the
// root replays the last published manifest, drops files whose blocks fail
// their checksums, and garbage-collects orphaned/tmp blocks. Reads verify
// block size + checksum against the manifest entry, so a torn block can
// never be read back as a short-but-valid file.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/retry.hpp"

namespace sdb::dfs {

/// A block operation that failed transiently (injected read error, torn
/// write) and exhausted its retry budget. Distinct from the hard aborts
/// (missing file, dead replica set), which keep SDB_CHECK semantics.
class DfsTransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct BlockInfo {
  u64 id = 0;
  u64 size = 0;                       ///< bytes in this block
  u64 checksum = 0;                   ///< FNV-1a over the block contents
  std::vector<u32> replicas;          ///< simulated datanode ids
};

struct FileInfo {
  std::string path;                   ///< logical DFS path
  u64 size = 0;                       ///< total bytes
  std::vector<BlockInfo> blocks;
};

/// Whether the namenode catalog survives the process.
enum class Durability {
  kEphemeral,  ///< catalog lives in memory only (the pre-durability mode)
  kDurable,    ///< catalog published to a checksummed on-disk manifest
};

class MiniDfs {
 public:
  /// `root` is a real directory used for block storage (created if absent).
  /// `block_size` is the HDFS block size (default 1 MiB — scaled down from
  /// HDFS's 128 MiB in proportion to our scaled-down datasets).
  /// `datanodes`/`replication` drive the simulated replica placement.
  /// With Durability::kDurable, a manifest already present under `root` is
  /// recovered: its files become readable again, torn or missing blocks
  /// drop their file, and unreferenced blocks are garbage-collected.
  explicit MiniDfs(std::string root, u64 block_size = 1u << 20,
                   u32 datanodes = 8, u32 replication = 3,
                   Durability durability = Durability::kEphemeral);

  /// Create (or overwrite) a logical file with the given contents.
  const FileInfo& write(const std::string& path, const std::string& contents);

  /// True if the logical file exists.
  [[nodiscard]] bool exists(const std::string& path) const;

  /// Metadata for a file. Aborts if missing.
  [[nodiscard]] const FileInfo& stat(const std::string& path) const;

  /// Read the whole file back.
  [[nodiscard]] std::string read(const std::string& path) const;

  /// Read one raw block.
  [[nodiscard]] std::string read_block(const std::string& path,
                                       size_t block_index) const;

  /// TextInputFormat read: the complete text records "owned" by block
  /// `block_index` (see class comment). Concatenating the results for all
  /// blocks reproduces the file's records exactly once, in order.
  [[nodiscard]] std::string read_text_split(const std::string& path,
                                            size_t block_index) const;

  /// Remove a file and its blocks.
  void remove(const std::string& path);

  /// --- datanode failure simulation (HDFS's replication story) ---
  /// Mark a simulated datanode dead: reads served by its replicas fail over
  /// to surviving replicas; a block with no live replica is unreadable
  /// (abort), exactly HDFS's behaviour below the replication factor.
  void fail_datanode(u32 node);
  void recover_datanode(u32 node);
  [[nodiscard]] bool datanode_alive(u32 node) const;
  /// Number of reads that had to skip a dead primary replica.
  [[nodiscard]] u64 failovers() const { return failovers_; }

  /// --- transient-fault recovery (fault-injection observability) ---
  /// Retry policy applied to every block read/write.
  void set_io_retry(RetryPolicy policy) { io_retry_ = policy; }
  [[nodiscard]] const RetryPolicy& io_retry() const { return io_retry_; }
  /// Block operations that were retried after a transient failure.
  [[nodiscard]] u64 io_retries() const { return io_retries_; }
  /// Total backoff scheduled across all retries (simulated seconds).
  [[nodiscard]] double io_backoff_s() const { return io_backoff_s_; }
  /// Reads delayed by an injected slow-read fault.
  [[nodiscard]] u64 slow_reads() const { return slow_reads_; }
  /// Writes that tore mid-block and were rewritten by a retry.
  [[nodiscard]] u64 torn_writes() const { return torn_writes_; }

  /// Verify every block of `path` against its stored checksum (HDFS's
  /// data-integrity scan). Returns the indices of corrupt blocks.
  [[nodiscard]] std::vector<size_t> verify(const std::string& path) const;

  [[nodiscard]] u64 block_size() const { return block_size_; }
  [[nodiscard]] u32 datanodes() const { return datanodes_; }
  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] Durability durability() const { return durability_; }

  /// --- durable-mode recovery observability ---
  /// Files recovered intact from the manifest at construction.
  [[nodiscard]] u64 recovered_files() const { return recovered_files_; }
  /// Manifested files dropped at recovery (a block missing, short or
  /// failing its checksum — a write that never finished publishing).
  [[nodiscard]] u64 dropped_files() const { return dropped_files_; }
  /// Orphaned block/tmp files garbage-collected at recovery.
  [[nodiscard]] u64 orphans_collected() const { return orphans_collected_; }

 private:
  [[nodiscard]] std::string block_path(u64 block_id) const;
  [[nodiscard]] std::string manifest_path() const;
  /// Serialize the catalog and atomically publish it (durable mode only;
  /// a no-op in kEphemeral mode).
  void save_manifest();
  /// Load + verify the manifest and every referenced block; returns false
  /// when no (valid) manifest exists.
  bool load_manifest();
  /// Delete tmp files and blocks the recovered catalog does not reference.
  void gc_orphans();
  /// Enforce replica availability for a block read (counts failovers,
  /// aborts when every replica's datanode is dead).
  void check_replicas(const BlockInfo& block) const;
  /// Physically read one block under the retry policy (injection sites
  /// dfs.read.fail / dfs.read.slow).
  [[nodiscard]] std::vector<char> read_block_data(const BlockInfo& block) const;
  /// Physically write one block under the retry policy (injection site
  /// dfs.write.torn writes a real partial file before failing the attempt).
  void write_block_data(const BlockInfo& block, const std::vector<char>& data);

  std::string root_;
  u64 block_size_;
  u32 datanodes_;
  u32 replication_;
  Durability durability_ = Durability::kEphemeral;
  u64 next_block_id_ = 0;
  u32 next_replica_ = 0;
  u64 recovered_files_ = 0;
  u64 dropped_files_ = 0;
  u64 orphans_collected_ = 0;
  std::map<std::string, FileInfo> catalog_;
  std::vector<bool> dead_;            ///< per-datanode failure flags
  mutable u64 failovers_ = 0;
  RetryPolicy io_retry_;
  mutable u64 io_retries_ = 0;
  mutable double io_backoff_s_ = 0.0;
  mutable u64 slow_reads_ = 0;
  u64 torn_writes_ = 0;
};

}  // namespace sdb::dfs
