#include "dfs/mini_dfs.hpp"

#include <filesystem>

#include "fault/injection.hpp"
#include "util/counters.hpp"
#include "util/serialize.hpp"

namespace sdb::dfs {

namespace fs = std::filesystem;

namespace {

u64 fnv1a(const char* data, size_t size) {
  u64 h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

MiniDfs::MiniDfs(std::string root, u64 block_size, u32 datanodes,
                 u32 replication)
    : root_(std::move(root)),
      block_size_(block_size),
      datanodes_(datanodes),
      replication_(std::min(replication, datanodes)),
      dead_(datanodes, false) {
  SDB_CHECK(block_size_ > 0, "block size must be positive");
  SDB_CHECK(datanodes_ > 0, "need at least one datanode");
  fs::create_directories(fs::path(root_) / "blocks");
}

void MiniDfs::fail_datanode(u32 node) {
  SDB_CHECK(node < datanodes_, "no such datanode");
  dead_[node] = true;
}

void MiniDfs::recover_datanode(u32 node) {
  SDB_CHECK(node < datanodes_, "no such datanode");
  dead_[node] = false;
}

bool MiniDfs::datanode_alive(u32 node) const {
  SDB_CHECK(node < datanodes_, "no such datanode");
  return !dead_[node];
}

void MiniDfs::check_replicas(const BlockInfo& block) const {
  bool first = true;
  for (const u32 replica : block.replicas) {
    // An injected replica fault takes the primary out for this one read,
    // exercising the same failover path as a really-dead datanode.
    const bool injected_dead = first && SDB_INJECT("dfs.read.replica");
    if (!dead_[replica] && !injected_dead) {
      if (!first) {
        ++failovers_;  // the primary was dead; a later replica served
        counters::dfs_failovers(1);
      }
      return;
    }
    first = false;
  }
  SDB_CHECK(false, "block " + std::to_string(block.id) +
                       " unavailable: all replicas on dead datanodes");
}

std::string MiniDfs::block_path(u64 block_id) const {
  return (fs::path(root_) / "blocks" / ("blk_" + std::to_string(block_id)))
      .string();
}

std::vector<char> MiniDfs::read_block_data(const BlockInfo& block) const {
  RetryStats stats;
  auto data = retry_call(
      io_retry_, block.id,
      [&]() -> std::vector<char> {
        if (SDB_INJECT("dfs.read.fail")) {
          throw DfsTransientError("injected read failure, block " +
                                  std::to_string(block.id));
        }
        if (SDB_INJECT("dfs.read.slow")) ++slow_reads_;
        return read_file(block_path(block.id));
      },
      &stats);
  io_retries_ += stats.retries;
  io_backoff_s_ += stats.backoff_s;
  return data;
}

void MiniDfs::write_block_data(const BlockInfo& block,
                               const std::vector<char>& data) {
  RetryStats stats;
  retry_call(
      io_retry_, block.id,
      [&] {
        if (SDB_INJECT("dfs.write.torn")) {
          // A real torn write: half the block lands on disk, then the
          // datanode "dies". The retry must overwrite it completely —
          // verify() confirms no torn block survives a successful write.
          const std::vector<char> torn(data.begin(),
                                       data.begin() + data.size() / 2);
          write_file(block_path(block.id), torn);
          ++torn_writes_;
          throw DfsTransientError("injected torn write, block " +
                                  std::to_string(block.id));
        }
        write_file(block_path(block.id), data);
        return 0;
      },
      &stats);
  io_retries_ += stats.retries;
  io_backoff_s_ += stats.backoff_s;
}

const FileInfo& MiniDfs::write(const std::string& path,
                               const std::string& contents) {
  // Re-create the block directory if it vanished since construction (e.g. an
  // external cleanup of the root between ctor and write); otherwise every
  // block write below would abort on a missing parent directory.
  fs::create_directories(fs::path(root_) / "blocks");
  if (exists(path)) remove(path);
  FileInfo info;
  info.path = path;
  info.size = contents.size();
  for (u64 offset = 0; offset < contents.size(); offset += block_size_) {
    BlockInfo block;
    block.id = next_block_id_++;
    block.size = std::min<u64>(block_size_, contents.size() - offset);
    block.checksum = fnv1a(contents.data() + offset, block.size);
    for (u32 r = 0; r < replication_; ++r) {
      block.replicas.push_back((next_replica_ + r) % datanodes_);
    }
    next_replica_ = (next_replica_ + 1) % datanodes_;
    const std::vector<char> data(contents.begin() + static_cast<long>(offset),
                                 contents.begin() +
                                     static_cast<long>(offset + block.size));
    write_block_data(block, data);
    info.blocks.push_back(std::move(block));
  }
  // Zero-byte files still need a catalog entry.
  auto [it, inserted] = catalog_.insert_or_assign(path, std::move(info));
  (void)inserted;
  return it->second;
}

bool MiniDfs::exists(const std::string& path) const {
  return catalog_.contains(path);
}

const FileInfo& MiniDfs::stat(const std::string& path) const {
  const auto it = catalog_.find(path);
  SDB_CHECK(it != catalog_.end(), "no such DFS file: " + path);
  return it->second;
}

std::string MiniDfs::read(const std::string& path) const {
  const FileInfo& info = stat(path);
  std::string out;
  out.reserve(info.size);
  for (const BlockInfo& block : info.blocks) {
    check_replicas(block);
    const std::vector<char> data = read_block_data(block);
    out.append(data.data(), data.size());
  }
  return out;
}

std::string MiniDfs::read_block(const std::string& path,
                                size_t block_index) const {
  const FileInfo& info = stat(path);
  SDB_CHECK(block_index < info.blocks.size(), "block index out of range");
  check_replicas(info.blocks[block_index]);
  const std::vector<char> data = read_block_data(info.blocks[block_index]);
  return std::string(data.data(), data.size());
}

std::string MiniDfs::read_text_split(const std::string& path,
                                     size_t block_index) const {
  const FileInfo& info = stat(path);
  SDB_CHECK(block_index < info.blocks.size(), "block index out of range");

  std::string data = read_block(path, block_index);

  // Ownership rule: a record belongs to the block containing its FIRST byte.
  // If the previous block did not end in a newline, this block opens with
  // the tail of a record owned by the previous reader — skip through the
  // first newline (LineRecordReader semantics). If it did end in a newline,
  // this block starts a fresh record and nothing is skipped.
  size_t begin = 0;
  if (block_index > 0) {
    const std::string prev = read_block(path, block_index - 1);
    if (prev.empty() || prev.back() != '\n') {
      const size_t nl = data.find('\n');
      if (nl == std::string::npos) {
        // The entire block is the middle of a record started earlier; the
        // previous reader consumed it all.
        return {};
      }
      begin = nl + 1;
    }
  }

  // If the block does not end with a newline, keep reading into following
  // blocks to complete the final record.
  if (data.empty() || data.back() != '\n') {
    for (size_t b = block_index + 1; b < info.blocks.size(); ++b) {
      const std::string next = read_block(path, b);
      const size_t nl = next.find('\n');
      if (nl == std::string::npos) {
        data += next;
        continue;
      }
      data += next.substr(0, nl + 1);
      break;
    }
  }
  return data.substr(begin);
}

std::vector<size_t> MiniDfs::verify(const std::string& path) const {
  const FileInfo& info = stat(path);
  std::vector<size_t> corrupt;
  for (size_t b = 0; b < info.blocks.size(); ++b) {
    const std::vector<char> data = read_file(block_path(info.blocks[b].id));
    if (data.size() != info.blocks[b].size ||
        fnv1a(data.data(), data.size()) != info.blocks[b].checksum) {
      corrupt.push_back(b);
    }
  }
  return corrupt;
}

void MiniDfs::remove(const std::string& path) {
  const auto it = catalog_.find(path);
  SDB_CHECK(it != catalog_.end(), "no such DFS file: " + path);
  for (const BlockInfo& block : it->second.blocks) {
    fs::remove(block_path(block.id));
  }
  catalog_.erase(it);
}

}  // namespace sdb::dfs
