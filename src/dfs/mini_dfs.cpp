#include "dfs/mini_dfs.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "fault/injection.hpp"
#include "util/counters.hpp"
#include "util/serialize.hpp"

namespace sdb::dfs {

namespace fs = std::filesystem;

namespace {

u64 fnv1a(const char* data, size_t size) {
  u64 h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr u64 kManifestMagic = 0x5344424d414e4946ull;  // "SDBMANIF"

}  // namespace

MiniDfs::MiniDfs(std::string root, u64 block_size, u32 datanodes,
                 u32 replication, Durability durability)
    : root_(std::move(root)),
      block_size_(block_size),
      datanodes_(datanodes),
      replication_(std::min(replication, datanodes)),
      durability_(durability),
      dead_(datanodes, false) {
  SDB_CHECK(block_size_ > 0, "block size must be positive");
  SDB_CHECK(datanodes_ > 0, "need at least one datanode");
  fs::create_directories(fs::path(root_) / "blocks");
  if (durability_ == Durability::kDurable) {
    load_manifest();
    gc_orphans();
  }
}

void MiniDfs::fail_datanode(u32 node) {
  SDB_CHECK(node < datanodes_, "no such datanode");
  dead_[node] = true;
}

void MiniDfs::recover_datanode(u32 node) {
  SDB_CHECK(node < datanodes_, "no such datanode");
  dead_[node] = false;
}

bool MiniDfs::datanode_alive(u32 node) const {
  SDB_CHECK(node < datanodes_, "no such datanode");
  return !dead_[node];
}

void MiniDfs::check_replicas(const BlockInfo& block) const {
  bool first = true;
  for (const u32 replica : block.replicas) {
    // An injected replica fault takes the primary out for this one read,
    // exercising the same failover path as a really-dead datanode.
    const bool injected_dead = first && SDB_INJECT("dfs.read.replica");
    if (!dead_[replica] && !injected_dead) {
      if (!first) {
        ++failovers_;  // the primary was dead; a later replica served
        counters::dfs_failovers(1);
      }
      return;
    }
    first = false;
  }
  SDB_CHECK(false, "block " + std::to_string(block.id) +
                       " unavailable: all replicas on dead datanodes");
}

std::string MiniDfs::block_path(u64 block_id) const {
  return (fs::path(root_) / "blocks" / ("blk_" + std::to_string(block_id)))
      .string();
}

std::vector<char> MiniDfs::read_block_data(const BlockInfo& block) const {
  RetryStats stats;
  auto data = retry_call(
      io_retry_, block.id,
      [&]() -> std::vector<char> {
        if (SDB_INJECT("dfs.read.fail")) {
          throw DfsTransientError("injected read failure, block " +
                                  std::to_string(block.id));
        }
        if (SDB_INJECT("dfs.read.slow")) ++slow_reads_;
        return read_file(block_path(block.id));
      },
      &stats);
  io_retries_ += stats.retries;
  io_backoff_s_ += stats.backoff_s;
  // fsync-order enforcement: a block whose bytes do not match its manifest
  // entry (torn write, external truncation) must never be read back as a
  // short-but-valid file. Retrying cannot heal physical corruption, so the
  // mismatch escapes immediately.
  if (data.size() != block.size ||
      fnv1a(data.data(), data.size()) != block.checksum) {
    throw DfsTransientError("torn/corrupt block " + std::to_string(block.id) +
                            ": " + std::to_string(data.size()) + " bytes vs " +
                            std::to_string(block.size) + " in manifest");
  }
  return data;
}

void MiniDfs::write_block_data(const BlockInfo& block,
                               const std::vector<char>& data) {
  const std::string final_path = block_path(block.id);
  const std::string tmp = final_path + ".tmp";
  RetryStats stats;
  retry_call(
      io_retry_, block.id,
      [&] {
        if (SDB_INJECT("dfs.write.torn")) {
          // A real torn write: half the block lands on disk, then the
          // datanode "dies". The retry must overwrite it completely —
          // verify() confirms no torn block survives a successful write.
          const std::vector<char> torn(data.begin(),
                                       data.begin() + data.size() / 2);
          write_file(tmp, torn);
          ++torn_writes_;
          throw DfsTransientError("injected torn write, block " +
                                  std::to_string(block.id));
        }
        if (SDB_INJECT("dfs.crash.mid_block")) {
          // Crash at byte k: a prefix reaches the kernel, then the process
          // dies. The tmp file is never renamed, so recovery GCs it.
          const std::vector<char> torn(data.begin(),
                                       data.begin() + data.size() / 2);
          write_file(tmp, torn);
          fault::trigger_crash("dfs.crash.mid_block");
        }
        write_file(tmp, data);
        return 0;
      },
      &stats);
  fs::rename(tmp, final_path);
  io_retries_ += stats.retries;
  io_backoff_s_ += stats.backoff_s;
}

const FileInfo& MiniDfs::write(const std::string& path,
                               const std::string& contents) {
  // Re-create the block directory if it vanished since construction (e.g. an
  // external cleanup of the root between ctor and write); otherwise every
  // block write below would abort on a missing parent directory.
  fs::create_directories(fs::path(root_) / "blocks");
  // Stage the new version first: the previous version's blocks stay on disk
  // (and, in durable mode, published in the manifest) until the new catalog
  // entry publishes, so a crash anywhere in this function leaves exactly one
  // committed version readable.
  std::vector<u64> superseded;
  if (const auto it = catalog_.find(path); it != catalog_.end()) {
    for (const BlockInfo& block : it->second.blocks) {
      superseded.push_back(block.id);
    }
  }
  FileInfo info;
  info.path = path;
  info.size = contents.size();
  for (u64 offset = 0; offset < contents.size(); offset += block_size_) {
    BlockInfo block;
    block.id = next_block_id_++;
    block.size = std::min<u64>(block_size_, contents.size() - offset);
    block.checksum = fnv1a(contents.data() + offset, block.size);
    for (u32 r = 0; r < replication_; ++r) {
      block.replicas.push_back((next_replica_ + r) % datanodes_);
    }
    next_replica_ = (next_replica_ + 1) % datanodes_;
    const std::vector<char> data(contents.begin() + static_cast<long>(offset),
                                 contents.begin() +
                                     static_cast<long>(offset + block.size));
    write_block_data(block, data);
    info.blocks.push_back(std::move(block));
  }
  // All blocks staged and renamed into place; dying here must leave the OLD
  // version readable (the new blocks are orphans until the manifest says
  // otherwise).
  SDB_CRASH_POINT("dfs.crash.before_publish");
  // Zero-byte files still need a catalog entry.
  auto [it, inserted] = catalog_.insert_or_assign(path, std::move(info));
  (void)inserted;
  save_manifest();
  // Only after the publish point may the superseded version's blocks die.
  for (const u64 id : superseded) {
    fs::remove(block_path(id));
  }
  return it->second;
}

bool MiniDfs::exists(const std::string& path) const {
  return catalog_.contains(path);
}

const FileInfo& MiniDfs::stat(const std::string& path) const {
  const auto it = catalog_.find(path);
  SDB_CHECK(it != catalog_.end(), "no such DFS file: " + path);
  return it->second;
}

std::string MiniDfs::read(const std::string& path) const {
  const FileInfo& info = stat(path);
  std::string out;
  out.reserve(info.size);
  for (const BlockInfo& block : info.blocks) {
    check_replicas(block);
    const std::vector<char> data = read_block_data(block);
    out.append(data.data(), data.size());
  }
  return out;
}

std::string MiniDfs::read_block(const std::string& path,
                                size_t block_index) const {
  const FileInfo& info = stat(path);
  SDB_CHECK(block_index < info.blocks.size(), "block index out of range");
  check_replicas(info.blocks[block_index]);
  const std::vector<char> data = read_block_data(info.blocks[block_index]);
  return std::string(data.data(), data.size());
}

std::string MiniDfs::read_text_split(const std::string& path,
                                     size_t block_index) const {
  const FileInfo& info = stat(path);
  SDB_CHECK(block_index < info.blocks.size(), "block index out of range");

  std::string data = read_block(path, block_index);

  // Ownership rule: a record belongs to the block containing its FIRST byte.
  // If the previous block did not end in a newline, this block opens with
  // the tail of a record owned by the previous reader — skip through the
  // first newline (LineRecordReader semantics). If it did end in a newline,
  // this block starts a fresh record and nothing is skipped.
  size_t begin = 0;
  if (block_index > 0) {
    const std::string prev = read_block(path, block_index - 1);
    if (prev.empty() || prev.back() != '\n') {
      const size_t nl = data.find('\n');
      if (nl == std::string::npos) {
        // The entire block is the middle of a record started earlier; the
        // previous reader consumed it all.
        return {};
      }
      begin = nl + 1;
    }
  }

  // If the block does not end with a newline, keep reading into following
  // blocks to complete the final record.
  if (data.empty() || data.back() != '\n') {
    for (size_t b = block_index + 1; b < info.blocks.size(); ++b) {
      const std::string next = read_block(path, b);
      const size_t nl = next.find('\n');
      if (nl == std::string::npos) {
        data += next;
        continue;
      }
      data += next.substr(0, nl + 1);
      break;
    }
  }
  return data.substr(begin);
}

std::vector<size_t> MiniDfs::verify(const std::string& path) const {
  const FileInfo& info = stat(path);
  std::vector<size_t> corrupt;
  for (size_t b = 0; b < info.blocks.size(); ++b) {
    const std::vector<char> data = read_file(block_path(info.blocks[b].id));
    if (data.size() != info.blocks[b].size ||
        fnv1a(data.data(), data.size()) != info.blocks[b].checksum) {
      corrupt.push_back(b);
    }
  }
  return corrupt;
}

void MiniDfs::remove(const std::string& path) {
  const auto it = catalog_.find(path);
  SDB_CHECK(it != catalog_.end(), "no such DFS file: " + path);
  std::vector<u64> ids;
  for (const BlockInfo& block : it->second.blocks) {
    ids.push_back(block.id);
  }
  catalog_.erase(it);
  // Publish the removal before deleting bytes: a crash in between leaves
  // orphaned blocks (GC'd at next open), never a manifest pointing at
  // deleted data.
  save_manifest();
  for (const u64 id : ids) {
    fs::remove(block_path(id));
  }
}

std::string MiniDfs::manifest_path() const {
  return (fs::path(root_) / "manifest").string();
}

void MiniDfs::save_manifest() {
  if (durability_ != Durability::kDurable) return;
  BinaryWriter w;
  w.write_u64(kManifestMagic);
  w.write_u64(next_block_id_);
  w.write_u32(next_replica_);
  w.write_u64(catalog_.size());
  for (const auto& [path, info] : catalog_) {
    w.write_string(path);
    w.write_u64(info.size);
    w.write_u64(info.blocks.size());
    for (const BlockInfo& block : info.blocks) {
      w.write_u64(block.id);
      w.write_u64(block.size);
      w.write_u64(block.checksum);
      w.write_u64(block.replicas.size());
      for (const u32 r : block.replicas) w.write_u32(r);
    }
  }
  w.write_u64(fnv1a(w.buffer().data(), w.buffer().size()));
  const std::string tmp = manifest_path() + ".tmp";
  write_file(tmp, w.buffer());
  // The rename IS the commit point: dying on either side of it leaves a
  // valid manifest (the previous one, or the one just staged).
  SDB_CRASH_POINT("dfs.crash.manifest_rename");
  fs::rename(tmp, manifest_path());
}

bool MiniDfs::load_manifest() {
  if (!fs::exists(manifest_path())) return false;
  const std::vector<char> buf = read_file(manifest_path());
  if (buf.size() < 4 * sizeof(u64)) return false;
  const size_t payload = buf.size() - sizeof(u64);
  u64 trailer = 0;
  std::memcpy(&trailer, buf.data() + payload, sizeof(u64));
  if (trailer != fnv1a(buf.data(), payload)) return false;
  BinaryReader r(buf.data(), payload);
  if (r.read_u64() != kManifestMagic) return false;
  next_block_id_ = r.read_u64();
  next_replica_ = r.read_u32() % std::max<u32>(1, datanodes_);
  const u64 nfiles = r.read_u64();
  for (u64 f = 0; f < nfiles; ++f) {
    FileInfo info;
    info.path = r.read_string();
    info.size = r.read_u64();
    const u64 nblocks = r.read_u64();
    bool intact = true;
    for (u64 b = 0; b < nblocks; ++b) {
      BlockInfo block;
      block.id = r.read_u64();
      block.size = r.read_u64();
      block.checksum = r.read_u64();
      const u64 nreplicas = r.read_u64();
      for (u64 i = 0; i < nreplicas; ++i) {
        block.replicas.push_back(r.read_u32() % std::max<u32>(1, datanodes_));
      }
      // Verify the physical bytes against the manifest entry — a file with
      // any torn or missing block never recovers.
      if (intact) {
        const std::string bp = block_path(block.id);
        if (!fs::exists(bp)) {
          intact = false;
        } else {
          const std::vector<char> data = read_file(bp);
          intact = data.size() == block.size &&
                   fnv1a(data.data(), data.size()) == block.checksum;
        }
      }
      next_block_id_ = std::max(next_block_id_, block.id + 1);
      info.blocks.push_back(std::move(block));
    }
    if (intact) {
      ++recovered_files_;
      catalog_.insert_or_assign(info.path, std::move(info));
    } else {
      ++dropped_files_;
    }
  }
  return true;
}

void MiniDfs::gc_orphans() {
  std::vector<char> referenced;  // indexed by block id (dense, small)
  for (const auto& [path, info] : catalog_) {
    for (const BlockInfo& block : info.blocks) {
      if (block.id >= referenced.size()) referenced.resize(block.id + 1, 0);
      referenced[block.id] = 1;
    }
  }
  const fs::path blocks_dir = fs::path(root_) / "blocks";
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(blocks_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.ends_with(".tmp")) {
      doomed.push_back(entry.path());
      continue;
    }
    if (name.rfind("blk_", 0) != 0) continue;
    char* end = nullptr;
    const u64 id = std::strtoull(name.c_str() + 4, &end, 10);
    if (end == nullptr || *end != '\0') continue;
    if (id >= referenced.size() || !referenced[id]) doomed.push_back(entry.path());
  }
  for (const fs::path& p : doomed) {
    fs::remove(p);
    ++orphans_collected_;
  }
}

}  // namespace sdb::dfs
