#include "serve/query_engine.hpp"

#include <thread>

namespace sdb::serve {

QueryEngine::QueryEngine(ModelRegistry& registry, Config config)
    : registry_(registry),
      config_(config),
      cache_(config.cache_shards, config.cache_entries_per_shard),
      pool_(config.threads) {
  SDB_CHECK(config_.queue_capacity > 0, "queue capacity must be positive");
}

bool QueryEngine::try_submit(Request request, Callback on_done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >=
      config_.queue_capacity) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (on_done) {
      Reply reply;
      reply.status = ReplyStatus::kOverloaded;
      on_done(reply);
    }
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point now = Clock::now();
  pool_.submit([this, request = std::move(request), on_done = std::move(on_done),
                now]() mutable {
    const Reply reply = execute_counted(request);
    complete(request, reply, now);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (on_done) on_done(reply);
  });
  return true;
}

size_t QueryEngine::try_submit_batch(std::vector<Request> requests,
                                     Callback on_done) {
  const size_t want = requests.size();
  submitted_.fetch_add(want, std::memory_order_relaxed);
  if (want == 0) return 0;
  const size_t before = in_flight_.fetch_add(want, std::memory_order_acq_rel);
  const size_t admit =
      before >= config_.queue_capacity
          ? 0
          : std::min(want, config_.queue_capacity - before);
  if (admit < want) {
    in_flight_.fetch_sub(want - admit, std::memory_order_acq_rel);
    shed_.fetch_add(want - admit, std::memory_order_relaxed);
  }
  if (admit == 0) return 0;
  accepted_.fetch_add(admit, std::memory_order_relaxed);
  requests.resize(admit);
  const Clock::time_point now = Clock::now();
  pool_.submit([this, requests = std::move(requests),
                on_done = std::move(on_done), now]() {
    for (const Request& request : requests) {
      const Reply reply = execute_counted(request);
      complete(request, reply, now);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      if (on_done) on_done(reply);
    }
  });
  return admit;
}

Reply QueryEngine::execute(const Request& request) {
  Reply reply;
  switch (request.type) {
    case RequestType::kClassify: {
      const std::shared_ptr<const ClusterModel> model = registry_.model();
      reply.epoch = model->epoch();
      reply.degraded_model = model->degraded();
      if (static_cast<int>(request.point.size()) != model->dim()) {
        reply.status = ReplyStatus::kInvalid;
        return reply;
      }
      const u64 hash = ClassifyCache::hash_point(request.point);
      if (cache_.lookup(hash, request.point, reply.epoch, &reply.label)) {
        reply.cache_hit = true;
        reply.status = ReplyStatus::kOk;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return reply;
      }
      reply.label = model->classify(request.point);
      cache_.insert(hash, request.point, reply.epoch, reply.label);
      cache_misses_.fetch_add(1, std::memory_order_relaxed);
      reply.status = ReplyStatus::kOk;
      return reply;
    }
    case RequestType::kLookup: {
      const std::shared_ptr<const ClusterModel> model = registry_.model();
      reply.epoch = model->epoch();
      reply.degraded_model = model->degraded();
      reply.id = request.id;
      if (!model->has(request.id)) {
        // Malformed ids are kInvalid; well-formed ids the snapshot simply
        // does not cover (yet — e.g. inserted since the last publish) are
        // kNotFound, matching remove's status for unknown ids.
        reply.status = request.id < 0 ? ReplyStatus::kInvalid
                                      : ReplyStatus::kNotFound;
        return reply;
      }
      reply.label = model->label_of(request.id);
      reply.status = ReplyStatus::kOk;
      return reply;
    }
    case RequestType::kInsert: {
      if (static_cast<int>(request.point.size()) != registry_.dim()) {
        reply.status = ReplyStatus::kInvalid;
        return reply;
      }
      // Graceful degradation: a stalled registry writer must not block a
      // worker thread (that would cascade into shed reads). Refuse the
      // mutation with an explicit signal; reads keep flowing from the last
      // published snapshot.
      if (!registry_.write_available()) {
        reply.status = ReplyStatus::kDegraded;
        reply.epoch = registry_.epoch();
        return reply;
      }
      reply.id = registry_.insert(request.point);
      reply.epoch = registry_.epoch();
      reply.status = ReplyStatus::kOk;
      return reply;
    }
    case RequestType::kRemove: {
      reply.id = request.id;
      if (!registry_.write_available()) {
        reply.status = ReplyStatus::kDegraded;
        reply.epoch = registry_.epoch();
        return reply;
      }
      reply.status = registry_.try_remove(request.id) ? ReplyStatus::kOk
                                                      : ReplyStatus::kNotFound;
      reply.epoch = registry_.epoch();
      return reply;
    }
  }
  reply.status = ReplyStatus::kInvalid;
  return reply;
}

Reply QueryEngine::execute_counted(const Request& request) {
  WorkCounters wc;
  Reply reply;
  {
    ScopedCounters scope(&wc);
    reply = execute(request);
  }
  const size_t stripe =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kWorkStripes;
  {
    const std::scoped_lock lock(work_stripes_[stripe].mu);
    work_stripes_[stripe].wc += wc;
  }
  return reply;
}

void QueryEngine::complete(const Request& request, const Reply& reply,
                           Clock::time_point submitted_at) {
  const u64 nanos = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           submitted_at)
          .count());
  latency_.record_nanos(nanos);
  if (request.type == RequestType::kClassify) {
    classify_latency_.record_nanos(nanos);
  }
  by_type_[static_cast<size_t>(request.type)].fetch_add(
      1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (reply.status == ReplyStatus::kInvalid) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
  }
  if (reply.status == ReplyStatus::kDegraded) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
  }
  if (reply.degraded_model) {
    degraded_model_reads_.fetch_add(1, std::memory_order_relaxed);
  }
}

MetricsSnapshot QueryEngine::metrics() const {
  MetricsSnapshot m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.accepted = accepted_.load(std::memory_order_relaxed);
  m.shed = shed_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.invalid = invalid_.load(std::memory_order_relaxed);
  m.degraded = degraded_.load(std::memory_order_relaxed);
  m.degraded_model_reads =
      degraded_model_reads_.load(std::memory_order_relaxed);
  m.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  m.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  for (size_t t = 0; t < kRequestTypes; ++t) {
    m.by_type[t] = by_type_[t].load(std::memory_order_relaxed);
  }
  m.latency = latency_.snapshot();
  m.classify_latency = classify_latency_.snapshot();
  for (const WorkStripe& stripe : work_stripes_) {
    const std::scoped_lock lock(stripe.mu);
    m.work += stripe.wc;
  }
  return m;
}

}  // namespace sdb::serve
