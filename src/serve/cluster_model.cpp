#include "serve/cluster_model.hpp"

#include <cstring>

#include "geom/distance.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace sdb::serve {

namespace {

constexpr u32 kMagic = 0x5342444d;  // "SDBM" little-endian-ish tag
// v2 adds core_sample_fraction (degraded-snapshot marker) after minpts.
constexpr u32 kVersion = 2;

u64 fnv1a(const char* data, size_t size) {
  u64 h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Bounds-checked reads on top of BinaryReader: BinaryReader aborts the
/// process on truncated input (right for trusted spill files, wrong for a
/// serving snapshot loaded from disk), so every read is guarded by a
/// remaining() check and failure surfaces as `ok == false`.
struct SafeReader {
  BinaryReader reader;
  bool ok = true;

  explicit SafeReader(const std::vector<char>& buf) : reader(buf) {}

  bool have(u64 n) {
    if (!ok || reader.remaining() < n) ok = false;
    return ok;
  }
  u32 read_u32() { return have(4) ? reader.read_u32() : 0; }
  u64 read_u64() { return have(8) ? reader.read_u64() : 0; }
  i64 read_i64() { return have(8) ? reader.read_i64() : 0; }
  double read_f64() { return have(8) ? reader.read_f64() : 0.0; }
  std::vector<i64> read_i64_vec() {
    if (!have(8)) return {};
    // Peek the length prefix without consuming so a corrupt huge length
    // fails cleanly instead of allocating petabytes.
    const size_t before = reader.position();
    const u64 n = reader.read_u64();
    if (reader.remaining() / sizeof(i64) < n) {
      ok = false;
      (void)before;
      return {};
    }
    std::vector<i64> v(n);
    for (u64 i = 0; i < n; ++i) v[i] = reader.read_i64();
    return v;
  }
  std::vector<double> read_f64_vec() {
    if (!have(8)) return {};
    const u64 n = reader.read_u64();
    if (reader.remaining() / sizeof(double) < n) {
      ok = false;
      return {};
    }
    std::vector<double> v(n);
    for (u64 i = 0; i < n; ++i) v[i] = reader.read_f64();
    return v;
  }
};

bool fail(std::string* error, const char* what) {
  if (error) *error = what;
  return false;
}

}  // namespace

std::shared_ptr<ClusterModel> ClusterModel::build(
    const PointSet& points, const dbscan::Clustering& clustering,
    const std::vector<char>& core_mask, const dbscan::DbscanParams& params) {
  return build(points, clustering, core_mask, params, Options{});
}

std::shared_ptr<ClusterModel> ClusterModel::build(
    const PointSet& points, const dbscan::Clustering& clustering,
    const std::vector<char>& core_mask, const dbscan::DbscanParams& params,
    const Options& options) {
  // Trivial view: rows ARE ids.
  return build_impl(points, {}, {}, points.size(), /*identity=*/true,
                    clustering, core_mask, params, options);
}

std::shared_ptr<ClusterModel> ClusterModel::build_view(
    const PointSet& rows, std::span<const PointId> external_ids,
    std::span<const char> skip_rows, u64 id_space,
    const dbscan::Clustering& clustering, const std::vector<char>& core_mask,
    const dbscan::DbscanParams& params, const Options& options) {
  return build_impl(rows, external_ids, skip_rows, id_space,
                    /*identity=*/false, clustering, core_mask, params,
                    options);
}

std::shared_ptr<ClusterModel> ClusterModel::build_impl(
    const PointSet& rows, std::span<const PointId> external_ids,
    std::span<const char> skip_rows, u64 id_space, bool identity,
    const dbscan::Clustering& clustering, const std::vector<char>& core_mask,
    const dbscan::DbscanParams& params, const Options& options) {
  SDB_CHECK(identity ? id_space == rows.size()
                     : external_ids.size() == rows.size(),
            "external ids do not cover the rows");
  SDB_CHECK(skip_rows.empty() || skip_rows.size() == rows.size(),
            "skip mask does not cover the rows");
  SDB_CHECK(clustering.labels.size() == id_space,
            "clustering does not cover the id space");
  SDB_CHECK(core_mask.size() == id_space,
            "core mask does not cover the id space");
  SDB_CHECK(options.core_sample_fraction > 0.0 &&
                options.core_sample_fraction <= 1.0,
            "core_sample_fraction must be in (0, 1]");
  SDB_CHECK(rows.dim() > 0, "model requires a dimensioned point set");

  auto model = std::shared_ptr<ClusterModel>(new ClusterModel());
  model->dim_ = rows.dim();
  model->params_ = params;
  model->num_clusters_ = clustering.num_clusters;
  model->labels_ = clustering.labels;
  model->core_sample_fraction_ = options.core_sample_fraction;
  model->core_points_ = PointSet(rows.dim());
  model->cluster_stats_.resize(clustering.num_clusters);
  model->centroids_.assign(
      clustering.num_clusters * static_cast<size_t>(rows.dim()), 0.0);

  Rng rng(options.sample_seed);
  const bool subsample = options.core_sample_fraction < 1.0;
  for (PointId row = 0; row < static_cast<PointId>(rows.size()); ++row) {
    if (!skip_rows.empty() && skip_rows[static_cast<size_t>(row)] != 0) {
      continue;
    }
    const PointId id = identity ? row : external_ids[static_cast<size_t>(row)];
    const ClusterId label = clustering.labels[static_cast<size_t>(id)];
    if (label < 0) continue;
    auto& stats = model->cluster_stats_[static_cast<size_t>(label)];
    ++stats.size;
    const std::span<const double> coords = rows[row];
    double* centroid =
        model->centroids_.data() + static_cast<size_t>(label) * rows.dim();
    for (int d = 0; d < rows.dim(); ++d) centroid[d] += coords[d];
    if (core_mask[static_cast<size_t>(id)] == 0) continue;
    ++stats.core_count;
    if (subsample && rng.uniform() >= options.core_sample_fraction) continue;
    model->core_points_.add(coords);
    model->core_ids_.push_back(id);
    model->core_labels_.push_back(label);
  }
  for (size_t c = 0; c < model->cluster_stats_.size(); ++c) {
    const u64 n = model->cluster_stats_[c].size;
    if (n == 0) continue;
    double* centroid = model->centroids_.data() + c * rows.dim();
    for (int d = 0; d < rows.dim(); ++d) {
      centroid[d] /= static_cast<double>(n);
    }
  }
  model->finalize();
  return model;
}

void ClusterModel::finalize() {
  tree_.reset();
  if (!core_points_.empty()) {
    tree_ = std::make_unique<KdTree>(core_points_);
  }
}

ClusterId ClusterModel::classify(std::span<const double> point) const {
  SDB_CHECK(static_cast<int>(point.size()) == dim(),
            "classify: dimension mismatch");
  if (tree_ == nullptr) return kNoise;
  const std::vector<PointId> nn = tree_->knn(point, 1);
  if (nn.empty()) return kNoise;
  if (!within_eps(point, core_points_[nn.front()], params_.eps)) return kNoise;
  return core_labels_[static_cast<size_t>(nn.front())];
}

ClusterId ClusterModel::label_of(PointId id) const {
  SDB_CHECK(has(id), "label_of: unknown point id");
  return labels_[static_cast<size_t>(id)];
}

ClusterModel::Summary ClusterModel::summary() const {
  Summary s;
  s.total_points = labels_.size();
  s.num_clusters = num_clusters_;
  s.core_points = core_points_.size();
  s.dim = dim();
  s.eps = params_.eps;
  s.minpts = params_.minpts;
  s.epoch = epoch_;
  for (const ClusterId l : labels_) s.noise_points += (l == kNoise) ? 1 : 0;
  return s;
}

const ClusterModel::ClusterStats& ClusterModel::stats_of(
    ClusterId cluster) const {
  SDB_CHECK(cluster >= 0 && static_cast<u64>(cluster) < num_clusters_,
            "stats_of: unknown cluster");
  return cluster_stats_[static_cast<size_t>(cluster)];
}

std::span<const double> ClusterModel::centroid_of(ClusterId cluster) const {
  SDB_CHECK(cluster >= 0 && static_cast<u64>(cluster) < num_clusters_,
            "centroid_of: unknown cluster");
  return {centroids_.data() + static_cast<size_t>(cluster) * dim(),
          static_cast<size_t>(dim())};
}

std::vector<char> ClusterModel::save() const {
  BinaryWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_u32(static_cast<u32>(dim()));
  w.write_f64(params_.eps);
  w.write_i64(params_.minpts);
  w.write_f64(core_sample_fraction_);
  w.write_u64(num_clusters_);
  w.write_i64_vec(labels_);
  w.write_i64_vec(core_ids_);
  w.write_i64_vec(core_labels_);
  w.write_f64_vec(core_points_.raw());
  {
    std::vector<i64> sizes;
    std::vector<i64> cores;
    sizes.reserve(cluster_stats_.size());
    cores.reserve(cluster_stats_.size());
    for (const ClusterStats& s : cluster_stats_) {
      sizes.push_back(static_cast<i64>(s.size));
      cores.push_back(static_cast<i64>(s.core_count));
    }
    w.write_i64_vec(sizes);
    w.write_i64_vec(cores);
  }
  w.write_f64_vec(centroids_);
  w.write_u64(fnv1a(w.buffer().data(), w.buffer().size()));
  return w.take();
}

void ClusterModel::save_file(const std::string& path) const {
  write_file(path, save());
}

std::shared_ptr<ClusterModel> ClusterModel::load(
    const std::vector<char>& buffer, std::string* error) {
  std::string err;
  const auto invalid = [&](const char* what) {
    fail(error, what);
    return std::shared_ptr<ClusterModel>();
  };

  // The checksum is the trailing u64 over everything before it.
  if (buffer.size() < 8) return invalid("snapshot truncated");
  u64 stored_checksum = 0;
  std::memcpy(&stored_checksum, buffer.data() + buffer.size() - 8, 8);
  if (fnv1a(buffer.data(), buffer.size() - 8) != stored_checksum) {
    return invalid("snapshot checksum mismatch");
  }

  SafeReader r(buffer);
  if (r.read_u32() != kMagic) return invalid("bad snapshot magic");
  if (r.read_u32() != kVersion) return invalid("unsupported snapshot version");
  const u32 dim = r.read_u32();
  const double eps = r.read_f64();
  const i64 minpts = r.read_i64();
  const double core_sample_fraction = r.read_f64();
  const u64 num_clusters = r.read_u64();
  std::vector<i64> labels = r.read_i64_vec();
  std::vector<i64> core_ids = r.read_i64_vec();
  std::vector<i64> core_labels = r.read_i64_vec();
  std::vector<double> core_coords = r.read_f64_vec();
  std::vector<i64> sizes = r.read_i64_vec();
  std::vector<i64> cores = r.read_i64_vec();
  std::vector<double> centroids = r.read_f64_vec();
  if (!r.ok) return invalid("snapshot truncated");
  if (r.reader.remaining() != 8) return invalid("snapshot has trailing bytes");

  // Structural validation: every index the query path would ever touch.
  if (dim == 0) return invalid("snapshot dimension is zero");
  if (core_ids.size() != core_labels.size() ||
      core_coords.size() != core_ids.size() * dim) {
    return invalid("inconsistent core arrays");
  }
  if (sizes.size() != num_clusters || cores.size() != num_clusters ||
      centroids.size() != num_clusters * dim) {
    return invalid("inconsistent cluster stats");
  }
  for (const i64 l : labels) {
    if (l != kNoise && (l < 0 || static_cast<u64>(l) >= num_clusters)) {
      return invalid("label out of range");
    }
  }
  for (const i64 l : core_labels) {
    if (l < 0 || static_cast<u64>(l) >= num_clusters) {
      return invalid("core label out of range");
    }
  }
  for (const i64 id : core_ids) {
    if (id < 0 || static_cast<u64>(id) >= labels.size()) {
      return invalid("core id out of range");
    }
  }
  for (const i64 s : sizes) {
    if (s < 0) return invalid("negative cluster size");
  }
  if (!(core_sample_fraction > 0.0 && core_sample_fraction <= 1.0)) {
    return invalid("core sample fraction out of range");
  }

  auto model = std::shared_ptr<ClusterModel>(new ClusterModel());
  model->dim_ = static_cast<int>(dim);
  model->params_ = dbscan::DbscanParams{eps, minpts};
  model->core_sample_fraction_ = core_sample_fraction;
  model->num_clusters_ = num_clusters;
  model->labels_ = std::move(labels);
  model->core_ids_ = std::move(core_ids);
  model->core_labels_ = std::move(core_labels);
  model->core_points_ = PointSet(static_cast<int>(dim), std::move(core_coords));
  model->cluster_stats_.resize(num_clusters);
  for (u64 c = 0; c < num_clusters; ++c) {
    model->cluster_stats_[c].size = static_cast<u64>(sizes[c]);
    model->cluster_stats_[c].core_count = static_cast<u64>(cores[c]);
  }
  model->centroids_ = std::move(centroids);
  model->finalize();
  return model;
}

std::shared_ptr<ClusterModel> ClusterModel::load_file(const std::string& path,
                                                      std::string* error) {
  return load(read_file(path), error);
}

}  // namespace sdb::serve
