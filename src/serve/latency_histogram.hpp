// Lock-free latency histogram for the serving layer's per-request metrics.
//
// Power-of-two nanosecond buckets (bucket i counts latencies in
// [2^i, 2^(i+1)) ns), recorded with relaxed atomic increments so the query
// hot path pays one cache-line RMW per request. Percentiles are estimated
// from a snapshot by walking the buckets and reporting the geometric bucket
// midpoint — at worst a ~41% relative error (half a power of two), which is
// the right trade for a structure that is written millions of times per
// second and read a handful of times per run.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>

#include "util/common.hpp"

namespace sdb::serve {

/// Immutable copy of a histogram, safe to aggregate and query.
struct HistogramSnapshot {
  static constexpr int kBuckets = 48;  ///< covers [1 ns, ~3.26 days)
  std::array<u64, kBuckets> counts{};

  [[nodiscard]] u64 total() const {
    u64 t = 0;
    for (const u64 c : counts) t += c;
    return t;
  }

  /// Estimated latency in microseconds at quantile `q` in [0, 1]
  /// (q=0.5 -> p50). Returns 0 when the histogram is empty.
  [[nodiscard]] double quantile_micros(double q) const {
    const u64 n = total();
    if (n == 0) return 0.0;
    u64 rank = static_cast<u64>(std::ceil(q * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    u64 seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) {
        // Geometric midpoint of [2^b, 2^(b+1)) ns, in microseconds.
        const double lo = std::ldexp(1.0, b);
        return lo * 1.4142135623730951 / 1e3;
      }
    }
    return std::ldexp(1.0, kBuckets - 1) / 1e3;  // unreachable in practice
  }

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) {
    for (int b = 0; b < kBuckets; ++b) counts[b] += o.counts[b];
    return *this;
  }
};

/// The live, concurrently-written histogram.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void record_nanos(u64 nanos) {
    counts_[bucket_of(nanos)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (int b = 0; b < kBuckets; ++b) {
      s.counts[b] = counts_[b].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  static int bucket_of(u64 nanos) {
    const int b = (nanos == 0) ? 0 : std::bit_width(nanos) - 1;
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  std::array<std::atomic<u64>, kBuckets> counts_{};
};

}  // namespace sdb::serve
